(* Hop-level route tracing: schemes emit structured events into an
   optional sink.  With the sink absent nothing is constructed or
   emitted — the routed walks are bit-identical either way (the
   determinism contract tested in test/test_obs.ml). *)

type phase_kind =
  | Sparse
  | Dense
  | Global
  | Direct
  | Vicinity
  | Pivot
  | Color

let kind_to_string = function
  | Sparse -> "sparse"
  | Dense -> "dense"
  | Global -> "global"
  | Direct -> "direct"
  | Vicinity -> "vicinity"
  | Pivot -> "pivot"
  | Color -> "color"

type event =
  | Phase_start of { phase : int; kind : phase_kind; center : int; bound : int }
  | Climb of { phase : int; from_node : int; to_node : int; hops : int }
  | Tree_step of { round : int; from_node : int; to_node : int }
  | Phase_result of { phase : int; found : bool; rounds : int }
  | Stall of { at : int; toward : int }
  | Deflect of { at : int; via : int }
  | Replan of { at : int }
  | Deliver of { phase : int; node : int }
  | No_route of { phase : int }
  | Bunch_probe of { level : int; active : int; witness : int; hit : bool }
  | Stitch of { via : int; up_hops : int; down_hops : int }

type sink = event -> unit

let label = function
  | Phase_start _ -> "phase_start"
  | Climb _ -> "climb"
  | Tree_step _ -> "tree_step"
  | Phase_result _ -> "phase_result"
  | Stall _ -> "stall"
  | Deflect _ -> "deflect"
  | Replan _ -> "replan"
  | Deliver _ -> "deliver"
  | No_route _ -> "no_route"
  | Bunch_probe _ -> "bunch_probe"
  | Stitch _ -> "stitch"

let phase_of = function
  | Phase_start { phase; _ } | Climb { phase; _ } | Phase_result { phase; _ }
  | Deliver { phase; _ } | No_route { phase } ->
      Some phase
  | Bunch_probe { level; _ } -> Some level
  | Tree_step _ | Stall _ | Deflect _ | Replan _ | Stitch _ -> None

let event_to_string = function
  | Phase_start { phase; kind; center; bound } -> (
      match kind with
      | Sparse ->
          Printf.sprintf "phase %d (sparse): to center %d, %d-bounded tree search" phase center
            bound
      | Dense ->
          Printf.sprintf "phase %d (dense): cover level %d, cluster root %d" phase bound center
      | Global -> Printf.sprintf "phase %d (global): fallback tree rooted at %d" phase center
      | Direct -> Printf.sprintf "phase %d (direct): forwarding toward %d" phase center
      | Vicinity -> Printf.sprintf "phase %d (vicinity): shortest path to %d" phase center
      | Pivot -> Printf.sprintf "phase %d (pivot): via level-%d pivot %d" phase bound center
      | Color -> Printf.sprintf "phase %d (color): via color node %d" phase center)
  | Climb { phase; from_node; to_node; hops } ->
      Printf.sprintf "phase %d: tree climb %d -> %d (%d hops)" phase from_node to_node hops
  | Tree_step { round; from_node; to_node } ->
      Printf.sprintf "search round %d: %d -> %d" round from_node to_node
  | Phase_result { phase; found; rounds } ->
      Printf.sprintf "phase %d: %s after %d rounds" phase
        (if found then "found" else "negative response")
        rounds
  | Stall { at; toward } -> Printf.sprintf "stall at %d: hop toward %d is dead" at toward
  | Deflect { at; via } -> Printf.sprintf "deflect at %d via alive neighbor %d" at via
  | Replan { at } -> Printf.sprintf "replan from %d" at
  | Deliver { phase; node } -> Printf.sprintf "delivered at %d (phase %d)" node phase
  | No_route { phase } -> Printf.sprintf "no route (gave up after phase %d)" phase
  | Bunch_probe { level; active; witness; hit } ->
      Printf.sprintf "bunch probe level %d: pivot %d of %d %s" level witness active
        (if hit then "hit" else "miss")
  | Stitch { via; up_hops; down_hops } ->
      Printf.sprintf "stitch via %d: %d hops up, %d hops down" via up_hops down_hops

let event_to_json ev =
  let module J = Cr_util.Jsonl in
  let fields =
    match ev with
    | Phase_start { phase; kind; center; bound } ->
        [ ("phase", J.int phase); ("kind", J.str (kind_to_string kind));
          ("center", J.int center); ("bound", J.int bound) ]
    | Climb { phase; from_node; to_node; hops } ->
        [ ("phase", J.int phase); ("from", J.int from_node); ("to", J.int to_node);
          ("hops", J.int hops) ]
    | Tree_step { round; from_node; to_node } ->
        [ ("round", J.int round); ("from", J.int from_node); ("to", J.int to_node) ]
    | Phase_result { phase; found; rounds } ->
        [ ("phase", J.int phase); ("found", J.bool found); ("rounds", J.int rounds) ]
    | Stall { at; toward } -> [ ("at", J.int at); ("toward", J.int toward) ]
    | Deflect { at; via } -> [ ("at", J.int at); ("via", J.int via) ]
    | Replan { at } -> [ ("at", J.int at) ]
    | Deliver { phase; node } -> [ ("phase", J.int phase); ("node", J.int node) ]
    | No_route { phase } -> [ ("phase", J.int phase) ]
    | Bunch_probe { level; active; witness; hit } ->
        [ ("level", J.int level); ("active", J.int active); ("witness", J.int witness);
          ("hit", J.bool hit) ]
    | Stitch { via; up_hops; down_hops } ->
        [ ("via", J.int via); ("up_hops", J.int up_hops); ("down_hops", J.int down_hops) ]
  in
  J.obj (("event", J.str (label ev)) :: fields)

let tee a b ev =
  a ev;
  b ev
