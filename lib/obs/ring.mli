(** Bounded ring buffer — the default event sink for long traces.

    [push] is O(1) and never grows the buffer: once full, each push
    overwrites the oldest item and bumps {!dropped}.  Thread-safe: a
    mutex serializes the operations, so domains sharing one sink
    interleave whole items (never torn state) and
    [length + dropped = total pushes] holds under any interleaving —
    though a per-domain ring still gives better ordering. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Items currently held ([<= capacity]). *)

val dropped : 'a t -> int
(** Items overwritten since creation or the last {!clear}. *)

val push : 'a t -> 'a -> unit

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Retained items, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
