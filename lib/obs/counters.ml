(* Named monotonic counters, safe to bump from several domains at once
   (the batch engine's lanes all feed one instance).  A mutex guards the
   name table; each counter itself is an Atomic so the hot increment
   path after first touch is lock-free. *)

type t = { mu : Mutex.t; table : (string, int Atomic.t) Hashtbl.t }

let create () = { mu = Mutex.create (); table = Hashtbl.create 16 }

let cell t name =
  match Hashtbl.find_opt t.table name with
  | Some c -> c
  | None ->
      Mutex.protect t.mu (fun () ->
          match Hashtbl.find_opt t.table name with
          | Some c -> c
          | None ->
              let c = Atomic.make 0 in
              Hashtbl.replace t.table name c;
              c)

let add t name by = ignore (Atomic.fetch_and_add (cell t name) by)

let incr t name = add t name 1

(* Gauge semantics: overwrite instead of accumulate, for values that
   describe a current level (the daemon's repair backlog depth, its
   active epoch) rather than a running total. *)
let set t name v = Atomic.set (cell t name) v

let get t name = match Hashtbl.find_opt t.table name with Some c -> Atomic.get c | None -> 0

let snapshot t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c) :: acc) t.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json t =
  let module J = Cr_util.Jsonl in
  J.obj (List.map (fun (name, v) -> (name, J.int v)) (snapshot t))

(* A sink that tallies events by constructor label under a prefix. *)
let sink ?(prefix = "trace.") t ev = incr t (prefix ^ Trace.label ev)
