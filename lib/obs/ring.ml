(* Bounded ring buffer: the default trace sink.  Keeps the most recent
   [capacity] items, counts what it had to drop, never grows.

   A single mutex serializes push/clear/to_list so multiple domains can
   share one sink: pushes interleave in some order, but the ring's
   invariants (filled <= capacity, pushed = filled + dropped, to_list
   returns whole items oldest-first) hold under any interleaving.  The
   ring is a debug path — one uncontended lock per push is noise next
   to formatting an event. *)

type 'a t = {
  lock : Mutex.t;
  buf : 'a option array;
  mutable next : int; (* slot to write *)
  mutable filled : int; (* items currently held, <= capacity *)
  mutable dropped : int; (* items overwritten since creation/clear *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { lock = Mutex.create (); buf = Array.make capacity None; next = 0; filled = 0; dropped = 0 }

let locked t f = Mutex.protect t.lock f

let capacity t = Array.length t.buf

let length t = locked t (fun () -> t.filled)

let dropped t = locked t (fun () -> t.dropped)

let push t x =
  locked t (fun () ->
      let cap = Array.length t.buf in
      if t.filled = cap then t.dropped <- t.dropped + 1 else t.filled <- t.filled + 1;
      t.buf.(t.next) <- Some x;
      t.next <- (t.next + 1) mod cap)

let clear t =
  locked t (fun () ->
      Array.fill t.buf 0 (Array.length t.buf) None;
      t.next <- 0;
      t.filled <- 0;
      t.dropped <- 0)

(* oldest first *)
let to_list t =
  locked t (fun () ->
      let cap = Array.length t.buf in
      let start = (t.next - t.filled + cap) mod cap in
      List.init t.filled (fun i ->
          match t.buf.((start + i) mod cap) with
          | Some x -> x
          | None -> assert false))

let iter f t = List.iter f (to_list t)
