(* Construction profiling: wall-clock timers and bit counters around the
   preprocessing stages (APSP, decomposition, landmark hierarchy, tree
   and cover builds, table sweeps), reported per stage in seconds and
   bits.  Stages keep insertion order, so reports read like the
   pipeline. *)

(* The monotonic stage clock.  OCaml's stdlib exposes no monotonic
   counter, so this defaults to [Unix.gettimeofday] — same source the
   engine's throughput metrics use; good to ~us and only wrong across a
   wall-clock step.  Swappable for tests (and for an mtime-backed clock
   where available). *)
let clock : (unit -> float) ref = ref Unix.gettimeofday

type stage = { name : string; mutable seconds : float; mutable bits : int; mutable calls : int }

type t = { mutable stages : stage list (* reversed insertion order *) }

let create () = { stages = [] }

let stage t name =
  match List.find_opt (fun s -> s.name = name) t.stages with
  | Some s -> s
  | None ->
      let s = { name; seconds = 0.0; bits = 0; calls = 0 } in
      t.stages <- s :: t.stages;
      s

let add_seconds t name secs =
  let s = stage t name in
  s.seconds <- s.seconds +. secs;
  s.calls <- s.calls + 1

let add_bits t name bits = (stage t name).bits <- (stage t name).bits + bits

let time t name f =
  let t0 = !clock () in
  Fun.protect ~finally:(fun () -> add_seconds t name (!clock () -. t0)) f

let stages t = List.rev_map (fun s -> (s.name, s.seconds, s.bits)) t.stages

let total_seconds t = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 t.stages

let total_bits t = List.fold_left (fun acc s -> acc + s.bits) 0 t.stages

let report ?title t =
  let module T = Cr_util.Ascii_table in
  let table =
    T.create ?title
      [ ("stage", T.Left); ("seconds", T.Right); ("share", T.Right); ("bits", T.Right) ]
  in
  let total = total_seconds t in
  List.iter
    (fun (name, secs, bits) ->
      T.add_row table
        [
          name;
          Printf.sprintf "%.4f" secs;
          (if total > 0.0 then Printf.sprintf "%.1f%%" (100.0 *. secs /. total) else "-");
          (if bits = 0 then "-" else T.fmt_bits bits);
        ])
    (stages t);
  T.add_sep table;
  T.add_row table
    [ "total"; Printf.sprintf "%.4f" total; "";
      (if total_bits t = 0 then "-" else T.fmt_bits (total_bits t)) ];
  T.render table

let to_json t =
  let module J = Cr_util.Jsonl in
  let stage_obj (name, secs, bits) =
    J.obj [ ("stage", J.str name); ("seconds", J.float secs); ("bits", J.int bits) ]
  in
  J.obj
    [
      ("total_seconds", J.float (total_seconds t));
      ("total_bits", J.int (total_bits t));
      ("stages", "[" ^ String.concat "," (List.map stage_obj (stages t)) ^ "]");
    ]
