(** Hop-level route tracing.

    [Scheme.route] takes an optional {!sink}; when present, the routing
    procedure narrates itself as structured events — which sparse/dense
    phase fired, where the j-bounded tree searches wandered, where a
    failure simulation stalled and deflected.  The contract (tested):

    - with no sink, routing does no extra work and allocates nothing;
    - with a sink, the routed walk is {e bit-identical} to the untraced
      one — events are pure annotation. *)

type phase_kind =
  | Sparse  (** AGM'06 sparse phase: climb to a center, j-bounded Lemma 4 search *)
  | Dense  (** AGM'06 dense phase: home cover cluster, Lemma 7 search *)
  | Global  (** final fallback on the top-rank landmark's spanning tree *)
  | Direct  (** single-shot schemes (full tables, single tree, …) *)
  | Vicinity  (** TZ bunch / S³ vicinity shortest-path hit *)
  | Pivot  (** TZ indirection through a destination pivot *)
  | Color  (** S³ indirection through a color-directory node *)

val kind_to_string : phase_kind -> string

type event =
  | Phase_start of { phase : int; kind : phase_kind; center : int; bound : int }
      (** A search phase begins.  [center] is the tree root / relay node
          the phase targets; [bound] is the search budget [j] for sparse
          phases, the cover level for dense phases, [k] for the global
          phase, and the pivot level for [Pivot]. *)
  | Climb of { phase : int; from_node : int; to_node : int; hops : int }
      (** Tree ascent/descent between the current node and the phase
          center (and back after a negative response). *)
  | Tree_step of { round : int; from_node : int; to_node : int }
      (** One round of a bounded tree search: moving to the trie node
          named by the next hash digit (Lemma 4) or descending to a
          directory node (Lemma 7). *)
  | Phase_result of { phase : int; found : bool; rounds : int }
  | Stall of { at : int; toward : int }
      (** Failure simulation: the planned hop [at -> toward] is dead. *)
  | Deflect of { at : int; via : int }
      (** Failure simulation: local detour to an alive neighbor. *)
  | Replan of { at : int }  (** Failure simulation: fresh route request. *)
  | Deliver of { phase : int; node : int }
  | No_route of { phase : int }
  | Bunch_probe of { level : int; active : int; witness : int; hit : bool }
      (** Oracle query: the level-[level] pivot [witness] of the
          currently-[active] endpoint was probed against the other
          endpoint's bunch. *)
  | Stitch of { via : int; up_hops : int; down_hops : int }
      (** Oracle path report: the returned walk climbs [up_hops] tree
          edges to the meeting witness [via] and descends [down_hops] to
          the destination. *)

type sink = event -> unit

val label : event -> string
(** Stable snake_case name of the constructor — counter keys and the
    ["event"] field of {!event_to_json}. *)

val phase_of : event -> int option
(** The phase an event is attributed to, when it carries one. *)

val event_to_string : event -> string
(** One-line human-readable annotation ([crt trace] table rows). *)

val event_to_json : event -> string
(** One strict-JSON object per event (single line), e.g.
    [{"event":"phase_start","phase":1,"kind":"sparse","center":7,"bound":2}]. *)

val tee : sink -> sink -> sink
(** Fan one event stream into two sinks (e.g. ring buffer + counters). *)
