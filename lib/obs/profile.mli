(** Construction profiling: per-stage wall-clock timers and bit
    counters for the preprocessing pipeline.

    A profile is a mutable set of named stages in first-touch order.
    [Agm06.build ?profile] charges its stages (decomposition, landmark
    hierarchy, nearby sets, sparse trees, dense covers, local records)
    and [crt build --profile] adds APSP around it, reporting
    bits-and-seconds per stage. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t stage f] runs [f ()], charging its wall time to [stage]
    (accumulating across calls; exceptions still charge). *)

val add_seconds : t -> string -> float -> unit

val add_bits : t -> string -> int -> unit
(** Attribute storage volume to a stage (e.g. the bits the stage's
    tables occupy), so a report shows where both time and space go. *)

val stages : t -> (string * float * int) list
(** [(name, seconds, bits)] per stage, in first-touch order. *)

val total_seconds : t -> float

val total_bits : t -> int

val report : ?title:string -> t -> string
(** Rendered ASCII table (stage, seconds, share, bits) ending in a
    newline. *)

val to_json : t -> string
(** One strict-JSON object with a [stages] array, in stage order. *)

val clock : (unit -> float) ref
(** The stage clock, defaulting to [Unix.gettimeofday] (the stdlib has
    no monotonic source).  Tests substitute a fake clock to make timing
    assertions deterministic. *)
