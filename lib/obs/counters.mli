(** Named monotonic counters with thread-safe increments.

    One instance can be fed concurrently by every lane of the batch
    engine: the name table is mutex-guarded, each counter is an
    [Atomic], and {!snapshot} is consistent per counter (the set of
    names is read under the lock). *)

type t

val create : unit -> t

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val set : t -> string -> int -> unit
(** Gauge write: overwrites the counter with a current level (backlog
    depth, active epoch) instead of accumulating. *)

val get : t -> string -> int
(** 0 for a never-touched counter. *)

val snapshot : t -> (string * int) list
(** All counters, sorted by name. *)

val to_json : t -> string
(** One strict-JSON object: [{"name":count,...}], names sorted. *)

val sink : ?prefix:string -> t -> Trace.sink
(** Aggregating trace sink: each event bumps [prefix ^ Trace.label ev]
    ([prefix] defaults to ["trace."]).  Combine with a ring buffer via
    {!Trace.tee} to keep both the tail and the totals. *)
