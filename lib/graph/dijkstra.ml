type result = {
  source : int;
  dist : float array;
  parent : int array;
  parent_port : int array;
}

let run_general g ~allowed ~max_edge ~bound s =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Dijkstra: source out of range";
  if not (allowed s) then invalid_arg "Dijkstra: source not allowed";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let parent_port = Array.make n (-1) in
  let heap = Heap.create n in
  dist.(s) <- 0.0;
  Heap.insert heap s 0.0;
  let settled = Array.make n false in
  while not (Heap.is_empty heap) do
    let u, du = Heap.pop_min heap in
    if not settled.(u) then begin
      settled.(u) <- true;
      (* No equal-distance parent rewriting: with extreme aspect ratios,
         floating-point rounding can make [du +. w = du], and a
         lexicographic tie-break would then create parent cycles.  The
         heap's strict (priority, element) total order already makes the
         settle order — and so the tree — a pure function of the graph
         and source, independent of relaxation history; [Apsp.repair]
         relies on that to share clean sources' results bit-identically
         across mutations that cannot affect them. *)
      let relax (v, w) =
        if allowed v && w <= max_edge && not settled.(v) then begin
          let dv = du +. w in
          if dv <= bound && dv < dist.(v) then begin
            dist.(v) <- dv;
            parent.(v) <- u;
            (match Graph.port g v u with
            | Some p -> parent_port.(v) <- p
            | None -> assert false);
            Heap.insert_or_decrease heap v dv
          end
        end
      in
      Array.iter relax (Graph.neighbors g u)
    end
  done;
  { source = s; dist; parent; parent_port }

let all _ = true

let run g s = run_general g ~allowed:all ~max_edge:infinity ~bound:infinity s

let run_bounded g s r = run_general g ~allowed:all ~max_edge:infinity ~bound:r s

let run_restricted g ~allowed ?(max_edge = infinity) ?(bound = infinity) s =
  run_general g ~allowed ~max_edge ~bound s

let path_to res t =
  if res.dist.(t) = infinity then raise Not_found;
  let rec up v acc = if v = res.source then v :: acc else up res.parent.(v) (v :: acc) in
  up t []

let bellman_ford g s =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  dist.(s) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    Graph.iter_edges g (fun u v w ->
        if dist.(u) +. w < dist.(v) then begin
          dist.(v) <- dist.(u) +. w;
          changed := true
        end;
        if dist.(v) +. w < dist.(u) then begin
          dist.(u) <- dist.(v) +. w;
          changed := true
        end)
  done;
  dist

let eccentricity res =
  Array.fold_left (fun acc d -> if d < infinity && d > acc then d else acc) 0.0 res.dist
