type t = {
  n : int;
  m : int;
  adj : (int * float) array array;
  names : int array;
}

(* Structural fingerprint sampling a bounded prefix of the adjacency
   (at most 64 nodes, 8 edges each, stride-spread over the node range),
   so it stays O(1) in the graph size yet separates graphs that merely
   share (n, m): topology enters through the sampled neighbor indexes
   and degrees, weights through their exact bit patterns.  Used both
   for the physical-identity cache below and as the salt that keys
   shared plan-cache fingerprints to a specific graph. *)
let mix h x =
  let x = (h lxor x) * 0x4be98134a5976fd3 in
  let x = (x lxor (x lsr 29)) * 0x3bbf2a01358fb6d5 in
  (x lxor (x lsr 32)) land max_int

let hash g =
  let node_samples = 64 and edge_samples = 8 in
  let stride = max 1 ((g.n + node_samples - 1) / node_samples) in
  let h = ref (mix g.n g.m) in
  let u = ref 0 in
  while !u < g.n do
    let a = g.adj.(!u) in
    h := mix !h (Array.length a);
    for j = 0 to min (Array.length a) edge_samples - 1 do
      let v, w = a.(j) in
      h := mix !h v;
      h := mix !h (Int64.to_int (Int64.bits_of_float w))
    done;
    u := !u + stride
  done;
  !h

(* Cache of name->index tables, keyed by physical identity of the graph
   (the bounded-prefix structural hash keeps this O(1)). *)
module Phys_tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( == )

  let hash = hash
end)

let name_index_cache : (int, int) Hashtbl.t Phys_tbl.t = Phys_tbl.create 16

let create ?names ~n edges =
  if n < 0 then invalid_arg "Graph.create: negative n";
  let names =
    match names with
    | None -> Array.init n (fun i -> i)
    | Some a ->
        if Array.length a <> n then invalid_arg "Graph.create: names length mismatch";
        Array.copy a
  in
  (* Merge parallel edges keeping the minimum weight. *)
  let tbl = Hashtbl.create (2 * List.length edges) in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.create: node out of range";
      if u = v then invalid_arg "Graph.create: self-loop";
      if not (w > 0.0) then invalid_arg "Graph.create: non-positive weight";
      let key = if u < v then (u, v) else (v, u) in
      match Hashtbl.find_opt tbl key with
      | Some w' when w' <= w -> ()
      | _ -> Hashtbl.replace tbl key w)
    edges;
  let deg = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) _ ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    tbl;
  let adj = Array.init n (fun u -> Array.make deg.(u) (0, 0.0)) in
  let fill = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) w ->
      adj.(u).(fill.(u)) <- (v, w);
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- (u, w);
      fill.(v) <- fill.(v) + 1)
    tbl;
  Array.iter (fun a -> Array.sort (fun (x, _) (y, _) -> compare x y) a) adj;
  { n; m = Hashtbl.length tbl; adj; names }

let n g = g.n

let m g = g.m

let degree g u = Array.length g.adj.(u)

let max_degree g = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

let neighbors g u = g.adj.(u)

let iter_edges g f =
  Array.iteri
    (fun u a -> Array.iter (fun (v, w) -> if u < v then f u v w) a)
    g.adj

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v w -> acc := (u, v, w) :: !acc);
  List.rev !acc

(* Binary search in the sorted adjacency array. *)
let find_port g u v =
  let a = g.adj.(u) in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let res = ref None in
  while !res = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x, _ = a.(mid) in
    if x = v then res := Some mid else if x < v then lo := mid + 1 else hi := mid - 1
  done;
  !res

let port g u v = find_port g u v

let has_edge g u v = find_port g u v <> None

let edge_weight g u v =
  match find_port g u v with None -> None | Some p -> Some (snd g.adj.(u).(p))

let via_port g u p =
  let a = g.adj.(u) in
  if p < 0 || p >= Array.length a then invalid_arg "Graph.via_port: bad port";
  a.(p)

let name_of g u = g.names.(u)

let index_of_name g name =
  let tbl =
    match Phys_tbl.find_opt name_index_cache g with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create g.n in
        Array.iteri (fun i nm -> Hashtbl.replace tbl nm i) g.names;
        Phys_tbl.replace name_index_cache g tbl;
        tbl
  in
  Hashtbl.find_opt tbl name

let fold_weights f init g =
  let acc = ref init in
  iter_edges g (fun _ _ w -> acc := f !acc w);
  !acc

let min_weight g = fold_weights min infinity g

let max_weight g = fold_weights max 0.0 g

let map_weights g f =
  let adj = Array.map (Array.map (fun (v, w) -> (v, f v w))) g.adj in
  (* f is applied per directed entry; caller must be symmetric. *)
  { g with adj }

let normalize g =
  let wmin = min_weight g in
  if g.m = 0 || wmin = 1.0 then g
  else map_weights g (fun _ w -> w /. wmin)

let reweight g f =
  (* Rebuild from the undirected edge list so that [f] is applied exactly
     once per edge — [f] may be stateful (e.g. draw random weights). *)
  let acc = ref [] in
  iter_edges g (fun u v w ->
      let w' = f u v w in
      if not (w' > 0.0) then invalid_arg "Graph.reweight: non-positive weight";
      acc := (u, v, w') :: !acc);
  create ~names:(Array.copy g.names) ~n:g.n !acc

let induced g nodes =
  let k = Array.length nodes in
  let map = Hashtbl.create k in
  Array.iteri
    (fun i u ->
      if Hashtbl.mem map u then invalid_arg "Graph.induced: duplicate node";
      Hashtbl.replace map u i)
    nodes;
  let edges = ref [] in
  Array.iteri
    (fun i u ->
      Array.iter
        (fun (v, w) ->
          match Hashtbl.find_opt map v with
          | Some j when i < j -> edges := (i, j, w) :: !edges
          | _ -> ())
        g.adj.(u))
    nodes;
  let names = Array.map (fun u -> g.names.(u)) nodes in
  (create ~names ~n:k !edges, nodes)

(* ---- online mutations -------------------------------------------------

   The churn vocabulary of the route daemon: weight changes, link
   up/down, node crash/recover.  Mutations are persistent — [apply]
   returns a fresh graph and never touches the input — so a serving
   epoch can keep routing from the old graph while repair works on the
   new one.  [Set_weight] preserves the adjacency structure exactly
   (same neighbor order, hence same port numbers); the structural
   mutations rebuild through [create], which re-sorts adjacencies the
   same deterministic way the original construction did. *)

type mutation =
  | Set_weight of int * int * float
  | Link_down of int * int
  | Link_up of int * int * float
  | Node_down of int
  | Node_up of int

let structural = function
  | Set_weight _ | Node_up _ -> false
  | Link_down _ | Link_up _ | Node_down _ -> true

let mutation_to_string = function
  | Set_weight (u, v, w) -> Printf.sprintf "setw %d %d %.17g" u v w
  | Link_down (u, v) -> Printf.sprintf "linkdown %d %d" u v
  | Link_up (u, v, w) -> Printf.sprintf "linkup %d %d %.17g" u v w
  | Node_down u -> Printf.sprintf "nodedown %d" u
  | Node_up u -> Printf.sprintf "nodeup %d" u

let apply g mu =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let check_node what u =
    if u < 0 || u >= g.n then fail "Graph.apply: %s %d out of range [0, %d)" what u g.n
  in
  let check_weight w =
    if not (Float.is_finite w && w > 0.0) then
      fail "Graph.apply: weight %g must be positive and finite" w
  in
  match mu with
  | Set_weight (u, v, w) ->
      check_node "endpoint" u;
      check_node "endpoint" v;
      check_weight w;
      if find_port g u v = None then fail "Graph.apply: setw on missing edge (%d, %d)" u v;
      (* weight-only change: copy the adjacency, patch both directed
         entries in place — ports are untouched by construction *)
      let adj = Array.map Array.copy g.adj in
      let patch x y =
        match find_port g x y with
        | Some p -> adj.(x).(p) <- (y, w)
        | None -> assert false
      in
      patch u v;
      patch v u;
      { g with adj }
  | Link_down (u, v) ->
      check_node "endpoint" u;
      check_node "endpoint" v;
      if find_port g u v = None then fail "Graph.apply: linkdown on missing edge (%d, %d)" u v;
      let es = List.filter (fun (a, b, _) -> not ((a = u && b = v) || (a = v && b = u))) (edges g) in
      create ~names:(Array.copy g.names) ~n:g.n es
  | Link_up (u, v, w) ->
      check_node "endpoint" u;
      check_node "endpoint" v;
      if u = v then fail "Graph.apply: linkup self-loop at node %d" u;
      check_weight w;
      if find_port g u v <> None then fail "Graph.apply: linkup on existing edge (%d, %d)" u v;
      create ~names:(Array.copy g.names) ~n:g.n ((u, v, w) :: edges g)
  | Node_down u ->
      check_node "node" u;
      let es = List.filter (fun (a, b, _) -> a <> u && b <> u) (edges g) in
      create ~names:(Array.copy g.names) ~n:g.n es
  | Node_up u ->
      (* recovery restores the node as an isolated participant; its
         links come back through explicit linkups (real churn: a
         rebooted router renegotiates each adjacency) *)
      check_node "node" u;
      g

let apply_all g mus = List.fold_left apply g mus

let relabel rng g =
  (* Random distinct identifiers drawn from a space 16x larger than n,
     so names carry no topological information. *)
  let space = max 16 (16 * g.n) in
  let fresh = Cr_util.Rng.sample_without_replacement rng g.n space in
  { g with names = fresh }
