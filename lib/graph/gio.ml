exception Parse_error of int * string

let () =
  Printexc.register_printer (function
    | Parse_error (line, msg) -> Some (Printf.sprintf "Gio.Parse_error: line %d: %s" line msg)
    | _ -> None)

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph %d %d\n" (Graph.n g) (Graph.m g));
  for u = 0 to Graph.n g - 1 do
    if Graph.name_of g u <> u then
      Buffer.add_string buf (Printf.sprintf "name %d %d\n" u (Graph.name_of g u))
  done;
  Graph.iter_edges g (fun u v w ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g\n" u v w));
  Buffer.contents buf

let of_string s =
  let fail lineno fmt = Printf.ksprintf (fun msg -> raise (Parse_error (lineno, msg))) fmt in
  let parse_int lineno what tok =
    match int_of_string_opt tok with
    | Some v -> v
    | None -> fail lineno "malformed %s %S (expected an integer)" what tok
  in
  let parse_float lineno what tok =
    match float_of_string_opt tok with
    | Some v -> v
    | None -> fail lineno "malformed %s %S (expected a number)" what tok
  in
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let names = ref [] in
  (* (lineno, u, v, w) — kept for range re-checks once [n] is known *)
  let edges = ref [] in
  let parse_line i line =
    let lineno = i + 1 in
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else begin
      match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
      | [ "graph"; sn; sm ] ->
          if !n >= 0 then fail lineno "duplicate graph header";
          let hn = parse_int lineno "node count" sn in
          ignore (parse_int lineno "edge count" sm);
          if hn < 0 then fail lineno "negative node count %d" hn;
          n := hn
      | [ "name"; su; sname ] ->
          let u = parse_int lineno "node index" su in
          let nm = parse_int lineno "identifier" sname in
          names := (lineno, u, nm) :: !names
      | [ "edge"; su; sv; sw ] ->
          let u = parse_int lineno "endpoint" su in
          let v = parse_int lineno "endpoint" sv in
          let w = parse_float lineno "weight" sw in
          if u = v then fail lineno "self-loop at node %d" u;
          if not (Float.is_finite w) || w <= 0.0 then
            fail lineno "edge weight %g must be positive and finite" w;
          edges := (lineno, u, v, w) :: !edges
      | ("graph" | "name" | "edge") :: _ as toks ->
          fail lineno "wrong number of fields for %S record" (List.hd toks)
      | _ -> fail lineno "unrecognized record %S" line
    end
  in
  List.iteri parse_line lines;
  if !n < 0 then raise (Parse_error (0, "missing graph header"));
  let n = !n in
  let check_index lineno what u =
    if u < 0 || u >= n then fail lineno "%s %d out of range [0, %d)" what u n
  in
  let name_arr = Array.init n (fun i -> i) in
  List.iter
    (fun (lineno, u, nm) ->
      check_index lineno "node index" u;
      name_arr.(u) <- nm)
    !names;
  let edge_list =
    List.rev_map
      (fun (lineno, u, v, w) ->
        check_index lineno "edge endpoint" u;
        check_index lineno "edge endpoint" v;
        (u, v, w))
      !edges
  in
  try Graph.create ~names:name_arr ~n edge_list
  with Invalid_argument msg -> raise (Parse_error (0, msg))

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = really_input_string ic len in
      of_string buf)
