exception Parse_error of int * string

let () =
  Printexc.register_printer (function
    | Parse_error (line, msg) -> Some (Printf.sprintf "Gio.Parse_error: line %d: %s" line msg)
    | _ -> None)

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph %d %d\n" (Graph.n g) (Graph.m g));
  for u = 0 to Graph.n g - 1 do
    if Graph.name_of g u <> u then
      Buffer.add_string buf (Printf.sprintf "name %d %d\n" u (Graph.name_of g u))
  done;
  Graph.iter_edges g (fun u v w ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g\n" u v w));
  Buffer.contents buf

let of_string s =
  let fail lineno fmt = Printf.ksprintf (fun msg -> raise (Parse_error (lineno, msg))) fmt in
  let parse_int lineno what tok =
    match int_of_string_opt tok with
    | Some v -> v
    | None -> fail lineno "malformed %s %S (expected an integer)" what tok
  in
  let parse_float lineno what tok =
    match float_of_string_opt tok with
    | Some v -> v
    | None -> fail lineno "malformed %s %S (expected a number)" what tok
  in
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let names = ref [] in
  (* (lineno, u, v, w) — kept for range re-checks once [n] is known *)
  let edges = ref [] in
  let parse_line i line =
    let lineno = i + 1 in
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else begin
      match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
      | [ "graph"; sn; sm ] ->
          if !n >= 0 then fail lineno "duplicate graph header";
          let hn = parse_int lineno "node count" sn in
          ignore (parse_int lineno "edge count" sm);
          if hn < 0 then fail lineno "negative node count %d" hn;
          n := hn
      | [ "name"; su; sname ] ->
          let u = parse_int lineno "node index" su in
          let nm = parse_int lineno "identifier" sname in
          names := (lineno, u, nm) :: !names
      | [ "edge"; su; sv; sw ] ->
          let u = parse_int lineno "endpoint" su in
          let v = parse_int lineno "endpoint" sv in
          let w = parse_float lineno "weight" sw in
          if u = v then fail lineno "self-loop at node %d" u;
          if not (Float.is_finite w) || w <= 0.0 then
            fail lineno "edge weight %g must be positive and finite" w;
          edges := (lineno, u, v, w) :: !edges
      | ("graph" | "name" | "edge") :: _ as toks ->
          fail lineno "wrong number of fields for %S record" (List.hd toks)
      | _ -> fail lineno "unrecognized record %S" line
    end
  in
  List.iteri parse_line lines;
  if !n < 0 then raise (Parse_error (0, "missing graph header"));
  let n = !n in
  let check_index lineno what u =
    if u < 0 || u >= n then fail lineno "%s %d out of range [0, %d)" what u n
  in
  let name_arr = Array.init n (fun i -> i) in
  List.iter
    (fun (lineno, u, nm) ->
      check_index lineno "node index" u;
      name_arr.(u) <- nm)
    !names;
  let edge_list =
    List.rev_map
      (fun (lineno, u, v, w) ->
        check_index lineno "edge endpoint" u;
        check_index lineno "edge endpoint" v;
        (u, v, w))
      !edges
  in
  try Graph.create ~names:name_arr ~n edge_list
  with Invalid_argument msg -> raise (Parse_error (0, msg))

(* ---- mutation logs ----------------------------------------------------

   The daemon's append-only churn journal shares this module's
   line-oriented discipline: one mutation per line in the spelling of
   [Graph.mutation_to_string], '#' comments and blank lines allowed,
   and every malformed record is a [Parse_error] carrying its 1-based
   line number, so a corrupt journal names the exact line that broke
   replay.  The grammar is shared with the daemon protocol: the
   protocol parser feeds its mutation keywords through
   [mutation_of_tokens] with the session's input line number. *)

let mutation_of_tokens ~lineno tokens =
  let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error (lineno, msg))) fmt in
  let parse_int what tok =
    match int_of_string_opt tok with
    | Some v -> v
    | None -> fail "malformed %s %S (expected an integer)" what tok
  in
  let parse_weight tok =
    match float_of_string_opt tok with
    | Some w when Float.is_finite w && w > 0.0 -> w
    | Some w -> fail "mutation weight %g must be positive and finite" w
    | None -> fail "malformed weight %S (expected a number)" tok
  in
  match tokens with
  | [ "setw"; su; sv; sw ] ->
      Graph.Set_weight (parse_int "endpoint" su, parse_int "endpoint" sv, parse_weight sw)
  | [ "linkdown"; su; sv ] -> Graph.Link_down (parse_int "endpoint" su, parse_int "endpoint" sv)
  | [ "linkup"; su; sv; sw ] ->
      Graph.Link_up (parse_int "endpoint" su, parse_int "endpoint" sv, parse_weight sw)
  | [ "nodedown"; su ] -> Graph.Node_down (parse_int "node" su)
  | [ "nodeup"; su ] -> Graph.Node_up (parse_int "node" su)
  | ("setw" | "linkdown" | "linkup" | "nodedown" | "nodeup") :: _ as toks ->
      fail "wrong number of fields for %S record" (List.hd toks)
  | tok :: _ -> fail "unrecognized mutation %S" tok
  | [] -> fail "empty mutation record"

let mutation_of_string ?(lineno = 1) line =
  let tokens = String.split_on_char ' ' (String.trim line) |> List.filter (fun t -> t <> "") in
  mutation_of_tokens ~lineno tokens

let mutations_of_string s =
  let acc = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then acc := mutation_of_string ~lineno line :: !acc)
    (String.split_on_char '\n' s);
  List.rev !acc

let mutations_to_string mus =
  String.concat "" (List.map (fun m -> Graph.mutation_to_string m ^ "\n") mus)

let load_mutations path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      mutations_of_string (really_input_string ic len))

(* ---- snapshot codec ----------------------------------------------------

   A snapshot is a checkpoint of the daemon's durable state: the graph
   with every acknowledged mutation applied, plus the journal position
   that graph corresponds to (record count and byte offset), plus the
   serving epoch id at checkpoint time.  The whole body is covered by a
   CRC32 in the header line, so a snapshot interrupted mid-write (or
   bit-rotted on disk) parses as invalid and recovery falls back to an
   older checkpoint — it can never silently load half a graph. *)

type snapshot = {
  epoch : int;
  journal_records : int;
  journal_offset : int;
  graph : Graph.t;
}

let snapshot_version = 1

let snapshot_to_string s =
  let body = to_string s.graph in
  Printf.sprintf "snapshot %d %d %d %d %s\n%s" snapshot_version s.epoch s.journal_records
    s.journal_offset
    (Cr_util.Crc.to_hex (Cr_util.Crc.string body))
    body

let snapshot_of_string text =
  let fail lineno fmt = Printf.ksprintf (fun msg -> raise (Parse_error (lineno, msg))) fmt in
  let header, body =
    match String.index_opt text '\n' with
    | Some i -> (String.sub text 0 i, String.sub text (i + 1) (String.length text - i - 1))
    | None -> fail 1 "missing snapshot body"
  in
  match String.split_on_char ' ' (String.trim header) |> List.filter (fun t -> t <> "") with
  | [ "snapshot"; sv; se; sr; so; scrc ] ->
      let parse_int what tok =
        match int_of_string_opt tok with
        | Some v when v >= 0 -> v
        | Some v -> fail 1 "negative %s %d" what v
        | None -> fail 1 "malformed %s %S (expected an integer)" what tok
      in
      let v = parse_int "snapshot version" sv in
      if v <> snapshot_version then fail 1 "unsupported snapshot version %d (expected %d)" v snapshot_version;
      let epoch = parse_int "epoch" se in
      let journal_records = parse_int "journal record count" sr in
      let journal_offset = parse_int "journal offset" so in
      let expected =
        match Cr_util.Crc.of_hex scrc with
        | Some c -> c
        | None -> fail 1 "malformed snapshot checksum %S" scrc
      in
      let actual = Cr_util.Crc.string body in
      if actual <> expected then
        fail 1 "snapshot checksum mismatch (header %s, body %s): torn or corrupt write"
          scrc (Cr_util.Crc.to_hex actual);
      let graph =
        (* body line numbers are offset by the header line *)
        try of_string body with Parse_error (l, msg) -> raise (Parse_error (l + 1, msg))
      in
      { epoch; journal_records; journal_offset; graph }
  | "snapshot" :: _ -> fail 1 "wrong number of fields for snapshot header"
  | _ -> fail 1 "missing snapshot header"

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = really_input_string ic len in
      of_string buf)
