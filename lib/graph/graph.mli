(** Weighted undirected graphs with port-numbered adjacency.

    This is the network model of the paper (§2.1): a weighted graph
    [G = (V, E, ω)] with positive edge weights and [n] nodes carrying
    arbitrary names.  Nodes are indexed [0 .. n-1] internally; the
    arbitrary (name-independent) identifiers live in a separate
    {!field:names} array so that schemes can be tested against adversarial
    namings.

    The adjacency of each node is an ordered array of (neighbor, weight)
    pairs; the index of an entry is the {e port} by which a routing table
    refers to that link, matching the local-decision model of compact
    routing. *)

type t = private {
  n : int;  (** number of nodes *)
  m : int;  (** number of undirected edges *)
  adj : (int * float) array array;
      (** [adj.(u)] lists [(v, w)] for each edge incident to [u], sorted by
          neighbor index; the position in this array is the port number. *)
  names : int array;
      (** [names.(u)] is the arbitrary network identifier of node [u]. *)
}

val create : ?names:int array -> n:int -> (int * int * float) list -> t
(** [create ~n edges] builds a graph on [n] nodes from an undirected edge
    list.  Self-loops are rejected; parallel edges are merged keeping the
    minimum weight; weights must be strictly positive.  [names] defaults
    to the identity naming.
    @raise Invalid_argument on malformed input. *)

val n : t -> int

val m : t -> int

val hash : t -> int
(** Structural fingerprint: folds [(n, m)] with a bounded prefix of the
    adjacency (sampled nodes' degrees, neighbor indexes and exact
    weight bits), so it is O(1) in the graph size but separates graphs
    that merely share node/edge counts.  Deterministic for equal
    structure; used to salt shared plan-cache fingerprints so cache
    keys are tied to the graph they were computed on. *)

val degree : t -> int -> int

val max_degree : t -> int

val neighbors : t -> int -> (int * float) array
(** Adjacency array of a node (do not mutate). *)

val iter_edges : t -> (int -> int -> float -> unit) -> unit
(** Iterates every undirected edge once, with [u < v]. *)

val edges : t -> (int * int * float) list
(** Edge list with [u < v]. *)

val edge_weight : t -> int -> int -> float option
(** Weight of edge [(u,v)] if present. *)

val has_edge : t -> int -> int -> bool

val port : t -> int -> int -> int option
(** [port g u v] is the port at [u] leading to [v], if the edge exists. *)

val via_port : t -> int -> int -> int * float
(** [via_port g u p] is the (neighbor, weight) reached from [u] through
    port [p].
    @raise Invalid_argument if [p] is out of range. *)

val name_of : t -> int -> int
(** Network identifier of a node index. *)

val index_of_name : t -> int -> int option
(** Inverse of {!name_of} (built lazily, O(1) after first use). *)

val min_weight : t -> float
(** Smallest edge weight; [infinity] on an edgeless graph. *)

val max_weight : t -> float
(** Largest edge weight; [0.] on an edgeless graph. *)

val normalize : t -> t
(** Rescales all weights so the minimum edge weight is [1.0], the
    normalization the paper assumes ("assume min d(u,v) = 1", §2.1). *)

val reweight : t -> (int -> int -> float -> float) -> t
(** [reweight g f] replaces each edge weight [w] of edge [(u,v)] by
    [f u v w] (must stay positive). *)

val induced : t -> int array -> t * int array
(** [induced g nodes] is the subgraph induced by the given node indexes
    (which must be distinct).  Returns the subgraph (whose node [i]
    corresponds to [nodes.(i)], and inherits its name) and the [nodes]
    array itself as the index map back to [g]. *)

(** {2 Online mutations}

    The churn vocabulary of the route daemon ([Cr_daemon]).  Mutations
    are persistent: {!apply} returns a fresh graph and never touches
    its input, so a serving epoch keeps routing from the old graph
    while repair rebuilds over the new one. *)

type mutation =
  | Set_weight of int * int * float
      (** reweight an existing edge (adjacency — and therefore every
          port number — is preserved exactly) *)
  | Link_down of int * int  (** remove an existing edge *)
  | Link_up of int * int * float  (** insert a missing edge *)
  | Node_down of int  (** crash: remove every incident edge *)
  | Node_up of int
      (** recover: the node returns isolated; links are re-established
          by explicit [Link_up]s (structurally a no-op) *)

val structural : mutation -> bool
(** Whether the mutation changes adjacency (and thus shifts port
    numbers): true for link/node topology changes, false for
    [Set_weight] and [Node_up]. *)

val mutation_to_string : mutation -> string
(** The mutation-log / daemon-protocol spelling ([setw u v w],
    [linkdown u v], [linkup u v w], [nodedown u], [nodeup u]); parsed
    back by [Gio.mutation_of_tokens]. *)

val apply : t -> mutation -> t
(** Applies one mutation, validating it against the current graph
    (range checks, positive finite weights, edge existence for [setw]
    and [linkdown], absence for [linkup]).
    @raise Invalid_argument on an inapplicable mutation. *)

val apply_all : t -> mutation list -> t
(** Left fold of {!apply}. *)

val relabel : Cr_util.Rng.t -> t -> t
(** Assigns fresh uniformly random distinct identifiers to all nodes —
    the adversarial arbitrary naming of the name-independent model. *)
