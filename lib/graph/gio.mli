(** Plain-text graph serialization.

    Format (one record per line, '#' comments allowed):
    {v
    graph <n> <m>
    name <node> <identifier>       (optional; default identity)
    edge <u> <v> <weight>
    v}
    Round-trips exactly through {!to_string} / {!of_string}. *)

exception Parse_error of int * string
(** [Parse_error (line, reason)] — every malformed input case (bad
    integers or floats, out-of-range node indexes, negative weights,
    self-loops, unknown records, a missing or duplicate header) raises
    this, with the 1-based line number ([0] when the error is global,
    e.g. a missing header). *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Parse_error on malformed input. *)

val save : Graph.t -> string -> unit
(** [save g path] writes {!to_string} to a file. *)

(** {2 Mutation logs}

    The daemon's append-only churn journal: one mutation per line in
    the [Graph.mutation_to_string] spelling ([setw u v w],
    [linkdown u v], [linkup u v w], [nodedown u], [nodeup u]), with
    '#' comments and blank lines allowed.  Round-trips through
    {!mutations_to_string} / {!mutations_of_string}. *)

val mutation_of_tokens : lineno:int -> string list -> Graph.mutation
(** Parses one already-tokenized mutation record.  Shared with the
    daemon protocol parser so journal and wire grammar cannot drift.
    @raise Parse_error carrying [lineno] on any malformed record
    (unknown keyword, wrong arity, bad integer, non-positive or
    non-finite weight). *)

val mutation_of_string : ?lineno:int -> string -> Graph.mutation
(** Tokenizes and parses one line ([lineno] defaults to 1).
    @raise Parse_error as {!mutation_of_tokens}. *)

val mutations_of_string : string -> Graph.mutation list
(** Parses a whole journal, skipping blanks and comments.
    @raise Parse_error with the exact 1-based line number of the first
    malformed record. *)

val mutations_to_string : Graph.mutation list -> string
(** One line per mutation, each newline-terminated. *)

val load_mutations : string -> Graph.mutation list
(** {!mutations_of_string} over a file.
    @raise Sys_error or {!Parse_error}. *)

val load : string -> Graph.t
(** [load path] parses a file.
    @raise Sys_error or {!Parse_error}. *)

(** {2 Snapshot codec}

    A durability checkpoint: a graph together with the journal position
    it corresponds to ([journal_records] mutation records applied,
    journal byte offset [journal_offset]) and the serving epoch at
    checkpoint time.  Serialized as a one-line header carrying a CRC32
    of the whole body, then the {!to_string} graph body:
    {v
    snapshot 1 <epoch> <journal_records> <journal_offset> <crc32hex>
    graph <n> <m>
    ...
    v}
    A truncated or corrupted snapshot fails the checksum and parses as
    {!Parse_error} — recovery falls back to an older checkpoint rather
    than loading half a graph. *)

type snapshot = {
  epoch : int;
  journal_records : int;
  journal_offset : int;
  graph : Graph.t;
}

val snapshot_to_string : snapshot -> string

val snapshot_of_string : string -> snapshot
(** @raise Parse_error on a malformed header, a checksum mismatch
    (torn/corrupt write) or a malformed graph body. *)
