(** Plain-text graph serialization.

    Format (one record per line, '#' comments allowed):
    {v
    graph <n> <m>
    name <node> <identifier>       (optional; default identity)
    edge <u> <v> <weight>
    v}
    Round-trips exactly through {!to_string} / {!of_string}. *)

exception Parse_error of int * string
(** [Parse_error (line, reason)] — every malformed input case (bad
    integers or floats, out-of-range node indexes, negative weights,
    self-loops, unknown records, a missing or duplicate header) raises
    this, with the 1-based line number ([0] when the error is global,
    e.g. a missing header). *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Parse_error on malformed input. *)

val save : Graph.t -> string -> unit
(** [save g path] writes {!to_string} to a file. *)

val load : string -> Graph.t
(** [load path] parses a file.
    @raise Sys_error or {!Parse_error}. *)
