type t = {
  mutable size : int;
  elts : int array; (* heap slots -> element *)
  prio : float array; (* heap slots -> priority *)
  pos : int array; (* element -> heap slot, or -1 *)
}

let create n =
  { size = 0; elts = Array.make (max n 1) (-1); prio = Array.make (max n 1) 0.0; pos = Array.make (max n 1) (-1) }

let is_empty h = h.size = 0

let size h = h.size

let mem h x = x >= 0 && x < Array.length h.pos && h.pos.(x) >= 0

let swap h i j =
  let ei = h.elts.(i) and ej = h.elts.(j) in
  let pi = h.prio.(i) and pj = h.prio.(j) in
  h.elts.(i) <- ej;
  h.elts.(j) <- ei;
  h.prio.(i) <- pj;
  h.prio.(j) <- pi;
  h.pos.(ej) <- i;
  h.pos.(ei) <- j

(* Strict total order: priority, then element index.  Equal priorities
   are common in Dijkstra (unit-ish weights); breaking those ties by
   element makes [pop_min] return the unique minimum of the current
   contents no matter what insertion order shaped the layout, so the
   pop sequence is a pure function of what was inserted — the property
   [Apsp.repair] needs to share untouched sources across mutations. *)
let lt h i j = h.prio.(i) < h.prio.(j) || (h.prio.(i) = h.prio.(j) && h.elts.(i) < h.elts.(j))

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && lt h l !smallest then smallest := l;
  if r < h.size && lt h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let insert h x p =
  if x < 0 || x >= Array.length h.pos then invalid_arg "Heap.insert: out of range";
  if h.pos.(x) >= 0 then invalid_arg "Heap.insert: already present";
  let i = h.size in
  h.size <- i + 1;
  h.elts.(i) <- x;
  h.prio.(i) <- p;
  h.pos.(x) <- i;
  sift_up h i

let decrease h x p =
  if not (mem h x) then invalid_arg "Heap.decrease: absent element";
  let i = h.pos.(x) in
  if p > h.prio.(i) then invalid_arg "Heap.decrease: priority increase";
  h.prio.(i) <- p;
  sift_up h i

let insert_or_decrease h x p =
  if mem h x then begin
    if p < h.prio.(h.pos.(x)) then decrease h x p
  end
  else insert h x p

let pop_min h =
  if h.size = 0 then raise Not_found;
  let x = h.elts.(0) and p = h.prio.(0) in
  let last = h.size - 1 in
  swap h 0 last;
  h.size <- last;
  h.pos.(x) <- -1;
  if last > 0 then sift_down h 0;
  (x, p)

let priority h x = if mem h x then h.prio.(h.pos.(x)) else raise Not_found
