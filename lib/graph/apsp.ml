type t = {
  graph : Graph.t;
  results : Dijkstra.result array;
  balls : Ball.t option array;
}

let compute g =
  let n = Graph.n g in
  {
    graph = g;
    results = Array.init n (fun s -> Dijkstra.run g s);
    balls = Array.make n None;
  }

let compute_parallel ?domains g =
  let n = Graph.n g in
  let module Pool = Cr_util.Domain_pool in
  let domains = match domains with Some d -> max 1 d | None -> Pool.default_domains () in
  if domains <= 1 || n < 2 * domains then compute g
  else begin
    (* one placeholder result; every slot is overwritten below.  The
       sources run on the shared, spawn-once pool: each Dijkstra only
       reads the immutable graph and writes its own slot, so any
       execution order yields the same array. *)
    let results = Array.make n (Dijkstra.run g 0) in
    Pool.parallel_for ~chunk:16 (Pool.shared ()) ~n (fun s -> results.(s) <- Dijkstra.run g s);
    { graph = g; results; balls = Array.make n None }
  end

let graph t = t.graph

let distance t u v = t.results.(u).dist.(v)

let sssp t u = t.results.(u)

let ball t u =
  match t.balls.(u) with
  | Some b -> b
  | None ->
      let b = Ball.of_dijkstra t.results.(u) in
      t.balls.(u) <- Some b;
      b

let fold_pairs f init t =
  let n = Graph.n t.graph in
  let acc = ref init in
  for u = 0 to n - 1 do
    let dist = t.results.(u).dist in
    for v = u + 1 to n - 1 do
      acc := f !acc dist.(v)
    done
  done;
  !acc

let aspect_ratio t =
  let mx, mn =
    fold_pairs
      (fun (mx, mn) d -> if d < infinity then (max mx d, min mn d) else (mx, mn))
      (0.0, infinity) t
  in
  if mn = infinity || mn <= 0.0 then nan else mx /. mn

let diameter t =
  fold_pairs (fun acc d -> if d < infinity then max acc d else acc) 0.0 t

let connected t = fold_pairs (fun acc d -> acc && d < infinity) true t
