type t = {
  graph : Graph.t;
  results : Dijkstra.result array;
  balls : Ball.t option array;
}

let compute g =
  let n = Graph.n g in
  {
    graph = g;
    results = Array.init n (fun s -> Dijkstra.run g s);
    balls = Array.make n None;
  }

let compute_parallel ?domains g =
  let n = Graph.n g in
  let module Pool = Cr_util.Domain_pool in
  let domains = match domains with Some d -> max 1 d | None -> Pool.default_domains () in
  if domains <= 1 || n < 2 * domains then compute g
  else begin
    (* one placeholder result; every slot is overwritten below.  The
       sources run on the shared, spawn-once pool: each Dijkstra only
       reads the immutable graph and writes its own slot, so any
       execution order yields the same array. *)
    let results = Array.make n (Dijkstra.run g 0) in
    Pool.parallel_for ~chunk:16 (Pool.shared ()) ~n (fun s -> results.(s) <- Dijkstra.run g s);
    { graph = g; results; balls = Array.make n None }
  end

let graph t = t.graph

let distance t u v = t.results.(u).dist.(v)

(* ---- incremental repair -----------------------------------------------

   Under churn, most single-edge mutations leave most sources' shortest
   paths untouched; recomputing only the affected sources is what makes
   the daemon's repair incremental.  The affectedness tests are sound
   over-approximations, and they are exact enough to preserve not just
   distances but the whole deterministic Dijkstra result:

   - parents: the heap's strict (priority, element) total order makes
     the Dijkstra settle order — and so the parent tree — a pure
     function of graph and source.  For a clean source the mutated edge
     is strictly non-tight before and after (ties are marked dirty: the
     tests below use [<=], not [<]), so it only ever inserted nodes at
     worse-than-final priorities; removing, adding, or reweighting it
     never changes which node is the current heap minimum, and the
     parent array is bit-identical too.
   - ports: adjacency-changing mutations shift port numbers even for
     clean sources, so [repair] refreshes [parent_port] against the new
     graph when [structural] (a clean source's parent edges survive by
     construction — a removed edge is never tight for a clean source).

   The repair-equivalence property test (test_daemon) pins all of this
   against from-scratch recomputation. *)

let dirty_sources t mu =
  let n = Graph.n t.graph in
  let dirty = Array.make n false in
  let mark_improving u v w =
    (* sources for which the edge (u,v,w) would relax or tie; a source
       reaching neither endpoint cannot be affected (inf = inf must not
       mark every disconnected source) *)
    for s = 0 to n - 1 do
      let du = t.results.(s).dist.(u) and dv = t.results.(s).dist.(v) in
      if (du < infinity || dv < infinity) && (du +. w <= dv || dv +. w <= du) then
        dirty.(s) <- true
    done
  in
  let mark_tight u v w =
    (* sources whose shortest-path structure may use the edge (u,v,w) *)
    for s = 0 to n - 1 do
      let du = t.results.(s).dist.(u) and dv = t.results.(s).dist.(v) in
      if (du < infinity || dv < infinity) && (du +. w = dv || dv +. w = du) then
        dirty.(s) <- true
    done
  in
  (match mu with
  | Graph.Set_weight (u, v, w_new) ->
      (match Graph.edge_weight t.graph u v with
      | Some w_old ->
          mark_tight u v w_old;
          mark_improving u v w_new
      | None -> invalid_arg "Apsp.dirty_sources: setw on missing edge")
  | Graph.Link_down (u, v) -> (
      match Graph.edge_weight t.graph u v with
      | Some w_old -> mark_tight u v w_old
      | None -> invalid_arg "Apsp.dirty_sources: linkdown on missing edge")
  | Graph.Link_up (u, v, w) -> mark_improving u v w
  | Graph.Node_down u ->
      (* every source that reaches the node loses those paths *)
      for s = 0 to n - 1 do
        if t.results.(s).dist.(u) < infinity then dirty.(s) <- true
      done;
      dirty.(u) <- true
  | Graph.Node_up _ -> ());
  dirty

let repair t g' ~dirty ~structural =
  let n = Graph.n t.graph in
  if Graph.n g' <> n then invalid_arg "Apsp.repair: node count changed";
  if Array.length dirty <> n then invalid_arg "Apsp.repair: dirty array length mismatch";
  if n = 0 then { graph = g'; results = [||]; balls = [||] }
  else begin
    let refresh_ports (r : Dijkstra.result) =
      if not structural then r
      else begin
        let parent_port =
          Array.mapi
            (fun x p ->
              if p < 0 then -1
              else
                match Graph.port g' x p with
                | Some port -> port
                | None ->
                    (* a clean source's parent edges always survive the
                       mutation; reaching here means the dirty test
                       under-approximated — fail loudly *)
                    invalid_arg "Apsp.repair: clean source lost a parent edge")
            r.Dijkstra.parent
        in
        { r with Dijkstra.parent_port }
      end
    in
    let results = Array.make n t.results.(0) in
    let todo = ref [] in
    for s = n - 1 downto 0 do
      if dirty.(s) then todo := s :: !todo else results.(s) <- refresh_ports t.results.(s)
    done;
    let todo = Array.of_list !todo in
    let nd = Array.length todo in
    let module Pool = Cr_util.Domain_pool in
    if nd < 2 * Pool.default_domains () then
      Array.iter (fun s -> results.(s) <- Dijkstra.run g' s) todo
    else
      Pool.parallel_for ~chunk:4 (Pool.shared ()) ~n:nd (fun i ->
          results.(todo.(i)) <- Dijkstra.run g' todo.(i));
    { graph = g'; results; balls = Array.make n None }
  end

let repair_mutation t mu =
  let g' = Graph.apply t.graph mu in
  let dirty = dirty_sources t mu in
  let count = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dirty in
  (repair t g' ~dirty ~structural:(Graph.structural mu), count)

let sssp t u = t.results.(u)

let ball t u =
  match t.balls.(u) with
  | Some b -> b
  | None ->
      let b = Ball.of_dijkstra t.results.(u) in
      t.balls.(u) <- Some b;
      b

let fold_pairs f init t =
  let n = Graph.n t.graph in
  let acc = ref init in
  for u = 0 to n - 1 do
    let dist = t.results.(u).dist in
    for v = u + 1 to n - 1 do
      acc := f !acc dist.(v)
    done
  done;
  !acc

let aspect_ratio t =
  let mx, mn =
    fold_pairs
      (fun (mx, mn) d -> if d < infinity then (max mx d, min mn d) else (mx, mn))
      (0.0, infinity) t
  in
  if mn = infinity || mn <= 0.0 then nan else mx /. mn

let diameter t =
  fold_pairs (fun acc d -> if d < infinity then max acc d else acc) 0.0 t

let connected t = fold_pairs (fun acc d -> acc && d < infinity) true t
