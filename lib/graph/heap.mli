(** Binary min-heap keyed by floats, with decrease-key by element id.

    Specialized for Dijkstra over node indexes [0 .. n-1]: elements are
    small integers, priorities are floats, and the heap keeps a positions
    array for O(log n) [decrease]. *)

type t

val create : int -> t
(** [create n] makes an empty heap able to hold elements [0 .. n-1]. *)

val is_empty : t -> bool

val size : t -> int

val mem : t -> int -> bool
(** Whether the element is currently in the heap. *)

val insert : t -> int -> float -> unit
(** [insert h x p] inserts element [x] with priority [p].
    @raise Invalid_argument if [x] is already present or out of range. *)

val decrease : t -> int -> float -> unit
(** [decrease h x p] lowers [x]'s priority to [p].
    @raise Invalid_argument if [x] is absent or [p] is larger than the
    current priority. *)

val insert_or_decrease : t -> int -> float -> unit
(** Inserts [x], or decreases its key if present and the new priority is
    smaller; otherwise does nothing. *)

val pop_min : t -> int * float
(** Removes and returns the minimum element under the strict
    (priority, element) order — priority ties break toward the smaller
    element index, so the pop order is a pure function of the inserted
    contents, independent of insertion order.
    @raise Not_found on an empty heap. *)

val priority : t -> int -> float
(** Current priority of a present element.
    @raise Not_found if absent. *)
