(** Synthetic network generators used as evaluation workloads.

    The paper targets arbitrary weighted networks; its motivation names
    IP-like networks, DHT overlays, and networks whose aspect ratio Δ is
    enormous (e.g. [Δ = Ω(2ⁿ)], §1.3).  These generators produce all the
    topology classes the experiments need.  Every generator takes an
    {!Cr_util.Rng.t} and is deterministic given the generator state; every
    generator returns a {e connected} graph (a random spanning structure is
    added when the raw model leaves components). *)

val erdos_renyi : Cr_util.Rng.t -> n:int -> avg_degree:float -> Graph.t
(** G(n, p) with [p = avg_degree/(n-1)] and i.i.d. uniform weights in
    [\[1, 2\]]; connected up by a random spanning tree over components. *)

val random_geometric : Cr_util.Rng.t -> n:int -> radius:float -> Graph.t
(** [n] points uniform in the unit square, edges between points at
    Euclidean distance [< radius], weights = Euclidean distance
    (rescaled so the minimum is 1); connected up by nearest-component
    links. *)

val grid : rows:int -> cols:int -> Graph.t
(** Unit-weight 2D grid. *)

val torus : rows:int -> cols:int -> Graph.t
(** Unit-weight 2D torus (wrap-around grid). *)

val ring_with_chords : Cr_util.Rng.t -> n:int -> chords:int -> Graph.t
(** Unit-weight ring plus [chords] random long-range chords of weight 1:
    a DHT-overlay-like small world. *)

val random_tree : Cr_util.Rng.t -> n:int -> Graph.t
(** Uniform random recursive tree with uniform weights in [\[1, 2\]]. *)

val preferential_attachment : Cr_util.Rng.t -> n:int -> edges_per_node:int -> Graph.t
(** Barabási–Albert-style scale-free(-degree) graph, unit weights. *)

val power_law : Cr_util.Rng.t -> n:int -> exponent:float -> Graph.t
(** Sparse power-law degree-sequence graph via the configuration model:
    degrees drawn i.i.d. from [P(d) ∝ d^{-exponent}] on
    [d ∈ \[1, ⌊√n⌋\]] (the degree sum is bumped to even before stub
    pairing), self-loops and duplicate pairings dropped, uniform weights
    in [\[1, 2\]]; connected up by random spanning links.  With
    [exponent ≈ 2.5] the expected degree is ≈ 2, i.e. [m ≈ n] — the
    sparse regime the Agarwal–Godfrey–Har-Peled-style oracle targets.
    @raise Invalid_argument if [n < 4] or [exponent <= 1]. *)

val two_tier_isp : Cr_util.Rng.t -> core:int -> access_per_core:int -> Graph.t
(** ISP-like hierarchy: a well-connected core ring with shortcut links
    (weight ~10, long-haul) and per-core-router access trees (weight ~1,
    local links).  Models the weighted hierarchical networks of the
    introduction. *)

val stretch_weights : Cr_util.Rng.t -> Graph.t -> target_aspect:float -> Graph.t
(** Reweights a graph so its {e edge-weight} spread reaches roughly
    [target_aspect]: each edge weight is multiplied by [2^e] with [e]
    uniform in [\[0, log2 target_aspect\]].  Used by the scale-free
    experiment (T3) to sweep Δ over many orders of magnitude without
    changing the topology. *)

val dumbbell : n_side:int -> bridge_weight:float -> Graph.t
(** Two unit-weight cliques of [n_side] nodes joined by one bridge edge of
    the given weight — the classic high-aspect-ratio adversarial example
    where distance scales differ by an arbitrary factor. *)

val scale_chain :
  ?decreasing:bool -> Cr_util.Rng.t -> sigma:int -> levels:int -> spacing:float -> Graph.t
(** Adversarial multi-scale instance: a chain of "islands"
    [I_0, I_1, …, I_levels], where island [j] is a unit-weight clique of
    about [sigma^j] nodes (capped at 512) placed at distance
    [spacing^j] from island 0 along a weighted chain.  Name-independent
    directory schemes that resolve identifiers digit-by-digit are forced
    to visit ever-farther islands to find digit matches, while
    intra-island traffic has tiny true distance — the worst case behind
    the exponential-stretch lower-order schemes ([7, 8, 6]) that
    experiment T1b exhibits.  With [~decreasing:true] island [j] instead
    has about [sigma^(levels-j)] nodes — the population mass sits at the
    origin, so digit matches for traffic inside the far (tiny) islands
    live all the way back across the chain, which is the configuration
    that actually forces the exponential detours. *)

val scale_chain_islands : ?decreasing:bool -> sigma:int -> levels:int -> unit -> (int * int) array
(** [(start, size)] of each island of {!scale_chain} with the same
    parameters — used by the benches to sample source/destination pairs
    from specific scales. *)

val exponential_line : n:int -> base:float -> Graph.t
(** A path whose [i]-th edge has weight [base^i]: the aspect ratio is
    [Θ(base^n)] — the paper's §1.3 example of a network where
    [Δ = Ω(2^n)] — and, crucially, the network has nontrivial structure
    at {e every} distance scale, so any scheme with per-scale state
    (Awerbuch–Peleg covers) pays at every one of the [Θ(n)] levels while
    a scale-free scheme does not.  Used by experiment T3. *)
