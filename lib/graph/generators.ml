module Rng = Cr_util.Rng

(* Add a minimal set of random inter-component edges (weight [w]) so the
   result is connected. *)
let connect_up rng g w =
  if Component.is_connected g then g
  else begin
    let comp = Component.components g in
    let k = 1 + Array.fold_left max (-1) comp in
    let members = Array.make k [] in
    Array.iteri (fun v c -> members.(c) <- v :: members.(c)) comp;
    let pick c =
      let l = members.(c) in
      let len = List.length l in
      List.nth l (Rng.int rng len)
    in
    let extra = ref [] in
    for c = 1 to k - 1 do
      extra := (pick 0, pick c, w) :: !extra
    done;
    let base = Graph.edges g in
    Graph.create ~names:(Array.init (Graph.n g) (Graph.name_of g)) ~n:(Graph.n g) (base @ !extra)
  end

let erdos_renyi rng ~n ~avg_degree =
  if n < 2 then invalid_arg "erdos_renyi: n < 2";
  let p = avg_degree /. float_of_int (n - 1) in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then edges := (u, v, 1.0 +. Rng.float rng 1.0) :: !edges
    done
  done;
  connect_up rng (Graph.create ~n !edges) 1.5

let random_geometric rng ~n ~radius =
  if n < 2 then invalid_arg "random_geometric: n < 2";
  let pts = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
  let dist i j =
    let xi, yi = pts.(i) and xj, yj = pts.(j) in
    sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0))
  in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = dist u v in
      if d < radius && d > 0.0 then edges := (u, v, d) :: !edges
    done
  done;
  (* Connect leftover components via their geometrically nearest pairs. *)
  let g0 = Graph.create ~n !edges in
  let g1 =
    if Component.is_connected g0 then g0
    else begin
      let comp = Component.components g0 in
      let k = 1 + Array.fold_left max (-1) comp in
      let uf = Unionfind.create k in
      let extra = ref [] in
      while Unionfind.count uf > 1 do
        (* nearest pair among different merged groups *)
        let best = ref None in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            if not (Unionfind.same uf comp.(u) comp.(v)) then begin
              let d = dist u v in
              match !best with
              | Some (_, _, bd) when bd <= d -> ()
              | _ -> best := Some (u, v, d)
            end
          done
        done;
        match !best with
        | Some (u, v, d) ->
            extra := (u, v, max d 1e-9) :: !extra;
            ignore (Unionfind.union uf comp.(u) comp.(v))
        | None -> assert false
      done;
      Graph.create ~n (!edges @ !extra)
    end
  in
  Graph.normalize g1

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1), 1.0) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c, 1.0) :: !edges
    done
  done;
  Graph.create ~n:(rows * cols) !edges

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "torus: need >= 3x3";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (id r c, id r ((c + 1) mod cols), 1.0) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c, 1.0) :: !edges
    done
  done;
  Graph.create ~n:(rows * cols) !edges

let ring_with_chords rng ~n ~chords =
  if n < 3 then invalid_arg "ring_with_chords: n < 3";
  let edges = ref [] in
  for u = 0 to n - 1 do
    edges := (u, (u + 1) mod n, 1.0) :: !edges
  done;
  let added = ref 0 in
  let guard = ref 0 in
  while !added < chords && !guard < 100 * chords do
    incr guard;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && abs (u - v) <> 1 && abs (u - v) <> n - 1 then begin
      edges := (u, v, 1.0) :: !edges;
      incr added
    end
  done;
  Graph.create ~n !edges

let random_tree rng ~n =
  if n < 1 then invalid_arg "random_tree: n < 1";
  let edges = ref [] in
  for v = 1 to n - 1 do
    let u = Rng.int rng v in
    edges := (u, v, 1.0 +. Rng.float rng 1.0) :: !edges
  done;
  Graph.create ~n !edges

let preferential_attachment rng ~n ~edges_per_node =
  if n < 2 || edges_per_node < 1 then invalid_arg "preferential_attachment";
  let m0 = min n (edges_per_node + 1) in
  let edges = ref [] in
  (* endpoints list doubles as the degree-proportional sampling urn *)
  let urn = ref [] in
  for u = 0 to m0 - 1 do
    for v = u + 1 to m0 - 1 do
      edges := (u, v, 1.0) :: !edges;
      urn := u :: v :: !urn
    done
  done;
  let urn_arr = ref (Array.of_list !urn) in
  for v = m0 to n - 1 do
    let targets = Hashtbl.create edges_per_node in
    let attempts = ref 0 in
    while Hashtbl.length targets < edges_per_node && !attempts < 50 * edges_per_node do
      incr attempts;
      let a = !urn_arr in
      let t = a.(Rng.int rng (Array.length a)) in
      if t <> v then Hashtbl.replace targets t ()
    done;
    let new_endpoints = ref [] in
    Hashtbl.iter
      (fun t () ->
        edges := (t, v, 1.0) :: !edges;
        new_endpoints := t :: v :: !new_endpoints)
      targets;
    urn_arr := Array.append !urn_arr (Array.of_list !new_endpoints)
  done;
  connect_up rng (Graph.create ~n !edges) 1.0

let power_law rng ~n ~exponent =
  if n < 4 then invalid_arg "power_law: n < 4";
  if not (exponent > 1.0) then invalid_arg "power_law: exponent <= 1";
  (* Discrete power-law degree sequence P(d) ∝ d^{-exponent} on
     d ∈ [1, dmax], sampled by inverse CDF.  With exponent ≈ 2.5 the
     expected degree is close to 2, i.e. m ≈ n — the sparse regime the
     AGH-style oracle targets. *)
  let dmax = max 2 (int_of_float (sqrt (float_of_int n))) in
  let w = Array.init dmax (fun i -> float_of_int (i + 1) ** -.exponent) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let cdf = Array.make dmax 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      acc := !acc +. (x /. total);
      cdf.(i) <- !acc)
    w;
  cdf.(dmax - 1) <- 1.0;
  let draw_degree () =
    let u = Rng.float rng 1.0 in
    let lo = ref 0 and hi = ref (dmax - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo + 1
  in
  let deg = Array.init n (fun _ -> draw_degree ()) in
  (* the degree sum must be even to pair stubs; bump one node if odd *)
  let sum = Array.fold_left ( + ) 0 deg in
  if sum land 1 = 1 then deg.(0) <- deg.(0) + 1;
  (* configuration model: shuffle the stub multiset, pair consecutive
     stubs, drop self-loops and duplicate edges (the standard simple-graph
     projection; the realized degrees honestly fall short of the drawn
     sequence by the dropped stubs) *)
  let stubs = Array.make (Array.fold_left ( + ) 0 deg) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        stubs.(!pos) <- v;
        incr pos
      done)
    deg;
  Rng.shuffle rng stubs;
  let seen = Hashtbl.create (Array.length stubs) in
  let edges = ref [] in
  let i = ref 0 in
  while !i + 1 < Array.length stubs do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    i := !i + 2;
    if u <> v then begin
      let key = (min u v * n) + max u v in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        edges := (u, v, 1.0 +. Rng.float rng 1.0) :: !edges
      end
    end
  done;
  connect_up rng (Graph.create ~n !edges) 1.5

let two_tier_isp rng ~core ~access_per_core =
  if core < 3 then invalid_arg "two_tier_isp: core < 3";
  let n = core * (1 + access_per_core) in
  let edges = ref [] in
  (* Core ring with long-haul weights, plus a few shortcut links. *)
  for u = 0 to core - 1 do
    edges := (u, (u + 1) mod core, 8.0 +. Rng.float rng 4.0) :: !edges
  done;
  let shortcuts = max 1 (core / 4) in
  for _ = 1 to shortcuts do
    let u = Rng.int rng core and v = Rng.int rng core in
    if u <> v then edges := (u, v, 10.0 +. Rng.float rng 6.0) :: !edges
  done;
  (* Access trees: each core router hangs a random recursive tree of
     access_per_core nodes with local (cheap) links. *)
  for c = 0 to core - 1 do
    let base = core + (c * access_per_core) in
    for i = 0 to access_per_core - 1 do
      let v = base + i in
      let parent = if i = 0 then c else base + Rng.int rng i in
      edges := (parent, v, 1.0 +. Rng.float rng 1.0) :: !edges
    done
  done;
  Graph.create ~n !edges

let stretch_weights rng g ~target_aspect =
  if target_aspect < 1.0 then invalid_arg "stretch_weights: aspect < 1";
  let emax = Float.log target_aspect /. Float.log 2.0 in
  let g' = Graph.reweight g (fun _ _ w -> w *. (2.0 ** Rng.float rng emax)) in
  Graph.normalize g'

let dumbbell ~n_side ~bridge_weight =
  if n_side < 2 then invalid_arg "dumbbell: n_side < 2";
  if not (bridge_weight > 0.0) then invalid_arg "dumbbell: bad bridge weight";
  let n = 2 * n_side in
  let edges = ref [] in
  for u = 0 to n_side - 1 do
    for v = u + 1 to n_side - 1 do
      edges := (u, v, 1.0) :: !edges;
      edges := (n_side + u, n_side + v, 1.0) :: !edges
    done
  done;
  edges := (0, n_side, bridge_weight) :: !edges;
  Graph.create ~n !edges

let island_size ~decreasing ~levels sigma j =
  let e = if decreasing then levels - j else j in
  let rec pow acc i = if i = 0 || acc > 512 then acc else pow (acc * sigma) (i - 1) in
  min 512 (max 2 (pow 1 e))

let scale_chain_islands ?(decreasing = false) ~sigma ~levels () =
  let size = island_size ~decreasing ~levels sigma in
  let out = Array.make (levels + 1) (0, 0) in
  let total = ref 0 in
  for j = 0 to levels do
    out.(j) <- (!total, size j);
    total := !total + size j
  done;
  out

let scale_chain ?(decreasing = false) rng ~sigma ~levels ~spacing =
  if sigma < 2 || levels < 1 then invalid_arg "scale_chain";
  if not (spacing > 1.0) then invalid_arg "scale_chain: spacing <= 1";
  let size j = island_size ~decreasing ~levels sigma j in
  let starts = Array.make (levels + 1) 0 in
  let total = ref 0 in
  for j = 0 to levels do
    starts.(j) <- !total;
    total := !total + size j
  done;
  let n = !total in
  let edges = ref [] in
  for j = 0 to levels do
    let s = starts.(j) and sz = size j in
    (* unit-weight clique *)
    for a = 0 to sz - 1 do
      for b = a + 1 to sz - 1 do
        edges := (s + a, s + b, 1.0) :: !edges
      done
    done;
    (* bridge from island j-1 to island j, spanning the scale gap *)
    if j > 0 then begin
      let w = Float.max 1.0 ((spacing ** float_of_int j) -. (spacing ** float_of_int (j - 1))) in
      edges := (starts.(j - 1), s, w) :: !edges
    end
  done;
  ignore rng;
  Graph.create ~n !edges

let exponential_line ~n ~base =
  if n < 2 then invalid_arg "exponential_line: n < 2";
  if not (base > 1.0) then invalid_arg "exponential_line: base <= 1";
  let edges = List.init (n - 1) (fun i -> (i, i + 1, base ** float_of_int i)) in
  Graph.create ~n edges
