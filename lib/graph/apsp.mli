(** All-pairs shortest paths, via one Dijkstra per node.

    Preprocessing for scheme construction and ground truth for stretch
    measurement.  Memory is O(n²) floats, fine for the simulation sizes
    used in the evaluation (n ≤ a few thousand). *)

type t

val compute : Graph.t -> t
(** Runs [n] Dijkstras sequentially. *)

val compute_parallel : ?domains:int -> Graph.t -> t
(** Same result, with the sources partitioned across the shared
    spawn-once domain pool ({!Cr_util.Domain_pool.shared}), so repeated
    APSP builds in one process pay no per-call domain-spawn cost.
    [domains] defaults to {!Cr_util.Domain_pool.default_domains}; it
    gates the sequential fallback ([domains <= 1] or a tiny graph runs
    {!compute} in the caller) while the actual width is the shared
    pool's.  Each Dijkstra only reads the (immutable) graph and writes
    its own result slot, so the result is identical — not merely
    statistically equal — to {!compute}'s. *)

val graph : t -> Graph.t

val distance : t -> int -> int -> float
(** d(u, v); [infinity] if disconnected. *)

val sssp : t -> int -> Dijkstra.result
(** The stored single-source result for a node. *)

val ball : t -> int -> Ball.t
(** Ball index of a node (built lazily, cached). *)

val aspect_ratio : t -> float
(** Δ = max d(u,v) / min d(u,v) over connected pairs with u ≠ v;
    [nan] if there are no such pairs. *)

val diameter : t -> float
(** Largest finite pairwise distance. *)

val connected : t -> bool
(** Whether all pairs are at finite distance. *)
