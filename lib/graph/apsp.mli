(** All-pairs shortest paths, via one Dijkstra per node.

    Preprocessing for scheme construction and ground truth for stretch
    measurement.  Memory is O(n²) floats, fine for the simulation sizes
    used in the evaluation (n ≤ a few thousand). *)

type t

val compute : Graph.t -> t
(** Runs [n] Dijkstras sequentially. *)

val compute_parallel : ?domains:int -> Graph.t -> t
(** Same result, with the sources partitioned across the shared
    spawn-once domain pool ({!Cr_util.Domain_pool.shared}), so repeated
    APSP builds in one process pay no per-call domain-spawn cost.
    [domains] defaults to {!Cr_util.Domain_pool.default_domains}; it
    gates the sequential fallback ([domains <= 1] or a tiny graph runs
    {!compute} in the caller) while the actual width is the shared
    pool's.  Each Dijkstra only reads the (immutable) graph and writes
    its own result slot, so the result is identical — not merely
    statistically equal — to {!compute}'s. *)

val graph : t -> Graph.t

val distance : t -> int -> int -> float
(** d(u, v); [infinity] if disconnected. *)

val dirty_sources : t -> Graph.mutation -> bool array
(** Which sources' single-source results a mutation can change —
    evaluated against [t] (the ground truth {e before} the mutation).
    A sound over-approximation that is tie-exact: a source left
    unmarked provably keeps its distances {e and} its deterministic
    parent array, so {!repair} may share its result wholesale.  For an
    edge mutation this is the set of sources for which the edge is
    tight (deletions/increases) or would relax or tie
    (insertions/decreases); for [Node_down] it is every source that
    reaches the node.
    @raise Invalid_argument if the mutation does not apply to [t]'s
    graph. *)

val repair : t -> Graph.t -> dirty:bool array -> structural:bool -> t
(** [repair t g' ~dirty ~structural] is the incremental ground-truth
    update: a fresh APSP over [g'] (the graph {e after} the mutation)
    that re-runs Dijkstra only for [dirty] sources — in parallel on the
    shared pool when there are enough — and shares every clean source's
    result from [t].  With [structural] set (adjacency changed), clean
    sources get their [parent_port] arrays re-derived against [g'],
    since port numbers shift even where paths do not.  The result is
    bit-identical to [compute g'] when [dirty] over-approximates
    honestly (pinned by the repair-equivalence property test).
    @raise Invalid_argument on node-count or length mismatch, or if a
    supposedly clean source lost a parent edge (an under-approximating
    [dirty]). *)

val repair_mutation : t -> Graph.mutation -> t * int
(** Applies one mutation end to end:
    [Graph.apply] + {!dirty_sources} + {!repair}, returning the
    repaired ground truth and the number of recomputed sources.
    Chained per mutation by the daemon's repair worker (affectedness
    tests are only valid against the immediately preceding ground
    truth, so batches must be folded one mutation at a time).
    @raise Invalid_argument as {!Graph.apply}. *)

val sssp : t -> int -> Dijkstra.result
(** The stored single-source result for a node. *)

val ball : t -> int -> Ball.t
(** Ball index of a node (built lazily, cached). *)

val aspect_ratio : t -> float
(** Δ = max d(u,v) / min d(u,v) over connected pairs with u ≠ v;
    [nan] if there are no such pairs. *)

val diameter : t -> float
(** Largest finite pairwise distance. *)

val connected : t -> bool
(** Whether all pairs are at finite distance. *)
