(* A reusable pool of worker domains.

   OCaml 5 domains are heavyweight (each owns a minor heap and takes a
   slot of the runtime's fixed domain table), so spawning fresh domains
   per parallel region — as the first Apsp.compute_parallel did — wastes
   milliseconds per call and caps how often parallelism pays off.  This
   pool spawns its workers once; each [parallel_for] publishes one job
   (a chunked atomic work counter) to the sleeping workers, the caller
   participates as the extra lane, and the workers go back to sleep.

   Correctness notes:
   - Results must be written to per-index slots by the body; the pool
     itself guarantees only that every index in [0, n) is executed
     exactly once and that all writes are visible to the caller when
     [parallel_for] returns (the join happens under the pool mutex).
   - The first exception raised by any lane is re-raised in the caller
     (with the raising lane's backtrace) after every lane has drained;
     remaining indexes may be skipped.
   - Reentrancy: a [parallel_for] issued while the pool is already
     running a job (from a nested body or another domain) degrades to a
     sequential loop in the caller rather than deadlocking.

   Crash tolerance: a [?chaos] plan injects deterministic lane faults —
   each worker lane's fate is drawn once per job (crash_rate decides
   whether the lane dies on its first claim), and surviving lanes can
   stall (sleep before a chunk).  A crashed lane pushes its claimed but
   unexecuted chunk onto a requeue list that surviving lanes drain
   after the main counter is exhausted, so the exactly-once guarantee
   holds even when lanes are lost mid-job.  The caller lane (lane 0)
   never crashes, so at least one lane always survives to finish the
   job.  Chaos decisions are drawn from a splitmix64 stream seeded by
   (plan seed, job generation, lane), mirroring Fault_plan's
   nested-by-rate idiom: the same seed yields the same fault plan. *)

type chaos = { seed : int; crash_rate : float; stall_rate : float; stall_s : float }

let chaos_plan ?(crash_rate = 0.0) ?(stall_rate = 0.0) ?(stall_s = 0.001) ~seed () =
  let check what r =
    if not (r >= 0.0 && r <= 1.0) then
      invalid_arg (Printf.sprintf "Domain_pool.chaos_plan: %s %g outside [0, 1]" what r)
  in
  check "crash_rate" crash_rate;
  check "stall_rate" stall_rate;
  if not (stall_s >= 0.0) then invalid_arg "Domain_pool.chaos_plan: negative stall_s";
  { seed; crash_rate; stall_rate; stall_s }

type run_stats = { requeued : int; lost_lanes : int; stalls : int }

let no_stats = { requeued = 0; lost_lanes = 0; stalls = 0 }

type job = {
  body : int -> unit;
  next : int Atomic.t;
  total : int;
  chunk : int;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  chaos : chaos option;
  gen : int; (* seeds the per-lane chaos stream *)
  lanes : int; (* participants: workers + the caller *)
  rq_mutex : Mutex.t;
  requeue : (int * int) Queue.t; (* chunks abandoned by crashed lanes *)
  main_done : int Atomic.t; (* lanes done with the claim phase *)
  requeued : int Atomic.t;
  lost : int Atomic.t;
  stalled : int Atomic.t;
}

type t = {
  size : int; (* lanes, including the calling domain *)
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable running : int; (* workers still inside the current job *)
  mutable busy : bool; (* a parallel_for is in flight *)
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

let domains t = t.size

let record_failure j e =
  let bt = Printexc.get_raw_backtrace () in
  ignore (Atomic.compare_and_set j.failure None (Some (e, bt)))

let exec_range j start stop =
  try
    for i = start to stop - 1 do
      j.body i
    done
  with e -> record_failure j e

(* Drain the requeue list left behind by crashed lanes.  A lane may
   reach the empty list before a crashing lane has pushed its chunk, so
   "empty" only terminates the drain once every lane has left the claim
   phase (each lane bumps [main_done] exactly once). *)
let drain_requeue j =
  let pop () =
    Mutex.lock j.rq_mutex;
    let r = if Queue.is_empty j.requeue then None else Some (Queue.pop j.requeue) in
    Mutex.unlock j.rq_mutex;
    r
  in
  let rec loop () =
    if Atomic.get j.failure = None then
      match pop () with
      | Some (start, stop) ->
          exec_range j start stop;
          loop ()
      | None ->
          if Atomic.get j.main_done < j.lanes then begin
            Domain.cpu_relax ();
            loop ()
          end
  in
  loop ()

let run_job j ~lane =
  let chaos_rng =
    match j.chaos with
    | Some c when c.crash_rate > 0.0 || c.stall_rate > 0.0 ->
        Some (c, Rng.create ((c.seed * 1_000_003) + (j.gen * 8191) + lane))
    | _ -> None
  in
  (* a worker lane's fate is sealed when the job starts, not per chunk:
     a doomed lane dies on its first claim whether or not any work is
     left, so a crash_rate of 1.0 loses every worker lane regardless of
     how fast the caller drains the counter.  The caller (lane 0) never
     crashes — at least one lane survives to finish the job. *)
  let dies =
    match chaos_rng with
    | Some (c, rng) when lane > 0 && c.crash_rate > 0.0 -> Rng.float rng 1.0 < c.crash_rate
    | _ -> false
  in
  let crashed = ref false in
  if dies then begin
    (* the lane may die holding a claimed chunk: requeue it for the
       survivors, then abandon the job *)
    let start = Atomic.fetch_and_add j.next j.chunk in
    if start < j.total then begin
      let stop = min j.total (start + j.chunk) in
      Mutex.lock j.rq_mutex;
      Queue.push (start, stop) j.requeue;
      Mutex.unlock j.rq_mutex;
      ignore (Atomic.fetch_and_add j.requeued (stop - start))
    end;
    Atomic.incr j.lost;
    crashed := true
  end
  else begin
    (* claim phase: pull chunks off the shared counter until exhausted
       or a failure surfaces *)
    let rec claim () =
      if Atomic.get j.failure = None then begin
        (match chaos_rng with
        | Some (c, rng) when c.stall_rate > 0.0 && Rng.float rng 1.0 < c.stall_rate ->
            Atomic.incr j.stalled;
            Unix.sleepf c.stall_s
        | _ -> ());
        let start = Atomic.fetch_and_add j.next j.chunk in
        if start < j.total then begin
          exec_range j start (min j.total (start + j.chunk));
          claim ()
        end
      end
    in
    claim ()
  end;
  Atomic.incr j.main_done;
  if not !crashed then drain_requeue j

let worker t ~lane () =
  let rec wait_for gen =
    Mutex.lock t.mutex;
    while (not t.stopped) && t.generation = gen do
      Condition.wait t.work t.mutex
    done;
    if t.stopped then Mutex.unlock t.mutex
    else begin
      let gen = t.generation in
      let j = Option.get t.job in
      Mutex.unlock t.mutex;
      run_job j ~lane;
      Mutex.lock t.mutex;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex;
      wait_for gen
    end
  in
  wait_for 0

let create ~domains =
  (* the runtime supports ~128 live domains; stay well clear so several
     pools (tests spawn a few) can coexist *)
  let size = max 1 (min domains 64) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      generation = 0;
      running = 0;
      busy = false;
      stopped = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (size - 1) (fun i -> Domain.spawn (worker t ~lane:(i + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    t.stopped <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let sequential_for n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for_stats ?(chunk = 16) ?chaos t ~n f =
  if n <= 0 then no_stats
  else if t.size <= 1 then begin
    (* a single lane cannot lose a worker: chaos is inert here (the
       caller never crashes), so run plainly *)
    sequential_for n f;
    no_stats
  end
  else begin
    let chunk = max 1 chunk in
    Mutex.lock t.mutex;
    if t.busy || t.stopped then begin
      (* nested or post-shutdown use: stay correct, drop parallelism *)
      Mutex.unlock t.mutex;
      sequential_for n f;
      no_stats
    end
    else begin
      let j =
        {
          body = f;
          next = Atomic.make 0;
          total = n;
          chunk;
          failure = Atomic.make None;
          chaos;
          gen = t.generation + 1;
          lanes = t.size;
          rq_mutex = Mutex.create ();
          requeue = Queue.create ();
          main_done = Atomic.make 0;
          requeued = Atomic.make 0;
          lost = Atomic.make 0;
          stalled = Atomic.make 0;
        }
      in
      t.busy <- true;
      t.job <- Some j;
      t.generation <- t.generation + 1;
      t.running <- Array.length t.workers;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      run_job j ~lane:0;
      Mutex.lock t.mutex;
      while t.running > 0 do
        Condition.wait t.finished t.mutex
      done;
      t.job <- None;
      t.busy <- false;
      Mutex.unlock t.mutex;
      (* every lane has drained and the pool state is reset: re-raising
         here leaves the pool reusable for the next job *)
      match Atomic.get j.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          {
            requeued = Atomic.get j.requeued;
            lost_lanes = Atomic.get j.lost;
            stalls = Atomic.get j.stalled;
          }
    end
  end

let parallel_for ?chunk t ~n f = ignore (parallel_for_stats ?chunk t ~n f)

(* ---- the process-wide shared pool ---- *)

let default_domains () = min 8 (Domain.recommended_domain_count ())

let shared_lock = Mutex.create ()
let shared_pool : t option ref = ref None

let shared () =
  Mutex.lock shared_lock;
  let p =
    match !shared_pool with
    | Some p -> p
    | None ->
        let p = create ~domains:(default_domains ()) in
        shared_pool := Some p;
        p
  in
  Mutex.unlock shared_lock;
  p

let set_shared_domains domains =
  Mutex.lock shared_lock;
  let old = !shared_pool in
  shared_pool := Some (create ~domains);
  Mutex.unlock shared_lock;
  Option.iter shutdown old

let resize_shared = set_shared_domains

(* Graceful process-wide teardown: joins the shared workers and clears
   the singleton, so a later [shared ()] re-initializes from scratch.
   Long-running entry points (the route daemon) call this on exit so
   the process never dies with domains parked in Condition.wait. *)
let shutdown_shared () =
  Mutex.lock shared_lock;
  let old = !shared_pool in
  shared_pool := None;
  Mutex.unlock shared_lock;
  Option.iter shutdown old
