(* A reusable pool of worker domains.

   OCaml 5 domains are heavyweight (each owns a minor heap and takes a
   slot of the runtime's fixed domain table), so spawning fresh domains
   per parallel region — as the first Apsp.compute_parallel did — wastes
   milliseconds per call and caps how often parallelism pays off.  This
   pool spawns its workers once; each [parallel_for] publishes one job
   (a chunked atomic work counter) to the sleeping workers, the caller
   participates as the extra lane, and the workers go back to sleep.

   Correctness notes:
   - Results must be written to per-index slots by the body; the pool
     itself guarantees only that every index in [0, n) is executed
     exactly once and that all writes are visible to the caller when
     [parallel_for] returns (the join happens under the pool mutex).
   - The first exception raised by any lane is re-raised in the caller
     after every lane has drained; remaining indexes may be skipped.
   - Reentrancy: a [parallel_for] issued while the pool is already
     running a job (from a nested body or another domain) degrades to a
     sequential loop in the caller rather than deadlocking. *)

type job = {
  body : int -> unit;
  next : int Atomic.t;
  total : int;
  chunk : int;
  failure : exn option Atomic.t;
}

type t = {
  size : int; (* lanes, including the calling domain *)
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable running : int; (* workers still inside the current job *)
  mutable busy : bool; (* a parallel_for is in flight *)
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

let domains t = t.size

let run_job j =
  let rec loop () =
    let start = Atomic.fetch_and_add j.next j.chunk in
    if start < j.total && Atomic.get j.failure = None then begin
      let stop = min j.total (start + j.chunk) in
      (try
         for i = start to stop - 1 do
           j.body i
         done
       with e -> ignore (Atomic.compare_and_set j.failure None (Some e)));
      loop ()
    end
  in
  loop ()

let worker t () =
  let rec wait_for gen =
    Mutex.lock t.mutex;
    while (not t.stopped) && t.generation = gen do
      Condition.wait t.work t.mutex
    done;
    if t.stopped then Mutex.unlock t.mutex
    else begin
      let gen = t.generation in
      let j = Option.get t.job in
      Mutex.unlock t.mutex;
      run_job j;
      Mutex.lock t.mutex;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex;
      wait_for gen
    end
  in
  wait_for 0

let create ~domains =
  (* the runtime supports ~128 live domains; stay well clear so several
     pools (tests spawn a few) can coexist *)
  let size = max 1 (min domains 64) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      generation = 0;
      running = 0;
      busy = false;
      stopped = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    t.stopped <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let sequential_for n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for ?(chunk = 16) t ~n f =
  if n <= 0 then ()
  else if t.size <= 1 then sequential_for n f
  else begin
    let chunk = max 1 chunk in
    Mutex.lock t.mutex;
    if t.busy || t.stopped then begin
      (* nested or post-shutdown use: stay correct, drop parallelism *)
      Mutex.unlock t.mutex;
      sequential_for n f
    end
    else begin
      let j = { body = f; next = Atomic.make 0; total = n; chunk; failure = Atomic.make None } in
      t.busy <- true;
      t.job <- Some j;
      t.generation <- t.generation + 1;
      t.running <- Array.length t.workers;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      run_job j;
      Mutex.lock t.mutex;
      while t.running > 0 do
        Condition.wait t.finished t.mutex
      done;
      t.job <- None;
      t.busy <- false;
      Mutex.unlock t.mutex;
      match Atomic.get j.failure with Some e -> raise e | None -> ()
    end
  end

(* ---- the process-wide shared pool ---- *)

let default_domains () = min 8 (Domain.recommended_domain_count ())

let shared_lock = Mutex.create ()
let shared_pool : t option ref = ref None

let shared () =
  Mutex.lock shared_lock;
  let p =
    match !shared_pool with
    | Some p -> p
    | None ->
        let p = create ~domains:(default_domains ()) in
        shared_pool := Some p;
        p
  in
  Mutex.unlock shared_lock;
  p

let set_shared_domains domains =
  Mutex.lock shared_lock;
  let old = !shared_pool in
  shared_pool := Some (create ~domains);
  Mutex.unlock shared_lock;
  Option.iter shutdown old
