(* One process-wide fixed-capacity atomic hash table in the style of a
   chess transposition table: a power-of-two array of packed tag words
   beside an array of boxed slots, probed and replaced lock-free with
   plain Atomic loads/stores, aged by generation instead of an eviction
   list.

   Layout.  Entry [i] is two cells:
     tags.(i)  : int Atomic.t   -- 0 when empty, else
                                   (fingerprint << tag_shift)
                                   | (generation mod gen_mod) << 1 | 1
     slots.(i) : (key, gen, value) option Atomic.t
   The tag is advisory: a cheap single-word filter for probing and the
   staleness signal for replacement.  The slot is authoritative: a hit
   requires the boxed tuple to match the probed (key, generation)
   exactly, so a racing writer can at worst turn a hit into a miss,
   never into a wrong or torn answer (OCaml's memory model makes each
   Atomic store of the boxed tuple indivisible).

   Correctness contract: for a fixed generation, every value inserted
   under a key must be equal to every other value inserted under that
   key (the caches here memoize pure functions per generation).  Under
   that contract [find] is indistinguishable from recomputing, which is
   what keeps batch results bit-identical with the cache on or off.

   Aging: bumping the generation (the daemon uses its epoch id) makes
   every existing entry unmatchable without touching the arrays; stale
   entries are reclaimed lazily when a writer picks the oldest slot in
   its probe window. *)

type 'v t = {
  mask : int; (* capacity - 1; capacity is a power of two *)
  tags : int Atomic.t array;
  slots : (int * int * 'v) option Atomic.t array;
  salt : int;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_replaced : int Atomic.t; (* live entry overwritten by a different key, same gen *)
  n_aged : int Atomic.t; (* stale-generation entry reclaimed *)
}

type stats = { hits : int; misses : int; replaced : int; aged : int; capacity : int }

(* Probe window: like a transposition-table cluster, bounded so a full
   table degrades to recomputation instead of a long scan. *)
let probe_len = 8

(* Generations are stored in the tag modulo [gen_mod]; the authoritative
   generation lives unpacked in the slot, so wrap-around only perturbs
   the replacement heuristic, never correctness. *)
let gen_bits = 16
let gen_mod = 1 lsl gen_bits
let tag_shift = gen_bits + 1

(* splitmix64-style finalizer on the native int, for both the bucket
   index and the tag fingerprint *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x4be98134a5976fd3 in
  let x = x lxor (x lsr 29) in
  let x = x * 0x3bbf2a01358fb6d5 in
  (x lxor (x lsr 32)) land max_int

let rec pow2_above c p = if p >= c then p else pow2_above c (p * 2)

let create ?(salt = 0) ~capacity () =
  if capacity <= 0 then invalid_arg "Ttcache.create: capacity must be > 0";
  let cap = pow2_above (max capacity probe_len) 1 in
  {
    mask = cap - 1;
    tags = Array.init cap (fun _ -> Atomic.make 0);
    slots = Array.init cap (fun _ -> Atomic.make None);
    salt = mix salt;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_replaced = Atomic.make 0;
    n_aged = Atomic.make 0;
  }

let capacity t = t.mask + 1

let fingerprint t key = mix (key lxor t.salt)

let pack fp gen = (fp lsl tag_shift) lor ((gen land (gen_mod - 1)) lsl 1) lor 1

(* keep the fingerprint small enough that [pack] never drops its bits *)
let fp_of h = h lsr (tag_shift + 1)

let find t ~gen ~key =
  let h = fingerprint t key in
  let base = h land t.mask in
  let tag = pack (fp_of h) gen in
  let rec go i =
    if i >= probe_len then begin
      Atomic.incr t.n_misses;
      None
    end
    else
      let idx = (base + i) land t.mask in
      if Atomic.get t.tags.(idx) = tag then
        (* tag published after the slot, so the slot is already visible;
           the exact (key, gen) check below rejects fingerprint
           collisions and lost races alike *)
        match Atomic.get t.slots.(idx) with
        | Some (k, g, v) when k = key && g = gen ->
            Atomic.incr t.n_hits;
            Some v
        | _ -> go (i + 1)
      else go (i + 1)
  in
  go 0

let add t ~gen ~key v =
  let h = fingerprint t key in
  let base = h land t.mask in
  let fp = fp_of h in
  (* replacement preference over the probe window: same fingerprint
     (refresh the key in place) > empty > stalest generation *)
  let victim = ref (base land t.mask) in
  let best = ref (-1) in
  (try
     for i = 0 to probe_len - 1 do
       let idx = (base + i) land t.mask in
       let tag = Atomic.get t.tags.(idx) in
       if tag = 0 then begin
         if !best < gen_mod then begin
           victim := idx;
           best := gen_mod (* empty beats any staleness *)
         end
       end
       else if tag lsr tag_shift = fp then begin
         victim := idx;
         raise Exit (* same key: always the slot to refresh *)
       end
       else begin
         let slot_gen = (tag lsr 1) land (gen_mod - 1) in
         let age = (gen - slot_gen) land (gen_mod - 1) in
         if age > !best then begin
           victim := idx;
           best := age
         end
       end
     done
   with Exit -> best := gen_mod + 1);
  let idx = !victim in
  (match Atomic.get t.slots.(idx) with
  | Some (_, g, _) when g <> gen -> Atomic.incr t.n_aged
  | Some (k, _, _) when k <> key -> Atomic.incr t.n_replaced
  | _ -> ());
  (* write protocol: slot first, tag last — a reader that sees the tag
     sees a slot at least as new *)
  Atomic.set t.slots.(idx) (Some (key, gen, v));
  Atomic.set t.tags.(idx) (pack fp gen)

let stats t =
  {
    hits = Atomic.get t.n_hits;
    misses = Atomic.get t.n_misses;
    replaced = Atomic.get t.n_replaced;
    aged = Atomic.get t.n_aged;
    capacity = t.mask + 1;
  }

let no_stats = { hits = 0; misses = 0; replaced = 0; aged = 0; capacity = 0 }
