(** Shared lock-free plan cache with generation aging.

    A fixed-capacity transposition-table-style hash map from [int] keys
    to ['v] values, safe to read and write from any number of domains
    concurrently with plain [Atomic] loads and stores — no locks, no
    CAS loops, no allocation on the probe path beyond the stored
    values.

    {2 Semantics}

    The table memoizes {e pure-per-generation} functions: for a fixed
    [gen], all values ever passed to {!add} under one [key] must be
    equal.  Under that contract {!find} returns either [None] or the
    value the caller would have computed, so results stay bit-identical
    with the cache on or off — a racing writer can turn a hit into a
    miss (both lanes compute), never into a wrong or torn answer.  A
    hit requires the stored [(key, generation)] to match the probe
    exactly; the packed tag word is only a fast filter and a staleness
    signal.

    Aging instead of eviction: entries tagged with another generation
    never match, so an epoch swap invalidates the whole table by
    bumping the caller's generation (the daemon threads its epoch id),
    in O(1) and without blocking concurrent readers of the old epoch.
    Stale slots are reclaimed lazily by writers, preferred over live
    ones when a probe window is full.

    Capacity is rounded up to a power of two; probing is linear over a
    bounded window, so a full table degrades to recomputation, never to
    long scans. *)

type 'v t

type stats = {
  hits : int;
  misses : int;
  replaced : int;  (** live same-generation entries overwritten by a new key *)
  aged : int;  (** stale-generation entries reclaimed by a writer *)
  capacity : int;
}

val create : ?salt:int -> capacity:int -> unit -> 'v t
(** [create ~capacity ()] allocates the table; [capacity] (entries,
    [> 0]) is rounded up to a power of two.  [salt] perturbs the hash
    for distribution — e.g. a structural graph hash so equal keys of
    different graphs spread differently — and never affects matching.
    @raise Invalid_argument when [capacity <= 0]. *)

val capacity : 'v t -> int
(** Actual capacity after rounding. *)

val find : 'v t -> gen:int -> key:int -> 'v option
(** Lock-free lookup of [key] at generation [gen]; counts one hit or
    one miss. *)

val add : 'v t -> gen:int -> key:int -> 'v -> unit
(** Lock-free insert, replacing within a bounded probe window by
    preference: same key, else an empty slot, else the stalest
    generation.  An insert can be lost to a concurrent writer of the
    same window — the cost is a future miss, by design. *)

val stats : 'v t -> stats
(** Monotone counter snapshot (atomic counters, so exact even under
    concurrent use). *)

val no_stats : stats
(** All-zero stats, for the cache-off arms of reports. *)
