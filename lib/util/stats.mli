(** Descriptive statistics over float samples.

    Used by the experiment harness to summarize stretch distributions,
    table sizes and search costs. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}
(** Five-number-style summary of a sample. *)

val ratio : int -> int -> float
(** [ratio num den] is [num /. den], and [0.0] when [den = 0] — the one
    zero-total-safe helper behind every hit-rate / delivery-rate field,
    so the reports cannot drift in how they treat an empty total. *)

val summarize : float array -> summary
(** [summarize xs] computes the summary of a non-empty sample.
    @raise Invalid_argument on an empty array. *)

val empty_summary : summary
(** All-zero summary, used for empty cells in report tables. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]] reads the [q]-quantile by
    linear interpolation.  [sorted] must be sorted ascending and
    non-empty. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 when fewer than two samples. *)

val histogram : buckets:float array -> float array -> int array
(** [histogram ~buckets xs] counts, for each upper bound [buckets.(i)], the
    samples [x] with [prev < x <= buckets.(i)] (where [prev] is the previous
    bound, or [neg_infinity] for the first).  A final extra bucket counts
    samples above the last bound; the result has
    [Array.length buckets + 1] cells. *)

val cdf_at : float array -> float -> float
(** [cdf_at sorted x] is the fraction of samples [<= x]. *)

val linear_fit : (float * float) array -> float * float
(** Least-squares fit [y = a*x + b]; returns [(a, b)].  Requires at least
    two points with distinct abscissae. *)
