(** Minimal JSON-lines emission for machine-readable CLI/bench output.

    Every subcommand that prints result rows ([crt eval], [crt
    resilience], [crt serve]) emits one JSON object per row through
    these helpers, so downstream plotting needs no OCaml JSON
    dependency and all subcommands agree on number formatting. *)

val escape : string -> string
(** Escapes quotes, backslashes and control bytes for a JSON string
    body (no surrounding quotes). *)

val str : string -> string
(** A quoted, escaped JSON string. *)

val float : float -> string
(** Integral floats as ["1.0"], others as [%.6g].  Non-finite values
    ([infinity], [neg_infinity], [nan]) render as ["null"]: JSON has no
    non-finite numbers, and a failed route's infinite stretch must not
    corrupt the line.  Consumers read null as "undefined/unreachable"
    (the convention is recorded in DESIGN.md §7). *)

val int : int -> string

val bool : bool -> string

val obj : (string * string) list -> string
(** [obj fields] renders [{"k":v,...}] on one line; values must already
    be rendered JSON ({!str}, {!float}, {!int}, {!bool}). *)

val write_lines : string list -> string -> unit
(** [write_lines lines path] writes each line plus ["\n"] to [path]. *)

val validate : string -> (unit, string) result
(** Strict RFC 8259 recognizer for exactly one JSON value (no trailing
    garbage).  The test suite validates every emitted row through this,
    so an ["inf"]/["nan"] token regression fails [dune runtest], not
    just the CI python gate. *)
