(** Minimal JSON-lines emission for machine-readable CLI/bench output.

    Every subcommand that prints result rows ([crt eval], [crt
    resilience], [crt serve]) emits one JSON object per row through
    these helpers, so downstream plotting needs no OCaml JSON
    dependency and all subcommands agree on number formatting. *)

val escape : string -> string
(** Escapes quotes, backslashes and control bytes for a JSON string
    body (no surrounding quotes). *)

val str : string -> string
(** A quoted, escaped JSON string. *)

val float : float -> string
(** Integral floats as ["1.0"], others as [%.6g] — matches the format
    the resilience sweep has emitted since it was introduced. *)

val int : int -> string

val bool : bool -> string

val obj : (string * string) list -> string
(** [obj fields] renders [{"k":v,...}] on one line; values must already
    be rendered JSON ({!str}, {!float}, {!int}, {!bool}). *)

val write_lines : string list -> string -> unit
(** [write_lines lines path] writes each line plus ["\n"] to [path]. *)
