(** Minimal JSON-lines emission for machine-readable CLI/bench output.

    Every subcommand that prints result rows ([crt eval], [crt
    resilience], [crt serve]) emits one JSON object per row through
    these helpers, so downstream plotting needs no OCaml JSON
    dependency and all subcommands agree on number formatting. *)

val escape : string -> string
(** Escapes quotes, backslashes and control bytes for a JSON string
    body (no surrounding quotes). *)

val str : string -> string
(** A quoted, escaped JSON string. *)

val float : float -> string
(** Integral floats as ["1.0"], others as [%.6g].  Non-finite values
    ([infinity], [neg_infinity], [nan]) render as ["null"]: JSON has no
    non-finite numbers, and a failed route's infinite stretch must not
    corrupt the line.  Consumers read null as "undefined/unreachable"
    (the convention is recorded in DESIGN.md §7). *)

val int : int -> string

val bool : bool -> string

val obj : (string * string) list -> string
(** [obj fields] renders [{"k":v,...}] on one line; values must already
    be rendered JSON ({!str}, {!float}, {!int}, {!bool}). *)

val write_lines : string list -> string -> unit
(** [write_lines lines path] writes each line plus ["\n"] to [path]. *)

(** Incremental line-at-a-time JSONL output for long-running emitters
    (the route daemon, streaming serve runs).  Every {!Writer.write}
    appends one complete line plus its newline and flushes before
    returning, so an abrupt exit can never leave a truncated last line
    — the invariant the CI strict-JSON gate checks.  All open writers
    are registered so a signal handler can {!flush_all_writers} before
    exiting. *)
module Writer : sig
  type t

  val create : string -> t
  (** Opens (truncating) [path] and registers the writer. *)

  val path : t -> string

  val write : t -> string -> unit
  (** Appends [line ^ "\n"] and flushes.
      @raise Invalid_argument after {!close}. *)

  val close : t -> unit
  (** Flushes, closes and unregisters.  Idempotent. *)
end

val flush_all_writers : unit -> unit
(** Flushes every open {!Writer} — called from SIGINT/SIGTERM handlers
    so partial output on disk always ends at a line boundary. *)

val validate : string -> (unit, string) result
(** Strict RFC 8259 recognizer for exactly one JSON value (no trailing
    garbage).  The test suite validates every emitted row through this,
    so an ["inf"]/["nan"] token regression fails [dune runtest], not
    just the CI python gate. *)
