(** CRC-32 (IEEE 802.3 / zlib) checksums.

    Used by the durability layer: every daemon journal record and every
    snapshot body carries its CRC so recovery can tell a torn or
    corrupted write from valid data.  Checksums are ints in
    [0, 2{^32}). *)

val string : string -> int
(** CRC-32 of a whole string. *)

val update : int -> string -> int
(** [update crc s] extends a running checksum: [update (string a) b =
    string (a ^ b)]. *)

val to_hex : int -> string
(** Fixed-width 8-digit lowercase hex (["%08x"]). *)

val of_hex : string -> int option
(** Inverse of {!to_hex}: exactly 8 hex digits, else [None]. *)
