(** A reusable pool of OCaml 5 worker domains.

    Spawning a domain costs milliseconds and a slot in the runtime's
    fixed domain table, so parallel regions that re-spawn per call
    amortize badly.  A pool spawns its workers once; every
    {!parallel_for} then publishes one chunked job to the sleeping
    workers and the calling domain participates as one more lane.

    This is the substrate of the batch query engine ([Cr_engine]) and
    of [Cr_graph.Apsp.compute_parallel]; both promise results that are
    bit-identical to their sequential paths, which the pool supports by
    construction: each index of [0, n) is executed exactly once, and
    bodies write to disjoint per-index slots.  The exactly-once
    guarantee survives injected lane crashes: a crashed lane's claimed
    chunk is requeued to the surviving lanes (see {!chaos}). *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains (the caller
    is the remaining lane).  [domains] is clamped to [\[1, 64\]].  A
    pool of size 1 runs everything sequentially in the caller. *)

val domains : t -> int
(** Number of lanes, including the calling domain. *)

type chaos = {
  seed : int;
  crash_rate : float;  (** per-job P(a worker lane dies on its first claim) *)
  stall_rate : float;  (** per-chunk P(a lane sleeps before claiming) *)
  stall_s : float;  (** sleep length for one injected stall *)
}
(** A deterministic lane-fault plan.  Decisions are drawn from a
    splitmix64 stream seeded by [(seed, job generation, lane)], so a
    fixed seed produces a reproducible fault pattern per job.  Only
    worker lanes crash — the caller (lane 0) always survives — and a
    crashed lane stays lost for the rest of that job only: the
    underlying domain returns to the pool, so the next job runs at full
    width again. *)

val chaos_plan :
  ?crash_rate:float -> ?stall_rate:float -> ?stall_s:float -> seed:int -> unit -> chaos
(** Rates default to [0.0] and must lie in [\[0, 1\]]; [stall_s]
    defaults to 1ms and must be non-negative.
    @raise Invalid_argument outside those ranges. *)

type run_stats = {
  requeued : int;  (** indexes re-executed by survivors after crashes *)
  lost_lanes : int;  (** worker lanes that crashed during the job *)
  stalls : int;  (** injected sleeps taken *)
}

val no_stats : run_stats

val parallel_for : ?chunk:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n f] runs [f i] for every [i] in [0, n),
    partitioned dynamically in chunks of [chunk] (default 16) over the
    pool's lanes, and returns when all lanes have drained.  The first
    exception raised by any lane is re-raised in the caller with the
    raising lane's backtrace, but only after every lane has drained and
    the pool state is reset, so the pool stays reusable after a
    poisoned job (remaining indexes may be skipped).  A nested or
    concurrent call while the pool is busy degrades to a sequential
    loop instead of deadlocking. *)

val parallel_for_stats :
  ?chunk:int -> ?chaos:chaos -> t -> n:int -> (int -> unit) -> run_stats
(** {!parallel_for} plus fault injection and per-job fault stats.  With
    [chaos], worker lanes may stall or crash; a crashed lane's claimed
    chunk is pushed to a requeue list that surviving lanes drain after
    the main work counter is exhausted, preserving the exactly-once
    guarantee (and therefore the determinism contract of result
    arrays).  Chaos is inert on a pool of width 1 and on the
    sequential fallback paths. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  Subsequent
    {!parallel_for}s run sequentially. *)

val default_domains : unit -> int
(** [min 8 (Domain.recommended_domain_count ())] — the width used for
    the shared pool and for callers that do not pick one. *)

val shared : unit -> t
(** The process-wide pool, created on first use with
    {!default_domains} lanes.  [Apsp.compute_parallel], the batch
    engine's default, [Experiment.run_scheme] and the resilience
    sweeps all run on this pool, so a process pays the spawn cost once
    no matter how many tables it builds. *)

val set_shared_domains : int -> unit
(** Replaces the shared pool with a fresh one of the given width (the
    old pool is shut down).  Intended for CLI entry points
    ([crt serve --domains D]); do not call while a [parallel_for] on
    the shared pool is in flight. *)

val resize_shared : int -> unit
(** Alias of {!set_shared_domains}: the resize half of the shared
    pool's lifecycle API. *)

val shutdown_shared : unit -> unit
(** Joins the shared pool's workers and clears the singleton.
    Idempotent (a second call is a no-op), and re-init is automatic:
    the next {!shared} spawns a fresh pool.  Long-running entry points
    (the route daemon) call this from [at_exit] so the process never
    terminates with worker domains parked on a condition variable; do
    not call while a [parallel_for] on the shared pool is in
    flight. *)
