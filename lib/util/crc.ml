(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the zlib
   checksum.  The durability layer stamps every journal record and
   snapshot body with it so a torn or bit-rotted write is detected at
   recovery instead of silently replayed.  Table-driven, one table
   computed at module load; values live in [0, 2^32) as OCaml ints
   (the runtime is 64-bit). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let string s = update 0 s

let to_hex c = Printf.sprintf "%08x" (c land 0xFFFFFFFF)

let of_hex s =
  if String.length s <> 8 then None
  else
    let ok =
      String.for_all
        (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
        s
    in
    if ok then int_of_string_opt ("0x" ^ s) else None
