type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let empty_summary =
  { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p90 = 0.; p95 = 0.; p99 = 0. }

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 0.5;
    p90 = percentile sorted 0.9;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
  }

let histogram ~buckets xs =
  let nb = Array.length buckets in
  let counts = Array.make (nb + 1) 0 in
  let place x =
    let rec find i = if i >= nb then nb else if x <= buckets.(i) then i else find (i + 1) in
    find 0
  in
  Array.iter (fun x -> let i = place x in counts.(i) <- counts.(i) + 1) xs;
  counts

let cdf_at sorted x =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    (* binary search for the rightmost index with value <= x *)
    let lo = ref (-1) and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if sorted.(mid) <= x then lo := mid else hi := mid
    done;
    float_of_int (!lo + 1) /. float_of_int n
  end

let linear_fit pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    pts;
  let fn = float_of_int n in
  let denom = (fn *. !sxx) -. (!sx *. !sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate abscissae";
  let a = ((fn *. !sxy) -. (!sx *. !sy)) /. denom in
  let b = (!sy -. (a *. !sx)) /. fn in
  (a, b)
