(* Minimal JSON-lines emission: the CLI subcommands and bench targets
   print one JSON object per result row so sweeps can be consumed by
   plotting scripts without an OCaml JSON dependency. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = Printf.sprintf "\"%s\"" (escape s)

(* JSON has no representation for non-finite numbers: [%g] would print
   "inf"/"nan" and silently corrupt every line holding a failed route's
   infinite stretch.  The repo-wide convention is that non-finite values
   serialize as [null] (see DESIGN.md §7); consumers treat null as
   "undefined / unreachable". *)
let float x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let int = string_of_int

let bool = string_of_bool

let obj fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_lines lines path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

(* ---- strict validation ------------------------------------------------

   A minimal RFC 8259 recognizer, used by the test suite (and available
   to CI) to prove that every emitted line is strict JSON — in
   particular that no "inf"/"nan" token ever leaks out again.  It
   recognizes exactly one JSON value per input string and rejects
   trailing garbage. *)

exception Bad of int * string

let validate s =
  let n = String.length s in
  let peek i = if i < n then Some s.[i] else None in
  let fail i msg = raise (Bad (i, msg)) in
  let rec skip_ws i =
    match peek i with
    | Some (' ' | '\t' | '\n' | '\r') -> skip_ws (i + 1)
    | _ -> i
  in
  let expect i c =
    match peek i with
    | Some x when x = c -> i + 1
    | _ -> fail i (Printf.sprintf "expected %C" c)
  in
  let literal i word =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then i + l
    else fail i (Printf.sprintf "expected %s" word)
  in
  let rec string_body i =
    match peek i with
    | None -> fail i "unterminated string"
    | Some '"' -> i + 1
    | Some '\\' -> (
        match peek (i + 1) with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> string_body (i + 2)
        | Some 'u' ->
            let hex j =
              match peek j with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
              | _ -> fail j "bad \\u escape"
            in
            hex (i + 2); hex (i + 3); hex (i + 4); hex (i + 5);
            string_body (i + 6)
        | _ -> fail i "bad escape")
    | Some c when Char.code c < 32 -> fail i "unescaped control byte"
    | Some _ -> string_body (i + 1)
  in
  let digits i =
    let rec go j = match peek j with Some '0' .. '9' -> go (j + 1) | _ -> j in
    let j = go i in
    if j = i then fail i "expected digit" else j
  in
  let number i =
    let i = match peek i with Some '-' -> i + 1 | _ -> i in
    let i =
      match peek i with
      | Some '0' -> i + 1
      | Some '1' .. '9' -> digits i
      | _ -> fail i "bad number"
    in
    let i = match peek i with Some '.' -> digits (i + 1) | _ -> i in
    match peek i with
    | Some ('e' | 'E') ->
        let j = match peek (i + 1) with Some ('+' | '-') -> i + 2 | _ -> i + 1 in
        digits j
    | _ -> i
  in
  let rec value i =
    let i = skip_ws i in
    match peek i with
    | Some '"' -> string_body (i + 1)
    | Some '{' -> obj_tail (skip_ws (i + 1)) ~first:true
    | Some '[' -> arr_tail (skip_ws (i + 1)) ~first:true
    | Some 't' -> literal i "true"
    | Some 'f' -> literal i "false"
    | Some 'n' -> literal i "null"
    | Some ('-' | '0' .. '9') -> number i
    | _ -> fail i "expected a JSON value"
  and obj_tail i ~first =
    match peek i with
    | Some '}' -> i + 1
    | _ ->
        let i = if first then i else skip_ws (expect i ',') in
        let i = expect (skip_ws i) '"' in
        let i = string_body i in
        let i = expect (skip_ws i) ':' in
        let i = skip_ws (value i) in
        obj_tail i ~first:false
  and arr_tail i ~first =
    match peek i with
    | Some ']' -> i + 1
    | _ ->
        let i = if first then i else skip_ws (expect i ',') in
        let i = skip_ws (value i) in
        arr_tail i ~first:false
  in
  match skip_ws (value 0) with
  | i when i = n -> Ok ()
  | i -> Error (Printf.sprintf "offset %d: trailing garbage" i)
  | exception Bad (i, msg) -> Error (Printf.sprintf "offset %d: %s" i msg)
