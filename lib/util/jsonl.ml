(* Minimal JSON-lines emission: the CLI subcommands and bench targets
   print one JSON object per result row so sweeps can be consumed by
   plotting scripts without an OCaml JSON dependency. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = Printf.sprintf "\"%s\"" (escape s)

(* JSON has no representation for non-finite numbers: [%g] would print
   "inf"/"nan" and silently corrupt every line holding a failed route's
   infinite stretch.  The repo-wide convention is that non-finite values
   serialize as [null] (see DESIGN.md §7); consumers treat null as
   "undefined / unreachable". *)
let float x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let int = string_of_int

let bool = string_of_bool

let obj fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_lines lines path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

(* ---- incremental writer ----------------------------------------------

   Long-running emitters (the route daemon, streaming serve runs) write
   one line at a time and must never leave a truncated last line, even
   when the process is killed by SIGINT/SIGTERM: a half-written line
   fails the CI strict-JSON gate and poisons downstream readers.  Every
   [write] therefore appends the full line plus its newline and flushes
   before returning, and all open writers sit in a registry so a signal
   handler can [flush_all_writers] before exiting. *)

module Writer = struct
  type t = { path : string; oc : out_channel; mutable closed : bool }

  let registry : t list ref = ref []

  let registry_lock = Mutex.create ()

  let with_registry f =
    Mutex.lock registry_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

  let create path =
    let w = { path; oc = open_out path; closed = false } in
    with_registry (fun () -> registry := w :: !registry);
    w

  let path w = w.path

  let write w line =
    if w.closed then invalid_arg "Jsonl.Writer.write: writer is closed";
    output_string w.oc line;
    output_char w.oc '\n';
    flush w.oc

  let close w =
    if not w.closed then begin
      w.closed <- true;
      with_registry (fun () -> registry := List.filter (fun x -> x != w) !registry);
      close_out w.oc
    end
end

let flush_all_writers () =
  Writer.with_registry (fun () ->
      List.iter (fun (w : Writer.t) -> if not w.Writer.closed then flush w.Writer.oc) !Writer.registry)

(* ---- strict validation ------------------------------------------------

   A minimal RFC 8259 recognizer, used by the test suite (and available
   to CI) to prove that every emitted line is strict JSON — in
   particular that no "inf"/"nan" token ever leaks out again.  It
   recognizes exactly one JSON value per input string and rejects
   trailing garbage. *)

exception Bad of int * string

let validate s =
  let n = String.length s in
  let peek i = if i < n then Some s.[i] else None in
  let fail i msg = raise (Bad (i, msg)) in
  let rec skip_ws i =
    match peek i with
    | Some (' ' | '\t' | '\n' | '\r') -> skip_ws (i + 1)
    | _ -> i
  in
  let expect i c =
    match peek i with
    | Some x when x = c -> i + 1
    | _ -> fail i (Printf.sprintf "expected %C" c)
  in
  let literal i word =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then i + l
    else fail i (Printf.sprintf "expected %s" word)
  in
  let rec string_body i =
    match peek i with
    | None -> fail i "unterminated string"
    | Some '"' -> i + 1
    | Some '\\' -> (
        match peek (i + 1) with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> string_body (i + 2)
        | Some 'u' ->
            let hex j =
              match peek j with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
              | _ -> fail j "bad \\u escape"
            in
            hex (i + 2); hex (i + 3); hex (i + 4); hex (i + 5);
            string_body (i + 6)
        | _ -> fail i "bad escape")
    | Some c when Char.code c < 32 -> fail i "unescaped control byte"
    | Some _ -> string_body (i + 1)
  in
  let digits i =
    let rec go j = match peek j with Some '0' .. '9' -> go (j + 1) | _ -> j in
    let j = go i in
    if j = i then fail i "expected digit" else j
  in
  let number i =
    let i = match peek i with Some '-' -> i + 1 | _ -> i in
    let i =
      match peek i with
      | Some '0' -> i + 1
      | Some '1' .. '9' -> digits i
      | _ -> fail i "bad number"
    in
    let i = match peek i with Some '.' -> digits (i + 1) | _ -> i in
    match peek i with
    | Some ('e' | 'E') ->
        let j = match peek (i + 1) with Some ('+' | '-') -> i + 2 | _ -> i + 1 in
        digits j
    | _ -> i
  in
  let rec value i =
    let i = skip_ws i in
    match peek i with
    | Some '"' -> string_body (i + 1)
    | Some '{' -> obj_tail (skip_ws (i + 1)) ~first:true
    | Some '[' -> arr_tail (skip_ws (i + 1)) ~first:true
    | Some 't' -> literal i "true"
    | Some 'f' -> literal i "false"
    | Some 'n' -> literal i "null"
    | Some ('-' | '0' .. '9') -> number i
    | _ -> fail i "expected a JSON value"
  and obj_tail i ~first =
    match peek i with
    | Some '}' -> i + 1
    | _ ->
        let i = if first then i else skip_ws (expect i ',') in
        let i = expect (skip_ws i) '"' in
        let i = string_body i in
        let i = expect (skip_ws i) ':' in
        let i = skip_ws (value i) in
        obj_tail i ~first:false
  and arr_tail i ~first =
    match peek i with
    | Some ']' -> i + 1
    | _ ->
        let i = if first then i else skip_ws (expect i ',') in
        let i = skip_ws (value i) in
        arr_tail i ~first:false
  in
  match skip_ws (value 0) with
  | i when i = n -> Ok ()
  | i -> Error (Printf.sprintf "offset %d: trailing garbage" i)
  | exception Bad (i, msg) -> Error (Printf.sprintf "offset %d: %s" i msg)
