(* Minimal JSON-lines emission: the CLI subcommands and bench targets
   print one JSON object per result row so sweeps can be consumed by
   plotting scripts without an OCaml JSON dependency. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = Printf.sprintf "\"%s\"" (escape s)

let float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let int = string_of_int

let bool = string_of_bool

let obj fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_lines lines path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)
