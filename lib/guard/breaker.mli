(** Per-shard circuit breaker (closed / open / half-open).

    Closed counts failures over a sliding window of the last [window]
    outcomes and trips once [min_samples] are present and the failure
    rate reaches [threshold].  Open rejects everything until
    [cooldown_s] has elapsed on {!Clock.now}, then Half_open admits up
    to [probes] trials: one failed probe re-opens (cooldown restarts),
    [probes] consecutive successes close and reset the window.

    Single-executor by design: one breaker guards one engine shard,
    like the per-lane LRU caches, so there is no internal locking and
    the state machine is deterministic in (outcome sequence, clock). *)

type config = {
  window : int;
  threshold : float;
  min_samples : int;
  cooldown_s : float;
  probes : int;
}

val default_config : config
(** window 32, threshold 0.5, min_samples 8, cooldown 50ms, probes 2. *)

val make_config :
  ?window:int -> ?threshold:float -> ?min_samples:int -> ?cooldown_s:float -> ?probes:int ->
  unit -> config
(** Same defaults as {!default_config}.
    @raise Invalid_argument on non-positive window/min_samples/probes,
    threshold outside (0, 1], or a negative cooldown. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type t

val create : config -> t

val allow : t -> bool
(** Admission check; call once per request before executing it.
    [false] means reject with [Rejection.Breaker_open].  Performs the
    Open -> Half_open transition when the cooldown has elapsed (the
    caller of that first [allow] gets the probe slot). *)

val record : t -> ok:bool -> unit
(** Report the outcome of an admitted request. *)

val state : t -> state

val opens : t -> int
(** Lifetime count of trips to Open. *)

val failure_rate : t -> float
(** Current windowed failure rate (0 when no samples). *)
