(* The guard clock: one process-wide swappable time source shared by
   Deadline and Breaker, the same idiom as Cr_obs.Profile.clock.  Tests
   install a fake clock to drive deadline expiry and breaker cooldowns
   deterministically.

   The production default is CLOCK_MONOTONIC (via bechamel's stub), not
   the wall clock: deadlines and breaker cooldowns only ever subtract
   two readings, and in a daemon that runs for hours a wall-clock step
   (NTP slew, manual reset, leap smearing) would expire every in-flight
   budget at once — or worse, push expiry arbitrarily far out.  A
   monotonic source cannot go backwards and is immune to steps, so
   elapsed time is always truthful.  The origin is arbitrary (boot
   time), which is fine: nothing in the guard stack needs an absolute
   epoch. *)

let monotonic () = 1e-9 *. Int64.to_float (Monotonic_clock.now ())

let now : (unit -> float) ref = ref monotonic

(* Sleeping is also swappable so retry backoff never blocks a test. *)
let sleep : (float -> unit) ref = ref (fun s -> if s > 0.0 then Unix.sleepf s)

let with_fake f =
  let saved_now = !now and saved_sleep = !sleep in
  let t = ref 0.0 in
  now := (fun () -> !t);
  (* a fake sleep advances fake time, so backoff interacts with
     deadlines exactly as it would on a real clock *)
  sleep := (fun s -> if s > 0.0 then t := !t +. s);
  Fun.protect
    ~finally:(fun () ->
      now := saved_now;
      sleep := saved_sleep)
    (fun () -> f (fun dt -> t := !t +. dt))
