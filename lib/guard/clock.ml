(* The guard clock: one process-wide swappable time source shared by
   Deadline and Breaker, the same idiom as Cr_obs.Profile.clock.  Tests
   install a fake clock to drive deadline expiry and breaker cooldowns
   deterministically; production leaves the Unix default in place. *)

let now : (unit -> float) ref = ref Unix.gettimeofday

(* Sleeping is also swappable so retry backoff never blocks a test. *)
let sleep : (float -> unit) ref = ref (fun s -> if s > 0.0 then Unix.sleepf s)

let with_fake f =
  let saved_now = !now and saved_sleep = !sleep in
  let t = ref 0.0 in
  now := (fun () -> !t);
  (* a fake sleep advances fake time, so backoff interacts with
     deadlines exactly as it would on a wall clock *)
  sleep := (fun s -> if s > 0.0 then t := !t +. s);
  Fun.protect
    ~finally:(fun () ->
      now := saved_now;
      sleep := saved_sleep)
    (fun () -> f (fun dt -> t := !t +. dt))
