(** The assembled guard configuration for one serving run.

    Bundles deadline budgets, the retry policy, and the breaker and
    shed configs that [Cr_engine.Engine.run_guarded] threads through
    every shard.  {!off} disables every guard: the guarded path under
    [off] and [Chaos.none] is bit-identical to the unguarded engine
    (the determinism pin of the chaos suite). *)

type t = {
  batch_budget_s : float option;
  query_budget_s : float option;
  retry : Retry.policy;
  breaker : Breaker.config option;
  shed : Shed.config option;
}

val off : t

val make :
  ?batch_budget_s:float ->
  ?query_budget_s:float ->
  ?retry:Retry.policy ->
  ?breaker:Breaker.config ->
  ?shed:Shed.config ->
  unit ->
  t
(** @raise Invalid_argument on a negative budget. *)

val serving : t
(** Production default: 3 retry attempts (0.5ms base backoff),
    default breaker and shed, no deadline — budgets are opt-in. *)

val strict : batch_budget_s:float -> t
(** [serving] plus a batch budget, a query budget of a tenth of it,
    and headroom-2 shedding: the overload configuration of the chaos
    sweeps. *)

val is_off : t -> bool

val presets : batch_budget_s:float -> (string * t) list
(** off / serving / strict, for the [crt chaos] grid. *)

val preset_of_string : batch_budget_s:float -> string -> (t, string) result
