(** Capped exponential backoff for supervised component restarts.

    {!Retry} paces attempts of one query; [Backoff] paces restarts of a
    component (the daemon's repair domain).  Deterministic, capped in
    both delay and count: after [max_restarts] consecutive failures the
    supervisor should stop restarting and report the component dead. *)

type t = {
  base_s : float;
  multiplier : float;
  cap_s : float;
  max_restarts : int;
}

val make :
  ?base_s:float ->
  ?multiplier:float ->
  ?cap_s:float ->
  ?max_restarts:int ->
  unit ->
  t
(** Defaults: base 10ms, doubling, capped at 1s, 5 restarts.
    @raise Invalid_argument on negative [base_s]/[max_restarts],
    [multiplier < 1] or [cap_s < base_s]. *)

val repair : t
(** The default schedule for the daemon's repair supervisor
    ([make ()]). *)

val delay_s : t -> restart:int -> float
(** Delay before the [restart]-th consecutive restart (1-based):
    [min cap_s (base_s * multiplier^(restart-1))].
    @raise Invalid_argument if [restart < 1]. *)

val exhausted : t -> restart:int -> bool
(** Whether the [restart]-th restart exceeds the budget
    ([restart > max_restarts]). *)
