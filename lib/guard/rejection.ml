(* The structured refusals of the guarded serving path.  Every guard
   rejects by returning one of these — never by raising — so a batch
   always terminates with a total outcome array. *)

type t = Timed_out | Shed | Breaker_open | Worker_lost

let all = [ Timed_out; Shed; Breaker_open; Worker_lost ]

let to_string = function
  | Timed_out -> "timed_out"
  | Shed -> "shed"
  | Breaker_open -> "breaker_open"
  | Worker_lost -> "worker_lost"

(* counter key under the guard.* namespace, pluralized to match the
   existing engine.* style (engine.batches, engine.queries, ...) *)
let counter = function
  | Timed_out -> "guard.timeouts"
  | Shed -> "guard.sheds"
  | Breaker_open -> "guard.breaker_opens"
  | Worker_lost -> "guard.worker_lost"
