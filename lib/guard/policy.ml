(* The assembled guard configuration one serving run threads through
   the engine: budgets, retry, breaker and shed knobs in one record.
   [off] disables everything — the engine's guarded path under [off]
   (and no chaos) is bit-identical to the unguarded one, which is the
   determinism pin the chaos suite enforces. *)

type t = {
  batch_budget_s : float option; (* deadline for the whole batch *)
  query_budget_s : float option; (* deadline for one query *)
  retry : Retry.policy;
  breaker : Breaker.config option;
  shed : Shed.config option;
}

let off =
  { batch_budget_s = None; query_budget_s = None; retry = Retry.none; breaker = None; shed = None }

let make ?batch_budget_s ?query_budget_s ?(retry = Retry.none) ?breaker ?shed () =
  (match batch_budget_s with
  | Some b when not (b >= 0.0) -> invalid_arg "Policy.make: negative batch budget"
  | _ -> ());
  (match query_budget_s with
  | Some b when not (b >= 0.0) -> invalid_arg "Policy.make: negative query budget"
  | _ -> ());
  { batch_budget_s; query_budget_s; retry; breaker; shed }

(* serving default: absorb transient faults, isolate failing shards,
   keep no deadline (callers opt into budgets explicitly) *)
let serving =
  make
    ~retry:(Retry.make ~max_attempts:3 ~base_s:0.0005 ())
    ~breaker:Breaker.default_config ~shed:Shed.default_config ()

(* strict: tight budgets on top of the serving guards, for sweeps that
   exercise shedding and timeouts under overload *)
let strict ~batch_budget_s =
  make ~batch_budget_s ~query_budget_s:(batch_budget_s /. 10.0)
    ~retry:(Retry.make ~max_attempts:2 ~base_s:0.0002 ())
    ~breaker:Breaker.default_config
    ~shed:(Shed.make_config ~headroom:2.0 ()) ()

let is_off p = p = off

let presets ~batch_budget_s =
  [ ("off", off); ("serving", serving); ("strict", strict ~batch_budget_s) ]

let preset_of_string ~batch_budget_s name =
  match List.assoc_opt name (presets ~batch_budget_s) with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown guard preset %S (expected off, serving, strict)" name)
