(* Capped exponential backoff for supervised restarts.

   Retry (this library) paces attempts of one query; Backoff paces
   restarts of a *component* — the daemon's repair domain being the
   first client.  The schedule is deterministic (no jitter: a
   supervisor restarting a singleton worker has nobody to desynchronize
   from) and explicitly capped in both delay and restart count, so a
   deterministically failing component degrades to a permanent,
   reported failure instead of an unbounded restart loop. *)

type t = {
  base_s : float;  (* delay before restart 1 *)
  multiplier : float;  (* growth per further restart *)
  cap_s : float;  (* delay ceiling *)
  max_restarts : int;  (* consecutive failures tolerated before giving up *)
}

let make ?(base_s = 0.01) ?(multiplier = 2.0) ?(cap_s = 1.0) ?(max_restarts = 5) () =
  if not (base_s >= 0.0) then invalid_arg "Backoff.make: negative base_s";
  if not (multiplier >= 1.0) then invalid_arg "Backoff.make: multiplier must be >= 1";
  if not (cap_s >= base_s) then invalid_arg "Backoff.make: cap_s must be >= base_s";
  if max_restarts < 0 then invalid_arg "Backoff.make: negative max_restarts";
  { base_s; multiplier; cap_s; max_restarts }

let repair = make ()

let delay_s t ~restart =
  if restart < 1 then invalid_arg "Backoff.delay_s: restart must be >= 1";
  Float.min t.cap_s (t.base_s *. (t.multiplier ** float_of_int (restart - 1)))

let exhausted t ~restart = restart > t.max_restarts
