(* Admission control: decide, before any work is spent, whether a
   query can still be served.  Two triggers, both cheap:

   - queue depth: more than [max_queue] requests already waiting in
     the shard means the tier is overloaded; shedding the tail early
     keeps the served latencies bounded instead of letting every
     request time out late (classic load-shedding economics).
   - deadline feasibility: if the remaining batch budget cannot fit
     even [headroom] times the shard's estimated per-query cost, the
     query would be dead on arrival — refuse it now.

   The cost estimate is an EWMA the engine maintains per shard; with
   no estimate yet (0.0) feasibility cannot be judged and only the
   queue-depth trigger applies. *)

type config = {
  max_queue : int; (* admit while queued <= max_queue *)
  headroom : float; (* required remaining budget, in per-query costs *)
}

let default_config = { max_queue = max_int; headroom = 1.0 }

let make_config ?(max_queue = max_int) ?(headroom = 1.0) () =
  if max_queue < 0 then invalid_arg "Shed.make_config: negative max_queue";
  if not (headroom >= 0.0) then invalid_arg "Shed.make_config: negative headroom";
  { max_queue; headroom }

(* true = shed *)
let decide cfg ~queued ~remaining_s ~est_cost_s =
  queued > cfg.max_queue
  || (remaining_s < infinity && est_cost_s > 0.0 && remaining_s < cfg.headroom *. est_cost_s)
