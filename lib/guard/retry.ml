(* Bounded retry with deterministic seeded jittered backoff.

   Backoff draws come from a splitmix64 stream keyed by
   (policy seed, retry key, attempt) — the Workload.block_rng idiom —
   so the sleep schedule for a given query is a pure function of the
   policy, never of which lane runs it or how many retries other
   queries consumed.  Sleeping goes through the swappable
   [Clock.sleep], so tests never block. *)

module Rng = Cr_util.Rng

type policy = {
  max_attempts : int; (* total tries including the first; 1 = no retry *)
  base_s : float; (* backoff before attempt 2 *)
  multiplier : float; (* exponential growth per further attempt *)
  jitter : float; (* +/- fraction of the nominal backoff, in [0, 1] *)
  seed : int;
}

let none = { max_attempts = 1; base_s = 0.0; multiplier = 1.0; jitter = 0.0; seed = 0 }

let make ?(base_s = 0.001) ?(multiplier = 2.0) ?(jitter = 0.5) ?(seed = 1) ~max_attempts () =
  if max_attempts < 1 then invalid_arg "Retry.make: max_attempts must be >= 1";
  if not (base_s >= 0.0) then invalid_arg "Retry.make: negative base_s";
  if not (multiplier >= 1.0) then invalid_arg "Retry.make: multiplier must be >= 1";
  if not (jitter >= 0.0 && jitter <= 1.0) then invalid_arg "Retry.make: jitter outside [0, 1]";
  { max_attempts; base_s; multiplier; jitter; seed }

(* backoff taken after [attempt] (1-based) fails; deterministic in
   (seed, key, attempt) *)
let backoff_s p ~key ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff_s: attempt must be >= 1";
  let nominal = p.base_s *. (p.multiplier ** float_of_int (attempt - 1)) in
  if p.jitter = 0.0 then nominal
  else begin
    let rng = Rng.create ((p.seed * 1_000_003) + (key * 8191) + attempt) in
    let u = Rng.float rng 1.0 in
    nominal *. (1.0 -. p.jitter +. (2.0 *. p.jitter *. u))
  end

let run p ~key f =
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error _ as err ->
        if attempt >= p.max_attempts then err
        else begin
          !Clock.sleep (backoff_s p ~key ~attempt);
          go (attempt + 1)
        end
  in
  go 1
