(** Deadline budgets (per query or per batch) over {!Clock.now}.

    A deadline captures an absolute expiry at {!start}; without a
    budget it never expires, so unguarded paths pay only a comparison.
    A zero budget is legal and is already expired — the degenerate case
    the chaos suite uses to prove total shedding terminates. *)

type t

val start : ?budget_s:float -> unit -> t
(** Starts the budget now.  [None] = unbounded.
    @raise Invalid_argument on a negative budget. *)

val elapsed : t -> float
(** Seconds since {!start}. *)

val remaining : t -> float
(** Seconds until expiry; [infinity] when unbounded, negative once
    expired. *)

val expired : t -> bool

val bounded : t -> bool
(** [true] iff a budget was given. *)
