(** Load shedding: admission control before any work is spent.

    A query is shed when the shard's queue is deeper than [max_queue],
    or when the remaining deadline budget cannot fit [headroom] times
    the shard's estimated per-query cost (deadline feasibility).
    Shedding early keeps served latencies bounded under overload
    instead of letting the whole tail time out late. *)

type config = {
  max_queue : int;  (** admit while the shard queue depth is <= this *)
  headroom : float;  (** required remaining budget, in per-query costs *)
}

val default_config : config
(** Unbounded queue, headroom 1.0 — sheds only on infeasibility, and
    only once a deadline and a cost estimate exist. *)

val make_config : ?max_queue:int -> ?headroom:float -> unit -> config
(** @raise Invalid_argument on a negative [max_queue] or [headroom]. *)

val decide : config -> queued:int -> remaining_s:float -> est_cost_s:float -> bool
(** [true] = shed.  [remaining_s] is the batch deadline's remaining
    budget ([infinity] when unbounded); [est_cost_s] the shard's
    per-query cost estimate ([0.0] when unknown, which disables the
    feasibility trigger). *)
