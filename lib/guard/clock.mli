(** The guard time source.

    One process-wide swappable clock shared by {!Deadline} budgets and
    {!Breaker} cooldowns — the [Cr_obs.Profile.clock] idiom.  Defaults
    to [Unix.gettimeofday]; tests swap in a fake to drive expiry and
    cooldown transitions deterministically. *)

val now : (unit -> float) ref
(** Seconds, monotone enough for budgets (wrong only across a
    wall-clock step, like the engine's throughput metrics). *)

val sleep : (float -> unit) ref
(** Used by retry backoff.  Defaults to [Unix.sleepf]; swap to avoid
    real waits in tests. *)

val with_fake : ((float -> unit) -> 'a) -> 'a
(** [with_fake f] installs a fake clock starting at 0.0 and a fake
    sleep that advances it, calls [f advance] where [advance dt] moves
    fake time forward, and restores the real clock on exit (exceptions
    included). *)
