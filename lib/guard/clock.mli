(** The guard time source.

    One process-wide swappable clock shared by {!Deadline} budgets and
    {!Breaker} cooldowns — the [Cr_obs.Profile.clock] idiom.  Defaults
    to {!monotonic}; tests swap in a fake to drive expiry and cooldown
    transitions deterministically. *)

val monotonic : unit -> float
(** Seconds on CLOCK_MONOTONIC (arbitrary origin).  Never goes
    backwards and is immune to wall-clock steps and NTP slew, so a
    deadline armed in a long-running daemon expires exactly its budget
    later — the production default of {!now}. *)

val now : (unit -> float) ref
(** Seconds; only ever compared by subtraction, so the origin is
    irrelevant.  Defaults to {!monotonic} (a daemon must survive
    wall-clock jumps); swap for tests. *)

val sleep : (float -> unit) ref
(** Used by retry backoff.  Defaults to [Unix.sleepf]; swap to avoid
    real waits in tests. *)

val with_fake : ((float -> unit) -> 'a) -> 'a
(** [with_fake f] installs a fake clock starting at 0.0 and a fake
    sleep that advances it, calls [f advance] where [advance dt] moves
    fake time forward, and restores the real clock on exit (exceptions
    included). *)
