(** Deterministic chaos plans for the serving stack.

    A plan is pure data in [Fault_plan]'s style: every injected fault
    is drawn from a splitmix64 stream seeded by the plan, so a fixed
    seed reproduces the same fault pattern.  Two layers compose:

    - {e pool} faults (lane crashes/stalls) are delegated to
      {!Cr_util.Domain_pool.chaos} and kill or delay a shard's
      executor;
    - {e query} faults are keyed by query index — independent of lanes
      and interleaving — and model a worker crashing mid-query
      (transient for [fail_attempts] attempts, so bounded retry can
      save it) or an injected latency spike that deadlines must cut
      off. *)

type t

val none : t
(** No injection anywhere; the guarded path with [none] is
    bit-identical to the unguarded engine. *)

val plan :
  ?label:string ->
  ?crash_rate:float ->
  ?stall_rate:float ->
  ?stall_s:float ->
  ?fail_rate:float ->
  ?fail_attempts:int ->
  ?qstall_rate:float ->
  ?qstall_s:float ->
  seed:int ->
  unit ->
  t
(** [crash_rate]/[stall_rate]/[stall_s] configure the pool layer;
    [fail_rate]/[fail_attempts] the transient query crashes;
    [qstall_rate]/[qstall_s] the query latency spikes.  All rates in
    [\[0, 1\]]; [fail_attempts >= 1].
    @raise Invalid_argument outside those ranges. *)

val label : t -> string

val is_none : t -> bool

val pool_chaos : t -> Cr_util.Domain_pool.chaos option
(** The pool-layer plan to hand to [parallel_for_stats]. *)

val query_fails : t -> q:int -> int
(** Leading attempts of query [q] the injected fault consumes (0 =
    untouched).  Pure in [(plan, q)]. *)

val query_stall_s : t -> q:int -> float
(** Injected latency spike for query [q] (0 = none).  Pure in
    [(plan, q)]. *)

val presets : seed:int -> (string * t) list
(** Named intensities for sweeps: none, crash, stall, flaky, storm. *)

val preset_of_string : seed:int -> string -> (t, string) result
