(** Bounded retry with deterministic seeded jittered backoff.

    The backoff before attempt [a+1] of retry key [k] is a pure
    function of [(policy.seed, k, a)] — drawn from its own splitmix64
    stream, the [Workload.block_rng] idiom — so retry schedules are
    reproducible regardless of lane interleaving.  Sleeps go through
    the swappable {!Clock.sleep}. *)

type policy = {
  max_attempts : int;  (** total tries including the first; [1] = no retry *)
  base_s : float;  (** nominal backoff before attempt 2 *)
  multiplier : float;  (** exponential growth per further attempt *)
  jitter : float;  (** backoff is scaled by [1 - j .. 1 + j] *)
  seed : int;
}

val none : policy
(** One attempt, no backoff: the identity wrapper. *)

val make :
  ?base_s:float -> ?multiplier:float -> ?jitter:float -> ?seed:int -> max_attempts:int ->
  unit -> policy
(** Defaults: 1ms base, multiplier 2, jitter 0.5, seed 1.
    @raise Invalid_argument on [max_attempts < 1], negative [base_s],
    [multiplier < 1] or [jitter] outside [\[0, 1\]]. *)

val backoff_s : policy -> key:int -> attempt:int -> float
(** Backoff slept after 1-based [attempt] fails, for retry stream
    [key] (the engine uses the query index).
    @raise Invalid_argument if [attempt < 1]. *)

val run : policy -> key:int -> (attempt:int -> ('a, 'e) result) -> ('a, 'e) result
(** [run p ~key f] calls [f ~attempt:1], retrying on [Error] with
    backoff until success or [max_attempts] is spent; the last error
    is returned as-is. *)
