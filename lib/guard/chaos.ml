(* Deterministic chaos plans for the serving stack, mirroring
   Fault_plan's style: a plan is data, decisions are drawn from seeded
   splitmix64 streams, and the label names the plan in reports.

   Two layers of injection:
   - pool: lane crashes and stalls inside Domain_pool (the worker-pool
     fault model — a whole shard's executor dies or hiccups);
   - query: per-query transient failures ("the worker died mid-query";
     retries can save it) and per-query stalls (latency spikes that
     deadlines must cut off).

   Query decisions are keyed by the query *index*, never by the lane,
   so which queries fail is a pure function of (plan, batch) — the
   chaos suite pins Worker_lost outcomes exactly. *)

module Rng = Cr_util.Rng
module Pool = Cr_util.Domain_pool

type t = {
  label : string;
  pool : Pool.chaos option;
  qseed : int;
  fail_rate : float; (* P(a query's executor crashes on an attempt) *)
  fail_attempts : int; (* attempts the injected fault keeps eating *)
  qstall_rate : float; (* P(a query suffers an injected latency spike) *)
  qstall_s : float;
}

let none =
  {
    label = "none";
    pool = None;
    qseed = 0;
    fail_rate = 0.0;
    fail_attempts = 1;
    qstall_rate = 0.0;
    qstall_s = 0.0;
  }

let check_rate what r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Chaos.plan: %s %g outside [0, 1]" what r)

let plan ?label ?(crash_rate = 0.0) ?(stall_rate = 0.0) ?(stall_s = 0.001) ?(fail_rate = 0.0)
    ?(fail_attempts = 1) ?(qstall_rate = 0.0) ?(qstall_s = 0.0) ~seed () =
  check_rate "crash_rate" crash_rate;
  check_rate "stall_rate" stall_rate;
  check_rate "fail_rate" fail_rate;
  check_rate "qstall_rate" qstall_rate;
  if fail_attempts < 1 then invalid_arg "Chaos.plan: fail_attempts must be >= 1";
  if not (stall_s >= 0.0) then invalid_arg "Chaos.plan: negative stall_s";
  if not (qstall_s >= 0.0) then invalid_arg "Chaos.plan: negative qstall_s";
  let pool =
    if crash_rate > 0.0 || stall_rate > 0.0 then
      Some (Pool.chaos_plan ~crash_rate ~stall_rate ~stall_s ~seed ())
    else None
  in
  let label =
    match label with
    | Some l -> l
    | None ->
        Printf.sprintf "chaos(crash=%g,stall=%g,fail=%g,qstall=%g,seed=%d)" crash_rate
          stall_rate fail_rate qstall_rate seed
  in
  { label; pool; qseed = seed; fail_rate; fail_attempts; qstall_rate; qstall_s }

let label t = t.label
let pool_chaos t = t.pool

let is_none t =
  t.pool = None && t.fail_rate = 0.0 && t.qstall_rate = 0.0

let qrng t ~q ~salt = Rng.create ((t.qseed * 1_000_003) + (q * 8191) + salt)

(* number of leading attempts of query [q] that the injected fault
   consumes: 0 for an untouched query, [fail_attempts] for a hit one *)
let query_fails t ~q =
  if t.fail_rate <= 0.0 then 0
  else if Rng.float (qrng t ~q ~salt:1) 1.0 < t.fail_rate then t.fail_attempts
  else 0

let query_stall_s t ~q =
  if t.qstall_rate <= 0.0 then 0.0
  else if Rng.float (qrng t ~q ~salt:2) 1.0 < t.qstall_rate then t.qstall_s
  else 0.0

(* named intensities for sweeps and the CLI *)
let presets ~seed =
  [
    ("none", none);
    ("crash", plan ~label:"crash" ~crash_rate:0.4 ~seed ());
    ("stall", plan ~label:"stall" ~stall_rate:0.3 ~stall_s:0.002 ~qstall_rate:0.05
       ~qstall_s:0.002 ~seed ());
    ("flaky", plan ~label:"flaky" ~fail_rate:0.25 ~fail_attempts:2 ~seed ());
    ( "storm",
      plan ~label:"storm" ~crash_rate:0.5 ~stall_rate:0.2 ~stall_s:0.002 ~fail_rate:0.4
        ~fail_attempts:3 ~qstall_rate:0.1 ~qstall_s:0.002 ~seed () );
  ]

let preset_of_string ~seed name =
  match List.assoc_opt name (presets ~seed) with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown chaos preset %S (expected %s)" name
           (String.concat ", " (List.map fst (presets ~seed))))
