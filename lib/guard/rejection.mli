(** Structured refusals of the guarded serving path.

    Guards never raise at the caller: a query that cannot be served
    maps to exactly one of these constructors, so a guarded batch is a
    total function from queries to [(measured, t) result]. *)

type t =
  | Timed_out  (** batch or per-query deadline budget exhausted *)
  | Shed  (** refused at admission: queue depth or infeasible deadline *)
  | Breaker_open  (** the shard's circuit breaker is open *)
  | Worker_lost  (** the executing worker was lost and retries ran out *)

val all : t list
(** Every constructor, in declaration order (for table/report loops). *)

val to_string : t -> string

val counter : t -> string
(** The [guard.*] counter name this rejection increments
    (e.g. [guard.timeouts]). *)
