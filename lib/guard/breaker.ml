(* Per-shard circuit breaker: closed / open / half-open.

   Closed tracks the last [window] outcomes in a ring; when at least
   [min_samples] are present and the failure rate reaches [threshold],
   the breaker trips Open and rejects everything for [cooldown_s]
   (measured on the guard clock).  After the cooldown it goes
   Half_open and admits up to [probes] trial requests: one probe
   failure re-opens (restarting the cooldown), while [probes]
   consecutive successes close it and reset the window.

   Like the per-lane LRU caches, one breaker belongs to exactly one
   engine shard, whose slice has a single executor per batch — so
   there is no internal locking and transitions are deterministic in
   the outcome sequence plus the clock. *)

type config = {
  window : int;
  threshold : float; (* trip when failures / samples >= threshold *)
  min_samples : int; (* never trip before this many outcomes *)
  cooldown_s : float;
  probes : int; (* half-open trial budget *)
}

let default_config =
  { window = 32; threshold = 0.5; min_samples = 8; cooldown_s = 0.05; probes = 2 }

let make_config ?(window = 32) ?(threshold = 0.5) ?(min_samples = 8) ?(cooldown_s = 0.05)
    ?(probes = 2) () =
  if window < 1 then invalid_arg "Breaker.make_config: window must be >= 1";
  if not (threshold > 0.0 && threshold <= 1.0) then
    invalid_arg "Breaker.make_config: threshold outside (0, 1]";
  if min_samples < 1 then invalid_arg "Breaker.make_config: min_samples must be >= 1";
  if not (cooldown_s >= 0.0) then invalid_arg "Breaker.make_config: negative cooldown";
  if probes < 1 then invalid_arg "Breaker.make_config: probes must be >= 1";
  { window; threshold; min_samples; cooldown_s; probes }

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type t = {
  cfg : config;
  ring : bool array; (* true = failure; ring of the last [window] outcomes *)
  mutable idx : int;
  mutable samples : int; (* filled slots, <= window *)
  mutable failures : int; (* failures among the filled slots *)
  mutable state : state;
  mutable opened_at : float;
  mutable probes_allowed : int; (* half-open admissions still available *)
  mutable probe_successes : int;
  mutable opens : int; (* lifetime Closed/Half_open -> Open transitions *)
}

let create cfg =
  {
    cfg;
    ring = Array.make cfg.window false;
    idx = 0;
    samples = 0;
    failures = 0;
    state = Closed;
    opened_at = neg_infinity;
    probes_allowed = 0;
    probe_successes = 0;
    opens = 0;
  }

let state t = t.state
let opens t = t.opens
let failure_rate t = if t.samples = 0 then 0.0 else float_of_int t.failures /. float_of_int t.samples

let reset_window t =
  Array.fill t.ring 0 (Array.length t.ring) false;
  t.idx <- 0;
  t.samples <- 0;
  t.failures <- 0

let trip t =
  t.state <- Open;
  t.opened_at <- !Clock.now ();
  t.opens <- t.opens + 1;
  reset_window t

let allow t =
  match t.state with
  | Closed -> true
  | Open ->
      if !Clock.now () -. t.opened_at >= t.cfg.cooldown_s then begin
        t.state <- Half_open;
        t.probes_allowed <- t.cfg.probes;
        t.probe_successes <- 0;
        t.probes_allowed <- t.probes_allowed - 1;
        true
      end
      else false
  | Half_open ->
      if t.probes_allowed > 0 then begin
        t.probes_allowed <- t.probes_allowed - 1;
        true
      end
      else false

let record t ~ok =
  match t.state with
  | Open -> () (* a straggler finishing after the trip carries no signal *)
  | Half_open ->
      if not ok then trip t
      else begin
        t.probe_successes <- t.probe_successes + 1;
        if t.probe_successes >= t.cfg.probes then begin
          t.state <- Closed;
          reset_window t
        end
      end
  | Closed ->
      let evicted = t.ring.(t.idx) in
      t.ring.(t.idx) <- not ok;
      t.idx <- (t.idx + 1) mod t.cfg.window;
      if t.samples < t.cfg.window then t.samples <- t.samples + 1
      else if evicted then t.failures <- t.failures - 1;
      if not ok then t.failures <- t.failures + 1;
      if t.samples >= t.cfg.min_samples && failure_rate t >= t.cfg.threshold then trip t
