(* Deadline budgets over the swappable guard clock.  A deadline is an
   absolute expiry captured at [start]; [None] means "no budget", which
   never expires — the guarded fast path then reduces to two compares. *)

type t = { started : float; expiry : float (* infinity = no budget *) }

let start ?budget_s () =
  let now = !Clock.now () in
  match budget_s with
  | None -> { started = now; expiry = infinity }
  | Some b ->
      if not (b >= 0.0) then invalid_arg "Deadline.start: negative budget";
      { started = now; expiry = now +. b }

let elapsed t = !Clock.now () -. t.started

let remaining t = t.expiry -. !Clock.now ()

let expired t = !Clock.now () >= t.expiry

let bounded t = t.expiry < infinity
