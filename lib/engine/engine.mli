(** The multicore batch query engine.

    Turns per-pair evaluation into a served workload: a query batch
    [(src, dst) array] is sharded statically across the lanes of a
    spawn-once domain pool, each shard optionally consulting its own LRU
    result cache, while the engine records throughput and per-query
    latency.

    The engine is polymorphic in the per-query result type ['r].  The
    original routing surface ({!run_batch}, {!run_guarded}, {!evaluate})
    serves [Compact_routing.Simulator.measured]; {!run_custom} serves
    any other query type — the oracle layer ([Cr_oracle.Oserve]) uses it
    to push distance/path queries through the identical caches, guards
    and sharding.

    {2 Determinism contract}

    - [result.(i)] corresponds to [pairs.(i)] and is a pure function of
      [(measure, pairs.(i))] — bit-identical across any pool width and
      with the cache on or off (cached entries are the values the
      computation would produce).  The [measure] closure must read only
      immutable preprocessed tables.
    - Sharding is static (shard [l] owns one contiguous slice), so each
      per-shard cache, breaker and cost estimate has a single executor
      per batch and hit/miss totals are reproducible for a fixed
      [(pairs, domains, capacity)].  A lane crashed by pool chaos hands
      its whole shard to a survivor, which keeps the single-executor
      property — and the result array — intact.
    - Only the measured {!metrics} (wall time, latency percentiles) are
      nondeterministic.
    - {!run_guarded} under [Cr_guard.Policy.off] and
      [Cr_guard.Chaos.none] performs exactly the unguarded operations in
      the same order: its outcomes are [Ok] of the {!run_batch} results.

    Measure closures must be safe to call from several domains: every
    scheme and oracle in this repo answers from immutable preprocessed
    tables (the AGM06 live counters are atomic). *)

type 'r t
(** An engine serving queries whose per-query result type is ['r] (the
    caches hold ['r] values). *)

type cache_mode =
  | Off  (** no memoization *)
  | Lane
      (** one LRU per shard — single executor per batch, no locking,
          but hot entries are duplicated and re-missed once per lane *)
  | Shared
      (** one lock-free {!Cr_util.Ttcache} shared by every lane: a hot
          key misses once per engine, not once per lane.  Results are
          bit-identical across all three modes (the table only returns
          exact key/generation matches of pure per-query values). *)

val cache_mode_to_string : cache_mode -> string

val cache_mode_of_string : string -> (cache_mode, string) result
(** Parses ["off" | "lane" | "shared"] (the [--cache-mode] flag). *)

type metrics = {
  queries : int;
  domains : int;  (** pool lanes used, including the caller *)
  wall_s : float;
  routes_per_sec : float;  (** queries/s, whatever the query type *)
  latency : Cr_util.Stats.summary;  (** per-query seconds: p50/p95/p99 etc. *)
  cache_hits : int;  (** this batch, summed over shards *)
  cache_misses : int;
}

type outcome = (Compact_routing.Simulator.measured, Cr_guard.Rejection.t) result
(** One routed query's guarded verdict: a measurement, or a structured
    refusal.  Guards never raise. *)

type guard_stats = {
  ok : int;
  timed_out : int;
  shed : int;
  breaker_open : int;
  worker_lost : int;
  retries : int;  (** extra attempts consumed by bounded retry *)
  requeues : int;  (** indexes re-run by survivors after lane crashes *)
  lost_lanes : int;
  stalls : int;  (** injected stalls taken (pool + query layers) *)
}
(** Per-batch guard tally.  [ok + timed_out + shed + breaker_open +
    worker_lost = queries], and each field reconciles exactly with the
    [guard.*] counters bumped on the engine's [Counters] sink. *)

val no_guard_stats : guard_stats

val create :
  ?cache:int ->
  ?cache_mode:cache_mode ->
  ?salt:int ->
  ?policy:Cr_guard.Policy.t ->
  ?counters:Cr_obs.Counters.t ->
  ?pool:Cr_util.Domain_pool.t ->
  unit ->
  'r t
(** [create ()] runs on the shared pool with the cache disabled and
    every guard off.  [cache] is the cache capacity in entries — per
    shard under [Lane], total under [Shared] ([0] disables; negative
    raises [Invalid_argument]).  [cache_mode] defaults to [Lane] when
    [cache > 0] and [Off] otherwise, preserving the historical
    behavior; [Shared] with [cache = 0] raises [Invalid_argument].
    [salt] (e.g. {!Cr_graph.Graph.hash} of the served graph) perturbs
    the shared table's fingerprints so equal keys of different builds
    spread differently.  [policy]
    configures the guard stack for {!run_guarded}/{!run_custom}; breaker
    state and per-shard cost estimates persist across batches of the
    same engine, like the caches.  With [counters], every batch bumps
    the [engine.*] aggregates — and every guarded batch the [guard.*]
    ones — once per batch from the coordinating thread, so the counts
    are as deterministic as the results they summarize. *)

val pool : 'r t -> Cr_util.Domain_pool.t

val cache_capacity : 'r t -> int

val cache_mode : 'r t -> cache_mode

val shared_stats : 'r t -> Cr_util.Ttcache.stats
(** Lifetime hit/miss/replace/age counters of the shared table;
    {!Cr_util.Ttcache.no_stats} in the other modes. *)

val policy : 'r t -> Cr_guard.Policy.t

val breaker_state : 'r t -> shard:int -> Cr_guard.Breaker.state option
(** Current breaker state of one shard; [None] when breakers are off. *)

val run_custom :
  ?guarded:bool ->
  ?chaos:Cr_guard.Chaos.t ->
  ?delivered:('r -> bool) ->
  ?canon:(int -> int -> int * int) ->
  ?orient:(src:int -> dst:int -> 'r -> 'r) ->
  'r t ->
  n:int ->
  placeholder:'r ->
  measure:(int -> int -> 'r) ->
  (int * int) array ->
  ('r, Cr_guard.Rejection.t) result array * metrics * guard_stats
(** The generic serving core: shard [pairs], answer each [(s, d)] with
    [orient ~src:s ~dst:d (measure (canon s d))] through the configured
    cache (keys [(cs * n) + cd] over the canonical pair, so [n] must
    exceed every node id), under the guard chain when [guarded]
    (default false — every outcome is then [Ok]).

    [canon]/[orient] (both default to the identity) let symmetric
    surfaces share one cache entry per unordered pair: the oracle layer
    passes [canon = (min, max)] and an [orient] that relabels the
    answer's endpoints.  They are applied on {e every} query — hit,
    miss, and cache off — so the result array is the same pure function
    of [pairs] in every cache mode.

    [placeholder] seeds the result array and is never returned;
    [delivered] classifies results for the [engine.delivered] counter
    (default: everything).  Same determinism contract as
    {!run_batch}. *)

val run_batch :
  Compact_routing.Simulator.measured t ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  (int * int) array ->
  Compact_routing.Simulator.measured array * metrics
(** Routes and measures every query, unguarded.
    @raise Compact_routing.Simulator.Invalid_walk if the scheme emits a
    malformed walk (re-raised in the caller whichever lane hit it). *)

val run_guarded :
  ?chaos:Cr_guard.Chaos.t ->
  Compact_routing.Simulator.measured t ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  (int * int) array ->
  outcome array * metrics * guard_stats
(** The guarded serving path.  Per query, in order: batch-deadline
    check, shed admission, per-shard circuit breaker, then execution
    under bounded retry with [chaos]-injected faults, and a final
    query/batch deadline check.  Always terminates with a total outcome
    array — a wedged shard is cut off by deadlines, overload is shed,
    lost workers surface as [Worker_lost] — and never raises for any
    guard reason (scheme exceptions still propagate, as in
    {!run_batch}). *)

val evaluate :
  Compact_routing.Simulator.measured t ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  (int * int) array ->
  Compact_routing.Simulator.aggregate * metrics
(** {!run_batch} folded through
    {!Compact_routing.Simulator.aggregate_of_measured} — the aggregate
    is identical to [Simulator.evaluate]'s. *)

val served : 'r t -> int
(** Lifetime query count across batches. *)

val busy_seconds : 'r t -> float
(** Lifetime wall seconds spent inside batches. *)

val cache_stats : 'r t -> int * int
(** Lifetime [(hits, misses)] summed over whichever cache structure is
    active (per-shard LRUs, or the shared table). *)
