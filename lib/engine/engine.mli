(** The multicore batch query engine.

    Turns routing evaluation into a served workload: a query batch
    [(src, dst) array] is sharded statically across the lanes of a
    spawn-once domain pool, each lane optionally consulting its own LRU
    route-plan cache, while the engine records throughput and per-query
    latency.

    {2 Determinism contract}

    - [result.(i)] corresponds to [pairs.(i)] and is a pure function of
      [(apsp, scheme, pairs.(i))] — bit-identical across any pool width
      and with the cache on or off (cached entries are the values the
      computation would produce).
    - Sharding is static (lane [l] owns one contiguous slice), so each
      per-lane cache has a single executor per batch and hit/miss
      totals are reproducible for a fixed [(pairs, domains, capacity)].
    - Only the measured {!metrics} (wall time, latency percentiles) are
      nondeterministic.

    Schemes must be safe to query from several domains: every scheme in
    this repo routes from immutable preprocessed tables (the AGM06 live
    counters are atomic). *)

type t

type metrics = {
  queries : int;
  domains : int;  (** pool lanes used, including the caller *)
  wall_s : float;
  routes_per_sec : float;
  latency : Cr_util.Stats.summary;  (** per-query seconds: p50/p95/p99 etc. *)
  cache_hits : int;  (** this batch, summed over lanes *)
  cache_misses : int;
}

val create :
  ?cache:int -> ?counters:Cr_obs.Counters.t -> ?pool:Cr_util.Domain_pool.t -> unit -> t
(** [create ()] runs on the shared pool with the cache disabled.
    [cache] is the per-lane LRU capacity in entries ([0] disables;
    negative raises [Invalid_argument]).  Caches persist across
    batches of the same engine.  With [counters], every batch bumps the
    [engine.*] aggregates (batches, queries, delivered, cache hits and
    misses) — once per batch from the coordinating thread, so the counts
    are as deterministic as the results they summarize. *)

val pool : t -> Cr_util.Domain_pool.t

val cache_capacity : t -> int

val run_batch :
  t ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  (int * int) array ->
  Compact_routing.Simulator.measured array * metrics
(** Routes and measures every query.
    @raise Compact_routing.Simulator.Invalid_walk if the scheme emits a
    malformed walk (re-raised in the caller whichever lane hit it). *)

val evaluate :
  t ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  (int * int) array ->
  Compact_routing.Simulator.aggregate * metrics
(** {!run_batch} folded through
    {!Compact_routing.Simulator.aggregate_of_measured} — the aggregate
    is identical to [Simulator.evaluate]'s. *)

val served : t -> int
(** Lifetime query count across batches. *)

val busy_seconds : t -> float
(** Lifetime wall seconds spent inside batches. *)

val cache_stats : t -> int * int
(** Lifetime [(hits, misses)] summed over the per-lane caches. *)
