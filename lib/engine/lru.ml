(* Bounded LRU map over int keys: a hash table for lookup plus an
   intrusive doubly-linked recency list (front = most recent).  One
   instance belongs to exactly one engine lane at a time, so there is no
   internal locking; cross-batch visibility is ordered by the pool's
   join. *)

type 'a node = {
  key : int;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  table : (int, 'a node) Hashtbl.t;
  mutable front : 'a node option;
  mutable back : 'a node option;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    front = None;
    back = None;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.front;
  n.prev <- None;
  (match t.front with Some f -> f.prev <- Some n | None -> t.back <- Some n);
  t.front <- Some n

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      None

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      n.value <- value;
      unlink t n;
      push_front t n
  | None ->
      if Hashtbl.length t.table >= t.capacity then
        (match t.back with
        | Some lru ->
            Hashtbl.remove t.table lru.key;
            unlink t lru
        | None -> ());
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n

let mem t key = Hashtbl.mem t.table key
