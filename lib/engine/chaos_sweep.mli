(** The chaos grid behind [crt chaos].

    Serves the same deterministic workload under every (chaos preset x
    guard preset) pair — lane crashes, stalls, transient query faults,
    latency spikes, overload budgets — and tallies the guard stack's
    verdicts per cell.  Every run terminates with structured outcomes
    regardless of the injected faults; that is the property the chaos
    suite pins.

    Mirrors [Cr_resilience.Sweep]: cells are pure data, one JSON line
    each via {!cell_to_json}; the ASCII rendering lives in [crt]. *)

type cell = {
  chaos : string;  (** chaos preset label (none/crash/stall/flaky/storm) *)
  guards : string;  (** guard preset label (off/serving/strict) *)
  queries : int;
  domains : int;
  wall_s : float;
  routes_per_sec : float;
  ok : int;
  timed_out : int;
  shed : int;
  breaker_open : int;
  worker_lost : int;
  retries : int;
  requeues : int;
  lost_lanes : int;
  stalls : int;
  delivered : int;  (** among ok outcomes *)
  stretch_p99 : float;  (** over served queries *)
  within_budget : bool;
      (** wall time within the batch budget (25% slack for work already
          in flight at expiry); [true] when the cell has no budget *)
}

val served_ratio : cell -> float option
(** [ok / queries]; [None] for a cell that ran zero queries (rendered
    as JSON null / an ASCII "-" — an empty cell is not perfect
    delivery).  [cell.queries = 0] marks the emptiness explicitly. *)

val run_cell :
  ?cache:int ->
  ?dist:Workload.dist ->
  domains:int ->
  seed:int ->
  queries:int ->
  workload:string ->
  guard_label:string ->
  Cr_guard.Policy.t ->
  Cr_guard.Chaos.t ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  cell
(** One grid cell: {!Serve.run} under the given policy and chaos. *)

val sweep :
  ?cache:int ->
  ?dist:Workload.dist ->
  ?chaos_seed:int ->
  ?batch_budget_s:float ->
  ?on_cell:(cell -> unit) ->
  domains:int ->
  seed:int ->
  queries:int ->
  workload:string ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  cell list
(** The full grid: {!Cr_guard.Chaos.presets} (outer) crossed with
    {!Cr_guard.Policy.presets} (inner).  [chaos_seed] (default 42)
    seeds the fault plans; [batch_budget_s] (default 0.25) is the
    strict preset's batch budget.  [on_cell] fires as each cell
    completes, so callers can stream results to disk and an
    interrupted grid still leaves every finished cell on a complete
    line.  The workload itself depends only on [(dist, seed,
    queries)], so the "none"/"off" cell reproduces the plain serve. *)

val cell_to_json : cell -> string
(** One JSON object per cell (single line, no trailing newline). *)
