(** Deterministic query workloads for the batch engine.

    Pairs are drawn in fixed logical blocks of 1024 queries; block [b]
    always uses its own splitmix64 stream derived from [(seed, b)], no
    matter which domain fills it, so the generated array depends only
    on [(dist, seed, n, count)] — never on the pool width.  This is
    what lets [crt serve --domains 1/2/4] replay the *same* workload
    while varying parallelism. *)

type dist =
  | Uniform  (** both endpoints uniform over the nodes *)
  | Zipf of float
      (** both endpoints Zipf with the given exponent; node index =
          popularity rank (node 0 hottest), which the generators'
          adversarial relabeling decouples from topology *)

val dist_to_string : dist -> string

val dist_of_string : string -> (dist, string) Stdlib.result
(** Accepts ["uniform"], ["zipf"] (exponent 1.1) and ["zipf:S"]. *)

val rank_of : dist -> n:int -> float -> int
(** The inverse CDF behind the sampler: maps a uniform draw
    [u ∈ \[0, 1\]] (clamped) to a node index.  For [Zipf], the first
    rank whose cumulative mass reaches [u] — [rank_of d ~n 0.0 = 0]
    (the hottest node) and [rank_of d ~n 1.0 = n - 1]; for [Uniform],
    [⌊u·n⌋] capped at [n - 1].  Exposed so tests can pin the boundary
    behavior without reaching through the RNG.
    @raise Invalid_argument if [n < 1]. *)

exception Sample_exhausted
(** A block stream failed to draw a valid pair in 10000 tries — the
    graph is too small or too disconnected for the requested filter. *)

val generate :
  ?pool:Cr_util.Domain_pool.t ->
  ?connected_in:Cr_graph.Apsp.t ->
  dist ->
  seed:int ->
  n:int ->
  count:int ->
  (int * int) array
(** [generate dist ~seed ~n ~count] draws [count] pairs with
    [src <> dst].  With [connected_in], pairs are additionally
    rejection-sampled to be at finite distance (what [crt serve] uses,
    so every scheme sees a deliverable workload).  With [pool], blocks
    are filled in parallel — the result is identical either way.
    @raise Sample_exhausted when rejection sampling cannot find a valid
    pair. *)
