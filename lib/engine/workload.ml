(* Query workload generation for the batch engine.

   The generator must be deterministic in the seed *and* independent of
   how many domains produce it, so queries are drawn in fixed logical
   blocks of [block_size]: block b always uses its own splitmix64
   stream derived from (seed, b), whichever domain executes it.  A pool
   only changes which domain fills which block, never the contents. *)

module Rng = Cr_util.Rng
module Apsp = Cr_graph.Apsp

type dist = Uniform | Zipf of float

let dist_to_string = function
  | Uniform -> "uniform"
  | Zipf s -> Printf.sprintf "zipf:%g" s

let dist_of_string s =
  match String.split_on_char ':' s with
  | [ "uniform" ] -> Ok Uniform
  | [ "zipf" ] -> Ok (Zipf 1.1)
  | [ "zipf"; e ] -> (
      match float_of_string_opt e with
      | Some e when e > 0.0 -> Ok (Zipf e)
      | _ -> Error (Printf.sprintf "invalid zipf exponent %S (expected a positive float)" e))
  | _ -> Error (Printf.sprintf "unknown distribution %S (expected uniform, zipf or zipf:S)" s)

let block_size = 1024

(* distinct splitmix64 stream per (seed, block): Rng.create mixes its
   argument, so consecutive block ids land on unrelated streams *)
let block_rng ~seed b = Rng.create ((seed * 1_000_003) + b)

type sampler = { n : int; cdf : float array option (* None = uniform *) }

let make_sampler dist ~n =
  match dist with
  | Uniform -> { n; cdf = None }
  | Zipf s ->
      (* node index = popularity rank: node 0 is the hottest *)
      let w = Array.init n (fun i -> float_of_int (i + 1) ** -.s) in
      let total = Array.fold_left ( +. ) 0.0 w in
      let acc = ref 0.0 in
      let cdf =
        Array.map
          (fun x ->
            acc := !acc +. (x /. total);
            !acc)
          w
      in
      cdf.(n - 1) <- 1.0;
      { n; cdf = Some cdf }

(* first index with cdf.(i) >= u; cdf.(n-1) is pinned to 1.0 so every
   u <= 1.0 lands in range *)
let search_cdf cdf u =
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let draw sampler rng =
  match sampler.cdf with
  | None -> Rng.int rng sampler.n
  | Some cdf -> search_cdf cdf (Rng.float rng 1.0)

let rank_of dist ~n u =
  if n < 1 then invalid_arg "Workload.rank_of: n < 1";
  let u = Float.max 0.0 (Float.min u 1.0) in
  match (make_sampler dist ~n).cdf with
  | None -> min (n - 1) (int_of_float (u *. float_of_int n))
  | Some cdf -> search_cdf cdf u

exception Sample_exhausted

let draw_pair ?connected_in sampler rng =
  let ok s d =
    s <> d
    &&
    match connected_in with
    | None -> true
    | Some apsp -> Apsp.distance apsp s d < infinity
  in
  let rec go tries =
    if tries > 10_000 then raise Sample_exhausted;
    let s = draw sampler rng and d = draw sampler rng in
    if ok s d then (s, d) else go (tries + 1)
  in
  go 0

let () =
  Printexc.register_printer (function
    | Sample_exhausted ->
        Some
          "Workload.Sample_exhausted: could not draw a valid (src, dst) pair in 10000 tries \
           (graph too small or too disconnected)"
    | _ -> None)

let generate ?pool ?connected_in dist ~seed ~n ~count =
  if n < 2 then invalid_arg "Workload.generate: n < 2";
  if count < 0 then invalid_arg "Workload.generate: negative count";
  let sampler = make_sampler dist ~n in
  let out = Array.make (max count 1) (0, 0) in
  let nblocks = (count + block_size - 1) / block_size in
  let fill b =
    let rng = block_rng ~seed b in
    let hi = min count ((b + 1) * block_size) in
    for q = b * block_size to hi - 1 do
      out.(q) <- draw_pair ?connected_in sampler rng
    done
  in
  (match pool with
  | None -> for b = 0 to nblocks - 1 do fill b done
  | Some pool -> Cr_util.Domain_pool.parallel_for ~chunk:1 pool ~n:nblocks fill);
  if count = 0 then [||] else Array.sub out 0 count
