(* The batch query engine: shards a (src, dst) query array across the
   lanes of a domain pool, optionally consulting a per-lane LRU
   route-plan cache, and records throughput plus per-query latency.

   Determinism contract (tested in test/test_engine.ml):
   - result.(i) is a pure function of (apsp, scheme, pairs.(i)):
     Simulator.measure reads only immutable preprocessed tables, so the
     result array is bit-identical across any pool width and with the
     cache on or off.
   - Sharding is static: lane l owns the contiguous slice
     [l*nq/lanes, (l+1)*nq/lanes), so each per-lane cache is touched by
     exactly one executor per batch (no locking needed) and hit/miss
     totals are reproducible for a fixed (pairs, lanes, capacity).
   - Metrics (wall time, latency percentiles) are measured, not
     simulated, and are the only nondeterministic outputs. *)

module Pool = Cr_util.Domain_pool
module Stats = Cr_util.Stats
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Sim = Compact_routing.Simulator
module Scheme = Compact_routing.Scheme

type t = {
  pool : Pool.t;
  cache_capacity : int;
  caches : Sim.measured Lru.t array; (* one per lane; [||] when disabled *)
  counters : Cr_obs.Counters.t option;
  mutable served : int;
  mutable busy_s : float;
}

type metrics = {
  queries : int;
  domains : int;
  wall_s : float;
  routes_per_sec : float;
  latency : Stats.summary;
  cache_hits : int;
  cache_misses : int;
}

let create ?(cache = 0) ?counters ?pool () =
  if cache < 0 then invalid_arg "Engine.create: negative cache capacity";
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  let caches =
    if cache = 0 then [||]
    else Array.init (Pool.domains pool) (fun _ -> Lru.create ~capacity:cache)
  in
  { pool; cache_capacity = cache; caches; counters; served = 0; busy_s = 0.0 }

let pool t = t.pool
let cache_capacity t = t.cache_capacity
let served t = t.served
let busy_seconds t = t.busy_s

let cache_stats t =
  Array.fold_left (fun (h, m) c -> (h + Lru.hits c, m + Lru.misses c)) (0, 0) t.caches

let slice ~lanes ~nq lane = (lane * nq / lanes, (lane + 1) * nq / lanes)

let run_batch t apsp scheme pairs =
  let nq = Array.length pairs in
  let lanes = Pool.domains t.pool in
  let n = Graph.n (Apsp.graph apsp) in
  (* placeholders: every slot is overwritten below *)
  let out =
    Array.make (max nq 1)
      { Sim.src = 0; dst = 0; delivered = false; cost = 0.0; hops = 0; stretch = infinity }
  in
  let lat = Array.make (max nq 1) 0.0 in
  let hits0, misses0 = cache_stats t in
  let t0 = Unix.gettimeofday () in
  if nq > 0 then
    Pool.parallel_for ~chunk:1 t.pool ~n:lanes (fun lane ->
        let lo, hi = slice ~lanes ~nq lane in
        let cache = if Array.length t.caches = 0 then None else Some t.caches.(lane) in
        for q = lo to hi - 1 do
          let s, d = pairs.(q) in
          let q0 = Unix.gettimeofday () in
          let m =
            match cache with
            | None -> Sim.measure apsp scheme s d
            | Some c -> (
                let key = (s * n) + d in
                match Lru.find c key with
                | Some m -> m
                | None ->
                    let m = Sim.measure apsp scheme s d in
                    Lru.add c key m;
                    m)
          in
          out.(q) <- m;
          lat.(q) <- Unix.gettimeofday () -. q0
        done);
  let wall = Unix.gettimeofday () -. t0 in
  let hits1, misses1 = cache_stats t in
  t.served <- t.served + nq;
  t.busy_s <- t.busy_s +. wall;
  (* Aggregate once per batch, from the coordinating thread: the counts
     are pure functions of the deterministic result array. *)
  (match t.counters with
  | None -> ()
  | Some c ->
      let delivered = ref 0 in
      for q = 0 to nq - 1 do
        if out.(q).Sim.delivered then incr delivered
      done;
      Cr_obs.Counters.incr c "engine.batches";
      Cr_obs.Counters.add c "engine.queries" nq;
      Cr_obs.Counters.add c "engine.delivered" !delivered;
      Cr_obs.Counters.add c "engine.cache_hits" (hits1 - hits0);
      Cr_obs.Counters.add c "engine.cache_misses" (misses1 - misses0));
  let metrics =
    {
      queries = nq;
      domains = lanes;
      wall_s = wall;
      routes_per_sec = (if wall > 0.0 then float_of_int nq /. wall else 0.0);
      latency = (if nq = 0 then Stats.empty_summary else Stats.summarize (Array.sub lat 0 nq));
      cache_hits = hits1 - hits0;
      cache_misses = misses1 - misses0;
    }
  in
  ((if nq = 0 then [||] else Array.sub out 0 nq), metrics)

let evaluate t apsp scheme pairs =
  let results, metrics = run_batch t apsp scheme pairs in
  (Sim.aggregate_of_measured results, metrics)
