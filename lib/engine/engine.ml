(* The batch query engine: shards a (src, dst) query array across the
   lanes of a domain pool, optionally consulting a per-lane LRU
   result cache, and records throughput plus per-query latency.

   The engine is polymorphic in the per-query result type 'r: the same
   sharded loop, caches and guard chain serve routed measurements
   (Sim.measured, the original surface) and oracle answers
   (Cr_oracle via run_custom) without duplicating the serving stack.

   Determinism contract (tested in test/test_engine.ml and
   test/test_guard.ml):
   - result.(i) is a pure function of (measure, pairs.(i)): the measure
     closures read only immutable preprocessed tables, so the result
     array is bit-identical across any pool width and with the cache on
     or off.
   - Sharding is static: shard l owns the contiguous slice
     [l*nq/lanes, (l+1)*nq/lanes), so each per-shard cache, breaker and
     cost estimate is touched by exactly one executor per batch (no
     locking needed) and hit/miss totals are reproducible for a fixed
     (pairs, lanes, capacity).  Under pool chaos a crashed lane's whole
     shard is requeued to a survivor, so the single-executor-per-batch
     property — and with it the result array — survives lane loss.
   - Metrics (wall time, latency percentiles) are measured, not
     simulated, and are the only nondeterministic outputs.

   Guarded serving (run_guarded / run_custom ~guarded:true): the same
   sharded loop threaded through the Cr_guard stack.  Per query, in
   order: batch deadline, shed admission, per-shard circuit breaker,
   then execution under bounded retry with chaos-injected faults, and a
   final per-query / batch deadline check.  Every refusal is a
   structured Cr_guard.Rejection — nothing raises — and with Policy.off
   and Chaos.none the guarded path performs exactly the unguarded
   operations in the same order, so its results are bit-identical. *)

module Pool = Cr_util.Domain_pool
module Stats = Cr_util.Stats
module Ttcache = Cr_util.Ttcache
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Sim = Compact_routing.Simulator
module Scheme = Compact_routing.Scheme
module Guard = Cr_guard

(* Where memoized results live: nowhere, in one LRU per shard (single
   executor per batch, no locking), or in one lock-free table shared by
   every lane (Ttcache) — a hot key then misses once per process, not
   once per lane, which is the whole point of sharing. *)
type cache_mode = Off | Lane | Shared

let cache_mode_to_string = function Off -> "off" | Lane -> "lane" | Shared -> "shared"

let cache_mode_of_string = function
  | "off" -> Ok Off
  | "lane" -> Ok Lane
  | "shared" -> Ok Shared
  | s -> Error (Printf.sprintf "unknown cache mode %S (try off, lane or shared)" s)

type 'r t = {
  pool : Pool.t;
  cache_capacity : int;
  mode : cache_mode;
  caches : 'r Lru.t array; (* one per shard; [||] unless mode = Lane *)
  shared : 'r Ttcache.t option; (* one per engine; [None] unless mode = Shared *)
  policy : Guard.Policy.t;
  breakers : Guard.Breaker.t array; (* one per shard; [||] when disabled *)
  est_cost : float array; (* per-shard EWMA query cost, 0.0 = unknown *)
  counters : Cr_obs.Counters.t option;
  mutable served : int;
  mutable busy_s : float;
}

type metrics = {
  queries : int;
  domains : int;
  wall_s : float;
  routes_per_sec : float;
  latency : Stats.summary;
  cache_hits : int;
  cache_misses : int;
}

type outcome = (Sim.measured, Guard.Rejection.t) result

type guard_stats = {
  ok : int;
  timed_out : int;
  shed : int;
  breaker_open : int;
  worker_lost : int;
  retries : int;
  requeues : int;
  lost_lanes : int;
  stalls : int;
}

let no_guard_stats =
  {
    ok = 0;
    timed_out = 0;
    shed = 0;
    breaker_open = 0;
    worker_lost = 0;
    retries = 0;
    requeues = 0;
    lost_lanes = 0;
    stalls = 0;
  }

let create ?(cache = 0) ?cache_mode ?salt ?(policy = Guard.Policy.off) ?counters ?pool () =
  if cache < 0 then invalid_arg "Engine.create: negative cache capacity";
  let mode =
    match cache_mode with
    | Some Shared when cache = 0 ->
        invalid_arg "Engine.create: shared cache mode needs a capacity > 0"
    | Some m -> if cache = 0 then Off else m
    | None -> if cache = 0 then Off else Lane
  in
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  let lanes = Pool.domains pool in
  let caches =
    if mode <> Lane then [||] else Array.init lanes (fun _ -> Lru.create ~capacity:cache)
  in
  let shared =
    if mode <> Shared then None else Some (Ttcache.create ?salt ~capacity:cache ())
  in
  let breakers =
    match policy.Guard.Policy.breaker with
    | None -> [||]
    | Some cfg -> Array.init lanes (fun _ -> Guard.Breaker.create cfg)
  in
  {
    pool;
    cache_capacity = (if mode = Off then 0 else cache);
    mode;
    caches;
    shared;
    policy;
    breakers;
    est_cost = Array.make lanes 0.0;
    counters;
    served = 0;
    busy_s = 0.0;
  }

let pool t = t.pool
let cache_capacity t = t.cache_capacity
let cache_mode t = t.mode

let shared_stats t =
  match t.shared with None -> Ttcache.no_stats | Some tt -> Ttcache.stats tt

let policy t = t.policy
let served t = t.served
let busy_seconds t = t.busy_s

let breaker_state t ~shard =
  if Array.length t.breakers = 0 then None else Some (Guard.Breaker.state t.breakers.(shard))

let cache_stats t =
  let h, m =
    Array.fold_left (fun (h, m) c -> (h + Lru.hits c, m + Lru.misses c)) (0, 0) t.caches
  in
  match t.shared with
  | None -> (h, m)
  | Some tt ->
      let s = Ttcache.stats tt in
      (h + s.Ttcache.hits, m + s.Ttcache.misses)

let slice ~lanes ~nq lane = (lane * nq / lanes, (lane + 1) * nq / lanes)

(* EWMA weight for the per-shard cost estimate *)
let est_alpha = 0.2

(* The single batch core, generic in the result type.  [n] is the node
   count (cache keys are (s * n) + d); [measure] computes one query from
   immutable tables; [delivered] classifies a result for the
   engine.delivered counter; [placeholder] seeds the result array
   (every slot is overwritten — the pool guarantees exactly-once
   execution even under lane crashes).  [guarded = false] is the plain
   engine: no deadline/shed/breaker/retry branches are even consulted,
   preserving the original hot loop exactly.  [guarded = true] wraps
   each query in the guard chain; with Policy.off and Chaos.none every
   branch is a no-op and the measure/cache operations are identical.

   [canon]/[orient] factor a query through a canonical representative:
   every query — hit, miss, or cache off — computes
   [orient ~src ~dst (measure (canon src dst))], so two queries with the
   same canonical pair share one cache entry (and one computation),
   while the result stays a pure function of the original (src, dst) in
   every cache mode.  The defaults are the identity, preserving the
   directional routing surface exactly. *)
let run_core (type r) (t : r t) ~guarded ~chaos ~n ~(placeholder : r) ~delivered ~canon
    ~orient ~measure pairs =
  let nq = Array.length pairs in
  let lanes = Pool.domains t.pool in
  let out = Array.make (max nq 1) (Ok placeholder) in
  let lat = Array.make (max nq 1) 0.0 in
  let retries_total = Atomic.make 0 in
  let qstalls_total = Atomic.make 0 in
  let hits0, misses0 = cache_stats t in
  let shared0 = shared_stats t in
  let policy = t.policy in
  let batch_dl = Guard.Deadline.start ?budget_s:policy.Guard.Policy.batch_budget_s () in
  let t0 = Unix.gettimeofday () in
  let pool_stats =
    if nq = 0 then Pool.no_stats
    else
      Pool.parallel_for_stats ~chunk:1 ?chaos:(Guard.Chaos.pool_chaos chaos) t.pool ~n:lanes
        (fun shard ->
          let lo, hi = slice ~lanes ~nq shard in
          let cache = if Array.length t.caches = 0 then None else Some t.caches.(shard) in
          let breaker =
            if Array.length t.breakers = 0 then None else Some t.breakers.(shard)
          in
          let lookup s d =
            match (cache, t.shared) with
            | None, None -> measure s d
            | Some c, _ -> (
                let key = (s * n) + d in
                match Lru.find c key with
                | Some m -> m
                | None ->
                    let m = measure s d in
                    Lru.add c key m;
                    m)
            | None, Some tt -> (
                let key = (s * n) + d in
                (* engines serve one immutable build, so the generation
                   is constant; epoch-style aging is the daemon's use *)
                match Ttcache.find tt ~gen:0 ~key with
                | Some m -> m
                | None ->
                    let m = measure s d in
                    Ttcache.add tt ~gen:0 ~key m;
                    m)
          in
          let measure s d =
            let cs, cd = canon s d in
            orient ~src:s ~dst:d (lookup cs cd)
          in
          for q = lo to hi - 1 do
            let s, d = pairs.(q) in
            let q0 = Unix.gettimeofday () in
            if not guarded then out.(q) <- Ok (measure s d)
            else begin
              let verdict =
                if Guard.Deadline.expired batch_dl then Error Guard.Rejection.Timed_out
                else if
                  match policy.Guard.Policy.shed with
                  | None -> false
                  | Some cfg ->
                      Guard.Shed.decide cfg ~queued:(hi - 1 - q)
                        ~remaining_s:(Guard.Deadline.remaining batch_dl)
                        ~est_cost_s:t.est_cost.(shard)
                then Error Guard.Rejection.Shed
                else if
                  match breaker with Some br -> not (Guard.Breaker.allow br) | None -> false
                then Error Guard.Rejection.Breaker_open
                else begin
                  (* admitted: execute under chaos + bounded retry *)
                  let stall = Guard.Chaos.query_stall_s chaos ~q in
                  if stall > 0.0 then begin
                    Atomic.incr qstalls_total;
                    !Guard.Clock.sleep stall
                  end;
                  let injected = Guard.Chaos.query_fails chaos ~q in
                  let qdl =
                    Guard.Deadline.start ?budget_s:policy.Guard.Policy.query_budget_s ()
                  in
                  let attempts = ref 0 in
                  let r =
                    Guard.Retry.run policy.Guard.Policy.retry ~key:q (fun ~attempt ->
                        incr attempts;
                        if attempt <= injected then Error Guard.Rejection.Worker_lost
                        else Ok (measure s d))
                  in
                  ignore (Atomic.fetch_and_add retries_total (!attempts - 1));
                  let r =
                    (* a computed answer that overran its budget is
                       still a timeout to the caller *)
                    match r with
                    | Ok _
                      when Guard.Deadline.expired qdl || Guard.Deadline.expired batch_dl ->
                        Error Guard.Rejection.Timed_out
                    | r -> r
                  in
                  (match breaker with
                  | Some br -> Guard.Breaker.record br ~ok:(Result.is_ok r)
                  | None -> ());
                  let cost = Unix.gettimeofday () -. q0 in
                  t.est_cost.(shard) <-
                    (if t.est_cost.(shard) = 0.0 then cost
                     else ((1.0 -. est_alpha) *. t.est_cost.(shard)) +. (est_alpha *. cost));
                  r
                end
              in
              out.(q) <- verdict
            end;
            lat.(q) <- Unix.gettimeofday () -. q0
          done)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let hits1, misses1 = cache_stats t in
  t.served <- t.served + nq;
  t.busy_s <- t.busy_s +. wall;
  (* tally outcomes once per batch, from the coordinating thread: the
     counts are pure functions of the outcome array *)
  let ok = ref 0 and timed_out = ref 0 and shed = ref 0 in
  let breaker_open = ref 0 and worker_lost = ref 0 and delivered_n = ref 0 in
  for q = 0 to nq - 1 do
    match out.(q) with
    | Ok m ->
        incr ok;
        if delivered m then incr delivered_n
    | Error Guard.Rejection.Timed_out -> incr timed_out
    | Error Guard.Rejection.Shed -> incr shed
    | Error Guard.Rejection.Breaker_open -> incr breaker_open
    | Error Guard.Rejection.Worker_lost -> incr worker_lost
  done;
  let gstats =
    {
      ok = !ok;
      timed_out = !timed_out;
      shed = !shed;
      breaker_open = !breaker_open;
      worker_lost = !worker_lost;
      retries = Atomic.get retries_total;
      requeues = pool_stats.Pool.requeued;
      lost_lanes = pool_stats.Pool.lost_lanes;
      stalls = pool_stats.Pool.stalls + Atomic.get qstalls_total;
    }
  in
  (match t.counters with
  | None -> ()
  | Some c ->
      Cr_obs.Counters.incr c "engine.batches";
      Cr_obs.Counters.add c "engine.queries" nq;
      Cr_obs.Counters.add c "engine.delivered" !delivered_n;
      Cr_obs.Counters.add c "engine.cache_hits" (hits1 - hits0);
      Cr_obs.Counters.add c "engine.cache_misses" (misses1 - misses0);
      (match t.shared with
      | None -> ()
      | Some tt ->
          let s1 = Ttcache.stats tt in
          Cr_obs.Counters.add c "engine.shared_hits" (s1.Ttcache.hits - shared0.Ttcache.hits);
          Cr_obs.Counters.add c "engine.shared_misses"
            (s1.Ttcache.misses - shared0.Ttcache.misses);
          Cr_obs.Counters.add c "engine.shared_replaced"
            (s1.Ttcache.replaced - shared0.Ttcache.replaced);
          Cr_obs.Counters.add c "engine.shared_aged" (s1.Ttcache.aged - shared0.Ttcache.aged));
      if guarded then begin
        Cr_obs.Counters.add c "guard.timeouts" gstats.timed_out;
        Cr_obs.Counters.add c "guard.sheds" gstats.shed;
        Cr_obs.Counters.add c "guard.breaker_opens" gstats.breaker_open;
        Cr_obs.Counters.add c "guard.worker_lost" gstats.worker_lost;
        Cr_obs.Counters.add c "guard.retries" gstats.retries;
        Cr_obs.Counters.add c "guard.requeues" gstats.requeues;
        Cr_obs.Counters.add c "guard.lost_lanes" gstats.lost_lanes;
        Cr_obs.Counters.add c "guard.stalls" gstats.stalls
      end);
  let metrics =
    {
      queries = nq;
      domains = lanes;
      wall_s = wall;
      routes_per_sec = (if wall > 0.0 then float_of_int nq /. wall else 0.0);
      latency = (if nq = 0 then Stats.empty_summary else Stats.summarize (Array.sub lat 0 nq));
      cache_hits = hits1 - hits0;
      cache_misses = misses1 - misses0;
    }
  in
  ((if nq = 0 then [||] else Array.sub out 0 nq), metrics, gstats)

let id_canon s d = (s, d)
let id_orient ~src:_ ~dst:_ r = r

let run_custom ?(guarded = false) ?(chaos = Guard.Chaos.none) ?(delivered = fun _ -> true)
    ?(canon = id_canon) ?(orient = id_orient) t ~n ~placeholder ~measure pairs =
  run_core t ~guarded ~chaos ~n ~placeholder ~delivered ~canon ~orient ~measure pairs

let route_placeholder =
  { Sim.src = 0; dst = 0; delivered = false; cost = 0.0; hops = 0; stretch = infinity }

let run_route_core t ~guarded ~chaos apsp scheme pairs =
  let n = Graph.n (Apsp.graph apsp) in
  run_core t ~guarded ~chaos ~n ~placeholder:route_placeholder
    ~delivered:(fun m -> m.Sim.delivered)
    ~canon:id_canon ~orient:id_orient
    ~measure:(fun s d -> Sim.measure apsp scheme s d)
    pairs

let run_batch t apsp scheme pairs =
  let out, metrics, _ =
    run_route_core t ~guarded:false ~chaos:Guard.Chaos.none apsp scheme pairs
  in
  ( Array.map (function Ok m -> m | Error _ -> assert false (* unguarded is total *)) out,
    metrics )

let run_guarded ?(chaos = Guard.Chaos.none) t apsp scheme pairs =
  run_route_core t ~guarded:true ~chaos apsp scheme pairs

let evaluate t apsp scheme pairs =
  let results, metrics = run_batch t apsp scheme pairs in
  (Sim.aggregate_of_measured results, metrics)
