(* The chaos grid: serve the same deterministic workload under every
   (chaos preset x guard preset) pair and tally what the guard stack
   did about each injected failure mode.  Mirrors Cr_resilience.Sweep:
   cells are pure data, rendered as JSONL by cell_to_json and as an
   ASCII table by the CLI. *)

module Jsonl = Cr_util.Jsonl
module Guard = Cr_guard

type cell = {
  chaos : string;
  guards : string;
  queries : int;
  domains : int;
  wall_s : float;
  routes_per_sec : float;
  ok : int;
  timed_out : int;
  shed : int;
  breaker_open : int;
  worker_lost : int;
  retries : int;
  requeues : int;
  lost_lanes : int;
  stalls : int;
  delivered : int;
  stretch_p99 : float;
  within_budget : bool; (* wall_s <= batch budget (with 25% slack), or no budget *)
}

(* A cell that ran zero queries has no delivery rate — reporting 1.0
   would render an empty cell as perfect delivery.  [None] becomes a
   JSON null / an ASCII "-"; the cell's [queries = 0] field is the
   explicit emptiness marker. *)
let served_ratio c =
  if c.queries = 0 then None else Some (Cr_util.Stats.ratio c.ok c.queries)

let cell_of_report ~within_budget (r : Serve.report) =
  {
    chaos = r.Serve.chaos_label;
    guards = r.Serve.guard_label;
    queries = r.Serve.queries;
    domains = r.Serve.domains;
    wall_s = r.Serve.wall_s;
    routes_per_sec = r.Serve.routes_per_sec;
    ok = r.Serve.guards.Engine.ok;
    timed_out = r.Serve.guards.Engine.timed_out;
    shed = r.Serve.guards.Engine.shed;
    breaker_open = r.Serve.guards.Engine.breaker_open;
    worker_lost = r.Serve.guards.Engine.worker_lost;
    retries = r.Serve.guards.Engine.retries;
    requeues = r.Serve.guards.Engine.requeues;
    lost_lanes = r.Serve.guards.Engine.lost_lanes;
    stalls = r.Serve.guards.Engine.stalls;
    delivered = r.Serve.delivered;
    stretch_p99 = r.Serve.stretch_p99;
    within_budget;
  }

let run_cell ?(cache = 0) ?(dist = Workload.Zipf 1.1) ~domains ~seed ~queries ~workload
    ~guard_label policy chaos apsp scheme =
  let r =
    Serve.run ~cache ~dist ~policy ~chaos ~guard_label ~domains ~seed ~queries ~workload apsp
      scheme
  in
  let within_budget =
    match policy.Guard.Policy.batch_budget_s with
    | None -> true
    | Some b ->
        (* generous slack: the budget cuts off work, it cannot cancel a
           query already in flight or an injected stall mid-sleep *)
        r.Serve.wall_s <= b *. 1.25
  in
  cell_of_report ~within_budget r

let sweep ?cache ?dist ?(chaos_seed = 42) ?(batch_budget_s = 0.25) ?(on_cell = fun _ -> ())
    ~domains ~seed ~queries ~workload apsp scheme =
  let chaoses = Guard.Chaos.presets ~seed:chaos_seed in
  let policies = Guard.Policy.presets ~batch_budget_s in
  List.concat_map
    (fun (_, chaos) ->
      List.map
        (fun (glabel, policy) ->
          let cell =
            run_cell ?cache ?dist ~domains ~seed ~queries ~workload ~guard_label:glabel policy
              chaos apsp scheme
          in
          on_cell cell;
          cell)
        policies)
    chaoses

let cell_to_json c =
  Jsonl.obj
    [
      ("chaos", Jsonl.str c.chaos);
      ("guards", Jsonl.str c.guards);
      ("queries", Jsonl.int c.queries);
      ("domains", Jsonl.int c.domains);
      ("wall_s", Jsonl.float c.wall_s);
      ("routes_per_sec", Jsonl.float c.routes_per_sec);
      ("ok", Jsonl.int c.ok);
      ("timed_out", Jsonl.int c.timed_out);
      ("shed", Jsonl.int c.shed);
      ("breaker_open", Jsonl.int c.breaker_open);
      ("worker_lost", Jsonl.int c.worker_lost);
      ("retries", Jsonl.int c.retries);
      ("requeues", Jsonl.int c.requeues);
      ("lost_lanes", Jsonl.int c.lost_lanes);
      ("stalls", Jsonl.int c.stalls);
      ("delivered", Jsonl.int c.delivered);
      ("served_ratio", match served_ratio c with Some r -> Jsonl.float r | None -> "null");
      ("stretch_p99", Jsonl.float c.stretch_p99);
      ("within_budget", Jsonl.bool c.within_budget);
    ]
