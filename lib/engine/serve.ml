(* Closed-loop load generation: generate a deterministic workload, push
   it through the engine at full speed, and report throughput, latency
   percentiles, cache behavior and routing quality in one record.
   Shared by the [crt serve] subcommand, the [crt chaos] sweeps and the
   P1 bench target.

   Runs are guarded end-to-end: the engine's guarded path threads the
   Cr_guard stack (deadlines, retry, breaker, shed) through every
   shard, and the report carries both the structured outcome tally and
   the guard.* counters — which reconcile exactly, being two views of
   the same outcome array.  The default Policy.off + Chaos.none run
   serves every query and reports the same routing quality as the
   unguarded engine (bit-identical results; see Engine's determinism
   contract). *)

module Pool = Cr_util.Domain_pool
module Stats = Cr_util.Stats
module Jsonl = Cr_util.Jsonl
module Guard = Cr_guard
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Sim = Compact_routing.Simulator
module Scheme = Compact_routing.Scheme

type report = {
  scheme : string;
  workload : string;
  dist : string;
  queries : int;
  domains : int;
  cache_capacity : int;
  cache_mode : string; (* off | lane | shared *)
  guard_label : string; (* "off" when no guard is active *)
  chaos_label : string; (* Chaos plan label, "none" by default *)
  wall_s : float;
  routes_per_sec : float;
  latency : Stats.summary; (* seconds per query *)
  cache_hits : int;
  cache_misses : int;
  guards : Engine.guard_stats; (* ok + rejections partition queries *)
  delivered : int; (* delivered among the ok outcomes *)
  stretch_mean : float;
  stretch_p99 : float;
  shared : Cr_util.Ttcache.stats; (* all-zero unless cache_mode = shared *)
  counters : (string * int) list; (* engine.* / guard.* aggregates, sorted *)
}

let hit_rate r = Stats.ratio r.cache_hits (r.cache_hits + r.cache_misses)

let rejected r =
  r.guards.Engine.timed_out + r.guards.Engine.shed + r.guards.Engine.breaker_open
  + r.guards.Engine.worker_lost

let run ?(cache = 0) ?cache_mode ?(dist = Workload.Zipf 1.1) ?(policy = Guard.Policy.off)
    ?(chaos = Guard.Chaos.none) ?(guard_label = "") ~domains ~seed ~queries ~workload apsp
    scheme =
  let pool = Pool.create ~domains in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let n = Graph.n (Apsp.graph apsp) in
      let pairs = Workload.generate ~pool ~connected_in:apsp dist ~seed ~n ~count:queries in
      let counters = Cr_obs.Counters.create () in
      let engine =
        Engine.create ~cache ?cache_mode ~salt:(Graph.hash (Apsp.graph apsp)) ~policy
          ~counters ~pool ()
      in
      let outcomes, m, gstats = Engine.run_guarded ~chaos engine apsp scheme pairs in
      let served =
        (* routing quality is judged on the served queries only; the
           rejected ones are accounted for in [guards] *)
        Array.of_list
          (List.filter_map
             (function Ok meas -> Some meas | Error _ -> None)
             (Array.to_list outcomes))
      in
      let agg = Sim.aggregate_of_measured served in
      {
        scheme = scheme.Scheme.name;
        workload;
        dist = Workload.dist_to_string dist;
        queries = m.Engine.queries;
        domains = Pool.domains pool;
        cache_capacity = Engine.cache_capacity engine;
        cache_mode = Engine.cache_mode_to_string (Engine.cache_mode engine);
        guard_label =
          (if guard_label <> "" then guard_label
           else if Guard.Policy.is_off policy then "off"
           else "custom");
        chaos_label = Guard.Chaos.label chaos;
        wall_s = m.Engine.wall_s;
        routes_per_sec = m.Engine.routes_per_sec;
        latency = m.Engine.latency;
        cache_hits = m.Engine.cache_hits;
        cache_misses = m.Engine.cache_misses;
        guards = gstats;
        delivered = agg.Sim.delivered;
        stretch_mean = agg.Sim.stretch_stats.Stats.mean;
        stretch_p99 = agg.Sim.stretch_stats.Stats.p99;
        shared = Engine.shared_stats engine;
        counters = Cr_obs.Counters.snapshot counters;
      })

let report_to_json r =
  Jsonl.obj
    [
      ("scheme", Jsonl.str r.scheme);
      ("workload", Jsonl.str r.workload);
      ("dist", Jsonl.str r.dist);
      ("queries", Jsonl.int r.queries);
      ("domains", Jsonl.int r.domains);
      ("cache", Jsonl.int r.cache_capacity);
      ("cache_mode", Jsonl.str r.cache_mode);
      ("guards", Jsonl.str r.guard_label);
      ("chaos", Jsonl.str r.chaos_label);
      ("wall_s", Jsonl.float r.wall_s);
      ("routes_per_sec", Jsonl.float r.routes_per_sec);
      ("latency_p50_us", Jsonl.float (1e6 *. r.latency.Stats.p50));
      ("latency_p95_us", Jsonl.float (1e6 *. r.latency.Stats.p95));
      ("latency_p99_us", Jsonl.float (1e6 *. r.latency.Stats.p99));
      ("cache_hits", Jsonl.int r.cache_hits);
      ("cache_misses", Jsonl.int r.cache_misses);
      ("hit_rate", Jsonl.float (hit_rate r));
      ("shared_hits", Jsonl.int r.shared.Cr_util.Ttcache.hits);
      ("shared_misses", Jsonl.int r.shared.Cr_util.Ttcache.misses);
      ("shared_replaced", Jsonl.int r.shared.Cr_util.Ttcache.replaced);
      ("shared_aged", Jsonl.int r.shared.Cr_util.Ttcache.aged);
      ("ok", Jsonl.int r.guards.Engine.ok);
      ("timed_out", Jsonl.int r.guards.Engine.timed_out);
      ("shed", Jsonl.int r.guards.Engine.shed);
      ("breaker_open", Jsonl.int r.guards.Engine.breaker_open);
      ("worker_lost", Jsonl.int r.guards.Engine.worker_lost);
      ("retries", Jsonl.int r.guards.Engine.retries);
      ("requeues", Jsonl.int r.guards.Engine.requeues);
      ("lost_lanes", Jsonl.int r.guards.Engine.lost_lanes);
      ("stalls", Jsonl.int r.guards.Engine.stalls);
      ("delivered", Jsonl.int r.delivered);
      ("stretch_mean", Jsonl.float r.stretch_mean);
      ("stretch_p99", Jsonl.float r.stretch_p99);
      ( "counters",
        Jsonl.obj (List.map (fun (name, v) -> (name, Jsonl.int v)) r.counters) );
    ]
