(* Closed-loop load generation: generate a deterministic workload, push
   it through the engine at full speed, and report throughput, latency
   percentiles, cache behavior and routing quality in one record.
   Shared by the [crt serve] subcommand and the P1 bench target. *)

module Pool = Cr_util.Domain_pool
module Stats = Cr_util.Stats
module Jsonl = Cr_util.Jsonl
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Sim = Compact_routing.Simulator
module Scheme = Compact_routing.Scheme

type report = {
  scheme : string;
  workload : string;
  dist : string;
  queries : int;
  domains : int;
  cache_capacity : int;
  wall_s : float;
  routes_per_sec : float;
  latency : Stats.summary; (* seconds per query *)
  cache_hits : int;
  cache_misses : int;
  delivered : int;
  stretch_mean : float;
  stretch_p99 : float;
  counters : (string * int) list; (* engine.* aggregates, sorted by name *)
}

let hit_rate r =
  let total = r.cache_hits + r.cache_misses in
  if total = 0 then 0.0 else float_of_int r.cache_hits /. float_of_int total

let run ?(cache = 0) ?(dist = Workload.Zipf 1.1) ~domains ~seed ~queries ~workload apsp scheme =
  let pool = Pool.create ~domains in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let n = Graph.n (Apsp.graph apsp) in
      let pairs = Workload.generate ~pool ~connected_in:apsp dist ~seed ~n ~count:queries in
      let counters = Cr_obs.Counters.create () in
      let engine = Engine.create ~cache ~counters ~pool () in
      let agg, m = Engine.evaluate engine apsp scheme pairs in
      {
        scheme = scheme.Scheme.name;
        workload;
        dist = Workload.dist_to_string dist;
        queries = m.Engine.queries;
        domains = Pool.domains pool;
        cache_capacity = cache;
        wall_s = m.Engine.wall_s;
        routes_per_sec = m.Engine.routes_per_sec;
        latency = m.Engine.latency;
        cache_hits = m.Engine.cache_hits;
        cache_misses = m.Engine.cache_misses;
        delivered = agg.Sim.delivered;
        stretch_mean = agg.Sim.stretch_stats.Stats.mean;
        stretch_p99 = agg.Sim.stretch_stats.Stats.p99;
        counters = Cr_obs.Counters.snapshot counters;
      })

let report_to_json r =
  Jsonl.obj
    [
      ("scheme", Jsonl.str r.scheme);
      ("workload", Jsonl.str r.workload);
      ("dist", Jsonl.str r.dist);
      ("queries", Jsonl.int r.queries);
      ("domains", Jsonl.int r.domains);
      ("cache", Jsonl.int r.cache_capacity);
      ("wall_s", Jsonl.float r.wall_s);
      ("routes_per_sec", Jsonl.float r.routes_per_sec);
      ("latency_p50_us", Jsonl.float (1e6 *. r.latency.Stats.p50));
      ("latency_p95_us", Jsonl.float (1e6 *. r.latency.Stats.p95));
      ("latency_p99_us", Jsonl.float (1e6 *. r.latency.Stats.p99));
      ("cache_hits", Jsonl.int r.cache_hits);
      ("cache_misses", Jsonl.int r.cache_misses);
      ("hit_rate", Jsonl.float (hit_rate r));
      ("delivered", Jsonl.int r.delivered);
      ("stretch_mean", Jsonl.float r.stretch_mean);
      ("stretch_p99", Jsonl.float r.stretch_p99);
      ( "counters",
        Jsonl.obj (List.map (fun (name, v) -> (name, Jsonl.int v)) r.counters) );
    ]
