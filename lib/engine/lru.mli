(** Bounded least-recently-used map over [int] keys, with hit/miss
    counters.

    Backs the engine's per-lane route-plan caches: keys are packed
    [(src, dst)] pairs, values are measured routes.  Not thread-safe by
    itself — each instance is owned by one engine lane per batch, and
    the pool's join orders cross-batch access. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val find : 'a t -> int -> 'a option
(** Lookup; a hit promotes the entry to most-recently-used and
    increments {!hits}, a miss increments {!misses}. *)

val add : 'a t -> int -> 'a -> unit
(** Insert or update (promoting to most-recently-used), evicting the
    least-recently-used entry when full. *)

val mem : 'a t -> int -> bool
(** Membership without touching recency or counters. *)

val length : 'a t -> int

val capacity : 'a t -> int

val hits : 'a t -> int

val misses : 'a t -> int
