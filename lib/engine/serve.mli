(** Closed-loop load generation over the batch engine.

    One [run] = one served workload: a deterministic query stream
    (see {!Workload}) pushed through {!Engine} on a dedicated pool of
    the requested width, reported as throughput, latency percentiles,
    cache behavior, guard outcomes and routing quality.  Shared by
    [crt serve], [crt chaos] and the [P1] bench target, so the CLI and
    the bench agree on semantics.

    Serving is guarded end-to-end: [run] takes a {!Cr_guard.Policy.t}
    and a {!Cr_guard.Chaos.t} and always terminates with a total
    outcome tally — injected crashes, stalls and overload surface as
    structured rejections in {!report.guards}, never as hangs or
    uncaught exceptions.  The defaults ([Policy.off], [Chaos.none])
    reproduce the plain unguarded serve bit-identically. *)

type report = {
  scheme : string;
  workload : string;  (** caller-supplied label, e.g. ["erdos-renyi(n=1024)"] *)
  dist : string;
  queries : int;
  domains : int;
  cache_capacity : int;  (** cache entries (per lane, or shared total); 0 = disabled *)
  cache_mode : string;  (** ["off" | "lane" | "shared"] *)
  guard_label : string;  (** guard preset name; ["off"] when inactive *)
  chaos_label : string;  (** chaos plan label; ["none"] by default *)
  wall_s : float;
  routes_per_sec : float;
  latency : Cr_util.Stats.summary;  (** seconds per query *)
  cache_hits : int;
  cache_misses : int;
  guards : Engine.guard_stats;
      (** ok + the four rejection kinds partition [queries]; reconciles
          exactly with the [guard.*] entries of [counters] *)
  delivered : int;  (** delivered among the [ok] outcomes *)
  stretch_mean : float;  (** over served (ok) queries only *)
  stretch_p99 : float;
  shared : Cr_util.Ttcache.stats;
      (** shared-table hit/miss/replace/age counters; all-zero unless
          [cache_mode = "shared"] *)
  counters : (string * int) list;
      (** the engine's [engine.*] (and, when guarded, [guard.*])
          aggregates for this run, sorted by name *)
}

val hit_rate : report -> float
(** [hits / (hits + misses)]; 0 when the cache is off. *)

val rejected : report -> int
(** Total queries refused by any guard; [report.guards.ok + rejected r
    = r.queries]. *)

val run :
  ?cache:int ->
  ?cache_mode:Engine.cache_mode ->
  ?dist:Workload.dist ->
  ?policy:Cr_guard.Policy.t ->
  ?chaos:Cr_guard.Chaos.t ->
  ?guard_label:string ->
  domains:int ->
  seed:int ->
  queries:int ->
  workload:string ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  report
(** Generates [queries] connected pairs ([dist] defaults to
    [Zipf 1.1]), serves them through the guarded engine on a fresh
    pool of [domains] lanes (shut down before returning, even on
    raise), and reports.  The query stream and the routing results
    depend only on [(dist, seed, queries)] — never on [domains],
    [cache] or [cache_mode]; only the measured throughput/latency do.  [guard_label]
    overrides the preset name recorded in the report (by default
    ["off"] or ["custom"] is derived from [policy]). *)

val report_to_json : report -> string
(** One machine-readable JSON object (single line, no trailing
    newline); latencies in microseconds.  Carries the full guard
    outcome tally plus the nested counter snapshot. *)
