(** Closed-loop load generation over the batch engine.

    One [run] = one served workload: a deterministic query stream
    (see {!Workload}) pushed through {!Engine} on a dedicated pool of
    the requested width, reported as throughput, latency percentiles,
    cache behavior and routing quality.  Shared by [crt serve] and the
    [P1] bench target, so the CLI and the bench agree on semantics. *)

type report = {
  scheme : string;
  workload : string;  (** caller-supplied label, e.g. ["erdos-renyi(n=1024)"] *)
  dist : string;
  queries : int;
  domains : int;
  cache_capacity : int;  (** per-lane LRU entries; 0 = disabled *)
  wall_s : float;
  routes_per_sec : float;
  latency : Cr_util.Stats.summary;  (** seconds per query *)
  cache_hits : int;
  cache_misses : int;
  delivered : int;
  stretch_mean : float;
  stretch_p99 : float;
  counters : (string * int) list;
      (** the engine's [engine.*] aggregates for this run, sorted by name *)
}

val hit_rate : report -> float
(** [hits / (hits + misses)]; 0 when the cache is off. *)

val run :
  ?cache:int ->
  ?dist:Workload.dist ->
  domains:int ->
  seed:int ->
  queries:int ->
  workload:string ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  report
(** Generates [queries] connected pairs ([dist] defaults to
    [Zipf 1.1]), serves them on a fresh pool of [domains] lanes (shut
    down before returning), and reports.  The query stream and the
    routing results depend only on [(dist, seed, queries)] — never on
    [domains] or [cache]; only the measured throughput/latency do. *)

val report_to_json : report -> string
(** One machine-readable JSON object (single line, no trailing
    newline); latencies in microseconds. *)
