(** Atomic snapshot checkpoint store.

    A directory of [snapshot-<epoch>.crs] files in the
    {!Cr_graph.Gio.snapshot} codec.  {!write} is atomic (full temp
    file, fsync, rename), so a crash mid-checkpoint leaves the new
    snapshot either complete or absent — never half-written.
    {!load_latest} walks candidates newest-first and skips corrupt
    ones, degrading to the previous checkpoint instead of failing. *)

val path : string -> int -> string
(** [path dir epoch] — where the snapshot for [epoch] lives. *)

val list : string -> (int * string) list
(** Snapshot [(epoch, path)] pairs present in [dir], newest first.
    An unreadable or absent directory lists as empty. *)

val default_retain : int

val write : ?retain:int -> dir:string -> Cr_graph.Gio.snapshot -> string
(** Atomically persist a checkpoint into [dir] (created if needed) and
    prune all but the newest [retain] (default {!default_retain})
    snapshots.  After the rename the containing directory's fd is
    fsynced (via {!fsync_dir_hook}), so the checkpoint's directory
    entry itself survives a machine crash — rename alone only makes
    the write atomic, not durable.  Fires
    {!Crashpoint.site.Mid_snapshot} between the temp write and the
    rename and {!Crashpoint.site.Post_rename} between the rename and
    the directory fsync.  Returns the final path. *)

val fsync_dir_hook : (string -> unit) ref
(** How {!write} fsyncs the snapshot directory after the rename (opens
    the directory read-only and fsyncs the fd; open/fsync errors are
    tolerated).  Test seam: swap in a recording or failing function,
    restore it afterwards. *)

val load_latest : string -> (string * Cr_graph.Gio.snapshot) option * (string * string) list
(** Newest snapshot that parses and checksums clean, as
    [(path, snapshot)], plus the [(path, reason)] list of newer
    candidates that were skipped as corrupt. *)
