(** Deterministic crash injection for the daemon's persist path.

    The journal and snapshot writers call {!hit} at named points; an
    armed crashpoint fires its action on the Nth hit of its site.  This
    is how the recovery invariant is {e proved} rather than assumed:
    tests arm {!arm_raise} and recover from the resulting on-disk
    state; [crt daemon --crashpoint] arms {!arm_kill} so CI can kill a
    real process at an exact persist-path position.

    Process-global, one crashpoint armed at a time (the persist path is
    single-threaded).  Nothing fires unless something armed it. *)

type site =
  | Pre_flush
      (** journal record buffered in the channel, flush not yet issued:
          the mutation was never acknowledged and its bytes may vanish *)
  | Post_flush_pre_ack
      (** record durable per the fsync policy, [ok] not yet written:
          recovery may legitimately replay one more mutation than the
          client saw acknowledged *)
  | Mid_snapshot
      (** snapshot temp file fully written, atomic rename still
          pending: the new checkpoint must simply not exist afterwards *)
  | Post_rename
      (** snapshot renamed into place but the directory entry not yet
          fsynced: the checkpoint must still be complete and loadable
          (the rename happened; only its {e machine-crash} durability
          was pending) *)

val all : site list

val to_string : site -> string
(** [pre-flush], [post-flush-pre-ack], [mid-snapshot], [post-rename] —
    the [--crashpoint] flag spellings. *)

val of_string : string -> site option

exception Crashed of site
(** Raised by {!arm_raise}-armed crashpoints. *)

val arm : ?after:int -> action:(site -> unit) -> site -> unit
(** Arm [site] to fire [action] on its [after]-th hit (default 1),
    replacing any previously armed crashpoint.  The crashpoint disarms
    itself before firing.
    @raise Invalid_argument if [after < 1]. *)

val arm_raise : ?after:int -> site -> unit
(** Arm with an action that raises {!Crashed} — the test-suite seam. *)

val arm_kill : ?after:int -> site -> unit
(** Arm with an action that delivers SIGKILL to the current process —
    the [crt daemon --crashpoint] seam: a real unflushed death. *)

val disarm : unit -> unit

val hit : site -> unit
(** Called by the persist path.  No-op unless this site is armed. *)
