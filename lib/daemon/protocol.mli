(** The daemon's line-oriented text protocol.

    One command per input line, one or more response lines per command;
    every response line starts with [ok] or [err], so scripted sessions
    (CI's smoke test, the quickstart in README.md) can assert outcomes
    with grep.  Blank lines and ['#'] comments are ignored.  Mutation
    keywords share their grammar with the journal format
    ({!Cr_graph.Gio.mutation_of_tokens}), so a recorded session replays
    byte-for-byte. *)

type command =
  | Route of int * int  (** [route u v] *)
  | Dist of int * int  (** [dist u v] *)
  | Path of int * int
      (** [path u v] — the path-reporting oracle's estimate and walk,
          answered from the serving epoch's oracle *)
  | Mutate of Cr_graph.Graph.mutation
      (** [setw u v w] / [linkdown u v] / [linkup u v w] /
          [nodedown u] / [nodeup u] *)
  | Sync  (** block until the repair backlog drains *)
  | Stats  (** one strict-JSON metrics line *)
  | Epoch  (** serving epoch id and backlog depth *)
  | Help
  | Quit

val grammar : (string * string) list
(** [(spelling, description)] for every command, for [help] output. *)

val parse : lineno:int -> string -> (command option, string) result
(** Parses one input line.  [Ok None] for blanks and comments;
    [Error msg] carries the 1-based line number of the offending
    line, e.g. ["line 12: unknown command \"foo\" (try help)"]. *)
