(** Blast-radius assessment of one mutation against the serving scheme.

    Maps a mutation to the scheme components it can reach: the APSP
    sources whose single-source results change
    ({!Cr_graph.Apsp.dirty_sources} — the set the incremental repair
    actually recomputes), and, through the dirty sources' phase plans,
    the landmark levels, sparse-phase trees and dense cover levels
    their routes traverse.  The daemon reports these as [daemon.dirty.*]
    counters and sizes its repair against [sources]; the component
    lists quantify how local a mutation is at the scheme layer (the
    scheme itself is rebuilt deterministically from the repaired ground
    truth — see DESIGN.md §9 for why that is what keeps repair
    bit-equivalent to a from-scratch build). *)

type impact = {
  sources : int;  (** dirty APSP sources the repair recomputes *)
  levels : int list;  (** landmark levels on some dirty node's plan *)
  sparse_trees : int list;  (** distinct sparse-phase tree centers *)
  dense_covers : int list;  (** distinct dense cover levels *)
}

val no_impact : impact

val assess :
  Compact_routing.Agm06.t -> Cr_graph.Apsp.t -> Cr_graph.Graph.mutation -> impact
(** Evaluated against the pre-mutation ground truth (the same contract
    as {!Cr_graph.Apsp.dirty_sources}).
    @raise Invalid_argument if the mutation does not apply. *)

val to_string : impact -> string
(** Compact one-line rendering for logs. *)
