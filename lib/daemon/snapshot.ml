module Gio = Cr_graph.Gio

(* On-disk checkpoint store: a directory of [snapshot-<epoch>.crs]
   files in the Gio snapshot codec.  Writes are atomic — full temp
   file, then rename — so a crash mid-checkpoint leaves either the old
   set of snapshots or the old set plus one complete new file, never a
   half-written one that parses.  [Crashpoint.Mid_snapshot] sits
   between the write and the rename: crashing there must leave the new
   checkpoint simply absent.  Loading walks candidates newest-first and
   skips any that fail to parse (checksum mismatch, torn write), so one
   bad file degrades recovery to the previous checkpoint instead of
   aborting it. *)

let prefix = "snapshot-"

let suffix = ".crs"

let filename epoch = Printf.sprintf "%s%08d%s" prefix epoch suffix

let path dir epoch = Filename.concat dir (filename epoch)

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let list dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list entries
  |> List.filter_map (fun name ->
         if
           String.length name > String.length prefix + String.length suffix
           && String.starts_with ~prefix name
           && Filename.check_suffix name suffix
         then
           let mid =
             String.sub name (String.length prefix)
               (String.length name - String.length prefix - String.length suffix)
           in
           Option.map (fun epoch -> (epoch, Filename.concat dir name)) (int_of_string_opt mid)
         else None)
  |> List.sort (fun (a, _) (b, _) -> compare b a)

let default_retain = 4

(* Renaming the temp file makes the checkpoint *atomic*, but not yet
   *durable*: the rename lives in the directory, and a machine crash
   before the directory's own metadata reaches disk can make the
   freshly written snapshot vanish even though [write] returned.
   Fsyncing the directory fd after the rename closes that hole.  Kept
   behind a swappable hook so tests can observe the call and inject
   failures; a directory that cannot be opened or fsynced degrades to
   the old (rename-only) behavior rather than failing the checkpoint. *)
let fsync_dir_hook : (string -> unit) ref =
  ref (fun dir ->
      match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
      | fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ())

let write ?(retain = default_retain) ~dir (snap : Gio.snapshot) =
  ensure_dir dir;
  let final = path dir snap.Gio.epoch in
  let tmp = final ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (Gio.snapshot_to_string snap);
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Crashpoint.hit Crashpoint.Mid_snapshot;
  Sys.rename tmp final;
  Crashpoint.hit Crashpoint.Post_rename;
  !fsync_dir_hook dir;
  (* prune beyond [retain], oldest first; never the one just written *)
  list dir
  |> List.filteri (fun i _ -> i >= retain)
  |> List.iter (fun (_, p) -> try Sys.remove p with Sys_error _ -> ());
  final

let load_latest dir =
  let rec walk skipped = function
    | [] -> (None, List.rev skipped)
    | (_, p) :: rest -> (
        match
          let ic = open_in_bin p in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> Gio.snapshot_of_string (really_input_string ic (in_channel_length ic)))
        with
        | snap -> (Some (p, snap), List.rev skipped)
        | exception Gio.Parse_error (lineno, msg) ->
            walk ((p, Printf.sprintf "line %d: %s" lineno msg) :: skipped) rest
        | exception Sys_error msg -> walk ((p, msg) :: skipped) rest)
  in
  walk [] (list dir)
