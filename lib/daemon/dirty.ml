module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
open Compact_routing

type impact = {
  sources : int;
  levels : int list;
  sparse_trees : int list;
  dense_covers : int list;
}

let no_impact = { sources = 0; levels = []; sparse_trees = []; dense_covers = [] }

let sorted_elements set = List.sort_uniq compare set

let assess agm apsp mu =
  let dirty = Apsp.dirty_sources apsp mu in
  let k = (Agm06.params agm).Params.k in
  let levels = ref [] and trees = ref [] and covers = ref [] in
  Array.iteri
    (fun s is_dirty ->
      if is_dirty then
        for i = 0 to k - 1 do
          match Agm06.phase_plan agm s i with
          | `Sparse (center, _bound) ->
              levels := i :: !levels;
              trees := center :: !trees
          | `Dense (level, _root) ->
              levels := i :: !levels;
              covers := level :: !covers
        done)
    dirty;
  {
    sources = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dirty;
    levels = sorted_elements !levels;
    sparse_trees = sorted_elements !trees;
    dense_covers = sorted_elements !covers;
  }

let to_string i =
  Printf.sprintf "sources=%d levels=%d trees=%d covers=%d" i.sources (List.length i.levels)
    (List.length i.sparse_trees) (List.length i.dense_covers)
