(** Checksummed, crash-recoverable mutation journal.

    Record format, one per line ('#' comments and blanks allowed):
    {v
    r <crc32hex> <seq> <mutation>
    v}
    with the CRC32 taken over ["<seq> <mutation>"] and [seq] counting
    records from 1.  Legacy journals (bare [Graph.mutation_to_string]
    lines, the pre-v2 format) still load.

    The writer is the daemon's durability point: {!append} returns only
    after the record is flushed per the {!fsync} policy, so an [ok]
    reply sent after {!append} means the mutation is durable.  The
    reader never raises on damage: it stops at the first invalid
    record — torn tail, checksum mismatch, sequence gap — and reports
    it as a {!truncation} point, because an interrupted append damages
    at most the record being written and everything before it is intact
    by construction. *)

(** When journal bytes are forced to disk.  [Every] fsyncs each record
    (survives machine crash), [Batch n] fsyncs every [n] records and on
    close, [Off] never fsyncs ([append] still flushes the channel, so
    acknowledged records survive process death in the OS buffer). *)
type fsync = Every | Batch of int | Off

val fsync_to_string : fsync -> string

val fsync_of_string : string -> (fsync, string) result
(** Accepts [every], [off], [batch] (interval {!default_batch}) and
    [batch:N]. *)

val default_batch : int

(** {2 Writer} *)

type writer

val create : ?fsync:fsync -> ?append:bool -> ?seq:int -> string -> writer
(** [create path] opens a fresh journal (truncating, with a version
    header comment).  [~append:true] opens an existing journal for
    recovery: positions at end of file and continues sequence numbers
    from [~seq] (the last valid record's number, default 0).
    [fsync] defaults to {!Every}. *)

val path : writer -> string

val records : writer -> int
(** Sequence number of the last record written. *)

val bytes : writer -> int
(** File offset after the last append — the [journal_offset] a snapshot
    taken now should record. *)

val append : writer -> Cr_graph.Graph.mutation -> unit
(** Write one record and make it durable per the fsync policy before
    returning.  Fires {!Crashpoint.site.Pre_flush} after buffering and
    {!Crashpoint.site.Post_flush_pre_ack} after the flush/fsync.
    @raise Invalid_argument on a closed writer. *)

val sync : writer -> unit
(** Flush and fsync regardless of policy (no-op when closed). *)

val fsync_failures : writer -> int
(** How many fsyncs have failed on this writer.  A non-zero count means
    acknowledged mutations may not survive a {e machine} crash (they
    were still flushed to the OS, so process death alone loses
    nothing); each failure also warns on stderr, and the daemon
    surfaces the count in its stats. *)

val fsync_hook : (Unix.file_descr -> unit) ref
(** The fsync implementation, [Unix.fsync] by default.  Test seam: swap
    in a raising function to exercise the fsync-failure policy, restore
    it afterwards. *)

val close : writer -> unit
(** Flush, fsync (unless the policy is {!fsync.Off}) and close.
    Idempotent. *)

val abandon : writer -> unit
(** Simulated SIGKILL: close the descriptor {e without} flushing the
    channel, losing any buffered bytes — the crash seam used by tests
    to model unclean death in-process. *)

(** {2 Reader} *)

type truncation = {
  lineno : int;  (** 1-based line of the first invalid record, counted
                     from the read offset *)
  byte : int;  (** absolute byte offset where the invalid data starts *)
  reason : string;
}

type read_result = {
  mutations : Cr_graph.Graph.mutation list;  (** the valid prefix, in order *)
  read_records : int;
  valid_bytes : int;
      (** absolute offset just past the last valid line — what the file
          should be truncated to before appending *)
  truncation : truncation option;  (** [None] iff the journal (suffix) was fully valid *)
}

val load : ?offset:int -> ?expect_seq:int -> string -> read_result
(** Read the valid record prefix starting at byte [offset] (default 0,
    the whole file).  [expect_seq] pins the sequence number the first
    record must carry (recovery passes the snapshot's
    [journal_records + 1]); without it the first record's number is
    accepted as-is and continuity is enforced from there.  Never raises
    on damaged content; raises [Sys_error] only if the file cannot be
    read. *)

val truncate_torn : string -> read_result -> unit
(** If [load] reported a truncation, truncate the file at
    [valid_bytes] so the journal can be appended to cleanly. *)
