module Jsonl = Cr_util.Jsonl
module Rng = Cr_util.Rng
module Guard = Cr_guard

(* One select-driven event loop, one daemon.  The daemon's dispatch
   ([Daemon.handle_line]) is single-caller by design — line counters,
   query indices and the EWMA cost estimate are plain mutable fields —
   so the transport must serialize every call anyway.  An event loop
   does that for free and buys the robustness semantics a thread per
   connection cannot give cheaply: a bounded write queue per client
   (backpressure = stop selecting that fd for read), deterministic
   fault injection at the write edge, and a drain that can see every
   in-flight response at once. *)

(* ---- addresses -------------------------------------------------------- *)

type addr = Tcp of string * int | Unix_path of string

let addr_of_string s =
  let fail () =
    Error (Printf.sprintf "bad listen address %S (expected [HOST:]PORT or unix:PATH)" s)
  in
  if String.starts_with ~prefix:"unix:" s then
    let p = String.sub s 5 (String.length s - 5) in
    if p = "" then Error "bad listen address: empty unix socket path" else Ok (Unix_path p)
  else
    let host, port_s =
      match String.rindex_opt s ':' with
      | None -> ("127.0.0.1", s)
      | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    in
    match int_of_string_opt port_s with
    | Some p when p >= 0 && p <= 65535 && host <> "" -> Ok (Tcp (host, p))
    | _ -> fail ()

let addr_to_string = function
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  | Unix_path p -> "unix:" ^ p

(* ---- deterministic network chaos -------------------------------------- *)

type netchaos = {
  nlabel : string;
  nseed : int;
  delay_rate : float;
  delay_s : float;
  short_rate : float;
  drop_rate : float;
}

let no_netchaos =
  { nlabel = "none"; nseed = 0; delay_rate = 0.0; delay_s = 0.0; short_rate = 0.0;
    drop_rate = 0.0 }

let netchaos ?(label = "custom") ~seed ?(delay_rate = 0.0) ?(delay_s = 0.01)
    ?(short_rate = 0.0) ?(drop_rate = 0.0) () =
  { nlabel = label; nseed = seed; delay_rate; delay_s; short_rate; drop_rate }

let netchaos_of_string ~seed = function
  | "none" -> Ok no_netchaos
  | "slow" -> Ok (netchaos ~label:"slow" ~seed ~delay_rate:0.25 ~delay_s:0.02 ())
  | "torn" -> Ok (netchaos ~label:"torn" ~seed ~short_rate:0.5 ())
  | "rude" -> Ok (netchaos ~label:"rude" ~seed ~drop_rate:0.1 ())
  | "net" ->
      Ok
        (netchaos ~label:"net" ~seed ~delay_rate:0.2 ~delay_s:0.01 ~short_rate:0.3
           ~drop_rate:0.05 ())
  | s -> Error (Printf.sprintf "unknown netchaos preset %S (try none, slow, torn, rude or net)" s)

let netchaos_label nc = nc.nlabel

(* every decision is a fresh splitmix64 stream keyed by (seed, conn,
   req, salt) — the same derivation idiom as Guard.Chaos.qrng — so a
   run is replayable from its netchaos seed alone *)
let decision nc ~conn ~req ~salt =
  Rng.create ((nc.nseed * 1_000_003) + (conn * 65_537) + (req * 8_191) + salt)

let chaos_delay_s nc ~conn ~req =
  if nc.delay_rate > 0.0 && Rng.bernoulli (decision nc ~conn ~req ~salt:1) nc.delay_rate then
    nc.delay_s
  else 0.0

let chaos_chunk nc ~conn ~req =
  if nc.short_rate > 0.0 && Rng.bernoulli (decision nc ~conn ~req ~salt:2) nc.short_rate then
    Some (1 + Rng.int (decision nc ~conn ~req ~salt:3) 7)
  else None

let chaos_drops nc ~conn ~req =
  nc.drop_rate > 0.0 && Rng.bernoulli (decision nc ~conn ~req ~salt:4) nc.drop_rate

(* ---- configuration ----------------------------------------------------- *)

type config = {
  max_conns : int;
  max_line : int;
  idle_timeout_s : float;
  write_queue_max : int;
  drain_s : float;
  nc : netchaos;
}

let default_config =
  { max_conns = 64; max_line = 4096; idle_timeout_s = 30.0; write_queue_max = 256 * 1024;
    drain_s = 5.0; nc = no_netchaos }

type outcome = Served | Shed | Timed_out | Disconnected

let outcome_to_string = function
  | Served -> "served"
  | Shed -> "shed"
  | Timed_out -> "timed-out"
  | Disconnected -> "disconnected"

type stats = {
  mutable conns_total : int;
  mutable served : int;
  mutable shed : int;
  mutable timed_out : int;
  mutable disconnected : int;
  mutable lines : int;
  mutable responses : int;
  mutable oversized : int;
  mutable torn : int;
  mutable chaos_delays : int;
  mutable chaos_shorts : int;
  mutable chaos_drops : int;
  mutable drained : bool;
}

(* ---- connections ------------------------------------------------------- *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* bytes read, complete lines consumed; a partial line stays here *)
  wq : string Queue.t;  (* response bytes not yet written *)
  mutable wq_bytes : int;
  mutable whead_off : int;  (* written prefix of the queue head *)
  mutable lineno : int;  (* per-session protocol line number *)
  mutable reqs : int;  (* request index: the netchaos coordinate *)
  mutable sync_req : int;  (* request index of the parked sync, for its chaos decisions *)
  mutable last_activity : float;
  mutable no_write_before : float;  (* netchaos delay *)
  mutable chunk : int option;  (* netchaos short-write cap while the queue drains *)
  mutable drop_at : int option;  (* netchaos: cut once this many bytes were written *)
  mutable written : int;  (* total response bytes written *)
  mutable waiting_sync : bool;  (* parked on Daemon.poll_sync *)
  mutable ending : outcome option;  (* stop reading; close with this once the queue drains *)
  mutable end_deadline : float;  (* force-close point once [ending] is set *)
  mutable dead : bool;  (* closed and counted: every path is idempotent past this *)
}

type t = {
  daemon : Daemon.t;
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : addr;
  stats : stats;
  mutable conns : conn list;
  mutable next_cid : int;
  stop_flag : bool Atomic.t;
  mutable draining : bool;
  mutable drain_deadline : float;
  mutable listen_open : bool;
}

let now () = Unix.gettimeofday ()

let tick_s = 0.02  (* select granularity: deadline/chaos timing resolution *)

let create ?(config = default_config) daemon address =
  if config.max_conns < 1 then invalid_arg "Server.create: max_conns must be >= 1";
  if config.max_line < 16 then invalid_arg "Server.create: max_line must be >= 16";
  if config.write_queue_max < 1 then invalid_arg "Server.create: write_queue_max must be >= 1";
  if config.drain_s < 0.0 then invalid_arg "Server.create: drain_s must be >= 0";
  (* a peer closing mid-write must surface as EPIPE on the write, never
     as a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ | Sys_error _ -> ());
  let fd, bound =
    match address with
    | Unix_path p ->
        (try Unix.unlink p with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.bind fd (Unix.ADDR_UNIX p)
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        (fd, address)
    | Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found ->
              raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "gethostbyname", host)))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (try Unix.bind fd (Unix.ADDR_INET (ip, port))
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        let port =
          match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
        in
        (fd, Tcp (host, port))
  in
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  {
    daemon;
    cfg = config;
    listen_fd = fd;
    bound;
    stats =
      { conns_total = 0; served = 0; shed = 0; timed_out = 0; disconnected = 0; lines = 0;
        responses = 0; oversized = 0; torn = 0; chaos_delays = 0; chaos_shorts = 0;
        chaos_drops = 0; drained = false };
    conns = [];
    next_cid = 0;
    stop_flag = Atomic.make false;
    draining = false;
    drain_deadline = infinity;
    listen_open = true;
  }

let addr t = t.bound

let stats t = t.stats

let stats_json t =
  let s = t.stats in
  Jsonl.obj
    [
      ("conns", Jsonl.int s.conns_total);
      ("served", Jsonl.int s.served);
      ("shed", Jsonl.int s.shed);
      ("timed_out", Jsonl.int s.timed_out);
      ("disconnected", Jsonl.int s.disconnected);
      ("lines", Jsonl.int s.lines);
      ("responses", Jsonl.int s.responses);
      ("oversized", Jsonl.int s.oversized);
      ("torn", Jsonl.int s.torn);
      ("netchaos", Jsonl.str t.cfg.nc.nlabel);
      ("chaos_delays", Jsonl.int s.chaos_delays);
      ("chaos_shorts", Jsonl.int s.chaos_shorts);
      ("chaos_drops", Jsonl.int s.chaos_drops);
      ("drained", Jsonl.bool s.drained);
    ]

let stop t = Atomic.set t.stop_flag true

(* ---- connection lifecycle --------------------------------------------- *)

let conn_event t c outcome =
  Daemon.emit_event t.daemon
    [
      ("event", Jsonl.str "conn");
      ("conn", Jsonl.int c.cid);
      ("outcome", Jsonl.str (outcome_to_string outcome));
      ("lines", Jsonl.int c.lineno);
      ("bytes_out", Jsonl.int c.written);
    ]

let count_outcome t = function
  | Served -> t.stats.served <- t.stats.served + 1
  | Shed -> t.stats.shed <- t.stats.shed + 1
  | Timed_out -> t.stats.timed_out <- t.stats.timed_out + 1
  | Disconnected -> t.stats.disconnected <- t.stats.disconnected + 1

let close_conn t c outcome =
  if not c.dead then begin
    c.dead <- true;
    count_outcome t outcome;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c'.cid <> c.cid) t.conns;
    conn_event t c outcome
  end

let enqueue t c s =
  t.stats.responses <- t.stats.responses + 1;
  Queue.push s c.wq;
  c.wq_bytes <- c.wq_bytes + String.length s

(* the chaos decisions for request [req], applied once its response
   bytes (possibly none) are queued *)
let apply_netchaos t c ~req =
  let nc = t.cfg.nc in
  let d = chaos_delay_s nc ~conn:c.cid ~req in
  if d > 0.0 then begin
    t.stats.chaos_delays <- t.stats.chaos_delays + 1;
    c.no_write_before <- Float.max c.no_write_before (now () +. d)
  end;
  (match chaos_chunk nc ~conn:c.cid ~req with
  | Some k ->
      t.stats.chaos_shorts <- t.stats.chaos_shorts + 1;
      c.chunk <- Some k
  | None -> ());
  if chaos_drops nc ~conn:c.cid ~req && c.drop_at = None then begin
    t.stats.chaos_drops <- t.stats.chaos_drops + 1;
    (* cut after roughly half of what is now queued goes out: a
       mid-request disconnect, not a polite one *)
    c.drop_at <- Some (c.written + ((c.wq_bytes + 1) / 2))
  end

let finish t c outcome =
  if c.ending = None then begin
    c.ending <- Some outcome;
    c.end_deadline <- now () +. t.cfg.drain_s
  end

let handle_one t c line =
  c.lineno <- c.lineno + 1;
  c.reqs <- c.reqs + 1;
  t.stats.lines <- t.stats.lines + 1;
  let req = c.reqs in
  (* a sync with repair still in flight parks the connection instead of
     blocking the loop; everyone else keeps being served *)
  let deferred =
    match Protocol.parse ~lineno:c.lineno line with
    | Ok (Some Protocol.Sync) when Daemon.poll_sync t.daemon = None -> true
    | _ -> false
  in
  if deferred then begin
    c.waiting_sync <- true;
    c.sync_req <- req
  end
  else begin
    let responses, quit = Daemon.handle_line t.daemon ~lineno:c.lineno line in
    List.iter (fun r -> enqueue t c (r ^ "\n")) responses;
    apply_netchaos t c ~req;
    if quit then finish t c Served
  end

let rec process_lines t c =
  if (not c.dead) && (not c.waiting_sync) && c.ending = None then begin
    let buf = Buffer.contents c.rbuf in
    match String.index_opt buf '\n' with
    | None ->
        if Buffer.length c.rbuf > t.cfg.max_line then begin
          (* bound the request size: an endless line must not grow the
             buffer without limit, and the refusal is structured *)
          t.stats.oversized <- t.stats.oversized + 1;
          c.lineno <- c.lineno + 1;
          enqueue t c
            (Printf.sprintf "err line %d too long max=%d\n" c.lineno t.cfg.max_line);
          Buffer.clear c.rbuf;
          finish t c Disconnected
        end
    | Some nl ->
        let line = String.sub buf 0 nl in
        let line =
          (* tolerate CRLF clients (telnet, nc -C) *)
          if String.length line > 0 && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        Buffer.clear c.rbuf;
        Buffer.add_substring c.rbuf buf (nl + 1) (String.length buf - nl - 1);
        if String.length line > t.cfg.max_line then begin
          t.stats.oversized <- t.stats.oversized + 1;
          c.lineno <- c.lineno + 1;
          enqueue t c
            (Printf.sprintf "err line %d too long max=%d\n" c.lineno t.cfg.max_line);
          Buffer.clear c.rbuf;
          finish t c Disconnected
        end
        else begin
          handle_one t c line;
          process_lines t c
        end
  end

let poll_parked_sync t c =
  if (not c.dead) && c.waiting_sync then
    match Daemon.poll_sync t.daemon with
    | None -> ()
    | Some r ->
        c.waiting_sync <- false;
        enqueue t c (Daemon.sync_response r ^ "\n");
        apply_netchaos t c ~req:c.sync_req;
        process_lines t c

(* ---- I/O edges --------------------------------------------------------- *)

let best_effort_write fd s =
  match Unix.write_substring fd s 0 (String.length s) with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let service_accept t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EMFILE | Unix.ENFILE), _, _) ->
      (* transient accept failures must not take the loop down *)
      ()
  | fd, _peer ->
      Unix.set_nonblock fd;
      t.stats.conns_total <- t.stats.conns_total + 1;
      let cid = t.next_cid in
      t.next_cid <- cid + 1;
      let active = List.length t.conns in
      (* admission control, Guard.Shed over connection depth: the
         active set is the queue, the cap is the policy *)
      let shed_cfg = Guard.Shed.make_config ~max_queue:(t.cfg.max_conns - 1) () in
      if
        t.draining
        || Guard.Shed.decide shed_cfg ~queued:active ~remaining_s:infinity ~est_cost_s:0.0
      then begin
        t.stats.shed <- t.stats.shed + 1;
        best_effort_write fd
          (if t.draining then "err busy draining\n"
           else Printf.sprintf "err busy conns=%d max=%d\n" active t.cfg.max_conns);
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Daemon.emit_event t.daemon
          [
            ("event", Jsonl.str "conn");
            ("conn", Jsonl.int cid);
            ("outcome", Jsonl.str (outcome_to_string Shed));
            ("lines", Jsonl.int 0);
            ("bytes_out", Jsonl.int 0);
          ]
      end
      else
        let c =
          {
            cid;
            fd;
            rbuf = Buffer.create 256;
            wq = Queue.create ();
            wq_bytes = 0;
            whead_off = 0;
            lineno = 0;
            reqs = 0;
            sync_req = 0;
            last_activity = now ();
            no_write_before = 0.0;
            chunk = None;
            drop_at = None;
            written = 0;
            waiting_sync = false;
            ending = None;
            end_deadline = infinity;
            dead = false;
          }
        in
        t.conns <- c :: t.conns

let service_read t scratch c =
  if not c.dead then
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t c Disconnected
    | 0 ->
        if Buffer.length c.rbuf > 0 then begin
          (* the client died mid-line: torn input.  The partial line is
             dropped, queued responses still flush, the outcome is
             honest *)
          t.stats.torn <- t.stats.torn + 1;
          Buffer.clear c.rbuf;
          finish t c Disconnected
        end
        else finish t c Served
    | n ->
        c.last_activity <- now ();
        Buffer.add_subbytes c.rbuf scratch 0 n;
        process_lines t c

let service_write t c tnow =
  if (not c.dead) && c.wq_bytes > 0 && tnow >= c.no_write_before then begin
    let head = Queue.peek c.wq in
    let avail = String.length head - c.whead_off in
    let cap = match c.chunk with Some k -> min k avail | None -> avail in
    match Unix.write_substring c.fd head c.whead_off cap with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t c Disconnected
    | n ->
        c.whead_off <- c.whead_off + n;
        c.written <- c.written + n;
        c.wq_bytes <- c.wq_bytes - n;
        if c.whead_off >= String.length head then begin
          ignore (Queue.pop c.wq);
          c.whead_off <- 0
        end;
        if c.wq_bytes = 0 then c.chunk <- None
        else if c.chunk <> None then
          (* keep the dribble torn over time, not just split once *)
          c.no_write_before <- tnow +. (tick_s /. 4.0)
  end

(* ---- deadlines, drains, sweeps ---------------------------------------- *)

let sweep t c tnow =
  if not c.dead then begin
    (* netchaos mid-request disconnect *)
    (match c.drop_at with
    | Some k when c.written >= k -> close_conn t c Disconnected
    | _ -> ());
    if not c.dead then begin
      (* slow-loris / idle deadline, only while the session is live *)
      if
        t.cfg.idle_timeout_s > 0.0 && c.ending = None && (not c.waiting_sync)
        && (not t.draining)
        && tnow -. c.last_activity > t.cfg.idle_timeout_s
      then begin
        enqueue t c (Printf.sprintf "err idle timeout=%gs\n" t.cfg.idle_timeout_s);
        finish t c Timed_out
      end;
      (* a finished session closes once its responses are out *)
      (match c.ending with
      | Some o when c.wq_bytes = 0 -> close_conn t c o
      | Some o when tnow >= c.end_deadline ->
          (* could not flush in time: a stuck reader forfeits the rest *)
          close_conn t c (if o = Disconnected then Disconnected else Timed_out)
      | _ -> ());
      if (not c.dead) && t.draining then
        if c.wq_bytes = 0 && (not c.waiting_sync) && c.ending = None then
          (* nothing in flight: a draining server closes idle sessions *)
          close_conn t c Served
        else if tnow >= t.drain_deadline then
          close_conn t c (if c.ending = Some Disconnected then Disconnected else Timed_out)
    end
  end

let begin_drain t tnow =
  if not t.draining then begin
    t.draining <- true;
    t.stats.drained <- true;
    t.drain_deadline <- tnow +. t.cfg.drain_s;
    if t.listen_open then begin
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (match t.bound with
      | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | Tcp _ -> ());
      t.listen_open <- false
    end;
    Daemon.emit_event t.daemon
      [
        ("event", Jsonl.str "drain");
        ("conns_in_flight", Jsonl.int (List.length t.conns));
        ("deadline_s", Jsonl.float t.cfg.drain_s);
      ]
  end

(* ---- the loop ---------------------------------------------------------- *)

let run t =
  let scratch = Bytes.create 4096 in
  let rec tick () =
    let tnow = now () in
    if Atomic.get t.stop_flag then begin_drain t tnow;
    List.iter (fun c -> poll_parked_sync t c) t.conns;
    List.iter (fun c -> sweep t c tnow) t.conns;
    if t.draining && t.conns = [] then
      Daemon.emit_event t.daemon
        [
          ("event", Jsonl.str "server_stats");
          ("conns", Jsonl.int t.stats.conns_total);
          ("served", Jsonl.int t.stats.served);
          ("shed", Jsonl.int t.stats.shed);
          ("timed_out", Jsonl.int t.stats.timed_out);
          ("disconnected", Jsonl.int t.stats.disconnected);
          ("lines", Jsonl.int t.stats.lines);
          ("responses", Jsonl.int t.stats.responses);
          ("oversized", Jsonl.int t.stats.oversized);
          ("torn", Jsonl.int t.stats.torn);
          ("netchaos", Jsonl.str t.cfg.nc.nlabel);
          ("chaos_delays", Jsonl.int t.stats.chaos_delays);
          ("chaos_shorts", Jsonl.int t.stats.chaos_shorts);
          ("chaos_drops", Jsonl.int t.stats.chaos_drops);
        ]
    else begin
      let readers =
        (* backpressure: a connection whose write queue is over the
           bound is simply not read from until it drains — its own
           flood stalls only itself *)
        List.filter_map
          (fun c ->
            if
              (not c.dead) && c.ending = None && (not c.waiting_sync) && (not t.draining)
              && c.wq_bytes <= t.cfg.write_queue_max
            then Some c.fd
            else None)
          t.conns
      in
      let readers = if t.listen_open then t.listen_fd :: readers else readers in
      let writers =
        List.filter_map
          (fun c ->
            if (not c.dead) && c.wq_bytes > 0 && tnow >= c.no_write_before then Some c.fd
            else None)
          t.conns
      in
      match Unix.select readers writers [] tick_s with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> tick ()
      | rd, wr, _ ->
          if t.listen_open && List.memq t.listen_fd rd then service_accept t;
          let snapshot = t.conns in
          List.iter (fun c -> if List.memq c.fd wr then service_write t c (now ())) snapshot;
          List.iter (fun c -> if List.memq c.fd rd then service_read t scratch c) snapshot;
          tick ()
    end
  in
  tick ();
  if t.listen_open then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    t.listen_open <- false
  end
