module Graph = Cr_graph.Graph
module Gio = Cr_graph.Gio
module Apsp = Cr_graph.Apsp
module Dijkstra = Cr_graph.Dijkstra
module Guard = Cr_guard
module Jsonl = Cr_util.Jsonl
module Stats = Cr_util.Stats
module Counters = Cr_obs.Counters
module Ttcache = Cr_util.Ttcache
open Compact_routing

(* The daemon serves every query from an immutable last-good [epoch]
   while a background domain repairs the ground truth incrementally
   after each accepted mutation.  The epoch record is swapped whole
   under [lock] — a reader snapshots the record pointer and then works
   lock-free on immutable data, so an answer is always internally
   consistent (never a torn mix of old scheme and new graph). *)

type epoch = {
  id : int;
  graph : Graph.t;
  apsp : Apsp.t;
  agm : Agm06.t;
  scheme : Scheme.t;
  oracle : Cr_oracle.Path_oracle.t;
      (* the second query surface: rebuilt with the scheme on every
         repair, so [path] answers are always internally consistent
         with [route]/[dist] of the same epoch *)
}

type config = {
  params : Params.t;
  policy : Guard.Policy.t;
  chaos : Guard.Chaos.t;
  staleness_every : int;
  repair_hook : (unit -> unit) option;
  fsync : Journal.fsync;
  snapshot_every : int;
  restart_backoff : Guard.Backoff.t;
}

type recovery = {
  snapshot_epoch : int option;  (* epoch of the checkpoint used, if any *)
  snapshots_skipped : int;  (* newer checkpoints rejected as corrupt *)
  replayed : int;  (* journal records replayed past the checkpoint *)
  truncated_bytes : int;  (* torn/corrupt journal tail cut off *)
  truncated_line : int option;
  recovery_s : float;  (* wall time to a serving epoch *)
}

type answer = {
  delivered : bool;
  cost : float;
  hops : int;
  stretch : float;
  walk : int list;
  dist : float;
}

type t = {
  cfg : config;
  counters : Counters.t;
  lock : Mutex.t;
  cond : Condition.t;  (* broadcast on: mutation queued, repair done, stop *)
  pending : Graph.mutation Queue.t;  (* accepted, not yet repaired *)
  mutable serving : epoch;  (* last-good; swapped whole, never torn *)
  mutable live : Graph.t;  (* every accepted mutation applied (handle thread only) *)
  mutable repairing : bool;
  mutable poisoned : string option;  (* repair worker died; serving continues *)
  mutable stop : bool;
  mutable quit : bool;
  mutable worker : unit Domain.t option;
  breaker : Guard.Breaker.t option;
  mutable lineno : int;
  mutable qindex : int;
  mutable est_cost_s : float;  (* EWMA per-query cost, for shed feasibility *)
  mutable repair_s : float list;  (* per-batch repair wall times *)
  mutable stale_stretch : float list;  (* sampled live-graph stretch of answers *)
  mutable journal : Journal.writer option;
  snapshot_dir : string option;
  mutable snapshots : int;  (* checkpoints written this run *)
  mutable last_snapshot : (int * float) option;  (* epoch id, wall clock *)
  recovered : recovery option;
  mutable events : Jsonl.Writer.t option;
  (* shared answer caches, generation = serving epoch id: an epoch swap
     invalidates both in O(1) (old-epoch entries simply never match
     again), so post-sync answers can never be served from a stale
     epoch.  [route]/[dist] answers are keyed by the directed pair;
     [path] answers by the canonical (min, max) pair, reversed on the
     way out (Path_oracle.path's own canonicalization makes that
     byte-identical to computing the asked direction). *)
  acache : answer Ttcache.t option;
  pcache : Cr_oracle.Path_oracle.answer option Ttcache.t option;
}

let est_alpha = 0.2

(* ---- background repair ---------------------------------------------- *)

let drain_batch t =
  let batch = ref [] in
  Queue.iter (fun mu -> batch := mu :: !batch) t.pending;
  Queue.clear t.pending;
  List.rev !batch

let repair_event t ~epoch_id ~batch ~sources ~impact ~wall_s =
  match t.events with
  | None -> ()
  | Some w ->
      Jsonl.Writer.write w
        (Jsonl.obj
           [
             ("event", Jsonl.str "repair");
             ("epoch", Jsonl.int epoch_id);
             ("mutations", Jsonl.int (List.length batch));
             ("sources", Jsonl.int sources);
             ("levels", Jsonl.int (List.length impact.Dirty.levels));
             ("trees", Jsonl.int (List.length impact.Dirty.sparse_trees));
             ("covers", Jsonl.int (List.length impact.Dirty.dense_covers));
             ("wall_ms", Jsonl.float (1e3 *. wall_s));
           ])

let merge_impact a b =
  Dirty.
    {
      sources = a.sources + b.sources;
      levels = List.sort_uniq compare (a.levels @ b.levels);
      sparse_trees = List.sort_uniq compare (a.sparse_trees @ b.sparse_trees);
      dense_covers = List.sort_uniq compare (a.dense_covers @ b.dense_covers);
    }

let repair_batch t base batch =
  (* affectedness tests are only valid against the immediately
     preceding ground truth, so a batch is chained one mutation at a
     time; the scheme is then rebuilt once, deterministically, from the
     repaired ground truth — which is exactly what makes the repaired
     epoch bit-equivalent to a from-scratch build at the final graph
     (the repair-equivalence property test pins this). *)
  let apsp = ref base.apsp and sources = ref 0 and impact = ref Dirty.no_impact in
  List.iter
    (fun mu ->
      impact := merge_impact !impact (Dirty.assess base.agm !apsp mu);
      let apsp', n = Apsp.repair_mutation !apsp mu in
      apsp := apsp';
      sources := !sources + n)
    batch;
  let agm = Agm06.build ~params:t.cfg.params !apsp in
  let params = t.cfg.params in
  let epoch =
    {
      id = base.id + 1;
      graph = Apsp.graph !apsp;
      apsp = !apsp;
      agm;
      scheme = Agm06.scheme agm;
      oracle =
        Cr_oracle.Path_oracle.build ~k:params.Params.k ~seed:params.Params.seed !apsp;
    }
  in
  (epoch, !sources, !impact)

let restart_event t ~restart ~delay_s ~error =
  match t.events with
  | None -> ()
  | Some w ->
      Jsonl.Writer.write w
        (Jsonl.obj
           [
             ("event", Jsonl.str "repair_restart");
             ("restart", Jsonl.int restart);
             ("delay_ms", Jsonl.float (1e3 *. delay_s));
             ("error", Jsonl.str error);
           ])

let requeue_front t batch =
  (* the failed batch goes back ahead of anything accepted meanwhile,
     so the next attempt replays mutations in acceptance order *)
  let nq = Queue.create () in
  List.iter (fun mu -> Queue.push mu nq) batch;
  Queue.transfer t.pending nq;
  Queue.transfer nq t.pending

let worker_loop t =
  (* Supervised: a failed repair no longer poisons the daemon outright.
     The batch is requeued at the front, the worker backs off (capped
     exponential) and tries again; only [max_restarts] consecutive
     failures poison it.  A transient fault — an injected chaos error,
     a hook that raises once — costs a delay, not the repair domain. *)
  let backoff = t.cfg.restart_backoff in
  let rec loop ~failures =
    Mutex.lock t.lock;
    while Queue.is_empty t.pending && not t.stop do
      Condition.wait t.cond t.lock
    done;
    if t.stop then (
      Mutex.unlock t.lock;
      ())
    else begin
      let batch = drain_batch t in
      let base = t.serving in
      t.repairing <- true;
      Mutex.unlock t.lock;
      let outcome =
        let t0 = !Guard.Clock.now () in
        match
          (match t.cfg.repair_hook with Some hook -> hook () | None -> ());
          repair_batch t base batch
        with
        | result -> Ok (result, !Guard.Clock.now () -. t0)
        | exception exn -> Error (Printexc.to_string exn)
      in
      match outcome with
      | Ok ((epoch, sources, impact), wall_s) ->
          Mutex.lock t.lock;
          t.repairing <- false;
          t.serving <- epoch;
          t.repair_s <- wall_s :: t.repair_s;
          Counters.incr t.counters "daemon.repairs";
          Counters.add t.counters "daemon.repair.sources" sources;
          Counters.add t.counters "daemon.repair.mutations" (List.length batch);
          Counters.add t.counters "daemon.dirty.levels" (List.length impact.Dirty.levels);
          Counters.add t.counters "daemon.dirty.trees"
            (List.length impact.Dirty.sparse_trees);
          Counters.add t.counters "daemon.dirty.covers"
            (List.length impact.Dirty.dense_covers);
          Counters.set t.counters "daemon.epoch" epoch.id;
          Counters.set t.counters "daemon.backlog" (Queue.length t.pending);
          repair_event t ~epoch_id:epoch.id ~batch ~sources ~impact ~wall_s;
          Condition.broadcast t.cond;
          Mutex.unlock t.lock;
          loop ~failures:0
      | Error msg ->
          let failures = failures + 1 in
          if Guard.Backoff.exhausted backoff ~restart:failures then begin
            (* the daemon survives its repair worker: queries keep being
               answered from the last-good epoch, sync reports the
               poisoning instead of hanging *)
            Mutex.lock t.lock;
            t.repairing <- false;
            t.poisoned <- Some msg;
            Counters.incr t.counters "daemon.repair.poisoned";
            Condition.broadcast t.cond;
            Mutex.unlock t.lock
          end
          else begin
            let delay_s = Guard.Backoff.delay_s backoff ~restart:failures in
            Mutex.lock t.lock;
            t.repairing <- false;
            requeue_front t batch;
            Counters.incr t.counters "daemon.repair.restarts";
            Counters.set t.counters "daemon.backlog" (Queue.length t.pending);
            restart_event t ~restart:failures ~delay_s ~error:msg;
            Mutex.unlock t.lock;
            if delay_s > 0.0 then !Guard.Clock.sleep delay_s;
            loop ~failures
          end
    end
  in
  loop ~failures:0

(* ---- construction ---------------------------------------------------- *)

let build_epoch ~params ~id apsp =
  let agm = Agm06.build ~params apsp in
  {
    id;
    graph = Apsp.graph apsp;
    apsp;
    agm;
    scheme = Agm06.scheme agm;
    oracle = Cr_oracle.Path_oracle.build ~k:params.Params.k ~seed:params.Params.seed apsp;
  }

(* Recovery: newest valid snapshot (if any) replaces the base graph,
   then the checksummed journal suffix past the snapshot's recorded
   offset is replayed on top, a torn or corrupt tail is truncated away,
   and the journal is reopened in append mode with the sequence
   continuing — so the recovered daemon's live graph is exactly the
   acknowledged-mutation prefix that reached disk.  The serving epoch
   is rebuilt from scratch at id 0 (epoch ids are per-process; answers
   are identical modulo the id, which the equivalence tests pin). *)
let recover_state ~base ~journal_path ~snapshot_dir =
  let snap, skipped =
    match snapshot_dir with Some dir -> Snapshot.load_latest dir | None -> (None, [])
  in
  let graph0, offset, expect_seq, snap_records, snapshot_epoch =
    match snap with
    | Some (_, s) ->
        ( s.Gio.graph,
          s.Gio.journal_offset,
          Some (s.Gio.journal_records + 1),
          s.Gio.journal_records,
          Some s.Gio.epoch )
    | None -> (base, 0, None, 0, None)
  in
  let live, seq, truncated_bytes, truncated_line =
    match journal_path with
    | Some path when Sys.file_exists path ->
        let r = Journal.load ~offset ?expect_seq path in
        let size = (Unix.stat path).Unix.st_size in
        Journal.truncate_torn path r;
        let live = List.fold_left Graph.apply graph0 r.Journal.mutations in
        ( live,
          snap_records + r.Journal.read_records,
          size - r.Journal.valid_bytes,
          Option.map (fun (tr : Journal.truncation) -> tr.Journal.lineno) r.Journal.truncation )
    | _ -> (graph0, snap_records, 0, None)
  in
  let replayed = seq - snap_records in
  ( live,
    seq,
    { snapshot_epoch; snapshots_skipped = List.length skipped; replayed; truncated_bytes;
      truncated_line; recovery_s = 0.0 } )

let create ?(policy = Guard.Policy.serving) ?(chaos = Guard.Chaos.none) ?(staleness_every = 32)
    ?(fsync = Journal.Every) ?journal ?snapshot_dir ?(snapshot_every = 64) ?(recover = false)
    ?(restart_backoff = Guard.Backoff.repair) ?events ?repair_hook ?counters ?(cache = 0)
    ~params graph =
  if staleness_every < 0 then invalid_arg "Daemon.create: staleness_every must be >= 0";
  if cache < 0 then invalid_arg "Daemon.create: cache must be >= 0";
  if snapshot_every < 0 then invalid_arg "Daemon.create: snapshot_every must be >= 0";
  if snapshot_dir <> None && journal = None then
    invalid_arg "Daemon.create: snapshots need a journal (the checkpoint records its offset)";
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let t0 = !Guard.Clock.now () in
  let live, seq, recovered =
    if recover then
      let live, seq, rec_ = recover_state ~base:graph ~journal_path:journal ~snapshot_dir in
      (live, seq, Some rec_)
    else (graph, 0, None)
  in
  let apsp = Apsp.compute_parallel live in
  let serving = build_epoch ~params ~id:0 apsp in
  let recovered =
    (* recovery time includes the epoch rebuild: it is the full
       gap from process start to a serving daemon *)
    Option.map (fun r -> { r with recovery_s = !Guard.Clock.now () -. t0 }) recovered
  in
  let journal =
    Option.map (fun path -> Journal.create ~fsync ~append:recover ~seq path) journal
  in
  let events = Option.map Jsonl.Writer.create events in
  let t =
    {
      cfg =
        { params; policy; chaos; staleness_every; repair_hook; fsync; snapshot_every;
          restart_backoff };
      counters;
      lock = Mutex.create ();
      cond = Condition.create ();
      pending = Queue.create ();
      serving;
      live;
      repairing = false;
      poisoned = None;
      stop = false;
      quit = false;
      worker = None;
      breaker = Option.map Guard.Breaker.create policy.Guard.Policy.breaker;
      lineno = 0;
      qindex = 0;
      est_cost_s = 0.0;
      repair_s = [];
      stale_stretch = [];
      journal;
      snapshot_dir;
      snapshots = 0;
      last_snapshot = None;
      recovered;
      events;
      acache =
        (if cache = 0 then None
         else Some (Ttcache.create ~salt:(Graph.hash live) ~capacity:cache ()));
      pcache =
        (if cache = 0 then None
         else Some (Ttcache.create ~salt:(Graph.hash live + 1) ~capacity:cache ()));
    }
  in
  Counters.set counters "daemon.epoch" 0;
  Counters.set counters "daemon.backlog" 0;
  (match recovered with
  | Some r ->
      Counters.set counters "daemon.recovery.replayed" r.replayed;
      Counters.set counters "daemon.recovery.truncated_bytes" r.truncated_bytes
  | None -> ());
  (match t.journal with
  | Some w -> Counters.set counters "daemon.journal.bytes" (Journal.bytes w)
  | None -> ());
  t.worker <- Some (Domain.spawn (fun () -> worker_loop t));
  t

let recovery t = t.recovered

let close t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  (match t.worker with
  | Some d ->
      Domain.join d;
      t.worker <- None
  | None -> ());
  (match t.journal with
  | Some w ->
      Journal.close w;
      t.journal <- None
  | None -> ());
  match t.events with
  | Some w ->
      Jsonl.Writer.close w;
      t.events <- None
  | None -> ()

let crash t =
  (* test seam for unclean death: stop the worker (a domain cannot be
     killed mid-flight) but *abandon* the journal — buffered bytes are
     lost exactly as on SIGKILL — and drop the event writer the same
     way.  What recovery finds on disk afterwards is what a real crash
     would have left. *)
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  (match t.worker with
  | Some d ->
      Domain.join d;
      t.worker <- None
  | None -> ());
  (match t.journal with
  | Some w ->
      Journal.abandon w;
      t.journal <- None
  | None -> ());
  match t.events with
  | Some w ->
      Jsonl.Writer.close w;
      t.events <- None
  | None -> ()

(* ---- introspection ---------------------------------------------------- *)

let epoch_id t =
  Mutex.lock t.lock;
  let id = t.serving.id in
  Mutex.unlock t.lock;
  id

let backlog t =
  Mutex.lock t.lock;
  let d = Queue.length t.pending + if t.repairing then 1 else 0 in
  Mutex.unlock t.lock;
  d

let live_graph t = t.live

let counters t = t.counters

let repair_times_s t =
  Mutex.lock t.lock;
  let xs = t.repair_s in
  Mutex.unlock t.lock;
  List.rev xs

let quitting t = t.quit

let sync t =
  Mutex.lock t.lock;
  while t.poisoned = None && ((not (Queue.is_empty t.pending)) || t.repairing) do
    Condition.wait t.cond t.lock
  done;
  let r = match t.poisoned with None -> Ok t.serving.id | Some msg -> Error msg in
  Mutex.unlock t.lock;
  r

let poll_sync t =
  (* the non-blocking face of [sync], for transports that must not
     park a thread per waiting client: the socket server parks the
     *connection* and polls this each event-loop tick *)
  Mutex.lock t.lock;
  let r =
    match t.poisoned with
    | Some msg -> Some (Error msg)
    | None ->
        if Queue.is_empty t.pending && not t.repairing then Some (Ok t.serving.id) else None
  in
  Mutex.unlock t.lock;
  r

let emit_event t fields =
  match t.events with
  | None -> ()
  | Some w ->
      (* serialized under [lock]: repair/restart events are written by
         the worker domain with the lock held, so a server-domain event
         can never interleave bytes with them *)
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () -> Jsonl.Writer.write w (Jsonl.obj fields))

(* ---- query path ------------------------------------------------------- *)

let measure_on ep u v =
  (* Churn can disconnect the serving graph, and the scheme's tree
     walks raise once the destination falls outside every structure
     that covers the source.  A long-running daemon answers that
     honestly as non-delivery instead of letting the exception kill
     the session. *)
  let r =
    try ep.scheme.Scheme.route u v
    with Not_found | Invalid_argument _ ->
      { Scheme.walk = [ u ]; delivered = false; phases_used = 0 }
  in
  let checked =
    Simulator.check_walk ep.graph ~src:u ~dst:v ~delivered:r.Scheme.delivered r.Scheme.walk
  in
  let dist = Apsp.distance ep.apsp u v in
  let delivered = Simulator.is_delivered checked.Simulator.outcome in
  let stretch =
    if not delivered then infinity
    else if dist = 0.0 then 1.0
    else checked.Simulator.checked_cost /. dist
  in
  {
    delivered;
    cost = checked.Simulator.checked_cost;
    hops = checked.Simulator.checked_hops;
    stretch;
    walk = r.Scheme.walk;
    dist;
  }

(* Staleness: the serving epoch may lag the live (post-mutation) graph,
   so periodically re-validate an answered walk against the live graph
   and price it against the live shortest path.  A walk that crosses a
   removed edge counts as broken; a valid walk contributes its live
   stretch.  This is the measured cost of answering from the last-good
   epoch instead of blocking on repair (EXPERIMENTS.md methodology). *)
let sample_staleness t ~u ~v ~(ans : answer) =
  if ans.delivered then begin
    Counters.incr t.counters "daemon.stale.samples";
    let checked =
      Simulator.check_walk t.live ~src:u ~dst:v ~delivered:ans.delivered ans.walk
    in
    if not (Simulator.is_delivered checked.Simulator.outcome) then
      Counters.incr t.counters "daemon.stale.broken"
    else begin
      let live_d = (Dijkstra.run t.live u).Dijkstra.dist.(v) in
      let s =
        if live_d = 0.0 then 1.0
        else if live_d = infinity then infinity
        else checked.Simulator.checked_cost /. live_d
      in
      if Float.is_finite s then t.stale_stretch <- s :: t.stale_stretch
    end
  end

let admit t ~backlog =
  let policy = t.cfg.policy in
  if
    match policy.Guard.Policy.shed with
    | None -> false
    | Some cfg -> Guard.Shed.decide cfg ~queued:backlog ~remaining_s:infinity ~est_cost_s:t.est_cost_s
  then Error Guard.Rejection.Shed
  else if match t.breaker with Some br -> not (Guard.Breaker.allow br) | None -> false then
    Error Guard.Rejection.Breaker_open
  else Ok ()

let run_query t f =
  (* one guarded execution: chaos stall, injected transient failures
     under bounded retry, and the per-query deadline *)
  let q = t.qindex in
  t.qindex <- t.qindex + 1;
  let chaos = t.cfg.chaos in
  let policy = t.cfg.policy in
  let t0 = !Guard.Clock.now () in
  let stall = Guard.Chaos.query_stall_s chaos ~q in
  if stall > 0.0 then begin
    Counters.incr t.counters "daemon.chaos.stalls";
    !Guard.Clock.sleep stall
  end;
  let injected = Guard.Chaos.query_fails chaos ~q in
  let qdl = Guard.Deadline.start ?budget_s:policy.Guard.Policy.query_budget_s () in
  let attempts = ref 0 in
  let r =
    Guard.Retry.run policy.Guard.Policy.retry ~key:q (fun ~attempt ->
        incr attempts;
        if attempt <= injected then Error Guard.Rejection.Worker_lost else Ok (f ()))
  in
  Counters.add t.counters "daemon.retries" (!attempts - 1);
  let r =
    match r with
    | Ok _ when Guard.Deadline.expired qdl -> Error Guard.Rejection.Timed_out
    | r -> r
  in
  (match t.breaker with Some br -> Guard.Breaker.record br ~ok:(Result.is_ok r) | None -> ());
  let cost = !Guard.Clock.now () -. t0 in
  t.est_cost_s <-
    (if t.est_cost_s = 0.0 then cost
     else ((1.0 -. est_alpha) *. t.est_cost_s) +. (est_alpha *. cost));
  r

let snapshot t =
  Mutex.lock t.lock;
  let ep = t.serving in
  let bl = Queue.length t.pending + if t.repairing then 1 else 0 in
  Mutex.unlock t.lock;
  (ep, bl)

let cached_measure t ep u v =
  match t.acache with
  | None -> measure_on ep u v
  | Some tt -> (
      let key = (u * Graph.n ep.graph) + v in
      match Ttcache.find tt ~gen:ep.id ~key with
      | Some ans -> ans
      | None ->
          let ans = measure_on ep u v in
          Ttcache.add tt ~gen:ep.id ~key ans;
          ans)

let cached_path t ep u v =
  match t.pcache with
  | None -> Cr_oracle.Path_oracle.path ep.oracle u v
  | Some tt ->
      let cu, cv = (min u v, max u v) in
      let key = (cu * Graph.n ep.graph) + cv in
      let a =
        match Ttcache.find tt ~gen:ep.id ~key with
        | Some a -> a
        | None ->
            let a = Cr_oracle.Path_oracle.path ep.oracle cu cv in
            Ttcache.add tt ~gen:ep.id ~key a;
            a
      in
      if u = cu then a
      else
        (* Path_oracle.path derives the (v, u) walk as the reverse of
           the canonical (min, max) walk, with est/via/levels computed
           on the canonical pair — so this reversal reproduces the
           direct answer byte-for-byte *)
        Option.map
          (fun (ans : Cr_oracle.Path_oracle.answer) ->
            { ans with Cr_oracle.Path_oracle.walk = List.rev ans.Cr_oracle.Path_oracle.walk })
          a

let handle_query t kind u v =
  Counters.incr t.counters "daemon.queries";
  let ep, bl = snapshot t in
  let n = Graph.n ep.graph in
  let name = match kind with `Route -> "route" | `Dist -> "dist" in
  if u < 0 || u >= n || v < 0 || v >= n then
    Printf.sprintf "err %s %d %d: node out of range [0, %d)" name u v n
  else begin
    let verdict =
      match admit t ~backlog:bl with
      | Error r -> Error r
      | Ok () -> run_query t (fun () -> cached_measure t ep u v)
    in
    match verdict with
    | Error rej ->
        Counters.incr t.counters (Guard.Rejection.counter rej);
        Printf.sprintf "err %s %d %d rejected=%s epoch=%d" name u v
          (Guard.Rejection.to_string rej) ep.id
    | Ok ans -> (
        match kind with
        | `Route ->
            Counters.incr t.counters "daemon.routes";
            if t.cfg.staleness_every > 0 && t.qindex mod t.cfg.staleness_every = 0 then
              sample_staleness t ~u ~v ~ans;
            Printf.sprintf "ok route %d %d delivered=%b hops=%d cost=%.6g stretch=%.6g epoch=%d"
              u v ans.delivered ans.hops ans.cost ans.stretch ep.id
        | `Dist ->
            Counters.incr t.counters "daemon.dists";
            Printf.sprintf "ok dist %d %d %.17g epoch=%d" u v ans.dist ep.id)
  end

let handle_path t u v =
  Counters.incr t.counters "daemon.queries";
  let ep, bl = snapshot t in
  let n = Graph.n ep.graph in
  if u < 0 || u >= n || v < 0 || v >= n then
    Printf.sprintf "err path %d %d: node out of range [0, %d)" u v n
  else begin
    let verdict =
      match admit t ~backlog:bl with
      | Error r -> Error r
      | Ok () -> run_query t (fun () -> cached_path t ep u v)
    in
    match verdict with
    | Error rej ->
        Counters.incr t.counters (Guard.Rejection.counter rej);
        Printf.sprintf "err path %d %d rejected=%s epoch=%d" u v
          (Guard.Rejection.to_string rej) ep.id
    | Ok None ->
        Counters.incr t.counters "daemon.paths";
        Printf.sprintf "ok path %d %d unreachable epoch=%d" u v ep.id
    | Ok (Some a) ->
        Counters.incr t.counters "daemon.paths";
        let walk =
          String.concat "-" (List.map string_of_int a.Cr_oracle.Path_oracle.walk)
        in
        Printf.sprintf "ok path %d %d est=%.17g hops=%d via=%d walk=%s epoch=%d" u v
          a.Cr_oracle.Path_oracle.est
          (List.length a.Cr_oracle.Path_oracle.walk - 1)
          a.Cr_oracle.Path_oracle.via walk ep.id
  end

(* ---- mutation path ---------------------------------------------------- *)

let normalized_floor = 1.0 -. 1e-9

let take_snapshot t ~dir ~writer =
  let snap =
    {
      Gio.epoch = epoch_id t;
      journal_records = Journal.records writer;
      journal_offset = Journal.bytes writer;
      graph = t.live;
    }
  in
  match Snapshot.write ~dir snap with
  | _path ->
      t.snapshots <- t.snapshots + 1;
      t.last_snapshot <- Some (snap.Gio.epoch, !Guard.Clock.now ());
      Counters.incr t.counters "daemon.snapshots"
  | exception (Sys_error _ | Unix.Unix_error (_, _, _)) ->
      (* a failed checkpoint must not kill serving; the previous
         checkpoint (and the journal) still stand *)
      Counters.incr t.counters "daemon.snapshot.failures"

let accept_mutation t mu =
  Counters.incr t.counters "daemon.mutations";
  let weight_ok =
    (* the serving scheme requires a normalized graph (min edge weight
       1), so churn must not sneak weights below it *)
    match mu with
    | Graph.Set_weight (_, _, w) | Graph.Link_up (_, _, w) -> w >= normalized_floor
    | Graph.Link_down _ | Graph.Node_down _ | Graph.Node_up _ -> true
  in
  if not weight_ok then begin
    Counters.incr t.counters "daemon.mutations.rejected";
    Printf.sprintf "err mutate %s: weight must be >= 1 (the scheme serves a normalized graph)"
      (Graph.mutation_to_string mu)
  end
  else
    match Graph.apply t.live mu with
    | live ->
        t.live <- live;
        (match t.journal with
        | Some w ->
            (* durability point: [append] returns only once the record
               is flushed per the fsync policy, so the [ok] below never
               acknowledges a mutation a crash could lose *)
            Journal.append w mu;
            Counters.set t.counters "daemon.journal.bytes" (Journal.bytes w);
            (match t.snapshot_dir with
            | Some dir
              when t.cfg.snapshot_every > 0 && Journal.records w mod t.cfg.snapshot_every = 0
              ->
                take_snapshot t ~dir ~writer:w
            | _ -> ())
        | None -> ());
        Mutex.lock t.lock;
        Queue.push mu t.pending;
        let bl = Queue.length t.pending + if t.repairing then 1 else 0 in
        Counters.set t.counters "daemon.backlog" bl;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        Printf.sprintf "ok mutate %s backlog=%d" (Graph.mutation_to_string mu) bl
    | exception Invalid_argument msg ->
        Counters.incr t.counters "daemon.mutations.rejected";
        Printf.sprintf "err mutate %s: %s" (Graph.mutation_to_string mu) msg

(* ---- stats ------------------------------------------------------------ *)

let percentiles xs =
  match xs with
  | [] -> (0.0, 0.0, 0.0)
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      (Stats.percentile a 0.5, Stats.percentile a 0.95, Stats.percentile a 0.99)

let cache_sum t f =
  let one = function None -> 0 | Some tt -> f (Ttcache.stats tt) in
  one t.acache + one t.pcache

let stats_json t =
  let ep, bl = snapshot t in
  Mutex.lock t.lock;
  let repair_s = t.repair_s and stale = t.stale_stretch in
  let poisoned = t.poisoned and repairing = t.repairing in
  Mutex.unlock t.lock;
  let rp50, rp95, rp99 = percentiles repair_s in
  let sp50, sp95, sp99 = percentiles stale in
  let c name = Counters.get t.counters name in
  Jsonl.obj
    [
      ("epoch", Jsonl.int ep.id);
      ("backlog", Jsonl.int bl);
      ("repairing", Jsonl.bool repairing);
      ("poisoned", match poisoned with None -> "null" | Some m -> Jsonl.str m);
      ("n", Jsonl.int (Graph.n ep.graph));
      ("m_epoch", Jsonl.int (Graph.m ep.graph));
      ("m_live", Jsonl.int (Graph.m t.live));
      ("queries", Jsonl.int (c "daemon.queries"));
      ("routes", Jsonl.int (c "daemon.routes"));
      ("dists", Jsonl.int (c "daemon.dists"));
      ("paths", Jsonl.int (c "daemon.paths"));
      ("oracle_entries", Jsonl.int (Cr_oracle.Path_oracle.size_entries ep.oracle));
      ( "cache",
        Jsonl.int (match t.acache with Some tt -> Ttcache.capacity tt | None -> 0) );
      ("cache_hits", Jsonl.int (cache_sum t (fun s -> s.Ttcache.hits)));
      ("cache_misses", Jsonl.int (cache_sum t (fun s -> s.Ttcache.misses)));
      ("cache_aged", Jsonl.int (cache_sum t (fun s -> s.Ttcache.aged)));
      ( "cache_hit_rate",
        Jsonl.float
          (Stats.ratio
             (cache_sum t (fun s -> s.Ttcache.hits))
             (cache_sum t (fun s -> s.Ttcache.hits) + cache_sum t (fun s -> s.Ttcache.misses))) );
      ("mutations", Jsonl.int (c "daemon.mutations"));
      ("mutations_rejected", Jsonl.int (c "daemon.mutations.rejected"));
      ("repairs", Jsonl.int (c "daemon.repairs"));
      ("repair_sources", Jsonl.int (c "daemon.repair.sources"));
      ("repair_ms_p50", Jsonl.float (1e3 *. rp50));
      ("repair_ms_p95", Jsonl.float (1e3 *. rp95));
      ("repair_ms_p99", Jsonl.float (1e3 *. rp99));
      ("timed_out", Jsonl.int (c "guard.timeouts"));
      ("shed", Jsonl.int (c "guard.sheds"));
      ("breaker_open", Jsonl.int (c "guard.breaker_opens"));
      ("worker_lost", Jsonl.int (c "guard.worker_lost"));
      ("retries", Jsonl.int (c "daemon.retries"));
      ("stale_samples", Jsonl.int (c "daemon.stale.samples"));
      ("stale_broken", Jsonl.int (c "daemon.stale.broken"));
      ("stale_stretch_p50", Jsonl.float sp50);
      ("stale_stretch_p95", Jsonl.float sp95);
      ("stale_stretch_p99", Jsonl.float sp99);
      (* durability state: what an operator needs to judge what a crash
         right now would cost (DESIGN.md §10) *)
      ( "fsync",
        match t.journal with
        | None -> "null"
        | Some _ -> Jsonl.str (Journal.fsync_to_string t.cfg.fsync) );
      ("journal_bytes", Jsonl.int (match t.journal with Some w -> Journal.bytes w | None -> 0));
      ( "fsync_failures",
        Jsonl.int (match t.journal with Some w -> Journal.fsync_failures w | None -> 0) );
      ( "journal_records",
        Jsonl.int (match t.journal with Some w -> Journal.records w | None -> 0) );
      ("snapshots", Jsonl.int t.snapshots);
      ( "last_snapshot_epoch",
        match t.last_snapshot with Some (e, _) -> Jsonl.int e | None -> "null" );
      ( "last_snapshot_age_s",
        match t.last_snapshot with
        | Some (_, at) -> Jsonl.float (!Guard.Clock.now () -. at)
        | None -> "null" );
      ("repair_restarts", Jsonl.int (c "daemon.repair.restarts"));
      ("recovered", Jsonl.bool (t.recovered <> None));
      ( "recovery_snapshot_epoch",
        match t.recovered with Some { snapshot_epoch = Some e; _ } -> Jsonl.int e | _ -> "null"
      );
      ("recovery_replayed", Jsonl.int (match t.recovered with Some r -> r.replayed | None -> 0));
      ( "recovery_truncated_bytes",
        Jsonl.int (match t.recovered with Some r -> r.truncated_bytes | None -> 0) );
      ("recovery_s", match t.recovered with Some r -> Jsonl.float r.recovery_s | None -> "null");
    ]

(* ---- the protocol surface --------------------------------------------- *)

let sync_response = function
  | Ok id -> Printf.sprintf "ok sync epoch=%d backlog=0" id
  | Error msg -> Printf.sprintf "err sync repair poisoned: %s" msg

(* [handle_line] is the transport-independent dispatch: the line number
   is the caller's, so every socket connection numbers its own session
   from 1, and a [quit] is reported back instead of flipping global
   state — one client quitting must not take down its neighbors. *)
let handle_line t ~lineno line =
  match Protocol.parse ~lineno line with
  | Ok None -> ([], false)
  | Error msg ->
      Counters.incr t.counters "daemon.parse_errors";
      ([ "err " ^ msg ], false)
  | Ok (Some cmd) -> (
      match cmd with
      | Protocol.Route (u, v) -> ([ handle_query t `Route u v ], false)
      | Protocol.Dist (u, v) -> ([ handle_query t `Dist u v ], false)
      | Protocol.Path (u, v) -> ([ handle_path t u v ], false)
      | Protocol.Mutate mu -> ([ accept_mutation t mu ], false)
      | Protocol.Sync -> ([ sync_response (sync t) ], false)
      | Protocol.Stats -> ([ "ok stats " ^ stats_json t ], false)
      | Protocol.Epoch ->
          let ep, bl = snapshot t in
          ([ Printf.sprintf "ok epoch %d backlog=%d" ep.id bl ], false)
      | Protocol.Help ->
          ( List.map (fun (spell, doc) -> Printf.sprintf "ok help %s -- %s" spell doc)
              Protocol.grammar,
            false )
      | Protocol.Quit -> ([ "ok bye" ], true))

let handle t line =
  t.lineno <- t.lineno + 1;
  let responses, quit = handle_line t ~lineno:t.lineno line in
  if quit then t.quit <- true;
  responses

let serve_loop t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        let responses = handle t line in
        List.iter
          (fun r ->
            output_string oc r;
            output_char oc '\n')
          responses;
        flush oc;
        if not t.quit then loop ()
  in
  loop ()
