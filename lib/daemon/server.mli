(** Fault-tolerant multi-client socket front end for the daemon.

    A single-threaded [Unix.select] event loop multiplexes many
    concurrent connections onto one {!Daemon.t} — which is exactly what
    makes it safe: the daemon's dispatch is designed for one caller, and
    the event loop {e is} that caller.  Per-connection semantics:

    - {b admission}: beyond [max_conns] active connections a new client
      is shed with a structured [err busy] line and closed — accepted
      work is never silently dropped, refused work is never accepted;
    - {b sessions}: each connection numbers its own protocol lines from
      1 and owns its [quit] (closing one session never affects another);
    - {b slow-loris defense}: a connection idle longer than
      [idle_timeout_s] is told [err idle] and closed;
    - {b backpressure}: responses queue per connection, bounded by
      [write_queue_max] bytes — a slow reader stops being read from
      (stalling only itself) until its queue drains; the accept loop and
      other clients never block on it;
    - {b torn input}: a client dying mid-line is closed as
      [disconnected]; the partial line is discarded, the daemon and the
      other sessions are untouched;
    - {b request bound}: a line longer than [max_line] bytes gets a
      structured [err line N too long] and the connection is closed;
    - {b sync}: a [sync] command parks the connection
      ({!Daemon.poll_sync} each tick) instead of blocking the loop;
    - {b drain}: {!stop} (wired to SIGTERM/SIGINT by [crt daemon])
      closes the listener, stops reading, finishes in-flight responses
      up to [drain_s] seconds, then force-closes stragglers as
      [timed-out] and returns from {!run}.

    Every connection ends in exactly one {!outcome}, and the outcome
    counters in {!stats} reconcile exactly against the number of
    accepted connections — the invariant the tests pin.

    Network fault injection ([--netchaos]) delays, shortens/tears and
    cuts response writes deterministically: every decision is a pure
    function of [(netchaos seed, connection id, request index)], so a
    chaotic run is replayable. *)

(** {2 Listen addresses} *)

type addr =
  | Tcp of string * int  (** host, port (0 = kernel-assigned) *)
  | Unix_path of string

val addr_of_string : string -> (addr, string) result
(** Parses [[HOST:]PORT] (host defaults to 127.0.0.1) or [unix:PATH]. *)

val addr_to_string : addr -> string

(** {2 Deterministic network chaos} *)

type netchaos

val no_netchaos : netchaos

val netchaos :
  ?label:string ->
  seed:int ->
  ?delay_rate:float ->
  ?delay_s:float ->
  ?short_rate:float ->
  ?drop_rate:float ->
  unit ->
  netchaos
(** [delay_rate] of responses are held back [delay_s] before any byte
    is written; [short_rate] are dribbled out a few bytes per tick
    (short/torn writes); [drop_rate] of requests cut the connection
    after a partial response write (mid-request disconnect).  All rates
    default to 0. *)

val netchaos_of_string : seed:int -> string -> (netchaos, string) result
(** Presets: [none], [slow] (delays), [torn] (short writes), [rude]
    (mid-request disconnects), [net] (all three). *)

val netchaos_label : netchaos -> string

(** {2 Server} *)

type config = {
  max_conns : int;  (** admission cap; beyond it clients are shed with [err busy] *)
  max_line : int;  (** request-line byte bound; beyond it [err line too long] + close *)
  idle_timeout_s : float;  (** read deadline / idle timeout (0 disables) *)
  write_queue_max : int;  (** per-connection response-queue bound in bytes *)
  drain_s : float;  (** drain deadline: how long {!stop} waits for in-flight flushes *)
  nc : netchaos;
}

val default_config : config
(** 64 connections, 4096-byte lines, 30 s idle timeout, 256 KiB write
    queues, 5 s drain, no netchaos. *)

(** How a connection ended.  Exactly one per accepted connection:
    [served + shed + timed_out + disconnected = conns_total] once
    {!run} returns. *)
type outcome =
  | Served  (** clean end: [quit], or EOF with no partial line pending *)
  | Shed  (** refused at admission with [err busy] *)
  | Timed_out  (** idle deadline, or force-closed at the drain deadline *)
  | Disconnected
      (** peer vanished: reset, died mid-line, oversized request, or a
          netchaos-injected cut *)

val outcome_to_string : outcome -> string

(** Mutable counters, readable at any time and final once {!run}
    returns. *)
type stats = {
  mutable conns_total : int;  (** accepted connections, shed included *)
  mutable served : int;
  mutable shed : int;
  mutable timed_out : int;
  mutable disconnected : int;
  mutable lines : int;  (** complete request lines handled *)
  mutable responses : int;  (** response lines queued *)
  mutable oversized : int;  (** closes due to an over-length line *)
  mutable torn : int;  (** EOFs that arrived mid-line *)
  mutable chaos_delays : int;
  mutable chaos_shorts : int;
  mutable chaos_drops : int;
  mutable drained : bool;  (** {!stop} was requested and the drain ran *)
}

type t

val create : ?config:config -> Daemon.t -> addr -> t
(** Binds and listens (unlinking a stale unix-socket path, reusing TCP
    addresses).  SIGPIPE is ignored process-wide — a peer closing
    mid-write must surface as [EPIPE], not kill the daemon.
    @raise Unix.Unix_error when the address cannot be bound. *)

val addr : t -> addr
(** The bound address — with the kernel-assigned port resolved, so
    [Tcp (host, 0)] callers learn where the server actually listens. *)

val stats : t -> stats

val stats_json : t -> string
(** One strict-JSON object over {!stats} plus the netchaos label. *)

val stop : t -> unit
(** Request a graceful drain; safe to call from a signal handler or
    another domain (it only sets an atomic flag — the event loop
    notices within one tick). *)

val run : t -> unit
(** The event loop: serves until {!stop}, then drains and returns.
    Emits [conn]/[drain]/[server_stats] events through the daemon's
    events stream.  The caller still owns {!Daemon.close}. *)
