(** Long-running route daemon: online churn with incremental
    self-healing repair.

    The daemon answers [route]/[dist] queries from an immutable
    last-good {e epoch} — a [(graph, ground truth, scheme)] triple
    swapped whole under a mutex, never torn — while accepted mutations
    queue for a background repair domain.  Repair is incremental at the
    ground-truth layer ({!Cr_graph.Apsp.repair_mutation} recomputes
    only dirty sources, chained one mutation at a time) and
    deterministic at the scheme layer (a rebuild over the repaired
    ground truth, bit-equivalent to a from-scratch build at the final
    graph — DESIGN.md §9).  Queries are never blocked by repair: they
    are admitted through the guard stack (shed on repair backlog,
    breaker, per-query deadline, bounded retry under chaos injection)
    and answered from the serving epoch, with the resulting staleness
    measured rather than hidden (answers are periodically re-priced
    against the live post-mutation graph).

    Thread model: {!handle} is called from one client thread; the
    repair worker is one background domain.  If the worker dies, the
    daemon is {e poisoned}: queries keep being served from the
    last-good epoch and [sync] reports the failure instead of
    hanging. *)

type t

type config = {
  params : Compact_routing.Params.t;
  policy : Cr_guard.Policy.t;
  chaos : Cr_guard.Chaos.t;
  staleness_every : int;
  repair_hook : (unit -> unit) option;
  fsync : Journal.fsync;
  snapshot_every : int;
  restart_backoff : Cr_guard.Backoff.t;
}

(** What startup recovery found and did (DESIGN.md §10). *)
type recovery = {
  snapshot_epoch : int option;  (** epoch of the checkpoint used, if any *)
  snapshots_skipped : int;  (** newer checkpoints rejected as corrupt *)
  replayed : int;  (** journal records replayed past the checkpoint *)
  truncated_bytes : int;  (** torn/corrupt journal tail cut off *)
  truncated_line : int option;
  recovery_s : float;  (** wall time from [create] to a serving epoch *)
}

val create :
  ?policy:Cr_guard.Policy.t ->
  ?chaos:Cr_guard.Chaos.t ->
  ?staleness_every:int ->
  ?fsync:Journal.fsync ->
  ?journal:string ->
  ?snapshot_dir:string ->
  ?snapshot_every:int ->
  ?recover:bool ->
  ?restart_backoff:Cr_guard.Backoff.t ->
  ?events:string ->
  ?repair_hook:(unit -> unit) ->
  ?counters:Cr_obs.Counters.t ->
  ?cache:int ->
  params:Compact_routing.Params.t ->
  Cr_graph.Graph.t ->
  t
(** Builds epoch 0 (parallel APSP + AGM06 scheme) over the graph — which
    must be normalized, as {!Compact_routing.Agm06.build} requires — and
    spawns the repair domain.  [policy] defaults to
    [Cr_guard.Policy.serving], [chaos] to none.  [staleness_every]
    samples every Nth route answer against the live graph (0 disables;
    default 32).

    Durability: [journal] logs every accepted mutation as a checksummed
    {!Journal} record, made durable per [fsync] (default
    {!Journal.fsync.Every}) {e before} the [ok] reply — an acknowledged
    mutation survives a crash.  [snapshot_dir] additionally writes an
    atomic {!Snapshot} checkpoint every [snapshot_every] (default 64)
    journaled mutations (requires [journal]).  [~recover:true] starts
    from the newest valid checkpoint in [snapshot_dir] plus the valid
    journal suffix — truncating a torn tail — instead of the given
    graph, reopening the journal in append mode; the given graph is the
    base when nothing was persisted yet.  {!recovery} reports what was
    found.  [restart_backoff] supervises the repair domain: a failed
    batch is requeued and retried under capped exponential backoff
    (default {!Cr_guard.Backoff.repair}); only
    [restart_backoff.max_restarts] consecutive failures poison it.

    [events] streams one strict-JSON repair event per batch through
    {!Cr_util.Jsonl.Writer}.  [repair_hook] is a test seam: the repair
    worker calls it after claiming a batch and before the epoch swap,
    so a test can prove queries are answered mid-repair (and, raising,
    that supervision restarts the worker).

    [cache] (entries; default 0 = off) enables two shared lock-free
    answer caches ({!Cr_util.Ttcache}) whose generation is the serving
    epoch id: [route]/[dist] answers keyed by directed pair, [path]
    answers keyed by canonical [(min, max)] pair and reversed on the
    way out.  An epoch swap invalidates both in O(1) — old-generation
    entries never match — so answers after [sync] are byte-identical
    with the cache on or off.
    @raise Invalid_argument on a negative [staleness_every],
    [snapshot_every] or [cache], a [snapshot_dir] without [journal], or
    an unnormalized graph. *)

val recovery : t -> recovery option
(** [Some _] iff this daemon was created with [~recover:true]. *)

val handle : t -> string -> string list
(** Processes one protocol line, returning the response lines (each
    starting [ok ] or [err ]; empty for blanks and comments).  Counts
    input lines internally so parse errors carry the session's 1-based
    line number. *)

val handle_line : t -> lineno:int -> string -> string list * bool
(** Transport-independent dispatch: like {!handle} but the caller owns
    the session's line numbering (each socket connection counts its own
    lines from 1), and a [quit] command is reported as the [true] flag
    instead of setting {!quitting} — so one connection quitting never
    affects another.  {!handle} is [handle_line] over an internal
    counter plus the {!quitting} flip. *)

val quitting : t -> bool
(** Set once a [quit] command was handled. *)

val serve_loop : t -> in_channel -> out_channel -> unit
(** Reads lines until EOF or [quit], writing and flushing responses —
    the whole transport of [crt daemon].  Call {!close} afterwards. *)

val sync : t -> (int, string) result
(** Blocks until every queued mutation is repaired; [Ok epoch_id], or
    [Error msg] if the repair worker is poisoned. *)

val poll_sync : t -> (int, string) result option
(** Non-blocking {!sync}: [Some] of what [sync] would return right now
    (backlog drained, or poisoned), [None] while repair is still
    running.  The socket server parks a connection that issued [sync]
    and polls this each event-loop tick, so one syncing client never
    stalls the others. *)

val sync_response : (int, string) result -> string
(** The protocol line for a {!sync}/{!poll_sync} result — shared by
    {!handle_line} and the socket server so a deferred sync answers
    byte-identically to a blocking one. *)

val emit_event : t -> (string * string) list -> unit
(** Write one strict-JSON object to the [events] stream (no-op without
    one), serialized against the repair worker's own events.  The
    socket server uses this for connection-lifecycle and drain
    events. *)

val epoch_id : t -> int

val backlog : t -> int
(** Queued mutations plus the batch currently being repaired. *)

val live_graph : t -> Cr_graph.Graph.t
(** The graph with every accepted mutation applied (what repair is
    converging to). *)

val counters : t -> Cr_obs.Counters.t
(** The [daemon.*] / [guard.*] counters. *)

val repair_times_s : t -> float list
(** Per-batch repair wall times, oldest first — the raw series behind
    the stats percentiles (benches compute their own). *)

val stats_json : t -> string
(** One strict-JSON object: epoch, backlog, query/mutation/repair
    totals, repair latency percentiles, staleness measurements, and
    durability state (fsync policy, journal size, snapshot age,
    recovery summary). *)

val close : t -> unit
(** Stops and joins the repair worker, flushes and closes the journal
    (fsyncing unless the policy is [Off]) and the event writer.  Safe
    to call once the serve loop has returned. *)

val crash : t -> unit
(** Unclean-death seam for tests: stops the worker but {e abandons}
    the journal ({!Journal.abandon} — buffered unflushed bytes are
    lost, as on SIGKILL).  The on-disk state afterwards is what a real
    crash at this point would have left; recover with
    [create ~recover:true]. *)
