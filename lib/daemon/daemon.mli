(** Long-running route daemon: online churn with incremental
    self-healing repair.

    The daemon answers [route]/[dist] queries from an immutable
    last-good {e epoch} — a [(graph, ground truth, scheme)] triple
    swapped whole under a mutex, never torn — while accepted mutations
    queue for a background repair domain.  Repair is incremental at the
    ground-truth layer ({!Cr_graph.Apsp.repair_mutation} recomputes
    only dirty sources, chained one mutation at a time) and
    deterministic at the scheme layer (a rebuild over the repaired
    ground truth, bit-equivalent to a from-scratch build at the final
    graph — DESIGN.md §9).  Queries are never blocked by repair: they
    are admitted through the guard stack (shed on repair backlog,
    breaker, per-query deadline, bounded retry under chaos injection)
    and answered from the serving epoch, with the resulting staleness
    measured rather than hidden (answers are periodically re-priced
    against the live post-mutation graph).

    Thread model: {!handle} is called from one client thread; the
    repair worker is one background domain.  If the worker dies, the
    daemon is {e poisoned}: queries keep being served from the
    last-good epoch and [sync] reports the failure instead of
    hanging. *)

type t

type config = {
  params : Compact_routing.Params.t;
  policy : Cr_guard.Policy.t;
  chaos : Cr_guard.Chaos.t;
  staleness_every : int;
  repair_hook : (unit -> unit) option;
}

val create :
  ?policy:Cr_guard.Policy.t ->
  ?chaos:Cr_guard.Chaos.t ->
  ?staleness_every:int ->
  ?journal:string ->
  ?events:string ->
  ?repair_hook:(unit -> unit) ->
  ?counters:Cr_obs.Counters.t ->
  params:Compact_routing.Params.t ->
  Cr_graph.Graph.t ->
  t
(** Builds epoch 0 (parallel APSP + AGM06 scheme) over the graph — which
    must be normalized, as {!Compact_routing.Agm06.build} requires — and
    spawns the repair domain.  [policy] defaults to
    [Cr_guard.Policy.serving], [chaos] to none.  [staleness_every]
    samples every Nth route answer against the live graph (0 disables;
    default 32).  [journal] appends every accepted mutation to a file in
    the {!Cr_graph.Gio} mutation-log format, flushed per line, so a
    crashed session replays exactly.  [events] streams one strict-JSON
    repair event per batch through {!Cr_util.Jsonl.Writer}.
    [repair_hook] is a test seam: the repair worker calls it after
    claiming a batch and before the epoch swap, so a test can prove
    queries are answered mid-repair.
    @raise Invalid_argument on a negative [staleness_every] or an
    unnormalized graph. *)

val handle : t -> string -> string list
(** Processes one protocol line, returning the response lines (each
    starting [ok ] or [err ]; empty for blanks and comments).  Counts
    input lines internally so parse errors carry the session's 1-based
    line number. *)

val quitting : t -> bool
(** Set once a [quit] command was handled. *)

val serve_loop : t -> in_channel -> out_channel -> unit
(** Reads lines until EOF or [quit], writing and flushing responses —
    the whole transport of [crt daemon].  Call {!close} afterwards. *)

val sync : t -> (int, string) result
(** Blocks until every queued mutation is repaired; [Ok epoch_id], or
    [Error msg] if the repair worker is poisoned. *)

val epoch_id : t -> int

val backlog : t -> int
(** Queued mutations plus the batch currently being repaired. *)

val live_graph : t -> Cr_graph.Graph.t
(** The graph with every accepted mutation applied (what repair is
    converging to). *)

val counters : t -> Cr_obs.Counters.t
(** The [daemon.*] / [guard.*] counters. *)

val stats_json : t -> string
(** One strict-JSON object: epoch, backlog, query/mutation/repair
    totals, repair latency percentiles and staleness measurements. *)

val close : t -> unit
(** Stops and joins the repair worker and closes the journal and event
    writers.  Safe to call once the serve loop has returned. *)
