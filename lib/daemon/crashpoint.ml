(* Deterministic crash injection for the persist path.

   Durability claims are only as good as the crashes they were tested
   against, so the daemon's persist path is instrumented with *named*
   injection points: [hit] is called at each one, and an armed
   crashpoint fires its action on the Nth hit of its site.  Tests arm
   [arm_raise] (the action raises {!Crashed}, the test catches it and
   recovers from the on-disk state); the CLI arms [arm_kill] (the
   process delivers SIGKILL to itself — a real unflushed, unhandled
   death, which is exactly what the recovery invariant must survive).

   One crashpoint is armed at a time, process-global: the persist path
   runs on the daemon's single handle thread, and a crash simulation
   makes no sense concurrently with itself. *)

type site =
  | Pre_flush  (* journal record buffered, not yet flushed: the ack was never sent, the bytes may be lost *)
  | Post_flush_pre_ack  (* record durable per the fsync policy, ack not yet sent *)
  | Mid_snapshot  (* snapshot temp file fully written, rename pending *)
  | Post_rename  (* snapshot renamed into place, directory entry not yet fsynced *)

let all = [ Pre_flush; Post_flush_pre_ack; Mid_snapshot; Post_rename ]

let to_string = function
  | Pre_flush -> "pre-flush"
  | Post_flush_pre_ack -> "post-flush-pre-ack"
  | Mid_snapshot -> "mid-snapshot"
  | Post_rename -> "post-rename"

let of_string = function
  | "pre-flush" -> Some Pre_flush
  | "post-flush-pre-ack" -> Some Post_flush_pre_ack
  | "mid-snapshot" -> Some Mid_snapshot
  | "post-rename" -> Some Post_rename
  | _ -> None

exception Crashed of site

let () =
  Printexc.register_printer (function
    | Crashed site -> Some (Printf.sprintf "Crashpoint.Crashed(%s)" (to_string site))
    | _ -> None)

type armed = { site : site; mutable remaining : int; action : site -> unit }

let state : armed option ref = ref None

let arm ?(after = 1) ~action site =
  if after < 1 then invalid_arg "Crashpoint.arm: after must be >= 1";
  state := Some { site; remaining = after; action }

let arm_raise ?after site = arm ?after ~action:(fun s -> raise (Crashed s)) site

let arm_kill ?after site =
  (* a genuine SIGKILL: no at_exit, no channel flushing, exit status 137
     — indistinguishable from kill -9 by the restarted process *)
  arm ?after
    ~action:(fun _ ->
      (try Unix.kill (Unix.getpid ()) Sys.sigkill with Unix.Unix_error _ -> ());
      exit 137)
    site

let disarm () = state := None

let hit site =
  match !state with
  | Some a when a.site = site ->
      a.remaining <- a.remaining - 1;
      if a.remaining <= 0 then begin
        (* disarm before firing so a raising action cannot re-fire *)
        state := None;
        a.action site
      end
  | _ -> ()
