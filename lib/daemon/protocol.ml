module Graph = Cr_graph.Graph
module Gio = Cr_graph.Gio

type command =
  | Route of int * int
  | Dist of int * int
  | Path of int * int
  | Mutate of Graph.mutation
  | Sync
  | Stats
  | Epoch
  | Help
  | Quit

let grammar =
  [
    ("route U V", "route a message from node U to node V on the serving epoch");
    ("dist U V", "serving-epoch distance between U and V");
    ("path U V", "oracle path from U to V on the serving epoch (estimate + walk)");
    ("setw U V W", "reweight the existing edge (U,V) to W");
    ("linkdown U V", "remove the existing edge (U,V)");
    ("linkup U V W", "insert the missing edge (U,V) with weight W");
    ("nodedown U", "crash node U: remove every incident edge");
    ("nodeup U", "recover node U (isolated; re-link with linkup)");
    ("sync", "block until every queued mutation is repaired");
    ("stats", "one strict-JSON line of daemon metrics");
    ("epoch", "serving epoch id and repair backlog");
    ("help", "this summary");
    ("quit", "shut the daemon down");
  ]

let parse ~lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    let tokens = String.split_on_char ' ' line |> List.filter (fun t -> t <> "") in
    let node what tok =
      match int_of_string_opt tok with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "line %d: malformed %s %S (expected an integer)" lineno what tok)
    in
    let pair ctor su sv =
      Result.bind (node "source" su) (fun u ->
          Result.map (fun v -> Some (ctor u v)) (node "destination" sv))
    in
    match tokens with
    | [ "route"; su; sv ] -> pair (fun u v -> Route (u, v)) su sv
    | [ "dist"; su; sv ] -> pair (fun u v -> Dist (u, v)) su sv
    | [ "path"; su; sv ] -> pair (fun u v -> Path (u, v)) su sv
    | ("setw" | "linkdown" | "linkup" | "nodedown" | "nodeup") :: _ -> (
        (* shared grammar with the journal: the daemon's wire spelling
           and [Gio]'s mutation-log spelling cannot drift apart *)
        try Ok (Some (Mutate (Gio.mutation_of_tokens ~lineno tokens)))
        with Gio.Parse_error (l, msg) -> Error (Printf.sprintf "line %d: %s" l msg))
    | [ "sync" ] -> Ok (Some Sync)
    | [ "stats" ] -> Ok (Some Stats)
    | [ "epoch" ] -> Ok (Some Epoch)
    | [ "help" ] -> Ok (Some Help)
    | [ "quit" ] | [ "exit" ] -> Ok (Some Quit)
    | ("route" | "dist" | "path" | "sync" | "stats" | "epoch" | "help" | "quit" | "exit") :: _ ->
        Error
          (Printf.sprintf "line %d: wrong number of fields for %S command" lineno
             (List.hd tokens))
    | tok :: _ -> Error (Printf.sprintf "line %d: unknown command %S (try help)" lineno tok)
    | [] -> Ok None
