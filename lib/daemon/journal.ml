module Graph = Cr_graph.Graph
module Gio = Cr_graph.Gio
module Crc = Cr_util.Crc

(* The daemon's durable mutation log.

   PR 6's journal was a bare out_channel of mutation lines: replayable,
   but with no way to tell a torn final write from corruption, and no
   stated durability point.  This module gives each record a CRC32 and
   a sequence number, and pins the contract the daemon acks against:
   [append] returns only once the record is flushed per the fsync
   policy, so an [ok mutate] reply means the mutation survives a crash
   of the process ([Off]/[Batch]: OS buffer) or of the machine
   ([Every]: fsync'd).

   Record format, one per line (comments and blanks allowed):

     r <crc32hex> <seq> <mutation>

   with the CRC taken over "<seq> <mutation>".  Legacy journals (bare
   mutation lines, the PR 6 format) still load.  The reader stops at
   the first invalid record — torn tail, checksum mismatch, bad
   sequence — and reports it as a *truncation point*, never an
   exception: an interrupted append damages at most the record being
   written, and everything before it is intact by construction. *)

type fsync = Every | Batch of int | Off

let fsync_to_string = function
  | Every -> "every"
  | Batch n -> Printf.sprintf "batch:%d" n
  | Off -> "off"

let default_batch = 32

let fsync_of_string s =
  match String.split_on_char ':' s with
  | [ "every" ] -> Ok Every
  | [ "off" ] -> Ok Off
  | [ "batch" ] -> Ok (Batch default_batch)
  | [ "batch"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (Batch n)
      | _ -> Error (Printf.sprintf "bad batch interval %S (expected an integer >= 1)" n))
  | _ -> Error (Printf.sprintf "unknown fsync policy %S (try every, batch[:N] or off)" s)

(* ---- writer ----------------------------------------------------------- *)

type writer = {
  path : string;
  oc : out_channel;
  fd : Unix.file_descr;
  fsync : fsync;
  mutable records : int;  (* seq of the last record written *)
  mutable bytes : int;  (* file offset after the last append *)
  mutable unsynced : int;  (* records since the last fsync (Batch) *)
  mutable fsync_failures : int;
  mutable closed : bool;
}

let header = "# crt journal v2: r <crc32hex> <seq> <mutation>"

let create ?(fsync = Every) ?(append = false) ?(seq = 0) path =
  let flags =
    if append then [ Open_wronly; Open_append; Open_creat ]
    else [ Open_wronly; Open_trunc; Open_creat ]
  in
  let oc = open_out_gen flags 0o644 path in
  let fd = Unix.descr_of_out_channel oc in
  let bytes = if append then (Unix.fstat fd).Unix.st_size else 0 in
  let w =
    { path; oc; fd; fsync; records = seq; bytes; unsynced = 0; fsync_failures = 0;
      closed = false }
  in
  if not append then begin
    output_string oc (header ^ "\n");
    flush oc;
    w.bytes <- String.length header + 1
  end;
  w

let path w = w.path

let records w = w.records

let bytes w = w.bytes

let fsync_hook : (Unix.file_descr -> unit) ref = ref Unix.fsync

let fsync_failures w = w.fsync_failures

let do_fsync w =
  (* a failed fsync breaks the promise the next [ok] reply makes: the
     record may not survive a machine crash.  Swallowing it silently
     (the pre-PR-10 behavior) turned that into an invisible durability
     hole, so every failure is counted (surfaced in daemon stats) and
     warned about on stderr.  Serving continues: the record is still in
     the OS buffer, so process death alone loses nothing. *)
  try !fsync_hook w.fd
  with Unix.Unix_error (err, _, _) ->
    w.fsync_failures <- w.fsync_failures + 1;
    Printf.eprintf
      "crt: journal %s: fsync failed: %s (acked mutations may not survive a machine crash)\n%!"
      w.path (Unix.error_message err)

let append w mu =
  if w.closed then invalid_arg "Journal.append: writer is closed";
  let seq = w.records + 1 in
  let payload = Printf.sprintf "%d %s" seq (Graph.mutation_to_string mu) in
  let line = Printf.sprintf "r %s %s\n" (Crc.to_hex (Crc.string payload)) payload in
  output_string w.oc line;
  Crashpoint.hit Crashpoint.Pre_flush;
  flush w.oc;
  (match w.fsync with
  | Every -> do_fsync w
  | Batch n ->
      w.unsynced <- w.unsynced + 1;
      if w.unsynced >= n then begin
        do_fsync w;
        w.unsynced <- 0
      end
  | Off -> ());
  w.records <- seq;
  w.bytes <- w.bytes + String.length line;
  Crashpoint.hit Crashpoint.Post_flush_pre_ack

let sync w =
  if not w.closed then begin
    flush w.oc;
    do_fsync w;
    w.unsynced <- 0
  end

let close w =
  if not w.closed then begin
    flush w.oc;
    (match w.fsync with Every | Batch _ -> do_fsync w | Off -> ());
    w.closed <- true;
    close_out w.oc
  end

let abandon w =
  (* simulated SIGKILL: drop the channel buffer on the floor and close
     the descriptor — whatever was not yet flushed never reaches disk,
     exactly as if the process had died.  The out_channel is left
     unflushed on purpose; exit-time flush_all ignores the dead fd. *)
  if not w.closed then begin
    w.closed <- true;
    try Unix.close w.fd with Unix.Unix_error _ -> ()
  end

(* ---- reader ----------------------------------------------------------- *)

type truncation = { lineno : int; byte : int; reason : string }

type read_result = {
  mutations : Graph.mutation list;
  read_records : int;
  valid_bytes : int;
  truncation : truncation option;
}

let load ?(offset = 0) ?expect_seq path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let len = String.length text in
  if offset > len then
    {
      mutations = [];
      read_records = 0;
      valid_bytes = len;
      truncation =
        Some
          {
            lineno = 1;
            byte = len;
            reason = Printf.sprintf "journal is %d bytes, shorter than offset %d" len offset;
          };
    }
  else begin
    let mutations = ref [] in
    let read_records = ref 0 in
    let valid = ref offset in
    let next_seq = ref expect_seq in
    let truncation = ref None in
    let pos = ref offset in
    let lineno = ref 1 in
    let stop ~byte reason = truncation := Some { lineno = !lineno; byte; reason } in
    let record line =
      (* checksummed records dispatch on the "r " prefix (no mutation
         keyword collides); anything else is a legacy bare mutation *)
      match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
      | "r" :: hex :: ((_ :: _ :: _ as payload_toks)) -> (
          let payload = String.concat " " payload_toks in
          match Crc.of_hex hex with
          | None -> Error (Printf.sprintf "malformed record checksum %S" hex)
          | Some expected ->
              let actual = Crc.string payload in
              if actual <> expected then
                Error
                  (Printf.sprintf
                     "record checksum mismatch (header %s, payload %s): torn or corrupt write"
                     hex (Crc.to_hex actual))
              else begin
                let seq_tok = List.hd payload_toks in
                match int_of_string_opt seq_tok with
                | None -> Error (Printf.sprintf "malformed record sequence %S" seq_tok)
                | Some seq -> (
                    match !next_seq with
                    | Some e when seq <> e ->
                        Error (Printf.sprintf "record sequence %d, expected %d" seq e)
                    | _ -> (
                        match
                          Gio.mutation_of_tokens ~lineno:!lineno (List.tl payload_toks)
                        with
                        | mu ->
                            next_seq := Some (seq + 1);
                            Ok mu
                        | exception Gio.Parse_error (_, msg) -> Error msg))
              end)
      | "r" :: _ -> Error "wrong number of fields for checksummed record"
      | _ -> (
          match Gio.mutation_of_string ~lineno:!lineno line with
          | mu ->
              next_seq := Option.map (fun e -> e + 1) !next_seq;
              Ok mu
          | exception Gio.Parse_error (_, msg) -> Error msg)
    in
    let continue = ref true in
    while !continue && !pos < len do
      match String.index_from_opt text !pos '\n' with
      | None ->
          (* no terminating newline: the classic torn final write *)
          stop ~byte:!pos "torn record (missing trailing newline)";
          continue := false
      | Some nl ->
          let line = String.trim (String.sub text !pos (nl - !pos)) in
          if line = "" || line.[0] = '#' then begin
            pos := nl + 1;
            valid := !pos;
            incr lineno
          end
          else begin
            match record line with
            | Ok mu ->
                mutations := mu :: !mutations;
                incr read_records;
                pos := nl + 1;
                valid := !pos;
                incr lineno
            | Error reason ->
                stop ~byte:!pos reason;
                continue := false
          end
    done;
    {
      mutations = List.rev !mutations;
      read_records = !read_records;
      valid_bytes = !valid;
      truncation = !truncation;
    }
  end

let truncate_torn path (r : read_result) =
  match r.truncation with
  | None -> ()
  | Some _ -> Unix.truncate path r.valid_bytes
