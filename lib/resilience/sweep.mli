(** Degradation sweeps: run every scheme against a ladder of failure
    rates and report delivery ratio, stretch-of-delivered, retries and
    kill reasons per cell.  Shared by the [crt resilience] subcommand
    and the bench harness. *)

type model =
  | Edges  (** independent edge failure with rate p *)
  | Nodes  (** fail-stop node crashes, fraction p of nodes *)
  | Targeted
      (** adversarial removal of the p·m most-traversed edges, measured
          on the scheme's own healthy run over the same pairs *)

val model_to_string : model -> string

val model_of_string : string -> (model, string) Stdlib.result

type cell = {
  scheme : string;
  model : string;  (** fault-plan label *)
  rate : float;
  pairs : int;  (** evaluated pairs (both endpoints alive) *)
  skipped : int;  (** pairs skipped because an endpoint crashed *)
  delivered : int;
  dropped : int;  (** [Dropped_at_fault] outcomes *)
  ttl_kills : int;
  loops : int;
  no_route : int;
  invalid : int;
  retries_total : int;
  stretch : Cr_util.Stats.summary;  (** over delivered pairs *)
}

val delivery_ratio : cell -> float
(** [delivered / pairs]; 1.0 for an empty cell. *)

val make_plan :
  model ->
  seed:int ->
  rate:float ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  (int * int) array ->
  Fault_plan.t
(** Builds the fault plan for one cell.  [Targeted] first replays the
    scheme's healthy routes over [pairs] to rank edges by traversals. *)

val run_cell :
  ?pool:Cr_util.Domain_pool.t ->
  Fsim.policy ->
  Fault_plan.t ->
  rate:float ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  (int * int) array ->
  cell
(** Replays every pair through {!Fsim.run} and tallies outcomes.  With
    [pool], the replays shard across the pool's domains; the tally
    walks the results in pair order, so the cell is identical to the
    sequential one. *)

val sweep :
  ?pool:Cr_util.Domain_pool.t ->
  ?policy:Fsim.policy ->
  model:model ->
  seed:int ->
  rates:float list ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t list ->
  (int * int) array ->
  cell list
(** One cell per (scheme, rate), schemes outermost, replayed on [pool]
    (default: the shared spawn-once pool,
    {!Cr_util.Domain_pool.shared}).  For a fixed seed the fault sets
    are nested across rates (see {!Fault_plan}), so with the default
    no-retry policy the delivery ratio is monotone non-increasing in
    the rate. *)

val cell_to_json : cell -> string
(** One machine-readable JSON object (single line, no trailing newline)
    per cell. *)

val default_rates : float list
(** [0; 0.01; 0.05; 0.1; 0.2] *)
