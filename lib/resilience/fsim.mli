(** Failure-aware routing simulation.

    Replays a scheme's walk hop by hop against a {!Fault_plan}: the
    scheme keeps the routing state it preprocessed on the healthy graph,
    and each planned hop is checked against the fault masks.  Unlike
    {!Compact_routing.Simulator}, nothing here raises — every anomaly
    (stall on a dead link, hop-budget exhaustion, a forwarding loop, a
    malformed walk, a scheme that itself raises) maps to a constructor
    of the shared {!Compact_routing.Simulator.outcome} type.

    {2 Semantics}

    - The message starts at [src] carrying the scheme's planned route.
    - A planned hop over a dead edge (or into a crashed node) is a
      {e stall}.  With retries left, the message takes a local detour:
      it deflects to the alive neighbor of the stall node closest (in
      healthy distance) to the destination, then asks the scheme for a
      fresh route from there — counting one retry.  Without retries (or
      alive neighbors) the outcome is [Dropped_at_fault (u, v)].
    - Every traversed hop (detours included) spends one unit of TTL;
      exceeding the budget yields [Ttl_exceeded].
    - A visited-set loop guard tracks directed-edge traversals and stall
      states; re-stalling on a fault already detoured around, or
      crossing the same directed edge more than [max_edge_visits]
      times, yields [Loop_detected] (deterministic reroutes would
      repeat forever in a real network).
    - Walk defects — wrong start, out-of-range nodes, non-edges, a
      delivery claim ending elsewhere — yield [Invalid_hop]. *)

type policy = {
  ttl : int;  (** hop budget for one message, detour hops included *)
  max_retries : int;  (** bounded route recomputations after stalls *)
  max_edge_visits : int;
      (** loop guard: max traversals of one directed edge per message *)
}

val default_policy : ?ttl:int -> ?max_retries:int -> Cr_graph.Graph.t -> policy
(** [ttl] defaults to [max 256 (16 * n)] — generous enough that no
    healthy walk of the evaluated schemes is killed; [max_retries]
    defaults to [0]; [max_edge_visits] is [32]. *)

type result = {
  outcome : Compact_routing.Simulator.outcome;
  walk : int list;  (** the realized walk, truncated at the stall when dropped *)
  cost : float;  (** weight of the realized walk *)
  hops : int;
  retries : int;  (** route recomputations consumed *)
  stretch : float;  (** cost / healthy d(src,dst) when delivered; infinite otherwise *)
}

val run :
  ?trace:Cr_obs.Trace.sink ->
  policy ->
  Fault_plan.t ->
  Cr_graph.Apsp.t ->
  Compact_routing.Scheme.t ->
  src:int ->
  dst:int ->
  result
(** Never raises: scheme exceptions are caught and classified as
    [Invalid_hop].  With [trace], the sink receives the scheme's own
    routing events (the sink is passed through to every [route] call)
    plus [Stall]/[Deflect]/[Replan] events for each fault encounter; the
    realized walk and outcome are identical either way. *)
