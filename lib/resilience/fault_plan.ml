module Graph = Cr_graph.Graph
module Rng = Cr_util.Rng

type t = {
  graph : Graph.t;
  dead_edges : (int * int, unit) Hashtbl.t;  (* canonical (min u v, max u v) keys *)
  dead_nodes : bool array;
  label : string;
}

let key u v = if u <= v then (u, v) else (v, u)

let make g ~dead_edges ~dead_nodes ~label = { graph = g; dead_edges; dead_nodes; label }

let none g =
  make g ~dead_edges:(Hashtbl.create 1) ~dead_nodes:(Array.make (Graph.n g) false)
    ~label:"none"

let check_rate rate =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg (Printf.sprintf "Fault_plan: rate %g outside [0, 1]" rate)

(* Thresholds are drawn from the seed in a canonical order, so for a fixed
   seed the fault set is nested in the rate: the draw per element never
   changes, only the cutoff does. *)

let independent_edges ~seed g ~rate =
  check_rate rate;
  let rng = Rng.create seed in
  let dead = Hashtbl.create 64 in
  Graph.iter_edges g (fun u v _ ->
      if Rng.float rng 1.0 < rate then Hashtbl.replace dead (key u v) ());
  make g ~dead_edges:dead ~dead_nodes:(Array.make (Graph.n g) false)
    ~label:(Printf.sprintf "edges(rate=%g,seed=%d)" rate seed)

let node_crashes ~seed g ~rate =
  check_rate rate;
  let rng = Rng.create seed in
  let n = Graph.n g in
  let dead_nodes = Array.init n (fun _ -> Rng.float rng 1.0 < rate) in
  make g ~dead_edges:(Hashtbl.create 1) ~dead_nodes
    ~label:(Printf.sprintf "nodes(rate=%g,seed=%d)" rate seed)

let usage_of_walks g walks =
  let counts = Hashtbl.create 256 in
  let count_hop a b =
    if Graph.has_edge g a b then begin
      let k = key a b in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
    end
  in
  List.iter
    (fun walk ->
      let rec go = function
        | a :: (b :: _ as rest) ->
            count_hop a b;
            go rest
        | _ -> ()
      in
      go walk)
    walks;
  let items = Hashtbl.fold (fun (u, v) c acc -> (u, v, c) :: acc) counts [] in
  List.sort
    (fun (u1, v1, c1) (u2, v2, c2) ->
      if c1 <> c2 then compare c2 c1 else compare (u1, v1) (u2, v2))
    items

let targeted_edges g ~hot ~count =
  let dead = Hashtbl.create 64 in
  List.iteri
    (fun i (u, v, _) -> if i < count then Hashtbl.replace dead (key u v) ())
    hot;
  make g ~dead_edges:dead ~dead_nodes:(Array.make (Graph.n g) false)
    ~label:(Printf.sprintf "targeted(count=%d)" (Hashtbl.length dead))

let graph t = t.graph

let label t = t.label

let edge_alive t u v = not (Hashtbl.mem t.dead_edges (key u v))

let node_alive t u = not t.dead_nodes.(u)

let hop_ok t u v = edge_alive t u v && node_alive t u && node_alive t v

let failed_edge_count t = Hashtbl.length t.dead_edges

let failed_node_count t = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 t.dead_nodes
