(** Deterministic, seed-reproducible fault models over an existing graph.

    A plan is a pair of masks — dead edges and dead nodes — applied on
    top of an immutable {!Cr_graph.Graph.t} without rebuilding it: the
    routing schemes keep their healthy preprocessed state, and the
    failure-aware simulator ({!Fsim}) consults the plan hop by hop.

    All constructors are {e nested in the rate} for a fixed seed: the
    fault set at rate [p1 <= p2] is a subset of the fault set at [p2].
    This makes degradation sweeps monotone by construction — a higher
    failure rate can only remove more of the network. *)

type t

val none : Cr_graph.Graph.t -> t
(** The empty plan: everything alive. *)

val independent_edges : seed:int -> Cr_graph.Graph.t -> rate:float -> t
(** Independent edge failure: each edge draws a uniform threshold from
    [seed] (in canonical edge order) and dies iff it falls below [rate].
    Equal seeds give nested fault sets across rates.
    @raise Invalid_argument unless [0 <= rate <= 1]. *)

val node_crashes : seed:int -> Cr_graph.Graph.t -> rate:float -> t
(** Fail-stop node crashes, one uniform threshold per node; a crashed
    node drops every message addressed through it.
    @raise Invalid_argument unless [0 <= rate <= 1]. *)

val targeted_edges : Cr_graph.Graph.t -> hot:(int * int * int) list -> count:int -> t
(** Adversarial removal: kills the first [count] edges of [hot], a
    [(u, v, traversals)] list as produced by {!usage_of_walks} from a
    prior healthy run — i.e. the most-traversed edges. *)

val usage_of_walks : Cr_graph.Graph.t -> int list list -> (int * int * int) list
(** Counts undirected edge traversals across the given walks and returns
    [(u, v, count)] sorted by descending count (ties broken by edge
    index, so prefixes are deterministic).  Hops that are not edges of
    the graph are ignored. *)

val graph : t -> Cr_graph.Graph.t

val label : t -> string
(** Human-readable description, e.g. ["edges(rate=0.05,seed=1)"]. *)

val edge_alive : t -> int -> int -> bool
(** Whether the (undirected) edge survived.  Does not check endpoints. *)

val node_alive : t -> int -> bool

val hop_ok : t -> int -> int -> bool
(** [hop_ok t u v]: the edge survived and both endpoints are alive — the
    condition for a message at [u] to reach [v] in one hop. *)

val failed_edge_count : t -> int

val failed_node_count : t -> int
