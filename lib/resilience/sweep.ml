module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Stats = Cr_util.Stats
module Sim = Compact_routing.Simulator
module Scheme = Compact_routing.Scheme

type model = Edges | Nodes | Targeted

let model_to_string = function Edges -> "edges" | Nodes -> "nodes" | Targeted -> "targeted"

let model_of_string = function
  | "edges" -> Ok Edges
  | "nodes" -> Ok Nodes
  | "targeted" -> Ok Targeted
  | s -> Error (Printf.sprintf "unknown fault model %S (expected edges, nodes or targeted)" s)

type cell = {
  scheme : string;
  model : string;
  rate : float;
  pairs : int;
  skipped : int;
  delivered : int;
  dropped : int;
  ttl_kills : int;
  loops : int;
  no_route : int;
  invalid : int;
  retries_total : int;
  stretch : Stats.summary;
}

let delivery_ratio c =
  if c.pairs = 0 then 1.0 else float_of_int c.delivered /. float_of_int c.pairs

let make_plan model ~seed ~rate apsp (scheme : Scheme.t) pairs =
  let g = Apsp.graph apsp in
  match model with
  | Edges -> Fault_plan.independent_edges ~seed g ~rate
  | Nodes -> Fault_plan.node_crashes ~seed g ~rate
  | Targeted ->
      let walks =
        Array.to_list (Array.map (fun (s, d) -> (scheme.Scheme.route s d).Scheme.walk) pairs)
      in
      let hot = Fault_plan.usage_of_walks g walks in
      let count = int_of_float (Float.round (rate *. float_of_int (Graph.m g))) in
      Fault_plan.targeted_edges g ~hot ~count

let run_cell policy plan ~rate apsp (scheme : Scheme.t) pairs =
  let skipped = ref 0 in
  let delivered = ref 0 and dropped = ref 0 and ttl_kills = ref 0 in
  let loops = ref 0 and no_route = ref 0 and invalid = ref 0 in
  let retries_total = ref 0 and evaluated = ref 0 in
  let stretches = ref [] in
  Array.iter
    (fun (s, d) ->
      if not (Fault_plan.node_alive plan s && Fault_plan.node_alive plan d) then incr skipped
      else begin
        incr evaluated;
        let r = Fsim.run policy plan apsp scheme ~src:s ~dst:d in
        retries_total := !retries_total + r.Fsim.retries;
        match r.Fsim.outcome with
        | Sim.Delivered ->
            incr delivered;
            stretches := r.Fsim.stretch :: !stretches
        | Sim.Dropped_at_fault _ -> incr dropped
        | Sim.Ttl_exceeded -> incr ttl_kills
        | Sim.Loop_detected -> incr loops
        | Sim.No_route -> incr no_route
        | Sim.Invalid_hop _ -> incr invalid
      end)
    pairs;
  let stretch_arr = Array.of_list !stretches in
  {
    scheme = scheme.Scheme.name;
    model = Fault_plan.label plan;
    rate;
    pairs = !evaluated;
    skipped = !skipped;
    delivered = !delivered;
    dropped = !dropped;
    ttl_kills = !ttl_kills;
    loops = !loops;
    no_route = !no_route;
    invalid = !invalid;
    retries_total = !retries_total;
    stretch =
      (if Array.length stretch_arr = 0 then Stats.empty_summary else Stats.summarize stretch_arr);
  }

let sweep ?policy ~model ~seed ~rates apsp schemes pairs =
  let policy =
    match policy with Some p -> p | None -> Fsim.default_policy (Apsp.graph apsp)
  in
  List.concat_map
    (fun scheme ->
      List.map
        (fun rate ->
          let plan = make_plan model ~seed ~rate apsp scheme pairs in
          run_cell policy plan ~rate apsp scheme pairs)
        rates)
    schemes

(* Minimal JSON escaping: scheme and model labels are ASCII identifiers,
   but stay safe about quotes/backslashes/control bytes anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let cell_to_json c =
  Printf.sprintf
    "{\"scheme\":\"%s\",\"model\":\"%s\",\"rate\":%s,\"pairs\":%d,\"skipped\":%d,\
     \"delivered\":%d,\"dropped\":%d,\"ttl_kills\":%d,\"loops\":%d,\"no_route\":%d,\
     \"invalid\":%d,\"retries\":%d,\"delivery_ratio\":%s,\"stretch_mean\":%s,\
     \"stretch_p99\":%s,\"stretch_max\":%s}"
    (json_escape c.scheme) (json_escape c.model) (json_float c.rate) c.pairs c.skipped
    c.delivered c.dropped c.ttl_kills c.loops c.no_route c.invalid c.retries_total
    (json_float (delivery_ratio c))
    (json_float c.stretch.Stats.mean)
    (json_float c.stretch.Stats.p99)
    (json_float c.stretch.Stats.max)

let default_rates = [ 0.0; 0.01; 0.05; 0.1; 0.2 ]
