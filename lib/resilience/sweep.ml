module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Stats = Cr_util.Stats
module Sim = Compact_routing.Simulator
module Scheme = Compact_routing.Scheme

type model = Edges | Nodes | Targeted

let model_to_string = function Edges -> "edges" | Nodes -> "nodes" | Targeted -> "targeted"

let model_of_string = function
  | "edges" -> Ok Edges
  | "nodes" -> Ok Nodes
  | "targeted" -> Ok Targeted
  | s -> Error (Printf.sprintf "unknown fault model %S (expected edges, nodes or targeted)" s)

type cell = {
  scheme : string;
  model : string;
  rate : float;
  pairs : int;
  skipped : int;
  delivered : int;
  dropped : int;
  ttl_kills : int;
  loops : int;
  no_route : int;
  invalid : int;
  retries_total : int;
  stretch : Stats.summary;
}

let delivery_ratio c =
  if c.pairs = 0 then 1.0 else float_of_int c.delivered /. float_of_int c.pairs

let make_plan model ~seed ~rate apsp (scheme : Scheme.t) pairs =
  let g = Apsp.graph apsp in
  match model with
  | Edges -> Fault_plan.independent_edges ~seed g ~rate
  | Nodes -> Fault_plan.node_crashes ~seed g ~rate
  | Targeted ->
      let walks =
        Array.to_list (Array.map (fun (s, d) -> (scheme.Scheme.route s d).Scheme.walk) pairs)
      in
      let hot = Fault_plan.usage_of_walks g walks in
      let count = int_of_float (Float.round (rate *. float_of_int (Graph.m g))) in
      Fault_plan.targeted_edges g ~hot ~count

let run_cell ?pool policy plan ~rate apsp (scheme : Scheme.t) pairs =
  (* replay phase: every pair is independent (Fsim.run keeps all its
     state per call), so the replays shard across the pool; the tally
     below walks the result array in pair order, making the cell —
     including the prepend-order of the stretch sample — identical to
     the sequential one *)
  let nq = Array.length pairs in
  let results = Array.make nq None in
  let replay i =
    let s, d = pairs.(i) in
    if Fault_plan.node_alive plan s && Fault_plan.node_alive plan d then
      results.(i) <- Some (Fsim.run policy plan apsp scheme ~src:s ~dst:d)
  in
  (match pool with
  | None -> for i = 0 to nq - 1 do replay i done
  | Some pool -> Cr_util.Domain_pool.parallel_for ~chunk:8 pool ~n:nq replay);
  let skipped = ref 0 in
  let delivered = ref 0 and dropped = ref 0 and ttl_kills = ref 0 in
  let loops = ref 0 and no_route = ref 0 and invalid = ref 0 in
  let retries_total = ref 0 and evaluated = ref 0 in
  let stretches = ref [] in
  Array.iter
    (function
      | None -> incr skipped
      | Some (r : Fsim.result) -> (
          incr evaluated;
          retries_total := !retries_total + r.Fsim.retries;
          match r.Fsim.outcome with
          | Sim.Delivered ->
              incr delivered;
              stretches := r.Fsim.stretch :: !stretches
          | Sim.Dropped_at_fault _ -> incr dropped
          | Sim.Ttl_exceeded -> incr ttl_kills
          | Sim.Loop_detected -> incr loops
          | Sim.No_route -> incr no_route
          | Sim.Invalid_hop _ -> incr invalid))
    results;
  let stretch_arr = Array.of_list !stretches in
  {
    scheme = scheme.Scheme.name;
    model = Fault_plan.label plan;
    rate;
    pairs = !evaluated;
    skipped = !skipped;
    delivered = !delivered;
    dropped = !dropped;
    ttl_kills = !ttl_kills;
    loops = !loops;
    no_route = !no_route;
    invalid = !invalid;
    retries_total = !retries_total;
    stretch =
      (if Array.length stretch_arr = 0 then Stats.empty_summary else Stats.summarize stretch_arr);
  }

let sweep ?pool ?policy ~model ~seed ~rates apsp schemes pairs =
  let policy =
    match policy with Some p -> p | None -> Fsim.default_policy (Apsp.graph apsp)
  in
  let pool = match pool with Some p -> p | None -> Cr_util.Domain_pool.shared () in
  List.concat_map
    (fun scheme ->
      List.map
        (fun rate ->
          let plan = make_plan model ~seed ~rate apsp scheme pairs in
          run_cell ~pool policy plan ~rate apsp scheme pairs)
        rates)
    schemes

let cell_to_json c =
  let module J = Cr_util.Jsonl in
  J.obj
    [
      ("scheme", J.str c.scheme);
      ("model", J.str c.model);
      ("rate", J.float c.rate);
      ("pairs", J.int c.pairs);
      ("skipped", J.int c.skipped);
      ("delivered", J.int c.delivered);
      ("dropped", J.int c.dropped);
      ("ttl_kills", J.int c.ttl_kills);
      ("loops", J.int c.loops);
      ("no_route", J.int c.no_route);
      ("invalid", J.int c.invalid);
      ("retries", J.int c.retries_total);
      ("delivery_ratio", J.float (delivery_ratio c));
      ("stretch_mean", J.float c.stretch.Stats.mean);
      ("stretch_p99", J.float c.stretch.Stats.p99);
      ("stretch_max", J.float c.stretch.Stats.max);
    ]

let default_rates = [ 0.0; 0.01; 0.05; 0.1; 0.2 ]
