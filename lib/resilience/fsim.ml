module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Sim = Compact_routing.Simulator
module Scheme = Compact_routing.Scheme

type policy = { ttl : int; max_retries : int; max_edge_visits : int }

let default_policy ?ttl ?(max_retries = 0) g =
  let ttl = match ttl with Some t -> t | None -> max 256 (16 * Graph.n g) in
  { ttl; max_retries; max_edge_visits = 32 }

type result = {
  outcome : Sim.outcome;
  walk : int list;
  cost : float;
  hops : int;
  retries : int;
  stretch : float;
}

let run ?trace policy plan apsp (scheme : Scheme.t) ~src ~dst =
  let g = Apsp.graph apsp in
  let emit ev = match trace with None -> () | Some f -> f ev in
  let n = Graph.n g in
  let cost = ref 0.0 and hops = ref 0 and retries = ref 0 in
  let walk_rev = ref [] in
  let cur = ref src in
  let edge_visits = Hashtbl.create 64 in
  let stalls_seen = Hashtbl.create 8 in
  let finish outcome =
    let stretch =
      match outcome with
      | Sim.Delivered ->
          if src = dst then 1.0
          else
            let d = Apsp.distance apsp src dst in
            if d = 0.0 || d = infinity then infinity else !cost /. d
      | _ -> infinity
    in
    { outcome; walk = List.rev !walk_rev; cost = !cost; hops = !hops; retries = !retries; stretch }
  in
  (* One physical hop cur -> b of weight w; [Ok ()] or the terminal outcome. *)
  let traverse b w =
    if !hops + 1 > policy.ttl then Error Sim.Ttl_exceeded
    else begin
      let k = (!cur, b) in
      let seen = 1 + Option.value ~default:0 (Hashtbl.find_opt edge_visits k) in
      if seen > policy.max_edge_visits then Error Sim.Loop_detected
      else begin
        Hashtbl.replace edge_visits k seen;
        cost := !cost +. w;
        incr hops;
        walk_rev := b :: !walk_rev;
        cur := b;
        Ok ()
      end
    end
  in
  let plan_route u =
    match scheme.Scheme.route ?trace u dst with
    | r -> Ok r
    | exception e -> Error (Sim.Invalid_hop (Printf.sprintf "scheme raised %s" (Printexc.to_string e)))
  in
  (* Local detour around the dead hop cur -> b: deflect to the alive
     neighbor closest to dst in healthy distance, then replan there. *)
  let deflect b =
    let best = ref None in
    Array.iter
      (fun (w, wt) ->
        if w <> b && Fault_plan.hop_ok plan !cur w then
          let d = Apsp.distance apsp w dst in
          match !best with
          | Some (_, _, bd) when bd <= d -> ()
          | _ -> best := Some (w, wt, d))
      (Graph.neighbors g !cur);
    !best
  in
  let rec follow claimed queue =
    match queue with
    | [] | [ _ ] ->
        if !cur = dst then finish Sim.Delivered
        else if claimed then
          finish (Sim.Invalid_hop (Printf.sprintf "claimed delivery but walk ends at %d, not %d" !cur dst))
        else finish Sim.No_route
    | a :: (b :: _ as rest) ->
        if a <> !cur then
          finish (Sim.Invalid_hop (Printf.sprintf "walk jumps to %d while message is at %d" a !cur))
        else if b < 0 || b >= n then finish (Sim.Invalid_hop (Printf.sprintf "node %d out of range" b))
        else begin
          match Graph.edge_weight g a b with
          | None -> finish (Sim.Invalid_hop (Printf.sprintf "non-edge %d-%d" a b))
          | Some w ->
              if Fault_plan.hop_ok plan a b then (
                match traverse b w with
                | Ok () -> follow claimed rest
                | Error o -> finish o)
              else stall claimed a b
        end
  and stall _claimed a b =
    emit (Cr_obs.Trace.Stall { at = a; toward = b });
    if !retries >= policy.max_retries then finish (Sim.Dropped_at_fault (a, b))
    else if Hashtbl.mem stalls_seen (a, b) then finish Sim.Loop_detected
    else begin
      Hashtbl.replace stalls_seen (a, b) ();
      incr retries;
      match deflect b with
      | None -> finish (Sim.Dropped_at_fault (a, b))
      | Some (w, wt, _) -> (
          emit (Cr_obs.Trace.Deflect { at = a; via = w });
          match traverse w wt with
          | Error o -> finish o
          | Ok () -> (
              if !cur = dst then finish Sim.Delivered
              else begin
                emit (Cr_obs.Trace.Replan { at = !cur });
                match plan_route !cur with
                | Error o -> finish o
                | Ok r -> follow r.Scheme.delivered r.Scheme.walk
              end))
    end
  in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    { outcome = Sim.Invalid_hop "endpoint out of range"; walk = []; cost = 0.0; hops = 0;
      retries = 0; stretch = infinity }
  else begin
    walk_rev := [ src ];
    if not (Fault_plan.node_alive plan src) then finish (Sim.Dropped_at_fault (src, src))
    else if src = dst then finish Sim.Delivered
    else
      match plan_route src with
      | Error o -> finish o
      | Ok r -> follow r.Scheme.delivered r.Scheme.walk
  end
