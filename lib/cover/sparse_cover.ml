module Graph = Cr_graph.Graph
module Dijkstra = Cr_graph.Dijkstra
module Tree = Cr_tree.Tree
module Bits = Cr_util.Bits

type cluster = { center : int; members : int array; tree : Tree.t }

type t = {
  graph : Graph.t;
  allowed : bool array;
  k : int;
  rho : float;
  clusters : cluster array;
  home : int array; (* node -> covering cluster index, -1 if not allowed *)
  containing : int list array; (* node -> clusters containing it *)
}

let ball_of g allowed rho u =
  let res = Dijkstra.run_restricted g ~allowed:(fun v -> allowed.(v)) ~bound:rho u in
  let acc = ref [] in
  Array.iteri (fun v d -> if d < infinity then acc := v :: !acc) res.Dijkstra.dist;
  Array.of_list !acc

(* Awerbuch–Peleg ball coarsening, organized in phases so that clusters
   created within one phase are pairwise disjoint: a node then belongs to
   at most (#phases) clusters, which is what keeps the cover sparse.

   Within a phase, a cluster starts from an uncovered eligible center's
   rho-ball and keeps absorbing the balls of other uncovered eligible
   centers that intersect it, as long as each round multiplies the
   cluster size by more than n^{1/k}; at most k-1 rounds can pass, so the
   radius stays below (2k-1) rho.  Absorbed balls are covered; balls that
   merely touch the cluster become ineligible for the rest of the phase
   and try again in the next one. *)
let build ?allowed ~k ~rho g =
  if k < 1 then invalid_arg "Sparse_cover.build: k < 1";
  if not (rho > 0.0) then invalid_arg "Sparse_cover.build: rho <= 0";
  let n = Graph.n g in
  let allowed =
    match allowed with
    | None -> Array.make n true
    | Some p -> Array.init n p
  in
  let kappa =
    float_of_int (max 2 (Bits.ceil_pow (float_of_int (max 2 n)) (1.0 /. float_of_int k)))
  in
  let balls = Array.make n [||] in
  for u = 0 to n - 1 do
    if allowed.(u) then balls.(u) <- ball_of g allowed rho u
  done;
  let covered = Array.make n false in
  let home = Array.make n (-1) in
  let clusters = ref [] in
  let n_clusters = ref 0 in
  let in_y = Array.make n false in
  let phase_mark = Array.make n false in
  let uncovered_left = ref 0 in
  for u = 0 to n - 1 do
    if allowed.(u) then incr uncovered_left
  done;
  while !uncovered_left > 0 do
    (* one phase *)
    Array.fill phase_mark 0 n false;
    let eligible u =
      allowed.(u) && (not covered.(u)) && not (Array.exists (fun x -> phase_mark.(x)) balls.(u))
    in
    let progress = ref true in
    while !progress do
      (* find the first eligible uncovered center *)
      let v = ref (-1) in
      (let u = ref 0 in
       while !v < 0 && !u < n do
         if eligible !u then v := !u;
         incr u
       done);
      if !v < 0 then progress := false
      else begin
        let v = !v in
        let members = ref [] in
        let size = ref 0 in
        let add x =
          if not in_y.(x) then begin
            in_y.(x) <- true;
            members := x :: !members;
            incr size
          end
        in
        Array.iter add balls.(v);
        let merged = ref [ v ] in
        let is_merged = Hashtbl.create 16 in
        Hashtbl.replace is_merged v ();
        (* Expansion rounds: absorb every eligible uncovered ball touching
           the current union.  Rounds that more-than-kappa-multiply the
           size keep going; the first non-multiplying round is still
           committed (the cluster must contain the balls that intersect
           its kernel — that is what makes coverage per cluster large
           enough for sparsity) and ends the growth.  At most k rounds
           total, so the radius stays below (2k+1) rho. *)
        let continue_growing = ref true in
        while !continue_growing do
          let prev_size = !size in
          let layer = ref [] in
          for u = 0 to n - 1 do
            if eligible u && not (Hashtbl.mem is_merged u) then
              if Array.exists (fun x -> in_y.(x)) balls.(u) then layer := u :: !layer
          done;
          if !layer = [] then continue_growing := false
          else begin
            let added = ref [] in
            List.iter
              (fun u ->
                Array.iter
                  (fun x ->
                    if not in_y.(x) then begin
                      in_y.(x) <- true;
                      added := x :: !added
                    end)
                  balls.(u))
              !layer;
            let new_size = prev_size + List.length !added in
            size := new_size;
            members := List.rev_append !added !members;
            List.iter
              (fun u ->
                Hashtbl.replace is_merged u ();
                merged := u :: !merged)
              !layer;
            if float_of_int new_size <= kappa *. float_of_int prev_size then
              continue_growing := false
          end
        done;
        let member_arr = Array.of_list !members in
        Array.sort Int.compare member_arr;
        let ci = !n_clusters in
        let cover u =
          if not covered.(u) then begin
            covered.(u) <- true;
            home.(u) <- ci;
            decr uncovered_left
          end
        in
        List.iter cover !merged;
        (* opportunistically cover any center whose ball fits entirely
           inside the cluster *)
        Array.iter
          (fun u ->
            if allowed.(u) && (not covered.(u)) && Array.for_all (fun x -> in_y.(x)) balls.(u)
            then cover u)
          member_arr;
        (* spanning tree: SPT from v inside the cluster, edges <= 2 rho *)
        let res =
          Dijkstra.run_restricted g
            ~allowed:(fun x -> x >= 0 && x < n && in_y.(x))
            ~max_edge:(2.0 *. rho) v
        in
        let tree = Tree.of_sssp g res ~keep:(fun x -> in_y.(x)) in
        Array.iter
          (fun x ->
            if not (Tree.mem tree x) then
              invalid_arg "Sparse_cover.build: cluster disconnected under 2*rho edge filter")
          member_arr;
        clusters := { center = v; members = member_arr; tree } :: !clusters;
        incr n_clusters;
        Array.iter
          (fun x ->
            in_y.(x) <- false;
            phase_mark.(x) <- true)
          member_arr
      end
    done
  done;
  let clusters = Array.of_list (List.rev !clusters) in
  let containing = Array.make n [] in
  Array.iteri
    (fun ci c -> Array.iter (fun x -> containing.(x) <- ci :: containing.(x)) c.members)
    clusters;
  { graph = g; allowed; k; rho; clusters; home; containing }

let clusters t = t.clusters

let rho t = t.rho

let k t = t.k

let home t v =
  if v < 0 || v >= Array.length t.home || t.home.(v) < 0 then
    invalid_arg "Sparse_cover.home: node not in cover universe"
  else t.home.(v)

let clusters_of t v = t.containing.(v)

let max_overlap t =
  Array.fold_left (fun acc l -> max acc (List.length l)) 0 t.containing

let max_radius t =
  Array.fold_left (fun acc c -> max acc (Tree.radius c.tree)) 0.0 t.clusters

let max_tree_edge t =
  Array.fold_left (fun acc c -> max acc (Tree.max_edge c.tree)) 0.0 t.clusters

let check_cover t =
  let ok = ref true in
  let n = Graph.n t.graph in
  for u = 0 to n - 1 do
    if t.allowed.(u) then begin
      let ball = ball_of t.graph t.allowed t.rho u in
      let c = t.clusters.(t.home.(u)) in
      let member = Hashtbl.create (Array.length c.members) in
      Array.iter (fun x -> Hashtbl.replace member x ()) c.members;
      Array.iter (fun x -> if not (Hashtbl.mem member x) then ok := false) ball
    end
  done;
  !ok
