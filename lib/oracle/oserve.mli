(** Oracle batch serving — the second query surface of the engine.

    Pushes distance/path queries through {!Cr_engine.Engine.run_custom}
    so an oracle batch gets the same static sharding, per-lane LRU
    caches, guard chain and metrics as a routing batch.  The
    determinism contract carries over: {!run_batch}'s result array is a
    pure function of [(apsp, oracle, pairs)] — bit-identical across
    pool widths and with caches on or off (tested in
    test/test_oracle.ml). *)

type omeasured = {
  src : int;
  dst : int;
  est : float;  (** oracle estimate *)
  dist : float;  (** true distance (ground truth) *)
  ok : bool;
      (** the reported walk is valid, ends at [dst], and its
          independently-priced weight equals [est] (1e-9 relative) *)
  hops : int;
  stretch : float;  (** [est / dist]; [1.0] for [src = dst]; [infinity] when not [ok] *)
}

val measure : Cr_graph.Apsp.t -> Path_oracle.t -> int -> int -> omeasured
(** One oracle query, answered and then refereed: the stitched walk is
    validated and priced independently by
    [Compact_routing.Simulator.check_walk].  Pure in its arguments, and
    {e canonical}: the measurement is computed on the ordered pair
    [(min src dst, max src dst)] and relabeled, so the answers for
    [(u, v)] and [(v, u)] are the same record up to the [src]/[dst]
    fields — which is what lets every serving mode share one cache
    entry per unordered pair. *)

val run_batch :
  omeasured Cr_engine.Engine.t ->
  Cr_graph.Apsp.t ->
  Path_oracle.t ->
  (int * int) array ->
  omeasured array * Cr_engine.Engine.metrics
(** Unguarded oracle batch; [result.(i)] answers [pairs.(i)]. *)

val run_guarded :
  ?chaos:Cr_guard.Chaos.t ->
  omeasured Cr_engine.Engine.t ->
  Cr_graph.Apsp.t ->
  Path_oracle.t ->
  (int * int) array ->
  (omeasured, Cr_guard.Rejection.t) result array
  * Cr_engine.Engine.metrics
  * Cr_engine.Engine.guard_stats
(** The guarded path: same guard chain and rejection taxonomy as
    routed serving ({!Cr_engine.Engine.run_guarded}). *)

type report = {
  oracle_k : int;
  workload : string;  (** caller-supplied label *)
  dist : string;
  queries : int;
  domains : int;
  cache_capacity : int;
  cache_mode : string;  (** ["off" | "lane" | "shared"] *)
  guard_label : string;
  chaos_label : string;
  wall_s : float;
  queries_per_sec : float;  (** oracle queries per second *)
  latency : Cr_util.Stats.summary;
  cache_hits : int;
  cache_misses : int;
  guards : Cr_engine.Engine.guard_stats;
  ok : int;  (** valid (refereed) answers among the served queries *)
  stretch_mean : float;
  stretch_max : float;
  size_entries : int;
  storage_bits : int;
  shared : Cr_util.Ttcache.stats;
      (** shared-table counters; all-zero unless [cache_mode = "shared"].
          Oracle entries are keyed by canonical [(min, max)] pair, so
          both directions of a pair hit one entry. *)
}

val hit_rate : report -> float

val run :
  ?cache:int ->
  ?cache_mode:Cr_engine.Engine.cache_mode ->
  ?dist:Cr_engine.Workload.dist ->
  ?policy:Cr_guard.Policy.t ->
  ?chaos:Cr_guard.Chaos.t ->
  ?guard_label:string ->
  domains:int ->
  seed:int ->
  queries:int ->
  workload:string ->
  Cr_graph.Apsp.t ->
  Path_oracle.t ->
  report
(** The closed-loop oracle serve mirroring {!Cr_engine.Serve.run}:
    generates [queries] connected pairs ([dist] defaults to
    [Zipf 1.1]), serves them guarded on a fresh pool of [domains] lanes
    (shut down before returning, even on raise), and reports.  The
    query stream and answers depend only on [(dist, seed, queries)] —
    never on [domains], [cache] or [cache_mode]. *)

val report_to_json : report -> string
(** One strict-JSON object (single line, no trailing newline). *)
