(** Sparse-graph path-reporting oracle — Agarwal–Godfrey–Har-Peled
    style, tuned for [m ≈ n].

    Samples [~√m] landmarks and stores one full shortest-path tree per
    landmark, plus a per-node exact {e vicinity} ball reaching out to
    the node's nearest landmark (with tree witnesses, constructively
    closed like {!Path_oracle}).  Queries answer
    [min(exact-if-in-vicinity, d(u,l_u) + d(l_u,v), d(v,l_v) + d(l_v,u))]
    — stretch at most 3 (when [v] is outside [u]'s vicinity,
    [d(u,l_u) ≤ d(u,v)]), and exact inside a vicinity.  Every finite
    answer carries a concrete walk: the vicinity tree chain, or the
    two landmark-tree halves.

    On a power-law graph with [m ≈ n] this stores [O(n^{3/2})] entries
    against the TZ oracle's [O(k · n^{1+1/k})] with stretch 3 instead
    of [2k − 1] — the sparse corner of the space–stretch trade-off.

    Determinism: [build] is a pure function of
    [(apsp, seed, landmarks)]. *)

type t

type answer = {
  est : float;
  walk : int list;  (** concrete walk from [u] to [v] realizing [est] *)
  via : int;  (** meeting node: vicinity target or the landmark *)
  exact : bool;  (** answered from a vicinity ball (est = true distance) *)
}

val build : ?seed:int -> ?landmarks:int -> Cr_graph.Apsp.t -> t
(** [landmarks] defaults to [⌈√m⌉] (at least 1); [seed] (default 41)
    drives the landmark sample.
    @raise Invalid_argument if [landmarks] is not in [\[1, n\]]. *)

val landmark_count : t -> int

val query : t -> int -> int -> float
(** Estimated distance; exact when one endpoint lies in the other's
    vicinity; [infinity] for disconnected pairs; symmetric (canonical
    [(min, max)] ordering, like {!Path_oracle.query}). *)

val path : ?trace:Cr_obs.Trace.sink -> t -> int -> int -> answer option
(** [None] iff disconnected; otherwise a valid walk whose weight equals
    [est] up to floating-point association.  Emits one
    [Cr_obs.Trace.Stitch] per answer when traced. *)

val stretch_bound : t -> float
(** [3.] *)

val size_entries : t -> int
(** Vicinity entries stored, closure included. *)

val closure_entries : t -> int
(** Entries added by constructive closure (already in {!size_entries}). *)

val storage_bits : t -> int
(** Vicinity entries (target id + distance + next-hop id) + landmark
    trees (distance + parent id per node per landmark) + the per-node
    nearest-landmark pointer. *)
