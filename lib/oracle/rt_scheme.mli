(** Roditty–Tov-style routing baseline over the path-reporting oracle.

    The 8th scheme of the roster (name ["rt"]): route [src → dst] along
    the walk {!Path_oracle.path} stitches.  The oracle's bunch tables
    double as routing tables — every entry already stores the next hop
    toward its witness — so per-node storage is charged as
    [oracle_bunch] (witness id + distance + next-hop id per entry) plus
    [oracle_pivot] ([k] ids + distances), and the scheme inherits the
    oracle's [2k − 1] stretch.  Headers carry the stitched-path label:
    {!Compact_routing.Scheme.label_header_bits}.

    Traced routes narrate the oracle's [Bunch_probe]/[Stitch] events
    followed by [Deliver] (phase = levels probed) or [No_route]. *)

val make : ?k:int -> ?seed:int -> Cr_graph.Apsp.t -> Compact_routing.Scheme.t
(** [k] defaults to 3, [seed] to 31 — {!Path_oracle.build}'s defaults.
    @raise Invalid_argument if [k < 1]. *)
