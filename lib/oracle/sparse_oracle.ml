(* Sparse-graph distance oracle in the Agarwal–Godfrey–Har-Peled
   style, tuned for m ≈ n: sample ~√m landmarks, store one full
   shortest-path tree per landmark plus, per node, an exact "vicinity"
   ball reaching out to its nearest landmark.  Space is
   O(n√m + Σ|vicinity|) entries against the TZ oracle's
   O(k · n^{1+1/k}); stretch drops from 2k−1 to 3, and every answer
   carries a concrete walk (tree paths on both sides).

   Vicinity entries store the same witness shape as Path_oracle —
   (dist, next hop on SPT(v)) keyed by target v — and are
   constructively closed along the tree chain for the same
   floating-point-tie reason (closure counted honestly). *)

module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Dijkstra = Cr_graph.Dijkstra
module Bits = Cr_util.Bits
module Rng = Cr_util.Rng
module Trace = Cr_obs.Trace

type entry = { dist : float; next : int }

type t = {
  n : int;
  landmarks : int array; (* sorted node indexes *)
  lm_dist : float array array; (* lm_dist.(i).(v) = d(landmarks.(i), v) *)
  lm_parent : int array array; (* neighbor of v toward landmark i *)
  near : int array; (* index into landmarks of the nearest one; -1 if unreachable *)
  near_d : float array;
  vicinity : (int, entry) Hashtbl.t array; (* target v -> (d(u,v), hop toward v) *)
  closure_entries : int;
}

type answer = { est : float; walk : int list; via : int; exact : bool }

let close_chain vicinity sv v u =
  let added = ref 0 in
  let x = ref u in
  let steps = ref 0 in
  let n = Array.length sv.Dijkstra.dist in
  while !x <> v do
    if !steps > n then invalid_arg "Sparse_oracle: cyclic parent chain";
    incr steps;
    let nx = sv.Dijkstra.parent.(!x) in
    if nx < 0 then invalid_arg "Sparse_oracle: broken parent chain";
    if not (Hashtbl.mem vicinity.(!x) v) then begin
      Hashtbl.replace vicinity.(!x) v { dist = sv.Dijkstra.dist.(!x); next = nx };
      incr added
    end;
    x := nx
  done;
  if not (Hashtbl.mem vicinity.(v) v) then begin
    Hashtbl.replace vicinity.(v) v { dist = 0.0; next = -1 };
    incr added
  end;
  !added

let build ?(seed = 41) ?landmarks apsp =
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let m = Graph.m g in
  let count =
    match landmarks with
    | Some c ->
        if c < 1 || c > n then invalid_arg "Sparse_oracle.build: landmark count out of range";
        c
    | None -> min n (max 1 (int_of_float (ceil (sqrt (float_of_int (max 1 m))))))
  in
  let rng = Rng.create seed in
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  let landmarks = Array.sub order 0 count in
  Array.sort compare landmarks;
  let lm_dist = Array.map (fun l -> (Apsp.sssp apsp l).Dijkstra.dist) landmarks in
  let lm_parent = Array.map (fun l -> (Apsp.sssp apsp l).Dijkstra.parent) landmarks in
  let near = Array.make n (-1) in
  let near_d = Array.make n infinity in
  for u = 0 to n - 1 do
    for i = 0 to count - 1 do
      if lm_dist.(i).(u) < near_d.(u) then begin
        near_d.(u) <- lm_dist.(i).(u);
        near.(u) <- i
      end
    done
  done;
  let vicinity = Array.init n (fun _ -> Hashtbl.create 8) in
  (* base vicinity: strictly closer than the nearest landmark (the
     whole component when no landmark is reachable) *)
  for v = 0 to n - 1 do
    let sv = Apsp.sssp apsp v in
    let d = sv.Dijkstra.dist in
    for u = 0 to n - 1 do
      if d.(u) < infinity && d.(u) < near_d.(u) then
        Hashtbl.replace vicinity.(u) v { dist = d.(u); next = sv.Dijkstra.parent.(u) }
    done
  done;
  let closed = ref 0 in
  for v = 0 to n - 1 do
    let sv = Apsp.sssp apsp v in
    for u = 0 to n - 1 do
      if Hashtbl.mem vicinity.(u) v then closed := !closed + close_chain vicinity sv v u
    done
  done;
  { n; landmarks; lm_dist; lm_parent; near; near_d; vicinity; closure_entries = !closed }

let landmark_count t = Array.length t.landmarks
let stretch_bound _ = 3.0
let closure_entries t = t.closure_entries

let size_entries t = Array.fold_left (fun acc b -> acc + Hashtbl.length b) 0 t.vicinity

let storage_bits t =
  let idb = Bits.id_bits ~n:t.n in
  (* vicinity: target id + distance + next-hop id per entry; landmark
     SPTs: distance + parent id per node per landmark; per-node nearest
     landmark pointer *)
  (size_entries t * ((2 * idb) + Bits.distance_bits))
  + (landmark_count t * t.n * (idb + Bits.distance_bits))
  + (t.n * (idb + Bits.distance_bits))

let emit trace ev = match trace with None -> () | Some sink -> sink ev

(* Best landmark candidate for a pair: min over the two endpoints'
   nearest landmarks, ties to the lower landmark index. *)
let landmark_candidate t u v =
  let consider (best_d, best_i) i =
    if i < 0 then (best_d, best_i)
    else begin
      let d = t.lm_dist.(i).(u) +. t.lm_dist.(i).(v) in
      if d < best_d || (d = best_d && (best_i < 0 || i < best_i)) then (d, i)
      else (best_d, best_i)
    end
  in
  List.fold_left consider (infinity, -1) [ t.near.(u); t.near.(v) ]

let query t u v =
  let u, v = (min u v, max u v) in
  if u = v then 0.0
  else
    match Hashtbl.find_opt t.vicinity.(u) v with
    | Some e -> e.dist
    | None -> (
        match Hashtbl.find_opt t.vicinity.(v) u with
        | Some e -> e.dist
        | None ->
            let d, _ = landmark_candidate t u v in
            d)

let chain vicinity n x v =
  let rec go x acc steps =
    if steps > n then invalid_arg "Sparse_oracle: cyclic witness chain";
    if x = v then List.rev (v :: acc)
    else
      match Hashtbl.find_opt vicinity.(x) v with
      | None -> invalid_arg "Sparse_oracle: closure invariant broken"
      | Some e -> go e.next (x :: acc) (steps + 1)
  in
  go x [] 0

(* Tree path x → … → landmark i along the stored SPT. *)
let lm_chain t i x =
  let l = t.landmarks.(i) in
  let rec go x acc steps =
    if steps > t.n then invalid_arg "Sparse_oracle: cyclic landmark chain";
    if x = l then List.rev (l :: acc) else go t.lm_parent.(i).(x) (x :: acc) (steps + 1)
  in
  go x [] 0

let path ?trace t u v =
  if u = v then Some { est = 0.0; walk = [ u ]; via = u; exact = true }
  else begin
    let cu, cv = (min u v, max u v) in
    let oriented walk = if u = cu then walk else List.rev walk in
    match Hashtbl.find_opt t.vicinity.(cu) cv with
    | Some e ->
        let w = chain t.vicinity t.n cu cv in
        emit trace (Trace.Stitch { via = cv; up_hops = List.length w - 1; down_hops = 0 });
        Some { est = e.dist; walk = oriented w; via = cv; exact = true }
    | None -> (
        match Hashtbl.find_opt t.vicinity.(cv) cu with
        | Some e ->
            let w = List.rev (chain t.vicinity t.n cv cu) in
            emit trace (Trace.Stitch { via = cu; up_hops = 0; down_hops = List.length w - 1 });
            Some { est = e.dist; walk = oriented w; via = cu; exact = true }
        | None ->
            let d, i = landmark_candidate t cu cv in
            if i < 0 || d = infinity then None
            else begin
              let up = lm_chain t i cu in
              let down = lm_chain t i cv in
              emit trace
                (Trace.Stitch
                   {
                     via = t.landmarks.(i);
                     up_hops = List.length up - 1;
                     down_hops = List.length down - 1;
                   });
              let w = up @ List.tl (List.rev down) in
              Some { est = d; walk = oriented w; via = t.landmarks.(i); exact = false }
            end)
  end
