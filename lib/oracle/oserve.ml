(* Oracle batch serving: the second query surface through the engine.
   An oracle query batch is sharded, cached and guarded exactly like a
   routing batch — Engine.run_custom with an oracle measure closure —
   so the determinism contract carries over verbatim: the omeasured
   array is a pure function of (apsp, oracle, pairs), bit-identical
   across pool widths and with the per-lane caches on or off. *)

module Pool = Cr_util.Domain_pool
module Stats = Cr_util.Stats
module Jsonl = Cr_util.Jsonl
module Guard = Cr_guard
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Sim = Compact_routing.Simulator
module Engine = Cr_engine.Engine
module Workload = Cr_engine.Workload

type omeasured = {
  src : int;
  dst : int;
  est : float;
  dist : float;
  ok : bool;
  hops : int;
  stretch : float;
}

let placeholder =
  { src = 0; dst = 0; est = infinity; dist = infinity; ok = false; hops = 0;
    stretch = infinity }

(* A walk is priced independently by Simulator.check_walk; the two tree
   halves of the estimate are Dijkstra sums, so re-pricing edge-by-edge
   can differ by association — hence the relative tolerance. *)
let cost_tol = 1e-9

(* Answers are canonicalized: the measurement is computed on the
   ordered pair (min, max) — matching Path_oracle.path's own internal
   canonical direction — and only the endpoint labels are flipped back.
   That makes measure (and with it every cached or uncached serving
   mode) a function of the unordered pair up to relabeling: one shared
   cache entry per pair, and bit-identical answers whichever direction
   asked first.  Without it, re-pricing the reversed walk and reading
   the transposed APSP entry could differ in final ulps at the 1e-9
   referee tolerance. *)
let canon s d = if s <= d then (s, d) else (d, s)

let orient ~src ~dst m = if m.src = src then m else { m with src; dst }

let measure_canonical apsp oracle src dst =
  let g = Apsp.graph apsp in
  let d = Apsp.distance apsp src dst in
  if src = dst then { src; dst; est = 0.0; dist = 0.0; ok = true; hops = 0; stretch = 1.0 }
  else
    match Path_oracle.path oracle src dst with
    | None ->
        { src; dst; est = infinity; dist = d; ok = false; hops = 0; stretch = infinity }
    | Some a ->
        let est = a.Path_oracle.est in
        let chk = Sim.check_walk g ~src ~dst ~delivered:true a.Path_oracle.walk in
        let priced_ok =
          Sim.is_delivered chk.Sim.outcome
          && abs_float (chk.Sim.checked_cost -. est) <= cost_tol *. Float.max 1.0 est
        in
        {
          src;
          dst;
          est;
          dist = d;
          ok = priced_ok;
          hops = chk.Sim.checked_hops;
          stretch = (if d > 0.0 && d < infinity then est /. d else infinity);
        }

let measure apsp oracle src dst =
  let cs, cd = canon src dst in
  orient ~src ~dst (measure_canonical apsp oracle cs cd)

let run_batch engine apsp oracle pairs =
  let n = Graph.n (Apsp.graph apsp) in
  let out, metrics, _ =
    Engine.run_custom engine ~n ~placeholder
      ~delivered:(fun m -> m.ok)
      ~canon ~orient
      ~measure:(fun s d -> measure_canonical apsp oracle s d)
      pairs
  in
  ( Array.map (function Ok m -> m | Error _ -> assert false (* unguarded is total *)) out,
    metrics )

let run_guarded ?(chaos = Guard.Chaos.none) engine apsp oracle pairs =
  let n = Graph.n (Apsp.graph apsp) in
  Engine.run_custom ~guarded:true ~chaos engine ~n ~placeholder
    ~delivered:(fun m -> m.ok)
    ~canon ~orient
    ~measure:(fun s d -> measure_canonical apsp oracle s d)
    pairs

type report = {
  oracle_k : int;
  workload : string;
  dist : string;
  queries : int;
  domains : int;
  cache_capacity : int;
  cache_mode : string;
  guard_label : string;
  chaos_label : string;
  wall_s : float;
  queries_per_sec : float;
  latency : Stats.summary;
  cache_hits : int;
  cache_misses : int;
  guards : Engine.guard_stats;
  ok : int; (* valid answers among the served queries *)
  stretch_mean : float;
  stretch_max : float;
  size_entries : int;
  storage_bits : int;
  shared : Cr_util.Ttcache.stats; (* all-zero unless cache_mode = shared *)
}

let hit_rate r = Stats.ratio r.cache_hits (r.cache_hits + r.cache_misses)

let run ?(cache = 0) ?cache_mode ?(dist = Workload.Zipf 1.1) ?(policy = Guard.Policy.off)
    ?(chaos = Guard.Chaos.none) ?(guard_label = "") ~domains ~seed ~queries ~workload apsp
    oracle =
  let pool = Pool.create ~domains in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let n = Graph.n (Apsp.graph apsp) in
      let pairs = Workload.generate ~pool ~connected_in:apsp dist ~seed ~n ~count:queries in
      let engine =
        Engine.create ~cache ?cache_mode ~salt:(Graph.hash (Apsp.graph apsp)) ~policy ~pool ()
      in
      let outcomes, m, gstats = run_guarded ~chaos engine apsp oracle pairs in
      let served =
        Array.of_list
          (List.filter_map
             (function Ok meas -> Some meas | Error _ -> None)
             (Array.to_list outcomes))
      in
      let valid =
        Array.of_list (List.filter (fun (r : omeasured) -> r.ok) (Array.to_list served))
      in
      let stretches = Array.map (fun (r : omeasured) -> r.stretch) valid in
      let s = if Array.length stretches = 0 then Stats.empty_summary else Stats.summarize stretches in
      {
        oracle_k = Path_oracle.k oracle;
        workload;
        dist = Workload.dist_to_string dist;
        queries = m.Engine.queries;
        domains = Pool.domains pool;
        cache_capacity = Engine.cache_capacity engine;
        cache_mode = Engine.cache_mode_to_string (Engine.cache_mode engine);
        guard_label =
          (if guard_label <> "" then guard_label
           else if Guard.Policy.is_off policy then "off"
           else "custom");
        chaos_label = Guard.Chaos.label chaos;
        wall_s = m.Engine.wall_s;
        queries_per_sec = m.Engine.routes_per_sec;
        latency = m.Engine.latency;
        cache_hits = m.Engine.cache_hits;
        cache_misses = m.Engine.cache_misses;
        guards = gstats;
        ok = Array.length valid;
        stretch_mean = s.Stats.mean;
        stretch_max = s.Stats.max;
        size_entries = Path_oracle.size_entries oracle;
        storage_bits = Path_oracle.storage_bits oracle;
        shared = Engine.shared_stats engine;
      })

let report_to_json r =
  Jsonl.obj
    [
      ("surface", Jsonl.str "oracle");
      ("k", Jsonl.int r.oracle_k);
      ("workload", Jsonl.str r.workload);
      ("dist", Jsonl.str r.dist);
      ("queries", Jsonl.int r.queries);
      ("domains", Jsonl.int r.domains);
      ("cache", Jsonl.int r.cache_capacity);
      ("cache_mode", Jsonl.str r.cache_mode);
      ("guards", Jsonl.str r.guard_label);
      ("chaos", Jsonl.str r.chaos_label);
      ("wall_s", Jsonl.float r.wall_s);
      ("oracle_queries_per_sec", Jsonl.float r.queries_per_sec);
      ("latency_p50_us", Jsonl.float (1e6 *. r.latency.Stats.p50));
      ("latency_p95_us", Jsonl.float (1e6 *. r.latency.Stats.p95));
      ("latency_p99_us", Jsonl.float (1e6 *. r.latency.Stats.p99));
      ("cache_hits", Jsonl.int r.cache_hits);
      ("cache_misses", Jsonl.int r.cache_misses);
      ("hit_rate", Jsonl.float (hit_rate r));
      ("shared_hits", Jsonl.int r.shared.Cr_util.Ttcache.hits);
      ("shared_misses", Jsonl.int r.shared.Cr_util.Ttcache.misses);
      ("shared_replaced", Jsonl.int r.shared.Cr_util.Ttcache.replaced);
      ("shared_aged", Jsonl.int r.shared.Cr_util.Ttcache.aged);
      ("served", Jsonl.int r.guards.Engine.ok);
      ("timed_out", Jsonl.int r.guards.Engine.timed_out);
      ("shed", Jsonl.int r.guards.Engine.shed);
      ("breaker_open", Jsonl.int r.guards.Engine.breaker_open);
      ("worker_lost", Jsonl.int r.guards.Engine.worker_lost);
      ("ok", Jsonl.int r.ok);
      ("stretch_mean", Jsonl.float r.stretch_mean);
      ("stretch_max", Jsonl.float r.stretch_max);
      ("size_entries", Jsonl.int r.size_entries);
      ("storage_bits", Jsonl.int r.storage_bits);
    ]
