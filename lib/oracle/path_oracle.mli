(** Path-reporting approximate distance oracle — Thorup–Zwick with
    per-entry tree witnesses.

    Same sampled hierarchy / pivot / bunch construction as
    {!Compact_routing.Distance_oracle} (levels [A₀ ⊇ … ⊇ A_{k−1}]
    sampled with probability [n^{−1/k}], stretch at most [2k − 1],
    expected size [O(k · n^{1+1/k})]), but each bunch entry [(u, w)]
    also stores the neighbor of [u] toward [w] on the shortest-path
    tree of [w].  {!path} therefore returns a {e concrete walk}
    [u → … → w → … → v] realizing the estimate, not just a number —
    the path-reporting regime of Elkin–Neiman–Wulff-Nilsen layered on
    the same machinery the routing baselines use.

    The table is {e constructively closed} at build time: for every
    stored entry and every pivot pair, the full witness chain up the
    tree is inserted, so stitching never dead-ends on a floating-point
    tie.  Closure entries are counted honestly in {!size_entries} and
    {!storage_bits}; {!closure_entries} reports how many closure added.

    Determinism: [build] is a pure function of [(apsp, k, seed)] —
    table contents do not depend on insertion order because every
    entry's value is a pure function of [(node, witness)]. *)

type t

type answer = {
  est : float;  (** the oracle estimate, [d(u,w) + d(w,v)] *)
  walk : int list;  (** concrete walk from [u] to [v] realizing [est] *)
  via : int;  (** the meeting witness [w] *)
  levels : int;  (** pivot levels probed by the alternating walk *)
}

val build : ?k:int -> ?seed:int -> Cr_graph.Apsp.t -> t
(** [k] defaults to 3, [seed] to 31 (the {!Compact_routing.Distance_oracle}
    defaults, so the two share a hierarchy).
    @raise Invalid_argument if [k < 1]. *)

val k : t -> int

val query : ?trace:Cr_obs.Trace.sink -> t -> int -> int -> float
(** Estimated distance; [infinity] for disconnected pairs; [0.] when
    [u = v].  Within a factor [2k − 1] of the true distance, symmetric
    (the alternating walk runs from the canonical [(min u v, max u v)]
    ordering).  With [trace], emits one [Bunch_probe] per level
    probed.  The closed table can terminate the walk earlier than
    [Distance_oracle.query], so estimates are [<=] its — never
    worse. *)

val path : ?trace:Cr_obs.Trace.sink -> t -> int -> int -> answer option
(** The path-reporting query: [None] iff the endpoints are
    disconnected; otherwise a walk from [u] to [v] whose edges all
    exist in the graph and whose total weight equals [est] up to
    floating-point association (the two tree halves are Dijkstra
    distance sums; re-pricing the walk edge-by-edge can differ by
    ulps).  [query] and [path] agree: [est = query t u v] whenever both
    are finite.  With [trace], additionally emits a [Stitch] event for
    the two tree halves. *)

val stretch_bound : t -> float
(** [2k − 1]. *)

val size_entries : t -> int
(** Total bunch entries stored, closure included. *)

val closure_entries : t -> int
(** Entries added by constructive closure (already in {!size_entries}). *)

val node_entries : t -> int -> int
(** Bunch entries stored at one node. *)

val storage_bits : t -> int
(** Bits for all tables: per bunch entry a witness id, an exact
    distance and a next-hop id; plus the per-node pivot arrays
    ([k] ids + [k] distances). *)
