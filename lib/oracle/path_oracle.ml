(* Path-reporting Thorup–Zwick oracle.

   Same sampled hierarchy / pivot / bunch skeleton as
   Compact_routing.Distance_oracle (identical level sampling and pivot
   tie-breaks, so the two structures agree on the hierarchy for a given
   seed), but every bunch entry (u, w) additionally stores a witness:
   the neighbor of u on the shortest-path tree of w, i.e.
   (Apsp.sssp w).parent.(u).  A query then not only returns the
   estimate d(u,w) + d(w,v) but can *stitch* the concrete walk
   u → … → w → … → v by following witness pointers up both trees.

   Cluster closure.  Stitching needs the chain invariant: if (u, w) is
   stored then (x, w) is stored for every x on the tree path u → w.
   Analytically this holds for bunches under a tie-inclusive membership
   test, but floating-point distance sums can break it by an ulp (the
   triangle equality d(x,w) = d(x,u') + d(u',w) is exact over reals,
   not over doubles).  We therefore *constructively close* the table at
   build time: for every base bunch entry and for every pivot pair
   (u, p_j(u)) we walk the parent chain and insert any missing
   intermediate entries.  The inserted values are pure functions of
   (x, w) — (sssp w).dist.(x) and (sssp w).parent.(x) — so the final
   table does not depend on insertion order, and the extra entries are
   counted honestly in size_entries/storage_bits (closure_entries
   reports how many the closure added). *)

module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Dijkstra = Cr_graph.Dijkstra
module Bits = Cr_util.Bits
module Rng = Cr_util.Rng
module Trace = Cr_obs.Trace

type entry = { dist : float; next : int }

type t = {
  k : int;
  n : int;
  pivots : int array array; (* pivots.(u).(j): closest A_j node, -1 if none *)
  pivot_dist : float array array;
  bunches : (int, entry) Hashtbl.t array; (* witness w -> (d(u,w), hop toward w) *)
  closure_entries : int;
}

type answer = { est : float; walk : int list; via : int; levels : int }

(* Insert the chain u → … → w of SPT(w) into the bunch tables,
   returning how many entries were actually added.  Values are pure in
   (x, w), so re-inserting an existing entry is a no-op by value. *)
let close_chain bunches sw w u =
  let added = ref 0 in
  let x = ref u in
  let steps = ref 0 in
  let n = Array.length sw.Dijkstra.dist in
  while !x <> w do
    if !steps > n then invalid_arg "Path_oracle: cyclic parent chain";
    incr steps;
    let nx = sw.Dijkstra.parent.(!x) in
    if nx < 0 then invalid_arg "Path_oracle: broken parent chain";
    if not (Hashtbl.mem bunches.(!x) w) then begin
      Hashtbl.replace bunches.(!x) w { dist = sw.Dijkstra.dist.(!x); next = nx };
      incr added
    end;
    x := nx
  done;
  if not (Hashtbl.mem bunches.(w) w) then begin
    Hashtbl.replace bunches.(w) w { dist = 0.0; next = -1 };
    incr added
  end;
  !added

let build ?(k = 3) ?(seed = 31) apsp =
  if k < 1 then invalid_arg "Path_oracle.build: k < 1";
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let rng = Rng.create seed in
  let p = float_of_int n ** (-1.0 /. float_of_int k) in
  let level = Array.make n 0 in
  for v = 0 to n - 1 do
    let rec climb j = if j < k - 1 && Rng.bernoulli rng p then climb (j + 1) else j in
    level.(v) <- climb 0
  done;
  if k > 1 && not (Array.exists (fun l -> l = k - 1) level) then level.(0) <- k - 1;
  let pivots = Array.make_matrix n k (-1) in
  let pivot_dist = Array.make_matrix n k infinity in
  for u = 0 to n - 1 do
    let d = (Apsp.sssp apsp u).Dijkstra.dist in
    for v = 0 to n - 1 do
      if d.(v) < infinity then
        for j = 0 to level.(v) do
          if
            d.(v) < pivot_dist.(u).(j)
            || (d.(v) = pivot_dist.(u).(j) && (pivots.(u).(j) = -1 || v < pivots.(u).(j)))
          then begin
            pivot_dist.(u).(j) <- d.(v);
            pivots.(u).(j) <- v
          end
        done
    done
  done;
  let bunches = Array.init n (fun _ -> Hashtbl.create 16) in
  let base = ref 0 in
  for w = 0 to n - 1 do
    let sw = Apsp.sssp apsp w in
    let d = sw.Dijkstra.dist in
    let j = level.(w) in
    for u = 0 to n - 1 do
      if d.(u) < infinity then begin
        let next_pivot_d = if j + 1 >= k then infinity else pivot_dist.(u).(j + 1) in
        if d.(u) < next_pivot_d then begin
          Hashtbl.replace bunches.(u) w { dist = d.(u); next = sw.Dijkstra.parent.(u) };
          incr base
        end
      end
    done
  done;
  (* constructive closure: base bunch entries, then pivot chains *)
  let closed = ref 0 in
  for w = 0 to n - 1 do
    let sw = Apsp.sssp apsp w in
    for u = 0 to n - 1 do
      if Hashtbl.mem bunches.(u) w then closed := !closed + close_chain bunches sw w u
    done
  done;
  for u = 0 to n - 1 do
    for j = 0 to k - 1 do
      let w = pivots.(u).(j) in
      if w >= 0 then closed := !closed + close_chain bunches (Apsp.sssp apsp w) w u
    done
  done;
  { k; n; pivots; pivot_dist; bunches; closure_entries = !closed }

let k t = t.k
let stretch_bound t = float_of_int ((2 * t.k) - 1)
let closure_entries t = t.closure_entries

let size_entries t = Array.fold_left (fun acc b -> acc + Hashtbl.length b) 0 t.bunches

let node_entries t u = Hashtbl.length t.bunches.(u)

let storage_bits t =
  let idb = Bits.id_bits ~n:t.n in
  (* bunch: witness id + exact distance + next-hop id; pivot tables:
     k ids + k distances per node *)
  (size_entries t * ((2 * idb) + Bits.distance_bits))
  + (t.n * t.k * (idb + Bits.distance_bits))

let emit trace ev = match trace with None -> () | Some sink -> sink ev

(* The alternating walk from the canonical (min, max) ordering (the raw
   alternation is not symmetric — see Distance_oracle.query).  Returns
   the termination state: active endpoint x whose level-j pivot w landed
   in the other endpoint's bunch, with both half-distances. *)
let alternate ?trace t u v =
  let rec walk j x y w dxw =
    match Hashtbl.find_opt t.bunches.(y) w with
    | Some e ->
        emit trace (Trace.Bunch_probe { level = j; active = x; witness = w; hit = true });
        Some (x, y, j, w, dxw, e)
    | None ->
        emit trace (Trace.Bunch_probe { level = j; active = x; witness = w; hit = false });
        let j = j + 1 in
        if j >= t.k then None
        else begin
          let w' = t.pivots.(y).(j) in
          if w' < 0 then None else walk j y x w' t.pivot_dist.(y).(j)
        end
  in
  let w0 = t.pivots.(u).(0) in
  if w0 < 0 then None else walk 0 u v w0 t.pivot_dist.(u).(0)

let query ?trace t u v =
  let u, v = (min u v, max u v) in
  if u = v then 0.0
  else
    match alternate ?trace t u v with
    | None -> infinity
    | Some (_, _, _, _, dxw, e) -> dxw +. e.dist

(* Chain x → … → w through the bunch next-pointers; the closure
   invariant guarantees every intermediate entry exists. *)
let chain t x w =
  let rec go x acc steps =
    if steps > t.n then invalid_arg "Path_oracle: cyclic witness chain";
    if x = w then List.rev (w :: acc)
    else
      match Hashtbl.find_opt t.bunches.(x) w with
      | None -> invalid_arg "Path_oracle: closure invariant broken"
      | Some e -> go e.next (x :: acc) (steps + 1)
  in
  go x [] 0

let path ?trace t u v =
  if u = v then Some { est = 0.0; walk = [ u ]; via = u; levels = 0 }
  else begin
    let cu, cv = (min u v, max u v) in
    match alternate ?trace t cu cv with
    | None -> None
    | Some (x, y, j, w, dxw, e) ->
        let up = chain t x w in
        let down = chain t y w in
        emit trace
          (Trace.Stitch { via = w; up_hops = List.length up - 1; down_hops = List.length down - 1 });
        (* up ends at w, down starts from y and ends at w: glue into
           x → … → w → … → y, then orient from u *)
        let x_to_y = up @ List.tl (List.rev down) in
        let canon = if x = cu then x_to_y else List.rev x_to_y in
        let walk = if u = cu then canon else List.rev canon in
        Some { est = dxw +. e.dist; walk; via = w; levels = j + 1 }
  end
