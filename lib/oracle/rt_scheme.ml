(* Roditty–Tov-style routing baseline: route along the path the
   path-reporting oracle stitches.  The oracle's bunch tables double as
   routing tables — each entry's next-hop witness is exactly the port
   decision a node needs to forward toward the meeting witness — so the
   scheme inherits the oracle's 2k−1 stretch and O(k · n^{1+1/k})
   expected table size, traded against the AGM'06 schemes in the
   roster as the "oracle corner" of the space–stretch landscape. *)

module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Bits = Cr_util.Bits
module Scheme = Compact_routing.Scheme
module Storage = Compact_routing.Storage
module Trace = Cr_obs.Trace

let make ?(k = 3) ?(seed = 31) apsp =
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let oracle = Path_oracle.build ~k ~seed apsp in
  let storage = Storage.create ~n in
  let idb = Bits.id_bits ~n in
  for u = 0 to n - 1 do
    Storage.add storage ~node:u ~category:"oracle_bunch"
      ~bits:(Path_oracle.node_entries oracle u * ((2 * idb) + Bits.distance_bits));
    Storage.add storage ~node:u ~category:"oracle_pivot"
      ~bits:(k * (idb + Bits.distance_bits))
  done;
  let route ?trace src dst =
    if src = dst then { Scheme.walk = [ src ]; delivered = true; phases_used = 0 }
    else
      match Path_oracle.path ?trace oracle src dst with
      | None ->
          (match trace with None -> () | Some sink -> sink (Trace.No_route { phase = k }));
          { Scheme.walk = [ src ]; delivered = false; phases_used = k }
      | Some a ->
          (match trace with
          | None -> ()
          | Some sink -> sink (Trace.Deliver { phase = a.Path_oracle.levels; node = dst }));
          { Scheme.walk = a.Path_oracle.walk; delivered = true;
            phases_used = a.Path_oracle.levels }
  in
  { Scheme.name = "rt"; graph = g; storage; header_bits = Scheme.label_header_bits ~n; route }
