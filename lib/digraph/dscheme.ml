module Bits = Cr_util.Bits
module Landmarks = Cr_landmark.Landmarks

type route = { walk : int list; delivered : bool; phases_used : int }

(* A phase center's structures: shortest-path in/out arborescences plus a
   hash directory of the member identifiers, distributed over members. *)
type center = {
  fwd : Ddijkstra.result; (* out-tree: paths center -> x *)
  bwd : Ddijkstra.result; (* in-tree: paths x -> center *)
  members : int array; (* sorted; directory slots are positions here *)
  dir : (int, int) Hashtbl.t array; (* slot -> (ident -> node) *)
  touched : int array; (* members plus relay nodes on their tree paths *)
}

type t = {
  rt : Rt.t;
  k : int;
  plans : int array array; (* plans.(u).(i) = center of phase i *)
  complete : bool array array; (* whether E(u,i) is fully registered *)
  centers : (int, center) Hashtbl.t;
  global_center : int;
  storage : int array;
  mutable fallback : int;
}

let slot_of ident m =
  let z = Int64.of_int (ident + 0x51CC) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 8) mod m

let build_center g rt c member_set =
  let members =
    let acc = ref [] in
    Hashtbl.iter (fun v () -> acc := v :: !acc) member_set;
    let a = Array.of_list !acc in
    Array.sort Int.compare a;
    a
  in
  ignore rt;
  let fwd = Ddijkstra.run g c in
  let bwd = Ddijkstra.run_reverse g c in
  let m = max 1 (Array.length members) in
  let dir = Array.init m (fun _ -> Hashtbl.create 2) in
  Array.iter
    (fun v ->
      let ident = Digraph.name_of g v in
      Hashtbl.replace dir.(slot_of ident m) ident v)
    members;
  (* relay nodes: everything lying on a member's in/out tree path *)
  let touched_set = Hashtbl.create (2 * Array.length members) in
  let mark_up parent v =
    let rec go x = if x >= 0 && not (Hashtbl.mem touched_set x) then begin
        Hashtbl.replace touched_set x ();
        go parent.(x)
      end
      else if x >= 0 && Hashtbl.mem touched_set x then ()
    in
    go v
  in
  Array.iter
    (fun v ->
      mark_up fwd.Ddijkstra.parent v;
      mark_up bwd.Ddijkstra.parent v)
    members;
  Hashtbl.replace touched_set c ();
  let touched = Array.of_seq (Hashtbl.to_seq_keys touched_set) in
  Array.sort Int.compare touched;
  { fwd; bwd; members; dir; touched }

let build ?(k = 3) ?(seed = 1) ?landmark_cap rt =
  if k < 1 then invalid_arg "Dscheme.build: k < 1";
  if not (Rt.strongly_connected rt) then
    invalid_arg "Dscheme.build: digraph must be strongly connected";
  let g = Rt.digraph rt in
  let n = Digraph.n g in
  let cap =
    match landmark_cap with
    | Some c -> max 1 (min n c)
    | None -> max 1 (min n (Bits.ceil_pow (float_of_int (max 2 n)) (2.0 /. float_of_int k)))
  in
  let kappa = float_of_int (max 2 (Bits.ceil_pow (float_of_int (max 2 n)) (1.0 /. float_of_int k))) in
  let lm = Landmarks.build ~seed ~n ~k in
  let log_delta =
    max 0 (int_of_float (Float.ceil (Float.log (Float.max 1.0 (Rt.rt_diameter rt)) /. Float.log 2.0)))
  in
  (* ranges a(u,i) over round-trip balls *)
  let a = Array.make_matrix n (k + 1) 0 in
  for u = 0 to n - 1 do
    for i = 0 to k - 1 do
      let base = Rt.rt_ball_size rt u (2.0 ** float_of_int a.(u).(i)) in
      let target = kappa *. float_of_int base in
      let rec find j =
        if j > log_delta then log_delta
        else if float_of_int (Rt.rt_ball_size rt u (2.0 ** float_of_int j)) >= target then j
        else find (j + 1)
      in
      a.(u).(i + 1) <- find 1
    done
  done;
  (* nearby landmark sets S(u,i) over the RT metric, inverted into
     member sets per center *)
  let member_sets : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let member_set c =
    match Hashtbl.find_opt member_sets c with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 16 in
        Hashtbl.replace member_sets c s;
        s
  in
  let s_of = Array.make n [||] in
  for u = 0 to n - 1 do
    let tbl = Hashtbl.create (k * cap) in
    for i = 0 to k - 1 do
      Array.iter
        (fun v -> Hashtbl.replace tbl v ())
        (Rt.rt_closest_in rt u cap (fun v -> Landmarks.in_level lm v i))
    done;
    let arr = Array.of_seq (Hashtbl.to_seq_keys tbl) in
    Array.sort Int.compare arr;
    s_of.(u) <- arr;
    Array.iter (fun c -> Hashtbl.replace (member_set c) u ()) arr
  done;
  (* phase centers: closest highest-rank landmark inside the RT ball *)
  let plans = Array.make_matrix n k (-1) in
  for u = 0 to n - 1 do
    for i = 0 to k - 1 do
      let radius = if i = 0 then 0.0 else 2.0 ** float_of_int a.(u).(i) in
      let ball = Rt.rt_ball rt u radius in
      let m = Landmarks.highest_rank_in lm ball in
      let c =
        if m < 0 then u
        else begin
          let found = Rt.rt_closest_in rt u 1 (fun v -> Landmarks.rank lm v >= m && Rt.rt rt u v <= radius) in
          if Array.length found > 0 then found.(0) else u
        end
      in
      plans.(u).(i) <- c;
      Hashtbl.replace (member_set c) u () (* the source must be in its center's trees *)
    done
  done;
  (* global fallback center: a top-rank landmark; spans everything *)
  let top = ref 0 in
  for v = 0 to n - 1 do
    if Landmarks.rank lm v > Landmarks.rank lm !top then top := v
  done;
  let global_center = !top in
  let all = member_set global_center in
  for v = 0 to n - 1 do
    Hashtbl.replace all v ()
  done;
  (* build structures for every center in use *)
  let centers = Hashtbl.create 64 in
  Hashtbl.iter
    (fun c s -> Hashtbl.replace centers c (build_center g rt c s))
    member_sets;
  (* completeness of phase coverage: E(u,i) = BRT(u, 2^{a(u,i+1)}/6)
     fully registered at the phase center? *)
  let complete = Array.make_matrix n k false in
  for u = 0 to n - 1 do
    for i = 0 to k - 1 do
      let c = plans.(u).(i) in
      let ctr = Hashtbl.find centers c in
      let in_members v =
        (* members is sorted *)
        let lo = ref 0 and hi = ref (Array.length ctr.members - 1) in
        let found = ref false in
        while (not !found) && !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if ctr.members.(mid) = v then found := true
          else if ctr.members.(mid) < v then lo := mid + 1
          else hi := mid - 1
        done;
        !found
      in
      let e = Rt.rt_ball rt u (2.0 ** float_of_int a.(u).(i + 1) /. 6.0) in
      complete.(u).(i) <- Array.for_all in_members e
    done
  done;
  (* ---- storage accounting ---- *)
  let idb = Bits.id_bits ~n in
  let storage = Array.make n 0 in
  Hashtbl.iter
    (fun _c (ctr : center) ->
      (* forwarding state: parent pointers in both arborescences, charged
         to every node the trees pass through (members and relays) *)
      Array.iter (fun v -> storage.(v) <- storage.(v) + (2 * idb)) ctr.touched;
      (* directory entries, charged to the slot owner *)
      Array.iteri
        (fun pos v -> storage.(v) <- storage.(v) + (Hashtbl.length ctr.dir.(pos) * 3 * idb))
        ctr.members)
    centers;
  for u = 0 to n - 1 do
    storage.(u) <- storage.(u) + ((k + 1) * Bits.range_bits) + (k * idb) + idb
  done;
  { rt; k; plans; complete; centers; global_center; storage; fallback = 0 }

(* directed tree walks *)
let out_path ctr x = Ddijkstra.path_from_source ctr.fwd x (* center -> x *)

let in_path ctr x = Ddijkstra.path_to_source ctr.bwd x (* x -> center *)

let append walk_rev = function
  | [] -> walk_rev
  | _first :: rest -> List.rev_append rest walk_rev

let search_center ctr walk_rev ident =
  (* at the center: go to the directory slot, look up, return via center *)
  let m = Array.length ctr.members in
  if m = 0 then (walk_rev, None)
  else begin
    let d = ctr.members.(slot_of ident m) in
    let walk_rev = append walk_rev (out_path ctr d) in
    let hit = Hashtbl.find_opt ctr.dir.(slot_of ident m) ident in
    let walk_rev = append walk_rev (in_path ctr d) in
    match hit with
    | Some v ->
        let walk_rev = append walk_rev (out_path ctr v) in
        (walk_rev, Some v)
    | None -> (walk_rev, None)
  end

let route t src dst =
  let g = Rt.digraph t.rt in
  let ident = Digraph.name_of g dst in
  if src = dst then { walk = [ src ]; delivered = true; phases_used = 0 }
  else begin
    let rec phase i walk_rev current =
      (* invariant: current = src (we always return to the source between
         phases) *)
      if i >= t.k then global walk_rev
      else begin
        let c = t.plans.(src).(i) in
        let ctr = Hashtbl.find t.centers c in
        let walk_rev = append walk_rev (in_path ctr current) in
        let walk_rev, found = search_center ctr walk_rev ident in
        match found with
        | Some _ -> { walk = List.rev walk_rev; delivered = true; phases_used = i + 1 }
        | None ->
            let walk_rev = append walk_rev (out_path ctr src) in
            phase (i + 1) walk_rev src
      end
    and global walk_rev =
      let ctr = Hashtbl.find t.centers t.global_center in
      let walk_rev = append walk_rev (in_path ctr src) in
      let walk_rev, found = search_center ctr walk_rev ident in
      match found with
      | Some _ ->
          t.fallback <- t.fallback + 1;
          { walk = List.rev walk_rev; delivered = true; phases_used = t.k + 1 }
      | None ->
          let walk_rev = append walk_rev (out_path ctr src) in
          { walk = List.rev walk_rev; delivered = false; phases_used = t.k + 1 }
    in
    phase 0 [ src ] src
  end

let node_storage_bits t v = t.storage.(v)

let max_storage_bits t = Array.fold_left max 0 t.storage

let mean_storage_bits t =
  float_of_int (Array.fold_left ( + ) 0 t.storage) /. float_of_int (Array.length t.storage)

let stats_fallback t = t.fallback

let phase_coverage t =
  let total = ref 0 and ok = ref 0 in
  Array.iter
    (fun row ->
      Array.iter
        (fun c ->
          incr total;
          if c then incr ok)
        row)
    t.complete;
  if !total = 0 then 1.0 else float_of_int !ok /. float_of_int !total
