module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Ball = Cr_graph.Ball
module Dijkstra = Cr_graph.Dijkstra
module Bits = Cr_util.Bits
module Digit_hash = Cr_util.Digit_hash

let shortest_path apsp a b =
  (* walk b's shortest-path tree backwards: a ... b *)
  List.rev (Dijkstra.path_to (Apsp.sssp apsp b) a)

let build ?(k = 3) ?(seed = 77) apsp =
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let sigma = max 2 (Bits.ceil_pow (float_of_int (max 2 n)) (1.0 /. float_of_int k)) in
  let hash = Digit_hash.create ~seed ~sigma ~digits:k in
  let idb = Bits.id_bits ~n in
  let ident v = Graph.name_of g v in
  let h = Array.init n (fun v -> Digit_hash.hash hash (ident v)) in
  (* prefix buckets: for each level j (1..k), nodes keyed by their first j
     digits *)
  let bucket_key digits j =
    let v = ref 0 in
    for i = 0 to j - 1 do
      v := (!v * sigma) + digits.(i)
    done;
    (j * (sigma * n)) + !v
  in
  let buckets = Hashtbl.create (2 * n * k) in
  for v = 0 to n - 1 do
    for j = 1 to k do
      let key = bucket_key h.(v) j in
      Hashtbl.replace buckets key (v :: Option.value ~default:[] (Hashtbl.find_opt buckets key))
    done
  done;
  let storage = Storage.create ~n in
  (* vicinity tables: sigma closest nodes *)
  let vicinity = Array.make n [||] in
  for u = 0 to n - 1 do
    let ball = Apsp.ball apsp u in
    vicinity.(u) <- Ball.closest ball sigma;
    let pb = Bits.port_bits ~degree:(max 1 (Graph.degree g u)) in
    Storage.add storage ~node:u ~category:"exp-vicinity"
      ~bits:(Array.length vicinity.(u) * ((2 * idb) + pb))
  done;
  let in_vicinity = Array.map (fun arr ->
      let t = Hashtbl.create (Array.length arr) in
      Array.iter (fun v -> Hashtbl.replace t v ()) arr;
      t) vicinity in
  (* digit pointers: next.(u).(j-1).(c) = nearest node whose hash extends
     h(u)'s (j-1)-prefix by digit c; -1 when none exists *)
  let next = Array.init n (fun _ -> Array.make_matrix k sigma (-1)) in
  for u = 0 to n - 1 do
    let ball = Apsp.ball apsp u in
    for j = 1 to k do
      for c = 0 to sigma - 1 do
        let target_prefix = Array.init j (fun i -> if i = j - 1 then c else h.(u).(i)) in
        let key = bucket_key target_prefix j in
        match Hashtbl.find_opt buckets key with
        | None | Some [] -> ()
        | Some candidates ->
            (* nearest by distance (ties by id): scan the distance order *)
            let member = Hashtbl.create (List.length candidates) in
            List.iter (fun v -> Hashtbl.replace member v ()) candidates;
            let found = Ball.closest_in ball 1 (fun v -> Hashtbl.mem member v) in
            if Array.length found > 0 then begin
              next.(u).(j - 1).(c) <- found.(0);
              (* charge the pointer: id + a source route of hop-count ports *)
              let hops = max 0 (List.length (shortest_path apsp u found.(0)) - 1) in
              Storage.add storage ~node:u ~category:"exp-pointers"
                ~bits:(idb + (hops * Bits.port_bits ~degree:(max 1 (Graph.max_degree g))))
            end
      done
    done
  done;
  (* owner directories: nodes whose full hash equals mine *)
  let owned = Array.make n [] in
  for v = 0 to n - 1 do
    let key = bucket_key h.(v) k in
    match Hashtbl.find_opt buckets key with
    | Some owners ->
        (* every node with the same full hash owns v (including v) *)
        List.iter
          (fun o ->
            (* ownership only makes sense within a connected component *)
            if o <> v && Apsp.distance apsp o v < infinity then owned.(o) <- v :: owned.(o))
          owners
    | None -> ()
  done;
  for o = 0 to n - 1 do
    List.iter
      (fun v ->
        let hops = max 0 (List.length (shortest_path apsp o v) - 1) in
        Storage.add storage ~node:o ~category:"exp-owners"
          ~bits:((2 * idb) + (hops * Bits.port_bits ~degree:(max 1 (Graph.max_degree g)))))
      owned.(o)
  done;
  let route ?trace src dst =
    let emit ev = match trace with None -> () | Some f -> f ev in
    if src = dst then begin
      emit (Cr_obs.Trace.Deliver { phase = 0; node = dst });
      { Scheme.walk = [ src ]; delivered = true; phases_used = 1 }
    end
    else if Apsp.distance apsp src dst = infinity then begin
      emit (Cr_obs.Trace.No_route { phase = 1 });
      { Scheme.walk = [ src ]; delivered = false; phases_used = 1 }
    end
    else begin
      let y = Digit_hash.hash hash (ident dst) in
      (match trace with
      | None -> ()
      | Some f ->
          f (Cr_obs.Trace.Phase_start
               { phase = 1; kind = Cr_obs.Trace.Vicinity; center = src; bound = k }));
      let rec resolve current walk_rev j =
        (* vicinity check at every visited directory node *)
        if Hashtbl.mem in_vicinity.(current) dst then begin
          emit (Cr_obs.Trace.Phase_result { phase = j; found = true; rounds = j });
          emit (Cr_obs.Trace.Deliver { phase = j; node = dst });
          let tail = match shortest_path apsp current dst with [] -> [] | _ :: r -> r in
          { Scheme.walk = List.rev (List.rev_append tail walk_rev); delivered = true; phases_used = j }
        end
        else if j > k then begin
          (* current owns the full hash: final source-routed hop *)
          if List.mem dst owned.(current) || current = dst then begin
            emit (Cr_obs.Trace.Tree_step { round = j; from_node = current; to_node = dst });
            emit (Cr_obs.Trace.Deliver { phase = k + 1; node = dst });
            let tail = match shortest_path apsp current dst with [] -> [] | _ :: r -> r in
            {
              Scheme.walk = List.rev (List.rev_append tail walk_rev);
              delivered = true;
              phases_used = k + 1;
            }
          end
          else begin
            emit (Cr_obs.Trace.No_route { phase = k + 1 });
            { Scheme.walk = List.rev walk_rev; delivered = false; phases_used = k + 1 }
          end
        end
        else begin
          match next.(current).(j - 1).(y.(j - 1)) with
          | -1 ->
              emit (Cr_obs.Trace.No_route { phase = j });
              { Scheme.walk = List.rev walk_rev; delivered = false; phases_used = j }
          | nxt ->
              emit (Cr_obs.Trace.Tree_step { round = j; from_node = current; to_node = nxt });
              let tail = match shortest_path apsp current nxt with [] -> [] | _ :: r -> r in
              resolve nxt (List.rev_append tail walk_rev) (j + 1)
        end
      in
      resolve src [ src ] 1
    end
  in
  {
    Scheme.name = Printf.sprintf "ablp-exp(k=%d)" k;
    graph = g;
    storage;
    header_bits = Scheme.default_header_bits ~n + Bits.bits_for (k + 1);
    route;
  }
