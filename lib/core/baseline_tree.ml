module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Dijkstra = Cr_graph.Dijkstra
module Tree = Cr_tree.Tree
module Dense = Cr_tree.Dense_tree_routing

(* Root at an approximate center: the node minimizing eccentricity. *)
let pick_center apsp n =
  let best = ref 0 and best_ecc = ref infinity in
  for v = 0 to n - 1 do
    let e = Dijkstra.eccentricity (Apsp.sssp apsp v) in
    if e < !best_ecc then begin
      best := v;
      best_ecc := e
    end
  done;
  !best

let build apsp =
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let center = pick_center apsp n in
  let tree = Tree.of_sssp g (Apsp.sssp apsp center) ~keep:(fun _ -> true) in
  let rt = Dense.build tree in
  let storage = Storage.create ~n in
  Array.iter
    (fun w ->
      Storage.add storage ~node:w ~category:"tree" ~bits:(Dense.node_storage_bits rt w))
    (Tree.nodes tree);
  let route ?trace src dst =
    let emit ev = match trace with None -> () | Some f -> f ev in
    if src = dst then begin
      emit (Cr_obs.Trace.Deliver { phase = 0; node = dst });
      { Scheme.walk = [ src ]; delivered = true; phases_used = 1 }
    end
    else if not (Tree.mem tree src && Tree.mem tree dst) then begin
      emit (Cr_obs.Trace.No_route { phase = 1 });
      { Scheme.walk = [ src ]; delivered = false; phases_used = 1 }
    end
    else begin
      (* climb to the root, then search the directory *)
      (match trace with
      | None -> ()
      | Some f ->
          f (Cr_obs.Trace.Phase_start
               { phase = 1; kind = Cr_obs.Trace.Dense; center; bound = 0 });
          if src <> center then
            f (Cr_obs.Trace.Climb
                 {
                   phase = 1;
                   from_node = src;
                   to_node = center;
                   hops = (match Tree.path tree src center with [] -> 0 | p -> List.length p - 1);
                 }));
      let up = Tree.path tree src center in
      let r = Dense.search ?trace rt (Graph.name_of g dst) in
      let search_tail = match r.Dense.walk with [] -> [] | _ :: rest -> rest in
      match r.Dense.outcome with
      | Dense.Found _ ->
          emit (Cr_obs.Trace.Phase_result { phase = 1; found = true; rounds = 1 });
          emit (Cr_obs.Trace.Deliver { phase = 1; node = dst });
          { Scheme.walk = up @ search_tail; delivered = true; phases_used = 1 }
      | Dense.Not_found_reported ->
          emit (Cr_obs.Trace.Phase_result { phase = 1; found = false; rounds = 1 });
          emit (Cr_obs.Trace.No_route { phase = 1 });
          { Scheme.walk = up @ search_tail; delivered = false; phases_used = 1 }
    end
  in
  { Scheme.name = "single-tree"; graph = g; storage;
    header_bits = Scheme.label_header_bits ~n;
    route }
