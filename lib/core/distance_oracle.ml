module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Dijkstra = Cr_graph.Dijkstra
module Bits = Cr_util.Bits
module Rng = Cr_util.Rng

type t = {
  k : int;
  n : int;
  pivots : int array array; (* pivots.(u).(j): closest A_j node, -1 if none *)
  pivot_dist : float array array;
  bunches : (int, float) Hashtbl.t array; (* bunch member -> exact distance *)
}

let build ?(k = 3) ?(seed = 31) apsp =
  if k < 1 then invalid_arg "Distance_oracle.build: k < 1";
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let rng = Rng.create seed in
  let p = float_of_int n ** (-1.0 /. float_of_int k) in
  let level = Array.make n 0 in
  for v = 0 to n - 1 do
    let rec climb j = if j < k - 1 && Rng.bernoulli rng p then climb (j + 1) else j in
    level.(v) <- climb 0
  done;
  if k > 1 && not (Array.exists (fun l -> l = k - 1) level) then level.(0) <- k - 1;
  let pivots = Array.make_matrix n k (-1) in
  let pivot_dist = Array.make_matrix n k infinity in
  for u = 0 to n - 1 do
    let d = (Apsp.sssp apsp u).Dijkstra.dist in
    for v = 0 to n - 1 do
      if d.(v) < infinity then
        for j = 0 to level.(v) do
          if
            d.(v) < pivot_dist.(u).(j)
            || (d.(v) = pivot_dist.(u).(j) && (pivots.(u).(j) = -1 || v < pivots.(u).(j)))
          then begin
            pivot_dist.(u).(j) <- d.(v);
            pivots.(u).(j) <- v
          end
        done
    done
  done;
  let bunches = Array.init n (fun _ -> Hashtbl.create 16) in
  for u = 0 to n - 1 do
    let d = (Apsp.sssp apsp u).Dijkstra.dist in
    for w = 0 to n - 1 do
      if d.(w) < infinity then begin
        let j = level.(w) in
        let next_pivot_d = if j + 1 >= k then infinity else pivot_dist.(u).(j + 1) in
        if d.(w) < next_pivot_d then Hashtbl.replace bunches.(u) w d.(w)
      end
    done
  done;
  { k; n; pivots; pivot_dist; bunches }

let k t = t.k

(* The classic alternating query: find the smallest level j such that the
   pivot of the "active" endpoint lands in the other's bunch.  The walk
   is run from the canonical (min, max) ordering of the endpoints: the
   raw alternation is not symmetric (u ∈ B(v) does not imply v ∈ B(u),
   so starting from the other side can terminate at a different level),
   and a distance estimate should not depend on who asks. *)
let query t u v =
  let u, v = (min u v, max u v) in
  if u = v then 0.0
  else begin
    let rec walk j u v w du_w =
      (* invariant: w = p_j(u), du_w = d(u, w) *)
      match Hashtbl.find_opt t.bunches.(v) w with
      | Some dv_w -> du_w +. dv_w
      | None ->
          let j = j + 1 in
          if j >= t.k then infinity
          else begin
            (* swap roles *)
            let w' = t.pivots.(v).(j) in
            if w' < 0 then infinity else walk j v u w' t.pivot_dist.(v).(j)
          end
    in
    let w0 = t.pivots.(u).(0) in
    if w0 < 0 then infinity else walk 0 u v w0 t.pivot_dist.(u).(0)
  end

let stretch_bound t = float_of_int ((2 * t.k) - 1)

let size_entries t = Array.fold_left (fun acc b -> acc + Hashtbl.length b) 0 t.bunches

let storage_bits t =
  let idb = Bits.id_bits ~n:t.n in
  size_entries t * (idb + Bits.distance_bits)
