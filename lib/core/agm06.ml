module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Ball = Cr_graph.Ball
module Bits = Cr_util.Bits
module Landmarks = Cr_landmark.Landmarks
module Tree = Cr_tree.Tree
module Ni = Cr_tree.Ni_tree_routing
module Dense = Cr_tree.Dense_tree_routing
module Cover = Cr_cover.Sparse_cover

type mode = Full | Sparse_only | Dense_only

type stats = {
  routes : int;
  delivered : int;
  fallback_resolved : int;
  failed : int;
  phase_found : int array;
}

(* Live counters behind [stats] snapshots.  [route] may be called from
   several domains at once (the batch engine shards query arrays over
   the shared pool), so the counters are atomic: totals stay exact under
   any interleaving. *)
type counters = {
  routes_c : int Atomic.t;
  delivered_c : int Atomic.t;
  fallback_c : int Atomic.t;
  failed_c : int Atomic.t;
  phase_found_c : int Atomic.t array;
}

(* Per-(node, phase) routing plan. *)
type phase_plan =
  | Sparse of { center : int; bound : int }
  | Dense_phase of { level : int; cluster : int (* index into that level's cover *) }

type t = {
  params : Params.t;
  mode : mode;
  apsp : Apsp.t;
  decomp : Decomposition.t;
  landmarks : Landmarks.t;
  plans : phase_plan array array; (* plans.(u).(i) for levels i = 0..k-1 *)
  centers : (int, Ni.t) Hashtbl.t; (* sparse centers in use -> NI routing *)
  covers : (int * Cover.t * Dense.t array) list; (* level, cover, per-cluster routing *)
  global_root : int;
  global_ni : Ni.t;
  storage : Storage.t;
  counters : counters;
  scheme : Scheme.t;
}

let tree_path_append tree walk_rev a b =
  match Tree.path tree a b with
  | [] -> walk_rev
  | _first :: rest -> List.rev_append rest walk_rev

(* Append a search walk (which starts at its tree root, where the main
   walk currently stands). *)
let search_walk_append walk_rev = function
  | [] -> walk_rev
  | _first :: rest -> List.rev_append rest walk_rev

let build ?params ?(mode = Full) ?profile apsp =
  let params = match params with Some p -> p | None -> Params.scaled ~k:3 () in
  Params.validate params;
  (* [prof stage f] times the stage when a profile was supplied; without
     one it is [f ()] — construction work is identical either way. *)
  let prof stage f =
    match profile with None -> f () | Some p -> Cr_obs.Profile.time p stage f
  in
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  if n < 1 then invalid_arg "Agm06.build: empty graph";
  if Graph.m g > 0 && Graph.min_weight g < 1.0 -. 1e-9 then
    invalid_arg "Agm06.build: graph must be normalized (min edge weight 1)";
  let k = params.Params.k in
  let seed = params.Params.seed in
  let decomp = prof "decomposition" (fun () -> Decomposition.build apsp ~k) in
  let landmarks = prof "landmark-hierarchy" (fun () -> Landmarks.build ~seed ~n ~k) in
  let cap = Params.landmark_cap params ~n in
  let storage = Storage.create ~n in
  let idb = Bits.id_bits ~n in
  (* ---- nearby landmark sets S(u,i) and their inversion ---- *)
  let s_sets = Array.make n [||] in
  let members_of = Array.make n [] in
  prof "nearby-sets" (fun () ->
      for u = 0 to n - 1 do
        let ball = Apsp.ball apsp u in
        let tbl = Hashtbl.create (k * cap) in
        for i = 0 to k - 1 do
          Array.iter
            (fun v -> Hashtbl.replace tbl v ())
            (Landmarks.nearby landmarks ball ~level:i ~cap)
        done;
        let arr = Array.of_seq (Hashtbl.to_seq_keys tbl) in
        Array.sort Int.compare arr;
        s_sets.(u) <- arr
      done;
      for u = n - 1 downto 0 do
        Array.iter (fun v -> members_of.(v) <- u :: members_of.(v)) s_sets.(u)
      done);
  (* ---- global fallback root: closest-to-everything top-rank landmark ---- *)
  let top_rank = ref 0 in
  for v = 0 to n - 1 do
    if Landmarks.rank landmarks v > !top_rank then top_rank := Landmarks.rank landmarks v
  done;
  let global_root = ref (-1) in
  for v = n - 1 downto 0 do
    if Landmarks.rank landmarks v = !top_rank then global_root := v
  done;
  let global_root = !global_root in
  (* ---- phase plans ---- *)
  let treat_as_dense u i =
    match mode with
    | Full -> Decomposition.is_dense decomp u i
    | Sparse_only -> false
    | Dense_only -> true
  in
  let sparse_centers = Hashtbl.create 64 in
  let plans =
    Array.init n (fun u ->
        Array.init k (fun i ->
            if treat_as_dense u i then
              Dense_phase { level = Decomposition.range decomp u i; cluster = -1 (* filled below *) }
            else begin
              let ball = Apsp.ball apsp u in
              (* A(u,0) = {u}: radius 0; otherwise the ball of radius 2^{a(u,i)} *)
              let radius =
                if i = 0 then 0.0
                else Decomposition.radius_of_exponent (Decomposition.range decomp u i)
              in
              let center =
                match Landmarks.center_in landmarks ball ~radius with
                | Some c -> c
                | None -> u
              in
              Hashtbl.replace sparse_centers center ();
              Sparse { center; bound = k (* refined after trees are built *) }
            end))
  in
  Hashtbl.replace sparse_centers global_root ();
  (* ---- per-center trees with Lemma 4 routing; full storage sweep ---- *)
  let centers = Hashtbl.create (Hashtbl.length sparse_centers) in
  let build_center_tree v ~keep_all ~category =
    let keep =
      if keep_all then fun _ -> true
      else begin
        let members = Hashtbl.create 16 in
        List.iter (fun u -> Hashtbl.replace members u ()) members_of.(v);
        Hashtbl.replace members v ();
        fun w -> Hashtbl.mem members w
      end
    in
    let tree = Tree.of_sssp g (Apsp.sssp apsp v) ~keep in
    let ni = Ni.build ~seed:(seed + v + 1) ~k ~n_global:n tree in
    Array.iter
      (fun w -> Storage.add storage ~node:w ~category ~bits:(Ni.node_storage_bits ni w))
      (Tree.nodes tree);
    ni
  in
  (* The global tree spans everything and is accounted under "fallback". *)
  let global_ni =
    prof "sparse-trees" (fun () ->
        let global_ni = build_center_tree global_root ~keep_all:true ~category:"fallback" in
        (* Every node v held in someone's S(u) gets a tree T(v); its storage
           is charged to its members.  Trees of centers actually used for
           routing are retained. *)
        for v = 0 to n - 1 do
          if v <> global_root && members_of.(v) <> [] then begin
            let ni = build_center_tree v ~keep_all:false ~category:"sparse-trees" in
            if Hashtbl.mem sparse_centers v then Hashtbl.replace centers v ni
          end
        done;
        Hashtbl.replace centers global_root global_ni;
        (* ---- refine sparse bounds b(u,i) now that trees exist ---- *)
        for u = 0 to n - 1 do
          Array.iteri
            (fun i plan ->
              match plan with
              | Sparse { center; _ } ->
                  let ni = Hashtbl.find centers center in
                  let b = Ni.guaranteed_bound ni (Decomposition.e_set decomp u i) in
                  plans.(u).(i) <- Sparse { center; bound = b }
              | Dense_phase _ -> ())
            plans.(u)
        done;
        global_ni)
  in
  (* ---- covers for every populated level (paper §3.5 stores all) ---- *)
  let covers =
    prof "dense-covers" (fun () ->
        List.map
          (fun level ->
            let allowed u = Decomposition.in_level_graph decomp u level in
            let rho = Decomposition.radius_of_exponent level in
            let cover = Cover.build ~allowed ~k ~rho g in
            let dense_rts =
              Array.map
                (fun (c : Cover.cluster) -> Dense.build c.Cover.tree)
                (Cover.clusters cover)
            in
            Array.iter
              (fun (rt : Dense.t) ->
                Array.iter
                  (fun w ->
                    Storage.add storage ~node:w ~category:"dense-covers"
                      ~bits:(Dense.node_storage_bits rt w))
                  (Tree.nodes (Dense.tree rt)))
              dense_rts;
            (level, cover, dense_rts))
          (Decomposition.needed_levels decomp))
  in
  let cover_at level = List.find (fun (l, _, _) -> l = level) covers in
  (* fill in dense cluster assignments *)
  for u = 0 to n - 1 do
    Array.iteri
      (fun i plan ->
        match plan with
        | Dense_phase { level; _ } ->
            let _, cover, _ = cover_at level in
            plans.(u).(i) <- Dense_phase { level; cluster = Cover.home cover u }
        | Sparse _ -> ())
      plans.(u)
  done;
  (* ---- local records: ranges, per-phase center/bound/root ids ---- *)
  prof "local-records" (fun () ->
      for u = 0 to n - 1 do
        Storage.add storage ~node:u ~category:"local" ~bits:((k + 1) * Bits.range_bits);
        Array.iter
          (fun plan ->
            let bits =
              match plan with
              | Sparse _ -> idb + Bits.level_bits ~k
              | Dense_phase _ -> idb
            in
            Storage.add storage ~node:u ~category:"local" ~bits)
          plans.(u);
        Storage.add storage ~node:u ~category:"local" ~bits:idb (* global root id *)
      done);
  (* Attribute the built bits to the stages that produced them, so the
     profile reports bits-and-seconds per stage. *)
  (match profile with
  | None -> ()
  | Some p ->
      List.iter
        (fun (category, bits) ->
          let stage =
            match category with
            | "sparse-trees" | "fallback" -> "sparse-trees"
            | "dense-covers" -> "dense-covers"
            | "local" -> "local-records"
            | other -> other
          in
          Cr_obs.Profile.add_bits p stage bits)
        (Storage.categories storage));
  let counters =
    {
      routes_c = Atomic.make 0;
      delivered_c = Atomic.make 0;
      fallback_c = Atomic.make 0;
      failed_c = Atomic.make 0;
      phase_found_c = Array.init (k + 2) (fun _ -> Atomic.make 0);
    }
  in
  (* ---- the routing procedure ---- *)
  (* The [trace] sink is pure annotation: every emission sits behind a
     [match trace with None -> ()] so the disabled path costs one branch
     and allocates nothing, and no event changes the walk (the
     determinism contract of DESIGN.md §7). *)
  let route ?trace src dst =
    let ident = Graph.name_of g dst in
    (* tree hops between a and b, recomputed only when tracing *)
    let climb_hops tree a b =
      match Tree.path tree a b with [] -> 0 | p -> List.length p - 1
    in
    let emit_climb phase tree a b =
      match trace with
      | None -> ()
      | Some f ->
          if a <> b then
            f (Cr_obs.Trace.Climb
                 { phase; from_node = a; to_node = b; hops = climb_hops tree a b })
    in
    Atomic.incr counters.routes_c;
    if src = dst then begin
      Atomic.incr counters.delivered_c;
      (match trace with
      | None -> ()
      | Some f -> f (Cr_obs.Trace.Deliver { phase = 0; node = dst }));
      { Scheme.walk = [ src ]; delivered = true; phases_used = 0 }
    end
    else begin
      let finish ?(is_global = false) walk_rev phase found =
        if found then begin
          Atomic.incr counters.delivered_c;
          Atomic.incr counters.phase_found_c.(min phase (k + 1));
          if is_global then Atomic.incr counters.fallback_c
        end
        else Atomic.incr counters.failed_c;
        (match trace with
        | None -> ()
        | Some f ->
            if found then f (Cr_obs.Trace.Deliver { phase; node = dst })
            else f (Cr_obs.Trace.No_route { phase }));
        { Scheme.walk = List.rev walk_rev; delivered = found; phases_used = phase }
      in
      let emit_result phase found rounds =
        match trace with
        | None -> ()
        | Some f -> f (Cr_obs.Trace.Phase_result { phase; found; rounds })
      in
      let rec phase_loop i walk_rev =
        if i > k - 1 then global_phase walk_rev
        else begin
          match plans.(src).(i) with
          | Sparse { center; bound } -> (
              (match trace with
              | None -> ()
              | Some f ->
                  f (Cr_obs.Trace.Phase_start
                       { phase = i + 1; kind = Cr_obs.Trace.Sparse; center; bound }));
              let ni = Hashtbl.find centers center in
              let tree = Ni.tree ni in
              emit_climb (i + 1) tree src center;
              let walk_rev = tree_path_append tree walk_rev src center in
              let r = Ni.search ?trace ni ~bound ident in
              match r.Ni.outcome with
              | Ni.Found x ->
                  ignore x;
                  emit_result (i + 1) true r.Ni.rounds;
                  finish (search_walk_append walk_rev r.Ni.walk) (i + 1) true
              | Ni.Not_found_reported ->
                  emit_result (i + 1) false r.Ni.rounds;
                  let walk_rev = search_walk_append walk_rev r.Ni.walk in
                  emit_climb (i + 1) tree center src;
                  let walk_rev = tree_path_append tree walk_rev center src in
                  phase_loop (i + 1) walk_rev)
          | Dense_phase { level; cluster } -> (
              let _, cover, dense_rts = cover_at level in
              let cl = (Cover.clusters cover).(cluster) in
              let rt = dense_rts.(cluster) in
              let tree = cl.Cover.tree in
              let root = cl.Cover.center in
              (match trace with
              | None -> ()
              | Some f ->
                  f (Cr_obs.Trace.Phase_start
                       { phase = i + 1; kind = Cr_obs.Trace.Dense; center = root; bound = level }));
              emit_climb (i + 1) tree src root;
              let walk_rev = tree_path_append tree walk_rev src root in
              let r = Dense.search ?trace rt ident in
              match r.Dense.outcome with
              | Dense.Found _ ->
                  emit_result (i + 1) true 1;
                  finish (search_walk_append walk_rev r.Dense.walk) (i + 1) true
              | Dense.Not_found_reported ->
                  emit_result (i + 1) false 1;
                  let walk_rev = search_walk_append walk_rev r.Dense.walk in
                  emit_climb (i + 1) tree root src;
                  let walk_rev = tree_path_append tree walk_rev root src in
                  phase_loop (i + 1) walk_rev)
        end
      and global_phase walk_rev =
        (match trace with
        | None -> ()
        | Some f ->
            f (Cr_obs.Trace.Phase_start
                 { phase = k + 1; kind = Cr_obs.Trace.Global; center = global_root; bound = k }));
        let tree = Ni.tree global_ni in
        emit_climb (k + 1) tree src global_root;
        let walk_rev = tree_path_append tree walk_rev src global_root in
        let r = Ni.search ?trace global_ni ~bound:k ident in
        match r.Ni.outcome with
        | Ni.Found _ ->
            emit_result (k + 1) true r.Ni.rounds;
            finish ~is_global:true (search_walk_append walk_rev r.Ni.walk) (k + 1) true
        | Ni.Not_found_reported ->
            emit_result (k + 1) false r.Ni.rounds;
            let walk_rev = search_walk_append walk_rev r.Ni.walk in
            emit_climb (k + 1) tree global_root src;
            let walk_rev = tree_path_append tree walk_rev global_root src in
            finish ~is_global:true walk_rev (k + 1) false
      in
      phase_loop 0 [ src ]
    end
  in
  let scheme =
    { Scheme.name = Printf.sprintf "agm06(k=%d)" k; graph = g; storage;
      (* destination identifier + phase/round counters + the in-flight
         tree-routing label: the paper's Õ(1)-bit headers *)
      header_bits = Scheme.label_header_bits ~n + Bits.bits_for (k + 2) + Bits.level_bits ~k;
      route }
  in
  {
    params;
    mode;
    apsp;
    decomp;
    landmarks;
    plans;
    centers;
    covers;
    global_root;
    global_ni;
    storage;
    counters;
    scheme;
  }

let scheme t = t.scheme

let decomposition t = t.decomp

let params t = t.params

let mode t = t.mode

let stats t =
  let c = t.counters in
  {
    routes = Atomic.get c.routes_c;
    delivered = Atomic.get c.delivered_c;
    fallback_resolved = Atomic.get c.fallback_c;
    failed = Atomic.get c.failed_c;
    phase_found = Array.map Atomic.get c.phase_found_c;
  }

let center_count t = Hashtbl.length t.centers

let cover_levels t = List.map (fun (l, _, _) -> l) t.covers

let phase_plan t u i =
  if i < 0 || i >= t.params.Params.k then invalid_arg "Agm06.phase_plan: level out of range";
  match t.plans.(u).(i) with
  | Sparse { center; bound } -> `Sparse (center, bound)
  | Dense_phase { level; cluster } ->
      let cover =
        let _, c, _ = List.find (fun (l, _, _) -> l = level) t.covers in
        c
      in
      `Dense (level, (Cr_cover.Sparse_cover.clusters cover).(cluster).Cr_cover.Sparse_cover.center)

let describe_node t u =
  let buf = Buffer.create 512 in
  let k = t.params.Params.k in
  Buffer.add_string buf
    (Printf.sprintf "node %d (identifier %d)\n" u (Graph.name_of (Apsp.graph t.apsp) u));
  Buffer.add_string buf
    (Printf.sprintf "  ranges a(u,0..%d) = [%s]\n" k
       (String.concat "; "
          (List.init (k + 1) (fun i -> string_of_int (Decomposition.range t.decomp u i)))));
  for i = 0 to k - 1 do
    match phase_plan t u i with
    | `Sparse (center, bound) ->
        Buffer.add_string buf
          (Printf.sprintf "  level %d: sparse -> center %d, %d-bounded search\n" i center bound)
    | `Dense (level, root) ->
        Buffer.add_string buf
          (Printf.sprintf "  level %d: dense  -> cover level %d, cluster root %d\n" i level root)
  done;
  Buffer.add_string buf (Printf.sprintf "  global root %d\n" t.global_root);
  Buffer.add_string buf "  storage:\n";
  List.iter
    (fun (cat, bits) -> Buffer.add_string buf (Printf.sprintf "    %-14s %6d bits\n" cat bits))
    (Storage.node_categories t.storage u);
  Buffer.add_string buf
    (Printf.sprintf "    %-14s %6d bits\n" "total" (Storage.node_bits t.storage u));
  Buffer.contents buf
