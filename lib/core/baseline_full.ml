module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Dijkstra = Cr_graph.Dijkstra
module Bits = Cr_util.Bits

let build apsp =
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let storage = Storage.create ~n in
  let idb = Bits.id_bits ~n in
  for u = 0 to n - 1 do
    (* (n-1) entries: destination identifier -> outgoing port *)
    let pb = Bits.port_bits ~degree:(Graph.degree g u) in
    Storage.add storage ~node:u ~category:"full-tables"
      ~bits:((n - 1) * ((2 * idb) + pb))
  done;
  let route ?trace src dst =
    let emit ev = match trace with None -> () | Some f -> f ev in
    if src = dst then begin
      emit (Cr_obs.Trace.Deliver { phase = 0; node = dst });
      { Scheme.walk = [ src ]; delivered = true; phases_used = 1 }
    end
    else begin
      (match trace with
      | None -> ()
      | Some f ->
          f (Cr_obs.Trace.Phase_start
               { phase = 1; kind = Cr_obs.Trace.Direct; center = src; bound = 0 }));
      let res = Apsp.sssp apsp dst in
      if res.Dijkstra.dist.(src) = infinity then begin
        emit (Cr_obs.Trace.No_route { phase = 1 });
        { Scheme.walk = [ src ]; delivered = false; phases_used = 1 }
      end
      else begin
        (* walk the reverse of the dst-rooted shortest path tree *)
        let walk = List.rev (Dijkstra.path_to res src) in
        emit (Cr_obs.Trace.Deliver { phase = 1; node = dst });
        { Scheme.walk; delivered = true; phases_used = 1 }
      end
    end
  in
  { Scheme.name = "full-tables"; graph = g; storage;
    header_bits = Scheme.default_header_bits ~n;
    route }
