(** Walk validation and stretch measurement.

    Schemes produce walks; this module is the referee: it checks that a
    walk is realizable in the network (consecutive nodes adjacent, right
    endpoints), prices it, and compares it to the true shortest-path
    distance from the all-pairs ground truth.

    Every anomaly a walk can exhibit is classified by the shared
    {!outcome} type, which the failure-aware replay in
    [Cr_resilience.Fsim] reuses: there, faults, hop budgets and loops
    produce the additional constructors. *)

type outcome =
  | Delivered  (** walk is valid and ends at the destination *)
  | No_route  (** scheme honestly reported non-delivery; walk is valid *)
  | Dropped_at_fault of int * int
      (** message stalled on a failed edge [(u,v)] or crashed node
          ([(v,v)]); produced by the failure-aware simulator *)
  | Ttl_exceeded  (** hop budget exhausted before delivery *)
  | Loop_detected  (** the forwarding trace revisited a state: a routing loop *)
  | Invalid_hop of string
      (** the walk itself is malformed: wrong endpoints, a non-edge, or a
          node index out of range *)

val outcome_to_string : outcome -> string

val is_delivered : outcome -> bool

type measured = {
  src : int;
  dst : int;
  delivered : bool;
  cost : float;  (** total weight of the walk *)
  hops : int;
  stretch : float;  (** cost / d(src,dst); 1.0 for src = dst; infinite when undelivered *)
}

exception Invalid_walk of string
(** Raised by the legacy entry points when a scheme emits a walk that is
    not realizable ({!check_walk} classified it as [Invalid_hop]). *)

type checked = {
  outcome : outcome;  (** [Delivered], [No_route] or [Invalid_hop] *)
  checked_cost : float;  (** weight of the valid prefix *)
  checked_hops : int;
}

val check_walk :
  Cr_graph.Graph.t -> src:int -> dst:int -> delivered:bool -> int list -> checked
(** Structured, non-raising walk validation: endpoint checks, range
    checks and edge-existence checks, pricing the longest valid prefix.
    Never raises. *)

val walk_cost : Cr_graph.Graph.t -> int list -> float * int
(** Cost and hop count of a walk.
    @raise Invalid_walk on a non-edge or an empty walk. *)

val measure : Cr_graph.Apsp.t -> Scheme.t -> int -> int -> measured
(** Routes [src → dst] through the scheme and validates/prices the result
    via {!check_walk}.
    @raise Invalid_walk if the walk is malformed (wrong endpoints,
    non-edges, or claimed delivery to the wrong node). *)

type aggregate = {
  pairs : int;
  delivered : int;
  stretch_stats : Cr_util.Stats.summary;  (** over delivered pairs *)
  cost_stats : Cr_util.Stats.summary;
  stretches : float array;  (** raw per-pair stretch values, delivered pairs *)
}

val measure_all :
  ?pool:Cr_util.Domain_pool.t ->
  Cr_graph.Apsp.t -> Scheme.t -> (int * int) array -> measured array
(** [measure_all ?pool apsp scheme pairs] measures every pair into a
    result array with [result.(i)] for [pairs.(i)].  With [pool], the
    queries are sharded across the pool's domains; since {!measure} is
    a pure function of its arguments and every query writes its own
    slot, the array is bit-identical to the sequential one.  Schemes
    must therefore be safe to query from several domains: all schemes
    in this repo route from immutable preprocessed tables (the AGM06
    live counters are atomic).
    @raise Invalid_walk as {!measure} (from any domain, re-raised in
    the caller). *)

val aggregate_of_measured : measured array -> aggregate
(** Folds a result array (in index order, so summaries are reproducible
    bit-for-bit) into an {!aggregate}. *)

val evaluate :
  ?pool:Cr_util.Domain_pool.t ->
  Cr_graph.Apsp.t -> Scheme.t -> (int * int) array -> aggregate
(** Measures every pair and summarizes
    ([aggregate_of_measured (measure_all ?pool ...)]).  Undelivered
    pairs count in [pairs] but not in the stretch statistics. *)

exception Sample_shortfall of { requested : int; found : int }
(** Raised by {!sample_pairs} when the rejection-sampling guard expired
    before finding the requested number of connected pairs — aggregates
    must never be computed over a quietly truncated sample. *)

val sample_pairs :
  ?allow_short:bool ->
  Cr_util.Rng.t -> Cr_graph.Apsp.t -> count:int -> (int * int) array
(** Samples distinct connected [src ≠ dst] pairs uniformly (with
    replacement across pairs).
    @raise Sample_shortfall if fewer than [count] pairs were found on a
    sparse or near-disconnected graph, unless [allow_short] is [true]
    (in which case the short array is returned). *)
