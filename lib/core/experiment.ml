module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module Rng = Cr_util.Rng
module Stats = Cr_util.Stats

type workload =
  | Erdos_renyi of { n : int; avg_degree : float }
  | Geometric of { n : int; radius : float }
  | Grid of { rows : int; cols : int }
  | Ring_chords of { n : int; chords : int }
  | Isp of { core : int; access_per_core : int }
  | Tree_w of { n : int }
  | Preferential of { n : int; edges_per_node : int }
  | Power_law of { n : int; exponent : float }
  | Exp_line of { n : int; base : float }
  | Chain of { sigma : int; levels : int; spacing : float }

let workload_name = function
  | Erdos_renyi { n; _ } -> Printf.sprintf "erdos-renyi(n=%d)" n
  | Geometric { n; _ } -> Printf.sprintf "geometric(n=%d)" n
  | Grid { rows; cols } -> Printf.sprintf "grid(%dx%d)" rows cols
  | Ring_chords { n; _ } -> Printf.sprintf "ring+chords(n=%d)" n
  | Isp { core; access_per_core } -> Printf.sprintf "isp(%dx%d)" core access_per_core
  | Tree_w { n } -> Printf.sprintf "tree(n=%d)" n
  | Preferential { n; _ } -> Printf.sprintf "pref-attach(n=%d)" n
  | Power_law { n; exponent } -> Printf.sprintf "power-law(n=%d,gamma=%.2f)" n exponent
  | Exp_line { n; base } -> Printf.sprintf "exp-line(n=%d,base=%.2f)" n base
  | Chain { sigma; levels; _ } -> Printf.sprintf "scale-chain(sigma=%d,levels=%d)" sigma levels

let generate rng = function
  | Erdos_renyi { n; avg_degree } -> Generators.erdos_renyi rng ~n ~avg_degree
  | Geometric { n; radius } -> Generators.random_geometric rng ~n ~radius
  | Grid { rows; cols } -> Generators.grid ~rows ~cols
  | Ring_chords { n; chords } -> Generators.ring_with_chords rng ~n ~chords
  | Isp { core; access_per_core } -> Generators.two_tier_isp rng ~core ~access_per_core
  | Tree_w { n } -> Generators.random_tree rng ~n
  | Preferential { n; edges_per_node } -> Generators.preferential_attachment rng ~n ~edges_per_node
  | Power_law { n; exponent } -> Generators.power_law rng ~n ~exponent
  | Exp_line { n; base } -> Generators.exponential_line ~n ~base
  | Chain { sigma; levels; spacing } -> Generators.scale_chain rng ~sigma ~levels ~spacing

let make_graph ~seed w =
  let rng = Rng.create seed in
  let g = generate rng w in
  Graph.normalize (Graph.relabel rng g)

let make_graph_with_aspect ~seed ~target_aspect w =
  let rng = Rng.create seed in
  let g = generate rng w in
  let g = Generators.stretch_weights rng g ~target_aspect in
  Graph.normalize (Graph.relabel rng g)

type row = {
  scheme : string;
  delivered : int;
  pairs : int;
  stretch_mean : float;
  stretch_p99 : float;
  stretch_max : float;
  bits_max : int;
  bits_mean : float;
  header_bits : int;
}

let run_scheme ?pool apsp (scheme : Scheme.t) ~pairs =
  (* every caller-facing table runs on the shared spawn-once domain
     pool by default; results are bit-identical to the sequential path
     (see Simulator.measure_all) *)
  let pool = match pool with Some p -> p | None -> Cr_util.Domain_pool.shared () in
  let agg = Simulator.evaluate ~pool apsp scheme pairs in
  {
    scheme = scheme.Scheme.name;
    delivered = agg.Simulator.delivered;
    pairs = agg.Simulator.pairs;
    stretch_mean = agg.Simulator.stretch_stats.Stats.mean;
    stretch_p99 = agg.Simulator.stretch_stats.Stats.p99;
    stretch_max = agg.Simulator.stretch_stats.Stats.max;
    bits_max = Storage.max_node_bits scheme.Scheme.storage;
    bits_mean = Storage.mean_node_bits scheme.Scheme.storage;
    header_bits = scheme.Scheme.header_bits;
  }

let compare_schemes ?pool apsp schemes ~pairs =
  List.map (fun s -> run_scheme ?pool apsp s ~pairs) schemes

let default_pairs ?allow_short ~seed apsp ~count =
  let rng = Rng.create seed in
  Simulator.sample_pairs ?allow_short rng apsp ~count

let rows_to_csv rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "scheme,delivered,pairs,stretch_mean,stretch_p99,stretch_max,bits_max,bits_mean,header_bits\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%.6f,%.6f,%.6f,%d,%.2f,%d\n" r.scheme r.delivered r.pairs
           r.stretch_mean r.stretch_p99 r.stretch_max r.bits_max r.bits_mean r.header_bits))
    rows;
  Buffer.contents buf

let write_csv rows path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (rows_to_csv rows))

let row_to_json r =
  let module J = Cr_util.Jsonl in
  J.obj
    [
      ("scheme", J.str r.scheme);
      ("delivered", J.int r.delivered);
      ("pairs", J.int r.pairs);
      ("stretch_mean", J.float r.stretch_mean);
      ("stretch_p99", J.float r.stretch_p99);
      ("stretch_max", J.float r.stretch_max);
      ("bits_max", J.int r.bits_max);
      ("bits_mean", J.float r.bits_mean);
      ("header_bits", J.int r.header_bits);
    ]

let write_jsonl rows path = Cr_util.Jsonl.write_lines (List.map row_to_json rows) path
