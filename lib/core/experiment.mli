(** Shared experiment plumbing for the bench harness, the CLI and the
    examples: named workload construction, scheme rosters, and one-line
    comparison rows. *)

type workload =
  | Erdos_renyi of { n : int; avg_degree : float }
  | Geometric of { n : int; radius : float }
  | Grid of { rows : int; cols : int }
  | Ring_chords of { n : int; chords : int }
  | Isp of { core : int; access_per_core : int }
  | Tree_w of { n : int }
  | Preferential of { n : int; edges_per_node : int }
  | Power_law of { n : int; exponent : float }
      (** configuration-model power-law degrees, [m ≈ n] at
          [exponent ≈ 2.5]; see {!Cr_graph.Generators.power_law} *)
  | Exp_line of { n : int; base : float }
      (** the §1.3 [Δ = Ω(2ⁿ)] example; see {!Cr_graph.Generators.exponential_line} *)
  | Chain of { sigma : int; levels : int; spacing : float }
      (** the adversarial multi-scale instance of T1b *)

val workload_name : workload -> string

val make_graph : seed:int -> workload -> Cr_graph.Graph.t
(** Generates, relabels with adversarial identifiers, and normalizes. *)

val make_graph_with_aspect : seed:int -> target_aspect:float -> workload -> Cr_graph.Graph.t
(** Same, then stretches edge weights to approach the target aspect
    ratio. *)

type row = {
  scheme : string;
  delivered : int;
  pairs : int;
  stretch_mean : float;
  stretch_p99 : float;
  stretch_max : float;
  bits_max : int;
  bits_mean : float;
  header_bits : int;
}

val run_scheme :
  ?pool:Cr_util.Domain_pool.t ->
  Cr_graph.Apsp.t -> Scheme.t -> pairs:(int * int) array -> row
(** Evaluates one scheme over the pairs.  The queries run on [pool] —
    by default the shared spawn-once pool
    ({!Cr_util.Domain_pool.shared}) — and the row is bit-identical to
    a sequential evaluation regardless of the pool width. *)

val compare_schemes :
  ?pool:Cr_util.Domain_pool.t ->
  Cr_graph.Apsp.t -> Scheme.t list -> pairs:(int * int) array -> row list

val default_pairs :
  ?allow_short:bool -> seed:int -> Cr_graph.Apsp.t -> count:int -> (int * int) array
(** Seed-deterministic {!Simulator.sample_pairs}.
    @raise Simulator.Sample_shortfall unless [allow_short] is [true]. *)

val rows_to_csv : row list -> string
(** Header line plus one comma-separated line per row — for plotting the
    tables outside OCaml. *)

val write_csv : row list -> string -> unit
(** [write_csv rows path] writes {!rows_to_csv} to a file. *)

val row_to_json : row -> string
(** One machine-readable JSON object (single line, no trailing newline)
    per row — the [crt eval --json] format, mirroring
    [Cr_resilience.Sweep.cell_to_json]. *)

val write_jsonl : row list -> string -> unit
(** [write_jsonl rows path] writes one {!row_to_json} line per row. *)
