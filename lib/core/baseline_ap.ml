module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Tree = Cr_tree.Tree
module Dense = Cr_tree.Dense_tree_routing
module Cover = Cr_cover.Sparse_cover

(* scheme (by physical identity) -> number of scales, for reporting *)
let levels_count : (Scheme.t * int) list ref = ref []

let build ?(k = 3) apsp =
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let diameter = Apsp.diameter apsp in
  let log_delta =
    max 0 (int_of_float (Float.ceil (Float.log (Float.max 1.0 diameter) /. Float.log 2.0)))
  in
  let storage = Storage.create ~n in
  (* one cover per scale, over the whole graph: the log Δ dependence *)
  let levels =
    Array.init (log_delta + 1) (fun i ->
        let rho = 2.0 ** float_of_int i in
        let cover = Cover.build ~k ~rho g in
        let rts =
          Array.map (fun (c : Cover.cluster) -> Dense.build c.Cover.tree) (Cover.clusters cover)
        in
        Array.iter
          (fun (rt : Dense.t) ->
            Array.iter
              (fun w ->
                Storage.add storage ~node:w ~category:"ap-covers"
                  ~bits:(Dense.node_storage_bits rt w))
              (Tree.nodes (Dense.tree rt)))
          rts;
        (* each node records its home-cluster root at this scale *)
        for u = 0 to n - 1 do
          Storage.add storage ~node:u ~category:"ap-local"
            ~bits:(Cr_util.Bits.id_bits ~n)
        done;
        (cover, rts))
  in
  let route ?trace src dst =
    let emit ev = match trace with None -> () | Some f -> f ev in
    if src = dst then begin
      emit (Cr_obs.Trace.Deliver { phase = 0; node = dst });
      { Scheme.walk = [ src ]; delivered = true; phases_used = 1 }
    end
    else begin
      let ident = Graph.name_of g dst in
      let rec scale i walk_rev =
        if i > log_delta then begin
          emit (Cr_obs.Trace.No_route { phase = i });
          { Scheme.walk = List.rev walk_rev; delivered = false; phases_used = i }
        end
        else begin
          let cover, rts = levels.(i) in
          let ci = Cover.home cover src in
          let cl = (Cover.clusters cover).(ci) in
          let rt = rts.(ci) in
          let tree = cl.Cover.tree in
          let root = cl.Cover.center in
          (match trace with
          | None -> ()
          | Some f ->
              f (Cr_obs.Trace.Phase_start
                   { phase = i + 1; kind = Cr_obs.Trace.Dense; center = root; bound = i });
              if src <> root then
                f (Cr_obs.Trace.Climb
                     {
                       phase = i + 1;
                       from_node = src;
                       to_node = root;
                       hops = (match Tree.path tree src root with [] -> 0 | p -> List.length p - 1);
                     }));
          let walk_rev =
            match Tree.path tree src root with
            | [] -> walk_rev
            | _ :: rest -> List.rev_append rest walk_rev
          in
          let r = Dense.search ?trace rt ident in
          let walk_rev =
            match r.Dense.walk with [] -> walk_rev | _ :: rest -> List.rev_append rest walk_rev
          in
          match r.Dense.outcome with
          | Dense.Found _ ->
              emit (Cr_obs.Trace.Phase_result { phase = i + 1; found = true; rounds = 1 });
              emit (Cr_obs.Trace.Deliver { phase = i + 1; node = dst });
              { Scheme.walk = List.rev walk_rev; delivered = true; phases_used = i + 1 }
          | Dense.Not_found_reported ->
              emit (Cr_obs.Trace.Phase_result { phase = i + 1; found = false; rounds = 1 });
              let walk_rev =
                match Tree.path tree root src with
                | [] -> walk_rev
                | _ :: rest -> List.rev_append rest walk_rev
              in
              scale (i + 1) walk_rev
        end
      in
      scale 0 [ src ]
    end
  in
  let scheme =
    { Scheme.name = Printf.sprintf "awerbuch-peleg(k=%d)" k; graph = g; storage;
      header_bits = Scheme.label_header_bits ~n; route }
  in
  levels_count := (scheme, log_delta + 1) :: !levels_count;
  scheme

let levels_built (scheme : Scheme.t) =
  match List.find_opt (fun (s, _) -> s == scheme) !levels_count with
  | Some (_, l) -> l
  | None -> 0
