module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Dijkstra = Cr_graph.Dijkstra
module Bits = Cr_util.Bits
module Rng = Cr_util.Rng

let shortest_path apsp a b = List.rev (Dijkstra.path_to (Apsp.sssp apsp b) a)

(* Sampling and pivot computation, shared by [build] and
   [label_vectors].  Levels are drawn per node index with a
   node-indexed stream so that adding node n does not perturb the levels
   of nodes 0..n-1 — the fair "incremental rebuild" comparison. *)
let sample_levels ~seed ~n ~k =
  let level = Array.make n 0 in
  for v = 0 to n - 1 do
    let rng = Rng.create (seed + (v * 7919)) in
    let p = float_of_int n ** (-1.0 /. float_of_int k) in
    let rec climb j = if j < k - 1 && Rng.bernoulli rng p then climb (j + 1) else j in
    level.(v) <- climb 0
  done;
  if k > 1 && not (Array.exists (fun l -> l = k - 1) level) then level.(0) <- k - 1;
  level

let compute_pivots apsp ~level ~k =
  let n = Graph.n (Apsp.graph apsp) in
  let pivots = Array.make_matrix n k (-1) in
  let pivot_dist = Array.make_matrix n k infinity in
  for u = 0 to n - 1 do
    let d = (Apsp.sssp apsp u).Dijkstra.dist in
    for v = 0 to n - 1 do
      if d.(v) < infinity then
        for j = 0 to level.(v) do
          if
            d.(v) < pivot_dist.(u).(j)
            || (d.(v) = pivot_dist.(u).(j) && (pivots.(u).(j) = -1 || v < pivots.(u).(j)))
          then begin
            pivot_dist.(u).(j) <- d.(v);
            pivots.(u).(j) <- v
          end
        done
    done
  done;
  (pivots, pivot_dist)

let label_vectors ?(k = 3) ?(seed = 99) apsp =
  let n = Graph.n (Apsp.graph apsp) in
  let level = sample_levels ~seed ~n ~k in
  let pivots, _ = compute_pivots apsp ~level ~k in
  Array.init n (fun v -> Array.append [| v |] (Array.sub pivots.(v) 1 (max 0 (k - 1))))

let build ?(k = 3) ?(seed = 99) apsp =
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let level = sample_levels ~seed ~n ~k in
  let pivots, pivot_dist = compute_pivots apsp ~level ~k in
  (* bunches *)
  let bunches = Array.make n [] in
  for u = 0 to n - 1 do
    let d = (Apsp.sssp apsp u).Dijkstra.dist in
    for w = 0 to n - 1 do
      if d.(w) < infinity then begin
        let j = level.(w) in
        let next_pivot_d = if j + 1 >= k then infinity else pivot_dist.(u).(j + 1) in
        if d.(w) < next_pivot_d then bunches.(u) <- w :: bunches.(u)
      end
    done
  done;
  let in_bunch = Array.map (fun l ->
      let t = Hashtbl.create (List.length l) in
      List.iter (fun w -> Hashtbl.replace t w ()) l;
      t) bunches in
  let storage = Storage.create ~n in
  let idb = Bits.id_bits ~n in
  for u = 0 to n - 1 do
    let pb = Bits.port_bits ~degree:(max 1 (Graph.degree g u)) in
    (* bunch entries: id + port + distance *)
    Storage.add storage ~node:u ~category:"tz-bunch"
      ~bits:(List.length bunches.(u) * (idb + pb + Bits.distance_bits));
    (* own label (v, pivots): the address the designer hands out *)
    Storage.add storage ~node:u ~category:"tz-label" ~bits:(k * idb);
    (* pivot tree routing state: interval info per child in each pivot
       tree the node participates in; approximated by one entry per level *)
    Storage.add storage ~node:u ~category:"tz-trees" ~bits:(k * (idb + pb))
  done;
  let route ?trace src dst =
    let emit ev = match trace with None -> () | Some f -> f ev in
    if src = dst then begin
      emit (Cr_obs.Trace.Deliver { phase = 0; node = dst });
      { Scheme.walk = [ src ]; delivered = true; phases_used = 1 }
    end
    else if Apsp.distance apsp src dst = infinity then begin
      emit (Cr_obs.Trace.No_route { phase = 1 });
      { Scheme.walk = [ src ]; delivered = false; phases_used = 1 }
    end
    else begin
      (* label of dst = (dst, p_1(dst), ..., p_{k-1}(dst)) *)
      (match trace with
      | None -> ()
      | Some f ->
          f (Cr_obs.Trace.Phase_start
               { phase = 1; kind = Cr_obs.Trace.Vicinity; center = src; bound = 0 }));
      if Hashtbl.mem in_bunch.(src) dst then begin
        emit (Cr_obs.Trace.Phase_result { phase = 1; found = true; rounds = 1 });
        emit (Cr_obs.Trace.Deliver { phase = 1; node = dst });
        { Scheme.walk = shortest_path apsp src dst; delivered = true; phases_used = 1 }
      end
      else begin
        emit (Cr_obs.Trace.Phase_result { phase = 1; found = false; rounds = 1 });
        (* smallest j >= 1 with p_j(dst) in B(src); j = k-1 always works *)
        let rec find j =
          if j >= k then None
          else begin
            let w = pivots.(dst).(j) in
            if w >= 0 && Hashtbl.mem in_bunch.(src) w then Some (j, w) else find (j + 1)
          end
        in
        match find 1 with
        | None ->
            emit (Cr_obs.Trace.No_route { phase = 2 });
            { Scheme.walk = [ src ]; delivered = false; phases_used = k }
        | Some (j, w) ->
            (match trace with
            | None -> ()
            | Some f ->
                f (Cr_obs.Trace.Phase_start
                     { phase = 2; kind = Cr_obs.Trace.Pivot; center = w; bound = j }));
            let up = shortest_path apsp src w in
            let down = match shortest_path apsp w dst with [] -> [] | _ :: rest -> rest in
            (match trace with
            | None -> ()
            | Some f ->
                if src <> w then
                  f (Cr_obs.Trace.Climb
                       { phase = 2; from_node = src; to_node = w; hops = List.length up - 1 });
                f (Cr_obs.Trace.Tree_step { round = 1; from_node = w; to_node = dst }));
            emit (Cr_obs.Trace.Phase_result { phase = 2; found = true; rounds = 1 });
            emit (Cr_obs.Trace.Deliver { phase = 2; node = dst });
            { Scheme.walk = up @ down; delivered = true; phases_used = 2 }
      end
    end
  in
  {
    Scheme.name = Printf.sprintf "tz-labeled(k=%d)" k;
    graph = g;
    storage;
    (* the destination label (k pivots) travels in the header *)
    header_bits = Scheme.default_header_bits ~n + (k * idb);
    route;
  }
