(** The paper's routing scheme (§3): scale-free name-independent compact
    routing with stretch [O(k)] and [Õ(n^{1/k})]-bit tables.

    Construction
    (§3.1–§3.6):
    - the sparse/dense decomposition of every node ({!Decomposition});
    - the landmark hierarchy [C₀ ⊇ … ⊇ C_k] ({!Cr_landmark.Landmarks});
    - for every node [v] that appears in someone's nearby-landmark set
      [S(u)], a shortest-path tree [T(v)] spanning [{u : v ∈ S(u)}]
      equipped with the Lemma 4 name-independent error-reporting tree
      routing ({!Cr_tree.Ni_tree_routing});
    - for every level [i] with [V_i = {u : i ∈ R(u)} ≠ ∅], a sparse cover
      [TC_{k,2^i}(G_i)] ({!Cr_cover.Sparse_cover}) whose cluster trees
      carry the Lemma 7 routing ({!Cr_tree.Dense_tree_routing}).

    Routing iterates phases [i = 1 .. k−1], applying the sparse strategy
    (§3.3) or the dense strategy (§3.6) according to the level's density,
    and finishes with a global phase on the tree of the top-rank landmark
    — the explicit form of the paper's final iteration [i = k], which
    under the paper's constants always succeeds (Lemma 3/Claim 1) and
    under scaled constants doubles as a delivery guarantee (DESIGN.md §2
    note 3). *)

type t

type mode =
  | Full  (** the paper's scheme *)
  | Sparse_only  (** ablation: every level handled by the sparse strategy *)
  | Dense_only  (** ablation: every level handled by the dense strategy *)

val build : ?params:Params.t -> ?mode:mode -> ?profile:Cr_obs.Profile.t -> Cr_graph.Apsp.t -> t
(** Builds the scheme over a connected component reachable ground truth.
    [params] defaults to [Params.scaled ~k:3].  The graph must be
    normalized (min edge weight 1).  With [profile], each construction
    stage (decomposition, landmark-hierarchy, nearby-sets, sparse-trees,
    dense-covers, local-records) is timed and charged its table bits;
    the construction itself is unchanged.
    @raise Invalid_argument otherwise. *)

val scheme : t -> Scheme.t
(** The evaluation-facing interface (routing + storage accounting). *)

val decomposition : t -> Decomposition.t

val params : t -> Params.t

val mode : t -> mode

type stats = {
  routes : int;
  delivered : int;
  fallback_resolved : int;  (** delivered only by the global phase *)
  failed : int;
  phase_found : int array;  (** index i: deliveries at phase i (1..k+1); k+1 is the global phase *)
}

val stats : t -> stats
(** Snapshot of the live counters, updated by every [route] call.  The
    counters are atomic, so the totals stay exact when routes are
    issued from several domains at once (the batch engine does). *)

val center_count : t -> int
(** Number of distinct sparse-phase centers (plus the global root). *)

val cover_levels : t -> int list
(** Levels at which covers were built. *)

val describe_node : t -> int -> string
(** Human-readable dump of one node's routing table: its decomposition
    ranges, the per-phase plan (sparse center + search bound, or dense
    level + cluster root), and its per-category bit budget.  Used by the
    [crt tables] subcommand. *)

val phase_plan : t -> int -> int -> [ `Sparse of int * int | `Dense of int * int ]
(** [phase_plan t u i] for levels [i ∈ 0..k-1]:
    [`Sparse (center, bound)] or [`Dense (level, cluster_root)] —
    exposed so tests can check the plans against the decomposition. *)
