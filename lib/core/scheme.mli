(** The common shape of every routing scheme in the evaluation.

    A scheme is a preprocessed object exposing [route src dst]: both
    endpoints are node {e indexes}, but a name-independent scheme must
    only consult the destination's {e network identifier}
    ([Graph.name_of g dst]) — the index is a simulation convenience.
    The returned walk is validated independently by {!Simulator}: every
    consecutive pair must be a graph edge, the walk must start at [src]
    and, when [delivered], end at [dst].

    [route] optionally takes a {!Cr_obs.Trace.sink}: schemes narrate
    their phases and tree searches as structured events.  The contract
    (DESIGN.md §7, tested in test/test_obs.ml): with no sink the call
    does no observability work, and the returned route is bit-identical
    with and without a sink. *)

type route = {
  walk : int list;  (** visited node indexes, starting with the source *)
  delivered : bool;
  phases_used : int;  (** search phases executed (1 for direct schemes) *)
}

type t = {
  name : string;
  graph : Cr_graph.Graph.t;
  storage : Storage.t;
  header_bits : int;
      (** worst-case message-header size: the paper claims Õ(1)-bit
          headers for its scheme (destination identifier, phase counter,
          and the in-flight routing label) *)
  route : ?trace:Cr_obs.Trace.sink -> int -> int -> route;
}

val default_header_bits : n:int -> int
(** Destination identifier plus a hop/phase counter: [2·⌈log n⌉ + 16]. *)

val label_header_bits : n:int -> int
(** {!default_header_bits} plus an in-flight tree-routing label of
    [O(log² n)] bits — what the tree-search schemes carry. *)

val direct_route : Cr_graph.Graph.t -> int list -> bool -> route
(** Helper wrapping a walk computed by a scheme into a {!route} with
    [phases_used = 1]. *)
