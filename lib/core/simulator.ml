module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Stats = Cr_util.Stats
module Rng = Cr_util.Rng

type outcome =
  | Delivered
  | No_route
  | Dropped_at_fault of int * int
  | Ttl_exceeded
  | Loop_detected
  | Invalid_hop of string

let outcome_to_string = function
  | Delivered -> "delivered"
  | No_route -> "no-route"
  | Dropped_at_fault (u, v) ->
      if u = v then Printf.sprintf "dropped-at-fault(node %d)" u
      else Printf.sprintf "dropped-at-fault(%d-%d)" u v
  | Ttl_exceeded -> "ttl-exceeded"
  | Loop_detected -> "loop-detected"
  | Invalid_hop msg -> Printf.sprintf "invalid-hop(%s)" msg

let is_delivered = function Delivered -> true | _ -> false

type measured = {
  src : int;
  dst : int;
  delivered : bool;
  cost : float;
  hops : int;
  stretch : float;
}

exception Invalid_walk of string

type checked = { outcome : outcome; checked_cost : float; checked_hops : int }

(* Shared validation core: walks cost along the walk until it either ends
   or hits an anomaly, and never raises.  The cost/hops cover the valid
   prefix. *)
let check_walk g ~src ~dst ~delivered walk =
  let n = Graph.n g in
  let bad msg cost hops = { outcome = Invalid_hop msg; checked_cost = cost; checked_hops = hops } in
  match walk with
  | [] -> bad "empty walk" 0.0 0
  | first :: _ when first <> src ->
      bad (Printf.sprintf "walk starts at %d, not source %d" first src) 0.0 0
  | first :: _ when first < 0 || first >= n ->
      bad (Printf.sprintf "node %d out of range" first) 0.0 0
  | _ ->
      let rec go cost hops = function
        | a :: (b :: _ as rest) ->
            if b < 0 || b >= n then bad (Printf.sprintf "node %d out of range" b) cost hops
            else (
              match Graph.edge_weight g a b with
              | Some w -> go (cost +. w) (hops + 1) rest
              | None -> bad (Printf.sprintf "non-edge %d-%d" a b) cost hops)
        | [ last ] ->
            if delivered && last <> dst then
              bad (Printf.sprintf "claimed delivery but walk ends at %d, not %d" last dst) cost hops
            else
              { outcome = (if delivered then Delivered else No_route);
                checked_cost = cost; checked_hops = hops }
        | [] -> assert false
      in
      go 0.0 0 walk

let walk_cost g walk =
  (* endpoint checks do not apply here: any well-formed walk prices *)
  match walk with
  | [] -> raise (Invalid_walk "empty walk")
  | first :: _ -> (
      let c = check_walk g ~src:first ~dst:first ~delivered:false walk in
      match c.outcome with
      | Invalid_hop msg -> raise (Invalid_walk msg)
      | _ -> (c.checked_cost, c.checked_hops))

let measure apsp (scheme : Scheme.t) src dst =
  let g = Apsp.graph apsp in
  let r = scheme.Scheme.route src dst in
  let c = check_walk g ~src ~dst ~delivered:r.Scheme.delivered r.Scheme.walk in
  (match c.outcome with Invalid_hop msg -> raise (Invalid_walk msg) | _ -> ());
  let d = Apsp.distance apsp src dst in
  let stretch =
    if not r.Scheme.delivered then infinity
    else if src = dst then 1.0
    else if d = 0.0 || d = infinity then infinity
    else c.checked_cost /. d
  in
  { src; dst; delivered = r.Scheme.delivered; cost = c.checked_cost; hops = c.checked_hops; stretch }

type aggregate = {
  pairs : int;
  delivered : int;
  stretch_stats : Stats.summary;
  cost_stats : Stats.summary;
  stretches : float array;
}

let measure_all ?pool apsp scheme pairs =
  let nq = Array.length pairs in
  if nq = 0 then [||]
  else begin
    (* the placeholder is never returned: every slot is overwritten *)
    let out =
      Array.make nq { src = 0; dst = 0; delivered = false; cost = 0.0; hops = 0; stretch = infinity }
    in
    let run i =
      let s, d = pairs.(i) in
      out.(i) <- measure apsp scheme s d
    in
    (match pool with
    | None -> for i = 0 to nq - 1 do run i done
    | Some pool -> Cr_util.Domain_pool.parallel_for ~chunk:32 pool ~n:nq run);
    out
  end

let aggregate_of_measured results =
  let stretches = ref [] in
  let costs = ref [] in
  let delivered = ref 0 in
  Array.iter
    (fun (m : measured) ->
      if m.delivered then begin
        incr delivered;
        stretches := m.stretch :: !stretches;
        costs := m.cost :: !costs
      end)
    results;
  let stretch_arr = Array.of_list !stretches in
  let cost_arr = Array.of_list !costs in
  {
    pairs = Array.length results;
    delivered = !delivered;
    stretch_stats = (if Array.length stretch_arr = 0 then Stats.empty_summary else Stats.summarize stretch_arr);
    cost_stats = (if Array.length cost_arr = 0 then Stats.empty_summary else Stats.summarize cost_arr);
    stretches = stretch_arr;
  }

let evaluate ?pool apsp scheme pairs = aggregate_of_measured (measure_all ?pool apsp scheme pairs)

exception Sample_shortfall of { requested : int; found : int }

let () =
  Printexc.register_printer (function
    | Sample_shortfall { requested; found } ->
        Some
          (Printf.sprintf
             "Simulator.Sample_shortfall: only %d of %d requested connected pairs found \
              (sparse or near-disconnected graph)"
             found requested)
    | _ -> None)

let sample_pairs ?(allow_short = false) rng apsp ~count =
  let n = Graph.n (Apsp.graph apsp) in
  if n < 2 then invalid_arg "Simulator.sample_pairs: n < 2";
  let out = ref [] in
  let found = ref 0 in
  let guard = ref 0 in
  while !found < count && !guard < 100 * count do
    incr guard;
    let s = Rng.int rng n and d = Rng.int rng n in
    if s <> d && Apsp.distance apsp s d < infinity then begin
      out := (s, d) :: !out;
      incr found
    end
  done;
  if !found < count && not allow_short then
    raise (Sample_shortfall { requested = count; found = !found });
  Array.of_list !out
