(** Approximate distance oracle — Thorup–Zwick [30].

    The paper's labeled comparators ([29], our {!Baseline_tz}) are built
    on the distance-oracle machinery of [30]: a structure of expected
    size [O(k · n^{1+1/k})] answering distance queries in O(k) time with
    stretch at most [2k − 1].  This module provides it as a standalone
    substrate: it shares the sampled hierarchy / pivot / bunch
    construction with the routing baseline and is the natural tool for
    distance estimation experiments.

    Construction: levels [A₀ = V ⊇ … ⊇ A_{k−1}] sampled with probability
    [n^{−1/k}] per level; pivots [p_j(u)] = closest [A_j] node; bunches
    [B(u) = ∪_j {w ∈ A_j \ A_{j+1} : d(u,w) < d(u, p_{j+1}(u))}] with
    exact distances stored for bunch members.

    Query(u,v): walk [w ← p_j(u)] for rising [j], swapping [u] and [v],
    until [w ∈ B(v)]; return [d(u,w) + d(w,v)]. *)

type t

val build : ?k:int -> ?seed:int -> Cr_graph.Apsp.t -> t
(** [k] defaults to 3.  @raise Invalid_argument if [k < 1]. *)

val k : t -> int

val query : t -> int -> int -> float
(** Estimated distance; [infinity] for disconnected pairs; [0.] when
    [u = v].  Guaranteed within a factor [2k − 1] of the true distance.
    Symmetric: [query t u v = query t v u] exactly (the alternating walk
    runs from the canonical [(min u v, max u v)] ordering — property
    tested in test/test_core.ml). *)

val stretch_bound : t -> float
(** [2k − 1]. *)

val size_entries : t -> int
(** Total bunch entries stored — expected [O(k · n^{1+1/k})]. *)

val storage_bits : t -> int
(** Bits for all bunches (id + distance per entry). *)
