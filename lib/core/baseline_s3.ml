module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Ball = Cr_graph.Ball
module Dijkstra = Cr_graph.Dijkstra
module Bits = Cr_util.Bits
module Rng = Cr_util.Rng
module Tree = Cr_tree.Tree
module Tree_labels = Cr_tree.Tree_labels

let shortest_path apsp a b = List.rev (Dijkstra.path_to (Apsp.sssp apsp b) a)

(* color of an identifier: seeded avalanche mod ncolors *)
let color_of ~seed ncolors ident =
  let z = Int64.of_int (ident lxor (seed * 0x9E3779B9)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  Int64.to_int (Int64.shift_right_logical z 8) mod ncolors

let build ?(seed = 5) apsp =
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let idb = Bits.id_bits ~n in
  let rng = Rng.create seed in
  let ncolors = max 1 (Bits.ceil_pow (float_of_int (max 2 n)) 0.5) in
  let vic_size = min n (Bits.ceil_pow (float_of_int (max 2 n) *. float_of_int (Bits.bits_for (max 2 n))) 0.5) in
  let ident v = Graph.name_of g v in
  let color v = color_of ~seed ncolors (ident v) in
  (* vicinities *)
  let vicinity = Array.init n (fun u -> Ball.closest (Apsp.ball apsp u) vic_size) in
  let in_vicinity =
    Array.map
      (fun arr ->
        let t = Hashtbl.create (Array.length arr) in
        Array.iter (fun v -> Hashtbl.replace t v ()) arr;
        t)
      vicinity
  in
  (* landmarks: random sample of ~sqrt(n), topped up so that every node's
     vicinity contains at least one *)
  let is_landmark = Array.make n false in
  let sample = Rng.sample_without_replacement rng (min n ncolors) n in
  Array.iter (fun v -> is_landmark.(v) <- true) sample;
  for u = 0 to n - 1 do
    if not (Array.exists (fun v -> is_landmark.(v)) vicinity.(u)) then begin
      (* promote u's closest vicinity member deterministically *)
      let arr = vicinity.(u) in
      if Array.length arr > 0 then is_landmark.(arr.(0)) <- true
    end
  done;
  let landmarks =
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if is_landmark.(v) then acc := v :: !acc
    done;
    Array.of_list !acc
  in
  (* landmark trees over their reachable sets, with stretch-1 labels *)
  let trees = Hashtbl.create (Array.length landmarks) in
  Array.iter
    (fun l ->
      let tree = Tree.of_sssp g (Apsp.sssp apsp l) ~keep:(fun _ -> true) in
      Hashtbl.replace trees l (tree, Tree_labels.build tree))
    landmarks;
  (* closest landmark of each node (same component) *)
  let closest_landmark = Array.make n (-1) in
  for v = 0 to n - 1 do
    let ball = Apsp.ball apsp v in
    let found = Ball.closest_in ball 1 (fun x -> is_landmark.(x)) in
    if Array.length found > 0 then closest_landmark.(v) <- found.(0)
  done;
  (* dictionaries: w holds (landmark, label) for every v of its color *)
  let dict = Array.init n (fun _ -> Hashtbl.create 4) in
  for v = 0 to n - 1 do
    if closest_landmark.(v) >= 0 then begin
      let c = color v in
      for w = 0 to n - 1 do
        if color w = c then Hashtbl.replace dict.(w) (ident v) v
      done
    end
  done;
  (* color pointers for colors missing from the vicinity *)
  let color_pointer = Array.make_matrix n ncolors (-1) in
  for u = 0 to n - 1 do
    let present = Array.make ncolors false in
    Array.iter (fun v -> present.(color v) <- true) vicinity.(u);
    let ball = Apsp.ball apsp u in
    for c = 0 to ncolors - 1 do
      if not present.(c) then begin
        let found = Ball.closest_in ball 1 (fun x -> color x = c) in
        if Array.length found > 0 then color_pointer.(u).(c) <- found.(0)
      end
    done
  done;
  (* ---- storage accounting ---- *)
  let storage = Storage.create ~n in
  for u = 0 to n - 1 do
    let pb = Bits.port_bits ~degree:(max 1 (Graph.degree g u)) in
    Storage.add storage ~node:u ~category:"s3-vicinity"
      ~bits:(Array.length vicinity.(u) * ((2 * idb) + pb));
    (* own label in every landmark tree *)
    let label_bits =
      Array.fold_left
        (fun acc l ->
          let _, tl = Hashtbl.find trees l in
          acc + Tree_labels.node_storage_bits tl u)
        0 landmarks
    in
    Storage.add storage ~node:u ~category:"s3-trees" ~bits:label_bits;
    let dict_bits =
      Hashtbl.fold
        (fun _ v acc ->
          let l = closest_landmark.(v) in
          let _, tl = Hashtbl.find trees l in
          acc + (2 * idb) + idb + Tree_labels.label_bits (Tree_labels.label tl v))
        dict.(u) 0
    in
    Storage.add storage ~node:u ~category:"s3-dictionary" ~bits:dict_bits;
    let ptr_bits =
      Array.fold_left (fun acc p -> if p >= 0 then acc + idb else acc) 0 color_pointer.(u)
    in
    Storage.add storage ~node:u ~category:"s3-color-pointers" ~bits:ptr_bits
  done;
  (* ---- routing ---- *)
  let route ?trace src dst =
    let emit ev = match trace with None -> () | Some f -> f ev in
    if src = dst then begin
      emit (Cr_obs.Trace.Deliver { phase = 0; node = dst });
      { Scheme.walk = [ src ]; delivered = true; phases_used = 1 }
    end
    else if Apsp.distance apsp src dst = infinity then begin
      emit (Cr_obs.Trace.No_route { phase = 1 });
      { Scheme.walk = [ src ]; delivered = false; phases_used = 1 }
    end
    else begin
      (match trace with
      | None -> ()
      | Some f ->
          f (Cr_obs.Trace.Phase_start
               { phase = 1; kind = Cr_obs.Trace.Vicinity; center = src; bound = 0 }));
      if Hashtbl.mem in_vicinity.(src) dst then begin
        emit (Cr_obs.Trace.Phase_result { phase = 1; found = true; rounds = 1 });
        emit (Cr_obs.Trace.Deliver { phase = 1; node = dst });
        { Scheme.walk = shortest_path apsp src dst; delivered = true; phases_used = 1 }
      end
      else begin
        emit (Cr_obs.Trace.Phase_result { phase = 1; found = false; rounds = 1 });
        let c = color dst in
        (* nearest color-c node: in vicinity, else the stored pointer *)
        let w =
          let ball = Apsp.ball apsp src in
          let found =
            Ball.closest_in ball 1 (fun x ->
                color x = c && (Hashtbl.mem in_vicinity.(src) x || color_pointer.(src).(c) = x))
          in
          if Array.length found > 0 then found.(0) else color_pointer.(src).(c)
        in
        if w < 0 then begin
          emit (Cr_obs.Trace.No_route { phase = 2 });
          { Scheme.walk = [ src ]; delivered = false; phases_used = 2 }
        end
        else begin
          (match trace with
          | None -> ()
          | Some f ->
              f (Cr_obs.Trace.Phase_start
                   { phase = 2; kind = Cr_obs.Trace.Color; center = w; bound = c }));
          let up = shortest_path apsp src w in
          (match trace with
          | None -> ()
          | Some f ->
              if src <> w then
                f (Cr_obs.Trace.Climb
                     { phase = 2; from_node = src; to_node = w; hops = List.length up - 1 }));
          match Hashtbl.find_opt dict.(w) (ident dst) with
          | None ->
              (* same-color node exists but dst unknown: cannot happen for
                 existing identifiers; report failure by returning *)
              emit (Cr_obs.Trace.Phase_result { phase = 2; found = false; rounds = 1 });
              emit (Cr_obs.Trace.No_route { phase = 2 });
              let back = match shortest_path apsp w src with [] -> [] | _ :: r -> r in
              { Scheme.walk = up @ back; delivered = false; phases_used = 2 }
          | Some v ->
              let l = closest_landmark.(v) in
              let tree, _ = Hashtbl.find trees l in
              (match trace with
              | None -> ()
              | Some f ->
                  f (Cr_obs.Trace.Tree_step { round = 1; from_node = w; to_node = v }));
              emit (Cr_obs.Trace.Phase_result { phase = 2; found = true; rounds = 1 });
              emit (Cr_obs.Trace.Deliver { phase = 2; node = dst });
              let tail = match Tree.path tree w v with [] -> [] | _ :: r -> r in
              { Scheme.walk = up @ tail; delivered = true; phases_used = 2 }
        end
      end
    end
  in
  { Scheme.name = "agmnt-stretch3"; graph = g; storage;
    header_bits = Scheme.label_header_bits ~n + idb;
    route }
