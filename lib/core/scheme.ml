type route = { walk : int list; delivered : bool; phases_used : int }

type t = {
  name : string;
  graph : Cr_graph.Graph.t;
  storage : Storage.t;
  header_bits : int;
  route : ?trace:Cr_obs.Trace.sink -> int -> int -> route;
}

let default_header_bits ~n = (2 * Cr_util.Bits.id_bits ~n) + 16

let label_header_bits ~n =
  let lg = Cr_util.Bits.id_bits ~n in
  default_header_bits ~n + (lg * lg)

let direct_route _g walk delivered = { walk; delivered; phases_used = 1 }
