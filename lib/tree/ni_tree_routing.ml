module Bits = Cr_util.Bits
module Digit_hash = Cr_util.Digit_hash
module Graph = Cr_graph.Graph

type outcome = Found of int | Not_found_reported

type search_result = { walk : int list; outcome : outcome; rounds : int }

type t = {
  tree : Tree.t;
  labels : Tree_labels.t;
  k : int;
  sigma : int;
  cap : int;
  hash : Digit_hash.t;
  order : int array; (* position -> graph id, by (root distance, id) *)
  position : int array; (* tree index -> position *)
  level_start : int array; (* level_start.(l) = first position with l digits *)
  name_len : int array; (* per tree index *)
  dir : (int, int) Hashtbl.t array; (* per tree index: ident -> graph id *)
  max_load : int;
}

(* Positions are named level by level: 1 root, then sigma 1-digit names,
   sigma^2 2-digit names, ...  level_start.(l) is the first position of
   level l; level_start.(k+1) caps the total. *)
let compute_level_starts ~sigma ~k m =
  let starts = Array.make (k + 2) 0 in
  let acc = ref 1 in
  starts.(0) <- 0;
  for l = 1 to k + 1 do
    starts.(l) <- !acc;
    if l <= k then begin
      let cap_level =
        let rec pow acc i = if i = 0 || acc > m then acc else pow (acc * sigma) (i - 1) in
        pow 1 l
      in
      acc := !acc + cap_level
    end
  done;
  if !acc < m then invalid_arg "Ni_tree_routing: tree too large for sigma^k names";
  starts

let level_of_position starts ~k p =
  let rec find l =
    if l > k then invalid_arg "Ni_tree_routing: position beyond last level"
    else if p < starts.(l + 1) then l
    else find (l + 1)
  in
  find 0

let name_of_position ~sigma starts ~k p =
  let l = level_of_position starts ~k p in
  if l = 0 then [||]
  else begin
    let v = ref (p - starts.(l)) in
    let digits = Array.make l 0 in
    for i = l - 1 downto 0 do
      digits.(i) <- !v mod sigma;
      v := !v / sigma
    done;
    digits
  end

(* Position of the node whose name is digits.(0 .. len-1), if assigned. *)
let position_of_name ~sigma starts ~m digits len =
  let v = ref 0 in
  for i = 0 to len - 1 do
    v := (!v * sigma) + digits.(i)
  done;
  let p = starts.(len) + !v in
  if p < m then Some p else None

let ident tree v = Graph.name_of (Tree.graph tree) v

let sigma_for ~n_global ~k =
  max 2 (Bits.ceil_pow (float_of_int (max 2 n_global)) (1.0 /. float_of_int k))

let try_build ~seed ~k ~n_global ~cap tree labels order position level_start =
  let m = Array.length order in
  let sigma = sigma_for ~n_global ~k in
  let hash = Digit_hash.create ~seed ~sigma ~digits:k in
  let name_len = Array.make m 0 in
  Array.iteri
    (fun p v -> name_len.(Tree.tree_index tree v) <- level_of_position level_start ~k p)
    order;
  (* Directory of each named node: the [cap] prefix-matching nodes closest
     to the root.  Scanning nodes in distance order and appending to the
     directories of all their hash-prefix names keeps each directory
     sorted by closeness with a single pass. *)
  let dir = Array.init m (fun _ -> Hashtbl.create 4) in
  let full = Array.make m 0 in
  Array.iter
    (fun z ->
      let idz = ident tree z in
      let h = Digit_hash.hash hash idz in
      for l = 0 to k do
        match position_of_name ~sigma level_start ~m h l with
        | Some p ->
            let wi = Tree.tree_index tree order.(p) in
            if full.(wi) < cap then begin
              Hashtbl.replace dir.(wi) idz z;
              full.(wi) <- full.(wi) + 1
            end
        | None -> ()
      done)
    order;
  let max_load = Array.fold_left max 0 full in
  (* Validate the Lemma-4 delivery precondition: every node v with name
     length l is present in the directory of the node named by the first
     max(0, l-1) hash digits of v's identifier (for l = 0, the root must
     know itself). *)
  let ok = ref true in
  Array.iter
    (fun v ->
      let vi = Tree.tree_index tree v in
      let pref_len = max 0 (name_len.(vi) - 1) in
      let idv = ident tree v in
      let h = Digit_hash.hash hash idv in
      match position_of_name ~sigma level_start ~m h pref_len with
      | Some p ->
          let wi = Tree.tree_index tree order.(p) in
          if Hashtbl.find_opt dir.(wi) idv <> Some v then ok := false
      | None -> ok := false)
    order;
  if !ok then
    Some
      {
        tree;
        labels;
        k;
        sigma;
        cap;
        hash;
        order;
        position;
        level_start;
        name_len;
        dir;
        max_load;
      }
  else None

let build ?(seed = 0x5EED) ~k ~n_global tree =
  if k < 1 then invalid_arg "Ni_tree_routing.build: k < 1";
  let labels = Tree_labels.build tree in
  let order = Tree.by_root_distance tree in
  let m = Array.length order in
  let position = Array.make m 0 in
  Array.iteri (fun p v -> position.(Tree.tree_index tree v) <- p) order;
  let sigma = sigma_for ~n_global ~k in
  let level_start = compute_level_starts ~sigma ~k m in
  let base_cap = max 1 (sigma * Bits.bits_for (max 2 n_global)) in
  (* Re-seed on (vanishingly rare) hash overload; double the directory
     capacity if 64 seeds all fail — a constructive version of the
     with-high-probability argument. *)
  let rec attempt cap tries =
    let rec seeds i =
      if i >= 64 then None
      else
        match
          try_build ~seed:(seed + (tries * 64) + i) ~k ~n_global ~cap tree labels order
            position level_start
        with
        | Some t -> Some t
        | None -> seeds (i + 1)
    in
    match seeds 0 with
    | Some t -> t
    | None ->
        if cap >= m then failwith "Ni_tree_routing.build: cannot satisfy directory invariant"
        else attempt (min (2 * cap) m) (tries + 1)
  in
  attempt (min base_cap m) 0

let tree t = t.tree

let sigma t = t.sigma

let directory_capacity t = t.cap

let name_of t v =
  let p = t.position.(Tree.tree_index t.tree v) in
  name_of_position ~sigma:t.sigma t.level_start ~k:t.k p

let name_digits t v = t.name_len.(Tree.tree_index t.tree v)

let append_path tree walk_rev a b =
  (* extend reversed walk (ending at a) with the tree path a -> b,
     excluding a itself *)
  match Tree.path tree a b with
  | [] -> walk_rev
  | _first :: rest -> List.rev_append rest walk_rev

let search ?trace t ~bound ident_target =
  let bound = max 1 (min bound t.k) in
  let root = Tree.root t.tree in
  let h = Digit_hash.hash t.hash ident_target in
  let m = Array.length t.order in
  let rec go current walk_rev round =
    let ci = Tree.tree_index t.tree current in
    match Hashtbl.find_opt t.dir.(ci) ident_target with
    | Some v ->
        (match trace with
        | None -> ()
        | Some f -> f (Cr_obs.Trace.Tree_step { round; from_node = current; to_node = v }));
        let walk_rev = append_path t.tree walk_rev current v in
        { walk = List.rev walk_rev; outcome = Found v; rounds = round }
    | None ->
        if round = bound then begin
          let walk_rev = append_path t.tree walk_rev current root in
          { walk = List.rev walk_rev; outcome = Not_found_reported; rounds = round }
        end
        else begin
          match position_of_name ~sigma:t.sigma t.level_start ~m h round with
          | Some p ->
              let next = t.order.(p) in
              (match trace with
              | None -> ()
              | Some f ->
                  f (Cr_obs.Trace.Tree_step { round; from_node = current; to_node = next }));
              let walk_rev = append_path t.tree walk_rev current next in
              go next walk_rev (round + 1)
          | None ->
              (* No node carries that name: the level is not full, so every
                 prefix-matching node fit in the directory just checked —
                 conclusively absent. *)
              let walk_rev = append_path t.tree walk_rev current root in
              { walk = List.rev walk_rev; outcome = Not_found_reported; rounds = round }
        end
  in
  go root [ root ] 1

let guaranteed_bound t vs =
  Array.fold_left
    (fun acc v -> if Tree.mem t.tree v then max acc (max 1 (name_digits t v)) else t.k)
    1 vs

(* Number of assigned trie children of the node at position p. *)
let trie_child_count t p =
  let l = level_of_position t.level_start ~k:t.k p in
  if l >= t.k then 0
  else begin
    let m = Array.length t.order in
    let value = p - t.level_start.(l) in
    let first_child = t.level_start.(l + 1) + (value * t.sigma) in
    if first_child >= m then 0 else min t.sigma (m - first_child)
  end

let node_storage_bits t v =
  let i = Tree.tree_index t.tree v in
  let n = Graph.n (Tree.graph t.tree) in
  let idb = Bits.id_bits ~n in
  let ident_bits = 2 * idb in
  let hash_bits = Digit_hash.storage_bits ~n in
  let own = Tree_labels.node_storage_bits t.labels v in
  let label_bits_of u = Tree_labels.label_bits (Tree_labels.label t.labels u) in
  (* trie children: presence bitmap over sigma slots plus one label each *)
  let p = t.position.(i) in
  let cc = trie_child_count t p in
  let trie_bits = ref t.sigma in
  let l = t.name_len.(i) in
  if cc > 0 then begin
    let value = p - t.level_start.(l) in
    let first_child = t.level_start.(l + 1) + (value * t.sigma) in
    for c = first_child to first_child + cc - 1 do
      trie_bits := !trie_bits + label_bits_of t.order.(c)
    done
  end;
  let dir_bits =
    Hashtbl.fold (fun _id u acc -> acc + ident_bits + label_bits_of u) t.dir.(i) 0
  in
  hash_bits + own + !trie_bits + dir_bits

let total_storage_bits t =
  Array.fold_left (fun acc v -> acc + node_storage_bits t v) 0 (Tree.nodes t.tree)

let max_prefix_load t = t.max_load
