(** Name-independent error-reporting tree routing for cover trees —
    Lemma 7 of the paper (the AGM'04 [3] scheme with Lemma 5 labels).

    Every tree node gets a DFS index; the {e directory node} of a network
    identifier is the tree node whose DFS index is [hash(ident) mod m].
    That node stores the routing labels of all member identifiers hashed
    to it.  A search from the root descends by DFS intervals to the
    directory node (each step a local decision on stored child
    intervals), looks up the destination label, and either routes to the
    destination or returns a negative response to the root.

    Route length is at most [4·rad(T) + 2k·maxE(T)]; a failed search
    (non-existent name) incurs a closed walk of at most the same length
    back to the root. *)

type t

type outcome = Found of int | Not_found_reported

type search_result = { walk : int list; outcome : outcome }

val build : Tree.t -> t
(** Index a tree.  Only {e member} nodes (not relays) get directory
    entries; all tree nodes participate in forwarding. *)

val tree : t -> Tree.t

val search : ?trace:Cr_obs.Trace.sink -> t -> int -> search_result
(** [search t ident] searches from the root for the member with the given
    network identifier.  The walk starts at the root; on failure it ends
    back at the root.  With [trace], the descent to the directory node
    (and the hop to a hit) is emitted as [Tree_step] events; the walk is
    identical either way. *)

val cost_bound : t -> float
(** The Lemma 7 bound [4·rad(T) + 2k·maxE(T)] for this tree, with
    [k = ⌈log₂ m⌉] (the label depth). *)

val node_storage_bits : t -> int -> int
(** Bits at one tree node: own label, child intervals/ports, directory
    entries. *)

val total_storage_bits : t -> int
