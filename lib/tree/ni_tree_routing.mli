(** Name-independent error-reporting tree routing — Lemma 4 of the paper.

    Given a weighted tree [T] with designated root [r] and a parameter
    [k], every tree node gets three names (§3.1):

    - a {e primary name}: a word over [Σ = {0,…,σ−1}] assigned in
      increasing order of distance from the root — the root is the empty
      word, the next [σ] nodes get 1-digit names, the next [σ²] get
      2-digit names, and so on (ties broken by node id);
    - a {e routing label} [λ(T,v)] from the labeled scheme of Lemma 5
      ({!Tree_labels});
    - a {e hash name} [h(v) ∈ Σ^k] of its {e network identifier},
      computed by a seeded hash ({!Cr_util.Digit_hash}).

    A node with primary name [x] of [j] digits stores (1) its labeled
    routing info, (2) the labels of its name-trie children [x·y], and
    (3) a directory: the labels of the [σ·⌈log₂ n⌉] nodes closest to the
    root whose hash name has prefix [x].

    A [j]-bounded search from the root for a destination {e identifier}
    walks the trie nodes named by successive hash digits of the
    identifier, checking each directory; it either reaches the
    destination with stretch [≤ 2j−1], or returns a negative response to
    the root at cost [≤ (2j−2)·max{d(r,v) : v ∈ V_{j−1}}] (Lemma 4(2b)).

    The construction validates the hash prefix-load requirement of the
    paper and re-seeds the hash until it holds, mirroring the
    with-high-probability argument. *)

type t

type outcome =
  | Found of int  (** destination graph node *)
  | Not_found_reported  (** negative response delivered back to the root *)

type search_result = {
  walk : int list;  (** graph nodes visited, starting at the root *)
  outcome : outcome;
  rounds : int;  (** trie rounds executed *)
}

val build : ?seed:int -> k:int -> n_global:int -> Tree.t -> t
(** [build ~k ~n_global tree] names and wires the tree.  [n_global] is
    the network size [n] used for [σ = ⌈n^{1/k}⌉] and directory capacity
    [σ·⌈log₂ n⌉], per the paper's global parameters.
    @raise Invalid_argument if [k < 1]. *)

val tree : t -> Tree.t

val sigma : t -> int

val directory_capacity : t -> int

val name_of : t -> int -> int array
(** Primary name (digit array, possibly empty for the root) of a tree
    node given by graph id.  @raise Not_found if absent. *)

val name_digits : t -> int -> int
(** Number of digits of the primary name — the node's "name level".
    The minimal [j] for which a [j]-bounded search is guaranteed to find
    this node is [max 1 (name_digits t v)]. *)

val search : ?trace:Cr_obs.Trace.sink -> t -> bound:int -> int -> search_result
(** [search t ~bound ident] performs a [bound]-bounded search from the
    root for the node whose {e network identifier} is [ident] (which need
    not be in the tree: then the search reports a negative response).
    [bound] is clamped to [\[1, k\]].  With [trace], every trie move
    (and the final hop to a directory hit) is emitted as a
    [Tree_step]; the returned walk is identical either way. *)

val guaranteed_bound : t -> int array -> int
(** [guaranteed_bound t vs] is the minimal [j] such that a [j]-bounded
    search finds every graph node in [vs] — the [b(u,i)] of §3.1.
    Nodes absent from the tree yield [k] (full search; may still fail). *)

val node_storage_bits : t -> int -> int
(** Bits stored at one tree node: hash function, own routing info, trie
    child labels, directory entries. *)

val total_storage_bits : t -> int

val max_prefix_load : t -> int
(** Largest directory-qualifying population observed when validating the
    hash (diagnostics for the Claim-style tests). *)
