module Bits = Cr_util.Bits
module Graph = Cr_graph.Graph

type outcome = Found of int | Not_found_reported

type search_result = { walk : int list; outcome : outcome }

type t = {
  tree : Tree.t;
  labels : Tree_labels.t;
  dir : (int, int) Hashtbl.t array; (* by dfs index: ident -> graph id *)
}

(* Deterministic avalanche of an identifier into [0, m). *)
let slot_of ident m =
  let z = Int64.of_int (ident + 0x9E37) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 8) mod m

let build tree =
  let labels = Tree_labels.build tree in
  let m = Tree.size tree in
  let dir = Array.init m (fun _ -> Hashtbl.create 2) in
  Array.iter
    (fun v ->
      if Tree.is_member tree v then begin
        let ident = Graph.name_of (Tree.graph tree) v in
        Hashtbl.replace dir.(slot_of ident m) ident v
      end)
    (Tree.nodes tree);
  { tree; labels; dir }

let tree t = t.tree

let append_path tree walk_rev a b =
  match Tree.path tree a b with
  | [] -> walk_rev
  | _first :: rest -> List.rev_append rest walk_rev

(* Descend from the root to the node with the given DFS index by interval
   containment — every step is a local decision on stored child
   intervals. *)
let descend tree q =
  let rec go v acc =
    if Tree.dfs_index tree v = q then List.rev (v :: acc)
    else begin
      let ch = Tree.children tree v in
      let next = ref (-1) in
      Array.iter
        (fun c ->
          let lo, hi = Tree.subtree_interval tree c in
          if q >= lo && q < hi then next := c)
        ch;
      assert (!next >= 0);
      go !next (v :: acc)
    end
  in
  go (Tree.root tree) []

let search ?trace t ident =
  let tree = t.tree in
  let root = Tree.root tree in
  let m = Tree.size tree in
  let q = slot_of ident m in
  let down = descend tree q in
  let dir_node = List.nth down (List.length down - 1) in
  (match trace with
  | None -> ()
  | Some f -> f (Cr_obs.Trace.Tree_step { round = 1; from_node = root; to_node = dir_node }));
  let walk_rev = List.rev down in
  match Hashtbl.find_opt t.dir.(q) ident with
  | Some v ->
      (match trace with
      | None -> ()
      | Some f -> f (Cr_obs.Trace.Tree_step { round = 2; from_node = dir_node; to_node = v }));
      let walk_rev = append_path tree walk_rev dir_node v in
      { walk = List.rev walk_rev; outcome = Found v }
  | None ->
      let walk_rev = append_path tree walk_rev dir_node root in
      { walk = List.rev walk_rev; outcome = Not_found_reported }

let cost_bound t =
  let k = Bits.bits_for (max 2 (Tree.size t.tree)) in
  (4.0 *. Tree.radius t.tree) +. (2.0 *. float_of_int k *. Tree.max_edge t.tree)

let node_storage_bits t v =
  let tree = t.tree in
  let n = Graph.n (Tree.graph tree) in
  let idb = Bits.id_bits ~n in
  let ident_bits = 2 * idb in
  let own = Tree_labels.node_storage_bits t.labels v in
  let m = Tree.size tree in
  let interval_bits = 2 * Bits.bits_for (max 2 m) in
  let child_bits = Array.length (Tree.children tree v) * interval_bits in
  let q = Tree.dfs_index tree v in
  let dir_bits =
    Hashtbl.fold
      (fun _id u acc -> acc + ident_bits + Tree_labels.label_bits (Tree_labels.label t.labels u))
      t.dir.(q) 0
  in
  own + child_bits + dir_bits

let total_storage_bits t =
  Array.fold_left (fun acc v -> acc + node_storage_bits t v) 0 (Tree.nodes t.tree)
