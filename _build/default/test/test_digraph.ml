(* Tests for the directed extension (paper §4): digraph substrate,
   directed Dijkstra, SCC, round-trip metric, and the directed scheme. *)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Generators = Cr_graph.Generators
module D = Cr_digraph.Digraph
module Dd = Cr_digraph.Ddijkstra
module Scc = Cr_digraph.Scc
module Dgen = Cr_digraph.Dgen
module Rt = Cr_digraph.Rt
module Dscheme = Cr_digraph.Dscheme
module Dsim = Cr_digraph.Dsim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* 0 -> 1 -> 2 -> 0 cycle plus shortcut 0 -> 2 *)
let tri () = D.create ~n:3 [ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0); (0, 2, 3.0) ]

(* ------------------------------------------------------------------ *)
(* Digraph *)

let test_digraph_basic () =
  let g = tri () in
  checki "n" 3 (D.n g);
  checki "m" 4 (D.m g);
  checki "outdeg 0" 2 (D.out_degree g 0);
  checkb "has 0->1" true (D.has_arc g 0 1);
  checkb "no 1->0" false (D.has_arc g 1 0);
  checkf "w(0,2)" 3.0 (Option.get (D.arc_weight g 0 2));
  checki "in-neighbors of 2" 2 (Array.length (D.in_neighbors g 2))

let test_digraph_invalid () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  checkb "self loop" true (raises (fun () -> ignore (D.create ~n:2 [ (0, 0, 1.0) ])));
  checkb "bad weight" true (raises (fun () -> ignore (D.create ~n:2 [ (0, 1, 0.0) ])));
  checkb "range" true (raises (fun () -> ignore (D.create ~n:2 [ (0, 3, 1.0) ])))

let test_digraph_parallel_min () =
  let g = D.create ~n:2 [ (0, 1, 5.0); (0, 1, 2.0) ] in
  checki "merged" 1 (D.m g);
  checkf "min kept" 2.0 (Option.get (D.arc_weight g 0 1))

let test_digraph_reverse () =
  let g = tri () in
  let r = D.reverse g in
  checkb "reversed arc" true (D.has_arc r 1 0);
  checkb "old direction gone" false (D.has_arc r 0 1);
  checki "same m" 4 (D.m r)

let test_digraph_of_graph () =
  let ug = Graph.create ~n:3 [ (0, 1, 2.0); (1, 2, 1.0) ] in
  let g = D.of_graph ug in
  checki "arcs doubled" 4 (D.m g);
  checkb "both directions" true (D.has_arc g 0 1 && D.has_arc g 1 0);
  checkf "weight kept" 2.0 (Option.get (D.arc_weight g 1 0))

let test_digraph_normalize_relabel () =
  let g = D.create ~n:2 [ (0, 1, 4.0); (1, 0, 8.0) ] in
  let g' = D.normalize g in
  checkf "min 1" 1.0 (D.min_weight g');
  let rng = Rng.create 3 in
  let g'' = D.relabel rng g' in
  checkb "names distinct" true (D.name_of g'' 0 <> D.name_of g'' 1)

(* ------------------------------------------------------------------ *)
(* Ddijkstra *)

let test_ddijkstra_directed_distances () =
  let g = tri () in
  let res = Dd.run g 0 in
  checkf "d(0,1)" 1.0 res.Dd.dist.(1);
  checkf "d(0,2)" 2.0 res.Dd.dist.(2) (* via 1, not the weight-3 arc *);
  let res1 = Dd.run g 1 in
  checkf "d(1,0)" 2.0 res1.Dd.dist.(0) (* around the cycle *);
  Alcotest.(check (list int)) "path" [ 0; 1; 2 ] (Dd.path_from_source res 2)

let test_ddijkstra_reverse () =
  let g = tri () in
  let res = Dd.run_reverse g 2 in
  (* dist.(v) = d(v, 2) *)
  checkf "d(0,2)" 2.0 res.Dd.dist.(0);
  checkf "d(1,2)" 1.0 res.Dd.dist.(1);
  Alcotest.(check (list int)) "walk into source" [ 0; 1; 2 ] (Dd.path_to_source res 0);
  (* the walk is arc-valid *)
  let c, h = Dsim.walk_cost g (Dd.path_to_source res 0) in
  checkf "cost" 2.0 c;
  checki "hops" 2 h

let test_ddijkstra_unreachable () =
  let g = D.create ~n:3 [ (0, 1, 1.0) ] in
  let res = Dd.run g 1 in
  checkb "1 cannot reach 0" true (res.Dd.dist.(0) = infinity);
  checkb "path raises" true (try ignore (Dd.path_from_source res 0); false with Not_found -> true)

let test_ddijkstra_matches_undirected () =
  (* on a symmetric digraph, directed distances equal undirected ones *)
  let rng = Rng.create 7 in
  let ug = Generators.erdos_renyi rng ~n:60 ~avg_degree:4.0 in
  let g = D.of_graph ug in
  let du = (Cr_graph.Dijkstra.run ug 0).Cr_graph.Dijkstra.dist in
  let dd = (Dd.run g 0).Dd.dist in
  Array.iteri (fun v d -> checkb "equal" true (Float.abs (d -. dd.(v)) < 1e-9)) du

(* ------------------------------------------------------------------ *)
(* Scc *)

let test_scc_cycle_plus_tail () =
  let g = D.create ~n:5 [ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0); (2, 3, 1.0); (3, 4, 1.0) ] in
  let comp = Scc.components g in
  checki "three sccs" 3 (Scc.count g);
  checkb "cycle together" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  checkb "tail separate" true (comp.(3) <> comp.(0) && comp.(4) <> comp.(3));
  checkb "not strongly connected" false (Scc.is_strongly_connected g);
  Alcotest.(check (array int)) "largest" [| 0; 1; 2 |] (Scc.largest g)

let test_scc_strongly_connected () =
  let rng = Rng.create 11 in
  let g = Dgen.directed_ring rng ~n:50 ~chords:10 in
  checkb "ring strongly connected" true (Scc.is_strongly_connected g);
  checki "one scc" 1 (Scc.count g)

let test_scc_dag () =
  let g = D.create ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ] in
  checki "all singletons" 4 (Scc.count g)

(* ------------------------------------------------------------------ *)
(* generators *)

let test_dgen_all_strongly_connected () =
  let rng = Rng.create 13 in
  checkb "ring" true (Scc.is_strongly_connected (Dgen.directed_ring rng ~n:40 ~chords:8));
  checkb "er" true
    (Scc.is_strongly_connected (Dgen.directed_erdos_renyi rng ~n:40 ~avg_out_degree:2.0));
  let ug = Generators.random_geometric rng ~n:40 ~radius:0.3 in
  checkb "asym" true (Scc.is_strongly_connected (Dgen.asymmetric_of_graph rng ug ~skew:3.0))

let test_dgen_asymmetry () =
  let rng = Rng.create 17 in
  let ug = Generators.grid ~rows:4 ~cols:4 in
  let g = Dgen.asymmetric_of_graph rng ug ~skew:4.0 in
  (* opposite arcs exist with reciprocal-scaled weights *)
  let asym = ref false in
  Graph.iter_edges ug (fun u v _ ->
      let a = Option.get (D.arc_weight g u v) and b = Option.get (D.arc_weight g v u) in
      if Float.abs (a -. b) > 1e-9 then asym := true);
  checkb "weights asymmetric" true !asym

(* ------------------------------------------------------------------ *)
(* Rt *)

let test_rt_basics () =
  let g = tri () in
  let rt = Rt.compute g in
  checkf "one-way 0->2" 2.0 (Rt.dist rt 0 2);
  checkf "one-way 2->0" 1.0 (Rt.dist rt 2 0);
  checkf "round trip symmetric" (Rt.rt rt 0 2) (Rt.rt rt 2 0);
  checkf "rt value" 3.0 (Rt.rt rt 0 2);
  checkb "strongly connected" true (Rt.strongly_connected rt)

let test_rt_metric_properties () =
  (* dRT is a metric: symmetric and triangle inequality *)
  let rng = Rng.create 19 in
  let g = Dgen.directed_erdos_renyi rng ~n:40 ~avg_out_degree:3.0 in
  let rt = Rt.compute g in
  for u = 0 to 39 do
    for v = 0 to 39 do
      checkb "symmetric" true (Float.abs (Rt.rt rt u v -. Rt.rt rt v u) < 1e-9);
      for w = 0 to 19 do
        checkb "triangle" true (Rt.rt rt u v <= Rt.rt rt u w +. Rt.rt rt w v +. 1e-9)
      done
    done
  done

let test_rt_sorted_and_balls () =
  let rng = Rng.create 23 in
  let g = Dgen.directed_ring rng ~n:30 ~chords:5 in
  let rt = Rt.compute g in
  let s = Rt.rt_sorted rt 0 in
  checki "all nodes" 30 (Array.length s);
  checki "self first" 0 (fst s.(0));
  let ok = ref true in
  for i = 0 to Array.length s - 2 do
    if snd s.(i) > snd s.(i + 1) then ok := false
  done;
  checkb "sorted" true !ok;
  checki "ball size consistent" (Array.length (Rt.rt_ball rt 0 5.0)) (Rt.rt_ball_size rt 0 5.0)

(* ------------------------------------------------------------------ *)
(* Dscheme *)

let directed_workloads seed =
  let rng = Rng.create seed in
  [
    ("dring", Dgen.directed_ring rng ~n:80 ~chords:30);
    ("der", Dgen.directed_erdos_renyi rng ~n:80 ~avg_out_degree:3.0);
    ( "asym",
      Dgen.asymmetric_of_graph rng (Generators.random_geometric rng ~n:80 ~radius:0.22) ~skew:3.0 );
  ]

let test_dscheme_delivers_everywhere () =
  List.iter
    (fun (name, g) ->
      let g = D.normalize (D.relabel (Rng.create 29) g) in
      let rt = Rt.compute g in
      let sch = Dscheme.build ~k:3 rt in
      let n = D.n g in
      for s = 0 to n - 1 do
        let d = (s + (n / 2)) mod n in
        if s <> d then begin
          let m = Dsim.measure rt sch s d in
          checkb (Printf.sprintf "%s %d->%d delivered" name s d) true m.Dsim.delivered
        end
      done)
    (directed_workloads 31)

let test_dscheme_walks_are_directed () =
  (* Dsim.measure raises if any hop violates arc direction; exercise many *)
  let rng = Rng.create 37 in
  let g = D.normalize (Dgen.directed_ring rng ~n:60 ~chords:20) in
  let rt = Rt.compute g in
  let sch = Dscheme.build ~k:2 rt in
  for s = 0 to 59 do
    for d = 0 to 59 do
      if (s + d) mod 7 = 0 && s <> d then ignore (Dsim.measure rt sch s d)
    done
  done;
  checkb "no invalid walks" true true

let test_dscheme_rt_stretch_bounded () =
  (* the directed guarantee is O(k) vs the round-trip metric *)
  List.iter
    (fun (name, g) ->
      let g = D.normalize (D.relabel (Rng.create 41) g) in
      let rt = Rt.compute g in
      let k = 3 in
      let sch = Dscheme.build ~k rt in
      let rng = Rng.create 43 in
      let n = D.n g in
      for _ = 1 to 200 do
        let s = Rng.int rng n and d = Rng.int rng n in
        if s <> d then begin
          let m = Dsim.measure rt sch s d in
          checkb
            (Printf.sprintf "%s rt-stretch %.2f bounded" name m.Dsim.rt_stretch)
            true
            (m.Dsim.rt_stretch <= 16.0 *. float_of_int k)
        end
      done)
    (directed_workloads 47)

let test_dscheme_self_route () =
  let rng = Rng.create 53 in
  let g = D.normalize (Dgen.directed_ring rng ~n:20 ~chords:4) in
  let rt = Rt.compute g in
  let sch = Dscheme.build rt in
  let r = Dscheme.route sch 5 5 in
  checkb "self" true r.Dscheme.delivered;
  Alcotest.(check (list int)) "trivial walk" [ 5 ] r.Dscheme.walk

let test_dscheme_requires_strong_connectivity () =
  let g = D.create ~n:3 [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let rt = Rt.compute g in
  checkb "rejected" true
    (try ignore (Dscheme.build rt); false with Invalid_argument _ -> true)

let test_dscheme_storage_positive () =
  let rng = Rng.create 59 in
  let g = D.normalize (Dgen.directed_erdos_renyi rng ~n:50 ~avg_out_degree:3.0) in
  let rt = Rt.compute g in
  let sch = Dscheme.build ~k:3 rt in
  for v = 0 to 49 do
    checkb "stores something" true (Dscheme.node_storage_bits sch v > 0)
  done;
  checkb "mean <= max" true (Dscheme.mean_storage_bits sch <= float_of_int (Dscheme.max_storage_bits sch))

let test_dscheme_k1 () =
  let rng = Rng.create 61 in
  let g = D.normalize (Dgen.directed_ring rng ~n:24 ~chords:6) in
  let rt = Rt.compute g in
  let sch = Dscheme.build ~k:1 rt in
  for s = 0 to 23 do
    let d = (s + 7) mod 24 in
    if s <> d then checkb "k=1 delivers" true (Dsim.measure rt sch s d).Dsim.delivered
  done

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"directed scheme delivers on random strongly connected digraphs" ~count:8
      (pair (int_range 0 300) (int_range 20 50))
      (fun (seed, n) ->
        let rng = Rng.create seed in
        let g = D.normalize (D.relabel rng (Dgen.directed_erdos_renyi rng ~n ~avg_out_degree:2.5)) in
        let rt = Rt.compute g in
        let sch = Dscheme.build ~k:2 ~seed rt in
        let ok = ref true in
        for _ = 1 to 25 do
          let s = Rng.int rng n and d = Rng.int rng n in
          if s <> d then begin
            let m = Dsim.measure rt sch s d in
            if not m.Dsim.delivered then ok := false
          end
        done;
        !ok);
    Test.make ~name:"round-trip metric is a metric" ~count:10
      (int_range 0 500)
      (fun seed ->
        let rng = Rng.create seed in
        let g = Dgen.directed_ring rng ~n:25 ~chords:8 in
        let rt = Rt.compute g in
        let ok = ref true in
        for u = 0 to 24 do
          for v = 0 to 24 do
            if Float.abs (Rt.rt rt u v -. Rt.rt rt v u) > 1e-9 then ok := false;
            if u = v && Rt.rt rt u v <> 0.0 then ok := false
          done
        done;
        !ok);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "digraph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "invalid" `Quick test_digraph_invalid;
          Alcotest.test_case "parallel min" `Quick test_digraph_parallel_min;
          Alcotest.test_case "reverse" `Quick test_digraph_reverse;
          Alcotest.test_case "of_graph" `Quick test_digraph_of_graph;
          Alcotest.test_case "normalize/relabel" `Quick test_digraph_normalize_relabel;
        ] );
      ( "ddijkstra",
        [
          Alcotest.test_case "directed distances" `Quick test_ddijkstra_directed_distances;
          Alcotest.test_case "reverse search" `Quick test_ddijkstra_reverse;
          Alcotest.test_case "unreachable" `Quick test_ddijkstra_unreachable;
          Alcotest.test_case "matches undirected" `Quick test_ddijkstra_matches_undirected;
        ] );
      ( "scc",
        [
          Alcotest.test_case "cycle plus tail" `Quick test_scc_cycle_plus_tail;
          Alcotest.test_case "strongly connected" `Quick test_scc_strongly_connected;
          Alcotest.test_case "dag" `Quick test_scc_dag;
        ] );
      ( "dgen",
        [
          Alcotest.test_case "strong connectivity" `Quick test_dgen_all_strongly_connected;
          Alcotest.test_case "asymmetry" `Quick test_dgen_asymmetry;
        ] );
      ( "rt",
        [
          Alcotest.test_case "basics" `Quick test_rt_basics;
          Alcotest.test_case "metric properties" `Quick test_rt_metric_properties;
          Alcotest.test_case "sorted and balls" `Quick test_rt_sorted_and_balls;
        ] );
      ( "dscheme",
        [
          Alcotest.test_case "delivers everywhere" `Quick test_dscheme_delivers_everywhere;
          Alcotest.test_case "walks directed" `Quick test_dscheme_walks_are_directed;
          Alcotest.test_case "rt stretch bounded" `Quick test_dscheme_rt_stretch_bounded;
          Alcotest.test_case "self route" `Quick test_dscheme_self_route;
          Alcotest.test_case "needs strong connectivity" `Quick test_dscheme_requires_strong_connectivity;
          Alcotest.test_case "storage positive" `Quick test_dscheme_storage_positive;
          Alcotest.test_case "k=1" `Quick test_dscheme_k1;
        ] );
      ("properties", qsuite);
    ]
