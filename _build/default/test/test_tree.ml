(* Tests for the cr_tree library: tree extraction, heavy-path labeled
   routing (Lemma 5), name-independent error-reporting tree routing
   (Lemma 4), and the dense-cover tree routing (Lemma 7). *)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Dijkstra = Cr_graph.Dijkstra
module Generators = Cr_graph.Generators
module Tree = Cr_tree.Tree
module Tree_labels = Cr_tree.Tree_labels
module Ni = Cr_tree.Ni_tree_routing
module Dense = Cr_tree.Dense_tree_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* path graph 0-1-2-3 plus a branch 1-4, unit-ish weights *)
let small_graph () =
  Graph.create ~n:5 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 1.0); (1, 4, 4.0) ]

let walk_cost g walk =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        (match Graph.edge_weight g a b with
        | Some w -> go (acc +. w) rest
        | None -> Alcotest.failf "walk uses non-edge %d-%d" a b)
    | _ -> acc
  in
  go 0.0 walk

(* ------------------------------------------------------------------ *)
(* Tree *)

let test_tree_spanning () =
  let g = small_graph () in
  let t = Tree.spanning g 0 in
  checki "size" 5 (Tree.size t);
  checki "root" 0 (Tree.root t);
  checki "parent of 2" 1 (Tree.parent t 2);
  checki "parent of root" (-1) (Tree.parent t 0);
  Alcotest.(check (array int)) "children of 1" [| 2; 4 |] (Tree.children t 1);
  checkf "depth 3" 4.0 (Tree.depth t 3);
  checki "hop depth 3" 3 (Tree.hop_depth t 3);
  checkf "radius" 5.0 (Tree.radius t);
  checkf "max edge" 4.0 (Tree.max_edge t)

let test_tree_keep_with_relays () =
  let g = small_graph () in
  (* keep only node 3: nodes 1, 2 must be pulled in as relays *)
  let t = Tree.of_sssp g (Dijkstra.run g 0) ~keep:(fun v -> v = 3) in
  checki "size" 4 (Tree.size t);
  checkb "3 member" true (Tree.is_member t 3);
  checkb "2 relay" false (Tree.is_member t 2);
  checkb "root member" true (Tree.is_member t 0);
  checkb "4 absent" false (Tree.mem t 4);
  Alcotest.(check (array int)) "members" [| 0; 3 |] (Tree.members t)

let test_tree_no_kept_raises () =
  let g = small_graph () in
  checkb "raises" true
    (try
       ignore (Tree.of_sssp g (Dijkstra.run g 0) ~keep:(fun _ -> false));
       false
     with Invalid_argument _ -> true)

let test_tree_lca_path () =
  let g = small_graph () in
  let t = Tree.spanning g 0 in
  checki "lca(3,4)" 1 (Tree.lca t 3 4);
  checki "lca(2,3)" 2 (Tree.lca t 2 3);
  checki "lca(x,x)" 3 (Tree.lca t 3 3);
  Alcotest.(check (list int)) "path 3->4" [ 3; 2; 1; 4 ] (Tree.path t 3 4);
  Alcotest.(check (list int)) "path 0->3" [ 0; 1; 2; 3 ] (Tree.path t 0 3);
  Alcotest.(check (list int)) "path self" [ 2 ] (Tree.path t 2 2);
  checkf "path length 3->4" 7.0 (Tree.path_length t 3 4)

let test_tree_dfs () =
  let g = small_graph () in
  let t = Tree.spanning g 0 in
  let order = Tree.dfs_order t in
  checki "first is root" 0 order.(0);
  checki "positions" 5 (Array.length order);
  (* subtree of 1 = {1,2,3,4} — contiguous dfs interval of width 4 *)
  let lo, hi = Tree.subtree_interval t 1 in
  checki "interval width" 4 (hi - lo);
  let lo3, hi3 = Tree.subtree_interval t 3 in
  checki "leaf interval" 1 (hi3 - lo3);
  checkb "leaf inside parent" true (lo3 >= lo && hi3 <= hi);
  Array.iteri (fun i v -> checki "dfs_index inverse" i (Tree.dfs_index t v)) order

let test_tree_by_root_distance () =
  let g = small_graph () in
  let t = Tree.spanning g 0 in
  Alcotest.(check (array int)) "order" [| 0; 1; 2; 3; 4 |] (Tree.by_root_distance t)
  (* depths: 0,1,3,4,5 *)

let random_tree_of rng n =
  let g = Generators.random_tree rng ~n in
  Tree.spanning g 0

let test_tree_depth_consistency () =
  let rng = Rng.create 5 in
  let t = random_tree_of rng 200 in
  Array.iter
    (fun v ->
      if v <> Tree.root t then begin
        let p = Tree.parent t v in
        let w = Option.get (Graph.edge_weight (Tree.graph t) p v) in
        checkb "depth recurrence" true (Float.abs (Tree.depth t v -. (Tree.depth t p +. w)) < 1e-9)
      end)
    (Tree.nodes t)

(* ------------------------------------------------------------------ *)
(* Tree_labels *)

let check_labels_route_everything t =
  let tl = Tree_labels.build t in
  let nodes = Tree.nodes t in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          let r = Tree_labels.route tl a b in
          let expect = Tree.path t a b in
          Alcotest.(check (list int)) (Printf.sprintf "route %d->%d" a b) expect r)
        nodes)
    nodes

let test_labels_small () = check_labels_route_everything (Tree.spanning (small_graph ()) 0)

let test_labels_star () =
  let edges = List.init 20 (fun i -> (0, i + 1, 1.0 +. float_of_int i)) in
  let g = Graph.create ~n:21 edges in
  check_labels_route_everything (Tree.spanning g 0)

let test_labels_path_graph () =
  let edges = List.init 30 (fun i -> (i, i + 1, 1.0)) in
  let g = Graph.create ~n:31 edges in
  check_labels_route_everything (Tree.spanning g 0)

let test_labels_random_trees () =
  let rng = Rng.create 11 in
  for _ = 1 to 5 do
    let t = random_tree_of rng 60 in
    let tl = Tree_labels.build t in
    let nodes = Tree.nodes t in
    (* sample pairs *)
    for _ = 1 to 200 do
      let a = nodes.(Rng.int rng (Array.length nodes)) in
      let b = nodes.(Rng.int rng (Array.length nodes)) in
      let r = Tree_labels.route tl a b in
      Alcotest.(check (list int)) "matches tree path" (Tree.path t a b) r
    done
  done

let test_labels_bits_reasonable () =
  let rng = Rng.create 13 in
  let t = random_tree_of rng 500 in
  let tl = Tree_labels.build t in
  let lg = 9 (* ceil log2 500 *) in
  Array.iter
    (fun v ->
      let bits = Tree_labels.label_bits (Tree_labels.label tl v) in
      (* O(log^2 m) with a generous constant *)
      checkb "label bits polylog" true (bits <= 4 * lg * lg))
    (Tree.nodes t)

let test_labels_next_hop_none_at_dest () =
  let t = Tree.spanning (small_graph ()) 0 in
  let tl = Tree_labels.build t in
  checkb "self" true (Tree_labels.next_hop tl 3 (Tree_labels.label tl 3) = None);
  checkb "equal labels" true
    (Tree_labels.equal_label (Tree_labels.label tl 2) (Tree_labels.label tl 2))

(* ------------------------------------------------------------------ *)
(* Ni_tree_routing (Lemma 4) *)

let build_ni ?(k = 3) ?(seed = 1) g root =
  let t = Tree.spanning g root in
  (t, Ni.build ~seed ~k ~n_global:(Graph.n g) t)

let test_ni_finds_every_node () =
  let rng = Rng.create 17 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:100) in
  let t, ni = build_ni g 0 in
  Array.iter
    (fun v ->
      let ident = Graph.name_of g v in
      let r = Ni.search ni ~bound:3 ident in
      (match r.Ni.outcome with
      | Ni.Found u -> checki "found right node" v u
      | Ni.Not_found_reported -> Alcotest.failf "node %d not found" v);
      (* walk starts at root, is connected in g *)
      (match r.Ni.walk with
      | first :: _ -> checki "starts at root" (Tree.root t) first
      | [] -> Alcotest.fail "empty walk");
      ignore (walk_cost g r.Ni.walk))
    (Tree.nodes t)

let test_ni_stretch_bound () =
  (* Lemma 4(2a): node in N(r, n^{j/k}) found with stretch <= 2j-1;
     overall bound: stretch <= 2k-1 w.r.t. tree distance from root. *)
  let rng = Rng.create 19 in
  let k = 3 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:150) in
  let t = Tree.spanning g 0 in
  let ni = Ni.build ~seed:2 ~k ~n_global:(Graph.n g) t in
  Array.iter
    (fun v ->
      if v <> Tree.root t then begin
        let ident = Graph.name_of g v in
        let r = Ni.search ni ~bound:k ident in
        let cost = walk_cost g r.Ni.walk in
        let dt = Tree.depth t v in
        let limit = float_of_int ((2 * k) - 1) *. dt in
        checkb
          (Printf.sprintf "stretch bound node %d: cost %.2f limit %.2f" v cost limit)
          true
          (cost <= limit +. 1e-6)
      end)
    (Tree.nodes t)

let test_ni_tighter_bound_per_name_level () =
  (* the refined claim: a node with name length l is found at cost
     <= (2l-1) * max depth of the visited name levels; we check the
     guaranteed_bound function is consistent: bound = name level suffices *)
  let rng = Rng.create 23 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:120) in
  let t, ni = build_ni ~k:4 ~seed:3 g 0 in
  Array.iter
    (fun v ->
      let j = max 1 (Ni.name_digits ni v) in
      let r = Ni.search ni ~bound:j (Graph.name_of g v) in
      match r.Ni.outcome with
      | Ni.Found u -> checki "found at its name level" v u
      | Ni.Not_found_reported -> Alcotest.failf "node %d missed at bound %d" v j)
    (Tree.nodes t)

let test_ni_negative_response_returns_to_root () =
  let rng = Rng.create 29 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:80) in
  let t, ni = build_ni g 0 in
  (* an identifier that is not any node's name *)
  let absent = 1 + Array.fold_left (fun acc v -> max acc (Graph.name_of g v)) 0 (Tree.nodes t) in
  let r = Ni.search ni ~bound:3 absent in
  checkb "not found" true (r.Ni.outcome = Ni.Not_found_reported);
  (match (r.Ni.walk, List.rev r.Ni.walk) with
  | first :: _, last :: _ ->
      checki "starts at root" (Tree.root t) first;
      checki "ends at root" (Tree.root t) last
  | _ -> Alcotest.fail "empty walk")

let test_ni_negative_cost_bound () =
  (* Lemma 4(2b): cost of a negative j-bounded answer
     <= (2j-2) * max{ d(r,v) : v in N(r, n^{(j-1)/k}) }  — we verify with
     the implementation's name levels: visited nodes all have < j digits. *)
  let rng = Rng.create 31 in
  let k = 3 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:100) in
  let t = Tree.spanning g 0 in
  let ni = Ni.build ~seed:4 ~k ~n_global:(Graph.n g) t in
  let absent = 999_999_999 in
  for j = 1 to k do
    let r = Ni.search ni ~bound:j absent in
    if r.Ni.outcome = Ni.Not_found_reported then begin
      let max_depth_vj =
        Array.fold_left
          (fun acc v -> if Ni.name_digits ni v <= max 0 (j - 1) then max acc (Tree.depth t v) else acc)
          0.0 (Tree.nodes t)
      in
      let cost = walk_cost g r.Ni.walk in
      let limit = float_of_int (max 1 ((2 * j) - 2)) *. max_depth_vj in
      checkb
        (Printf.sprintf "negative cost j=%d: %.2f <= %.2f" j cost limit)
        true
        (cost <= limit +. 1e-6)
    end
  done

let test_ni_bounded_search_semantics () =
  (* with bound 1, only nodes the root knows directly can be found *)
  let rng = Rng.create 37 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:200) in
  let t, ni = build_ni ~k:3 ~seed:5 g 0 in
  let found_somewhere = ref 0 and missed = ref 0 in
  Array.iter
    (fun v ->
      let r = Ni.search ni ~bound:1 (Graph.name_of g v) in
      match r.Ni.outcome with
      | Ni.Found u -> checki "right node" v u; incr found_somewhere
      | Ni.Not_found_reported -> incr missed)
    (Tree.nodes t);
  checkb "bound-1 finds some (directory of root)" true (!found_somewhere > 0);
  checkb "bound-1 misses some (tree larger than root dir)" true (!missed > 0)

let test_ni_guaranteed_bound () =
  let rng = Rng.create 41 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:150) in
  let t, ni = build_ni ~k:4 ~seed:6 g 0 in
  let nodes = Tree.nodes t in
  let b = Ni.guaranteed_bound ni nodes in
  checkb "bound within k" true (b >= 1 && b <= 4);
  (* a search with that bound finds every node *)
  Array.iter
    (fun v ->
      let r = Ni.search ni ~bound:b (Graph.name_of g v) in
      checkb "found" true (match r.Ni.outcome with Ni.Found u -> u = v | _ -> false))
    nodes;
  (* absent node yields k *)
  checki "absent -> k" 4 (Ni.guaranteed_bound ni [| Graph.n g + 1 |])
  [@warning "-20"]

let test_ni_names_are_well_formed () =
  let rng = Rng.create 43 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:90) in
  let t, ni = build_ni ~k:3 ~seed:7 g 0 in
  let root = Tree.root t in
  checki "root has empty name" 0 (Array.length (Ni.name_of ni root));
  let sigma = Ni.sigma ni in
  let seen = Hashtbl.create 90 in
  Array.iter
    (fun v ->
      let nm = Ni.name_of ni v in
      checki "digits consistent" (Array.length nm) (Ni.name_digits ni v);
      Array.iter (fun d -> checkb "digit range" true (d >= 0 && d < sigma)) nm;
      let key = Array.to_list nm in
      checkb "names distinct" false (Hashtbl.mem seen key);
      Hashtbl.replace seen key ())
    (Tree.nodes t)

let test_ni_names_ordered_by_distance () =
  (* closer nodes get shorter (or equal-length) names *)
  let rng = Rng.create 47 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:120) in
  let t, ni = build_ni ~k:3 ~seed:8 g 0 in
  Array.iter
    (fun v ->
      Array.iter
        (fun u ->
          if Tree.depth t v < Tree.depth t u then
            checkb "shorter name for closer" true (Ni.name_digits ni v <= Ni.name_digits ni u))
        (Tree.nodes t))
    (Tree.nodes t)

let test_ni_storage_positive_and_bounded () =
  let rng = Rng.create 53 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:200) in
  let t, ni = build_ni ~k:3 ~seed:9 g 0 in
  let n = Graph.n g in
  let sigma = Ni.sigma ni in
  let lg = Cr_util.Bits.bits_for n in
  (* generous version of O(k n^{1/k} log^2 n) *)
  let per_node_limit = 64 * 3 * sigma * lg * lg in
  Array.iter
    (fun v ->
      let bits = Ni.node_storage_bits ni v in
      checkb "positive" true (bits > 0);
      checkb
        (Printf.sprintf "bounded: %d <= %d" bits per_node_limit)
        true (bits <= per_node_limit))
    (Tree.nodes t);
  checkb "total consistent" true (Ni.total_storage_bits ni > 0)

let test_ni_on_spt_of_general_graph () =
  (* Lemma 4 applies to any tree; use an SPT of a weighted graph and
     adversarial names *)
  let rng = Rng.create 59 in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n:150 ~avg_degree:4.0) in
  let t = Tree.spanning g 3 in
  let ni = Ni.build ~seed:10 ~k:3 ~n_global:(Graph.n g) t in
  Array.iter
    (fun v ->
      let r = Ni.search ni ~bound:3 (Graph.name_of g v) in
      checkb "found" true (match r.Ni.outcome with Ni.Found u -> u = v | _ -> false))
    (Tree.nodes t)

let test_ni_k1 () =
  (* k = 1: one-digit names, directory-only routing *)
  let rng = Rng.create 61 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:30) in
  let t, ni = build_ni ~k:1 ~seed:11 g 0 in
  Array.iter
    (fun v ->
      let r = Ni.search ni ~bound:1 (Graph.name_of g v) in
      checkb "found with k=1" true (match r.Ni.outcome with Ni.Found u -> u = v | _ -> false))
    (Tree.nodes t)

let test_ni_prefix_load_witness () =
  let rng = Rng.create 67 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:100) in
  let _, ni = build_ni ~k:3 ~seed:12 g 0 in
  checkb "load bounded by capacity" true (Ni.max_prefix_load ni <= Ni.directory_capacity ni)

(* ------------------------------------------------------------------ *)
(* Dense_tree_routing (Lemma 7) *)

let test_dense_finds_all_members () =
  let rng = Rng.create 71 in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n:120 ~avg_degree:4.0) in
  let t = Tree.spanning g 0 in
  let d = Dense.build t in
  Array.iter
    (fun v ->
      let r = Dense.search d (Graph.name_of g v) in
      (match r.Dense.outcome with
      | Dense.Found u -> checki "right node" v u
      | Dense.Not_found_reported -> Alcotest.failf "member %d missed" v);
      ignore (walk_cost g r.Dense.walk))
    (Tree.nodes t)

let test_dense_cost_bound () =
  let rng = Rng.create 73 in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n:150 ~avg_degree:4.0) in
  let t = Tree.spanning g 0 in
  let d = Dense.build t in
  let bound = Dense.cost_bound d in
  Array.iter
    (fun v ->
      let r = Dense.search d (Graph.name_of g v) in
      let cost = walk_cost g r.Dense.walk in
      checkb (Printf.sprintf "cost %.2f <= %.2f" cost bound) true (cost <= bound +. 1e-6))
    (Tree.nodes t)

let test_dense_absent_roundtrip () =
  let rng = Rng.create 79 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:60) in
  let t = Tree.spanning g 0 in
  let d = Dense.build t in
  let r = Dense.search d 123_456_789 in
  checkb "not found" true (r.Dense.outcome = Dense.Not_found_reported);
  (match (r.Dense.walk, List.rev r.Dense.walk) with
  | first :: _, last :: _ ->
      checki "starts at root" 0 first;
      checki "ends at root" 0 last
  | _ -> Alcotest.fail "empty walk");
  let cost = walk_cost g r.Dense.walk in
  checkb "failure cost bounded" true (cost <= Dense.cost_bound d +. 1e-6)

let test_dense_relays_not_searchable () =
  let g = small_graph () in
  (* keep only node 3: nodes 1,2 are relays *)
  let t = Tree.of_sssp g (Dijkstra.run g 0) ~keep:(fun v -> v = 3) in
  let d = Dense.build t in
  let r3 = Dense.search d (Graph.name_of g 3) in
  checkb "member found" true (match r3.Dense.outcome with Dense.Found u -> u = 3 | _ -> false);
  let r2 = Dense.search d (Graph.name_of g 2) in
  checkb "relay not in directory" true (r2.Dense.outcome = Dense.Not_found_reported)

let test_dense_storage_positive () =
  let rng = Rng.create 83 in
  let g = Graph.relabel rng (Generators.random_tree rng ~n:80) in
  let t = Tree.spanning g 0 in
  let d = Dense.build t in
  Array.iter (fun v -> checkb "positive" true (Dense.node_storage_bits d v > 0)) (Tree.nodes t);
  checkb "total" true (Dense.total_storage_bits d > 0)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let tree_gen =
  QCheck.Gen.(
    map2
      (fun seed n ->
        let rng = Rng.create seed in
        let g = Graph.relabel rng (Generators.random_tree rng ~n:(n + 2)) in
        Tree.spanning g 0)
      (int_range 0 10_000) (int_range 3 80))

let arb_tree =
  QCheck.make ~print:(fun t -> Printf.sprintf "<tree m=%d>" (Tree.size t)) tree_gen

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"labeled route equals tree path" ~count:40 arb_tree (fun t ->
        let tl = Tree_labels.build t in
        let nodes = Tree.nodes t in
        let rng = Rng.create 1 in
        let ok = ref true in
        for _ = 1 to 30 do
          let a = nodes.(Rng.int rng (Array.length nodes)) in
          let b = nodes.(Rng.int rng (Array.length nodes)) in
          if Tree_labels.route tl a b <> Tree.path t a b then ok := false
        done;
        !ok);
    Test.make ~name:"path endpoints and edge validity" ~count:40 arb_tree (fun t ->
        let nodes = Tree.nodes t in
        let g = Tree.graph t in
        let rng = Rng.create 2 in
        let ok = ref true in
        for _ = 1 to 30 do
          let a = nodes.(Rng.int rng (Array.length nodes)) in
          let b = nodes.(Rng.int rng (Array.length nodes)) in
          match Tree.path t a b with
          | [] -> ok := false
          | first :: _ as p ->
              if first <> a then ok := false;
              (match List.rev p with x :: _ -> if x <> b then ok := false | [] -> ok := false);
              let rec adj = function
                | x :: (y :: _ as rest) ->
                    if not (Graph.has_edge g x y) then ok := false;
                    adj rest
                | _ -> ()
              in
              adj p
        done;
        !ok);
    Test.make ~name:"path_length = sum of path edges" ~count:40 arb_tree (fun t ->
        let nodes = Tree.nodes t in
        let g = Tree.graph t in
        let rng = Rng.create 3 in
        let ok = ref true in
        for _ = 1 to 20 do
          let a = nodes.(Rng.int rng (Array.length nodes)) in
          let b = nodes.(Rng.int rng (Array.length nodes)) in
          let p = Tree.path t a b in
          let rec cost acc = function
            | x :: (y :: _ as rest) -> cost (acc +. Option.get (Graph.edge_weight g x y)) rest
            | _ -> acc
          in
          if Float.abs (cost 0.0 p -. Tree.path_length t a b) > 1e-6 then ok := false
        done;
        !ok);
    Test.make ~name:"ni search finds every member" ~count:15 arb_tree (fun t ->
        let g = Tree.graph t in
        let ni = Ni.build ~k:3 ~n_global:(Graph.n g) t in
        Array.for_all
          (fun v ->
            match (Ni.search ni ~bound:3 (Graph.name_of g v)).Ni.outcome with
            | Ni.Found u -> u = v
            | Ni.Not_found_reported -> false)
          (Tree.nodes t));
    Test.make ~name:"dense search finds every member within bound" ~count:15 arb_tree
      (fun t ->
        let g = Tree.graph t in
        let d = Dense.build t in
        Array.for_all
          (fun v ->
            let r = Dense.search d (Graph.name_of g v) in
            match r.Dense.outcome with
            | Dense.Found u ->
                u = v && walk_cost g r.Dense.walk <= Dense.cost_bound d +. 1e-6
            | Dense.Not_found_reported -> false)
          (Tree.nodes t));
    Test.make ~name:"dfs intervals nest correctly" ~count:30 arb_tree (fun t ->
        Array.for_all
          (fun v ->
            let lo, hi = Tree.subtree_interval t v in
            Array.for_all
              (fun c ->
                let clo, chi = Tree.subtree_interval t c in
                clo > lo && chi <= hi)
              (Tree.children t v)
            && hi - lo >= 1)
          (Tree.nodes t));
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "tree"
    [
      ( "tree",
        [
          Alcotest.test_case "spanning" `Quick test_tree_spanning;
          Alcotest.test_case "keep with relays" `Quick test_tree_keep_with_relays;
          Alcotest.test_case "no kept raises" `Quick test_tree_no_kept_raises;
          Alcotest.test_case "lca and path" `Quick test_tree_lca_path;
          Alcotest.test_case "dfs" `Quick test_tree_dfs;
          Alcotest.test_case "by root distance" `Quick test_tree_by_root_distance;
          Alcotest.test_case "depth consistency" `Quick test_tree_depth_consistency;
        ] );
      ( "tree_labels",
        [
          Alcotest.test_case "small" `Quick test_labels_small;
          Alcotest.test_case "star" `Quick test_labels_star;
          Alcotest.test_case "path graph" `Quick test_labels_path_graph;
          Alcotest.test_case "random trees" `Quick test_labels_random_trees;
          Alcotest.test_case "bits reasonable" `Quick test_labels_bits_reasonable;
          Alcotest.test_case "next_hop at dest" `Quick test_labels_next_hop_none_at_dest;
        ] );
      ( "ni_tree_routing",
        [
          Alcotest.test_case "finds every node" `Quick test_ni_finds_every_node;
          Alcotest.test_case "stretch bound 2k-1" `Quick test_ni_stretch_bound;
          Alcotest.test_case "found at name level" `Quick test_ni_tighter_bound_per_name_level;
          Alcotest.test_case "negative returns to root" `Quick test_ni_negative_response_returns_to_root;
          Alcotest.test_case "negative cost bound" `Quick test_ni_negative_cost_bound;
          Alcotest.test_case "bounded search semantics" `Quick test_ni_bounded_search_semantics;
          Alcotest.test_case "guaranteed bound" `Quick test_ni_guaranteed_bound;
          Alcotest.test_case "names well formed" `Quick test_ni_names_are_well_formed;
          Alcotest.test_case "names ordered by distance" `Quick test_ni_names_ordered_by_distance;
          Alcotest.test_case "storage bounded" `Quick test_ni_storage_positive_and_bounded;
          Alcotest.test_case "on SPT of general graph" `Quick test_ni_on_spt_of_general_graph;
          Alcotest.test_case "k=1" `Quick test_ni_k1;
          Alcotest.test_case "prefix load witness" `Quick test_ni_prefix_load_witness;
        ] );
      ( "dense_tree_routing",
        [
          Alcotest.test_case "finds all members" `Quick test_dense_finds_all_members;
          Alcotest.test_case "cost bound" `Quick test_dense_cost_bound;
          Alcotest.test_case "absent roundtrip" `Quick test_dense_absent_roundtrip;
          Alcotest.test_case "relays not searchable" `Quick test_dense_relays_not_searchable;
          Alcotest.test_case "storage positive" `Quick test_dense_storage_positive;
        ] );
      ("properties", qsuite);
    ]
