(* Tests for the sparse-cover construction (Lemma 6) and the landmark
   hierarchy (§2.3, Claims 1-2). *)

module Rng = Cr_util.Rng
module Bits = Cr_util.Bits
module Graph = Cr_graph.Graph
module Dijkstra = Cr_graph.Dijkstra
module Ball = Cr_graph.Ball
module Generators = Cr_graph.Generators
module Tree = Cr_tree.Tree
module Cover = Cr_cover.Sparse_cover
module Landmarks = Cr_landmark.Landmarks

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Sparse_cover: the four Lemma 6 properties *)

let lemma6_properties name g ~k ~rho =
  let cover = Cover.build ~k ~rho g in
  (* 1. Cover *)
  checkb (name ^ ": cover property") true (Cover.check_cover cover);
  (* 2. Sparse (empirical vs paper bound 2k n^{1/k}) *)
  let n = Graph.n g in
  let kappa = Bits.ceil_pow (float_of_int n) (1.0 /. float_of_int k) in
  let bound = 2 * k * kappa in
  let overlap = Cover.max_overlap cover in
  checkb
    (Printf.sprintf "%s: sparsity %d <= %d" name overlap bound)
    true (overlap <= bound);
  (* 3. Small radius: rad <= (2k+1) rho guaranteed by construction
     (the paper's refined constant is (2k-1) rho; T5 reports measured) *)
  let rad_bound = float_of_int ((2 * k) + 1) *. rho in
  checkb
    (Printf.sprintf "%s: radius %.3f <= %.3f" name (Cover.max_radius cover) rad_bound)
    true
    (Cover.max_radius cover <= rad_bound +. 1e-9);
  (* 4. Small edges: maxE <= 2 rho *)
  checkb (name ^ ": max tree edge <= 2rho") true
    (Cover.max_tree_edge cover <= (2.0 *. rho) +. 1e-9);
  cover

let test_cover_er () =
  let rng = Rng.create 3 in
  let g = Generators.erdos_renyi rng ~n:150 ~avg_degree:4.0 in
  ignore (lemma6_properties "er/k2" g ~k:2 ~rho:2.0);
  ignore (lemma6_properties "er/k3" g ~k:3 ~rho:4.0)

let test_cover_grid () =
  let g = Generators.grid ~rows:10 ~cols:12 in
  ignore (lemma6_properties "grid/k2" g ~k:2 ~rho:3.0);
  ignore (lemma6_properties "grid/k3" g ~k:3 ~rho:1.0)

let test_cover_geometric () =
  let rng = Rng.create 7 in
  let g = Generators.random_geometric rng ~n:120 ~radius:0.25 in
  ignore (lemma6_properties "geo/k3" g ~k:3 ~rho:2.0)

let test_cover_tree_graph () =
  let rng = Rng.create 11 in
  let g = Generators.random_tree rng ~n:100 in
  ignore (lemma6_properties "tree/k2" g ~k:2 ~rho:2.5)

let test_cover_small_rho () =
  (* rho below min edge weight: balls are singletons, clusters tiny *)
  let g = Generators.grid ~rows:6 ~cols:6 in
  let cover = lemma6_properties "grid/tiny-rho" g ~k:2 ~rho:0.5 in
  checki "each ball singleton -> each node its own home" 36 (Array.length (Cover.clusters cover))

let test_cover_huge_rho () =
  (* rho beyond the diameter: one cluster covers everything *)
  let g = Generators.grid ~rows:5 ~cols:5 in
  let cover = Cover.build ~k:3 ~rho:100.0 g in
  checki "single cluster" 1 (Array.length (Cover.clusters cover));
  checkb "cover" true (Cover.check_cover cover)

let test_cover_allowed_subgraph () =
  (* restrict to even nodes of a ring: cover only sees the allowed part *)
  let rng = Rng.create 13 in
  let g = Generators.ring_with_chords rng ~n:40 ~chords:10 in
  let allowed v = v < 20 in
  let cover = Cover.build ~allowed ~k:2 ~rho:2.0 g in
  Array.iter
    (fun (c : Cover.cluster) ->
      Array.iter (fun v -> checkb "member allowed" true (allowed v)) c.Cover.members)
    (Cover.clusters cover);
  checkb "cover on subgraph" true (Cover.check_cover cover);
  (* home of a disallowed node raises *)
  checkb "home of disallowed raises" true
    (try ignore (Cover.home cover 25); false with Invalid_argument _ -> true)

let test_cover_home_contains_ball () =
  let rng = Rng.create 17 in
  let g = Generators.erdos_renyi rng ~n:100 ~avg_degree:4.0 in
  let rho = 2.0 in
  let cover = Cover.build ~k:3 ~rho g in
  for u = 0 to Graph.n g - 1 do
    let c = (Cover.clusters cover).(Cover.home cover u) in
    let members = Hashtbl.create 16 in
    Array.iter (fun x -> Hashtbl.replace members x ()) c.Cover.members;
    let ball = Ball.of_dijkstra (Dijkstra.run_bounded g u rho) in
    Array.iter
      (fun x -> checkb "ball member in home cluster" true (Hashtbl.mem members x))
      (Ball.ball ball rho)
  done

let test_cover_trees_are_rooted_at_centers () =
  let rng = Rng.create 19 in
  let g = Generators.erdos_renyi rng ~n:80 ~avg_degree:3.5 in
  let cover = Cover.build ~k:2 ~rho:3.0 g in
  Array.iter
    (fun (c : Cover.cluster) ->
      checki "root is center" c.Cover.center (Tree.root c.Cover.tree);
      (* tree spans exactly the members *)
      checki "tree spans members" (Array.length c.Cover.members) (Tree.size c.Cover.tree);
      Array.iter (fun v -> checkb "member in tree" true (Tree.mem c.Cover.tree v)) c.Cover.members)
    (Cover.clusters cover)

let test_cover_clusters_of () =
  let g = Generators.grid ~rows:6 ~cols:6 in
  let cover = Cover.build ~k:2 ~rho:2.0 g in
  for v = 0 to 35 do
    let cs = Cover.clusters_of cover v in
    checkb "appears in home" true (List.mem (Cover.home cover v) cs);
    List.iter
      (fun ci ->
        let c = (Cover.clusters cover).(ci) in
        checkb "containment consistent" true (Array.exists (fun x -> x = v) c.Cover.members))
      cs
  done

let test_cover_invalid_args () =
  let g = Generators.grid ~rows:3 ~cols:3 in
  checkb "k=0 rejected" true
    (try ignore (Cover.build ~k:0 ~rho:1.0 g); false with Invalid_argument _ -> true);
  checkb "rho=0 rejected" true
    (try ignore (Cover.build ~k:2 ~rho:0.0 g); false with Invalid_argument _ -> true)

let test_cover_disconnected_graph () =
  let g = Graph.create ~n:6 [ (0, 1, 1.0); (1, 2, 1.0); (3, 4, 1.0); (4, 5, 1.0) ] in
  let cover = Cover.build ~k:2 ~rho:1.5 g in
  checkb "cover across components" true (Cover.check_cover cover);
  (* no cluster mixes components *)
  Array.iter
    (fun (c : Cover.cluster) ->
      let sides = Array.map (fun v -> v < 3) c.Cover.members in
      let all_same = Array.for_all (fun s -> s = sides.(0)) sides in
      checkb "single component per cluster" true all_same)
    (Cover.clusters cover)

(* ------------------------------------------------------------------ *)
(* Landmarks *)

let test_landmarks_structure () =
  let lm = Landmarks.build ~seed:1 ~n:500 ~k:3 in
  checki "n" 500 (Landmarks.n lm);
  checki "k" 3 (Landmarks.k lm);
  (* C_0 = V *)
  checki "C0 is everything" 500 (Landmarks.level_size lm 0);
  (* ranks within range *)
  for v = 0 to 499 do
    let r = Landmarks.rank lm v in
    checkb "rank range" true (r >= 0 && r <= 2)
  done;
  (* levels nested *)
  for j = 1 to 2 do
    checkb "nested" true (Landmarks.level_size lm j <= Landmarks.level_size lm (j - 1));
    Array.iter
      (fun v -> checkb "level j implies level j-1" true (Landmarks.in_level lm v (j - 1)))
      (Landmarks.level lm j)
  done

let test_landmarks_deterministic () =
  let a = Landmarks.build ~seed:42 ~n:300 ~k:4 in
  let b = Landmarks.build ~seed:42 ~n:300 ~k:4 in
  for v = 0 to 299 do
    checki "same ranks" (Landmarks.rank a v) (Landmarks.rank b v)
  done;
  let c = Landmarks.build ~seed:43 ~n:300 ~k:4 in
  let diff = ref 0 in
  for v = 0 to 299 do
    if Landmarks.rank a v <> Landmarks.rank c v then incr diff
  done;
  checkb "different seed differs" true (!diff > 0)

let test_landmarks_sampling_rate () =
  (* |C_1| should be about n * (n/ln n)^{-1/k} *)
  let n = 4000 and k = 2 in
  let lm = Landmarks.build ~seed:7 ~n ~k in
  let p = (float_of_int n /. Float.log (float_of_int n)) ** (-1.0 /. float_of_int k) in
  let expected = float_of_int n *. p in
  let got = float_of_int (Landmarks.level_size lm 1) in
  checkb
    (Printf.sprintf "C1 size %.0f within 3x of %.0f" got expected)
    true
    (got > expected /. 3.0 && got < expected *. 3.0)

let test_landmarks_k1 () =
  (* k = 1: only C_0 exists; everything rank 0 *)
  let lm = Landmarks.build ~seed:3 ~n:50 ~k:1 in
  for v = 0 to 49 do
    checki "rank 0" 0 (Landmarks.rank lm v)
  done;
  checki "C0" 50 (Landmarks.level_size lm 0)

let test_landmarks_nearby () =
  let rng = Rng.create 23 in
  let g = Generators.erdos_renyi rng ~n:200 ~avg_degree:4.0 in
  let lm = Landmarks.build ~seed:5 ~n:200 ~k:3 in
  let ball = Ball.of_dijkstra (Dijkstra.run g 0) in
  let s = Landmarks.nearby lm ball ~level:1 ~cap:10 in
  checkb "at most cap" true (Array.length s <= 10);
  Array.iter (fun v -> checkb "all level 1" true (Landmarks.in_level lm v 1)) s;
  (* sorted by distance *)
  let ok = ref true in
  for i = 0 to Array.length s - 2 do
    if Ball.distance ball s.(i) > Ball.distance ball s.(i + 1) then ok := false
  done;
  checkb "sorted by distance" true !ok;
  (* cap larger than level: returns whole level *)
  let all1 = Landmarks.nearby lm ball ~level:1 ~cap:10_000 in
  checki "whole level" (Landmarks.level_size lm 1) (Array.length all1)

let test_landmarks_center_in () =
  let rng = Rng.create 29 in
  let g = Generators.erdos_renyi rng ~n:150 ~avg_degree:4.0 in
  let lm = Landmarks.build ~seed:9 ~n:150 ~k:3 in
  let ball = Ball.of_dijkstra (Dijkstra.run g 0) in
  (match Landmarks.center_in lm ball ~radius:5.0 with
  | None -> Alcotest.fail "ball around 0 of radius 5 cannot be empty"
  | Some c ->
      let members = Ball.ball ball 5.0 in
      let m = Landmarks.highest_rank_in lm members in
      checki "center has highest rank" m (Landmarks.rank lm c);
      (* no strictly closer landmark of that rank *)
      Array.iter
        (fun v ->
          if Landmarks.rank lm v >= m then
            checkb "closest" true (Ball.distance ball c <= Ball.distance ball v))
        members);
  checkb "empty ball" true (Landmarks.center_in lm ball ~radius:(-1.0) = None)

let test_landmarks_highest_rank_in () =
  let lm = Landmarks.build ~seed:11 ~n:100 ~k:4 in
  checki "empty" (-1) (Landmarks.highest_rank_in lm [||]);
  let all = Array.init 100 (fun i -> i) in
  let m = Landmarks.highest_rank_in lm all in
  checkb "some rank" true (m >= 0 && m <= 3)

let test_claims_on_random_balls () =
  (* Claims 1 and 2, evaluated on every ball B(u, 2^i) of a graph *)
  let rng = Rng.create 31 in
  let g = Generators.erdos_renyi rng ~n:400 ~avg_degree:5.0 in
  let k = 3 in
  let lm = Landmarks.build ~seed:13 ~n:400 ~k in
  let violations1 = ref 0 and violations2 = ref 0 and checked = ref 0 in
  for u = 0 to 99 do
    let ball = Ball.of_dijkstra (Dijkstra.run g u) in
    for i = 0 to 6 do
      let members = Ball.ball ball (2.0 ** float_of_int i) in
      for j = 0 to k - 1 do
        incr checked;
        if not (Landmarks.check_claim1 lm members j) then incr violations1;
        if not (Landmarks.check_claim2 lm members j) then incr violations2
      done
    done
  done;
  checkb "claims evaluated" true (!checked > 0);
  checki "claim 1 violations" 0 !violations1;
  checki "claim 2 violations" 0 !violations2

let test_claims_thresholds_monotone () =
  let lm = Landmarks.build ~seed:17 ~n:1000 ~k:4 in
  for j = 0 to 2 do
    checkb "claim1 threshold grows in j" true
      (Landmarks.claim1_threshold lm j <= Landmarks.claim1_threshold lm (j + 1))
  done;
  checkb "claim2 count limit positive" true (Landmarks.claim2_count_limit lm > 0.0)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"cover holds on random graphs" ~count:15
      (pair (int_range 0 1000) (int_range 20 80))
      (fun (seed, n) ->
        let rng = Rng.create seed in
        let g = Generators.erdos_renyi rng ~n ~avg_degree:3.0 in
        let cover = Cover.build ~k:2 ~rho:2.0 g in
        Cover.check_cover cover
        && Cover.max_radius cover <= (5.0 *. 2.0) +. 1e-9
        && Cover.max_tree_edge cover <= 4.0 +. 1e-9);
    Test.make ~name:"every node has a home containing it" ~count:15
      (pair (int_range 0 1000) (int_range 15 60))
      (fun (seed, n) ->
        let rng = Rng.create seed in
        let g = Generators.erdos_renyi rng ~n ~avg_degree:3.0 in
        let cover = Cover.build ~k:3 ~rho:1.5 g in
        let ok = ref true in
        for v = 0 to n - 1 do
          let c = (Cover.clusters cover).(Cover.home cover v) in
          if not (Array.exists (fun x -> x = v) c.Cover.members) then ok := false
        done;
        !ok);
    Test.make ~name:"landmark ranks bounded and nested" ~count:30
      (pair (int_range 0 1000) (int_range 2 6))
      (fun (seed, k) ->
        let lm = Landmarks.build ~seed ~n:200 ~k in
        let ok = ref true in
        for v = 0 to 199 do
          let r = Landmarks.rank lm v in
          if r < 0 || r > k - 1 then ok := false;
          for j = 0 to k do
            let inj = Landmarks.in_level lm v j in
            if j = 0 && not inj then ok := false;
            if j = k && inj then ok := false;
            if j >= 1 && j < k && inj <> (r >= j) then ok := false
          done
        done;
        !ok);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cover"
    [
      ( "sparse_cover",
        [
          Alcotest.test_case "lemma6 on erdos-renyi" `Quick test_cover_er;
          Alcotest.test_case "lemma6 on grid" `Quick test_cover_grid;
          Alcotest.test_case "lemma6 on geometric" `Quick test_cover_geometric;
          Alcotest.test_case "lemma6 on tree graph" `Quick test_cover_tree_graph;
          Alcotest.test_case "tiny rho" `Quick test_cover_small_rho;
          Alcotest.test_case "huge rho" `Quick test_cover_huge_rho;
          Alcotest.test_case "allowed subgraph" `Quick test_cover_allowed_subgraph;
          Alcotest.test_case "home contains ball" `Quick test_cover_home_contains_ball;
          Alcotest.test_case "trees rooted at centers" `Quick test_cover_trees_are_rooted_at_centers;
          Alcotest.test_case "clusters_of consistent" `Quick test_cover_clusters_of;
          Alcotest.test_case "invalid args" `Quick test_cover_invalid_args;
          Alcotest.test_case "disconnected graph" `Quick test_cover_disconnected_graph;
        ] );
      ( "landmarks",
        [
          Alcotest.test_case "structure" `Quick test_landmarks_structure;
          Alcotest.test_case "deterministic" `Quick test_landmarks_deterministic;
          Alcotest.test_case "sampling rate" `Quick test_landmarks_sampling_rate;
          Alcotest.test_case "k=1" `Quick test_landmarks_k1;
          Alcotest.test_case "nearby" `Quick test_landmarks_nearby;
          Alcotest.test_case "center_in" `Quick test_landmarks_center_in;
          Alcotest.test_case "highest rank" `Quick test_landmarks_highest_rank_in;
          Alcotest.test_case "claims 1 and 2" `Quick test_claims_on_random_balls;
          Alcotest.test_case "claim thresholds" `Quick test_claims_thresholds_monotone;
        ] );
      ("properties", qsuite);
    ]
