test/test_graph.ml: Alcotest Array Cr_graph Cr_util Filename Float Fun Hashtbl List Option Printf QCheck QCheck_alcotest Sys Test
