test/test_util.ml: Alcotest Array Cr_util Float Gen Hashtbl List Printf QCheck QCheck_alcotest String Test
