test/test_digraph.ml: Alcotest Array Cr_digraph Cr_graph Cr_util Float List Option Printf QCheck QCheck_alcotest Test
