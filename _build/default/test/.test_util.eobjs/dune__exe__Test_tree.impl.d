test/test_tree.ml: Alcotest Array Cr_graph Cr_tree Cr_util Float Hashtbl List Option Printf QCheck QCheck_alcotest Test
