test/test_cover.ml: Alcotest Array Cr_cover Cr_graph Cr_landmark Cr_tree Cr_util Float Hashtbl List Printf QCheck QCheck_alcotest Test
