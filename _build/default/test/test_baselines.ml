(* Tests for the comparison schemes: full tables, single tree,
   Awerbuch-Peleg hierarchical covers, ABLP-style exponential scheme,
   Thorup-Zwick labeled routing — plus cross-scheme sanity on shared
   workloads and the Experiment harness. *)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let prepared ?(n = 100) ?(avg = 4.0) seed =
  let rng = Rng.create seed in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n ~avg_degree:avg) in
  Apsp.compute (Graph.normalize g)

let all_pairs_check apsp sch ~expect_stretch_one =
  let n = Graph.n (Apsp.graph apsp) in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if (s * 31 + d) mod 11 = 0 then begin
        let m = Simulator.measure apsp sch s d in
        checkb (Printf.sprintf "%s delivers %d->%d" sch.Scheme.name s d) true m.Simulator.delivered;
        if expect_stretch_one && s <> d then
          checkb "stretch 1" true (m.Simulator.stretch <= 1.0 +. 1e-9)
      end
    done
  done

(* ------------------------------------------------------------------ *)
(* full tables *)

let test_full_tables () =
  let apsp = prepared 3 in
  all_pairs_check apsp (Baseline_full.build apsp) ~expect_stretch_one:true

let test_full_tables_storage () =
  let apsp = prepared ~n:64 5 in
  let sch = Baseline_full.build apsp in
  (* every node pays Omega(n log n): 63 entries x >= 13 bits *)
  for u = 0 to 63 do
    checkb "big tables" true (Storage.node_bits sch.Scheme.storage u >= 63 * 13)
  done

let test_full_tables_disconnected () =
  let g = Graph.create ~n:4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  let apsp = Apsp.compute g in
  let sch = Baseline_full.build apsp in
  let m = sch.Scheme.route 0 2 in
  checkb "disconnected undelivered" true (not m.Scheme.delivered)

(* ------------------------------------------------------------------ *)
(* single tree *)

let test_single_tree_delivers () =
  let apsp = prepared 7 in
  all_pairs_check apsp (Baseline_tree.build apsp) ~expect_stretch_one:false

let test_single_tree_space_tiny () =
  let apsp = prepared ~n:128 11 in
  let full = Baseline_full.build apsp in
  let tree = Baseline_tree.build apsp in
  checkb "tree much smaller than full"
    true
    (Storage.mean_node_bits tree.Scheme.storage < Storage.mean_node_bits full.Scheme.storage /. 10.0)

let test_single_tree_bad_stretch_on_ring () =
  (* on a ring the tree cuts one edge: stretch near n for neighbors *)
  let rng = Rng.create 13 in
  let g = Generators.ring_with_chords rng ~n:40 ~chords:0 in
  let g = Graph.relabel rng g in
  let apsp = Apsp.compute g in
  let sch = Baseline_tree.build apsp in
  let worst = ref 0.0 in
  for s = 0 to 39 do
    let m = Simulator.measure apsp sch s ((s + 1) mod 40) in
    if m.Simulator.stretch > !worst then worst := m.Simulator.stretch
  done;
  checkb (Printf.sprintf "ring worst stretch %.1f >= 10" !worst) true (!worst >= 10.0)

(* ------------------------------------------------------------------ *)
(* Awerbuch-Peleg hierarchical *)

let test_ap_delivers () =
  let apsp = prepared 17 in
  all_pairs_check apsp (Baseline_ap.build ~k:3 apsp) ~expect_stretch_one:false

let test_ap_stretch_bounded () =
  (* O(k d) with the doubling-scale argument; generous constant 16k *)
  let apsp = prepared ~n:80 19 in
  let k = 2 in
  let sch = Baseline_ap.build ~k apsp in
  let rng = Rng.create 1 in
  let pairs = Simulator.sample_pairs rng apsp ~count:200 in
  Array.iter
    (fun (s, d) ->
      let m = Simulator.measure apsp sch s d in
      checkb "delivered" true m.Simulator.delivered;
      checkb
        (Printf.sprintf "stretch %.2f bounded" m.Simulator.stretch)
        true
        (m.Simulator.stretch <= 16.0 *. float_of_int k))
    pairs

let test_ap_storage_grows_with_aspect () =
  (* the non-scale-free signature: a graph with structure at every
     distance scale (the paper's exponential-weights example, §1.3)
     makes per-scale storage grow linearly in log Δ, while AGM06 stays
     flat (the full sweep is experiment T3) *)
  let rng = Rng.create 23 in
  let build base =
    let g = Graph.normalize (Graph.relabel (Rng.copy rng) (Generators.exponential_line ~n:64 ~base)) in
    Apsp.compute g
  in
  let small = build 1.2 and spread = build 8.0 in
  let s_small = Baseline_ap.build ~k:2 small in
  let s_spread = Baseline_ap.build ~k:2 spread in
  checkb "levels grew" true (Baseline_ap.levels_built s_spread > 2 * Baseline_ap.levels_built s_small);
  checkb "storage grew" true
    (Storage.mean_node_bits s_spread.Scheme.storage
    > 1.5 *. Storage.mean_node_bits s_small.Scheme.storage);
  (* while the scale-free scheme's storage stays flat *)
  let a_small = Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:2 ()) small) in
  let a_spread = Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:2 ()) spread) in
  checkb "agm06 flat" true
    (Storage.mean_node_bits a_spread.Scheme.storage
    < 1.5 *. Storage.mean_node_bits a_small.Scheme.storage)

(* ------------------------------------------------------------------ *)
(* ABLP exponential *)

let test_exp_delivers () =
  let apsp = prepared 29 in
  all_pairs_check apsp (Baseline_exp.build ~k:3 apsp) ~expect_stretch_one:false

let test_exp_k_variants () =
  let apsp = prepared ~n:60 31 in
  List.iter
    (fun k ->
      let sch = Baseline_exp.build ~k apsp in
      let rng = Rng.create k in
      let pairs = Simulator.sample_pairs rng apsp ~count:80 in
      Array.iter
        (fun (s, d) ->
          checkb "delivered" true (Simulator.measure apsp sch s d).Simulator.delivered)
        pairs)
    [ 1; 2; 4 ]

let test_exp_space_below_full () =
  let apsp = prepared ~n:128 37 in
  let full = Baseline_full.build apsp in
  let ex = Baseline_exp.build ~k:3 apsp in
  checkb "exp smaller than full tables" true
    (Storage.mean_node_bits ex.Scheme.storage < Storage.mean_node_bits full.Scheme.storage /. 2.0)

let test_exp_disconnected () =
  let g = Graph.create ~n:4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  let apsp = Apsp.compute g in
  let sch = Baseline_exp.build ~k:2 apsp in
  checkb "disconnected undelivered" true (not (sch.Scheme.route 0 3).Scheme.delivered);
  checkb "same component ok" true (sch.Scheme.route 0 1).Scheme.delivered

(* ------------------------------------------------------------------ *)
(* stretch-3 name-independent scheme (AGMNT'04 style) *)

let test_s3_delivers () =
  let apsp = prepared 97 in
  all_pairs_check apsp (Baseline_s3.build apsp) ~expect_stretch_one:false

let test_s3_stretch_small_constant () =
  let apsp = prepared ~n:150 101 in
  let sch = Baseline_s3.build apsp in
  let rng = Rng.create 5 in
  let pairs = Simulator.sample_pairs rng apsp ~count:400 in
  Array.iter
    (fun (s, d) ->
      let m = Simulator.measure apsp sch s d in
      checkb "delivered" true m.Simulator.delivered;
      (* the handshake-free variant stays below 5 in practice *)
      checkb (Printf.sprintf "stretch %.2f small" m.Simulator.stretch) true
        (m.Simulator.stretch <= 5.0 +. 1e-9))
    pairs

let test_s3_space_sublinear () =
  (* Õ(√n): doubling n should far less than double per-node bits of the
     dominant dictionary+vicinity categories (polylog slack allowed) *)
  let a = prepared ~n:128 103 in
  let b = prepared ~n:512 103 in
  let sa = Baseline_s3.build a and sb = Baseline_s3.build b in
  let ga = Storage.mean_node_bits sa.Scheme.storage in
  let gb = Storage.mean_node_bits sb.Scheme.storage in
  (* n grew 4x; sqrt-shape predicts ~2x; allow up to 3.2x for log factors *)
  checkb (Printf.sprintf "sublinear growth %.2fx" (gb /. ga)) true (gb /. ga < 3.2)

let test_s3_name_independent () =
  (* relabeling must not break routing *)
  let rng = Rng.create 107 in
  let g = Graph.relabel rng (Generators.two_tier_isp rng ~core:5 ~access_per_core:10) in
  let apsp = Apsp.compute (Graph.normalize g) in
  let sch = Baseline_s3.build apsp in
  let pairs = Simulator.sample_pairs rng apsp ~count:150 in
  Array.iter
    (fun (s, d) -> checkb "delivered" true (Simulator.measure apsp sch s d).Simulator.delivered)
    pairs

(* ------------------------------------------------------------------ *)
(* Thorup-Zwick labeled *)

let test_tz_delivers () =
  let apsp = prepared 41 in
  all_pairs_check apsp (Baseline_tz.build ~k:3 apsp) ~expect_stretch_one:false

let test_tz_stretch_bound () =
  (* 4k-5 worst case; allow the formal bound exactly *)
  let apsp = prepared ~n:90 43 in
  let k = 3 in
  let sch = Baseline_tz.build ~k apsp in
  let rng = Rng.create 2 in
  let pairs = Simulator.sample_pairs rng apsp ~count:300 in
  Array.iter
    (fun (s, d) ->
      let m = Simulator.measure apsp sch s d in
      checkb "delivered" true m.Simulator.delivered;
      checkb
        (Printf.sprintf "stretch %.2f <= 4k-5+eps" m.Simulator.stretch)
        true
        (m.Simulator.stretch <= float_of_int ((4 * k) - 5) +. 1e-6))
    pairs

let test_tz_k1_is_exact () =
  (* k=1: bunches are everything; routing is shortest path *)
  let apsp = prepared ~n:40 47 in
  let sch = Baseline_tz.build ~k:1 apsp in
  let rng = Rng.create 3 in
  let pairs = Simulator.sample_pairs rng apsp ~count:100 in
  Array.iter
    (fun (s, d) ->
      let m = Simulator.measure apsp sch s d in
      checkb "stretch 1" true (m.Simulator.stretch <= 1.0 +. 1e-9))
    pairs

let test_tz_space_below_full () =
  let apsp = prepared ~n:200 53 in
  let full = Baseline_full.build apsp in
  let tz = Baseline_tz.build ~k:3 apsp in
  checkb "tz smaller" true
    (Storage.mean_node_bits tz.Scheme.storage < Storage.mean_node_bits full.Scheme.storage /. 2.0)

(* ------------------------------------------------------------------ *)
(* cross-scheme comparisons on one workload *)

let test_cross_scheme_ordering () =
  let apsp = prepared ~n:150 59 in
  let pairs = Experiment.default_pairs ~seed:4 apsp ~count:300 in
  let full = Experiment.run_scheme apsp (Baseline_full.build apsp) ~pairs in
  let agm = Experiment.run_scheme apsp (Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ()) apsp)) ~pairs in
  let tree = Experiment.run_scheme apsp (Baseline_tree.build apsp) ~pairs in
  checkf "full is exact" 1.0 full.Experiment.stretch_mean;
  checkb "all delivered" true
    (full.Experiment.delivered = 300 && agm.Experiment.delivered = 300 && tree.Experiment.delivered = 300);
  checkb "full tables biggest" true (full.Experiment.bits_mean > agm.Experiment.bits_mean /. 10.0);
  checkb "tree smallest" true (tree.Experiment.bits_mean < agm.Experiment.bits_mean)

let test_experiment_workloads () =
  List.iter
    (fun w ->
      let g = Experiment.make_graph ~seed:3 w in
      checkb (Experiment.workload_name w ^ " connected") true (Cr_graph.Component.is_connected g);
      checkf (Experiment.workload_name w ^ " normalized") 1.0 (Graph.min_weight g))
    [
      Experiment.Erdos_renyi { n = 60; avg_degree = 4.0 };
      Experiment.Geometric { n = 60; radius = 0.3 };
      Experiment.Grid { rows = 6; cols = 8 };
      Experiment.Ring_chords { n = 50; chords = 10 };
      Experiment.Isp { core = 5; access_per_core = 8 };
      Experiment.Tree_w { n = 50 };
      Experiment.Preferential { n = 60; edges_per_node = 2 };
    ]

let test_experiment_aspect_control () =
  let w = Experiment.Grid { rows = 8; cols = 8 } in
  let g = Experiment.make_graph_with_aspect ~seed:5 ~target_aspect:(2.0 ** 20.0) w in
  let spread = Graph.max_weight g /. Graph.min_weight g in
  checkb "weight spread large" true (spread > 1000.0)

let test_scale_chain_islands_layout () =
  let islands = Generators.scale_chain_islands ~sigma:4 ~levels:3 () in
  checki "count" 4 (Array.length islands);
  let rng = Rng.create 6 in
  let g = Generators.scale_chain rng ~sigma:4 ~levels:3 ~spacing:8.0 in
  let last_start, last_size = islands.(3) in
  checki "total nodes" (last_start + last_size) (Graph.n g);
  (* islands are cliques *)
  Array.iter
    (fun (s, sz) ->
      for a = s to s + sz - 1 do
        for b = a + 1 to s + sz - 1 do
          checkb "clique edge" true (Graph.has_edge g a b)
        done
      done)
    islands

(* ------------------------------------------------------------------ *)
(* header sizes: the paper claims Õ(1)-bit headers *)

let test_header_bits_polylog () =
  let apsp = prepared ~n:200 109 in
  let n = 200 in
  let lg = Cr_util.Bits.bits_for n in
  let limit = 8 * lg * lg in
  List.iter
    (fun sch ->
      checkb (sch.Scheme.name ^ " header positive") true (sch.Scheme.header_bits > 0);
      checkb
        (Printf.sprintf "%s header %d <= %d" sch.Scheme.name sch.Scheme.header_bits limit)
        true
        (sch.Scheme.header_bits <= limit))
    [
      Baseline_full.build apsp;
      Baseline_tree.build apsp;
      Baseline_ap.build ~k:3 apsp;
      Baseline_exp.build ~k:3 apsp;
      Baseline_tz.build ~k:3 apsp;
      Baseline_s3.build apsp;
      Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ()) apsp);
    ]

let test_csv_export () =
  let apsp = prepared ~n:60 113 in
  let pairs = Experiment.default_pairs ~seed:114 apsp ~count:50 in
  let rows =
    [ Experiment.run_scheme apsp (Baseline_full.build apsp) ~pairs;
      Experiment.run_scheme apsp (Baseline_tree.build apsp) ~pairs ]
  in
  let csv = Experiment.rows_to_csv rows in
  let lines = String.split_on_char '\n' (String.trim csv) in
  checki "header + 2 rows" 3 (List.length lines);
  (match lines with
  | header :: _ ->
      checkb "header starts with scheme" true (String.length header > 6 && String.sub header 0 6 = "scheme")
  | [] -> Alcotest.fail "empty csv");
  let path = Filename.temp_file "crt_rows" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Experiment.write_csv rows path;
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      checkb "file written" true (len > 60))

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"all baselines deliver on random graphs" ~count:6
      (pair (int_range 0 300) (int_range 25 60))
      (fun (seed, n) ->
        let apsp = prepared ~n seed in
        let schemes =
          [
            Baseline_full.build apsp;
            Baseline_tree.build apsp;
            Baseline_ap.build ~k:2 apsp;
            Baseline_exp.build ~k:2 apsp;
            Baseline_tz.build ~k:2 apsp;
          ]
        in
        let rng = Rng.create (seed + 7) in
        let pairs = Simulator.sample_pairs rng apsp ~count:30 in
        List.for_all
          (fun sch ->
            Array.for_all
              (fun (s, d) -> (Simulator.measure apsp sch s d).Simulator.delivered)
              pairs)
          schemes);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "baselines"
    [
      ( "full",
        [
          Alcotest.test_case "stretch 1 everywhere" `Quick test_full_tables;
          Alcotest.test_case "storage Omega(n log n)" `Quick test_full_tables_storage;
          Alcotest.test_case "disconnected" `Quick test_full_tables_disconnected;
        ] );
      ( "single_tree",
        [
          Alcotest.test_case "delivers" `Quick test_single_tree_delivers;
          Alcotest.test_case "tiny space" `Quick test_single_tree_space_tiny;
          Alcotest.test_case "bad stretch on ring" `Quick test_single_tree_bad_stretch_on_ring;
        ] );
      ( "awerbuch_peleg",
        [
          Alcotest.test_case "delivers" `Quick test_ap_delivers;
          Alcotest.test_case "stretch bounded" `Quick test_ap_stretch_bounded;
          Alcotest.test_case "storage grows with aspect" `Quick test_ap_storage_grows_with_aspect;
        ] );
      ( "ablp_exp",
        [
          Alcotest.test_case "delivers" `Quick test_exp_delivers;
          Alcotest.test_case "k variants" `Quick test_exp_k_variants;
          Alcotest.test_case "space below full" `Quick test_exp_space_below_full;
          Alcotest.test_case "disconnected" `Quick test_exp_disconnected;
        ] );
      ( "stretch3",
        [
          Alcotest.test_case "delivers" `Quick test_s3_delivers;
          Alcotest.test_case "small constant stretch" `Quick test_s3_stretch_small_constant;
          Alcotest.test_case "space sublinear" `Quick test_s3_space_sublinear;
          Alcotest.test_case "name independent" `Quick test_s3_name_independent;
        ] );
      ( "thorup_zwick",
        [
          Alcotest.test_case "delivers" `Quick test_tz_delivers;
          Alcotest.test_case "stretch 4k-5" `Quick test_tz_stretch_bound;
          Alcotest.test_case "k=1 exact" `Quick test_tz_k1_is_exact;
          Alcotest.test_case "space below full" `Quick test_tz_space_below_full;
        ] );
      ( "cross",
        [
          Alcotest.test_case "header bits polylog" `Quick test_header_bits_polylog;
          Alcotest.test_case "csv export" `Quick test_csv_export;
          Alcotest.test_case "ordering" `Quick test_cross_scheme_ordering;
          Alcotest.test_case "experiment workloads" `Quick test_experiment_workloads;
          Alcotest.test_case "aspect control" `Quick test_experiment_aspect_control;
          Alcotest.test_case "scale chain islands" `Quick test_scale_chain_islands_layout;
        ] );
      ("properties", qsuite);
    ]
