(* The paper's announced extension (§4): routing on strongly connected
   directed graphs via the round-trip metric.

     dune exec examples/directed_demo.exe
*)

module Rng = Cr_util.Rng
module Stats = Cr_util.Stats
module D = Cr_digraph.Digraph
module Dgen = Cr_digraph.Dgen
module Rt = Cr_digraph.Rt
module Dscheme = Cr_digraph.Dscheme
module Dsim = Cr_digraph.Dsim
module Scc = Cr_digraph.Scc
module T = Cr_util.Ascii_table

let () =
  Printf.printf
    "Directed extension (paper §4).  The scheme runs over the round-trip\n\
     metric dRT(u,v) = d(u,v) + d(v,u); every tree becomes an (in, out)\n\
     arborescence pair, so all walks respect arc directions.\n\n";
  let rng = Rng.create 2026 in
  (* an asymmetric road-network-like instance: geometric topology, each
     direction of a road priced differently *)
  let base = Cr_graph.Generators.random_geometric (Rng.copy rng) ~n:200 ~radius:0.14 in
  let g = Dgen.asymmetric_of_graph rng base ~skew:5.0 in
  let g = D.normalize (D.relabel rng g) in
  assert (Scc.is_strongly_connected g);
  let rt = Rt.compute g in
  Printf.printf "digraph: %d nodes, %d arcs, strongly connected; rt-diameter %.1f\n\n"
    (D.n g) (D.m g) (Rt.rt_diameter rt);
  let table =
    T.create ~title:"directed AGM06 adaptation, 1500 random pairs"
      [
        ("k", T.Right); ("delivered", T.Right); ("1-way stretch mean/p99", T.Right);
        ("rt stretch mean/p99", T.Right); ("bits/node mean", T.Right); ("fallback", T.Right);
      ]
  in
  List.iter
    (fun k ->
      let sch = Dscheme.build ~k rt in
      let rng2 = Rng.create 77 in
      let n = D.n g in
      let ones = ref [] and rts = ref [] and delivered = ref 0 and total = ref 0 in
      for _ = 1 to 1500 do
        let s = Rng.int rng2 n and d = Rng.int rng2 n in
        if s <> d then begin
          incr total;
          let m = Dsim.measure rt sch s d in
          if m.Dsim.delivered then begin
            incr delivered;
            ones := m.Dsim.stretch :: !ones;
            rts := m.Dsim.rt_stretch :: !rts
          end
        end
      done;
      let s1 = Stats.summarize (Array.of_list !ones) in
      let s2 = Stats.summarize (Array.of_list !rts) in
      T.add_row table
        [
          string_of_int k;
          Printf.sprintf "%d/%d" !delivered !total;
          Printf.sprintf "%.2f / %.2f" s1.Stats.mean s1.Stats.p99;
          Printf.sprintf "%.2f / %.2f" s2.Stats.mean s2.Stats.p99;
          Printf.sprintf "%.0f" (Dscheme.mean_storage_bits sch);
          string_of_int (Dscheme.stats_fallback sch);
        ])
    [ 2; 3; 4 ];
  T.print table;
  print_newline ();
  Printf.printf
    "Reading: the O(k) guarantee transfers to the round-trip metric (rt\n\
     stretch column); one-way stretch additionally pays the asymmetry of\n\
     the instance, as any directed scheme with sub-linear state must.\n"
