(* Quickstart: build the AGM06 scale-free compact routing scheme on a
   small weighted network, route a few messages, and inspect the
   space/stretch numbers.

     dune exec examples/quickstart.exe
*)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
open Compact_routing

let () =
  (* 1. A weighted network with arbitrary node identifiers.  The scheme
     is name-independent: it must locate nodes by identifiers it does
     not control, so we assign adversarial random names. *)
  let rng = Rng.create 42 in
  let g = Generators.random_geometric rng ~n:150 ~radius:0.16 in
  let g = Graph.normalize (Graph.relabel rng g) in
  Printf.printf "network: %d nodes, %d edges, max degree %d\n" (Graph.n g) (Graph.m g)
    (Graph.max_degree g);

  (* 2. Ground truth (used for construction and for measuring stretch). *)
  let apsp = Apsp.compute g in
  Printf.printf "diameter %.2f, aspect ratio %.2f\n\n" (Apsp.diameter apsp)
    (Apsp.aspect_ratio apsp);

  (* 3. Build the scheme: k trades space for stretch. *)
  let k = 3 in
  let agm = Agm06.build ~params:(Params.scaled ~k ()) apsp in
  let scheme = Agm06.scheme agm in
  Printf.printf "built %s: %d sparse-phase centers, covers at levels [%s]\n" scheme.Scheme.name
    (Agm06.center_count agm)
    (String.concat "; " (List.map string_of_int (Agm06.cover_levels agm)));
  Printf.printf "routing tables: max %s, mean %s per node\n\n"
    (Cr_util.Ascii_table.fmt_bits (Storage.max_node_bits scheme.Scheme.storage))
    (Cr_util.Ascii_table.fmt_bits (int_of_float (Storage.mean_node_bits scheme.Scheme.storage)));

  (* 4. Route some messages.  The destination is addressed purely by its
     network identifier. *)
  List.iter
    (fun (s, d) ->
      let m = Simulator.measure apsp scheme s d in
      Printf.printf "route %3d -> %3d (ident %6d): cost %8.2f  shortest %8.2f  stretch %.2f  hops %d\n"
        s d (Graph.name_of g d) m.Simulator.cost (Apsp.distance apsp s d) m.Simulator.stretch
        m.Simulator.hops)
    [ (0, 149); (17, 3); (42, 99); (140, 7); (60, 61) ];

  (* 5. Aggregate over many random pairs. *)
  let pairs = Experiment.default_pairs ~seed:7 apsp ~count:1000 in
  let agg = Simulator.evaluate apsp scheme pairs in
  Printf.printf "\n%d/%d delivered; stretch mean %.2f  p50 %.2f  p99 %.2f  max %.2f\n"
    agg.Simulator.delivered agg.Simulator.pairs agg.Simulator.stretch_stats.Cr_util.Stats.mean
    agg.Simulator.stretch_stats.Cr_util.Stats.p50 agg.Simulator.stretch_stats.Cr_util.Stats.p99
    agg.Simulator.stretch_stats.Cr_util.Stats.max;
  let st = Agm06.stats agm in
  Printf.printf "deliveries by phase: %s (last = global fallback)\n"
    (String.concat " " (Array.to_list (Array.map string_of_int st.Agm06.phase_found)))
