(* The scale-free headline, live: sweep the aspect ratio Δ of a network
   with structure at every distance scale and watch a hierarchical
   (Awerbuch-Peleg style) scheme's tables grow with log Δ while the
   paper's scheme stays flat.

     dune exec examples/scale_free_demo.exe
*)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module T = Cr_util.Ascii_table
open Compact_routing

let () =
  let n = 96 in
  let k = 3 in
  Printf.printf
    "Exponentially-weighted line, n = %d (the paper's Δ = Ω(2^n) example, §1.3).\n\
     Every distance scale is populated, so per-scale schemes pay on every level.\n\n"
    n;
  let table =
    T.create
      ~title:(Printf.sprintf "per-node table size vs aspect ratio (k = %d)" k)
      [
        ("log2 Δ", T.Right);
        ("AP levels", T.Right);
        ("AP bits/node", T.Right);
        ("AGM06 bits/node", T.Right);
        ("AP stretch", T.Right);
        ("AGM06 stretch", T.Right);
      ]
  in
  List.iter
    (fun base ->
      let rng = Rng.create 13 in
      let g = Graph.normalize (Graph.relabel rng (Generators.exponential_line ~n ~base)) in
      let apsp = Apsp.compute g in
      let pairs = Experiment.default_pairs ~seed:3 apsp ~count:400 in
      let ap = Baseline_ap.build ~k apsp in
      let agm = Agm06.scheme (Agm06.build ~params:(Params.scaled ~k ()) apsp) in
      let rap = Experiment.run_scheme apsp ap ~pairs in
      let ragm = Experiment.run_scheme apsp agm ~pairs in
      let log_delta =
        Float.log (Apsp.aspect_ratio apsp) /. Float.log 2.0
      in
      T.add_row table
        [
          Printf.sprintf "%.0f" log_delta;
          string_of_int (Baseline_ap.levels_built ap);
          Printf.sprintf "%.0f" rap.Experiment.bits_mean;
          Printf.sprintf "%.0f" ragm.Experiment.bits_mean;
          T.fmt_float rap.Experiment.stretch_mean;
          T.fmt_float ragm.Experiment.stretch_mean;
        ])
    [ 1.1; 1.3; 1.6; 2.0; 3.0; 5.0; 9.0 ];
  T.print table;
  print_newline ();
  Printf.printf
    "Reading: the AP hierarchy stores state for every scale in {1..log Δ}; its\n\
     tables grow without bound as weights spread.  The paper's decomposition\n\
     stores state only around each node's O(k) density-change scales, so its\n\
     column stays flat: the scheme is scale-free.\n"
