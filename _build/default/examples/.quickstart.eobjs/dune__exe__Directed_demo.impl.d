examples/directed_demo.ml: Array Cr_digraph Cr_graph Cr_util List Printf
