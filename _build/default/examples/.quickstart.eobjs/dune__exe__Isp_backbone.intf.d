examples/isp_backbone.mli:
