examples/quickstart.mli:
