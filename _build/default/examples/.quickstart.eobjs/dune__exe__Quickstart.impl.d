examples/quickstart.ml: Agm06 Array Compact_routing Cr_graph Cr_util Experiment List Params Printf Scheme Simulator Storage String
