examples/directed_demo.mli:
