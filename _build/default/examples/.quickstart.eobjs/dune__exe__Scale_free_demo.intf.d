examples/scale_free_demo.mli:
