examples/p2p_overlay.ml: Agm06 Baseline_s3 Baseline_tree Compact_routing Cr_graph Cr_util Experiment List Params Printf Scheme Simulator Storage String
