examples/scale_free_demo.ml: Agm06 Baseline_ap Compact_routing Cr_graph Cr_util Experiment Float List Params Printf
