examples/isp_backbone.ml: Agm06 Baseline_ap Baseline_exp Baseline_full Baseline_s3 Baseline_tree Baseline_tz Compact_routing Cr_graph Cr_util Experiment List Params Printf
