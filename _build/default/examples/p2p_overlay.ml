(* Peer-to-peer overlay scenario: DHT-style node identifiers.

   The paper's introduction singles out DHTs as a motivation for
   name-independent routing: node names are dictated by the application
   (e.g. hashes in [0..n) or binary prefixes), so a routing scheme must
   find names it did not choose.  This example builds a ring+chords
   small-world overlay (Chord-like), names nodes by an application-level
   hash, and routes lookups by those names.

     dune exec examples/p2p_overlay.exe
*)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
open Compact_routing

let () =
  let rng = Rng.create 7 in
  let n = 256 in
  let overlay = Generators.ring_with_chords rng ~n ~chords:(2 * n) in
  (* application-assigned identifiers: a random permutation of a sparse
     hash space, exactly the "arbitrary network identifier" model *)
  let overlay = Graph.normalize (Graph.relabel rng overlay) in
  let apsp = Apsp.compute overlay in
  Printf.printf "overlay: %d peers, %d links (ring + %d chords), diameter %.0f\n\n" n
    (Graph.m overlay) (Graph.m overlay - n) (Apsp.diameter apsp);

  let k = 3 in
  let agm = Agm06.build ~params:(Params.scaled ~k ()) apsp in
  let scheme = Agm06.scheme agm in

  (* a batch of lookups: peer s wants the peer owning identifier ident *)
  let lookups = Experiment.default_pairs ~seed:11 apsp ~count:1500 in
  let agg = Simulator.evaluate apsp scheme lookups in
  Printf.printf "%d lookups by identifier, %d delivered\n" agg.Simulator.pairs agg.Simulator.delivered;
  Printf.printf "stretch: mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n"
    agg.Simulator.stretch_stats.Cr_util.Stats.mean agg.Simulator.stretch_stats.Cr_util.Stats.p50
    agg.Simulator.stretch_stats.Cr_util.Stats.p90 agg.Simulator.stretch_stats.Cr_util.Stats.p99
    agg.Simulator.stretch_stats.Cr_util.Stats.max;
  Printf.printf "per-peer state: mean %s, max %s\n\n"
    (Cr_util.Ascii_table.fmt_bits (int_of_float (Storage.mean_node_bits scheme.Scheme.storage)))
    (Cr_util.Ascii_table.fmt_bits (Storage.max_node_bits scheme.Scheme.storage));

  (* show a couple of concrete lookups with their walks *)
  List.iter
    (fun (s, d) ->
      let r = scheme.Scheme.route s d in
      let cost, hops = Simulator.walk_cost overlay r.Scheme.walk in
      Printf.printf "lookup from peer %d for identifier %d: %d hops, cost %.0f (optimal %.0f)\n" s
        (Graph.name_of overlay d) hops cost (Apsp.distance apsp s d);
      if hops <= 24 then
        Printf.printf "  walk: %s\n"
          (String.concat " -> " (List.map string_of_int r.Scheme.walk)))
    [ (0, 200); (10, 250); (128, 1) ];

  (* two comparators: the specialized stretch-3 name-independent scheme
     (the natural DHT choice when k=2-grade state is affordable) and a
     naive single-tree directory *)
  let s3 = Baseline_s3.build apsp in
  let agg_s3 = Simulator.evaluate apsp s3 lookups in
  Printf.printf
    "\nstretch-3 scheme [5] on the same lookups: stretch mean %.2f (p99 %.2f), state mean %s\n"
    agg_s3.Simulator.stretch_stats.Cr_util.Stats.mean
    agg_s3.Simulator.stretch_stats.Cr_util.Stats.p99
    (Cr_util.Ascii_table.fmt_bits (int_of_float (Storage.mean_node_bits s3.Scheme.storage)));
  let tree = Baseline_tree.build apsp in
  let agg_tree = Simulator.evaluate apsp tree lookups in
  Printf.printf
    "naive single-tree directory: stretch mean %.2f (p99 %.2f), state mean %s\n"
    agg_tree.Simulator.stretch_stats.Cr_util.Stats.mean
    agg_tree.Simulator.stretch_stats.Cr_util.Stats.p99
    (Cr_util.Ascii_table.fmt_bits (int_of_float (Storage.mean_node_bits tree.Scheme.storage)))
