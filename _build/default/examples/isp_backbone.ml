(* ISP backbone scenario: a two-tier provider network (long-haul core
   ring + access trees), the weighted hierarchical topology the paper's
   introduction motivates.  Compares every scheme in the library on the
   same traffic matrix.

     dune exec examples/isp_backbone.exe
*)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module T = Cr_util.Ascii_table
open Compact_routing

let () =
  let rng = Rng.create 2026 in
  let g = Generators.two_tier_isp rng ~core:16 ~access_per_core:24 in
  let g = Graph.normalize (Graph.relabel rng g) in
  let apsp = Apsp.compute g in
  Printf.printf
    "ISP topology: %d routers (%d core), %d links; diameter %.1f, aspect ratio %.1f\n\n"
    (Graph.n g) 16 (Graph.m g) (Apsp.diameter apsp) (Apsp.aspect_ratio apsp);

  (* traffic: mostly access-to-access across the backbone *)
  let pairs = Experiment.default_pairs ~seed:5 apsp ~count:2000 in

  let schemes =
    [
      Baseline_full.build apsp;
      Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:2 ()) apsp);
      Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ()) apsp);
      Baseline_ap.build ~k:3 apsp;
      Baseline_exp.build ~k:3 apsp;
      Baseline_tz.build ~k:3 apsp;
      Baseline_s3.build apsp;
      Baseline_tree.build apsp;
    ]
  in
  let table =
    T.create
      ~title:"space-stretch trade-off on the ISP backbone (2000 flows)"
      [
        ("scheme", T.Left);
        ("delivered", T.Right);
        ("stretch mean", T.Right);
        ("stretch p99", T.Right);
        ("worst", T.Right);
        ("bits/node mean", T.Right);
        ("bits/node max", T.Right);
      ]
  in
  List.iter
    (fun (r : Experiment.row) ->
      T.add_row table
        [
          r.Experiment.scheme;
          Printf.sprintf "%d/%d" r.Experiment.delivered r.Experiment.pairs;
          T.fmt_float r.Experiment.stretch_mean;
          T.fmt_float r.Experiment.stretch_p99;
          T.fmt_float r.Experiment.stretch_max;
          T.fmt_bits (int_of_float r.Experiment.bits_mean);
          T.fmt_bits r.Experiment.bits_max;
        ])
    (Experiment.compare_schemes apsp schemes ~pairs);
  T.print table;
  print_newline ();
  Printf.printf
    "Reading: full tables are exact but cost Θ(n log n) bits at every router;\n\
     the paper's scheme (agm06) keeps stretch a few x optimal with tables two\n\
     orders of magnitude smaller, without assigning router addresses itself.\n"
