(** Sparse covers — the [TC_{k,ρ}(G)] of Lemma 6 (Awerbuch–Peleg [9]
    with the routing extensions of [3]).

    Given a weighted graph, a subset of {e allowed} nodes (the [G_i] of
    the paper are induced subgraphs, expressed here as a predicate so all
    node ids stay global), and parameters [k ≥ 1] and [ρ > 0], builds a
    collection of rooted cluster trees such that:

    + (Cover) for every allowed node [v], some tree fully contains the
      ball [B(v, ρ)] taken in the allowed subgraph;
    + (Sparse) every node belongs to few trees — the paper's bound is
      [2k·n^{1/k}]; our greedy merge is validated against it empirically
      (see T5) and {!max_overlap} reports the achieved value;
    + (Small radius) every tree has [rad(T) ≤ (2k+1)·ρ] by construction
      (at most [k] absorption rounds of [2ρ] radius growth follow the
      initial [ρ]-ball, since all but the last must multiply the cluster
      size by more than [n^{1/k}]).  The paper's refined constant
      [(2k−1)ρ] comes from the extensions of [3]; measured radii —
      reported by T5 — are usually well below both;
    + (Small edges) every tree edge has weight [≤ 2ρ].

    Construction: Awerbuch–Peleg ball coarsening in phases.  A cluster
    starts from an uncovered node's [ρ]-ball and absorbs every
    still-eligible [ρ]-ball intersecting it, continuing while each round
    multiplies its size by more than [n^{1/k}] (at most [k] rounds).
    Absorbed balls are covered by the final cluster; balls that merely
    touch it sit out the rest of the phase, so clusters created within a
    phase are pairwise disjoint and the overlap of the whole cover is at
    most the number of phases. *)

type cluster = {
  center : int;
  members : int array;  (** sorted node ids *)
  tree : Cr_tree.Tree.t;  (** spanning tree rooted at [center], edges ≤ 2ρ *)
}

type t

val build : ?allowed:(int -> bool) -> k:int -> rho:float -> Cr_graph.Graph.t -> t
(** Builds the cover.  [allowed] defaults to every node. *)

val clusters : t -> cluster array

val rho : t -> float

val k : t -> int

val home : t -> int -> int
(** [home t v] is the index (into {!clusters}) of the cluster that covers
    [B(v, ρ)] — the [W(u,i)] of §3.4.
    @raise Invalid_argument if [v] was not allowed. *)

val clusters_of : t -> int -> int list
(** Indices of every cluster containing the node (possibly empty for
    disallowed nodes). *)

val max_overlap : t -> int
(** Largest number of clusters any single node belongs to. *)

val max_radius : t -> float
(** Largest tree radius across clusters. *)

val max_tree_edge : t -> float
(** Heaviest tree edge across clusters. *)

val check_cover : t -> bool
(** Re-verifies property 1 by recomputing every allowed ball (test
    helper; O(n · ball)). *)
