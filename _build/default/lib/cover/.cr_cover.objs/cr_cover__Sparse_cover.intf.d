lib/cover/sparse_cover.mli: Cr_graph Cr_tree
