lib/cover/sparse_cover.ml: Array Cr_graph Cr_tree Cr_util Hashtbl List
