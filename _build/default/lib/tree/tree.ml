module Graph = Cr_graph.Graph
module Dijkstra = Cr_graph.Dijkstra

type t = {
  graph : Graph.t;
  root : int;
  nodes : int array; (* tree index -> graph id *)
  idx : (int, int) Hashtbl.t; (* graph id -> tree index *)
  parent : int array; (* tree index -> graph id of parent, -1 for root *)
  children : int array array; (* tree index -> graph ids, ascending *)
  depth_w : float array;
  depth_h : int array;
  member : bool array;
  mutable dfs : int array option; (* graph ids in preorder *)
  mutable dfs_idx : (int, int) Hashtbl.t option;
  mutable subtree_hi : int array option; (* by dfs position: end of interval *)
}

let of_sssp g (res : Dijkstra.result) ~keep =
  let n = Graph.n g in
  let in_tree = Array.make n false in
  let member = Array.make n false in
  let any = ref false in
  (* Mark kept nodes and pull in ancestors as relays. *)
  for v = 0 to n - 1 do
    if res.Dijkstra.dist.(v) < infinity && keep v then begin
      any := true;
      member.(v) <- true;
      let rec up x =
        if not in_tree.(x) then begin
          in_tree.(x) <- true;
          if x <> res.Dijkstra.source then up res.Dijkstra.parent.(x)
        end
      in
      up v
    end
  done;
  if not !any then invalid_arg "Tree.of_sssp: no kept node reachable";
  in_tree.(res.Dijkstra.source) <- true;
  let nodes =
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if in_tree.(v) then acc := v :: !acc
    done;
    Array.of_list !acc
  in
  let m = Array.length nodes in
  let idx = Hashtbl.create (2 * m) in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) nodes;
  let parent = Array.make m (-1) in
  let child_lists = Array.make m [] in
  Array.iteri
    (fun i v ->
      if v <> res.Dijkstra.source then begin
        let p = res.Dijkstra.parent.(v) in
        parent.(i) <- p;
        let pi = Hashtbl.find idx p in
        child_lists.(pi) <- v :: child_lists.(pi)
      end)
    nodes;
  let children = Array.map (fun l -> Array.of_list (List.sort compare l)) child_lists in
  let depth_w = Array.make m 0.0 in
  let depth_h = Array.make m 0 in
  (* nodes ascending by graph id is not topological; compute depths by
     walking up with memoization. *)
  let computed = Array.make m false in
  let rec fill i =
    if not computed.(i) then begin
      let v = nodes.(i) in
      if parent.(i) = -1 then begin
        depth_w.(i) <- 0.0;
        depth_h.(i) <- 0
      end
      else begin
        let pi = Hashtbl.find idx parent.(i) in
        fill pi;
        let w =
          match Graph.edge_weight g parent.(i) v with
          | Some w -> w
          | None -> invalid_arg "Tree.of_sssp: tree edge not in graph"
        in
        depth_w.(i) <- depth_w.(pi) +. w;
        depth_h.(i) <- depth_h.(pi) + 1
      end;
      computed.(i) <- true
    end
  in
  for i = 0 to m - 1 do
    fill i
  done;
  let member_arr = Array.map (fun v -> member.(v) || v = res.Dijkstra.source) nodes in
  {
    graph = g;
    root = res.Dijkstra.source;
    nodes;
    idx;
    parent;
    children;
    depth_w;
    depth_h;
    member = member_arr;
    dfs = None;
    dfs_idx = None;
    subtree_hi = None;
  }

let spanning g root = of_sssp g (Dijkstra.run g root) ~keep:(fun _ -> true)

let graph t = t.graph

let root t = t.root

let size t = Array.length t.nodes

let nodes t = t.nodes

let mem t v = Hashtbl.mem t.idx v

let tree_index t v =
  match Hashtbl.find_opt t.idx v with Some i -> i | None -> raise Not_found

let is_member t v =
  match Hashtbl.find_opt t.idx v with Some i -> t.member.(i) | None -> false

let graph_node t i = t.nodes.(i)

let parent t v = t.parent.(tree_index t v)

let children t v = t.children.(tree_index t v)

let depth t v = t.depth_w.(tree_index t v)

let hop_depth t v = t.depth_h.(tree_index t v)

let radius t = Array.fold_left max 0.0 t.depth_w

let max_edge t =
  let best = ref 0.0 in
  Array.iteri
    (fun i p ->
      if p >= 0 then begin
        match Graph.edge_weight t.graph p t.nodes.(i) with
        | Some w -> if w > !best then best := w
        | None -> assert false
      end)
    t.parent;
  !best

let lca t a b =
  let ia = ref (tree_index t a) and ib = ref (tree_index t b) in
  while t.depth_h.(!ia) > t.depth_h.(!ib) do
    ia := tree_index t t.parent.(!ia)
  done;
  while t.depth_h.(!ib) > t.depth_h.(!ia) do
    ib := tree_index t t.parent.(!ib)
  done;
  while !ia <> !ib do
    ia := tree_index t t.parent.(!ia);
    ib := tree_index t t.parent.(!ib)
  done;
  t.nodes.(!ia)

let path t a b =
  let l = lca t a b in
  let rec up x acc = if x = l then x :: acc else up t.parent.(tree_index t x) (x :: acc) in
  let up_a = List.rev (up a []) (* a ... l *) in
  let down_b = up b [] (* l ... b *) in
  match down_b with
  | _l :: rest -> up_a @ rest
  | [] -> assert false

let path_length t a b =
  let l = lca t a b in
  depth t a +. depth t b -. (2.0 *. depth t l)

let ensure_dfs t =
  match t.dfs with
  | Some _ -> ()
  | None ->
      let m = size t in
      let order = Array.make m (-1) in
      let hi = Array.make m (-1) in
      let pos = ref 0 in
      (* explicit stack to avoid deep recursion on path graphs *)
      let stack = Stack.create () in
      (* frames: (graph node, post) where post=true means finish *)
      Stack.push (t.root, false) stack;
      let my_pos = Hashtbl.create m in
      while not (Stack.is_empty stack) do
        let v, post = Stack.pop stack in
        if post then begin
          let p = Hashtbl.find my_pos v in
          hi.(p) <- !pos
        end
        else begin
          let p = !pos in
          incr pos;
          order.(p) <- v;
          Hashtbl.replace my_pos v p;
          Stack.push (v, true) stack;
          let ch = t.children.(tree_index t v) in
          for i = Array.length ch - 1 downto 0 do
            Stack.push (ch.(i), false) stack
          done
        end
      done;
      let idx_tbl = Hashtbl.create m in
      Array.iteri (fun i v -> Hashtbl.replace idx_tbl v i) order;
      t.dfs <- Some order;
      t.dfs_idx <- Some idx_tbl;
      t.subtree_hi <- Some hi

let dfs_order t =
  ensure_dfs t;
  Option.get t.dfs

let dfs_index t v =
  ensure_dfs t;
  match Hashtbl.find_opt (Option.get t.dfs_idx) v with
  | Some i -> i
  | None -> raise Not_found

let subtree_interval t v =
  ensure_dfs t;
  let lo = dfs_index t v in
  let hi = (Option.get t.subtree_hi).(lo) in
  (lo, hi)

let members t =
  let acc = ref [] in
  for i = Array.length t.nodes - 1 downto 0 do
    if t.member.(i) then acc := t.nodes.(i) :: !acc
  done;
  Array.of_list !acc

let by_root_distance t =
  let arr = Array.copy t.nodes in
  let key v =
    let i = tree_index t v in
    (t.depth_w.(i), v)
  in
  Array.sort (fun a b -> compare (key a) (key b)) arr;
  arr
