lib/tree/ni_tree_routing.mli: Tree
