lib/tree/tree_labels.mli: Format Tree
