lib/tree/ni_tree_routing.ml: Array Cr_graph Cr_util Hashtbl List Tree Tree_labels
