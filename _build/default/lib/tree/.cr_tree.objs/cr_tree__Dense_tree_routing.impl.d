lib/tree/dense_tree_routing.ml: Array Cr_graph Cr_util Hashtbl Int64 List Tree Tree_labels
