lib/tree/tree.ml: Array Cr_graph Hashtbl List Option Stack
