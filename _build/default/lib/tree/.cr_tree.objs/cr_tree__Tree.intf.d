lib/tree/tree.mli: Cr_graph
