lib/tree/dense_tree_routing.mli: Tree
