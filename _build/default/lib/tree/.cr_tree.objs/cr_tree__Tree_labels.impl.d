lib/tree/tree_labels.ml: Array Cr_graph Cr_util Format Hashtbl List Printf String Tree
