(** Labeled (stretch-1) routing on a tree — the Lemma 5 substrate.

    Fraigniaud–Gavoille / Thorup–Zwick tree routing: every node gets a
    short {e label}; given only its own label and the destination label, a
    node decides the next tree hop locally, and the induced route is the
    unique (hence shortest) tree path.

    The implementation uses heavy-path decomposition: a label is the
    sequence of (offset, child-slot) branch points at which the
    root-to-node path leaves a heavy path, plus the final offset — at most
    [⌊log₂ m⌋] branch entries, for [O(log² m)]-bit labels, matching the
    [O(k log m)]–[O(log² m)] range of Lemma 5. *)

type t
(** Labeling of one tree. *)

type label
(** Routing label of one node. *)

val build : Tree.t -> t

val tree : t -> Tree.t

val label : t -> int -> label
(** Label of a tree node (graph id).  @raise Not_found if absent. *)

val label_bits : label -> int
(** Exact encoded size of a label in bits. *)

val next_hop : t -> int -> label -> int option
(** [next_hop t v dest] is the local decision at node [v] (graph id)
    heading for [dest]: [None] when [v] is the destination, otherwise
    [Some u] with [u] a tree neighbor of [v]. *)

val route : t -> int -> int -> int list
(** Full route between two tree nodes obtained by iterating
    {!next_hop}; equals the unique tree path. *)

val node_storage_bits : t -> int -> int
(** Bits a node needs to play its part: its own label, its parent port
    and per-child heavy flags/ports. *)

val equal_label : label -> label -> bool

val pp_label : Format.formatter -> label -> unit
