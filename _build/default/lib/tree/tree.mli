(** Rooted spanning trees embedded in a graph.

    These are the [T(u)] objects of the paper: shortest-path trees (or
    cover-cluster trees) whose edges are graph edges, so that walking the
    tree is walking the network.  A tree may span only a subset of the
    graph; nodes pulled in purely to keep member paths connected are
    {e relay} nodes ([is_member] false) — they carry forwarding state but
    no directory entries (see DESIGN.md §2 note 4). *)

type t

val of_sssp : Cr_graph.Graph.t -> Cr_graph.Dijkstra.result -> keep:(int -> bool) -> t
(** [of_sssp g res ~keep] extracts the subtree of the shortest-path tree
    [res] spanning the root and every reachable node with [keep v = true];
    nodes on the connecting paths are added as relays.
    @raise Invalid_argument if no kept node is reachable. *)

val spanning : Cr_graph.Graph.t -> int -> t
(** Full shortest-path tree from a root (all reachable nodes kept). *)

val graph : t -> Cr_graph.Graph.t

val root : t -> int
(** Root as a graph node id. *)

val size : t -> int
(** Number of tree nodes (members + relays). *)

val nodes : t -> int array
(** Graph ids of all tree nodes; index in this array is the node's
    {e tree index}. *)

val mem : t -> int -> bool
(** Whether a graph node belongs to the tree. *)

val is_member : t -> int -> bool
(** Whether a graph node is a (non-relay) member.  False if absent. *)

val tree_index : t -> int -> int
(** Tree index of a graph node.  @raise Not_found if absent. *)

val graph_node : t -> int -> int
(** Graph id of a tree index. *)

val parent : t -> int -> int
(** Parent (graph id) of a graph node in the tree; -1 for the root. *)

val children : t -> int -> int array
(** Children (graph ids) of a graph node, ascending. *)

val depth : t -> int -> float
(** Weighted distance from the root along tree edges. *)

val hop_depth : t -> int -> int

val radius : t -> float
(** [max_v depth v] — the [rad(T)] of Lemma 6/7. *)

val max_edge : t -> float
(** Heaviest tree edge — the [maxE(T)] of Lemma 6/7. *)

val lca : t -> int -> int -> int
(** Lowest common ancestor of two tree nodes (graph ids). *)

val path : t -> int -> int -> int list
(** Unique tree path between two tree nodes, as graph ids, inclusive of
    both endpoints.  Every consecutive pair is a graph edge. *)

val path_length : t -> int -> int -> float
(** Weighted length of {!path} = [dT(a, b)]. *)

val dfs_order : t -> int array
(** Graph ids in preorder DFS (children visited in ascending id order);
    the root is first.  Cached after first call. *)

val dfs_index : t -> int -> int
(** Position of a graph node in {!dfs_order}.
    @raise Not_found if absent. *)

val subtree_interval : t -> int -> int * int
(** [(lo, hi)] such that the DFS indexes of the subtree of the node are
    exactly [lo .. hi-1]. *)

val members : t -> int array
(** Graph ids of the non-relay members. *)

val by_root_distance : t -> int array
(** All tree nodes (graph ids) sorted by (weighted depth, graph id) —
    the [a_0, a_1, …] enumeration used by Lemma 4. *)
