module Bits = Cr_util.Bits

type label = {
  branches : (int * int) array; (* (offset on heavy path, child slot taken) *)
  offset : int; (* final offset on the last heavy path *)
}

type t = {
  tree : Tree.t;
  labels : label array; (* by tree index *)
  heavy : int array; (* tree index -> graph id of heavy child, -1 for leaf *)
  offset_bits : int;
  slot_bits : int;
}

let equal_label a b = a.branches = b.branches && a.offset = b.offset

let pp_label fmt l =
  Format.fprintf fmt "[%s|%d]"
    (String.concat ";"
       (Array.to_list (Array.map (fun (o, c) -> Printf.sprintf "%d.%d" o c) l.branches)))
    l.offset

let build tree =
  let m = Tree.size tree in
  let nodes = Tree.nodes tree in
  (* subtree sizes, processing nodes in reverse DFS order (leaves first) *)
  let order = Tree.dfs_order tree in
  let sizes = Hashtbl.create m in
  for i = m - 1 downto 0 do
    let v = order.(i) in
    let s =
      Array.fold_left (fun acc c -> acc + Hashtbl.find sizes c) 1 (Tree.children tree v)
    in
    Hashtbl.replace sizes v s
  done;
  let heavy = Array.make m (-1) in
  Array.iteri
    (fun i v ->
      let ch = Tree.children tree v in
      let best = ref (-1) and best_size = ref (-1) in
      Array.iter
        (fun c ->
          let s = Hashtbl.find sizes c in
          if s > !best_size then begin
            best := c;
            best_size := s
          end)
        ch;
      heavy.(i) <- !best)
    nodes;
  let idx v = Tree.tree_index tree v in
  let labels = Array.make m { branches = [||]; offset = 0 } in
  (* assign labels in DFS order: parents before children *)
  Array.iter
    (fun v ->
      if v <> Tree.root tree then begin
        let p = Tree.parent tree v in
        let lp = labels.(idx p) in
        if heavy.(idx p) = v then labels.(idx v) <- { lp with offset = lp.offset + 1 }
        else begin
          let ch = Tree.children tree p in
          let slot = ref (-1) in
          Array.iteri (fun s c -> if c = v then slot := s) ch;
          assert (!slot >= 0);
          labels.(idx v) <-
            { branches = Array.append lp.branches [| (lp.offset, !slot) |]; offset = 0 }
        end
      end)
    order;
  let max_children = Array.fold_left (fun acc v -> max acc (Array.length (Tree.children tree v))) 1 nodes in
  { tree; labels; heavy; offset_bits = Bits.bits_for (max m 2); slot_bits = Bits.bits_for max_children }

let tree t = t.tree

let label t v = t.labels.(Tree.tree_index t.tree v)

(* label encoding: branch count header + per-branch (offset, slot) + final
   offset.  Widths are per-tree constants known to every node. *)
let label_bits_in t l =
  let b = Array.length l.branches in
  Bits.bits_for (b + 2) + (b * (t.offset_bits + t.slot_bits)) + t.offset_bits

let next_hop t v dest =
  let tree = t.tree in
  let i = Tree.tree_index tree v in
  let own = t.labels.(i) in
  if equal_label own dest then None
  else begin
    let nx = Array.length own.branches and nv = Array.length dest.branches in
    let rec common j =
      if j < nx && j < nv && own.branches.(j) = dest.branches.(j) then common (j + 1) else j
    in
    let j = common 0 in
    let go_parent () = Some (Tree.parent tree v) in
    let go_heavy () =
      let h = t.heavy.(i) in
      assert (h >= 0);
      Some h
    in
    if j < nx then go_parent () (* paths diverged, or v's prefix ends: climb *)
    else if j = nx && j = nv then begin
      (* same heavy path *)
      if dest.offset > own.offset then go_heavy () else go_parent ()
    end
    else begin
      (* j = nx < nv: destination branches off v's current heavy path *)
      let bo, bc = dest.branches.(j) in
      if bo > own.offset then go_heavy ()
      else if bo = own.offset then Some (Tree.children tree v).(bc)
      else go_parent ()
    end
  end

let route t a b =
  let dest = label t b in
  let rec go v acc =
    match next_hop t v dest with
    | None -> List.rev (v :: acc)
    | Some u -> go u (v :: acc)
  in
  go a []

(* The public [label_bits] has no tree context, so it uses
   self-describing per-field widths; [node_storage_bits] below uses the
   tighter per-tree fixed widths. *)
let label_bits (l : label) =
  let b = Array.length l.branches in
  let field v = Bits.bits_for (max 2 (v + 1)) in
  Array.fold_left (fun acc (o, c) -> acc + field o + field c) (Bits.bits_for (b + 2) + field l.offset) l.branches

let node_storage_bits t v =
  let i = Tree.tree_index t.tree v in
  let own = label_bits_in t t.labels.(i) in
  (* parent pointer + heavy-child pointer, as graph node ids *)
  let ptr = Bits.id_bits ~n:(Cr_graph.Graph.n (Tree.graph t.tree)) in
  own + (2 * ptr)
