(** Baseline: scale-free name-independent routing with hash-digit
    directory chains, in the style of Awerbuch–Bar-Noy–Linial–Peleg
    [7, 8] and Arias et al. [6].

    Until this paper, these were the only scale-free schemes for general
    graphs, with [Õ(n^{1/k})] space but stretch {e exponential} in [k].
    The variant implemented here:

    - every identifier hashes to a digit string [h(·) ∈ Σ^k],
      [Σ = ⌈n^{1/k}⌉];
    - every node [u] stores a {e vicinity} table routing to its [σ]
      closest nodes, and for every level [j] and digit [c] a pointer to
      the nearest node whose hash extends [h(u)]'s [(j−1)]-prefix by [c];
    - every node stores source routes to the nodes whose full hash equals
      its own ({e owner directory}, expected O(1) entries).

    Routing resolves the destination hash digit by digit, hopping to the
    nearest node matching one more digit, checking every intermediate
    vicinity; the owner of the full hash holds the final route.  Each
    digit resolution can multiply the distance travelled, which is
    exactly the [O(2^k)]-shaped stretch the headline experiment T1
    contrasts with the paper's [O(k)]. *)

val build : ?k:int -> ?seed:int -> Cr_graph.Apsp.t -> Scheme.t
(** [k] defaults to 3. *)
