module Apsp = Cr_graph.Apsp
module Ball = Cr_graph.Ball
module Graph = Cr_graph.Graph
module Bits = Cr_util.Bits

type t = {
  apsp : Apsp.t;
  k : int;
  log_delta : int;
  a : int array array; (* a.(u).(i) for i in 0..k *)
  dense : bool array array; (* dense.(u).(i) for i in 0..k-1 *)
  r_set : int list array; (* R(u), ascending *)
  levels : int array array; (* V_i members for i in 0..log_delta *)
}

let radius_of_exponent j = 2.0 ** float_of_int j

let build apsp ~k =
  if k < 1 then invalid_arg "Decomposition.build: k < 1";
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let diameter = Apsp.diameter apsp in
  let log_delta = max 0 (int_of_float (Float.ceil (Float.log (Float.max 1.0 diameter) /. Float.log 2.0))) in
  let kappa = float_of_int (max 2 (Bits.ceil_pow (float_of_int (max 2 n)) (1.0 /. float_of_int k))) in
  let a = Array.make_matrix n (k + 1) 0 in
  for u = 0 to n - 1 do
    let ball = Apsp.ball apsp u in
    for i = 0 to k - 1 do
      let base = Ball.ball_size ball (radius_of_exponent a.(u).(i)) in
      let target = kappa *. float_of_int base in
      (* smallest positive j with |B(u, 2^j)| >= target, else log_delta *)
      let rec find j =
        if j > log_delta then log_delta
        else if float_of_int (Ball.ball_size ball (radius_of_exponent j)) >= target then j
        else find (j + 1)
      in
      a.(u).(i + 1) <- find 1
    done
  done;
  let dense = Array.make_matrix n (max 1 k) false in
  for u = 0 to n - 1 do
    for i = 0 to k - 1 do
      dense.(u).(i) <- a.(u).(i) < a.(u).(i + 1) && a.(u).(i + 1) <= a.(u).(i) + 3
    done
  done;
  let r_set = Array.make n [] in
  for u = 0 to n - 1 do
    let marks = Array.make (log_delta + 2) false in
    Array.iter
      (fun av ->
        (* i with -1 <= av - i <= 4, i.e. av - 4 <= i <= av + 1 *)
        for i = max 0 (av - 4) to min log_delta (av + 1) do
          marks.(i) <- true
        done)
      a.(u);
    let acc = ref [] in
    for i = log_delta downto 0 do
      if marks.(i) then acc := i :: !acc
    done;
    r_set.(u) <- !acc
  done;
  let levels = Array.make (log_delta + 1) [||] in
  let buckets = Array.make (log_delta + 1) [] in
  for u = n - 1 downto 0 do
    List.iter (fun i -> buckets.(i) <- u :: buckets.(i)) r_set.(u)
  done;
  for i = 0 to log_delta do
    levels.(i) <- Array.of_list buckets.(i)
  done;
  { apsp; k; log_delta; a; dense; r_set; levels }

let k t = t.k

let apsp t = t.apsp

let log_delta t = t.log_delta

let range t u i =
  if i < 0 || i > t.k then invalid_arg "Decomposition.range: level out of range";
  t.a.(u).(i)

let is_dense t u i =
  if i < 0 || i >= t.k then invalid_arg "Decomposition.is_dense: level out of range";
  t.dense.(u).(i)

let neighborhood t u i =
  if i = 0 then [| u |]
  else Ball.ball (Apsp.ball t.apsp u) (radius_of_exponent t.a.(u).(i))

let neighborhood_size t u i =
  if i = 0 then 1
  else Ball.ball_size (Apsp.ball t.apsp u) (radius_of_exponent t.a.(u).(i))

let f_set t u i =
  Ball.ball (Apsp.ball t.apsp u) (radius_of_exponent (t.a.(u).(i) - 1))

let e_set t u i =
  if i >= t.k then invalid_arg "Decomposition.e_set: needs a(u,i+1)";
  Ball.ball (Apsp.ball t.apsp u) (radius_of_exponent t.a.(u).(i + 1) /. 6.0)

let range_set t u = List.sort_uniq compare (Array.to_list t.a.(u))

let extended_range_set t u = t.r_set.(u)

let in_level_graph t u i = List.mem i t.r_set.(u)

let level_nodes t i =
  if i < 0 || i > t.log_delta then [||] else t.levels.(i)

let needed_levels t =
  let acc = ref [] in
  for i = t.log_delta downto 0 do
    if Array.length t.levels.(i) > 0 then acc := i :: !acc
  done;
  !acc

let dense_level_count t u =
  let c = ref 0 in
  for i = 0 to t.k - 1 do
    if t.dense.(u).(i) then incr c
  done;
  !c
