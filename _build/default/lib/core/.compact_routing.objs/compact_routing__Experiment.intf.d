lib/core/experiment.mli: Cr_graph Scheme
