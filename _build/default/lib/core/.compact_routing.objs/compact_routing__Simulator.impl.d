lib/core/simulator.ml: Array Cr_graph Cr_util List Printf Scheme
