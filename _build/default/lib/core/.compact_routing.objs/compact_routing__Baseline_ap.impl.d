lib/core/baseline_ap.ml: Array Cr_cover Cr_graph Cr_tree Cr_util Float List Printf Scheme Storage
