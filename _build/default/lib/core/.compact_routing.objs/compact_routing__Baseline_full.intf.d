lib/core/baseline_full.mli: Cr_graph Scheme
