lib/core/baseline_tz.ml: Array Cr_graph Cr_util Hashtbl List Printf Scheme Storage
