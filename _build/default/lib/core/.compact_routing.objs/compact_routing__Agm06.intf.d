lib/core/agm06.mli: Cr_graph Decomposition Params Scheme
