lib/core/storage.ml: Array Hashtbl List Option
