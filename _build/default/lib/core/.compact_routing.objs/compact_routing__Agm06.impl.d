lib/core/agm06.ml: Array Buffer Cr_cover Cr_graph Cr_landmark Cr_tree Cr_util Decomposition Hashtbl List Params Printf Scheme Storage String
