lib/core/params.mli:
