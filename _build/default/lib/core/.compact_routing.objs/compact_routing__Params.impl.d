lib/core/params.ml: Cr_util Float
