lib/core/scheme.ml: Cr_graph Cr_util Storage
