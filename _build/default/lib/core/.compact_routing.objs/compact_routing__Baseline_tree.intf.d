lib/core/baseline_tree.mli: Cr_graph Scheme
