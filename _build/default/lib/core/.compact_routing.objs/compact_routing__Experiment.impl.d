lib/core/experiment.ml: Buffer Cr_graph Cr_util Fun List Printf Scheme Simulator Storage
