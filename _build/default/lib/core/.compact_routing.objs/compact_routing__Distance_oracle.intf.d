lib/core/distance_oracle.mli: Cr_graph
