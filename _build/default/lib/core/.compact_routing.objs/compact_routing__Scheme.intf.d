lib/core/scheme.mli: Cr_graph Storage
