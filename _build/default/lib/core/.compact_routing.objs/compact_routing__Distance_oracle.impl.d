lib/core/distance_oracle.ml: Array Cr_graph Cr_util Hashtbl
