lib/core/baseline_ap.mli: Cr_graph Scheme
