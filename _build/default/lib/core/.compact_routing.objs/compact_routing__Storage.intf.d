lib/core/storage.mli:
