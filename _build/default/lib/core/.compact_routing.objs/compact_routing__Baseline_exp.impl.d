lib/core/baseline_exp.ml: Array Cr_graph Cr_util Hashtbl List Option Printf Scheme Storage
