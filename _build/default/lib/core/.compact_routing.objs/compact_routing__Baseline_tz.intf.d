lib/core/baseline_tz.mli: Cr_graph Scheme
