lib/core/simulator.mli: Cr_graph Cr_util Scheme
