lib/core/decomposition.ml: Array Cr_graph Cr_util Float List
