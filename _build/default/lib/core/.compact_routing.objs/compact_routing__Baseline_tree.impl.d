lib/core/baseline_tree.ml: Array Cr_graph Cr_tree Scheme Storage
