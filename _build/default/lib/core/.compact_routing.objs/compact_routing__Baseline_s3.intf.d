lib/core/baseline_s3.mli: Cr_graph Scheme
