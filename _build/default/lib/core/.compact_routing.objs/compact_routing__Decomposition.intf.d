lib/core/decomposition.mli: Cr_graph
