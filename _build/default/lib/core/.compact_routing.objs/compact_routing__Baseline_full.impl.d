lib/core/baseline_full.ml: Array Cr_graph Cr_util List Scheme Storage
