lib/core/baseline_exp.mli: Cr_graph Scheme
