lib/core/baseline_s3.ml: Array Cr_graph Cr_tree Cr_util Hashtbl Int64 List Scheme Storage
