(** Baseline: name-independent stretch-3 routing with [Õ(√n)] space, in
    the style of Abraham–Gavoille–Malkhi–Nisan–Thorup [5].

    The paper cites this as the optimal trade-off point for stretch-3
    name-independent routing (§1.2: "random sampling based schemes were
    used for optimal trade-offs for stretch 3 schemes with Õ(√n) space").
    It is the specialized [k = 2] end of the curve, against which the
    general scheme's [k]-parameterized behaviour can be compared.

    Construction:
    - every identifier hashes to one of [⌈√n⌉] {e colors};
    - every node stores a {e vicinity} table routing to its
      [⌈√(n log n)⌉] closest nodes;
    - [⌈√n⌉]-ish {e landmarks} are sampled (and topped up so every
      vicinity contains one); every node stores its own routing label in
      every landmark's shortest-path tree ({!Cr_tree.Tree_labels});
    - every node [w] keeps a {e dictionary} entry — closest landmark and
      tree label — for every node of color [color(w)];
    - nodes missing some color in their vicinity store an explicit
      pointer to the nearest node of that color (counted in the bits).

    Routing [u → v]: if [v] is in [u]'s vicinity, walk the shortest
    path; otherwise hop to the nearest color([v]) node [w] (vicinity or
    stored pointer), read [(ℓ(v), λ(v))] from its dictionary, and follow
    the tree of landmark [ℓ(v)] straight to [v].  The classic analysis
    gives stretch 3 with handshaking; this direct variant measures a
    small constant (≈ 3–5 worst case on benign graphs). *)

val build : ?seed:int -> Cr_graph.Apsp.t -> Scheme.t
