(** Per-node routing-table storage accounting, in bits, by category.

    Every scheme charges each datum it would store at a node through
    {!add}; the evaluation then reads per-node totals (the paper's bounds
    are per-node) and per-category breakdowns (used by the ablation
    experiments). *)

type t

val create : n:int -> t

val n : t -> int

val add : t -> node:int -> category:string -> bits:int -> unit
(** Accumulates [bits] at a node under a category.  Negative amounts are
    rejected. *)

val node_bits : t -> int -> int
(** Total bits stored at one node. *)

val max_node_bits : t -> int
(** Largest per-node table — the quantity Theorem 1 bounds. *)

val mean_node_bits : t -> float

val total_bits : t -> int

val categories : t -> (string * int) list
(** Total bits per category, sorted by name. *)

val node_categories : t -> int -> (string * int) list

val merge_into : dst:t -> t -> unit
(** Adds every count of the source into [dst] (same [n] required). *)
