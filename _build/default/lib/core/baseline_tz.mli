(** Baseline: Thorup–Zwick labeled compact routing [29, 30].

    The {e labeled} counterpart on the trade-off curve: node addresses
    are chosen by the scheme designer ([o(k log² n)]-bit labels carrying
    the destination's pivots), which the paper's model explicitly rules
    out — it is included to quantify the price of name independence.

    Construction: sampled hierarchy [A₀ = V ⊇ A₁ ⊇ … ⊇ A_{k−1}]
    (probability [n^{−1/k}] per level), pivots [p_j(u)] (closest [A_j]
    node), bunches
    [B(u) = ∪_j {w ∈ A_j \ A_{j+1} : d(u,w) < d(u, p_{j+1}(u))}].
    A node stores routes to its bunch; the label of [v] lists
    [v, p_1(v), …, p_{k−1}(v)].  Routing forwards to the first pivot of
    [v] found in the source's bunch, then down that pivot's
    shortest-path tree; stretch is bounded by [4k−5] (TZ Thm 4.1 trade-off;
    measured values are far lower on benign graphs). *)

val build : ?k:int -> ?seed:int -> Cr_graph.Apsp.t -> Scheme.t
(** [k] defaults to 3. *)

val label_vectors : ?k:int -> ?seed:int -> Cr_graph.Apsp.t -> int array array
(** The label (address) the scheme assigns to each node:
    [(v, p₁(v), …, p_{k−1}(v))].  These are the addresses every sender
    must know — the paper's introduction argues that on a node join they
    may all have to be recomputed and redistributed, which experiment T9
    quantifies. *)
