type t = {
  n : int;
  per_node : int array;
  per_cat : (string, int) Hashtbl.t;
  per_node_cat : (string, int array) Hashtbl.t;
}

let create ~n =
  { n; per_node = Array.make n 0; per_cat = Hashtbl.create 8; per_node_cat = Hashtbl.create 8 }

let n t = t.n

let add t ~node ~category ~bits =
  if bits < 0 then invalid_arg "Storage.add: negative bits";
  t.per_node.(node) <- t.per_node.(node) + bits;
  Hashtbl.replace t.per_cat category
    (bits + Option.value ~default:0 (Hashtbl.find_opt t.per_cat category));
  let arr =
    match Hashtbl.find_opt t.per_node_cat category with
    | Some arr -> arr
    | None ->
        let arr = Array.make t.n 0 in
        Hashtbl.replace t.per_node_cat category arr;
        arr
  in
  arr.(node) <- arr.(node) + bits

let node_bits t v = t.per_node.(v)

let max_node_bits t = Array.fold_left max 0 t.per_node

let mean_node_bits t =
  if t.n = 0 then 0.0
  else float_of_int (Array.fold_left ( + ) 0 t.per_node) /. float_of_int t.n

let total_bits t = Array.fold_left ( + ) 0 t.per_node

let categories t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.per_cat []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let node_categories t v =
  Hashtbl.fold (fun k arr acc -> if arr.(v) > 0 then (k, arr.(v)) :: acc else acc) t.per_node_cat []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_into ~dst src =
  if dst.n <> src.n then invalid_arg "Storage.merge_into: size mismatch";
  Hashtbl.iter
    (fun cat arr ->
      Array.iteri (fun node bits -> if bits > 0 then add dst ~node ~category:cat ~bits) arr)
    src.per_node_cat
