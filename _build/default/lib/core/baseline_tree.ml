module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Dijkstra = Cr_graph.Dijkstra
module Tree = Cr_tree.Tree
module Dense = Cr_tree.Dense_tree_routing

(* Root at an approximate center: the node minimizing eccentricity. *)
let pick_center apsp n =
  let best = ref 0 and best_ecc = ref infinity in
  for v = 0 to n - 1 do
    let e = Dijkstra.eccentricity (Apsp.sssp apsp v) in
    if e < !best_ecc then begin
      best := v;
      best_ecc := e
    end
  done;
  !best

let build apsp =
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let center = pick_center apsp n in
  let tree = Tree.of_sssp g (Apsp.sssp apsp center) ~keep:(fun _ -> true) in
  let rt = Dense.build tree in
  let storage = Storage.create ~n in
  Array.iter
    (fun w ->
      Storage.add storage ~node:w ~category:"tree" ~bits:(Dense.node_storage_bits rt w))
    (Tree.nodes tree);
  let route src dst =
    if src = dst then { Scheme.walk = [ src ]; delivered = true; phases_used = 1 }
    else if not (Tree.mem tree src && Tree.mem tree dst) then
      { Scheme.walk = [ src ]; delivered = false; phases_used = 1 }
    else begin
      (* climb to the root, then search the directory *)
      let up = Tree.path tree src center in
      let r = Dense.search rt (Graph.name_of g dst) in
      let search_tail = match r.Dense.walk with [] -> [] | _ :: rest -> rest in
      match r.Dense.outcome with
      | Dense.Found _ -> { Scheme.walk = up @ search_tail; delivered = true; phases_used = 1 }
      | Dense.Not_found_reported ->
          { Scheme.walk = up @ search_tail; delivered = false; phases_used = 1 }
    end
  in
  { Scheme.name = "single-tree"; graph = g; storage;
    header_bits = Scheme.label_header_bits ~n;
    route }
