module Bits = Cr_util.Bits

type t = {
  k : int;
  seed : int;
  landmark_cap_factor : float;
  landmark_cap_log : bool;
}

let scaled ~k ?(seed = 1) () = { k; seed; landmark_cap_factor = 1.0; landmark_cap_log = false }

let paper ~k ?(seed = 1) () = { k; seed; landmark_cap_factor = 16.0; landmark_cap_log = true }

let validate t =
  if t.k < 1 then invalid_arg "Params: k < 1";
  if not (t.landmark_cap_factor > 0.0) then invalid_arg "Params: cap factor <= 0"

let landmark_cap t ~n =
  let fn = float_of_int (max 2 n) in
  let base = fn ** (2.0 /. float_of_int t.k) in
  let lg = if t.landmark_cap_log then float_of_int (Bits.bits_for (max 2 n)) else 1.0 in
  let cap = int_of_float (Float.ceil (t.landmark_cap_factor *. base *. lg)) in
  max 1 (min n cap)

let sigma t ~n = max 2 (Bits.ceil_pow (float_of_int (max 2 n)) (1.0 /. float_of_int t.k))
