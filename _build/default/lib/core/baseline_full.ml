module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Dijkstra = Cr_graph.Dijkstra
module Bits = Cr_util.Bits

let build apsp =
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let storage = Storage.create ~n in
  let idb = Bits.id_bits ~n in
  for u = 0 to n - 1 do
    (* (n-1) entries: destination identifier -> outgoing port *)
    let pb = Bits.port_bits ~degree:(Graph.degree g u) in
    Storage.add storage ~node:u ~category:"full-tables"
      ~bits:((n - 1) * ((2 * idb) + pb))
  done;
  let route src dst =
    if src = dst then { Scheme.walk = [ src ]; delivered = true; phases_used = 1 }
    else begin
      let res = Apsp.sssp apsp dst in
      if res.Dijkstra.dist.(src) = infinity then
        { Scheme.walk = [ src ]; delivered = false; phases_used = 1 }
      else begin
        (* walk the reverse of the dst-rooted shortest path tree *)
        let walk = List.rev (Dijkstra.path_to res src) in
        { Scheme.walk; delivered = true; phases_used = 1 }
      end
    end
  in
  { Scheme.name = "full-tables"; graph = g; storage;
    header_bits = Scheme.default_header_bits ~n;
    route }
