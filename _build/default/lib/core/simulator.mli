(** Walk validation and stretch measurement.

    Schemes produce walks; this module is the referee: it checks that a
    walk is realizable in the network (consecutive nodes adjacent, right
    endpoints), prices it, and compares it to the true shortest-path
    distance from the all-pairs ground truth. *)

type measured = {
  src : int;
  dst : int;
  delivered : bool;
  cost : float;  (** total weight of the walk *)
  hops : int;
  stretch : float;  (** cost / d(src,dst); 1.0 for src = dst; infinite when undelivered *)
}

exception Invalid_walk of string
(** Raised when a scheme emits a walk that is not realizable. *)

val walk_cost : Cr_graph.Graph.t -> int list -> float * int
(** Cost and hop count of a walk.
    @raise Invalid_walk on a non-edge or an empty walk. *)

val measure : Cr_graph.Apsp.t -> Scheme.t -> int -> int -> measured
(** Routes [src → dst] through the scheme and validates/prices the result.
    @raise Invalid_walk if the walk is malformed (wrong endpoints,
    non-edges, or claimed delivery to the wrong node). *)

type aggregate = {
  pairs : int;
  delivered : int;
  stretch_stats : Cr_util.Stats.summary;  (** over delivered pairs *)
  cost_stats : Cr_util.Stats.summary;
  stretches : float array;  (** raw per-pair stretch values, delivered pairs *)
}

val evaluate : Cr_graph.Apsp.t -> Scheme.t -> (int * int) array -> aggregate
(** Measures every pair and summarizes.  Undelivered pairs count in
    [pairs] but not in the stretch statistics. *)

val sample_pairs :
  Cr_util.Rng.t -> Cr_graph.Apsp.t -> count:int -> (int * int) array
(** Samples distinct connected [src ≠ dst] pairs uniformly (with
    replacement across pairs). *)
