module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Stats = Cr_util.Stats
module Rng = Cr_util.Rng

type measured = {
  src : int;
  dst : int;
  delivered : bool;
  cost : float;
  hops : int;
  stretch : float;
}

exception Invalid_walk of string

let walk_cost g walk =
  match walk with
  | [] -> raise (Invalid_walk "empty walk")
  | first :: _ ->
      ignore first;
      let rec go cost hops = function
        | a :: (b :: _ as rest) -> (
            match Graph.edge_weight g a b with
            | Some w -> go (cost +. w) (hops + 1) rest
            | None -> raise (Invalid_walk (Printf.sprintf "non-edge %d-%d" a b)))
        | _ -> (cost, hops)
      in
      go 0.0 0 walk

let measure apsp (scheme : Scheme.t) src dst =
  let g = Apsp.graph apsp in
  let r = scheme.Scheme.route src dst in
  let walk = r.Scheme.walk in
  (match walk with
  | [] -> raise (Invalid_walk "empty walk")
  | first :: _ -> if first <> src then raise (Invalid_walk "walk does not start at source"));
  if r.Scheme.delivered then begin
    match List.rev walk with
    | last :: _ ->
        if last <> dst then
          raise (Invalid_walk (Printf.sprintf "claimed delivery but walk ends at %d, not %d" last dst))
    | [] -> assert false
  end;
  let cost, hops = walk_cost g walk in
  let d = Apsp.distance apsp src dst in
  let stretch =
    if not r.Scheme.delivered then infinity
    else if src = dst then 1.0
    else if d = 0.0 || d = infinity then infinity
    else cost /. d
  in
  { src; dst; delivered = r.Scheme.delivered; cost; hops; stretch }

type aggregate = {
  pairs : int;
  delivered : int;
  stretch_stats : Stats.summary;
  cost_stats : Stats.summary;
  stretches : float array;
}

let evaluate apsp scheme pairs =
  let stretches = ref [] in
  let costs = ref [] in
  let delivered = ref 0 in
  Array.iter
    (fun (s, d) ->
      let m = measure apsp scheme s d in
      if m.delivered then begin
        incr delivered;
        stretches := m.stretch :: !stretches;
        costs := m.cost :: !costs
      end)
    pairs;
  let stretch_arr = Array.of_list !stretches in
  let cost_arr = Array.of_list !costs in
  {
    pairs = Array.length pairs;
    delivered = !delivered;
    stretch_stats = (if Array.length stretch_arr = 0 then Stats.empty_summary else Stats.summarize stretch_arr);
    cost_stats = (if Array.length cost_arr = 0 then Stats.empty_summary else Stats.summarize cost_arr);
    stretches = stretch_arr;
  }

let sample_pairs rng apsp ~count =
  let n = Graph.n (Apsp.graph apsp) in
  if n < 2 then invalid_arg "Simulator.sample_pairs: n < 2";
  let out = ref [] in
  let found = ref 0 in
  let guard = ref 0 in
  while !found < count && !guard < 100 * count do
    incr guard;
    let s = Rng.int rng n and d = Rng.int rng n in
    if s <> d && Apsp.distance apsp s d < infinity then begin
      out := (s, d) :: !out;
      incr found
    end
  done;
  Array.of_list !out
