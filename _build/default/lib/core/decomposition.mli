(** The sparse/dense neighborhood decomposition of §2.

    For every node [u], Definition 1 assigns ranges
    [a(u,0) = 0 < a(u,1) ≤ … ≤ a(u,k)]: [a(u,i+1)] is the smallest
    exponent [j > a-or-0] such that the ball [B(u, 2^j)] holds at least
    [n^{1/k}] times as many nodes as [B(u, 2^{a(u,i)})] (saturating at
    [⌈log₂ Δ⌉] when no such radius exists).  Level [i] is {e dense} when
    [a(u,i) < a(u,i+1) ≤ a(u,i) + 3] (Definition 2) and {e sparse}
    otherwise.

    The module also materializes the derived objects: range sets [L(u)],
    extended range sets [R(u) = {i : ∃a ∈ L(u), −1 ≤ a − i ≤ 4}], the
    level-graph membership [V_i = {u : i ∈ R(u)}], and the neighborhoods
    [A(u,i)], [F(u,i) = B(u, 2^{a(u,i)−1})], [E(u,i) = B(u,
    2^{a(u,i+1)}/6)]. *)

type t

val build : Cr_graph.Apsp.t -> k:int -> t
(** Requires a normalized graph (min edge weight 1; see
    {!Cr_graph.Graph.normalize}) so that [min d(u,v) = 1] as the paper
    assumes.  @raise Invalid_argument if [k < 1]. *)

val k : t -> int

val apsp : t -> Cr_graph.Apsp.t

val log_delta : t -> int
(** [⌈log₂ (max pairwise distance)⌉] — the saturation exponent. *)

val range : t -> int -> int -> int
(** [range t u i] = [a(u,i)], for [i ∈ 0..k]. *)

val is_dense : t -> int -> int -> bool
(** [is_dense t u i] for [i ∈ 0..k-1] (Definition 2). *)

val neighborhood : t -> int -> int -> int array
(** [A(u,i)]: [{u}] for [i = 0], else [B(u, 2^{a(u,i)})]. *)

val neighborhood_size : t -> int -> int -> int

val f_set : t -> int -> int -> int array
(** [F(u,i) = B(u, 2^{a(u,i)−1})] — what a dense phase must cover. *)

val e_set : t -> int -> int -> int array
(** [E(u,i) = B(u, 2^{a(u,i+1)}/6)] — what a sparse phase must cover.
    Only valid for [i ≤ k−1]. *)

val range_set : t -> int -> int list
(** [L(u)], ascending, without duplicates. *)

val extended_range_set : t -> int -> int list
(** [R(u)], ascending. *)

val in_level_graph : t -> int -> int -> bool
(** [in_level_graph t u i] = [u ∈ V_i] = [i ∈ R(u)]. *)

val level_nodes : t -> int -> int array
(** Members of [V_i], ascending. *)

val needed_levels : t -> int list
(** All [i] with [V_i ≠ ∅], ascending — the scales at which dense-level
    covers must be built. *)

val dense_level_count : t -> int -> int
(** Number of dense levels of a node — [O(log n)] per §1.2; checked by
    experiment F2. *)

val radius_of_exponent : int -> float
(** [2^j] as a float. *)
