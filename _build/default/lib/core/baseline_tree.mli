(** Baseline: one global spanning tree with a hash directory.

    The minimal-space anchor: a single shortest-path tree rooted at an
    approximate center carries the entire network; destinations are
    found name-independently through the Lemma 7 hash directory on that
    tree.  Per-node state is tiny, but all traffic detours through the
    tree, so the stretch is unbounded (it degrades with the network's
    geometry — clearly visible in experiment F1). *)

val build : Cr_graph.Apsp.t -> Scheme.t
