(** Baseline: full shortest-path routing tables.

    The trivial stretch-1 scheme from the paper's introduction: every
    node stores the next hop of an all-pairs shortest-path computation
    for each of the [n−1] destinations, keyed by network identifier —
    [Ω(n log n)] bits per node.  The quality anchor at the space-hungry
    end of the trade-off. *)

val build : Cr_graph.Apsp.t -> Scheme.t
