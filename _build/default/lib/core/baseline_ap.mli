(** Baseline: Awerbuch–Peleg-style hierarchical tree covers ([9, 10]
    with the stretch improvements of [3]).

    For {e every} scale [i ∈ {0, …, ⌈log₂ Δ⌉}] a sparse cover
    [TC_{k,2^i}(G)] is built on the {e whole} graph, and every node
    stores Lemma 7 routing state for every cluster tree it belongs to at
    every scale.  Routing searches the home cluster of scale 0, 1, 2, …
    until the destination is found; since the scale-[i] home cluster
    fully contains [B(u, 2^i)], the search terminates by scale
    [⌈log₂ d(u,v)⌉] with total cost [O(k · d(u,v))].

    This is the [O(k)]-stretch state of the art the paper improves on:
    good stretch, but per-node storage grows with [log Δ] — the
    dependence experiment T3 exhibits and the paper's scheme removes. *)

val build : ?k:int -> Cr_graph.Apsp.t -> Scheme.t
(** [k] defaults to 3. *)

val levels_built : Scheme.t -> int
(** Number of scales in the hierarchy (decoded from the storage
    categories; exposed for the T3 report). *)
