(** Scheme parameters.

    The paper's constructions carry constants ([|S(u,i)| = 16 n^{2/k} ln n],
    Claims 1–2 thresholds) that exceed [n] itself at simulation scale.
    Following DESIGN.md §2, the structure is kept exact and the constants
    are parameters: {!paper} uses the published constants; {!scaled} uses
    unit constants so the [n^{1/k}] regime is visible at [n ≤ 4096].
    Every experiment states which preset it used. *)

type t = {
  k : int;  (** the trade-off parameter, [k ≥ 1] *)
  seed : int;  (** master seed for sampling and hashing *)
  landmark_cap_factor : float;
      (** multiplier [c] in [|S(u,i)| = ⌈c · n^{2/k} · L⌉] *)
  landmark_cap_log : bool;
      (** whether the [L = log₂ n] factor is included in the cap *)
}

val scaled : k:int -> ?seed:int -> unit -> t
(** Unit constants, no log factor: [|S(u,i)| = ⌈n^{2/k}⌉]. *)

val paper : k:int -> ?seed:int -> unit -> t
(** The paper's constants: [|S(u,i)| = ⌈16 · n^{2/k} · log₂ n⌉]
    (clamped to [n] like every set of nodes). *)

val landmark_cap : t -> n:int -> int
(** The effective [|S(u,i)|] cap for an [n]-node network, [≥ 1] and
    [≤ n]. *)

val sigma : t -> n:int -> int
(** [⌈n^{1/k}⌉], the digit alphabet size (at least 2). *)

val validate : t -> unit
(** @raise Invalid_argument when fields are out of range. *)
