(** Plain-text graph serialization.

    Format (one record per line, '#' comments allowed):
    {v
    graph <n> <m>
    name <node> <identifier>       (optional; default identity)
    edge <u> <v> <weight>
    v}
    Round-trips exactly through {!to_string} / {!of_string}. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Invalid_argument on malformed input. *)

val save : Graph.t -> string -> unit
(** [save g path] writes {!to_string} to a file. *)

val load : string -> Graph.t
(** [load path] parses a file.
    @raise Sys_error or [Invalid_argument]. *)
