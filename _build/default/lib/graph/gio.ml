let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph %d %d\n" (Graph.n g) (Graph.m g));
  for u = 0 to Graph.n g - 1 do
    if Graph.name_of g u <> u then
      Buffer.add_string buf (Printf.sprintf "name %d %d\n" u (Graph.name_of g u))
  done;
  Graph.iter_edges g (fun u v w ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g\n" u v w));
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let names = ref [] in
  let edges = ref [] in
  let parse_line lineno line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else begin
      match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
      | [ "graph"; sn; _sm ] -> n := int_of_string sn
      | [ "name"; su; sname ] -> names := (int_of_string su, int_of_string sname) :: !names
      | [ "edge"; su; sv; sw ] ->
          edges := (int_of_string su, int_of_string sv, float_of_string sw) :: !edges
      | _ -> invalid_arg (Printf.sprintf "Gio.of_string: bad line %d: %S" lineno line)
    end
  in
  List.iteri parse_line lines;
  if !n < 0 then invalid_arg "Gio.of_string: missing graph header";
  let name_arr = Array.init !n (fun i -> i) in
  List.iter (fun (u, nm) -> name_arr.(u) <- nm) !names;
  Graph.create ~names:name_arr ~n:!n !edges

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = really_input_string ic len in
      of_string buf)
