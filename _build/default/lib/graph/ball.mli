(** Ball and nearest-neighbor queries around one source node.

    Implements the paper's primitives (§2.1):
    - [B(u, r)]: the set of nodes at distance at most [r] from [u];
    - [N(u, m, Z)]: the [m] nodes of [Z] closest to [u], ties broken
      lexicographically by node index.

    Built once from a Dijkstra result; all queries are then
    O(log n) (sizes) or O(answer) (enumerations). *)

type t

val of_dijkstra : Dijkstra.result -> t
(** Index the distances of one source.  Unreachable nodes are excluded
    from every ball. *)

val source : t -> int

val reachable : t -> int
(** Number of nodes at finite distance (including the source). *)

val ball_size : t -> float -> int
(** [ball_size t r] = |B(u, r)|. *)

val ball : t -> float -> int array
(** Members of [B(u, r)] in nondecreasing distance order (lexicographic
    tie-break). *)

val kth_distance : t -> int -> float
(** [kth_distance t m] is the distance of the [m]-th closest node
    (1-based; [kth_distance t 1 = 0.] for the source itself).
    @raise Invalid_argument if [m] exceeds {!reachable}. *)

val closest : t -> int -> int array
(** [closest t m] = [N(u, m, V)]: the [min m reachable] closest nodes, in
    order. *)

val closest_in : t -> int -> (int -> bool) -> int array
(** [closest_in t m pred] = [N(u, m, Z)] for [Z = {v | pred v}]:
    the up-to-[m] closest nodes satisfying [pred], in order. *)

val distance : t -> int -> float
(** Distance from the source to a node ([infinity] if unreachable). *)

val by_rank : t -> (int * float) array
(** All reachable nodes as (node, distance), sorted by (distance, index).
    The returned array is the internal one — do not mutate. *)
