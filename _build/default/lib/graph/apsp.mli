(** All-pairs shortest paths, via one Dijkstra per node.

    Preprocessing for scheme construction and ground truth for stretch
    measurement.  Memory is O(n²) floats, fine for the simulation sizes
    used in the evaluation (n ≤ a few thousand). *)

type t

val compute : Graph.t -> t
(** Runs [n] Dijkstras sequentially. *)

val compute_parallel : ?domains:int -> Graph.t -> t
(** Same result, with the sources partitioned across OCaml 5 domains
    ([domains] defaults to [Domain.recommended_domain_count ()], capped
    at 8).  Each Dijkstra only reads the (immutable) graph, so the
    sources are embarrassingly parallel; results are written to disjoint
    slices.  Falls back to the sequential path when [domains <= 1]. *)

val graph : t -> Graph.t

val distance : t -> int -> int -> float
(** d(u, v); [infinity] if disconnected. *)

val sssp : t -> int -> Dijkstra.result
(** The stored single-source result for a node. *)

val ball : t -> int -> Ball.t
(** Ball index of a node (built lazily, cached). *)

val aspect_ratio : t -> float
(** Δ = max d(u,v) / min d(u,v) over connected pairs with u ≠ v;
    [nan] if there are no such pairs. *)

val diameter : t -> float
(** Largest finite pairwise distance. *)

val connected : t -> bool
(** Whether all pairs are at finite distance. *)
