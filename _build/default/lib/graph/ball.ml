type t = {
  source : int;
  dist : float array;
  sorted : (int * float) array; (* reachable nodes by (distance, index) *)
}

let of_dijkstra (res : Dijkstra.result) =
  let acc = ref [] in
  Array.iteri (fun v d -> if d < infinity then acc := (v, d) :: !acc) res.dist;
  let sorted = Array.of_list !acc in
  Array.sort
    (fun (v1, d1) (v2, d2) -> if d1 <> d2 then compare d1 d2 else compare v1 v2)
    sorted;
  { source = res.source; dist = res.dist; sorted }

let source t = t.source

let reachable t = Array.length t.sorted

(* Rightmost index with distance <= r, plus one. *)
let count_le t r =
  let lo = ref (-1) and hi = ref (Array.length t.sorted) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if snd t.sorted.(mid) <= r then lo := mid else hi := mid
  done;
  !lo + 1

let ball_size t r = count_le t r

let ball t r =
  let k = count_le t r in
  Array.init k (fun i -> fst t.sorted.(i))

let kth_distance t m =
  if m < 1 || m > reachable t then invalid_arg "Ball.kth_distance";
  snd t.sorted.(m - 1)

let closest t m =
  let k = min m (reachable t) in
  Array.init k (fun i -> fst t.sorted.(i))

let closest_in t m pred =
  let out = ref [] in
  let found = ref 0 in
  let n = Array.length t.sorted in
  let i = ref 0 in
  while !found < m && !i < n do
    let v, _ = t.sorted.(!i) in
    if pred v then begin
      out := v :: !out;
      incr found
    end;
    incr i
  done;
  Array.of_list (List.rev !out)

let distance t v = t.dist.(v)

let by_rank t = t.sorted
