(** Single-source shortest paths (Dijkstra) and shortest-path trees.

    This is the [T(u)] primitive of the paper: a minimum-cost-path
    spanning tree rooted at a node, plus the distance function [d(u, ·)].
    Ties are broken lexicographically by node index, matching the paper's
    lexicographic tie-breaking convention so that constructions are
    deterministic. *)

type result = {
  source : int;
  dist : float array;  (** [dist.(v)] = d(source, v); [infinity] if unreachable *)
  parent : int array;  (** predecessor on a shortest path; -1 for source/unreachable *)
  parent_port : int array;
      (** port at [v] leading to [parent.(v)]; -1 when parent is -1 *)
}

val run : Graph.t -> int -> result
(** Full Dijkstra from a source. *)

val run_bounded : Graph.t -> int -> float -> result
(** [run_bounded g s r] explores only nodes at distance [<= r] (others
    keep [infinity] / parent -1).  Cost proportional to the ball size. *)

val run_restricted :
  Graph.t -> allowed:(int -> bool) -> ?max_edge:float -> ?bound:float -> int -> result
(** Dijkstra in the subgraph induced by [allowed] nodes, optionally
    ignoring edges heavier than [max_edge] and/or stopping at distance
    [bound].  The source must be allowed. *)

val path_to : result -> int -> int list
(** Node sequence from the source to a target along the tree (inclusive).
    @raise Not_found if the target is unreachable. *)

val bellman_ford : Graph.t -> int -> float array
(** Reference SSSP (O(nm)) used only by tests to cross-check Dijkstra. *)

val eccentricity : result -> float
(** Largest finite distance in the result. *)
