(** Disjoint-set forest with union by rank and path compression.

    Used by generators (to guarantee connectivity) and by the sparse-cover
    construction (to assemble clusters from ball layers). *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merges the two sets; returns [false] if they were already merged. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets remaining. *)
