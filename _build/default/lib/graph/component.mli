(** Connected components (ignoring weights). *)

val components : Graph.t -> int array
(** [components g] maps each node to a component id in
    [0 .. count-1]; ids are assigned in order of smallest member. *)

val count : Graph.t -> int

val is_connected : Graph.t -> bool

val largest : Graph.t -> int array
(** Node indexes of the largest component (smallest id wins ties),
    sorted ascending. *)
