let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  let stack = Stack.create () in
  for s = 0 to n - 1 do
    if comp.(s) < 0 then begin
      let id = !next in
      incr next;
      Stack.push s stack;
      comp.(s) <- id;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        Array.iter
          (fun (v, _) ->
            if comp.(v) < 0 then begin
              comp.(v) <- id;
              Stack.push v stack
            end)
          (Graph.neighbors g u)
      done
    end
  done;
  comp

let count g =
  let comp = components g in
  1 + Array.fold_left max (-1) comp

let is_connected g = Graph.n g = 0 || count g = 1

let largest g =
  let comp = components g in
  let k = 1 + Array.fold_left max (-1) comp in
  if k <= 0 then [||]
  else begin
    let sizes = Array.make k 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
    let best = ref 0 in
    for c = 1 to k - 1 do
      if sizes.(c) > sizes.(!best) then best := c
    done;
    let out = ref [] in
    for v = Array.length comp - 1 downto 0 do
      if comp.(v) = !best then out := v :: !out
    done;
    Array.of_list !out
  end
