lib/graph/graph.ml: Array Cr_util Hashtbl List
