lib/graph/apsp.ml: Array Atomic Ball Dijkstra Domain Graph
