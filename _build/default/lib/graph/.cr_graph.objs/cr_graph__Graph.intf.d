lib/graph/graph.mli: Cr_util
