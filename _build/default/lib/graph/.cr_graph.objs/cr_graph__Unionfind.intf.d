lib/graph/unionfind.mli:
