lib/graph/apsp.mli: Ball Dijkstra Graph
