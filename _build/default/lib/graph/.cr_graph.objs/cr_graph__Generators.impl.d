lib/graph/generators.ml: Array Component Cr_util Float Graph Hashtbl List Unionfind
