lib/graph/generators.mli: Cr_util Graph
