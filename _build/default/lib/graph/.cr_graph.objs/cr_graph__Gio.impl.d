lib/graph/gio.ml: Array Buffer Fun Graph List Printf String
