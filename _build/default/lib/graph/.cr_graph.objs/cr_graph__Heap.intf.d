lib/graph/heap.mli:
