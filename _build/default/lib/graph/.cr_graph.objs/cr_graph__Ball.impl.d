lib/graph/ball.ml: Array Dijkstra List
