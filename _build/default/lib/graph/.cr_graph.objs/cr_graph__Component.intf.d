lib/graph/component.mli: Graph
