lib/graph/component.ml: Array Graph Stack
