lib/graph/ball.mli: Dijkstra
