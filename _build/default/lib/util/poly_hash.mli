(** Carter–Wegman polynomial hash families [11] — genuinely [t]-wise
    independent hashing.

    Lemma 4 requires a [Θ(log n)]-wise independent hash of
    [Θ(log² n)] bits.  {!Cr_util.Digit_hash} uses a fast mixing hash in
    the hot path; this module provides the {e reference} construction —
    a random polynomial of degree [t − 1] over the Mersenne-prime field
    [GF(2^61 − 1)], reduced to the target range — so that the
    independence assumption itself can be validated (and the two can be
    compared in tests).

    For distinct inputs [x₁ … x_t], the values [h(x₁) … h(x_t)] are
    independent and uniform over the field (exactly), hence near-uniform
    over the reduced range. *)

type t

val make : seed:int -> degree:int -> range:int -> t
(** [make ~seed ~degree ~range] draws a uniformly random polynomial of
    the given degree (so the family is [degree + 1]-wise independent)
    with outputs in [\[0, range)].
    @raise Invalid_argument if [degree < 0] or [range < 1]. *)

val hash : t -> int -> int
(** Evaluate at a nonnegative input. *)

val degree : t -> int

val range : t -> int

val independence : t -> int
(** [degree + 1] — the [t] of [t]-wise independence. *)

val storage_bits : t -> int
(** [61 · (degree + 1)] bits of coefficients — the [Θ(log² n)] figure of
    the paper when [degree = Θ(log n)]. *)
