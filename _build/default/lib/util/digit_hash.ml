type t = { seed : int64; sigma : int; digits : int }

let create ~seed ~sigma ~digits =
  assert (sigma >= 1);
  assert (digits >= 1);
  (* Pre-mix the seed so that nearby seeds give unrelated hash functions. *)
  let mixed =
    let z = Int64.of_int seed in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
    Int64.logxor z (Int64.shift_right_logical z 29)
  in
  { seed = mixed; sigma; digits }

let sigma t = t.sigma

let digits t = t.digits

(* One 64-bit avalanche per (id, digit index): statistically far stronger
   than the Θ(log n)-wise independence the analysis needs. *)
let raw t id i =
  let z = Int64.add t.seed (Int64.of_int ((id * 0x1000193) + i)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let digit t id i =
  let r = Int64.to_int (Int64.shift_right_logical (raw t id i) 3) in
  r mod t.sigma

let hash t id = Array.init t.digits (fun i -> digit t id i)

let prefix_matches t id prefix j =
  let rec go i = i >= j || (digit t id i = prefix.(i) && go (i + 1)) in
  go 0

let storage_bits ~n =
  let lg = Bits.bits_for n in
  lg * lg
