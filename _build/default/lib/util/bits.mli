(** Bit-size bookkeeping for routing-table storage accounting.

    The paper states all bounds in bits ([O(k² n^{1/k} log³ n)]-bit tables,
    Theorem 1).  Every scheme in this library charges its stored state
    through these helpers so that space measurements are consistent and
    auditable. *)

val bits_for : int -> int
(** [bits_for m] is the number of bits needed to address [m] distinct
    values, i.e. [ceil(log2 m)], with [bits_for 0 = 0] and
    [bits_for 1 = 1]. *)

val id_bits : n:int -> int
(** Bits for one node identifier in an [n]-node network. *)

val port_bits : degree:int -> int
(** Bits for one port number at a node of the given degree. *)

val distance_bits : int
(** Bits charged per stored distance value (a fixed-width float). *)

val level_bits : k:int -> int
(** Bits for one level index in [\{0..k\}]. *)

val range_bits : int
(** Bits for one range exponent [a(u,i)] (an integer [<= ceil(log2 Δ)];
    charged as a fixed 16-bit field, which covers Δ up to [2^65535]). *)

val ceil_log2 : int -> int
(** [ceil_log2 m] = [ceil(log2 m)] for [m >= 1]. *)

val ceil_pow : float -> float -> int
(** [ceil_pow x e] = [ceil(x ** e)] as an int, for nonnegative [x]. *)
