lib/util/stats.mli:
