lib/util/rng.mli:
