lib/util/poly_hash.ml: Array Int64 Rng
