lib/util/poly_hash.mli:
