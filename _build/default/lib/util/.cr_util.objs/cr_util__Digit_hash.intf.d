lib/util/digit_hash.mli:
