lib/util/bits.mli:
