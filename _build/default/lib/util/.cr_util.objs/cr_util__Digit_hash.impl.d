lib/util/digit_hash.ml: Array Bits Int64
