(** Seeded hashing of node identifiers into digit strings over a small
    alphabet.

    Lemma 4 of the paper gives every tree node a third name [h(v) ∈ Σ^k]
    where [Σ = {0, …, n^{1/k} − 1}], produced by a [Θ(log n)]-wise
    independent hash of [Θ(log² n)] bits.  This module provides the
    equivalent object: a seeded mixing hash mapping an arbitrary integer
    identifier to a [k]-digit string over an alphabet of size [sigma].
    The storage charged per instance matches the paper's
    [Θ(log² n)]-bit figure (see {!storage_bits}). *)

type t
(** An immutable hash-function instance. *)

val create : seed:int -> sigma:int -> digits:int -> t
(** [create ~seed ~sigma ~digits] builds a hash with [digits] output
    digits, each in [\[0, sigma)].  [sigma >= 1], [digits >= 1]. *)

val sigma : t -> int

val digits : t -> int

val hash : t -> int -> int array
(** [hash t id] is the full digit string of [id]; its length is
    [digits t].  Deterministic per instance. *)

val digit : t -> int -> int -> int
(** [digit t id i] is digit [i] (0-based) of [hash t id], computed without
    allocating the full string. *)

val prefix_matches : t -> int -> int array -> int -> bool
(** [prefix_matches t id prefix j] tests whether the first [j] digits of
    [hash t id] equal [prefix.(0..j-1)]. *)

val storage_bits : n:int -> int
(** Bits charged for storing one hash instance at a node in an [n]-node
    network: [Θ(log² n)] per the Carter–Wegman construction the paper
    cites. *)
