type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (bits64 t) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t m n =
  assert (m <= n && m >= 0);
  if 2 * m >= n then begin
    let all = Array.init n (fun i -> i) in
    shuffle t all;
    Array.sub all 0 m
  end else begin
    (* Floyd's algorithm: O(m) expected draws. *)
    let seen = Hashtbl.create (2 * m) in
    let out = Array.make m 0 in
    for idx = 0 to m - 1 do
      let j = n - m + idx in
      let v = int t (j + 1) in
      let pick = if Hashtbl.mem seen v then j else v in
      Hashtbl.replace seen pick ();
      out.(idx) <- pick
    done;
    shuffle t out;
    out
  end
