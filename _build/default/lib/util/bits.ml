let ceil_log2 m =
  assert (m >= 1);
  let rec go acc v = if v >= m then acc else go (acc + 1) (v * 2) in
  go 0 1

let bits_for m = if m <= 0 then 0 else if m = 1 then 1 else ceil_log2 m

let id_bits ~n = bits_for n

let port_bits ~degree = bits_for (max 1 degree)

let distance_bits = 32

let level_bits ~k = bits_for (k + 1)

let range_bits = 16

let ceil_pow x e = int_of_float (Float.ceil (x ** e))
