(* Arithmetic over GF(p) with p = 2^61 - 1 (Mersenne).  All values fit in
   OCaml's 63-bit native ints; products are reduced with the identity
   2^61 ≡ 1 (mod p). *)

let p = 0x1FFF_FFFF_FFFF_FFFF (* 2^61 - 1 *)

(* x ≡ (x land p) + (x lsr 61) (mod p), for any 0 <= x < 2^63. *)
let fold x =
  let r = (x land p) + (x lsr 61) in
  if r >= p then r - p else r

(* (x * 2^31) mod p, for 0 <= x < 2^62. *)
let shift31 x =
  let x = fold x in
  (* x = x_hi*2^30 + x_lo, so x*2^31 = x_hi*2^61 + x_lo*2^31 ≡ x_hi + x_lo*2^31 *)
  fold (((x land 0x3FFF_FFFF) lsl 31) + (x lsr 30))

(* (a * b) mod p by 31-bit splitting: every intermediate product < 2^62. *)
let mulmod a b =
  let a = a mod p and b = b mod p in
  let a_hi = a lsr 31 and a_lo = a land 0x7FFF_FFFF in
  let b_hi = b lsr 31 and b_lo = b land 0x7FFF_FFFF in
  let low = fold (a_lo * b_lo) in
  let mid = shift31 (fold (a_hi * b_lo) + fold (a_lo * b_hi)) in
  (* a_hi*b_hi carries 2^62 ≡ 2 (mod p) *)
  let high = fold (2 * fold (a_hi * b_hi)) in
  fold (low + mid + high)

type t = { coeffs : int array; range : int }

let make ~seed ~degree ~range =
  if degree < 0 then invalid_arg "Poly_hash.make: negative degree";
  if range < 1 then invalid_arg "Poly_hash.make: range < 1";
  let rng = Rng.create seed in
  let coeffs =
    Array.init (degree + 1) (fun _ ->
        (* uniform in [0, p) via rejection on 61 random bits *)
        let rec draw () =
          let r = Int64.to_int (Int64.shift_right_logical (Rng.bits64 rng) 3) in
          if r < p then r else draw ()
        in
        draw ())
  in
  { coeffs; range }

let hash t x =
  if x < 0 then invalid_arg "Poly_hash.hash: negative input";
  let x = x mod p in
  (* Horner evaluation *)
  let acc = ref 0 in
  for i = Array.length t.coeffs - 1 downto 0 do
    acc := (mulmod !acc x + t.coeffs.(i)) mod p
  done;
  !acc mod t.range

let degree t = Array.length t.coeffs - 1

let range t = t.range

let independence t = Array.length t.coeffs

let storage_bits t = 61 * Array.length t.coeffs
