(** Fixed-width ASCII table rendering for experiment reports.

    The bench harness prints each reproduced table/figure as an aligned
    text table; this module does the layout. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Appends a data row.  Rows shorter than the header are padded with
    empty cells; longer rows raise [Invalid_argument]. *)

val add_sep : t -> unit
(** Appends a horizontal separator row. *)

val render : t -> string
(** Renders the table, headers, separators and all, as a string ending in
    a newline. *)

val print : t -> unit
(** [render] to stdout. *)

val fmt_float : ?dec:int -> float -> string
(** Fixed-decimal float formatting helper (default 2 decimals). *)

val fmt_int : int -> string

val fmt_bits : int -> string
(** Human-readable bit count, e.g. ["12.4 Kbit"]. *)
