(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG (splitmix64) used everywhere in the
    library instead of [Stdlib.Random], so that every construction —
    landmark sampling, hash tables, graph generation — is reproducible
    from a single seed.  This stands in for the de-randomization via
    conditional probabilities used in the paper (§2.3): a fixed seed gives
    a fixed scheme, and the probabilistic claims are checked empirically. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    remainder of [t]'s stream; [t] is advanced. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t m n] draws [m] distinct values from
    [\[0, n)], in random order.  Requires [m <= n]. *)
