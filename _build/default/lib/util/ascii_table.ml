type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let ncols t = List.length t.headers

let add_row t cells =
  let n = ncols t in
  let len = List.length cells in
  if len > n then invalid_arg "Ascii_table.add_row: too many cells";
  let padded = if len < n then cells @ List.init (n - len) (fun _ -> "") else cells in
  t.rows <- Cells padded :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  List.iter (function Cells c -> update c | Sep -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let sep_line () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let align = List.nth t.aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad align widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  sep_line ();
  emit_cells t.headers;
  sep_line ();
  List.iter (function Cells c -> emit_cells c | Sep -> sep_line ()) rows;
  sep_line ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(dec = 2) x = Printf.sprintf "%.*f" dec x

let fmt_int = string_of_int

let fmt_bits b =
  let f = float_of_int b in
  if f >= 1_048_576.0 then Printf.sprintf "%.2f Mbit" (f /. 1_048_576.0)
  else if f >= 1024.0 then Printf.sprintf "%.2f Kbit" (f /. 1024.0)
  else Printf.sprintf "%d bit" b
