module Rng = Cr_util.Rng
module Ball = Cr_graph.Ball

type t = {
  n : int;
  k : int;
  rank : int array; (* rank.(v) = max j with v in C_j, in 0..k-1 *)
}

let build ~seed ~n ~k =
  if k < 1 then invalid_arg "Landmarks.build: k < 1";
  if n < 1 then invalid_arg "Landmarks.build: n < 1";
  let rng = Rng.create seed in
  let rank = Array.make n 0 in
  if k > 1 then begin
    let p = (float_of_int n /. Float.log (float_of_int (max 3 n))) ** (-1.0 /. float_of_int k) in
    for v = 0 to n - 1 do
      (* survive into C_1, C_2, ... independently with probability p each *)
      let rec climb j = if j < k - 1 && Rng.bernoulli rng p then climb (j + 1) else j in
      rank.(v) <- climb 0
    done
  end;
  { n; k; rank }

let n t = t.n

let k t = t.k

let rank t v = t.rank.(v)

let in_level t v j = j = 0 || (j < t.k && t.rank.(v) >= j)

let level t j =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if in_level t v j then acc := v :: !acc
  done;
  Array.of_list !acc

let level_size t j =
  let c = ref 0 in
  for v = 0 to t.n - 1 do
    if in_level t v j then incr c
  done;
  !c

let nearby t ball ~level ~cap = Ball.closest_in ball cap (fun v -> in_level t v level)

let highest_rank_in t members =
  Array.fold_left (fun acc v -> max acc t.rank.(v)) (-1) members

let center_in t ball ~radius =
  let members = Ball.ball ball radius in
  if Array.length members = 0 then None
  else begin
    let m = highest_rank_in t members in
    (* members are sorted by distance, so the first with rank >= m is the
       closest highest-rank landmark *)
    let rec find i =
      if i >= Array.length members then None
      else if t.rank.(members.(i)) >= m then Some members.(i)
      else find (i + 1)
    in
    find 0
  end

let lnn t = Float.log (float_of_int (max 3 t.n))

let claim1_threshold t j =
  let fk = float_of_int t.k and fj = float_of_int j in
  let fn = float_of_int t.n in
  4.0 *. (lnn t ** ((fk -. fj) /. fk)) *. (fn ** (fj /. fk))

let claim2_size_limit t j =
  let fk = float_of_int t.k and fj = float_of_int j in
  let fn = float_of_int t.n in
  4.0 *. (lnn t ** ((fk -. (fj +. 1.0)) /. fk)) *. (fn ** ((fj +. 2.0) /. fk))

let claim2_count_limit t =
  let fn = float_of_int t.n in
  16.0 *. (fn ** (2.0 /. float_of_int t.k)) *. lnn t

let check_claim1 t members j =
  if float_of_int (Array.length members) < claim1_threshold t j then true
  else Array.exists (fun v -> in_level t v j) members

let check_claim2 t members j =
  if float_of_int (Array.length members) >= claim2_size_limit t j then true
  else begin
    let count = Array.fold_left (fun acc v -> if in_level t v j then acc + 1 else acc) 0 members in
    float_of_int count <= claim2_count_limit t
  end
