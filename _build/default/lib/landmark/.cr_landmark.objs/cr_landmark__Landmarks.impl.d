lib/landmark/landmarks.ml: Array Cr_graph Cr_util Float
