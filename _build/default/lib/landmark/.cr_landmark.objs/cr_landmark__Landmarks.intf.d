lib/landmark/landmarks.mli: Cr_graph
