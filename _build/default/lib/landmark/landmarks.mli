(** The landmark hierarchy of §2.3: nested sets
    [V = C₀ ⊇ C₁ ⊇ … ⊇ C_k = ∅].

    Each element of [C_{j-1}] survives into [C_j] independently with
    probability [(n / ln n)^{−1/k}] (seeded, hence reproducible — our
    stand-in for the paper's de-randomization).  A node's {e rank} is the
    largest [j] with [x ∈ C_j].

    Claims 1 and 2 of the paper say: (1) every ball of at least
    [4(ln n)^{(k−j)/k} n^{j/k}] nodes hits [C_j]; (2) every ball of fewer
    than [4(ln n)^{(k−(j+1))/k} n^{(j+2)/k}] nodes contains at most
    [16 n^{2/k} ln n] elements of [C_j].  {!check_claim1} and
    {!check_claim2} evaluate them on concrete balls for the T6
    experiment. *)

type t

val build : seed:int -> n:int -> k:int -> t
(** Sample the hierarchy over nodes [0 .. n-1].
    @raise Invalid_argument if [k < 1] or [n < 1]. *)

val n : t -> int

val k : t -> int

val rank : t -> int -> int
(** Rank of a node, in [0 .. k-1]. *)

val in_level : t -> int -> int -> bool
(** [in_level t v j] = [v ∈ C_j].  [C_0] is everything; [C_k] is empty. *)

val level : t -> int -> int array
(** Members of [C_j], ascending.  [level t 0] is all nodes. *)

val level_size : t -> int -> int

val nearby : t -> Cr_graph.Ball.t -> level:int -> cap:int -> int array
(** [nearby t ball ~level ~cap] = [N(u, cap, C_level)]: the up-to-[cap]
    closest level-[level] landmarks to the ball's source — the [S(u,i)]
    sets of the paper (with [cap] supplied by the caller's parameters). *)

val highest_rank_in : t -> int array -> int
(** Largest rank present among the given nodes — [m(u,i)] for a
    neighborhood ball given as its member array; -1 on an empty array. *)

val center_in : t -> Cr_graph.Ball.t -> radius:float -> int option
(** [center_in t ball ~radius] is the closest node to the source among
    the highest-rank landmarks within the radius — the [c(u,i)] of §2.3.
    [None] when the ball is empty. *)

val claim1_threshold : t -> int -> float
(** [4 (ln n)^{(k−j)/k} n^{j/k}] — the ball-size threshold of Claim 1. *)

val claim2_size_limit : t -> int -> float
(** [4 (ln n)^{(k−(j+1))/k} n^{(j+2)/k}] — the ball-size precondition of
    Claim 2. *)

val claim2_count_limit : t -> float
(** [16 n^{2/k} ln n] — the landmark-count bound of Claim 2. *)

val check_claim1 : t -> int array -> int -> bool
(** [check_claim1 t ball_members j]: vacuously true when the ball is
    below the Claim 1 threshold; otherwise true iff the ball intersects
    [C_j]. *)

val check_claim2 : t -> int array -> int -> bool
(** [check_claim2 t ball_members j]: vacuously true when the ball is at
    least the Claim 2 size limit; otherwise true iff it holds at most
    [16 n^{2/k} ln n] rank-[≥ j] landmarks of level [j]. *)
