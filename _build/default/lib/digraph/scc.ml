(* Iterative Tarjan to survive deep graphs. *)
let components g =
  let n = Digraph.n g in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* explicit DFS frames: (node, next out-neighbor position) *)
  let frames = Stack.create () in
  for s = 0 to n - 1 do
    if index.(s) < 0 then begin
      Stack.push (s, ref 0) frames;
      index.(s) <- !next_index;
      low.(s) <- !next_index;
      incr next_index;
      Stack.push s stack;
      on_stack.(s) <- true;
      while not (Stack.is_empty frames) do
        let v, pos = Stack.top frames in
        let out = Digraph.out_neighbors g v in
        if !pos < Array.length out then begin
          let w, _ = out.(!pos) in
          incr pos;
          if index.(w) < 0 then begin
            index.(w) <- !next_index;
            low.(w) <- !next_index;
            incr next_index;
            Stack.push w stack;
            on_stack.(w) <- true;
            Stack.push (w, ref 0) frames
          end
          else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
        end
        else begin
          ignore (Stack.pop frames);
          if not (Stack.is_empty frames) then begin
            let p, _ = Stack.top frames in
            low.(p) <- min low.(p) low.(v)
          end;
          if low.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              comp.(w) <- !next_comp;
              if w = v then continue := false
            done;
            incr next_comp
          end
        end
      done
    end
  done;
  comp

let count g =
  let comp = components g in
  1 + Array.fold_left max (-1) comp

let is_strongly_connected g = Digraph.n g = 0 || count g = 1

let largest g =
  let comp = components g in
  let k = 1 + Array.fold_left max (-1) comp in
  if k <= 0 then [||]
  else begin
    let sizes = Array.make k 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
    let best = ref 0 in
    for c = 1 to k - 1 do
      if sizes.(c) > sizes.(!best) then best := c
    done;
    let acc = ref [] in
    for v = Array.length comp - 1 downto 0 do
      if comp.(v) = !best then acc := v :: !acc
    done;
    Array.of_list !acc
  end
