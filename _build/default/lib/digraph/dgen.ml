module Rng = Cr_util.Rng

let directed_ring rng ~n ~chords =
  if n < 2 then invalid_arg "directed_ring: n < 2";
  let arcs = ref [] in
  for u = 0 to n - 1 do
    arcs := (u, (u + 1) mod n, 1.0) :: !arcs
  done;
  let added = ref 0 and guard = ref 0 in
  while !added < chords && !guard < 100 * (chords + 1) do
    incr guard;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && (u + 1) mod n <> v then begin
      arcs := (u, v, 1.0) :: !arcs;
      incr added
    end
  done;
  Digraph.create ~n !arcs

let directed_erdos_renyi rng ~n ~avg_out_degree =
  if n < 2 then invalid_arg "directed_erdos_renyi: n < 2";
  let p = avg_out_degree /. float_of_int (n - 1) in
  let arcs = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Rng.bernoulli rng p then arcs := (u, v, 1.0 +. Rng.float rng 1.0) :: !arcs
    done
  done;
  (* strong-connectivity backbone *)
  for u = 0 to n - 1 do
    arcs := (u, (u + 1) mod n, 1.5) :: !arcs
  done;
  Digraph.create ~n !arcs

let asymmetric_of_graph rng ug ~skew =
  if skew < 1.0 then invalid_arg "asymmetric_of_graph: skew < 1";
  let arcs = ref [] in
  Cr_graph.Graph.iter_edges ug (fun u v w ->
      let f = 1.0 +. Rng.float rng (skew -. 1.0) in
      arcs := (u, v, w *. f) :: (v, u, w /. f) :: !arcs);
  Digraph.create
    ~names:(Array.init (Cr_graph.Graph.n ug) (Cr_graph.Graph.name_of ug))
    ~n:(Cr_graph.Graph.n ug) !arcs
