(** Strongly connected components (Tarjan). *)

val components : Digraph.t -> int array
(** Maps each node to an SCC id; ids are assigned in reverse topological
    order of the condensation (Tarjan's completion order). *)

val count : Digraph.t -> int

val is_strongly_connected : Digraph.t -> bool

val largest : Digraph.t -> int array
(** Node set of a largest SCC, ascending. *)
