exception Invalid_walk of string

let walk_cost g walk =
  match walk with
  | [] -> raise (Invalid_walk "empty walk")
  | _ ->
      let rec go cost hops = function
        | a :: (b :: _ as rest) -> (
            match Digraph.arc_weight g a b with
            | Some w -> go (cost +. w) (hops + 1) rest
            | None -> raise (Invalid_walk (Printf.sprintf "missing arc %d->%d" a b)))
        | _ -> (cost, hops)
      in
      go 0.0 0 walk

type measured = {
  delivered : bool;
  cost : float;
  hops : int;
  stretch : float;
  rt_stretch : float;
}

let measure rt scheme src dst =
  let g = Rt.digraph rt in
  let r = Dscheme.route scheme src dst in
  (match r.Dscheme.walk with
  | first :: _ when first = src -> ()
  | _ -> raise (Invalid_walk "walk does not start at the source"));
  if r.Dscheme.delivered then begin
    match List.rev r.Dscheme.walk with
    | last :: _ when last = dst -> ()
    | _ -> raise (Invalid_walk "claimed delivery but wrong endpoint")
  end;
  let cost, hops = walk_cost g r.Dscheme.walk in
  let d = Rt.dist rt src dst in
  let drt = Rt.rt rt src dst in
  let ratio denom = if (not r.Dscheme.delivered) || src = dst then 1.0 else cost /. denom in
  {
    delivered = r.Dscheme.delivered;
    cost;
    hops;
    stretch = (if r.Dscheme.delivered then ratio d else infinity);
    rt_stretch = (if r.Dscheme.delivered then ratio drt else infinity);
  }
