(** Directed walk validation and measurement (the digraph referee). *)

exception Invalid_walk of string

val walk_cost : Digraph.t -> int list -> float * int
(** Cost and hop count; every consecutive pair must be an arc in walk
    order.  @raise Invalid_walk otherwise. *)

type measured = {
  delivered : bool;
  cost : float;
  hops : int;
  stretch : float;  (** vs the one-way distance d(src, dst) *)
  rt_stretch : float;  (** vs the round-trip distance dRT(src, dst) *)
}

val measure : Rt.t -> Dscheme.t -> int -> int -> measured
(** Routes and validates; checks endpoint correctness on delivery. *)
