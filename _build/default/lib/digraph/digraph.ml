type t = {
  n : int;
  m : int;
  out_adj : (int * float) array array;
  in_adj : (int * float) array array;
  names : int array;
}

let create ?names ~n arcs =
  if n < 0 then invalid_arg "Digraph.create: negative n";
  let names =
    match names with
    | None -> Array.init n (fun i -> i)
    | Some a ->
        if Array.length a <> n then invalid_arg "Digraph.create: names length mismatch";
        Array.copy a
  in
  let tbl = Hashtbl.create (2 * List.length arcs) in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Digraph.create: node out of range";
      if u = v then invalid_arg "Digraph.create: self-loop";
      if not (w > 0.0) then invalid_arg "Digraph.create: non-positive weight";
      match Hashtbl.find_opt tbl (u, v) with
      | Some w' when w' <= w -> ()
      | _ -> Hashtbl.replace tbl (u, v) w)
    arcs;
  let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) _ ->
      out_deg.(u) <- out_deg.(u) + 1;
      in_deg.(v) <- in_deg.(v) + 1)
    tbl;
  let out_adj = Array.init n (fun u -> Array.make out_deg.(u) (0, 0.0)) in
  let in_adj = Array.init n (fun v -> Array.make in_deg.(v) (0, 0.0)) in
  let of_ = Array.make n 0 and if_ = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) w ->
      out_adj.(u).(of_.(u)) <- (v, w);
      of_.(u) <- of_.(u) + 1;
      in_adj.(v).(if_.(v)) <- (u, w);
      if_.(v) <- if_.(v) + 1)
    tbl;
  let sort = Array.sort (fun (a, _) (b, _) -> compare a b) in
  Array.iter sort out_adj;
  Array.iter sort in_adj;
  { n; m = Hashtbl.length tbl; out_adj; in_adj; names }

let n g = g.n

let m g = g.m

let out_neighbors g u = g.out_adj.(u)

let in_neighbors g v = g.in_adj.(v)

let out_degree g u = Array.length g.out_adj.(u)

let arc_weight g u v =
  let a = g.out_adj.(u) in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let res = ref None in
  while !res = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x, w = a.(mid) in
    if x = v then res := Some w else if x < v then lo := mid + 1 else hi := mid - 1
  done;
  !res

let has_arc g u v = arc_weight g u v <> None

let name_of g u = g.names.(u)

let reverse g =
  { g with out_adj = g.in_adj; in_adj = g.out_adj }

let of_graph ug =
  let arcs = ref [] in
  Cr_graph.Graph.iter_edges ug (fun u v w ->
      arcs := (u, v, w) :: (v, u, w) :: !arcs);
  create
    ~names:(Array.init (Cr_graph.Graph.n ug) (Cr_graph.Graph.name_of ug))
    ~n:(Cr_graph.Graph.n ug) !arcs

let relabel rng g =
  let space = max 16 (16 * g.n) in
  let fresh = Cr_util.Rng.sample_without_replacement rng g.n space in
  { g with names = fresh }

let fold_weights f init g =
  let acc = ref init in
  Array.iter (fun a -> Array.iter (fun (_, w) -> acc := f !acc w) a) g.out_adj;
  !acc

let min_weight g = fold_weights min infinity g

let normalize g =
  let wmin = min_weight g in
  if g.m = 0 || wmin = 1.0 then g
  else begin
    let scale arr = Array.map (Array.map (fun (v, w) -> (v, w /. wmin))) arr in
    { g with out_adj = scale g.out_adj; in_adj = scale g.in_adj }
  end
