lib/digraph/ddijkstra.mli: Digraph
