lib/digraph/rt.ml: Array Ddijkstra Digraph List
