lib/digraph/rt.mli: Ddijkstra Digraph
