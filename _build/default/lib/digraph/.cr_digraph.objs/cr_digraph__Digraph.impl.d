lib/digraph/digraph.ml: Array Cr_graph Cr_util Hashtbl List
