lib/digraph/dsim.ml: Digraph Dscheme List Printf Rt
