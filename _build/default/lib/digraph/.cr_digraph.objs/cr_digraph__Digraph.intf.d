lib/digraph/digraph.mli: Cr_graph Cr_util
