lib/digraph/dgen.mli: Cr_graph Cr_util Digraph
