lib/digraph/scc.ml: Array Digraph Stack
