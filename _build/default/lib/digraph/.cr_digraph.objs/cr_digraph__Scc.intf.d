lib/digraph/scc.mli: Digraph
