lib/digraph/dscheme.mli: Rt
