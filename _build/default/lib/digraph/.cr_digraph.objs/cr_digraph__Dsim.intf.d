lib/digraph/dsim.mli: Digraph Dscheme Rt
