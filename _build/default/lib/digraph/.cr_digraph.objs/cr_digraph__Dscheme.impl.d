lib/digraph/dscheme.ml: Array Cr_landmark Cr_util Ddijkstra Digraph Float Hashtbl Int64 List Rt
