lib/digraph/ddijkstra.ml: Array Cr_graph Digraph List
