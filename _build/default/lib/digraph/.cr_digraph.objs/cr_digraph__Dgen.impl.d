lib/digraph/dgen.ml: Array Cr_graph Cr_util Digraph
