type t = {
  g : Digraph.t;
  fwd : Ddijkstra.result array;
  sorted : (int * float) array option array;
}

let compute g =
  let n = Digraph.n g in
  { g; fwd = Array.init n (fun s -> Ddijkstra.run g s); sorted = Array.make n None }

let digraph t = t.g

let dist t u v = t.fwd.(u).Ddijkstra.dist.(v)

let rt t u v = dist t u v +. dist t v u

let forward t u = t.fwd.(u)

let rt_sorted t u =
  match t.sorted.(u) with
  | Some s -> s
  | None ->
      let n = Digraph.n t.g in
      let acc = ref [] in
      for v = n - 1 downto 0 do
        let d = rt t u v in
        if d < infinity then acc := (v, d) :: !acc
      done;
      let s = Array.of_list !acc in
      Array.sort (fun (v1, d1) (v2, d2) -> if d1 <> d2 then compare d1 d2 else compare v1 v2) s;
      t.sorted.(u) <- Some s;
      s

let count_le sorted r =
  let lo = ref (-1) and hi = ref (Array.length sorted) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if snd sorted.(mid) <= r then lo := mid else hi := mid
  done;
  !lo + 1

let rt_ball t u r =
  let s = rt_sorted t u in
  Array.init (count_le s r) (fun i -> fst s.(i))

let rt_ball_size t u r = count_le (rt_sorted t u) r

let rt_closest_in t u m pred =
  let s = rt_sorted t u in
  let out = ref [] and found = ref 0 and i = ref 0 in
  while !found < m && !i < Array.length s do
    let v, _ = s.(!i) in
    if pred v then begin
      out := v :: !out;
      incr found
    end;
    incr i
  done;
  Array.of_list (List.rev !out)

let rt_diameter t =
  let n = Digraph.n t.g in
  let best = ref 0.0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = rt t u v in
      if d < infinity && d > !best then best := d
    done
  done;
  !best

let strongly_connected t =
  let n = Digraph.n t.g in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if t.fwd.(u).Ddijkstra.dist.(v) = infinity then ok := false
    done
  done;
  !ok
