(** Directed workload generators.  All results are strongly connected. *)

val directed_ring : Cr_util.Rng.t -> n:int -> chords:int -> Digraph.t
(** One-way ring plus random one-way chords of weight 1 — the minimal
    strongly connected network with badly asymmetric distances. *)

val directed_erdos_renyi : Cr_util.Rng.t -> n:int -> avg_out_degree:float -> Digraph.t
(** Random arcs with i.i.d. weights in [\[1, 2\]]; a one-way ring is added
    to guarantee strong connectivity. *)

val asymmetric_of_graph : Cr_util.Rng.t -> Cr_graph.Graph.t -> skew:float -> Digraph.t
(** Turns each undirected edge [{u,v}] of weight [w] into two opposite
    arcs with weights [w·f] and [w/f], [f] uniform in [\[1, skew\]] —
    symmetric topology, asymmetric costs. *)
