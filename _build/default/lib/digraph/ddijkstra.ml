module Heap = Cr_graph.Heap

type result = { source : int; dist : float array; parent : int array }

let run_on neighbors n s =
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create n in
  dist.(s) <- 0.0;
  Heap.insert heap s 0.0;
  while not (Heap.is_empty heap) do
    let u, du = Heap.pop_min heap in
    if not settled.(u) then begin
      settled.(u) <- true;
      Array.iter
        (fun (v, w) ->
          if not settled.(v) then begin
            let dv = du +. w in
            if dv < dist.(v) then begin
              dist.(v) <- dv;
              parent.(v) <- u;
              Heap.insert_or_decrease heap v dv
            end
          end)
        (neighbors u)
    end
  done;
  { source = s; dist; parent }

let run g s = run_on (Digraph.out_neighbors g) (Digraph.n g) s

let run_reverse g s = run_on (Digraph.in_neighbors g) (Digraph.n g) s

let path_from_source res t =
  if res.dist.(t) = infinity then raise Not_found;
  let rec up v acc = if v = res.source then v :: acc else up res.parent.(v) (v :: acc) in
  up t []

let path_to_source res t =
  if res.dist.(t) = infinity then raise Not_found;
  (* reverse-search parents point one step closer to the source *)
  let rec down v acc = if v = res.source then List.rev (v :: acc) else down res.parent.(v) (v :: acc) in
  down t []
