(** All-pairs directed distances and the round-trip metric.

    The standard route to adapting symmetric routing machinery to
    strongly connected digraphs (as the paper's §4 announces) is the
    {e round-trip} metric [dRT(u,v) = d(u,v) + d(v,u)]: it is symmetric,
    satisfies the triangle inequality, and upper-bounds both one-way
    distances, so balls, landmarks and decompositions transfer
    unchanged. *)

type t

val compute : Digraph.t -> t
(** [n] forward Dijkstras. *)

val digraph : t -> Digraph.t

val dist : t -> int -> int -> float
(** One-way [d(u,v)]. *)

val rt : t -> int -> int -> float
(** [dRT(u,v)]; infinite unless both directions connect. *)

val forward : t -> int -> Ddijkstra.result
(** The stored forward search from a node. *)

val rt_sorted : t -> int -> (int * float) array
(** Nodes by (round-trip distance from [u], id), mutually reachable ones
    only; cached. *)

val rt_ball : t -> int -> float -> int array
(** Members of the round-trip ball [BRT(u, r)], in order. *)

val rt_ball_size : t -> int -> float -> int

val rt_closest_in : t -> int -> int -> (int -> bool) -> int array
(** Up to [m] round-trip-closest nodes satisfying the predicate. *)

val rt_diameter : t -> float
(** Largest finite round-trip distance. *)

val strongly_connected : t -> bool
