(** The directed extension of the paper's routing scheme (§4:
    "Our routing scheme can be adopted to work on strongly connected
    directed graphs, this extension will appear in the full paper").

    The full paper never appeared with the construction, so this module
    realizes the natural adaptation (documented in DESIGN.md): run the
    decomposition, landmark hierarchy and phase structure of §2–§3 over
    the {e round-trip} metric [dRT], and replace each center's
    bidirectional tree by an (in-tree, out-tree) pair of shortest-path
    arborescences.  A phase routes [u ⇒ c] on the in-tree, consults the
    hash directory distributed over the center's members (the Lemma 7
    mechanism, with directory hops [c ⇒ d ⇒ c] on the out/in pair), and
    delivers [c ⇒ v] on the out-tree.  All walks follow arc directions;
    the per-phase cost is O(round-trip radius of the phase), giving the
    [O(k)] guarantee with respect to [dRT] — the standard directed
    analogue. *)

type t

type route = {
  walk : int list;  (** a directed walk starting at the source *)
  delivered : bool;
  phases_used : int;
}

val build : ?k:int -> ?seed:int -> ?landmark_cap:int -> Rt.t -> t
(** [k] defaults to 3; [landmark_cap] defaults to [⌈n^{2/k}⌉].
    Requires a strongly connected digraph.
    @raise Invalid_argument otherwise. *)

val route : t -> int -> int -> route
(** Route by destination identifier (looked up through the node index,
    as in the undirected simulator). *)

val node_storage_bits : t -> int -> int

val max_storage_bits : t -> int

val mean_storage_bits : t -> float

val stats_fallback : t -> int
(** Deliveries that needed the global phase so far. *)

val phase_coverage : t -> float
(** Fraction of (node, phase) pairs whose target set [E(u,i)] is fully
    registered at the phase center — the directed analogue of Lemma 3's
    guarantee; 1.0 under generous landmark caps. *)
