(** Directed single-source shortest paths.

    [run] explores forward (out-arcs): [dist.(v) = d(s, v)].
    [run_reverse] explores the transpose: [dist.(v) = d(v, s)] — the
    distances {e toward} the source, whose parent pointers form an
    in-tree whose root-to-leaf paths are legal directed walks into [s]. *)

type result = {
  source : int;
  dist : float array;
  parent : int array;  (** predecessor in the search tree; -1 at source *)
}

val run : Digraph.t -> int -> result

val run_reverse : Digraph.t -> int -> result
(** [dist.(v) = d(v, source)]; [parent.(v)] is the {e next} node on a
    shortest directed walk from [v] to the source. *)

val path_from_source : result -> int -> int list
(** For a forward result: the directed walk source → target.
    @raise Not_found if unreachable. *)

val path_to_source : result -> int -> int list
(** For a reverse result: the directed walk target-argument → source.
    @raise Not_found if unreachable. *)
