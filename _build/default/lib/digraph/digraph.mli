(** Weighted directed graphs — the substrate for the paper's announced
    extension to strongly connected digraphs (§4: "Our routing scheme can
    be adopted to work on strongly connected directed graphs").

    Arcs are stored in both out- and in-adjacency (sorted by endpoint);
    the position of an arc in the out-adjacency of its tail is its port,
    matching the local-forwarding model. *)

type t

val create : ?names:int array -> n:int -> (int * int * float) list -> t
(** [create ~n arcs] builds a digraph from (tail, head, weight) arcs.
    Parallel arcs keep the minimum weight; self-loops are rejected;
    weights must be positive.
    @raise Invalid_argument on malformed input. *)

val n : t -> int

val m : t -> int
(** Number of arcs. *)

val out_neighbors : t -> int -> (int * float) array

val in_neighbors : t -> int -> (int * float) array

val out_degree : t -> int -> int

val arc_weight : t -> int -> int -> float option
(** Weight of the arc [u → v], if present. *)

val has_arc : t -> int -> int -> bool

val name_of : t -> int -> int

val reverse : t -> t
(** The transpose digraph (arcs flipped), sharing names. *)

val of_graph : Cr_graph.Graph.t -> t
(** Every undirected edge becomes two opposite arcs of equal weight. *)

val relabel : Cr_util.Rng.t -> t -> t
(** Fresh random distinct identifiers (the name-independent model). *)

val normalize : t -> t
(** Rescale weights so the minimum arc weight is 1. *)

val min_weight : t -> float
