(* Bench harness: regenerates every table and figure of the evaluation
   (see DESIGN.md section 3 and EXPERIMENTS.md).

     dune exec bench/main.exe            run everything
     dune exec bench/main.exe T3 F1      run selected experiments
     CRT_BENCH_FAST=1 dune exec ...      reduced sizes (CI smoke)

   The paper (SPAA'06) is theory-only; each experiment here validates one
   of its quantitative claims, with expected *shapes* stated in
   EXPERIMENTS.md. *)

module Rng = Cr_util.Rng
module Stats = Cr_util.Stats
module Bits = Cr_util.Bits
module T = Cr_util.Ascii_table
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Ball = Cr_graph.Ball
module Dijkstra = Cr_graph.Dijkstra
module Generators = Cr_graph.Generators
module Tree = Cr_tree.Tree
module Ni = Cr_tree.Ni_tree_routing
module Cover = Cr_cover.Sparse_cover
module Landmarks = Cr_landmark.Landmarks
open Compact_routing

let fast = Sys.getenv_opt "CRT_BENCH_FAST" <> None

let scale n = if fast then max 32 (n / 4) else n

let header title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let agm ?(paper = false) ~k ?(seed = 1) apsp =
  let params = if paper then Params.paper ~k ~seed () else Params.scaled ~k ~seed () in
  Agm06.build ~params apsp

(* ------------------------------------------------------------------ *)
(* T1: stretch and space vs k — the headline trade-off (Theorem 1)     *)

let t1 () =
  header "T1: stretch & space vs k — AGM06 (O(k)) vs ABLP-style (exp worst case)";
  let n = scale 512 in
  let g =
    Experiment.make_graph_with_aspect ~seed:11 ~target_aspect:(2.0 ** 12.0)
      (Experiment.Geometric { n; radius = 0.10 })
  in
  let apsp = Apsp.compute g in
  let pairs = Experiment.default_pairs ~seed:12 apsp ~count:(scale 2000) in
  let table =
    T.create
      ~title:
        (Printf.sprintf "weighted geometric n=%d, %d pairs (scaled constants)" n
           (Array.length pairs))
      [
        ("k", T.Right); ("scheme", T.Left); ("stretch mean", T.Right); ("p99", T.Right);
        ("max", T.Right); ("bits/node mean", T.Right); ("bits/node max", T.Right);
      ]
  in
  List.iter
    (fun k ->
      let schemes =
        [ Agm06.scheme (agm ~k apsp); Baseline_exp.build ~k apsp ]
      in
      List.iter
        (fun (r : Experiment.row) ->
          T.add_row table
            [
              string_of_int k; r.Experiment.scheme; T.fmt_float r.Experiment.stretch_mean;
              T.fmt_float r.Experiment.stretch_p99; T.fmt_float r.Experiment.stretch_max;
              Printf.sprintf "%.0f" r.Experiment.bits_mean; string_of_int r.Experiment.bits_max;
            ])
        (Experiment.compare_schemes apsp schemes ~pairs);
      T.add_sep table)
    [ 1; 2; 3; 4; 5 ];
  T.print table

(* T1b: worst-case guarantee on the adversarial multi-scale instance *)

let t1b () =
  header "T1b: worst-case stretch on the adversarial scale-chain (paper constants)";
  let table =
    T.create
      ~title:"pairs sampled across adjacent islands; AGM06 uses the paper's constants"
      [
        ("k", T.Right); ("n", T.Right); ("scheme", T.Left); ("stretch mean", T.Right);
        ("p99", T.Right); ("max", T.Right);
      ]
  in
  List.iter
    (fun k ->
      let sigma = 4 in
      let rng = Rng.create 21 in
      let g = Generators.scale_chain rng ~sigma ~levels:k ~spacing:8.0 in
      let g = Graph.normalize (Graph.relabel rng g) in
      let apsp = Apsp.compute g in
      let islands = Generators.scale_chain_islands ~sigma ~levels:k () in
      (* pairs across adjacent small islands: close in distance, far from
         any vicinity *)
      let pairs = ref [] in
      let rng2 = Rng.create 22 in
      let upto = min (Array.length islands - 1) 3 in
      for _ = 1 to 300 do
        let j = Rng.int rng2 upto in
        let s0, sz0 = islands.(j) and s1, sz1 = islands.(j + 1) in
        let s = s0 + Rng.int rng2 sz0 and d = s1 + Rng.int rng2 sz1 in
        if s <> d then pairs := (s, d) :: !pairs
      done;
      let pairs = Array.of_list !pairs in
      let schemes = [ Agm06.scheme (agm ~paper:true ~k apsp); Baseline_exp.build ~k apsp ] in
      List.iter
        (fun (r : Experiment.row) ->
          T.add_row table
            [
              string_of_int k; string_of_int (Graph.n g); r.Experiment.scheme;
              T.fmt_float r.Experiment.stretch_mean; T.fmt_float r.Experiment.stretch_p99;
              T.fmt_float r.Experiment.stretch_max;
            ])
        (Experiment.compare_schemes apsp schemes ~pairs);
      T.add_sep table)
    (if fast then [ 2; 3 ] else [ 2; 3; 4; 5 ]);
  T.print table

(* ------------------------------------------------------------------ *)
(* T2: per-node table bits vs n (space bound of Theorem 1)             *)

let t2 () =
  header "T2: per-node table size vs n (shape: ~n^{2/k} x polylog, scaled constants)";
  let table =
    T.create
      [
        ("n", T.Right); ("k", T.Right); ("bits/node mean", T.Right); ("bits/node max", T.Right);
        ("mean growth", T.Right); ("n^{2/k} growth", T.Right); ("build s", T.Right);
      ]
  in
  List.iter
    (fun k ->
      let last = ref None in
      List.iter
        (fun n ->
          let g = Experiment.make_graph ~seed:31 (Experiment.Erdos_renyi { n; avg_degree = 4.0 }) in
          let apsp = Apsp.compute g in
          let a, dt = time_it (fun () -> agm ~k apsp) in
          let st = (Agm06.scheme a).Scheme.storage in
          let mean = Storage.mean_node_bits st in
          let growth =
            match !last with
            | Some (n0, m0) ->
                Printf.sprintf "%.2fx | %.2fx"
                  (mean /. m0)
                  ((float_of_int n /. float_of_int n0) ** (2.0 /. float_of_int k))
            | None -> "-"
          in
          let parts = String.split_on_char '|' growth in
          T.add_row table
            [
              string_of_int n; string_of_int k; Printf.sprintf "%.0f" mean;
              string_of_int (Storage.max_node_bits st);
              String.trim (List.nth parts 0);
              (if List.length parts > 1 then String.trim (List.nth parts 1) else "-");
              Printf.sprintf "%.1f" dt;
            ];
          last := Some (n, mean))
        (if fast then [ 64; 128; 256 ] else [ 128; 256; 512; 1024 ]);
      T.add_sep table)
    [ 2; 3 ];
  T.print table

(* ------------------------------------------------------------------ *)
(* T3: scale-freeness — table size vs aspect ratio Δ                  *)

let t3 () =
  header "T3: scale-freeness — bits/node vs log2(Δ) at fixed n";
  let n = scale 96 in
  let k = 3 in
  let table =
    T.create
      ~title:
        (Printf.sprintf
           "exponentially-weighted line, n=%d, k=%d (structure at every scale, §1.3)" n k)
      [
        ("log2 Δ", T.Right); ("AP levels", T.Right); ("AP bits/node", T.Right);
        ("AGM06 bits/node", T.Right); ("AP stretch", T.Right); ("AGM06 stretch", T.Right);
      ]
  in
  List.iter
    (fun base ->
      let rng = Rng.create 41 in
      let g = Graph.normalize (Graph.relabel rng (Generators.exponential_line ~n ~base)) in
      let apsp = Apsp.compute g in
      let pairs = Experiment.default_pairs ~seed:42 apsp ~count:(scale 400) in
      let ap = Baseline_ap.build ~k apsp in
      let ag = Agm06.scheme (agm ~k apsp) in
      let rap = Experiment.run_scheme apsp ap ~pairs in
      let ragm = Experiment.run_scheme apsp ag ~pairs in
      T.add_row table
        [
          Printf.sprintf "%.0f" (Float.log (Apsp.aspect_ratio apsp) /. Float.log 2.0);
          string_of_int (Baseline_ap.levels_built ap);
          Printf.sprintf "%.0f" rap.Experiment.bits_mean;
          Printf.sprintf "%.0f" ragm.Experiment.bits_mean;
          T.fmt_float rap.Experiment.stretch_mean;
          T.fmt_float ragm.Experiment.stretch_mean;
        ])
    [ 1.1; 1.3; 1.6; 2.0; 3.0; 5.0; 9.0 ];
  T.print table;
  Printf.printf
    "expected shape: AP column grows ~linearly with log Δ; AGM06 column flat.\n"

(* ------------------------------------------------------------------ *)
(* T4: Lemma 4 — name-independent error-reporting tree routing         *)

let t4 () =
  header "T4: Lemma 4 tree routing — stretch <= 2k-1, bounded-search semantics";
  let table =
    T.create
      [
        ("tree m", T.Right); ("k", T.Right); ("worst stretch", T.Right); ("bound 2k-1", T.Right);
        ("bits/node mean", T.Right); ("j=1 hit rate", T.Right); ("neg cost ok", T.Right);
      ]
  in
  List.iter
    (fun m ->
      List.iter
        (fun k ->
          let rng = Rng.create (m + k) in
          let g = Graph.relabel rng (Generators.random_tree rng ~n:m) in
          let tree = Tree.spanning g 0 in
          let ni = Ni.build ~k ~n_global:m tree in
          let worst = ref 0.0 in
          let j1_hits = ref 0 in
          let bits = ref 0 in
          Array.iter
            (fun v ->
              let ident = Graph.name_of g v in
              let r = Ni.search ni ~bound:k ident in
              (match r.Ni.outcome with
              | Ni.Found u when u = v -> ()
              | _ -> failwith "T4: delivery failure");
              if v <> Tree.root tree then begin
                let cost, _ = Simulator.walk_cost g r.Ni.walk in
                let s = cost /. Tree.depth tree v in
                if s > !worst then worst := s
              end;
              (match (Ni.search ni ~bound:1 ident).Ni.outcome with
              | Ni.Found _ -> incr j1_hits
              | Ni.Not_found_reported -> ());
              bits := !bits + Ni.node_storage_bits ni v)
            (Tree.nodes tree);
          (* negative response cost bound for an absent identifier *)
          let neg_ok =
            let r = Ni.search ni ~bound:k 987_654_321 in
            let cost, _ = Simulator.walk_cost g r.Ni.walk in
            let max_depth = Tree.radius tree in
            r.Ni.outcome = Ni.Not_found_reported
            && cost <= (float_of_int (max 1 ((2 * k) - 2)) *. max_depth) +. 1e-6
          in
          T.add_row table
            [
              string_of_int m; string_of_int k; T.fmt_float !worst;
              string_of_int ((2 * k) - 1);
              Printf.sprintf "%.0f" (float_of_int !bits /. float_of_int m);
              Printf.sprintf "%.2f" (float_of_int !j1_hits /. float_of_int m);
              string_of_bool neg_ok;
            ])
        [ 2; 3; 4 ];
      T.add_sep table)
    (if fast then [ 64; 256 ] else [ 64; 256; 1024 ]);
  T.print table

(* ------------------------------------------------------------------ *)
(* T5: Lemma 6 — sparse cover properties                               *)

let t5 () =
  header "T5: Lemma 6 sparse covers — cover / sparsity / radius / edge bounds";
  let table =
    T.create
      [
        ("graph", T.Left); ("k", T.Right); ("rho", T.Right); ("clusters", T.Right);
        ("cover", T.Right); ("overlap", T.Right); ("bound 2k*n^1/k", T.Right);
        ("radius", T.Right); ("paper (2k-1)rho", T.Right); ("ours (2k+1)rho", T.Right); ("maxE", T.Right); ("bound 2rho", T.Right);
      ]
  in
  let workloads =
    [
      ("er", Experiment.make_graph ~seed:51 (Experiment.Erdos_renyi { n = scale 256; avg_degree = 4.0 }));
      ("geo", Experiment.make_graph ~seed:52 (Experiment.Geometric { n = scale 200; radius = 0.18 }));
      ("grid", Experiment.make_graph ~seed:53 (Experiment.Grid { rows = 14; cols = 14 }));
    ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          List.iter
            (fun rho ->
              let cover = Cover.build ~k ~rho g in
              let n = Graph.n g in
              let kappa = Bits.ceil_pow (float_of_int n) (1.0 /. float_of_int k) in
              T.add_row table
                [
                  name; string_of_int k; T.fmt_float rho;
                  string_of_int (Array.length (Cover.clusters cover));
                  string_of_bool (Cover.check_cover cover);
                  string_of_int (Cover.max_overlap cover);
                  string_of_int (2 * k * kappa);
                  T.fmt_float (Cover.max_radius cover);
                  T.fmt_float (float_of_int ((2 * k) - 1) *. rho);
                  T.fmt_float (float_of_int ((2 * k) + 1) *. rho);
                  T.fmt_float (Cover.max_tree_edge cover);
                  T.fmt_float (2.0 *. rho);
                ])
            [ 2.0; 6.0 ])
        [ 2; 3 ];
      T.add_sep table)
    workloads;
  T.print table

(* ------------------------------------------------------------------ *)
(* T6: Claims 1 and 2 — landmark hierarchy guarantees                  *)

let t6 () =
  header "T6: Claims 1-2 — landmark hit rates on qualifying balls";
  let n = scale 1024 in
  let g = Experiment.make_graph ~seed:61 (Experiment.Erdos_renyi { n; avg_degree = 5.0 }) in
  let apsp = Apsp.compute g in
  let table =
    T.create
      ~title:(Printf.sprintf "erdos-renyi n=%d; balls B(u, 2^i) over 128 sampled u" n)
      [
        ("k", T.Right); ("level j", T.Right); ("|C_j|", T.Right); ("claim1 checked", T.Right);
        ("claim1 ok", T.Right); ("claim2 checked", T.Right); ("claim2 ok", T.Right);
      ]
  in
  List.iter
    (fun k ->
      let lm = Landmarks.build ~seed:62 ~n ~k in
      for j = 0 to k - 1 do
        let c1_checked = ref 0 and c1_ok = ref 0 and c2_checked = ref 0 and c2_ok = ref 0 in
        for idx = 0 to 127 do
          let u = idx * (n / 128) in
          let ball = Apsp.ball apsp u in
          for i = 0 to 10 do
            let members = Ball.ball ball (2.0 ** float_of_int i) in
            if float_of_int (Array.length members) >= Landmarks.claim1_threshold lm j then begin
              incr c1_checked;
              if Landmarks.check_claim1 lm members j then incr c1_ok
            end;
            if float_of_int (Array.length members) < Landmarks.claim2_size_limit lm j then begin
              incr c2_checked;
              if Landmarks.check_claim2 lm members j then incr c2_ok
            end
          done
        done;
        T.add_row table
          [
            string_of_int k; string_of_int j; string_of_int (Landmarks.level_size lm j);
            string_of_int !c1_checked; string_of_int !c1_ok; string_of_int !c2_checked;
            string_of_int !c2_ok;
          ]
      done;
      T.add_sep table)
    [ 2; 3; 4 ];
  T.print table;
  Printf.printf "expected: ok counts equal checked counts (the claims hold w.h.p.).\n"

(* ------------------------------------------------------------------ *)
(* F1: stretch distribution across schemes (CDF table)                 *)

let f1 () =
  header "F1: stretch CDF across schemes";
  let n = scale 400 in
  let g = Experiment.make_graph ~seed:71 (Experiment.Geometric { n; radius = 0.12 }) in
  let apsp = Apsp.compute g in
  let pairs = Experiment.default_pairs ~seed:72 apsp ~count:(scale 2000) in
  let schemes =
    [
      Baseline_full.build apsp;
      Agm06.scheme (agm ~k:3 apsp);
      Baseline_ap.build ~k:3 apsp;
      Baseline_exp.build ~k:3 apsp;
      Baseline_tz.build ~k:3 apsp;
      Baseline_s3.build apsp;
      Baseline_tree.build apsp;
    ]
  in
  let thresholds = [ 1.0; 1.5; 2.0; 3.0; 5.0; 8.0; 12.0; 20.0 ] in
  let table =
    T.create
      ~title:(Printf.sprintf "geometric n=%d, %d pairs: fraction of pairs with stretch <= s" n (Array.length pairs))
      (("scheme", T.Left) :: List.map (fun s -> (Printf.sprintf "<=%.1f" s, T.Right)) thresholds)
  in
  List.iter
    (fun sch ->
      let agg = Simulator.evaluate apsp sch pairs in
      let sorted = Array.copy agg.Simulator.stretches in
      Array.sort Float.compare sorted;
      T.add_row table
        (sch.Scheme.name
        :: List.map (fun s -> Printf.sprintf "%.3f" (Stats.cdf_at sorted s)) thresholds))
    schemes;
  T.print table

(* ------------------------------------------------------------------ *)
(* F2: decomposition statistics vs n                                   *)

let f2 () =
  header "F2: decomposition statistics — dense levels, |R(u)|, cover participation";
  let table =
    T.create
      [
        ("n", T.Right); ("log2 Δ", T.Right); ("mean dense lvls", T.Right); ("max dense lvls", T.Right);
        ("mean |R(u)|", T.Right); ("max |R(u)|", T.Right); ("populated levels", T.Right);
      ]
  in
  List.iter
    (fun n ->
      let g = Experiment.make_graph ~seed:81 (Experiment.Erdos_renyi { n; avg_degree = 4.0 }) in
      let apsp = Apsp.compute g in
      let d = Decomposition.build apsp ~k:3 in
      let dense = Array.init n (fun u -> float_of_int (Decomposition.dense_level_count d u)) in
      let rsz = Array.init n (fun u -> float_of_int (List.length (Decomposition.extended_range_set d u))) in
      T.add_row table
        [
          string_of_int n; string_of_int (Decomposition.log_delta d);
          T.fmt_float (Stats.mean dense);
          Printf.sprintf "%.0f" (Array.fold_left max 0.0 dense);
          T.fmt_float (Stats.mean rsz);
          Printf.sprintf "%.0f" (Array.fold_left max 0.0 rsz);
          string_of_int (List.length (Decomposition.needed_levels d));
        ])
    (if fast then [ 64; 128; 256 ] else [ 128; 256; 512; 1024 ]);
  T.print table;
  Printf.printf "expected: dense levels <= k and |R(u)| = O(k), independent of n and Δ.\n"

(* ------------------------------------------------------------------ *)
(* F3: locality — stretch by true-distance decile                      *)

let f3 () =
  header "F3: locality — AGM06 stretch by distance decile (O(k d) incl. negative responses)";
  let n = scale 400 in
  let g = Experiment.make_graph ~seed:91 (Experiment.Geometric { n; radius = 0.12 }) in
  let apsp = Apsp.compute g in
  let sch = Agm06.scheme (agm ~k:3 apsp) in
  let pairs = Experiment.default_pairs ~seed:92 apsp ~count:(scale 3000) in
  let samples =
    Array.map
      (fun (s, d) ->
        let m = Simulator.measure apsp sch s d in
        (Apsp.distance apsp s d, m.Simulator.stretch))
      pairs
  in
  Array.sort
    (fun (d1, s1) (d2, s2) ->
      let c = Float.compare d1 d2 in
      if c <> 0 then c else Float.compare s1 s2)
    samples;
  let deciles = 10 in
  let per = Array.length samples / deciles in
  let table =
    T.create
      ~title:(Printf.sprintf "geometric n=%d, k=3, %d pairs" n (Array.length samples))
      [
        ("decile", T.Right); ("distance range", T.Left); ("stretch mean", T.Right);
        ("stretch p90", T.Right); ("stretch max", T.Right);
      ]
  in
  for dec = 0 to deciles - 1 do
    let lo = dec * per in
    let hi = if dec = deciles - 1 then Array.length samples else lo + per in
    let slice = Array.sub samples lo (hi - lo) in
    let stretches = Array.map snd slice in
    let st = Stats.summarize stretches in
    T.add_row table
      [
        string_of_int (dec + 1);
        Printf.sprintf "%.1f - %.1f" (fst slice.(0)) (fst slice.(Array.length slice - 1));
        T.fmt_float st.Stats.mean; T.fmt_float st.Stats.p90; T.fmt_float st.Stats.max;
      ]
  done;
  T.print table;
  Printf.printf "expected: stretch roughly flat across deciles (cost scales with d(u,v)).\n"

(* ------------------------------------------------------------------ *)
(* A1: ablation — sparse-only / dense-only / full decomposition        *)

let a1 () =
  header "A1: ablation — why the hybrid sparse/dense decomposition matters";
  let n = scale 256 in
  let workloads =
    [
      ("geometric (mixed levels)",
       Experiment.make_graph ~seed:101 (Experiment.Geometric { n; radius = 0.15 }));
      ("exponential line (sparse-heavy)",
       (let rng = Rng.create 103 in
        Graph.normalize (Graph.relabel rng (Generators.exponential_line ~n:(scale 96) ~base:2.0))));
    ]
  in
  let table =
    T.create
      ~title:"k=3; fallback uses = deliveries that needed the delivery-guarantee phase"
      [
        ("workload", T.Left); ("variant", T.Left); ("stretch mean", T.Right); ("p99", T.Right);
        ("max", T.Right); ("bits/node mean", T.Right); ("fallback uses", T.Right);
      ]
  in
  List.iter
    (fun (wname, g) ->
      let apsp = Apsp.compute g in
      let pairs = Experiment.default_pairs ~seed:102 apsp ~count:(scale 1000) in
      List.iter
        (fun (name, mode) ->
          let a = Agm06.build ~params:(Params.scaled ~k:3 ()) ~mode apsp in
          let r = Experiment.run_scheme apsp (Agm06.scheme a) ~pairs in
          T.add_row table
            [
              wname; name; T.fmt_float r.Experiment.stretch_mean;
              T.fmt_float r.Experiment.stretch_p99; T.fmt_float r.Experiment.stretch_max;
              Printf.sprintf "%.0f" r.Experiment.bits_mean;
              string_of_int (Agm06.stats a).Agm06.fallback_resolved;
            ])
        [ ("full (paper)", Agm06.Full); ("sparse-only", Agm06.Sparse_only);
          ("dense-only", Agm06.Dense_only) ];
      T.add_sep table)
    workloads;
  T.print table

(* ------------------------------------------------------------------ *)
(* A2: ablation — fallback usage, scaled vs paper constants            *)

let a2 () =
  header "A2: ablation — constants presets: delivery phases and fallback rate";
  let n = scale 256 in
  let table =
    T.create
      [
        ("workload", T.Left); ("preset", T.Left); ("stretch mean", T.Right); ("max", T.Right);
        ("bits/node mean", T.Right); ("phase histogram", T.Left); ("fallback", T.Right);
      ]
  in
  List.iter
    (fun (wname, w) ->
      let g = Experiment.make_graph ~seed:111 w in
      let apsp = Apsp.compute g in
      let pairs = Experiment.default_pairs ~seed:112 apsp ~count:(scale 800) in
      List.iter
        (fun (pname, paper) ->
          let a = agm ~paper ~k:3 apsp in
          let r = Experiment.run_scheme apsp (Agm06.scheme a) ~pairs in
          let st = Agm06.stats a in
          T.add_row table
            [
              wname; pname; T.fmt_float r.Experiment.stretch_mean;
              T.fmt_float r.Experiment.stretch_max; Printf.sprintf "%.0f" r.Experiment.bits_mean;
              String.concat " " (Array.to_list (Array.map string_of_int st.Agm06.phase_found));
              string_of_int st.Agm06.fallback_resolved;
            ])
        [ ("scaled", false); ("paper", true) ];
      T.add_sep table)
    [
      ("erdos-renyi", Experiment.Erdos_renyi { n; avg_degree = 4.0 });
      ("geometric", Experiment.Geometric { n; radius = 0.15 });
    ];
  T.print table;
  Printf.printf
    "expected: paper constants resolve every route in early phases (no fallback)\n\
     at a higher space cost; scaled constants trade occasional fallback hops\n\
     for the visible n^{2/k} space shape.\n"

(* ------------------------------------------------------------------ *)
(* T7: the whole trade-off frontier on one workload                    *)

let t7 () =
  header "T7: the space-stretch frontier — every scheme on one workload";
  let n = scale 400 in
  let g = Experiment.make_graph ~seed:131 (Experiment.Geometric { n; radius = 0.12 }) in
  let apsp = Apsp.compute g in
  let pairs = Experiment.default_pairs ~seed:132 apsp ~count:(scale 1500) in
  let schemes =
    [
      Baseline_full.build apsp;
      Baseline_tz.build ~k:2 apsp;
      Baseline_tz.build ~k:3 apsp;
      Baseline_s3.build apsp;
      Baseline_exp.build ~k:3 apsp;
      Agm06.scheme (agm ~k:2 apsp);
      Agm06.scheme (agm ~k:3 apsp);
      Agm06.scheme (agm ~k:4 apsp);
      Baseline_ap.build ~k:3 apsp;
      Baseline_tree.build apsp;
    ]
  in
  let table =
    T.create
      ~title:
        (Printf.sprintf
           "geometric n=%d, %d pairs; labeled schemes marked (L) choose their own addresses" n
           (Array.length pairs))
      [
        ("scheme", T.Left); ("model", T.Left); ("stretch mean", T.Right); ("p99", T.Right);
        ("max", T.Right); ("bits/node mean", T.Right); ("header bits", T.Right);
      ]
  in
  let model name =
    if String.length name >= 2 && String.sub name 0 2 = "tz" then "labeled (L)"
    else "name-independent"
  in
  List.iter
    (fun (r : Experiment.row) ->
      T.add_row table
        [
          r.Experiment.scheme; model r.Experiment.scheme; T.fmt_float r.Experiment.stretch_mean;
          T.fmt_float r.Experiment.stretch_p99; T.fmt_float r.Experiment.stretch_max;
          Printf.sprintf "%.0f" r.Experiment.bits_mean;
          string_of_int r.Experiment.header_bits;
        ])
    (Experiment.compare_schemes apsp schemes ~pairs);
  T.print table

(* ------------------------------------------------------------------ *)
(* T8: the directed extension (paper §4)                               *)

let t8 () =
  header "T8: directed extension — O(k) vs the round-trip metric";
  let module D = Cr_digraph.Digraph in
  let module Dgen = Cr_digraph.Dgen in
  let module Drt = Cr_digraph.Rt in
  let module Dscheme = Cr_digraph.Dscheme in
  let module Dsim = Cr_digraph.Dsim in
  let n = scale 160 in
  let table =
    T.create
      ~title:"strongly connected digraphs; stretch vs one-way and round-trip distances"
      [
        ("workload", T.Left); ("k", T.Right); ("delivered", T.Right);
        ("1-way stretch mean/p99", T.Right); ("rt stretch mean/p99", T.Right);
        ("bits/node mean", T.Right); ("coverage", T.Right); ("fallback", T.Right);
      ]
  in
  let workloads =
    [
      ("directed-ring", Dgen.directed_ring (Rng.create 141) ~n ~chords:(n / 2));
      ("directed-er", Dgen.directed_erdos_renyi (Rng.create 142) ~n ~avg_out_degree:3.0);
      ( "asymmetric-geo",
        Dgen.asymmetric_of_graph (Rng.create 143)
          (Generators.random_geometric (Rng.create 144) ~n ~radius:0.16)
          ~skew:4.0 );
    ]
  in
  List.iter
    (fun (wname, g) ->
      let g = D.normalize (D.relabel (Rng.create 145) g) in
      let rt = Drt.compute g in
      List.iter
        (fun k ->
          let sch = Dscheme.build ~k rt in
          let rng = Rng.create 146 in
          let nn = D.n g in
          let ones = ref [] and rts = ref [] and delivered = ref 0 and total = ref 0 in
          for _ = 1 to scale 600 do
            let s = Rng.int rng nn and d = Rng.int rng nn in
            if s <> d then begin
              incr total;
              let m = Dsim.measure rt sch s d in
              if m.Dsim.delivered then begin
                incr delivered;
                ones := m.Dsim.stretch :: !ones;
                rts := m.Dsim.rt_stretch :: !rts
              end
            end
          done;
          let s1 = Stats.summarize (Array.of_list !ones) in
          let s2 = Stats.summarize (Array.of_list !rts) in
          T.add_row table
            [
              wname; string_of_int k;
              Printf.sprintf "%d/%d" !delivered !total;
              Printf.sprintf "%.2f / %.2f" s1.Stats.mean s1.Stats.p99;
              Printf.sprintf "%.2f / %.2f" s2.Stats.mean s2.Stats.p99;
              Printf.sprintf "%.0f" (Dscheme.mean_storage_bits sch);
              Printf.sprintf "%.2f" (Dscheme.phase_coverage sch);
              string_of_int (Dscheme.stats_fallback sch);
            ])
        [ 2; 3 ];
      T.add_sep table)
    workloads;
  T.print table;
  Printf.printf
    "expected: rt-stretch small and flat (the O(k) guarantee transfers to dRT);
     one-way stretch additionally pays the instance's asymmetry.
"

(* ------------------------------------------------------------------ *)
(* T9: node joins — the price of labels (the introduction's motivation) *)

let t9 () =
  header "T9: node join churn — labeled addresses vs name independence";
  let n = scale 256 in
  let k = 3 in
  let table =
    T.create
      ~title:
        (Printf.sprintf
           "one node joins an n=%d network (3 links); how many ADDRESSES change?" n)
      [
        ("trial", T.Right); ("tz labels changed", T.Right); ("fraction", T.Right);
        ("agm06 identifiers changed", T.Right);
      ]
  in
  let total_changed = ref 0 in
  let trials = 5 in
  for trial = 1 to trials do
    let rng = Rng.create (trial * 1000) in
    let g0 = Generators.erdos_renyi rng ~n ~avg_degree:4.0 in
    let g0 = Graph.normalize (Graph.relabel rng g0) in
    (* the joined network: same nodes and names, one extra node *)
    let fresh_name = 1 + Array.fold_left (fun acc v -> max acc v) 0 (Array.init n (Graph.name_of g0)) in
    let links =
      List.init 3 (fun i -> (Rng.int rng n, n, 1.0 +. float_of_int i *. 0.1))
    in
    let g1 =
      Graph.create
        ~names:(Array.append (Array.init n (Graph.name_of g0)) [| fresh_name |])
        ~n:(n + 1)
        (Graph.edges g0 @ links)
    in
    let a0 = Apsp.compute g0 and a1 = Apsp.compute g1 in
    let l0 = Baseline_tz.label_vectors ~k ~seed:7 a0 in
    let l1 = Baseline_tz.label_vectors ~k ~seed:7 a1 in
    let changed = ref 0 in
    for v = 0 to n - 1 do
      if l0.(v) <> l1.(v) then incr changed
    done;
    total_changed := !total_changed + !changed;
    (* the name-independent scheme addresses nodes by their identifiers,
       which do not change by construction *)
    T.add_row table
      [
        string_of_int trial; string_of_int !changed;
        Printf.sprintf "%.2f" (float_of_int !changed /. float_of_int n); "0";
      ]
  done;
  T.print table;
  Printf.printf
    "mean labeled-address churn per join: %.1f%% of the network — every\n\
     sender holding a stale label must be updated.  A name-independent\n\
     scheme's addresses are the nodes' own identifiers: churn is zero by\n\
     construction (only local tables adapt).  This is the introduction's\n\
     argument for the name-independent model, quantified.\n"
    (100.0 *. float_of_int !total_changed /. float_of_int (trials * n))

(* ------------------------------------------------------------------ *)
(* F4: bechamel microbenchmarks — construction and per-route costs     *)

let f4 () =
  header "F4: microbenchmarks (bechamel) — construction & routing throughput";
  let n = scale 256 in
  let g = Experiment.make_graph ~seed:121 (Experiment.Erdos_renyi { n; avg_degree = 4.0 }) in
  let apsp = Apsp.compute g in
  let a = agm ~k:3 apsp in
  let sch = Agm06.scheme a in
  let full = Baseline_full.build apsp in
  let rng = Rng.create 7 in
  let pairs = Simulator.sample_pairs rng apsp ~count:256 in
  let idx = ref 0 in
  let next_pair () =
    let p = pairs.(!idx mod Array.length pairs) in
    incr idx;
    p
  in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"compact-routing"
      [
        Test.make ~name:"dijkstra-sssp" (Staged.stage (fun () -> ignore (Dijkstra.run g 0)));
        Test.make ~name:"apsp-sequential" (Staged.stage (fun () -> ignore (Apsp.compute g)));
        Test.make ~name:"apsp-parallel-4" (Staged.stage (fun () -> ignore (Apsp.compute_parallel ~domains:4 g)));
        Test.make ~name:"agm06-route" (Staged.stage (fun () ->
            let s, d = next_pair () in
            ignore (sch.Scheme.route s d)));
        Test.make ~name:"full-tables-route" (Staged.stage (fun () ->
            let s, d = next_pair () in
            ignore (full.Scheme.route s d)));
        Test.make ~name:"decomposition-build" (Staged.stage (fun () ->
            ignore (Decomposition.build apsp ~k:3)));
        Test.make ~name:"cover-build-rho4" (Staged.stage (fun () ->
            ignore (Cover.build ~k:3 ~rho:4.0 g)));
      ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    Benchmark.all cfg instances tests
  in
  let results =
    let raw = benchmark () in
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    results;
  Printf.printf "(one AGM06 route executes up to k phases of tree searches.)\n"

(* ------------------------------------------------------------------ *)
(* R1: resilience — graceful degradation under edge failures           *)

let r1 () =
  header "R1: fault injection — delivery ratio & stretch under growing edge-failure rates";
  let module Fsim = Cr_resilience.Fsim in
  let module Sweep = Cr_resilience.Sweep in
  let n = scale 192 in
  let g = Experiment.make_graph ~seed:161 (Experiment.Erdos_renyi { n; avg_degree = 4.0 }) in
  let apsp = Apsp.compute g in
  let pairs = Experiment.default_pairs ~seed:162 apsp ~count:(scale 600) in
  let schemes =
    [ Agm06.scheme (agm ~k:3 apsp); Baseline_tz.build ~k:3 apsp; Baseline_tree.build apsp ]
  in
  let rates = [ 0.0; 0.02; 0.05; 0.1; 0.2 ] in
  let table =
    T.create
      ~title:
        (Printf.sprintf "erdos-renyi n=%d, %d pairs, independent edge failures, fixed seed" n
           (Array.length pairs))
      [
        ("scheme", T.Left); ("rate", T.Right); ("no-retry ratio", T.Right);
        ("3-retry ratio", T.Right); ("stretch mean", T.Right); ("retries", T.Right);
        ("drops", T.Right); ("loops", T.Right);
      ]
  in
  let p0 = Fsim.default_policy g in
  let p3 = Fsim.default_policy ~max_retries:3 g in
  let run policy = Sweep.sweep ~policy ~model:Sweep.Edges ~seed:163 ~rates apsp schemes pairs in
  let last_scheme = ref "" in
  List.iter2
    (fun (c0 : Sweep.cell) (c3 : Sweep.cell) ->
      if !last_scheme <> "" && !last_scheme <> c0.Sweep.scheme then T.add_sep table;
      last_scheme := c0.Sweep.scheme;
      T.add_row table
        [
          c0.Sweep.scheme; Printf.sprintf "%.2f" c0.Sweep.rate;
          Printf.sprintf "%.3f" (Sweep.delivery_ratio c0);
          Printf.sprintf "%.3f" (Sweep.delivery_ratio c3);
          T.fmt_float c3.Sweep.stretch.Stats.mean;
          string_of_int c3.Sweep.retries_total; string_of_int c3.Sweep.dropped;
          string_of_int c3.Sweep.loops;
        ])
    (run p0) (run p3);
  T.print table;
  Printf.printf
    "expected: every ratio column is 1.000 at rate 0 and monotone non-increasing;\n\
     bounded retries buy back part of the loss at low rates at a small stretch cost.\n"

(* ------------------------------------------------------------------ *)
(* P1: serving throughput — the batch engine across pool widths        *)

let p1 () =
  header "P1: batch query engine — routes/sec & latency vs domains and cache";
  let module Serve = Cr_engine.Serve in
  let module Workload = Cr_engine.Workload in
  let n = scale 1024 in
  let g = Experiment.make_graph ~seed:151 (Experiment.Erdos_renyi { n; avg_degree = 4.0 }) in
  let apsp = Apsp.compute_parallel g in
  let queries = scale 20000 in
  let schemes =
    [ Agm06.scheme (agm ~k:3 apsp); Baseline_tz.build ~k:3 apsp ]
  in
  let domain_widths = if fast then [ 1; 2 ] else [ 1; 2; 4 ] in
  let caches = [ 0; 4096 ] in
  let table =
    T.create
      ~title:
        (Printf.sprintf
           "erdos-renyi n=%d, %d zipf:1.1 queries per cell; speedup vs domains=1 (same cache); %d cores available"
           n queries (Domain.recommended_domain_count ()))
      [
        ("scheme", T.Left); ("domains", T.Right); ("cache", T.Right); ("routes/s", T.Right);
        ("speedup", T.Right); ("efficiency", T.Right); ("p50 us", T.Right); ("p95 us", T.Right);
        ("p99 us", T.Right); ("hit rate", T.Right);
      ]
  in
  let reports = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun cache ->
          let base = ref 0.0 in
          List.iter
            (fun domains ->
              let r =
                Serve.run ~cache ~dist:(Workload.Zipf 1.1) ~domains ~seed:152 ~queries
                  ~workload:(Printf.sprintf "erdos-renyi(n=%d)" n)
                  apsp scheme
              in
              reports := r :: !reports;
              if domains = 1 then base := r.Serve.routes_per_sec;
              let speedup =
                if !base > 0.0 then r.Serve.routes_per_sec /. !base else 1.0
              in
              T.add_row table
                [
                  r.Serve.scheme; string_of_int domains; string_of_int cache;
                  Printf.sprintf "%.0f" r.Serve.routes_per_sec;
                  Printf.sprintf "%.2fx" speedup;
                  Printf.sprintf "%.2f" (speedup /. float_of_int domains);
                  Printf.sprintf "%.1f" (1e6 *. r.Serve.latency.Stats.p50);
                  Printf.sprintf "%.1f" (1e6 *. r.Serve.latency.Stats.p95);
                  Printf.sprintf "%.1f" (1e6 *. r.Serve.latency.Stats.p99);
                  (if cache = 0 then "-" else Printf.sprintf "%.3f" (Serve.hit_rate r));
                ])
            domain_widths)
        caches;
      T.add_sep table)
    schemes;
  T.print table;
  (match Sys.getenv_opt "CRT_P1_JSON" with
  | Some path ->
      Cr_util.Jsonl.write_lines (List.rev_map Serve.report_to_json !reports) path;
      Printf.printf "json written to %s\n" path
  | None -> ());
  Printf.printf
    "expected: the result stream is identical in every cell (determinism contract);\n\
     routes/s scales with domains up to the physical core count, and the zipf\n\
     workload gives the 4096-entry per-lane cache a high hit rate.\n"

(* ------------------------------------------------------------------ *)
(* C1: shared plan cache — hit rate & throughput vs cache structure     *)

let c1 () =
  header "C1: shared plan cache — hit rate & routes/sec vs pool width, mode, capacity";
  let module Serve = Cr_engine.Serve in
  let module Engine = Cr_engine.Engine in
  let module Workload = Cr_engine.Workload in
  let n = scale 1024 in
  let g = Experiment.make_graph ~seed:191 (Experiment.Erdos_renyi { n; avg_degree = 4.0 }) in
  let apsp = Apsp.compute_parallel g in
  let queries = scale 16000 in
  let scheme = Agm06.scheme (agm ~k:3 apsp) in
  let domain_widths = if fast then [ 1; 2 ] else [ 1; 2; 4 ] in
  (* one capacity under pressure, one comfortably above the query count:
     at the large capacity the only lane-vs-shared difference left is the
     duplicated cold misses, which is the effect C1 isolates *)
  let capacities = [ 2048; 2 * queries ] in
  let cells =
    (Engine.Off, 0)
    :: List.concat_map
         (fun cache -> [ (Engine.Lane, cache); (Engine.Shared, cache) ])
         capacities
  in
  let table =
    T.create
      ~title:
        (Printf.sprintf
           "erdos-renyi n=%d, %d zipf:1.1 queries per cell; same result stream in every cell"
           n queries)
      [
        ("mode", T.Left); ("cache", T.Right); ("domains", T.Right); ("routes/s", T.Right);
        ("hit rate", T.Right); ("replaced", T.Right); ("p50 us", T.Right); ("p99 us", T.Right);
      ]
  in
  let reports = ref [] in
  (* (mode, cache, domains) -> hit rate, for the headline comparison *)
  let rates = Hashtbl.create 16 in
  List.iter
    (fun (mode, cache) ->
      List.iter
        (fun domains ->
          let r =
            Serve.run ~cache ~cache_mode:mode ~dist:(Workload.Zipf 1.1) ~domains ~seed:192
              ~queries
              ~workload:(Printf.sprintf "erdos-renyi(n=%d)" n)
              apsp scheme
          in
          reports := r :: !reports;
          Hashtbl.replace rates (mode, cache, domains) (Serve.hit_rate r);
          T.add_row table
            [
              Engine.cache_mode_to_string mode; string_of_int cache; string_of_int domains;
              Printf.sprintf "%.0f" r.Serve.routes_per_sec;
              (if mode = Engine.Off then "-" else Printf.sprintf "%.3f" (Serve.hit_rate r));
              (if mode = Engine.Shared then string_of_int r.Serve.shared.Cr_util.Ttcache.replaced
               else "-");
              Printf.sprintf "%.1f" (1e6 *. r.Serve.latency.Stats.p50);
              Printf.sprintf "%.1f" (1e6 *. r.Serve.latency.Stats.p99);
            ])
        domain_widths;
      T.add_sep table)
    cells;
  T.print table;
  (match Sys.getenv_opt "CRT_C1_JSON" with
  | Some path ->
      Cr_util.Jsonl.write_lines (List.rev_map Serve.report_to_json !reports) path;
      Printf.printf "json written to %s\n" path
  | None -> ());
  let big = 2 * queries in
  List.iter
    (fun domains ->
      if domains > 1 then
        match
          ( Hashtbl.find_opt rates (Engine.Shared, big, domains),
            Hashtbl.find_opt rates (Engine.Lane, big, domains) )
        with
        | Some s, Some l ->
            Printf.printf "headline (cache=%d, domains=%d): shared hit rate %.3f vs lane %.3f (%s)\n"
              big domains s l
              (if s > l then "shared wins" else "NO WIN")
        | _ -> ())
    domain_widths;
  Printf.printf
    "expected: the shared table's hit rate strictly beats the per-lane aggregate at\n\
     every width > 1 (a hot zipf key misses once per engine, not once per lane), and\n\
     the gap widens with width; at width 1 the structures are equivalent.  Results\n\
     are bit-identical across every cell; only throughput and latency vary.\n"

(* ------------------------------------------------------------------ *)
(* D1: churn-replay — the durable daemon under churn, then a crash and
   both recovery paths (checkpoint + journal suffix vs full journal)   *)

let d1 () =
  header "D1: churn-replay — repair latency under churn, crash, recovery time";
  let module Daemon = Cr_daemon.Daemon in
  let module Jsonl = Cr_util.Jsonl in
  let n = scale 192 in
  let mutations = scale 192 in
  let snapshot_every = 32 in
  let g =
    let g0 = Experiment.make_graph ~seed:171 (Experiment.Erdos_renyi { n; avg_degree = 4.0 }) in
    let rng = Rng.create 172 in
    (* integer weights >= 1: normalized, and churn stays exact *)
    Graph.reweight g0 (fun _ _ _ -> 1.0 +. float_of_int (Rng.int rng 7))
  in
  let params = Params.scaled ~k:3 ~seed:171 () in
  let dir = Filename.temp_file "crtd1" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm dir) @@ fun () ->
  let journal = Filename.concat dir "journal.log" in
  let rng = Rng.create 173 in
  let random_mutation g =
    let es = Array.of_list (Graph.edges g) in
    let w () = 1.0 +. float_of_int (Rng.int rng 7) in
    match Rng.int rng 5 with
    | 0 when Array.length es > 0 ->
        let u, v, _ = es.(Rng.int rng (Array.length es)) in
        Graph.Set_weight (u, v, w ())
    | 1 when Array.length es > 1 ->
        let u, v, _ = es.(Rng.int rng (Array.length es)) in
        Graph.Link_down (u, v)
    | 2 ->
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v && not (Graph.has_edge g u v) then Graph.Link_up (u, v, w ())
        else Graph.Node_up (Rng.int rng n)
    | 3 -> Graph.Node_down (Rng.int rng n)
    | _ -> Graph.Node_up (Rng.int rng n)
  in
  let ok r = String.length r >= 3 && String.sub r 0 3 = "ok " in
  let d =
    Daemon.create ~policy:Cr_guard.Policy.off ~staleness_every:0 ~fsync:Cr_daemon.Journal.Every
      ~journal ~snapshot_dir:dir ~snapshot_every ~params g
  in
  let accepted = ref 0 in
  for i = 1 to mutations do
    let mu = random_mutation (Daemon.live_graph d) in
    (match Daemon.handle d (Graph.mutation_to_string mu) with
    | [ r ] when ok r -> incr accepted
    | _ -> ());
    (* interleave queries so repair overlaps serving, as in production *)
    if i mod 8 = 0 then
      ignore (Daemon.handle d (Printf.sprintf "route %d %d" (Rng.int rng n) (Rng.int rng n)))
  done;
  (match Daemon.sync d with
  | Ok _ -> ()
  | Error e -> Printf.printf "repair poisoned during churn: %s\n" e);
  let repair_ms =
    let a = Array.of_list (List.map (fun s -> 1e3 *. s) (Daemon.repair_times_s d)) in
    Array.sort compare a;
    a
  in
  let c name = Cr_obs.Counters.get (Daemon.counters d) name in
  let repairs = c "daemon.repairs" in
  let journal_bytes = c "daemon.journal.bytes" in
  let snapshots = c "daemon.snapshots" in
  Daemon.crash d;
  (* recovery path 1: newest checkpoint + journal suffix *)
  let (r_snap, snap_info), t_snap =
    time_it (fun () ->
        let r =
          Daemon.create ~policy:Cr_guard.Policy.off ~staleness_every:0 ~journal
            ~snapshot_dir:dir ~recover:true ~params g
        in
        (r, Option.get (Daemon.recovery r)))
  in
  let snap_graph = Cr_graph.Gio.to_string (Daemon.live_graph r_snap) in
  Daemon.close r_snap;
  (* recovery path 2: full journal replay, no checkpoint *)
  let (r_full, full_info), t_full =
    time_it (fun () ->
        let r =
          Daemon.create ~policy:Cr_guard.Policy.off ~staleness_every:0 ~journal ~recover:true
            ~params g
        in
        (r, Option.get (Daemon.recovery r)))
  in
  let graphs_identical = snap_graph = Cr_graph.Gio.to_string (Daemon.live_graph r_full) in
  (* the recovery invariant, sampled: the recovered daemon's answers
     are byte-identical (modulo epoch id) to a fresh daemon built on
     the same graph *)
  let fresh =
    Daemon.create ~policy:Cr_guard.Policy.off ~staleness_every:0 ~params
      (Daemon.live_graph r_full)
  in
  let strip_epoch r = match String.rindex_opt r ' ' with Some i -> String.sub r 0 i | None -> r in
  let answers d =
    let rng = Rng.create 174 in
    List.init (scale 100) (fun _ ->
        let u = Rng.int rng n and v = Rng.int rng n in
        List.map strip_epoch
          (Daemon.handle d (Printf.sprintf "route %d %d" u v)
          @ Daemon.handle d (Printf.sprintf "dist %d %d" u v)))
  in
  let answers_match = answers r_full = answers fresh in
  Daemon.close r_full;
  Daemon.close fresh;
  let pct q = if Array.length repair_ms = 0 then 0.0 else Stats.percentile repair_ms q in
  let table =
    T.create
      ~title:
        (Printf.sprintf
           "erdos-renyi n=%d, %d accepted mutations, fsync=every, snapshot every %d records" n
           !accepted snapshot_every)
      [ ("metric", T.Left); ("value", T.Right) ]
  in
  T.add_row table [ "repair batches"; string_of_int repairs ];
  T.add_row table [ "repair p50 ms"; Printf.sprintf "%.1f" (pct 0.5) ];
  T.add_row table [ "repair p95 ms"; Printf.sprintf "%.1f" (pct 0.95) ];
  T.add_row table [ "repair p99 ms"; Printf.sprintf "%.1f" (pct 0.99) ];
  T.add_row table [ "journal bytes"; string_of_int journal_bytes ];
  T.add_row table [ "snapshots written"; string_of_int snapshots ];
  T.add_sep table;
  T.add_row table
    [ "recovery ms (checkpoint + suffix)"; Printf.sprintf "%.1f" (1e3 *. t_snap) ];
  T.add_row table [ "  records replayed"; string_of_int snap_info.Daemon.replayed ];
  T.add_row table [ "recovery ms (full journal)"; Printf.sprintf "%.1f" (1e3 *. t_full) ];
  T.add_row table [ "  records replayed"; string_of_int full_info.Daemon.replayed ];
  T.add_row table [ "recovered graphs identical"; string_of_bool graphs_identical ];
  T.add_row table [ "answers match never-crashed"; string_of_bool answers_match ];
  T.print table;
  (match Sys.getenv_opt "CRT_D1_JSON" with
  | Some path ->
      Jsonl.write_lines
        [
          Jsonl.obj
            [
              ("experiment", Jsonl.str "D1");
              ("n", Jsonl.int n);
              ("mutations_accepted", Jsonl.int !accepted);
              ("repairs", Jsonl.int repairs);
              ("repair_ms_p50", Jsonl.float (pct 0.5));
              ("repair_ms_p95", Jsonl.float (pct 0.95));
              ("repair_ms_p99", Jsonl.float (pct 0.99));
              ("journal_bytes", Jsonl.int journal_bytes);
              ("snapshots", Jsonl.int snapshots);
              ("recovery_ms_checkpoint", Jsonl.float (1e3 *. t_snap));
              ("recovery_replayed_checkpoint", Jsonl.int snap_info.Daemon.replayed);
              ("recovery_ms_journal", Jsonl.float (1e3 *. t_full));
              ("recovery_replayed_journal", Jsonl.int full_info.Daemon.replayed);
              ("graphs_identical", Jsonl.bool graphs_identical);
              ("answers_match", Jsonl.bool answers_match);
            ];
        ]
        path;
      Printf.printf "json written to %s\n" path
  | None -> ());
  Printf.printf
    "expected: both recovery paths rebuild the identical graph and answer exactly like a\n\
     never-crashed daemon; the checkpoint path replays at most %d records while the\n\
     journal-only path replays all %d, so its recovery time grows with churn history.\n"
    snapshot_every !accepted

(* ------------------------------------------------------------------ *)
(* D2: multi-client socket churn — N concurrent clients over the unix
   socket front end, one replaying mutations from a journal-style trace
   while the rest query in a closed loop; response latency percentiles
   overall and over time, repair latency, and the outcome/shed/timeout
   counters, with and without deterministic netchaos *)

let d2 () =
  header "D2: multi-client socket churn — response latency under concurrency and netchaos";
  let module Daemon = Cr_daemon.Daemon in
  let module Server = Cr_daemon.Server in
  let module Jsonl = Cr_util.Jsonl in
  let n = scale 128 in
  let clients = 4 in
  let queries_per_client = scale 160 in
  let mutations = scale 32 in
  let g =
    let g0 = Experiment.make_graph ~seed:181 (Experiment.Erdos_renyi { n; avg_degree = 4.0 }) in
    let rng = Rng.create 182 in
    Graph.reweight g0 (fun _ _ _ -> 1.0 +. float_of_int (Rng.int rng 7))
  in
  let params = Params.scaled ~k:3 ~seed:181 () in
  (* the journal-style trace: mutations each applicable to the graph the
     previous ones produce, replayed in order by client 0 *)
  let trace =
    let rng = Rng.create 183 in
    let random_mutation g =
      let es = Array.of_list (Graph.edges g) in
      let w () = 1.0 +. float_of_int (Rng.int rng 7) in
      match Rng.int rng 5 with
      | 0 when Array.length es > 0 ->
          let u, v, _ = es.(Rng.int rng (Array.length es)) in
          Graph.Set_weight (u, v, w ())
      | 1 when Array.length es > 1 ->
          let u, v, _ = es.(Rng.int rng (Array.length es)) in
          Graph.Link_down (u, v)
      | 2 ->
          let u = Rng.int rng n and v = Rng.int rng n in
          if u <> v && not (Graph.has_edge g u v) then Graph.Link_up (u, v, w ())
          else Graph.Node_up (Rng.int rng n)
      | 3 -> Graph.Node_down (Rng.int rng n)
      | _ -> Graph.Node_up (Rng.int rng n)
    in
    let rec go acc g k =
      if k = 0 then List.rev acc
      else
        let mu = random_mutation g in
        match Graph.apply g mu with
        | g' -> go (Graph.mutation_to_string mu :: acc) g' (k - 1)
        | exception Invalid_argument _ -> go acc g k
    in
    go [] g mutations
  in
  let dir = Filename.temp_file "crtd2" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm dir) @@ fun () ->
  let sock = Filename.concat dir "d2.sock" in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
    fd
  in
  let send fd s =
    let len = String.length s in
    let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
    go 0
  in
  let recv_line fd =
    let buf = Buffer.create 64 in
    let b = Bytes.create 1 in
    let rec go () =
      match Unix.read fd b 0 1 with
      | 0 -> Buffer.contents buf
      | _ ->
          if Bytes.get b 0 = '\n' then Buffer.contents buf
          else begin
            Buffer.add_char buf (Bytes.get b 0);
            go ()
          end
    in
    go ()
  in
  let cells =
    [
      ("none", Server.no_netchaos);
      ( "net",
        match Server.netchaos_of_string ~seed:184 "net" with
        | Ok nc -> nc
        | Error e -> failwith e );
    ]
  in
  let results =
    List.map
      (fun (cell, nc) ->
        let d =
          Daemon.create ~policy:Cr_guard.Policy.off ~staleness_every:0 ~params g
        in
        let config = { Server.default_config with Server.nc } in
        let srv = Server.create ~config d (Server.Unix_path sock) in
        let dom = Domain.spawn (fun () -> Server.run srv) in
        let t0 = Unix.gettimeofday () in
        (* one closed-loop domain per client; client 0 interleaves the
           mutation trace among its queries, the rest only query.  A
           netchaos cut (EOF mid-response) is absorbed by reconnecting:
           the slot stays occupied, as a real client pool would *)
        let client cid =
          let rng = Rng.create (185 + cid) in
          let ops =
            let queries =
              List.init queries_per_client (fun _ ->
                  Printf.sprintf
                    (if Rng.bool rng then "route %d %d" else "dist %d %d")
                    (Rng.int rng n) (Rng.int rng n))
            in
            if cid <> 0 then queries
            else begin
              (* splice one trace mutation after every few queries *)
              let every = max 1 (queries_per_client / max 1 mutations) in
              List.concat
                (List.mapi
                   (fun i q ->
                     if i mod every = 0 && i / every < mutations then
                       [ q; List.nth trace (i / every) ]
                     else [ q ])
                   queries)
            end
          in
          let lats = ref [] in
          let cuts = ref 0 in
          let fd = ref (connect ()) in
          let round_trip line =
            match
              send !fd (line ^ "\n");
              recv_line !fd
            with
            | "" -> None
            | r -> Some r
            | exception Unix.Unix_error _ -> None
          in
          List.iter
            (fun line ->
              let rec go attempts =
                if attempts > 0 then begin
                  let t1 = Unix.gettimeofday () in
                  match round_trip line with
                  | Some _ ->
                      let t2 = Unix.gettimeofday () in
                      lats := (t2 -. t0, 1e3 *. (t2 -. t1)) :: !lats
                  | None ->
                      incr cuts;
                      (try Unix.close !fd with Unix.Unix_error _ -> ());
                      fd := connect ();
                      go (attempts - 1)
                end
              in
              go 3)
            ops;
          ignore (round_trip "quit");
          (try Unix.close !fd with Unix.Unix_error _ -> ());
          (List.rev !lats, !cuts)
        in
        let doms = List.init clients (fun cid -> Domain.spawn (fun () -> client cid)) in
        let per_client = List.map Domain.join doms in
        let wall_s = Unix.gettimeofday () -. t0 in
        (* drain the repair backlog before reading repair percentiles:
           a fast client run can finish before the first batch lands *)
        (match Daemon.sync d with
        | Ok _ -> ()
        | Error e -> Printf.printf "repair poisoned during churn: %s\n" e);
        Server.stop srv;
        Domain.join dom;
        let repair_ms =
          let a = Array.of_list (List.map (fun s -> 1e3 *. s) (Daemon.repair_times_s d)) in
          Array.sort compare a;
          a
        in
        Daemon.close d;
        let lats = List.concat_map fst per_client in
        let cuts = List.fold_left (fun a (_, c) -> a + c) 0 per_client in
        let all =
          let a = Array.of_list (List.map snd lats) in
          Array.sort compare a;
          a
        in
        (* latency over time: the run split into quarters by completion
           time, p95 within each — degradation under churn shows here *)
        let quarter_p95 =
          List.init 4 (fun q ->
              let lo = wall_s *. float_of_int q /. 4.0
              and hi = wall_s *. float_of_int (q + 1) /. 4.0 in
              let xs =
                List.filter_map
                  (fun (at, ms) -> if at >= lo && at < hi then Some ms else None)
                  lats
              in
              let a = Array.of_list xs in
              Array.sort compare a;
              if Array.length a = 0 then 0.0 else Stats.percentile a 0.95)
        in
        let st = Server.stats srv in
        (cell, all, quarter_p95, repair_ms, st, cuts, wall_s))
      cells
  in
  let pct a q = if Array.length a = 0 then 0.0 else Stats.percentile a q in
  let table =
    T.create
      ~title:
        (Printf.sprintf
           "erdos-renyi n=%d, %d clients over unix socket, %d queries each + %d trace mutations"
           n clients queries_per_client mutations)
      [
        ("netchaos", T.Left); ("ops", T.Right); ("p50 ms", T.Right); ("p95 ms", T.Right);
        ("p99 ms", T.Right); ("q1-q4 p95 ms", T.Left); ("repair p95 ms", T.Right);
        ("served", T.Right); ("shed", T.Right); ("timeout", T.Right); ("disc", T.Right);
        ("cuts", T.Right);
      ]
  in
  List.iter
    (fun (cell, all, qp95, repair_ms, st, cuts, _) ->
      T.add_row table
        [
          cell;
          string_of_int (Array.length all);
          Printf.sprintf "%.2f" (pct all 0.5);
          Printf.sprintf "%.2f" (pct all 0.95);
          Printf.sprintf "%.2f" (pct all 0.99);
          String.concat "/" (List.map (Printf.sprintf "%.1f") qp95);
          Printf.sprintf "%.1f" (pct repair_ms 0.95);
          string_of_int st.Server.served;
          string_of_int st.Server.shed;
          string_of_int st.Server.timed_out;
          string_of_int st.Server.disconnected;
          string_of_int cuts;
        ])
    results;
  T.print table;
  (match Sys.getenv_opt "CRT_D2_JSON" with
  | Some path ->
      Jsonl.write_lines
        (List.map
           (fun (cell, all, qp95, repair_ms, st, cuts, wall_s) ->
             Jsonl.obj
               [
                 ("experiment", Jsonl.str "D2");
                 ("netchaos", Jsonl.str cell);
                 ("n", Jsonl.int n);
                 ("clients", Jsonl.int clients);
                 ("ops", Jsonl.int (Array.length all));
                 ("wall_s", Jsonl.float wall_s);
                 ("response_ms_p50", Jsonl.float (pct all 0.5));
                 ("response_ms_p95", Jsonl.float (pct all 0.95));
                 ("response_ms_p99", Jsonl.float (pct all 0.99));
                 ( "quarter_p95_ms",
                   "[" ^ String.concat "," (List.map Jsonl.float qp95) ^ "]" );
                 ("repair_ms_p50", Jsonl.float (pct repair_ms 0.5));
                 ("repair_ms_p95", Jsonl.float (pct repair_ms 0.95));
                 ("conns", Jsonl.int st.Server.conns_total);
                 ("served", Jsonl.int st.Server.served);
                 ("shed", Jsonl.int st.Server.shed);
                 ("timed_out", Jsonl.int st.Server.timed_out);
                 ("disconnected", Jsonl.int st.Server.disconnected);
                 ("chaos_delays", Jsonl.int st.Server.chaos_delays);
                 ("chaos_shorts", Jsonl.int st.Server.chaos_shorts);
                 ("chaos_drops", Jsonl.int st.Server.chaos_drops);
                 ("client_cuts", Jsonl.int cuts);
               ])
           results)
        path;
      Printf.printf "json written to %s\n" path
  | None -> ());
  Printf.printf
    "expected: the socket front end serves %d closed-loop clients with per-op latency\n\
     dominated by select-tick granularity; under netchaos, cut connections surface as\n\
     disconnected outcomes and client reconnects, while every connection still ends in\n\
     exactly one outcome and the daemon never crashes.\n"
    clients

(* ------------------------------------------------------------------ *)
(* O1: path-reporting distance oracles — quality, size, speed vs k      *)

let o1 () =
  header "O1: path-reporting oracles — stretch/size/speed vs k across topologies";
  let module Po = Cr_oracle.Path_oracle in
  let module So = Cr_oracle.Sparse_oracle in
  let module Oserve = Cr_oracle.Oserve in
  let n = scale 512 in
  let side = int_of_float (Float.round (sqrt (float_of_int n))) in
  let workloads =
    [
      Experiment.Erdos_renyi { n; avg_degree = 4.0 };
      Experiment.Grid { rows = side; cols = side };
      Experiment.Power_law { n; exponent = 2.5 };
    ]
  in
  let ks = if fast then [ 2; 3 ] else [ 2; 3; 4; 5 ] in
  let queries = scale 8000 in
  let domains = if fast then 1 else 2 in
  let table =
    T.create
      ~title:
        (Printf.sprintf "%d zipf:1.1 oracle queries per cell, every walk refereed; domains=%d"
           queries domains)
      [
        ("workload", T.Left); ("oracle", T.Left); ("bound", T.Right); ("build s", T.Right);
        ("entries", T.Right); ("bits/node", T.Right); ("queries/s", T.Right); ("ok", T.Right);
        ("stretch mean", T.Right); ("max", T.Right);
      ]
  in
  let json_rows = ref [] in
  let module J = Cr_util.Jsonl in
  let n_workloads = List.length workloads in
  List.iteri
    (fun wi w ->
      let wname = Experiment.workload_name w in
      let g = Experiment.make_graph ~seed:181 w in
      let apsp = Apsp.compute_parallel g in
      let nn = Graph.n g in
      List.iter
        (fun k ->
          let oracle, build_s = time_it (fun () -> Po.build ~k ~seed:181 apsp) in
          let r =
            Oserve.run ~domains ~seed:182 ~queries ~workload:wname apsp oracle
          in
          T.add_row table
            [
              wname; Printf.sprintf "tz-path(k=%d)" k;
              Printf.sprintf "%.0f" (Po.stretch_bound oracle);
              Printf.sprintf "%.3f" build_s;
              string_of_int r.Oserve.size_entries;
              Printf.sprintf "%.0f" (float_of_int r.Oserve.storage_bits /. float_of_int nn);
              Printf.sprintf "%.0f" r.Oserve.queries_per_sec;
              Printf.sprintf "%d/%d" r.Oserve.ok r.Oserve.queries;
              T.fmt_float r.Oserve.stretch_mean; T.fmt_float r.Oserve.stretch_max;
            ];
          json_rows :=
            J.obj
              [
                ("experiment", J.str "O1"); ("workload", J.str wname);
                ("oracle", J.str "tz-path"); ("k", J.int k); ("n", J.int nn);
                ("build_s", J.float build_s);
                ("size_entries", J.int r.Oserve.size_entries);
                ("storage_bits", J.int r.Oserve.storage_bits);
                ("queries_per_sec", J.float r.Oserve.queries_per_sec);
                ("ok", J.int r.Oserve.ok); ("queries", J.int r.Oserve.queries);
                ("stretch_mean", J.float r.Oserve.stretch_mean);
                ("stretch_max", J.float r.Oserve.stretch_max);
              ]
            :: !json_rows)
        ks;
      (* the AGH sparse oracle has no k knob: one row per topology,
         refereed sequentially like crt oracle *)
      let so, so_build_s = time_it (fun () -> So.build ~seed:181 apsp) in
      let pairs =
        Experiment.default_pairs ~allow_short:true ~seed:182 apsp ~count:(min queries 2000)
      in
      let t0 = Unix.gettimeofday () in
      let ok = ref 0 in
      let sum = ref 0.0 in
      let smax = ref 0.0 in
      Array.iter
        (fun (u, v) ->
          match So.path so u v with
          | None -> ()
          | Some (a : So.answer) ->
              let c = Simulator.check_walk g ~src:u ~dst:v ~delivered:true a.So.walk in
              let tol = 1e-9 *. Float.max 1.0 a.So.est in
              if
                Simulator.is_delivered c.Simulator.outcome
                && Float.abs (c.Simulator.checked_cost -. a.So.est) <= tol
              then (
                incr ok;
                let d = Apsp.distance apsp u v in
                let s = if d = 0.0 then 1.0 else a.So.est /. d in
                sum := !sum +. s;
                if s > !smax then smax := s))
        pairs;
      let wall = Unix.gettimeofday () -. t0 in
      let np = Array.length pairs in
      let mean = if !ok = 0 then 0.0 else !sum /. float_of_int !ok in
      T.add_row table
        [
          wname; Printf.sprintf "agh-sparse(L=%d)" (So.landmark_count so);
          Printf.sprintf "%.0f" (So.stretch_bound so);
          Printf.sprintf "%.3f" so_build_s;
          string_of_int (So.size_entries so);
          Printf.sprintf "%.0f" (float_of_int (So.storage_bits so) /. float_of_int nn);
          Printf.sprintf "%.0f" (float_of_int np /. Float.max 1e-9 wall);
          Printf.sprintf "%d/%d" !ok np;
          T.fmt_float mean; T.fmt_float !smax;
        ];
      json_rows :=
        J.obj
          [
            ("experiment", J.str "O1"); ("workload", J.str wname);
            ("oracle", J.str "agh-sparse"); ("landmarks", J.int (So.landmark_count so));
            ("n", J.int nn); ("build_s", J.float so_build_s);
            ("size_entries", J.int (So.size_entries so));
            ("storage_bits", J.int (So.storage_bits so));
            ("queries_per_sec", J.float (float_of_int np /. Float.max 1e-9 wall));
            ("ok", J.int !ok); ("queries", J.int np);
            ("stretch_mean", J.float mean); ("stretch_max", J.float !smax);
          ]
        :: !json_rows;
      if wi < n_workloads - 1 then T.add_sep table)
    workloads;
  T.print table;
  (match Sys.getenv_opt "CRT_O1_JSON" with
  | Some path ->
      Cr_util.Jsonl.write_lines (List.rev !json_rows) path;
      Printf.printf "json written to %s\n" path
  | None -> ());
  Printf.printf
    "expected: every cell reports ok = queries (each reported walk re-prices to its\n\
     estimate); tz-path entries shrink and stretch grows as k rises (the space-stretch\n\
     trade-off), staying within 2k-1; agh-sparse stays within stretch 3 with ~sqrt(m)\n\
     landmarks and is exact inside vicinities.\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("T1", t1); ("T1b", t1b); ("T2", t2); ("T3", t3); ("T4", t4); ("T5", t5); ("T6", t6);
    ("T7", t7); ("T8", t8); ("T9", t9); ("F1", f1); ("F2", f2); ("F3", f3); ("A1", a1);
    ("A2", a2); ("F4", f4); ("R1", r1); ("P1", p1); ("C1", c1); ("D1", d1); ("D2", d2); ("O1", o1);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let to_run =
    if requested = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
              Printf.eprintf "unknown experiment %S (known: %s)\n" name
                (String.concat ", " (List.map fst experiments));
              None)
        requested
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let (), dt = time_it f in
      Printf.printf "[%s finished in %.1fs]\n%!" name dt)
    to_run;
  Printf.printf "\nall experiments done in %.1fs\n" (Unix.gettimeofday () -. t0)
