(* Integration tests: miniature versions of the evaluation experiments,
   asserting the *shapes* EXPERIMENTS.md reports — so the headline claims
   are continuously checked, not just printed. *)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module Gio = Cr_graph.Gio
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* shape: scale-freeness (T3 miniature) *)

let test_scale_freeness_shape () =
  let build base =
    let rng = Rng.create 5 in
    Apsp.compute (Graph.normalize (Graph.relabel rng (Generators.exponential_line ~n:48 ~base)))
  in
  let small = build 1.2 and big = build 8.0 in
  let ap_small = Baseline_ap.build ~k:3 small in
  let ap_big = Baseline_ap.build ~k:3 big in
  let agm_small = Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ()) small) in
  let agm_big = Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ()) big) in
  let mean s = Storage.mean_node_bits s.Scheme.storage in
  checkb "AP grows with log delta" true (mean ap_big > 1.5 *. mean ap_small);
  checkb "AGM06 flat in log delta" true (mean agm_big < 1.3 *. mean agm_small);
  (* both still deliver everything *)
  let pairs = Experiment.default_pairs ~seed:6 big ~count:200 in
  List.iter
    (fun sch ->
      let agg = Simulator.evaluate big sch pairs in
      checki (sch.Scheme.name ^ " delivers") (Array.length pairs) agg.Simulator.delivered)
    [ ap_big; agm_big ]

(* ------------------------------------------------------------------ *)
(* shape: worst-case O(k) guarantee on the adversarial chain (T1b) *)

let test_adversarial_chain_guarantee () =
  let k = 3 in
  let rng = Rng.create 7 in
  let g = Generators.scale_chain rng ~sigma:4 ~levels:k ~spacing:8.0 in
  let g = Graph.normalize (Graph.relabel rng g) in
  let apsp = Apsp.compute g in
  let agm = Agm06.build ~params:(Params.paper ~k ()) apsp in
  let sch = Agm06.scheme agm in
  let islands = Generators.scale_chain_islands ~sigma:4 ~levels:k () in
  let rng2 = Rng.create 8 in
  for _ = 1 to 150 do
    let j = Rng.int rng2 (Array.length islands - 1) in
    let s0, sz0 = islands.(j) and s1, sz1 = islands.(j + 1) in
    let s = s0 + Rng.int rng2 sz0 and d = s1 + Rng.int rng2 sz1 in
    if s <> d then begin
      let m = Simulator.measure apsp sch s d in
      checkb "delivered" true m.Simulator.delivered;
      checkb
        (Printf.sprintf "stretch %.2f within 2k+1" m.Simulator.stretch)
        true
        (m.Simulator.stretch <= float_of_int ((2 * k) + 1) +. 1e-6)
    end
  done;
  checki "no fallback needed under paper constants" 0 (Agm06.stats agm).Agm06.fallback_resolved

(* ------------------------------------------------------------------ *)
(* shape: the frontier ordering (T7 miniature) *)

let test_frontier_ordering () =
  let g = Experiment.make_graph ~seed:9 (Experiment.Geometric { n = 150; radius = 0.18 }) in
  let apsp = Apsp.compute g in
  let pairs = Experiment.default_pairs ~seed:10 apsp ~count:400 in
  let full = Experiment.run_scheme apsp (Baseline_full.build apsp) ~pairs in
  let s3 = Experiment.run_scheme apsp (Baseline_s3.build apsp) ~pairs in
  let tree = Experiment.run_scheme apsp (Baseline_tree.build apsp) ~pairs in
  let agm = Experiment.run_scheme apsp (Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ()) apsp)) ~pairs in
  (* everyone delivers *)
  List.iter
    (fun (r : Experiment.row) -> checki (r.Experiment.scheme ^ " all delivered") 400 r.Experiment.delivered)
    [ full; s3; tree; agm ];
  (* quality ordering *)
  checkb "full is exact" true (full.Experiment.stretch_max <= 1.0 +. 1e-9);
  checkb "s3 beats tree on tail" true (s3.Experiment.stretch_p99 < tree.Experiment.stretch_p99);
  checkb "s3 within its bound-ish" true (s3.Experiment.stretch_max <= 5.0);
  (* space ordering *)
  checkb "tree smallest" true (tree.Experiment.bits_mean < s3.Experiment.bits_mean);
  checkb "s3 below full n log n at this n? sublinear shape at least" true
    (s3.Experiment.bits_mean < 3.0 *. full.Experiment.bits_mean);
  (* headers all polylog *)
  List.iter
    (fun (r : Experiment.row) ->
      checkb (r.Experiment.scheme ^ " header small") true (r.Experiment.header_bits < 512))
    [ full; s3; tree; agm ]

(* ------------------------------------------------------------------ *)
(* end-to-end: save a workload, reload it, build and route *)

let test_roundtrip_pipeline () =
  let g = Experiment.make_graph ~seed:11 (Experiment.Ring_chords { n = 120; chords = 40 }) in
  let path = Filename.temp_file "crt_int" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gio.save g path;
      let g2 = Gio.load path in
      checki "same n" (Graph.n g) (Graph.n g2);
      let apsp = Apsp.compute g2 in
      let sch = Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:2 ()) apsp) in
      let pairs = Experiment.default_pairs ~seed:12 apsp ~count:150 in
      let agg = Simulator.evaluate apsp sch pairs in
      checki "delivers after reload" 150 agg.Simulator.delivered)

(* ------------------------------------------------------------------ *)
(* failure injection: the referee catches corrupted schemes *)

let corrupt_scheme (inner : Scheme.t) mode =
  {
    inner with
    Scheme.name = "corrupted";
    route =
      (fun ?trace:_ s d ->
        let r = inner.Scheme.route s d in
        match (mode, r.Scheme.walk) with
        | `Truncate, _ :: _ :: _ ->
            (* drop the last hop but still claim delivery *)
            { r with Scheme.walk = List.rev (List.tl (List.rev r.Scheme.walk)) }
        | `Teleport, first :: _ ->
            (* insert a non-adjacent jump *)
            let far = (first + (Graph.n inner.Scheme.graph / 2)) mod Graph.n inner.Scheme.graph in
            { r with Scheme.walk = first :: far :: List.tl r.Scheme.walk }
        | _, _ -> r);
  }

let test_referee_catches_truncation () =
  let g = Experiment.make_graph ~seed:13 (Experiment.Erdos_renyi { n = 80; avg_degree = 4.0 }) in
  let apsp = Apsp.compute g in
  let sch = corrupt_scheme (Baseline_full.build apsp) `Truncate in
  let caught = ref 0 in
  for s = 0 to 20 do
    let d = s + 40 in
    (try ignore (Simulator.measure apsp sch s d) with Simulator.Invalid_walk _ -> incr caught)
  done;
  checkb "truncation caught" true (!caught > 15)

let test_referee_catches_teleport () =
  let g = Experiment.make_graph ~seed:14 (Experiment.Erdos_renyi { n = 80; avg_degree = 4.0 }) in
  let apsp = Apsp.compute g in
  let sch = corrupt_scheme (Baseline_full.build apsp) `Teleport in
  let caught = ref 0 in
  for s = 0 to 20 do
    let d = s + 40 in
    (try ignore (Simulator.measure apsp sch s d) with Simulator.Invalid_walk _ -> incr caught)
  done;
  checkb "teleport caught" true (!caught > 15)

(* ------------------------------------------------------------------ *)
(* consistency: oracle vs scheme on the same hierarchy seeds *)

let prepared () =
  let rng = Rng.create 15 in
  Apsp.compute (Graph.normalize (Graph.relabel rng (Generators.erdos_renyi rng ~n:90 ~avg_degree:4.0)))

let test_oracle_vs_tz_routing () =
  (* the TZ routing baseline can never beat the distance its own oracle
     machinery reports by more than measurement noise... in fact routing
     cost >= oracle estimate is NOT guaranteed pairwise, but both must be
     within (4k-5) resp. (2k-1) of the truth *)
  let apsp = prepared ()
  and k = 3 in
  let oracle = Distance_oracle.build ~k ~seed:99 apsp in
  let sch = Baseline_tz.build ~k ~seed:99 apsp in
  let n = Graph.n (Apsp.graph apsp) in
  for s = 0 to n - 1 do
    let d = (s + (n / 3)) mod n in
    if s <> d then begin
      let true_d = Apsp.distance apsp s d in
      let est = Distance_oracle.query oracle s d in
      let m = Simulator.measure apsp sch s d in
      checkb "oracle within bound" true (est <= (float_of_int ((2 * k) - 1) *. true_d) +. 1e-9);
      checkb "routing within bound" true
        (m.Simulator.cost <= (float_of_int ((4 * k) - 5) *. true_d) +. 1e-9)
    end
  done

(* ------------------------------------------------------------------ *)
(* determinism of the whole pipeline *)

let test_pipeline_deterministic () =
  let run () =
    let g = Experiment.make_graph ~seed:16 (Experiment.Geometric { n = 100; radius = 0.2 }) in
    let apsp = Apsp.compute g in
    let sch = Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ~seed:4 ()) apsp) in
    let pairs = Experiment.default_pairs ~seed:17 apsp ~count:100 in
    let agg = Simulator.evaluate apsp sch pairs in
    (agg.Simulator.delivered, agg.Simulator.stretch_stats.Cr_util.Stats.mean,
     Storage.total_bits sch.Scheme.storage)
  in
  let a = run () and b = run () in
  checkb "identical runs" true (a = b)

let () =
  Alcotest.run "integration"
    [
      ( "shapes",
        [
          Alcotest.test_case "scale-freeness (T3)" `Quick test_scale_freeness_shape;
          Alcotest.test_case "adversarial O(k) guarantee (T1b)" `Quick test_adversarial_chain_guarantee;
          Alcotest.test_case "frontier ordering (T7)" `Quick test_frontier_ordering;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "save/load/route" `Quick test_roundtrip_pipeline;
          Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "truncation caught" `Quick test_referee_catches_truncation;
          Alcotest.test_case "teleport caught" `Quick test_referee_catches_teleport;
        ] );
      ( "cross-checks",
        [ Alcotest.test_case "oracle vs tz routing" `Quick test_oracle_vs_tz_routing ] );
    ]
