(* Tests for the resilience subsystem: fault plans (determinism, nesting),
   the failure-aware simulator's structured outcomes (no code path may
   raise), the bounded retry/reroute policy, and degradation sweeps
   (100% delivery at rate 0, monotone non-increasing in the rate). *)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module Fault_plan = Cr_resilience.Fault_plan
module Fsim = Cr_resilience.Fsim
module Sweep = Cr_resilience.Sweep
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let prepared_graph ?(n = 100) ?(avg = 4.0) seed =
  let rng = Rng.create seed in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n ~avg_degree:avg) in
  Apsp.compute (Graph.normalize g)

let line_graph () = Graph.create ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]

let dummy_scheme g walk_fn =
  {
    Scheme.name = "dummy";
    graph = g;
    storage = Storage.create ~n:(Graph.n g);
    header_bits = Scheme.default_header_bits ~n:(Graph.n g);
    route = (fun ?trace:_ s d -> let w, ok = walk_fn s d in { Scheme.walk = w; delivered = ok; phases_used = 1 });
  }

(* ------------------------------------------------------------------ *)
(* Fault_plan *)

let test_plan_none () =
  let g = line_graph () in
  let p = Fault_plan.none g in
  checkb "edges alive" true (Fault_plan.hop_ok p 0 1);
  checki "no dead edges" 0 (Fault_plan.failed_edge_count p);
  checki "no dead nodes" 0 (Fault_plan.failed_node_count p)

let test_plan_rate_extremes_and_validation () =
  let apsp = prepared_graph 3 in
  let g = Apsp.graph apsp in
  let p0 = Fault_plan.independent_edges ~seed:1 g ~rate:0.0 in
  let p1 = Fault_plan.independent_edges ~seed:1 g ~rate:1.0 in
  checki "rate 0 kills nothing" 0 (Fault_plan.failed_edge_count p0);
  checki "rate 1 kills everything" (Graph.m g) (Fault_plan.failed_edge_count p1);
  checkb "rate out of range rejected" true
    (try ignore (Fault_plan.independent_edges ~seed:1 g ~rate:1.5); false
     with Invalid_argument _ -> true);
  checkb "nan rejected" true
    (try ignore (Fault_plan.node_crashes ~seed:1 g ~rate:Float.nan); false
     with Invalid_argument _ -> true)

let test_plan_deterministic_and_nested () =
  let apsp = prepared_graph 5 in
  let g = Apsp.graph apsp in
  let dead_set rate =
    let p = Fault_plan.independent_edges ~seed:7 g ~rate in
    List.filter (fun (u, v, _) -> not (Fault_plan.edge_alive p u v)) (Graph.edges g)
  in
  (* determinism: same seed, same rate, same set *)
  Alcotest.(check int) "deterministic" (List.length (dead_set 0.1)) (List.length (dead_set 0.1));
  (* nesting: the fault set at a lower rate is a subset of a higher one *)
  let d05 = dead_set 0.05 and d20 = dead_set 0.2 in
  checkb "nonempty at 0.2" true (List.length d20 > 0);
  List.iter (fun e -> checkb "nested" true (List.mem e d20)) d05

let test_plan_node_crashes () =
  let apsp = prepared_graph 9 in
  let g = Apsp.graph apsp in
  let p = Fault_plan.node_crashes ~seed:3 g ~rate:0.2 in
  let dead = Fault_plan.failed_node_count p in
  checkb "some crashed" true (dead > 0 && dead < Graph.n g);
  (* a hop into a crashed node is not ok *)
  Graph.iter_edges g (fun u v _ ->
      if not (Fault_plan.node_alive p v) then checkb "hop into crash blocked" false (Fault_plan.hop_ok p u v))

let test_usage_of_walks () =
  let g = line_graph () in
  let usage = Fault_plan.usage_of_walks g [ [ 0; 1; 2 ]; [ 1; 2; 3 ]; [ 2; 1 ] ] in
  (* edge (1,2) traversed 3 times (either direction), tops the list *)
  (match usage with
  | (1, 2, 3) :: _ -> ()
  | (u, v, c) :: _ -> Alcotest.failf "expected (1,2,3) first, got (%d,%d,%d)" u v c
  | [] -> Alcotest.fail "empty usage");
  (* non-edges in walks are ignored *)
  let usage2 = Fault_plan.usage_of_walks g [ [ 0; 3; 2 ] ] in
  checki "teleport hop ignored" 1 (List.length usage2)

let test_targeted_plan () =
  let g = line_graph () in
  let hot = Fault_plan.usage_of_walks g [ [ 0; 1; 2; 3 ]; [ 1; 2 ] ] in
  let p = Fault_plan.targeted_edges g ~hot ~count:1 in
  checki "one edge dead" 1 (Fault_plan.failed_edge_count p);
  checkb "hottest edge (1,2) dead" false (Fault_plan.edge_alive p 1 2)

(* ------------------------------------------------------------------ *)
(* Fsim structured outcomes *)

let test_fsim_delivered_healthy () =
  let g = line_graph () in
  let apsp = Apsp.compute g in
  let sch = Baseline_full.build apsp in
  let r = Fsim.run (Fsim.default_policy g) (Fault_plan.none g) apsp sch ~src:0 ~dst:3 in
  checkb "delivered" true (Simulator.is_delivered r.Fsim.outcome);
  Alcotest.(check (list int)) "walk" [ 0; 1; 2; 3 ] r.Fsim.walk;
  checki "hops" 3 r.Fsim.hops;
  checki "no retries" 0 r.Fsim.retries;
  Alcotest.(check (float 1e-9)) "stretch 1" 1.0 r.Fsim.stretch

let test_fsim_loop_detected_cyclic_walk () =
  let g = line_graph () in
  let apsp = Apsp.compute g in
  (* deliberately cyclic: bounce 0-1 far beyond any legitimate revisit
     count, then claim delivery *)
  let bounce = List.concat (List.init 40 (fun _ -> [ 0; 1 ])) @ [ 2; 3 ] in
  let sch = dummy_scheme g (fun _ _ -> (bounce, true)) in
  let r = Fsim.run (Fsim.default_policy g) (Fault_plan.none g) apsp sch ~src:0 ~dst:3 in
  checkb "loop detected" true (r.Fsim.outcome = Simulator.Loop_detected)

let test_fsim_ttl_exceeded () =
  let g = line_graph () in
  let apsp = Apsp.compute g in
  let sch = Baseline_full.build apsp in
  let policy = { (Fsim.default_policy g) with Fsim.ttl = 2 } in
  let r = Fsim.run policy (Fault_plan.none g) apsp sch ~src:0 ~dst:3 in
  checkb "ttl exceeded" true (r.Fsim.outcome = Simulator.Ttl_exceeded);
  checki "stopped at budget" 2 r.Fsim.hops

let test_fsim_dropped_at_fault_tree_scheme () =
  let g = line_graph () in
  let apsp = Apsp.compute g in
  let sch = Baseline_tree.build apsp in
  (* sanity: tree scheme delivers 0 -> 3 when healthy *)
  let healthy = Fsim.run (Fsim.default_policy g) (Fault_plan.none g) apsp sch ~src:0 ~dst:3 in
  checkb "healthy delivery" true (Simulator.is_delivered healthy.Fsim.outcome);
  (* single targeted edge failure on the walk *)
  let plan = Fault_plan.targeted_edges g ~hot:[ (1, 2, 99) ] ~count:1 in
  let r = Fsim.run (Fsim.default_policy g) plan apsp sch ~src:0 ~dst:3 in
  checkb "dropped at the failed edge" true (r.Fsim.outcome = Simulator.Dropped_at_fault (1, 2));
  (* the realized walk is truncated at the stall *)
  Alcotest.(check (list int)) "truncated walk" [ 0; 1 ] r.Fsim.walk

let test_fsim_dropped_at_fault_agm06 () =
  let apsp = prepared_graph ~n:80 21 in
  let g = Apsp.graph apsp in
  let sch = Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ~seed:21 ()) apsp) in
  let rng = Rng.create 4 in
  let pairs = Simulator.sample_pairs rng apsp ~count:20 in
  Array.iter
    (fun (s, d) ->
      let healthy = (sch.Scheme.route s d).Scheme.walk in
      match healthy with
      | a :: b :: _ when a <> b ->
          (* kill the first hop of the healthy walk: replay must stall
             exactly there, without raising *)
          let plan = Fault_plan.targeted_edges g ~hot:[ (a, b, 1) ] ~count:1 in
          let r = Fsim.run (Fsim.default_policy g) plan apsp sch ~src:s ~dst:d in
          checkb "dropped at first hop" true (r.Fsim.outcome = Simulator.Dropped_at_fault (a, b))
      | _ -> ())
    pairs

let test_fsim_invalid_hop_teleport () =
  let g = line_graph () in
  let apsp = Apsp.compute g in
  let sch = dummy_scheme g (fun s d -> ([ s; d ], true)) in
  let r = Fsim.run (Fsim.default_policy g) (Fault_plan.none g) apsp sch ~src:0 ~dst:3 in
  (match r.Fsim.outcome with
  | Simulator.Invalid_hop _ -> ()
  | o -> Alcotest.failf "expected Invalid_hop, got %s" (Simulator.outcome_to_string o))

let test_fsim_scheme_exception_is_classified () =
  let g = line_graph () in
  let apsp = Apsp.compute g in
  let sch = dummy_scheme g (fun _ _ -> failwith "scheme blew up") in
  let r = Fsim.run (Fsim.default_policy g) (Fault_plan.none g) apsp sch ~src:0 ~dst:3 in
  (match r.Fsim.outcome with
  | Simulator.Invalid_hop msg -> checkb "mentions failure" true (String.length msg > 0)
  | o -> Alcotest.failf "expected Invalid_hop, got %s" (Simulator.outcome_to_string o))

let test_fsim_no_route_honest_failure () =
  let g = line_graph () in
  let apsp = Apsp.compute g in
  let sch = dummy_scheme g (fun s _ -> ([ s; 1; s ], false)) in
  let r = Fsim.run (Fsim.default_policy g) (Fault_plan.none g) apsp sch ~src:0 ~dst:3 in
  checkb "no-route" true (r.Fsim.outcome = Simulator.No_route)

let test_fsim_retry_reroutes_around_fault () =
  (* square: 0-1-2 is the cheap path, 0-3-2 the detour.  Kill (0,1): with
     no retries the message drops; with one retry it deflects to 3 and
     delivers. *)
  let g = Graph.create ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (0, 3, 2.0); (3, 2, 2.0) ] in
  let apsp = Apsp.compute g in
  let sch = Baseline_full.build apsp in
  let plan = Fault_plan.targeted_edges g ~hot:[ (0, 1, 9) ] ~count:1 in
  let r0 = Fsim.run (Fsim.default_policy g) plan apsp sch ~src:0 ~dst:2 in
  checkb "dropped without retries" true (r0.Fsim.outcome = Simulator.Dropped_at_fault (0, 1));
  let r1 = Fsim.run (Fsim.default_policy ~max_retries:1 g) plan apsp sch ~src:0 ~dst:2 in
  checkb "delivered with one retry" true (Simulator.is_delivered r1.Fsim.outcome);
  checki "one retry counted" 1 r1.Fsim.retries;
  Alcotest.(check (list int)) "detour walk" [ 0; 3; 2 ] r1.Fsim.walk

let test_fsim_retry_loop_is_detected () =
  (* line graph with the middle edge dead and retries allowed: the only
     deflection bounces between 0 and 1; the stall state repeats and the
     loop guard fires instead of spinning until TTL *)
  let g = line_graph () in
  let apsp = Apsp.compute g in
  let sch = Baseline_full.build apsp in
  let plan = Fault_plan.targeted_edges g ~hot:[ (1, 2, 9) ] ~count:1 in
  let r = Fsim.run (Fsim.default_policy ~max_retries:5 g) plan apsp sch ~src:0 ~dst:3 in
  checkb "classified as loop or drop" true
    (match r.Fsim.outcome with
    | Simulator.Loop_detected | Simulator.Dropped_at_fault _ -> true
    | _ -> false);
  checkb "did not deliver" false (Simulator.is_delivered r.Fsim.outcome)

let test_fsim_crashed_destination_never_raises () =
  let apsp = prepared_graph ~n:60 23 in
  let g = Apsp.graph apsp in
  let sch = Baseline_tree.build apsp in
  (* crash every node's worth of rate until dst 5 is dead *)
  let dead_nodes = Array.make (Graph.n g) false in
  ignore dead_nodes;
  let plan = Fault_plan.node_crashes ~seed:11 g ~rate:0.5 in
  let policy = Fsim.default_policy ~max_retries:2 g in
  for s = 0 to Graph.n g - 1 do
    for d = 0 to min 10 (Graph.n g - 1) do
      let r = Fsim.run policy plan apsp sch ~src:s ~dst:d in
      (* outcome is structured, never an exception; delivery implies both
         endpoints alive *)
      if Simulator.is_delivered r.Fsim.outcome then begin
        checkb "src alive" true (Fault_plan.node_alive plan s);
        checkb "dst alive" true (Fault_plan.node_alive plan d)
      end
    done
  done

(* ------------------------------------------------------------------ *)
(* Sweep *)

let sweep_schemes apsp =
  [
    Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ~seed:31 ()) apsp);
    Baseline_tz.build ~k:3 apsp;
    Baseline_tree.build apsp;
  ]

let test_sweep_full_delivery_at_zero_and_monotone () =
  let apsp = prepared_graph ~n:64 31 in
  let rng = Rng.create 32 in
  let pairs = Simulator.sample_pairs rng apsp ~count:150 in
  let rates = [ 0.0; 0.05; 0.1; 0.2 ] in
  let cells =
    Sweep.sweep ~model:Sweep.Edges ~seed:33 ~rates apsp (sweep_schemes apsp) pairs
  in
  checki "cells" (3 * List.length rates) (List.length cells);
  (* group by scheme, check p=0 perfection and monotonicity *)
  List.iter
    (fun (sch : Scheme.t) ->
      let mine = List.filter (fun (c : Sweep.cell) -> c.Sweep.scheme = sch.Scheme.name) cells in
      checki "rates per scheme" (List.length rates) (List.length mine);
      (match mine with
      | first :: _ ->
          checki (sch.Scheme.name ^ " delivers all at rate 0") (Array.length pairs)
            first.Sweep.delivered
      | [] -> Alcotest.fail "missing scheme");
      let last = ref 1.0 in
      List.iter
        (fun c ->
          let ratio = Sweep.delivery_ratio c in
          checkb
            (Printf.sprintf "%s monotone at rate %g (%.3f <= %.3f)" sch.Scheme.name c.Sweep.rate
               ratio !last)
            true (ratio <= !last +. 1e-9);
          last := ratio)
        mine)
    (sweep_schemes apsp)

let test_sweep_outcome_accounting () =
  let apsp = prepared_graph ~n:64 37 in
  let rng = Rng.create 38 in
  let pairs = Simulator.sample_pairs rng apsp ~count:100 in
  let cells =
    Sweep.sweep ~model:Sweep.Edges ~seed:39 ~rates:[ 0.15 ] apsp (sweep_schemes apsp) pairs
  in
  List.iter
    (fun (c : Sweep.cell) ->
      checki "outcomes partition the pairs" c.Sweep.pairs
        (c.Sweep.delivered + c.Sweep.dropped + c.Sweep.ttl_kills + c.Sweep.loops
        + c.Sweep.no_route + c.Sweep.invalid);
      checki "nothing skipped under edge faults" 0 c.Sweep.skipped)
    cells

let test_sweep_json_shape () =
  let apsp = prepared_graph ~n:64 41 in
  let rng = Rng.create 42 in
  let pairs = Simulator.sample_pairs rng apsp ~count:50 in
  let cells =
    Sweep.sweep ~model:Sweep.Edges ~seed:43 ~rates:[ 0.0; 0.1 ] apsp
      [ Baseline_tree.build apsp ] pairs
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun c ->
      let j = Sweep.cell_to_json c in
      checkb "object" true (j.[0] = '{' && j.[String.length j - 1] = '}');
      List.iter
        (fun field -> checkb (field ^ " present") true (contains j ("\"" ^ field ^ "\":")))
        [ "scheme"; "model"; "rate"; "pairs"; "delivered"; "delivery_ratio"; "stretch_mean"; "retries" ])
    cells

let test_sweep_nodes_model_skips_dead_endpoints () =
  let apsp = prepared_graph ~n:64 47 in
  let rng = Rng.create 48 in
  let pairs = Simulator.sample_pairs rng apsp ~count:100 in
  let cells =
    Sweep.sweep ~model:Sweep.Nodes ~seed:49 ~rates:[ 0.3 ] apsp [ Baseline_tree.build apsp ] pairs
  in
  (match cells with
  | [ c ] ->
      checkb "some pairs skipped" true (c.Sweep.skipped > 0);
      checki "evaluated + skipped = sampled" (Array.length pairs) (c.Sweep.pairs + c.Sweep.skipped)
  | _ -> Alcotest.fail "one cell expected")

let test_model_of_string () =
  checkb "edges" true (Sweep.model_of_string "edges" = Ok Sweep.Edges);
  checkb "nodes" true (Sweep.model_of_string "nodes" = Ok Sweep.Nodes);
  checkb "targeted" true (Sweep.model_of_string "targeted" = Ok Sweep.Targeted);
  checkb "unknown rejected" true (Result.is_error (Sweep.model_of_string "cosmic-rays"))

(* ------------------------------------------------------------------ *)
(* qcheck: Fsim never raises, whatever the faults *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"fsim total on random graphs and fault rates" ~count:10
      (pair (int_range 0 200) (int_range 0 100))
      (fun (seed, pct) ->
        let apsp = prepared_graph ~n:50 seed in
        let g = Apsp.graph apsp in
        let rate = float_of_int pct /. 100.0 in
        let plan = Fault_plan.independent_edges ~seed g ~rate in
        let sch = Baseline_tree.build apsp in
        let policy = Fsim.default_policy ~max_retries:2 g in
        let rng = Rng.create (seed + 1) in
        let pairs = Simulator.sample_pairs ~allow_short:true rng apsp ~count:30 in
        Array.for_all
          (fun (s, d) ->
            let r = Fsim.run policy plan apsp sch ~src:s ~dst:d in
            (* totality + sane accounting *)
            r.Fsim.hops <= policy.Fsim.ttl && r.Fsim.retries <= policy.Fsim.max_retries)
          pairs);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "resilience"
    [
      ( "fault_plan",
        [
          Alcotest.test_case "none" `Quick test_plan_none;
          Alcotest.test_case "rate extremes and validation" `Quick test_plan_rate_extremes_and_validation;
          Alcotest.test_case "deterministic and nested" `Quick test_plan_deterministic_and_nested;
          Alcotest.test_case "node crashes" `Quick test_plan_node_crashes;
          Alcotest.test_case "usage of walks" `Quick test_usage_of_walks;
          Alcotest.test_case "targeted plan" `Quick test_targeted_plan;
        ] );
      ( "fsim",
        [
          Alcotest.test_case "delivered healthy" `Quick test_fsim_delivered_healthy;
          Alcotest.test_case "loop detected on cyclic walk" `Quick test_fsim_loop_detected_cyclic_walk;
          Alcotest.test_case "ttl exceeded" `Quick test_fsim_ttl_exceeded;
          Alcotest.test_case "dropped at fault (tree)" `Quick test_fsim_dropped_at_fault_tree_scheme;
          Alcotest.test_case "dropped at fault (agm06)" `Quick test_fsim_dropped_at_fault_agm06;
          Alcotest.test_case "invalid hop teleport" `Quick test_fsim_invalid_hop_teleport;
          Alcotest.test_case "scheme exception classified" `Quick test_fsim_scheme_exception_is_classified;
          Alcotest.test_case "honest no-route" `Quick test_fsim_no_route_honest_failure;
          Alcotest.test_case "retry reroutes around fault" `Quick test_fsim_retry_reroutes_around_fault;
          Alcotest.test_case "retry loop detected" `Quick test_fsim_retry_loop_is_detected;
          Alcotest.test_case "crashed endpoints never raise" `Quick test_fsim_crashed_destination_never_raises;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "full delivery at 0, monotone" `Quick test_sweep_full_delivery_at_zero_and_monotone;
          Alcotest.test_case "outcome accounting" `Quick test_sweep_outcome_accounting;
          Alcotest.test_case "json shape" `Quick test_sweep_json_shape;
          Alcotest.test_case "nodes model skips dead endpoints" `Quick test_sweep_nodes_model_skips_dead_endpoints;
          Alcotest.test_case "model parsing" `Quick test_model_of_string;
        ] );
      ("properties", qsuite);
    ]
