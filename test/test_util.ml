(* Tests for the cr_util library: PRNG, statistics, bit accounting,
   digit hashing, table rendering, CRC32 checksums. *)

module Rng = Cr_util.Rng
module Stats = Cr_util.Stats
module Bits = Cr_util.Bits
module Digit_hash = Cr_util.Digit_hash
module Ascii_table = Cr_util.Ascii_table

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_rng_int_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_covers () =
  let r = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int r 5) <- true
  done;
  Array.iteri (fun i s -> checkb (Printf.sprintf "value %d seen" i) true s) seen

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    checkb "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let r = Rng.create 5 in
  for _ = 1 to 50 do
    checkb "p=0 false" false (Rng.bernoulli r 0.0);
    checkb "p=1 true" true (Rng.bernoulli r 1.0)
  done

let test_rng_bernoulli_rate () =
  let r = Rng.create 13 in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  checkb "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_rng_split_independent () =
  let a = Rng.create 99 in
  let b = Rng.split a in
  let xs = Array.init 20 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 20 (fun _ -> Rng.bits64 b) in
  checkb "split streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 21 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let r = Rng.create 31 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let r = Rng.create 37 in
  (* small m: Floyd path *)
  let s = Rng.sample_without_replacement r 5 1000 in
  checki "size" 5 (Array.length s);
  let tbl = Hashtbl.create 5 in
  Array.iter
    (fun v ->
      checkb "in range" true (v >= 0 && v < 1000);
      checkb "distinct" false (Hashtbl.mem tbl v);
      Hashtbl.replace tbl v ())
    s;
  (* large m: shuffle path *)
  let s2 = Rng.sample_without_replacement r 90 100 in
  checki "size2" 90 (Array.length s2);
  let tbl2 = Hashtbl.create 90 in
  Array.iter (fun v -> Hashtbl.replace tbl2 v ()) s2;
  checki "distinct2" 90 (Hashtbl.length tbl2);
  (* edge: m = n *)
  let s3 = Rng.sample_without_replacement r 10 10 in
  let sorted = Array.copy s3 in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "m=n is permutation" (Array.init 10 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean () =
  checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  checkf "mean empty" 0.0 (Stats.mean [||])

let test_stats_stddev () =
  checkf "constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  checkf "known" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  checkf "p0" 1.0 (Stats.percentile xs 0.0);
  checkf "p50" 3.0 (Stats.percentile xs 0.5);
  checkf "p100" 5.0 (Stats.percentile xs 1.0);
  checkf "interp" 1.5 (Stats.percentile xs 0.125)

let test_stats_percentile_edges () =
  (* a single-element sample answers every quantile with that element *)
  let one = [| 7.5 |] in
  checkf "single p0" 7.5 (Stats.percentile one 0.0);
  checkf "single p50" 7.5 (Stats.percentile one 0.5);
  checkf "single p100" 7.5 (Stats.percentile one 1.0);
  (* q = 0 and q = 1 are exact order statistics, never interpolated *)
  let xs = [| -3.0; 4.0; 10.0 |] in
  checkf "q0 is min" (-3.0) (Stats.percentile xs 0.0);
  checkf "q1 is max" 10.0 (Stats.percentile xs 1.0);
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.percentile: empty sample")
    (fun () -> ignore (Stats.percentile [||] 0.5))

let test_stats_summarize () =
  let s = Stats.summarize [| 3.0; 1.0; 2.0 |] in
  checki "count" 3 s.Stats.count;
  checkf "min" 1.0 s.Stats.min;
  checkf "max" 3.0 s.Stats.max;
  checkf "mean" 2.0 s.Stats.mean;
  checkf "p50" 2.0 s.Stats.p50

let test_stats_summarize_empty () =
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize [||]))

let test_stats_histogram () =
  let counts = Stats.histogram ~buckets:[| 1.0; 2.0 |] [| 0.5; 1.0; 1.5; 2.5; 3.0 |] in
  Alcotest.(check (array int)) "buckets" [| 2; 1; 2 |] counts

let test_stats_cdf () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "below" 0.0 (Stats.cdf_at xs 0.5);
  checkf "mid" 0.5 (Stats.cdf_at xs 2.0);
  checkf "above" 1.0 (Stats.cdf_at xs 10.0)

let test_stats_linear_fit () =
  let a, b = Stats.linear_fit [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |] in
  checkf "slope" 2.0 a;
  checkf "intercept" 1.0 b

let test_stats_ratio () =
  checkf "plain" 0.5 (Stats.ratio 1 2);
  checkf "zero numerator" 0.0 (Stats.ratio 0 7);
  (* the zero-total case every hit-rate field hits on an empty batch *)
  checkf "zero denominator" 0.0 (Stats.ratio 5 0)

(* ------------------------------------------------------------------ *)
(* Ttcache *)

module Ttcache = Cr_util.Ttcache

let test_ttcache_basics () =
  let t = Ttcache.create ~capacity:100 () in
  checki "capacity rounds up to a power of two" 128 (Ttcache.capacity t);
  checkb "miss on empty" true (Ttcache.find t ~gen:0 ~key:7 = None);
  Ttcache.add t ~gen:0 ~key:7 42;
  checkb "hit returns the stored value" true (Ttcache.find t ~gen:0 ~key:7 = Some 42);
  checkb "other key still misses" true (Ttcache.find t ~gen:0 ~key:8 = None);
  let s = Ttcache.stats t in
  checki "hits counted" 1 s.Ttcache.hits;
  checki "misses counted" 2 s.Ttcache.misses;
  checki "stats capacity" 128 s.Ttcache.capacity;
  checkb "non-positive capacity rejected" true
    (try
       ignore (Ttcache.create ~capacity:0 () : unit Ttcache.t);
       false
     with Invalid_argument _ -> true)

let test_ttcache_generation_invalidates () =
  let t = Ttcache.create ~capacity:64 () in
  Ttcache.add t ~gen:0 ~key:3 30;
  checkb "hit in its own generation" true (Ttcache.find t ~gen:0 ~key:3 = Some 30);
  (* bumping the generation is O(1) invalidation: no array touch, the
     old entry just stops matching *)
  checkb "stale generation misses" true (Ttcache.find t ~gen:1 ~key:3 = None);
  Ttcache.add t ~gen:1 ~key:3 31;
  checkb "fresh generation hit" true (Ttcache.find t ~gen:1 ~key:3 = Some 31);
  checkb "old generation stays dead" true (Ttcache.find t ~gen:0 ~key:3 = None);
  let s = Ttcache.stats t in
  checkb "stale-slot reclaim counted as aged" true (s.Ttcache.aged >= 1)

let test_ttcache_salt_spreads () =
  (* same keys, different salts: both tables answer identically even
     though their bucket layouts differ *)
  let a = Ttcache.create ~salt:1 ~capacity:32 ()
  and b = Ttcache.create ~salt:2 ~capacity:32 () in
  for key = 0 to 19 do
    Ttcache.add a ~gen:0 ~key (key * 11);
    Ttcache.add b ~gen:0 ~key (key * 11)
  done;
  for key = 0 to 19 do
    let va = Ttcache.find a ~gen:0 ~key and vb = Ttcache.find b ~gen:0 ~key in
    checkb "same hit set semantics" true
      (match (va, vb) with
      | Some x, Some y -> x = key * 11 && y = key * 11
      | Some x, None | None, Some x -> x = key * 11
      | None, None -> true)
  done

(* N domains hammer one table with overlapping keys while marching
   through generations.  Every stored value encodes its (key, gen), so
   a single counter catches torn entries, cross-key mixups and
   stale-generation hits alike: a reader probing generation g must get
   exactly [value key g] or a miss, never anything else. *)
let test_ttcache_concurrent_stress () =
  let t = Ttcache.create ~capacity:256 () in
  let value key gen = (key * 1_000_003) + (gen * 7919) in
  let wrong = Atomic.make 0 in
  let worker d () =
    let rng = Rng.create (100 + d) in
    for gen = 0 to 2 do
      for _ = 1 to 5_000 do
        let key = Rng.int rng 64 in
        match Ttcache.find t ~gen ~key with
        | Some v -> if v <> value key gen then Atomic.incr wrong
        | None -> Ttcache.add t ~gen ~key (value key gen)
      done
    done
  in
  let ds = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  checki "no torn, cross-key or cross-generation value" 0 (Atomic.get wrong);
  (* monotone generation semantics: a bump past everything written
     leaves nothing findable *)
  for key = 0 to 63 do
    checkb "post-bump miss" true (Ttcache.find t ~gen:99 ~key = None)
  done;
  let s = Ttcache.stats t in
  checkb "contended table still served hits" true (s.Ttcache.hits > 0)

(* ------------------------------------------------------------------ *)
(* Jsonl *)

module Jsonl = Cr_util.Jsonl

let checks = Alcotest.(check string)

let test_jsonl_float_finite () =
  checks "integral" "1.0" (Jsonl.float 1.0);
  checks "negative integral" "-2.0" (Jsonl.float (-2.0));
  checks "fraction" "1.5" (Jsonl.float 1.5);
  (* negative zero still renders as a plain number *)
  checks "negative zero" "-0.0" (Jsonl.float (-0.0))

let test_jsonl_float_non_finite () =
  (* JSON has no non-finite numbers: the convention (DESIGN.md §7) is
     null, never the invalid tokens "inf"/"nan" *)
  checks "inf" "null" (Jsonl.float infinity);
  checks "neg inf" "null" (Jsonl.float neg_infinity);
  checks "nan" "null" (Jsonl.float Float.nan)

let test_jsonl_non_finite_rows_validate () =
  (* the exact shape a failed route produces: stretch = infinity *)
  let row =
    Jsonl.obj
      [
        ("scheme", Jsonl.str "agm06");
        ("delivered", Jsonl.bool false);
        ("stretch", Jsonl.float infinity);
        ("stretch_p99", Jsonl.float Float.nan);
        ("cost", Jsonl.float (-0.0));
      ]
  in
  (match Jsonl.validate row with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "row with non-finite floats must stay valid JSON: %s" msg);
  checkb "no inf token" false
    (let rec find i =
       i + 3 <= String.length row && (String.sub row i 3 = "inf" || find (i + 1))
     in
     find 0)

let test_jsonl_validate () =
  let ok s = checkb (Printf.sprintf "accepts %s" s) true (Jsonl.validate s = Ok ()) in
  let bad s = checkb (Printf.sprintf "rejects %s" s) true (Result.is_error (Jsonl.validate s)) in
  ok "null";
  ok "true";
  ok "-12.5e3";
  ok "\"a \\\"quoted\\\" string\"";
  ok "[1,2,[],{\"k\":null}]";
  ok "{\"a\":1,\"b\":[true,false],\"c\":{\"d\":\"e\"}}";
  ok "  {\"spaced\" : 1}  ";
  bad "";
  bad "inf";
  bad "nan";
  bad "{\"stretch\":inf}";
  bad "{\"a\":1,}";
  bad "[1 2]";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "{\"a\":1} trailing";
  bad "01";
  bad "1."

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with exception End_of_file -> List.rev acc | l -> go (l :: acc)
  in
  let ls = go [] in
  close_in ic;
  ls

let test_jsonl_writer_flushes_per_line () =
  let path = Filename.temp_file "crwriter" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w = Jsonl.Writer.create path in
      checkb "path" true (Jsonl.Writer.path w = path);
      Jsonl.Writer.write w "{\"a\":1}";
      Jsonl.Writer.write w "{\"b\":2}";
      (* flushed per line: both records visible before close, so a
         signal arriving now cannot truncate the last line *)
      Alcotest.(check (list string)) "visible before close" [ "{\"a\":1}"; "{\"b\":2}" ]
        (read_lines path);
      Jsonl.Writer.close w;
      Alcotest.(check (list string)) "unchanged by close" [ "{\"a\":1}"; "{\"b\":2}" ]
        (read_lines path))

let test_jsonl_flush_all_writers () =
  let path = Filename.temp_file "crwriter" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w = Jsonl.Writer.create path in
      Jsonl.Writer.write w "{\"c\":3}";
      (* the registry walk of the signal handlers: must not raise, and
         closed writers must have dropped out of the registry *)
      Jsonl.flush_all_writers ();
      checki "still one line" 1 (List.length (read_lines path));
      Jsonl.Writer.close w;
      Jsonl.flush_all_writers ())

(* ------------------------------------------------------------------ *)
(* Domain_pool shared lifecycle *)

module Pool = Cr_util.Domain_pool

let pool_sums_correctly () =
  let p = Pool.shared () in
  let acc = Atomic.make 0 in
  Pool.parallel_for p ~n:1000 (fun i -> ignore (Atomic.fetch_and_add acc i));
  checki "sum" (999 * 1000 / 2) (Atomic.get acc)

let test_pool_shutdown_idempotent () =
  pool_sums_correctly ();
  Pool.shutdown_shared ();
  Pool.shutdown_shared () (* second shutdown is a no-op *);
  (* the shared pool re-initializes transparently after shutdown *)
  pool_sums_correctly ();
  Pool.shutdown_shared ()

let test_pool_resize () =
  Pool.resize_shared 2;
  checki "resized" 2 (Pool.domains (Pool.shared ()));
  pool_sums_correctly ();
  Pool.resize_shared 2 (* same size: a no-op, not a rebuild *);
  checki "still 2" 2 (Pool.domains (Pool.shared ()));
  Pool.resize_shared 3;
  checki "regrown" 3 (Pool.domains (Pool.shared ()));
  pool_sums_correctly ();
  Pool.shutdown_shared ()

(* ------------------------------------------------------------------ *)
(* Bits *)

let test_bits_for () =
  checki "0" 0 (Bits.bits_for 0);
  checki "1" 1 (Bits.bits_for 1);
  checki "2" 1 (Bits.bits_for 2);
  checki "3" 2 (Bits.bits_for 3);
  checki "256" 8 (Bits.bits_for 256);
  checki "257" 9 (Bits.bits_for 257)

let test_ceil_log2 () =
  checki "1" 0 (Bits.ceil_log2 1);
  checki "2" 1 (Bits.ceil_log2 2);
  checki "1024" 10 (Bits.ceil_log2 1024);
  checki "1025" 11 (Bits.ceil_log2 1025)

let test_ceil_pow () =
  checki "sqrt" 32 (Bits.ceil_pow 1024.0 0.5);
  checki "cube root" 10 (Bits.ceil_pow 1000.0 (1.0 /. 3.0));
  checki "identity" 7 (Bits.ceil_pow 7.0 1.0)

(* ------------------------------------------------------------------ *)
(* Digit_hash *)

let test_hash_deterministic () =
  let h = Digit_hash.create ~seed:1 ~sigma:8 ~digits:4 in
  Alcotest.(check (array int)) "same" (Digit_hash.hash h 12345) (Digit_hash.hash h 12345)

let test_hash_digit_range () =
  let h = Digit_hash.create ~seed:2 ~sigma:5 ~digits:3 in
  for id = 0 to 999 do
    Array.iter (fun d -> checkb "digit in range" true (d >= 0 && d < 5)) (Digit_hash.hash h id)
  done

let test_hash_digit_consistency () =
  let h = Digit_hash.create ~seed:3 ~sigma:7 ~digits:5 in
  for id = 0 to 99 do
    let full = Digit_hash.hash h id in
    Array.iteri (fun i d -> checki "digit matches" d (Digit_hash.digit h id i)) full
  done

let test_hash_prefix_matches () =
  let h = Digit_hash.create ~seed:4 ~sigma:6 ~digits:4 in
  let full = Digit_hash.hash h 42 in
  for j = 0 to 4 do
    checkb "own prefix matches" true (Digit_hash.prefix_matches h 42 full j)
  done;
  let other = Array.map (fun d -> (d + 1) mod 6) full in
  checkb "mismatch detected" false (Digit_hash.prefix_matches h 42 other 1)

let test_hash_uniformity () =
  (* First digit over sigma=4 should be roughly uniform over many ids. *)
  let h = Digit_hash.create ~seed:5 ~sigma:4 ~digits:2 in
  let counts = Array.make 4 0 in
  let trials = 40_000 in
  for id = 0 to trials - 1 do
    let d = Digit_hash.digit h id 0 in
    counts.(d) <- counts.(d) + 1
  done;
  Array.iter
    (fun c ->
      let rate = float_of_int c /. float_of_int trials in
      checkb "roughly uniform" true (Float.abs (rate -. 0.25) < 0.02))
    counts

let test_hash_seed_sensitivity () =
  let h1 = Digit_hash.create ~seed:10 ~sigma:16 ~digits:4 in
  let h2 = Digit_hash.create ~seed:11 ~sigma:16 ~digits:4 in
  let diff = ref 0 in
  for id = 0 to 99 do
    if Digit_hash.hash h1 id <> Digit_hash.hash h2 id then incr diff
  done;
  checkb "most hashes differ across seeds" true (!diff > 90)

let test_hash_storage_bits () =
  checki "log^2 n" 100 (Digit_hash.storage_bits ~n:1024)

(* ------------------------------------------------------------------ *)
(* Poly_hash (Carter-Wegman reference family) *)

module Poly_hash = Cr_util.Poly_hash

(* slow reference mulmod via Zarith-free 128-bit-ish splitting, using
   floats would lose precision; instead check against small moduli where
   direct computation is exact *)
let test_poly_field_arithmetic_small_cases () =
  (* evaluate known polynomials by hand through the public interface:
     degree 0 => constant function *)
  let h = Poly_hash.make ~seed:1 ~degree:0 ~range:1000 in
  let c = Poly_hash.hash h 0 in
  for x = 1 to 50 do
    checki "constant polynomial" c (Poly_hash.hash h x)
  done

let test_poly_deterministic_and_seeded () =
  let a = Poly_hash.make ~seed:5 ~degree:3 ~range:64 in
  let b = Poly_hash.make ~seed:5 ~degree:3 ~range:64 in
  let c = Poly_hash.make ~seed:6 ~degree:3 ~range:64 in
  let diff = ref 0 in
  for x = 0 to 200 do
    checki "same seed same hash" (Poly_hash.hash a x) (Poly_hash.hash b x);
    if Poly_hash.hash a x <> Poly_hash.hash c x then incr diff
  done;
  checkb "different seeds differ" true (!diff > 100)

let test_poly_range () =
  let h = Poly_hash.make ~seed:7 ~degree:5 ~range:17 in
  for x = 0 to 2000 do
    let v = Poly_hash.hash h x in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_poly_uniformity () =
  let h = Poly_hash.make ~seed:11 ~degree:7 ~range:8 in
  let counts = Array.make 8 0 in
  let trials = 32_000 in
  for x = 0 to trials - 1 do
    counts.(Poly_hash.hash h x) <- counts.(Poly_hash.hash h x) + 1
  done;
  Array.iter
    (fun c ->
      let rate = float_of_int c /. float_of_int trials in
      checkb "roughly uniform" true (Float.abs (rate -. 0.125) < 0.02))
    counts

let test_poly_pairwise_independence () =
  (* degree >= 1 gives pairwise independence: over many draws of the
     function, Pr[h(x1)=a and h(x2)=b] should be close to 1/range^2 *)
  let range = 4 in
  let hits = ref 0 in
  let trials = 12_000 in
  for seed = 0 to trials - 1 do
    let h = Poly_hash.make ~seed ~degree:1 ~range in
    if Poly_hash.hash h 12345 = 1 && Poly_hash.hash h 98765 = 2 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  let expect = 1.0 /. float_of_int (range * range) in
  checkb
    (Printf.sprintf "pairwise rate %.4f ~ %.4f" rate expect)
    true
    (Float.abs (rate -. expect) < 0.015)

let test_poly_metadata () =
  let h = Poly_hash.make ~seed:1 ~degree:9 ~range:100 in
  checki "degree" 9 (Poly_hash.degree h);
  checki "range" 100 (Poly_hash.range h);
  checki "independence" 10 (Poly_hash.independence h);
  checki "storage" 610 (Poly_hash.storage_bits h);
  checkb "invalid degree" true
    (try ignore (Poly_hash.make ~seed:1 ~degree:(-1) ~range:4); false
     with Invalid_argument _ -> true);
  checkb "invalid range" true
    (try ignore (Poly_hash.make ~seed:1 ~degree:2 ~range:0); false
     with Invalid_argument _ -> true)

let test_poly_prefix_load_like_lemma4 () =
  (* the Lemma 4 requirement, with the reference family: hash n names to
     sigma^k digit strings via k independent draws; prefix populations at
     each level stay within sigma * log2 n of expectation *)
  let n = 2000 and sigma = 8 and k = 3 in
  let hs = Array.init k (fun i -> Poly_hash.make ~seed:(50 + i) ~degree:15 ~range:sigma) in
  (* level-1 prefix loads *)
  let counts = Array.make sigma 0 in
  for x = 0 to n - 1 do
    counts.(Poly_hash.hash hs.(0) x) <- counts.(Poly_hash.hash hs.(0) x) + 1
  done;
  let expect = n / sigma in
  Array.iter
    (fun c -> checkb "prefix load balanced" true (c < 2 * expect))
    counts

(* ------------------------------------------------------------------ *)
(* Ascii_table *)

let test_table_render () =
  let t = Ascii_table.create ~title:"T" [ ("col", Ascii_table.Left); ("x", Ascii_table.Right) ] in
  Ascii_table.add_row t [ "a"; "1" ];
  Ascii_table.add_row t [ "bb" ];
  let s = Ascii_table.render t in
  checkb "has title" true (String.length s > 0 && s.[0] = 'T');
  checkb "contains a" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 2 && String.sub l 0 3 = "| a"));
  checkb "ends with newline" true (s.[String.length s - 1] = '\n')

let test_table_too_many_cells () =
  let t = Ascii_table.create [ ("only", Ascii_table.Left) ] in
  Alcotest.check_raises "too many" (Invalid_argument "Ascii_table.add_row: too many cells")
    (fun () -> Ascii_table.add_row t [ "a"; "b" ])

let test_fmt_bits () =
  check Alcotest.string "bits" "12 bit" (Ascii_table.fmt_bits 12);
  check Alcotest.string "kbit" "2.00 Kbit" (Ascii_table.fmt_bits 2048);
  check Alcotest.string "mbit" "1.00 Mbit" (Ascii_table.fmt_bits 1048576)

(* ------------------------------------------------------------------ *)
(* Crc *)

module Crc = Cr_util.Crc

let test_crc_known_vectors () =
  (* the standard CRC-32 (IEEE/zlib) check values *)
  checki "empty" 0 (Crc.string "");
  checki "123456789" 0xCBF43926 (Crc.string "123456789");
  checki "quick brown fox" 0x414FA339
    (Crc.string "The quick brown fox jumps over the lazy dog")

let test_crc_streaming_matches_whole () =
  let a = "r 42 setw 0 1 " and b = "3.5\nand more bytes" in
  checki "update composes" (Crc.string (a ^ b)) (Crc.update (Crc.string a) b)

let test_crc_hex_roundtrip () =
  List.iter
    (fun s ->
      let c = Crc.string s in
      let hex = Crc.to_hex c in
      checki "8 hex digits" 8 (String.length hex);
      match Crc.of_hex hex with
      | Some c' -> checki (Printf.sprintf "roundtrip %S" s) c c'
      | None -> Alcotest.failf "of_hex rejected %S" hex)
    [ ""; "x"; "123456789"; "r 3 linkdown 0 1" ];
  checkb "rejects short" true (Crc.of_hex "abc" = None);
  checkb "rejects long" true (Crc.of_hex "0123456789" = None);
  checkb "rejects non-hex" true (Crc.of_hex "xyzw1234" = None)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"rng int always in bounds" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let r = Rng.create seed in
        let v = Rng.int r bound in
        v >= 0 && v < bound);
    Test.make ~name:"percentile monotone in q" ~count:200
      (list_of_size (Gen.int_range 1 50) (float_range 0.0 100.0))
      (fun xs ->
        let a = Array.of_list xs in
        Array.sort compare a;
        Stats.percentile a 0.3 <= Stats.percentile a 0.7);
    Test.make ~name:"summary min<=p50<=max" ~count:200
      (list_of_size (Gen.int_range 1 60) (float_range (-50.0) 50.0))
      (fun xs ->
        let s = Stats.summarize (Array.of_list xs) in
        s.Stats.min <= s.Stats.p50 && s.Stats.p50 <= s.Stats.max);
    Test.make ~name:"histogram counts all samples" ~count:200
      (list_of_size (Gen.int_range 0 80) (float_range 0.0 10.0))
      (fun xs ->
        let counts = Stats.histogram ~buckets:[| 2.0; 5.0; 8.0 |] (Array.of_list xs) in
        Array.fold_left ( + ) 0 counts = List.length xs);
    Test.make ~name:"bits_for is monotone" ~count:200
      (pair (int_range 1 100000) (int_range 1 100000))
      (fun (a, b) -> if a <= b then Bits.bits_for a <= Bits.bits_for b else true);
    Test.make ~name:"2^(ceil_log2 m) >= m" ~count:200 (int_range 1 1000000)
      (fun m ->
        let b = Bits.ceil_log2 m in
        (1 lsl b) >= m && (b = 0 || (1 lsl (b - 1)) < m));
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int covers" `Quick test_rng_int_covers;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_rng_sample_without_replacement;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile edges" `Quick test_stats_percentile_edges;
          Alcotest.test_case "summarize" `Quick test_stats_summarize;
          Alcotest.test_case "summarize empty" `Quick test_stats_summarize_empty;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "cdf" `Quick test_stats_cdf;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "ratio" `Quick test_stats_ratio;
        ] );
      ( "ttcache",
        [
          Alcotest.test_case "basics" `Quick test_ttcache_basics;
          Alcotest.test_case "generation invalidates" `Quick test_ttcache_generation_invalidates;
          Alcotest.test_case "salt spreads" `Quick test_ttcache_salt_spreads;
          Alcotest.test_case "concurrent stress" `Slow test_ttcache_concurrent_stress;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "finite floats" `Quick test_jsonl_float_finite;
          Alcotest.test_case "non-finite floats are null" `Quick test_jsonl_float_non_finite;
          Alcotest.test_case "non-finite rows stay valid" `Quick
            test_jsonl_non_finite_rows_validate;
          Alcotest.test_case "validate" `Quick test_jsonl_validate;
          Alcotest.test_case "writer flushes per line" `Quick test_jsonl_writer_flushes_per_line;
          Alcotest.test_case "flush_all_writers" `Quick test_jsonl_flush_all_writers;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "shutdown idempotent, shared re-inits" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "resize" `Quick test_pool_resize;
        ] );
      ( "bits",
        [
          Alcotest.test_case "bits_for" `Quick test_bits_for;
          Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
          Alcotest.test_case "ceil_pow" `Quick test_ceil_pow;
        ] );
      ( "digit_hash",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "digit range" `Quick test_hash_digit_range;
          Alcotest.test_case "digit consistency" `Quick test_hash_digit_consistency;
          Alcotest.test_case "prefix matches" `Quick test_hash_prefix_matches;
          Alcotest.test_case "uniformity" `Quick test_hash_uniformity;
          Alcotest.test_case "seed sensitivity" `Quick test_hash_seed_sensitivity;
          Alcotest.test_case "storage bits" `Quick test_hash_storage_bits;
        ] );
      ( "poly_hash",
        [
          Alcotest.test_case "constant polynomial" `Quick test_poly_field_arithmetic_small_cases;
          Alcotest.test_case "deterministic + seeded" `Quick test_poly_deterministic_and_seeded;
          Alcotest.test_case "range" `Quick test_poly_range;
          Alcotest.test_case "uniformity" `Quick test_poly_uniformity;
          Alcotest.test_case "pairwise independence" `Slow test_poly_pairwise_independence;
          Alcotest.test_case "metadata" `Quick test_poly_metadata;
          Alcotest.test_case "lemma4-style prefix load" `Quick test_poly_prefix_load_like_lemma4;
        ] );
      ( "ascii_table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
          Alcotest.test_case "fmt bits" `Quick test_fmt_bits;
        ] );
      ( "crc",
        [
          Alcotest.test_case "known vectors" `Quick test_crc_known_vectors;
          Alcotest.test_case "streaming update composes" `Quick test_crc_streaming_matches_whole;
          Alcotest.test_case "hex roundtrip" `Quick test_crc_hex_roundtrip;
        ] );
      ("properties", qsuite);
    ]
