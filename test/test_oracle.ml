(* Tests for the cr_oracle library: the path-reporting contract (every
   answer ships a concrete walk whose independently-priced weight equals
   the estimate), the 2k-1 stretch guarantee, symmetry, determinism,
   the AGH sparse oracle's stretch-3 / exact-in-vicinity contract, the
   rt routing scheme wrapper, the hop-level trace events, and the
   engine determinism contract for oracle batches (bit-identical across
   pool widths and cache capacities). *)

module Rng = Cr_util.Rng
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module Trace = Cr_obs.Trace
module Po = Cr_oracle.Path_oracle
module So = Cr_oracle.Sparse_oracle
module Oserve = Cr_oracle.Oserve
module Engine = Cr_engine.Engine
module Pool = Cr_util.Domain_pool
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let prepared_graph ?(n = 80) ?(avg = 4.0) seed =
  let rng = Rng.create seed in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n ~avg_degree:avg) in
  Apsp.compute (Graph.normalize g)

(* referee a reported walk: realizable in g, ends at dst, and its
   independently-priced weight matches the estimate (1e-9 relative) *)
let walk_ok g ~src ~dst ~est walk =
  let c = Simulator.check_walk g ~src ~dst ~delivered:true walk in
  Simulator.is_delivered c.Simulator.outcome
  && Float.abs (c.Simulator.checked_cost -. est) <= 1e-9 *. Float.max 1.0 est

let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> invalid_arg "last"

(* ------------------------------------------------------------------ *)
(* Path oracle: the reporting contract *)

let path_contract_case ~n ~k seed =
  let apsp = prepared_graph ~n seed in
  let g = Apsp.graph apsp in
  let oracle = Po.build ~k ~seed apsp in
  let bound = Po.stretch_bound oracle in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let d = Apsp.distance apsp u v in
      let est = Po.query oracle u v in
      (match Po.path oracle u v with
      | None -> if d < infinity then ok := false
      | Some a ->
          if a.Po.est <> est then ok := false;
          if List.hd a.Po.walk <> u || last a.Po.walk <> v then ok := false;
          if not (walk_ok g ~src:u ~dst:v ~est:a.Po.est a.Po.walk) then ok := false);
      if d < infinity && (est < d -. 1e-9 || est > (bound *. d) +. 1e-9) then ok := false;
      if d = infinity && est <> infinity then ok := false
    done
  done;
  !ok

let test_path_contract () =
  List.iter
    (fun (n, k, seed) ->
      checkb (Printf.sprintf "contract n=%d k=%d seed=%d" n k seed) true
        (path_contract_case ~n ~k seed))
    [ (40, 1, 3); (60, 2, 5); (80, 3, 7); (60, 4, 11) ]

let test_path_trivial_and_symmetric () =
  let apsp = prepared_graph ~n:50 13 in
  let oracle = Po.build ~k:3 ~seed:13 apsp in
  (match Po.path oracle 7 7 with
  | Some a ->
      checkb "self est 0" true (a.Po.est = 0.0);
      checkb "self walk" true (a.Po.walk = [ 7 ])
  | None -> Alcotest.fail "path u u");
  let ok = ref true in
  for u = 0 to 49 do
    for v = 0 to 49 do
      (* the canonical (min,max) ordering makes both directions exact mirrors *)
      if Po.query oracle u v <> Po.query oracle v u then ok := false;
      match (Po.path oracle u v, Po.path oracle v u) with
      | Some a, Some b -> if a.Po.walk <> List.rev b.Po.walk then ok := false
      | None, None -> ()
      | _ -> ok := false
    done
  done;
  checkb "symmetric" true !ok

let test_path_disconnected () =
  (* two triangles, no bridge *)
  let edges = [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0); (3, 4, 1.0); (4, 5, 1.0); (3, 5, 1.0) ] in
  let apsp = Apsp.compute (Graph.create ~n:6 edges) in
  let oracle = Po.build ~k:3 ~seed:1 apsp in
  checkb "query infinity" true (Po.query oracle 0 4 = infinity);
  checkb "path none" true (Po.path oracle 0 4 = None);
  checkb "same side ok" true (Po.path oracle 3 5 <> None)

let test_path_never_worse_than_distance_oracle () =
  (* same hierarchy, same seed: the path oracle's closure only adds
     entries, so its alternating walk can stop no later *)
  List.iter
    (fun seed ->
      let apsp = prepared_graph ~n:60 seed in
      let po = Po.build ~k:3 ~seed apsp in
      let dz = Distance_oracle.build ~k:3 ~seed apsp in
      let ok = ref true in
      for u = 0 to 59 do
        for v = 0 to 59 do
          if Po.query po u v > Distance_oracle.query dz u v +. 1e-9 then ok := false
        done
      done;
      checkb (Printf.sprintf "seed %d" seed) true !ok)
    [ 2; 17; 23 ]

let test_path_deterministic () =
  let apsp = prepared_graph ~n:50 29 in
  let a = Po.build ~k:3 ~seed:29 apsp in
  let b = Po.build ~k:3 ~seed:29 apsp in
  checki "size" (Po.size_entries a) (Po.size_entries b);
  let ok = ref true in
  for u = 0 to 49 do
    for v = 0 to 49 do
      match (Po.path a u v, Po.path b u v) with
      | Some x, Some y -> if x <> y then ok := false
      | None, None -> ()
      | _ -> ok := false
    done
  done;
  checkb "answers identical" true !ok

let test_storage_accounting () =
  let apsp = prepared_graph ~n:60 31 in
  let oracle = Po.build ~k:3 ~seed:31 apsp in
  let total = ref 0 in
  for u = 0 to 59 do
    total := !total + Po.node_entries oracle u
  done;
  checki "entries sum" (Po.size_entries oracle) !total;
  checkb "closure counted" true (Po.closure_entries oracle >= 0);
  checkb "bits positive" true (Po.storage_bits oracle > 0)

(* ------------------------------------------------------------------ *)
(* Trace events *)

let test_trace_events () =
  let apsp = prepared_graph ~n:50 37 in
  let oracle = Po.build ~k:3 ~seed:37 apsp in
  let probes = ref 0 and stitches = ref 0 and hits = ref 0 in
  let sink = function
    | Trace.Bunch_probe { hit; _ } ->
        incr probes;
        if hit then incr hits
    | Trace.Stitch _ -> incr stitches
    | _ -> ()
  in
  (match Po.path ~trace:sink oracle 0 17 with
  | Some _ ->
      checkb "probes emitted" true (!probes > 0);
      checki "one stitch" 1 !stitches;
      checki "last probe hits" 1 !hits
  | None -> Alcotest.fail "expected a path");
  (* the sink is pure annotation: the answer is unchanged *)
  checkb "annotation only" true (Po.path ~trace:sink oracle 0 17 = Po.path oracle 0 17)

(* ------------------------------------------------------------------ *)
(* Sparse (AGH) oracle *)

let sparse_case ?landmarks ~n seed =
  let apsp = prepared_graph ~n seed in
  let g = Apsp.graph apsp in
  let oracle = So.build ~seed ?landmarks apsp in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let d = Apsp.distance apsp u v in
      let est = So.query oracle u v in
      (match So.path oracle u v with
      | None -> if d < infinity then ok := false
      | Some a ->
          if a.So.est <> est then ok := false;
          if List.hd a.So.walk <> u || last a.So.walk <> v then ok := false;
          if not (walk_ok g ~src:u ~dst:v ~est:a.So.est a.So.walk) then ok := false;
          if a.So.exact && Float.abs (a.So.est -. d) > 1e-9 *. Float.max 1.0 d then ok := false);
      if d < infinity && (est < d -. 1e-9 || est > (3.0 *. d) +. 1e-9) then ok := false
    done
  done;
  !ok

let test_sparse_contract () =
  List.iter
    (fun (n, seed) ->
      checkb (Printf.sprintf "sparse n=%d seed=%d" n seed) true (sparse_case ~n seed))
    [ (40, 3); (60, 5); (80, 7) ]

let test_sparse_single_landmark () =
  checkb "one landmark still within 3" true (sparse_case ~landmarks:1 ~n:40 11)

let test_sparse_deterministic () =
  let apsp = prepared_graph ~n:50 41 in
  let a = So.build ~seed:41 apsp in
  let b = So.build ~seed:41 apsp in
  checki "landmarks" (So.landmark_count a) (So.landmark_count b);
  checki "size" (So.size_entries a) (So.size_entries b);
  let ok = ref true in
  for u = 0 to 49 do
    for v = 0 to 49 do
      if So.path a u v <> So.path b u v then ok := false
    done
  done;
  checkb "answers identical" true !ok

(* ------------------------------------------------------------------ *)
(* rt scheme: the oracle behind the Scheme interface *)

let test_rt_scheme () =
  let apsp = prepared_graph ~n:70 43 in
  let sch = Cr_oracle.Rt_scheme.make ~k:3 ~seed:43 apsp in
  Alcotest.(check string) "name" "rt" sch.Scheme.name;
  let rng = Rng.create 44 in
  let pairs = Simulator.sample_pairs rng apsp ~count:60 in
  Array.iter
    (fun (s, d) ->
      let m = Simulator.measure apsp sch s d in
      checkb (Printf.sprintf "%d->%d delivered" s d) true m.Simulator.delivered;
      checkb
        (Printf.sprintf "%d->%d stretch %.3f" s d m.Simulator.stretch)
        true
        (m.Simulator.stretch <= 5.0 +. 1e-9))
    pairs;
  checkb "storage accounted" true (Storage.total_bits sch.Scheme.storage > 0)

(* ------------------------------------------------------------------ *)
(* Oserve: engine determinism for the oracle surface *)

let test_oserve_measure () =
  let apsp = prepared_graph ~n:60 47 in
  let oracle = Po.build ~k:3 ~seed:47 apsp in
  let m = Oserve.measure apsp oracle 3 29 in
  checkb "ok" true m.Oserve.ok;
  checkb "stretch bounded" true (m.Oserve.stretch <= 5.0 +. 1e-9);
  let self = Oserve.measure apsp oracle 5 5 in
  checkb "self ok" true self.Oserve.ok;
  checkb "self stretch" true (self.Oserve.stretch = 1.0)

let test_oserve_pool_and_cache_invariance () =
  let apsp = prepared_graph ~n:60 53 in
  let oracle = Po.build ~k:3 ~seed:53 apsp in
  let rng = Rng.create 54 in
  let pairs = Simulator.sample_pairs rng apsp ~count:300 in
  let run ~domains ~cache =
    let pool = Pool.create ~domains in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let eng = Engine.create ~cache ~pool () in
        let results, _ = Oserve.run_batch eng apsp oracle pairs in
        results)
  in
  let baseline = run ~domains:1 ~cache:0 in
  List.iter
    (fun (domains, cache) ->
      checkb
        (Printf.sprintf "domains=%d cache=%d bit-identical" domains cache)
        true
        (run ~domains ~cache = baseline))
    [ (1, 64); (2, 0); (4, 0); (4, 256) ]

let test_oserve_measure_canonical_symmetry () =
  let apsp = prepared_graph ~n:60 61 in
  let oracle = Po.build ~k:3 ~seed:61 apsp in
  let m = Oserve.measure apsp oracle 7 23 and m' = Oserve.measure apsp oracle 23 7 in
  checkb "endpoints follow the query" true
    (m.Oserve.src = 7 && m.Oserve.dst = 23 && m'.Oserve.src = 23 && m'.Oserve.dst = 7);
  (* the canonical contract: the two directions are the same record up
     to src/dst — which is what lets one cache entry serve both *)
  checkb "same measurement up to relabeling" true
    ({ m' with Oserve.src = m.Oserve.src; dst = m.Oserve.dst } = m)

let test_oserve_shared_mode_invariance () =
  let apsp = prepared_graph ~n:60 63 in
  let oracle = Po.build ~k:3 ~seed:63 apsp in
  let rng = Rng.create 64 in
  let pairs = Simulator.sample_pairs rng apsp ~count:300 in
  let run ~domains ~cache ~mode =
    let pool = Pool.create ~domains in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let eng = Engine.create ~cache ~cache_mode:mode ~pool () in
        let results, _ = Oserve.run_batch eng apsp oracle pairs in
        results)
  in
  let baseline = run ~domains:1 ~cache:0 ~mode:Engine.Off in
  List.iter
    (fun (domains, cache, mode) ->
      checkb
        (Printf.sprintf "domains=%d cache=%d %s bit-identical" domains cache
           (Engine.cache_mode_to_string mode))
        true
        (run ~domains ~cache ~mode = baseline))
    [
      (2, 128, Engine.Lane); (2, 128, Engine.Shared); (4, 512, Engine.Shared);
      (1, 512, Engine.Shared);
    ]

let test_oserve_guarded_off_matches_batch () =
  let apsp = prepared_graph ~n:50 59 in
  let oracle = Po.build ~k:3 ~seed:59 apsp in
  let rng = Rng.create 60 in
  let pairs = Simulator.sample_pairs rng apsp ~count:100 in
  let eng = Engine.create () in
  let plain, _ = Oserve.run_batch eng apsp oracle pairs in
  let guarded, _, stats = Oserve.run_guarded (Engine.create ()) apsp oracle pairs in
  checki "all admitted" (Array.length pairs) stats.Engine.ok;
  Array.iteri
    (fun i r ->
      match r with
      | Ok m -> checkb (Printf.sprintf "pair %d matches" i) true (m = plain.(i))
      | Error _ -> Alcotest.failf "pair %d rejected with guards off" i)
    guarded

let () =
  Alcotest.run "oracle"
    [
      ( "path oracle",
        [
          Alcotest.test_case "reporting contract" `Quick test_path_contract;
          Alcotest.test_case "trivial and symmetric" `Quick test_path_trivial_and_symmetric;
          Alcotest.test_case "disconnected" `Quick test_path_disconnected;
          Alcotest.test_case "never worse than distance oracle" `Quick
            test_path_never_worse_than_distance_oracle;
          Alcotest.test_case "deterministic" `Quick test_path_deterministic;
          Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
          Alcotest.test_case "trace events" `Quick test_trace_events;
        ] );
      ( "sparse oracle",
        [
          Alcotest.test_case "stretch-3 contract" `Quick test_sparse_contract;
          Alcotest.test_case "single landmark" `Quick test_sparse_single_landmark;
          Alcotest.test_case "deterministic" `Quick test_sparse_deterministic;
        ] );
      ("rt scheme", [ Alcotest.test_case "delivers within 2k-1" `Quick test_rt_scheme ]);
      ( "oserve",
        [
          Alcotest.test_case "measure referees walks" `Quick test_oserve_measure;
          Alcotest.test_case "pool and cache invariance" `Quick
            test_oserve_pool_and_cache_invariance;
          Alcotest.test_case "measure is canonical" `Quick
            test_oserve_measure_canonical_symmetry;
          Alcotest.test_case "shared-mode invariance" `Quick
            test_oserve_shared_mode_invariance;
          Alcotest.test_case "guarded off matches batch" `Quick
            test_oserve_guarded_off_matches_batch;
        ] );
    ]
