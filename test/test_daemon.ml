(* Tests for the cr_daemon library: protocol parsing, the daemon's
   epoch lifecycle, repair equivalence (incremental repair converges to
   exactly the state a from-scratch build would produce), mid-repair
   serving under chaos, admission control, the checksummed mutation
   journal, snapshot checkpoints, crashpoint-injected recovery and
   repair-worker supervision. *)

module Rng = Cr_util.Rng
module Jsonl = Cr_util.Jsonl
module Graph = Cr_graph.Graph
module Gio = Cr_graph.Gio
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module Guard = Cr_guard
module Daemon = Cr_daemon.Daemon
module Journal = Cr_daemon.Journal
module Snapshot = Cr_daemon.Snapshot
module Crashpoint = Cr_daemon.Crashpoint
module Protocol = Cr_daemon.Protocol
module Dirty = Cr_daemon.Dirty
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let mk_graph ?(n = 48) seed =
  let rng = Rng.create seed in
  let g = Generators.erdos_renyi rng ~n ~avg_degree:4.0 in
  (* integer weights >= 1: normalized, and mutations stay exact *)
  Graph.reweight g (fun _ _ _ -> 1.0 +. float_of_int (Rng.int rng 7))

let params = Params.scaled ~k:3 ()

(* a random mutation applicable to the current graph; mirrors the
   daemon's churn vocabulary, weights respect the normalization floor *)
let random_mutation rng g =
  let n = Graph.n g in
  let es = Array.of_list (Graph.edges g) in
  let w () = 1.0 +. float_of_int (Rng.int rng 7) in
  match Rng.int rng 5 with
  | 0 when Array.length es > 0 ->
      let u, v, _ = es.(Rng.int rng (Array.length es)) in
      Graph.Set_weight (u, v, w ())
  | 1 when Array.length es > 1 ->
      let u, v, _ = es.(Rng.int rng (Array.length es)) in
      Graph.Link_down (u, v)
  | 2 ->
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v && not (Graph.has_edge g u v) then Graph.Link_up (u, v, w ())
      else Graph.Node_up (Rng.int rng n)
  | 3 -> Graph.Node_down (Rng.int rng n)
  | _ -> Graph.Node_up (Rng.int rng n)

let feed d line =
  let rs = Daemon.handle d line in
  List.iter
    (fun r ->
      checkb
        (Printf.sprintf "response tagged: %s" r)
        true
        ((String.length r >= 3 && String.sub r 0 3 = "ok ")
        || (String.length r >= 4 && String.sub r 0 4 = "err ")))
    rs;
  rs

let feed1 d line = match feed d line with [ r ] -> r | rs -> String.concat "|" rs

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_queries () =
  let ok line cmd =
    match Protocol.parse ~lineno:1 line with
    | Ok (Some c) -> checkb (Printf.sprintf "parse %S" line) true (c = cmd)
    | _ -> Alcotest.failf "parse %S failed" line
  in
  ok "route 3 7" (Protocol.Route (3, 7));
  ok "  dist 0 12  " (Protocol.Dist (0, 12));
  ok "path 2 5" (Protocol.Path (2, 5));
  ok "sync" Protocol.Sync;
  ok "stats" Protocol.Stats;
  ok "epoch" Protocol.Epoch;
  ok "help" Protocol.Help;
  ok "quit" Protocol.Quit;
  ok "exit" Protocol.Quit

let test_protocol_mutations () =
  let ok line mu =
    match Protocol.parse ~lineno:1 line with
    | Ok (Some (Protocol.Mutate m)) -> checkb (Printf.sprintf "parse %S" line) true (m = mu)
    | _ -> Alcotest.failf "parse %S: expected mutation" line
  in
  ok "setw 0 1 1.5" (Graph.Set_weight (0, 1, 1.5));
  ok "linkdown 4 2" (Graph.Link_down (4, 2));
  ok "linkup 1 9 2" (Graph.Link_up (1, 9, 2.0));
  ok "nodedown 5" (Graph.Node_down 5);
  ok "nodeup 5" (Graph.Node_up 5)

let test_protocol_blanks_and_comments () =
  List.iter
    (fun line ->
      match Protocol.parse ~lineno:1 line with
      | Ok None -> ()
      | _ -> Alcotest.failf "expected silent skip for %S" line)
    [ ""; "   "; "# comment"; "  # indented comment" ]

let test_protocol_errors_carry_line_numbers () =
  let err ~lineno line =
    match Protocol.parse ~lineno line with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "expected parse error for %S" line
  in
  checkb "unknown command" true (contains (err ~lineno:12 "frobnicate 1") "line 12");
  checkb "mentions token" true (contains (err ~lineno:12 "frobnicate 1") "frobnicate");
  (* mutation records go through the shared Gio grammar *)
  checkb "short setw" true (contains (err ~lineno:7 "setw 0 1") "line 7");
  checkb "bad weight" true (contains (err ~lineno:3 "linkup 0 1 heavy") "line 3");
  checkb "bad endpoint" true (contains (err ~lineno:9 "route 0") "line 9");
  checkb "non-integer" true (contains (err ~lineno:4 "dist a b") "line 4")

let test_daemon_counts_session_lines () =
  let d = Daemon.create ~staleness_every:0 ~params (mk_graph 3) in
  ignore (feed d "epoch");
  ignore (Daemon.handle d "# a comment also advances the line counter");
  let r = feed1 d "bogus" in
  Daemon.close d;
  checkb "err tagged" true (String.sub r 0 4 = "err ");
  checkb "third line" true (contains r "line 3")

(* ------------------------------------------------------------------ *)
(* Epoch lifecycle *)

let test_epoch_lifecycle () =
  let g = mk_graph 5 in
  let d = Daemon.create ~staleness_every:0 ~params g in
  checki "epoch 0" 0 (Daemon.epoch_id d);
  let u, v, _ = List.hd (Graph.edges g) in
  let r = feed1 d (Printf.sprintf "linkdown %d %d" u v) in
  checkb "mutate acked" true (contains r "ok mutate linkdown");
  (match Daemon.sync d with
  | Ok id -> checki "epoch advanced" 1 id
  | Error e -> Alcotest.failf "sync failed: %s" e);
  checki "epoch_id agrees" 1 (Daemon.epoch_id d);
  checki "backlog drained" 0 (Daemon.backlog d);
  checkb "live graph lost the edge" false (Graph.has_edge (Daemon.live_graph d) u v);
  let r = feed1 d "quit" in
  checkb "bye" true (contains r "ok bye");
  checkb "quitting" true (Daemon.quitting d);
  Daemon.close d

let test_mutation_validation () =
  let g = mk_graph 7 in
  let d = Daemon.create ~staleness_every:0 ~params g in
  let r = feed1 d "setw 9999 3 2" in
  checkb "range rejected" true (String.sub r 0 4 = "err ");
  (* weights below the normalization floor are refused: the scheme
     build requires min weight >= 1 *)
  let u, v, _ = List.hd (Graph.edges g) in
  let r = feed1 d (Printf.sprintf "setw %d %d 0.25" u v) in
  checkb "floor rejected" true (String.sub r 0 4 = "err ");
  checki "nothing queued" 0 (Daemon.backlog d);
  checki "epoch unchanged" 0 (Daemon.epoch_id d);
  Daemon.close d

let test_path_command () =
  let g = mk_graph 15 in
  let d = Daemon.create ~staleness_every:0 ~params g in
  let r = feed1 d "path 0 5" in
  checkb "tagged ok" true (String.sub r 0 8 = "ok path ");
  checkb "carries estimate" true (contains r " est=");
  checkb "carries walk" true (contains r " walk=");
  checkb "carries epoch" true (contains r " epoch=0");
  (* the walk's endpoints are the queried pair *)
  let walk_field =
    List.find_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some j when String.sub tok 0 j = "walk" ->
            Some (String.sub tok (j + 1) (String.length tok - j - 1))
        | _ -> None)
      (String.split_on_char ' ' r)
  in
  (match walk_field with
  | Some w -> (
      match String.split_on_char '-' w with
      | first :: _ :: _ as hops ->
          checks "walk starts at src" "0" first;
          checks "walk ends at dst" "5" (List.nth hops (List.length hops - 1))
      | _ -> Alcotest.failf "unexpected walk %S" w)
  | None -> Alcotest.failf "no walk field in %S" r);
  (* out-of-range endpoints are refused without touching the epoch *)
  let r = feed1 d "path 0 9999" in
  checkb "range rejected" true (String.sub r 0 4 = "err ");
  (* the oracle surface shows up in stats *)
  let stats = feed1 d "stats" in
  checkb "paths counted" true (contains stats "\"paths\":1");
  checkb "oracle sized" true (contains stats "\"oracle_entries\":");
  Daemon.close d

let test_stats_json_strict () =
  let d = Daemon.create ~staleness_every:0 ~params (mk_graph 9) in
  ignore (feed d "route 0 5");
  ignore (feed d "dist 0 5");
  (match Jsonl.validate (Daemon.stats_json d) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "stats json invalid: %s" e);
  let r = feed1 d "stats" in
  checkb "stats over protocol" true (contains r "\"epoch\":");
  Daemon.close d

(* ------------------------------------------------------------------ *)
(* Journal *)

let test_journal_replays () =
  let g = mk_graph 11 in
  let path = Filename.temp_file "crjournal" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let d = Daemon.create ~staleness_every:0 ~journal:path ~params g in
      let u, v, _ = List.hd (Graph.edges g) in
      ignore (feed d (Printf.sprintf "linkdown %d %d" u v));
      ignore (feed d (Printf.sprintf "linkup %d %d 3" u v));
      ignore (feed d "nodedown 0");
      (* rejected mutations must not reach the journal *)
      ignore (Daemon.handle d "setw 9999 0 1");
      (match Daemon.sync d with Ok _ -> () | Error e -> Alcotest.failf "sync: %s" e);
      let live = Daemon.live_graph d in
      Daemon.close d;
      let r = Journal.load path in
      checki "three journal records" 3 r.Journal.read_records;
      checkb "journal fully valid" true (r.Journal.truncation = None);
      let replayed = Graph.apply_all g r.Journal.mutations in
      checki "same m" (Graph.m live) (Graph.m replayed);
      Graph.iter_edges live (fun a b w ->
          checkb "same edges" true (Graph.edge_weight replayed a b = Some w)))

(* ------------------------------------------------------------------ *)
(* Mid-repair serving: the acceptance probe.  The repair hook blocks
   the worker domain, so the daemon is provably mid-repair while the
   foreground answers from epoch 0 — under the flaky chaos preset
   (transient query faults absorbed by retry) and a real deadline. *)

let wait_for ?(timeout_s = 5.0) f =
  let rec go n =
    if f () then true
    else if n <= 0 then false
    else begin
      Unix.sleepf 0.002;
      go (n - 1)
    end
  in
  go (int_of_float (timeout_s /. 0.002))

let test_probe_answered_mid_repair () =
  let g = mk_graph 13 ~n:64 in
  let in_repair = Atomic.make false and release = Atomic.make false in
  let hook () =
    Atomic.set in_repair true;
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done
  in
  let policy = { Guard.Policy.serving with Guard.Policy.query_budget_s = Some 2.0 } in
  let chaos = List.assoc "flaky" (Guard.Chaos.presets ~seed:5) in
  let d =
    Daemon.create ~policy ~chaos ~staleness_every:0 ~repair_hook:hook ~params g
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      Daemon.close d)
    (fun () ->
      let u, v, _ = List.hd (Graph.edges g) in
      ignore (feed d (Printf.sprintf "linkdown %d %d" u v));
      checkb "repair started" true (wait_for (fun () -> Atomic.get in_repair));
      checkb "backlog visible" true (Daemon.backlog d >= 1);
      (* several probes: flaky injects transient faults on ~25% of
         queries; retry must absorb them and every answer must come
         from the last-good epoch, well within the deadline *)
      let t0 = Unix.gettimeofday () in
      for q = 0 to 9 do
        let r = feed1 d (Printf.sprintf "route %d %d" (q mod 8) (8 + q)) in
        checkb (Printf.sprintf "probe %d ok: %s" q r) true (contains r "ok route");
        checkb "old epoch" true (contains r "epoch=0")
      done;
      checkb "answered within deadline" true (Unix.gettimeofday () -. t0 < 2.0);
      Atomic.set release true;
      (match Daemon.sync d with
      | Ok id -> checki "repaired" 1 id
      | Error e -> Alcotest.failf "sync: %s" e);
      let r = feed1 d "route 0 9" in
      checkb "new epoch serves" true (contains r "epoch=1"))

(* ------------------------------------------------------------------ *)
(* Admission control *)

let test_shed_on_backlog () =
  let g = mk_graph 17 in
  let in_repair = Atomic.make false and release = Atomic.make false in
  let hook () =
    Atomic.set in_repair true;
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done
  in
  let policy = Guard.Policy.make ~shed:(Guard.Shed.make_config ~max_queue:0 ()) () in
  let d = Daemon.create ~policy ~staleness_every:0 ~repair_hook:hook ~params g in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      Daemon.close d)
    (fun () ->
      let u, v, _ = List.hd (Graph.edges g) in
      ignore (feed d (Printf.sprintf "linkdown %d %d" u v));
      checkb "repair started" true (wait_for (fun () -> Atomic.get in_repair));
      let r = feed1 d "route 0 5" in
      checkb "shed under backlog" true (contains r "rejected=shed");
      Atomic.set release true;
      (match Daemon.sync d with Ok _ -> () | Error e -> Alcotest.failf "sync: %s" e);
      let r = feed1 d "route 0 5" in
      checkb "admitted once drained" true (contains r "ok route");
      checkb "sheds counted" true
        (Cr_obs.Counters.get (Daemon.counters d) "guard.sheds" >= 1))

let test_breaker_opens_under_persistent_faults () =
  let g = mk_graph 19 in
  (* every query fails more attempts than the (absent) retry allows,
     so each admitted query is lost; the breaker must open after
     min_samples and start rejecting up front *)
  let chaos = Guard.Chaos.plan ~label:"dead" ~fail_rate:1.0 ~fail_attempts:9 ~seed:1 () in
  let policy =
    Guard.Policy.make
      ~breaker:(Guard.Breaker.make_config ~window:8 ~min_samples:4 ~cooldown_s:60.0 ())
      ()
  in
  let d = Daemon.create ~policy ~chaos ~staleness_every:0 ~params g in
  let outcomes = List.init 12 (fun q -> feed1 d (Printf.sprintf "route 0 %d" (1 + q))) in
  Daemon.close d;
  checkb "early queries lost" true (contains (List.hd outcomes) "rejected=worker_lost");
  checkb "breaker eventually opens" true
    (List.exists (fun r -> contains r "rejected=breaker_open") outcomes)

(* ------------------------------------------------------------------ *)
(* Repair equivalence: after sync, the daemon's answers are
   bit-identical to a daemon freshly built on the final graph.  This is
   the pin for incremental repair: distances (%.17g round-trips every
   float exactly) and routes (delivered/hops/cost/stretch) cannot be
   told apart from a from-scratch rebuild. *)

let answers d pairs =
  List.concat_map
    (fun (u, v) ->
      [
        feed1 d (Printf.sprintf "dist %d %d" u v);
        feed1 d (Printf.sprintf "route %d %d" u v);
        feed1 d (Printf.sprintf "path %d %d" u v);
      ])
    pairs

let strip_epoch r =
  match String.rindex_opt r ' ' with Some i -> String.sub r 0 i | None -> r

let repair_equivalence_case seed =
  let rng = Rng.create seed in
  let n = 16 + Rng.int rng 24 in
  let g = mk_graph ~n seed in
  let d = Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~params g in
  let steps = 1 + Rng.int rng 6 in
  for _ = 1 to steps do
    let mu = random_mutation rng (Daemon.live_graph d) in
    ignore (Daemon.handle d (Graph.mutation_to_string mu))
  done;
  (match Daemon.sync d with Ok _ -> () | Error e -> Alcotest.failf "sync: %s" e);
  let final = Daemon.live_graph d in
  let fresh = Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~params final in
  let pairs =
    List.init 40 (fun _ -> (Rng.int rng n, Rng.int rng n))
  in
  (* epoch ids differ by construction (repaired vs 0); everything else
     in the answers must match byte for byte *)
  let a = List.map strip_epoch (answers d pairs)
  and b = List.map strip_epoch (answers fresh pairs) in
  Daemon.close d;
  Daemon.close fresh;
  List.iter2 (fun x y -> checks (Printf.sprintf "seed %d" seed) y x) a b

let test_repair_equivalence () =
  for seed = 1 to 12 do
    repair_equivalence_case seed
  done

(* The shared answer cache must be invisible in the protocol output:
   same churn script, same queries, byte-identical responses with the
   cache on and off — including after a sync bumps the epoch, which is
   the generation the cache ages by. *)
let test_cached_answers_byte_identical () =
  let rng = Rng.create 77 in
  let g = mk_graph ~n:32 77 in
  (* precompute one mutation script so every daemon sees identical input *)
  let script =
    let d = Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~params g in
    let ms =
      List.init 5 (fun _ ->
          let mu = random_mutation rng (Daemon.live_graph d) in
          ignore (Daemon.handle d (Graph.mutation_to_string mu));
          Graph.mutation_to_string mu)
    in
    Daemon.close d;
    ms
  in
  let pairs = List.init 50 (fun _ -> (Rng.int rng 32, Rng.int rng 32)) in
  let run cache =
    let d = Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~cache ~params g in
    List.iter (fun m -> ignore (Daemon.handle d m)) script;
    (match Daemon.sync d with Ok _ -> () | Error e -> Alcotest.failf "sync: %s" e);
    let a = answers d pairs in
    (* ask again: the second pass is all cache hits under the same epoch *)
    let b = answers d pairs in
    let sj = Daemon.stats_json d in
    Daemon.close d;
    (a, b, sj)
  in
  let a0, b0, s0 = run 0 in
  let a1, b1, s1 = run 1024 in
  checkb "uncached replay stable" true (a0 = b0);
  checkb "cached replay byte-identical" true (a1 = b1);
  List.iter2 (fun x y -> checks "cache on vs off" x y) a0 a1;
  checkb "cache stats surface hits" true (contains s1 "\"cache_hits\":");
  checkb "disabled cache reports zero capacity" true (contains s0 "\"cache\":0");
  checkb "negative capacity rejected" true
    (try
       ignore (Daemon.create ~cache:(-1) ~staleness_every:0 ~params g);
       false
     with Invalid_argument _ -> true)

(* dirty-set assessment stays consistent with what repair touches *)
let test_dirty_assessment () =
  let g = mk_graph 23 in
  let apsp = Apsp.compute g in
  let agm = Agm06.build ~params apsp in
  let u, v, _ = List.hd (Graph.edges g) in
  let imp = Dirty.assess agm apsp (Graph.Link_down (u, v)) in
  checkb "some sources dirty" true (imp.Dirty.sources > 0);
  checkb "renders" true (String.length (Dirty.to_string imp) > 0);
  let clean = Dirty.assess agm apsp (Graph.Node_up 0) in
  checkb "nodeup touches nothing" true (clean = Dirty.no_impact)

(* ------------------------------------------------------------------ *)
(* Durability & recovery (DESIGN.md §10).  The invariant under test: a
   daemon recovered from disk answers exactly like a daemon that never
   crashed, over the mutation prefix that reached the journal — and a
   torn or corrupt journal tail is a clean truncation, never a crash. *)

let in_temp_dir f =
  let dir = Filename.temp_file "crdur" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

(* [count] mutations, each applicable to the graph the previous ones
   produce — the same churn the daemon would accept *)
let script g seed count =
  let rng = Rng.create (1000 + seed) in
  let rec go acc g k =
    if k = 0 then List.rev acc
    else
      let mu = random_mutation rng g in
      match Graph.apply g mu with
      | g' -> go (mu :: acc) g' (k - 1)
      | exception Invalid_argument _ -> go acc g k
  in
  go [] g count

let apply_prefix g mus k = Graph.apply_all g (List.filteri (fun i _ -> i < k) mus)

let test_journal_roundtrip_policies () =
  let g = mk_graph ~n:24 41 in
  let mus = script g 41 7 in
  List.iter
    (fun fsync ->
      in_temp_dir (fun dir ->
          let path = Filename.concat dir "j.log" in
          let w = Journal.create ~fsync path in
          List.iter (Journal.append w) mus;
          checki "writer counted records" (List.length mus) (Journal.records w);
          let bytes = Journal.bytes w in
          Journal.close w;
          checki "bytes match the file" bytes (Unix.stat path).Unix.st_size;
          let r = Journal.load ~expect_seq:1 path in
          checkb "no truncation" true (r.Journal.truncation = None);
          checki "all records back" (List.length mus) r.Journal.read_records;
          checki "valid to the end" bytes r.Journal.valid_bytes;
          checkb "same mutations" true (r.Journal.mutations = mus)))
    [ Journal.Every; Journal.Batch 3; Journal.Off ]

let test_journal_torn_at_any_byte () =
  let g = mk_graph ~n:24 43 in
  let mus = script g 43 6 in
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "j.log" in
      let w = Journal.create ~fsync:Journal.Off path in
      List.iter (Journal.append w) mus;
      Journal.close w;
      let full =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let torn = Filename.concat dir "torn.log" in
      (* a crash can cut the file at any byte: the reader must return
         the exact valid record prefix at every single cut, and [load]
         must never raise *)
      for cut = 0 to String.length full - 1 do
        let oc = open_out_bin torn in
        output_string oc (String.sub full 0 cut);
        close_out oc;
        let r = Journal.load ~expect_seq:1 torn in
        checkb "valid prefix only" true
          (r.Journal.mutations = List.filteri (fun i _ -> i < r.Journal.read_records) mus);
        checkb "valid_bytes within cut" true (r.Journal.valid_bytes <= cut);
        (* anything short of the full file must flag the damage unless
           the cut fell exactly on a line boundary *)
        if r.Journal.truncation = None then
          checkb "clean cut is a whole line" true (cut = 0 || full.[cut - 1] = '\n')
      done;
      let r = Journal.load ~expect_seq:1 path in
      checki "untouched file reads whole" (List.length mus) r.Journal.read_records)

let crc_line seq mu =
  let payload = Printf.sprintf "%d %s" seq (Graph.mutation_to_string mu) in
  Printf.sprintf "r %s %s\n" (Cr_util.Crc.to_hex (Cr_util.Crc.string payload)) payload

let test_journal_rejects_bad_sequence_and_crc () =
  let g = mk_graph ~n:24 47 in
  let mus = script g 47 3 in
  let m1, m2, m3 =
    match mus with [ a; b; c ] -> (a, b, c) | _ -> Alcotest.fail "script too short"
  in
  in_temp_dir (fun dir ->
      let write name lines =
        let p = Filename.concat dir name in
        let oc = open_out p in
        List.iter (output_string oc) lines;
        close_out oc;
        p
      in
      (* a sequence gap means a lost middle record: stop before it *)
      let p = write "gap.log" [ crc_line 1 m1; crc_line 3 m2 ] in
      let r = Journal.load ~expect_seq:1 p in
      checki "stops at the gap" 1 r.Journal.read_records;
      checkb "gap reported" true
        (match r.Journal.truncation with
        | Some tr -> contains tr.Journal.reason "sequence"
        | None -> false);
      (* a corrupted payload fails the checksum even when it parses *)
      let good = crc_line 2 m2 in
      let evil = crc_line 2 m3 in
      let forged =
        (* CRC of one record, payload of another *)
        String.sub good 0 11 ^ String.sub evil 11 (String.length evil - 11)
      in
      let p = write "crc.log" [ crc_line 1 m1; forged ] in
      let r = Journal.load ~expect_seq:1 p in
      checki "stops at the forgery" 1 r.Journal.read_records;
      checkb "checksum reported" true
        (match r.Journal.truncation with
        | Some tr -> contains tr.Journal.reason "checksum"
        | None -> false);
      (* expect_seq pins the first record of a recovery suffix *)
      let p = write "seq.log" [ crc_line 1 m1 ] in
      let r = Journal.load ~expect_seq:2 p in
      checki "wrong starting seq rejected" 0 r.Journal.read_records;
      (* legacy journals (bare mutation lines) still load *)
      let p = write "legacy.log" [ Graph.mutation_to_string m1 ^ "\n" ] in
      let r = Journal.load p in
      checki "legacy line loads" 1 r.Journal.read_records;
      checkb "legacy mutation intact" true (r.Journal.mutations = [ m1 ]))

let test_snapshot_roundtrip_and_fallback () =
  let g = mk_graph ~n:24 53 in
  let mus = script g 53 4 in
  in_temp_dir (fun dir ->
      let snap1 = { Gio.epoch = 1; journal_records = 2; journal_offset = 100;
                    graph = apply_prefix g mus 2 } in
      let snap2 = { Gio.epoch = 2; journal_records = 4; journal_offset = 200;
                    graph = apply_prefix g mus 4 } in
      ignore (Snapshot.write ~dir snap1);
      let p2 = Snapshot.write ~dir snap2 in
      (match Snapshot.load_latest dir with
      | Some (p, s), [] ->
          checks "newest wins" p2 p;
          checki "epoch" 2 s.Gio.epoch;
          checki "records" 4 s.Gio.journal_records;
          checks "graph round-trips" (Gio.to_string snap2.Gio.graph) (Gio.to_string s.Gio.graph)
      | _ -> Alcotest.fail "expected the newest snapshot, nothing skipped");
      (* tear the newest checkpoint mid-file: the checksum fails and
         recovery silently falls back to the older one *)
      let half =
        let ic = open_in_bin p2 in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic / 2))
      in
      let oc = open_out_bin p2 in
      output_string oc half;
      close_out oc;
      match Snapshot.load_latest dir with
      | Some (_, s), [ (skipped, reason) ] ->
          checki "fell back to the older epoch" 1 s.Gio.epoch;
          checks "the torn file was skipped" p2 skipped;
          checkb "reason names the damage" true
            (contains reason "checksum" || contains reason "snapshot")
      | _ -> Alcotest.fail "expected fallback to the older snapshot")

let test_recovery_equivalence_snapshot_plus_suffix () =
  (* the qcheck-style pin for recovery: for a random script and a
     random checkpoint position, snapshot-at-c + journal-suffix replay
     produces the identical graph to a full journal replay *)
  for seed = 1 to 10 do
    let rng = Rng.create (7000 + seed) in
    let n = 16 + Rng.int rng 16 in
    let g = mk_graph ~n seed in
    let mus = script g seed (4 + Rng.int rng 8) in
    let len = List.length mus in
    in_temp_dir (fun dir ->
        let path = Filename.concat dir "j.log" in
        let w = Journal.create ~fsync:Journal.Off path in
        let offsets = Array.make (len + 1) (Journal.bytes w) in
        List.iteri
          (fun i mu ->
            Journal.append w mu;
            offsets.(i + 1) <- Journal.bytes w)
          mus;
        Journal.close w;
        let c = Rng.int rng (len + 1) in
        ignore
          (Snapshot.write ~dir
             { Gio.epoch = c; journal_records = c; journal_offset = offsets.(c);
               graph = apply_prefix g mus c });
        let snap =
          match Snapshot.load_latest dir with
          | Some (_, s), _ -> s
          | None, _ -> Alcotest.fail "snapshot vanished"
        in
        let r =
          Journal.load ~offset:snap.Gio.journal_offset
            ~expect_seq:(snap.Gio.journal_records + 1) path
        in
        checkb "suffix fully valid" true (r.Journal.truncation = None);
        checki "suffix length" (len - c) r.Journal.read_records;
        let via_snapshot = Graph.apply_all snap.Gio.graph r.Journal.mutations in
        let full = Graph.apply_all g (Journal.load path).Journal.mutations in
        checks
          (Printf.sprintf "seed %d cut %d/%d" seed c len)
          (Gio.to_string full) (Gio.to_string via_snapshot))
  done

(* one crashpoint test per site: arm, churn until the crash fires,
   recover from what is on disk, and pin exactly which prefix survived *)
let crashpoint_case site ~after ~survives =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "journal.log" in
      let g = mk_graph ~n:24 59 in
      let mus = script g 59 5 in
      let d =
        Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~journal:path
          ~snapshot_dir:dir ~snapshot_every:2 ~params g
      in
      Crashpoint.arm_raise ~after site;
      let acked = ref 0 in
      (try
         List.iter
           (fun mu ->
             ignore (Daemon.handle d (Graph.mutation_to_string mu));
             incr acked)
           mus
       with Crashpoint.Crashed s ->
         checkb "crashed at the armed site" true (s = site));
      Crashpoint.disarm ();
      Daemon.crash d;
      let r =
        Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~journal:path
          ~snapshot_dir:dir ~recover:true ~params g
      in
      let expected = apply_prefix g mus survives in
      checks
        (Printf.sprintf "recovered live graph = first %d mutations" survives)
        (Gio.to_string expected)
        (Gio.to_string (Daemon.live_graph r));
      let info = match Daemon.recovery r with Some i -> i | None -> Alcotest.fail "no recovery info" in
      (match Jsonl.validate (Daemon.stats_json r) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "recovered stats json invalid: %s" e);
      Daemon.close r;
      (!acked, info))

let test_crash_pre_flush () =
  (* the 3rd append crashes before its flush: the record is lost with
     its ack never sent — recovery must surface exactly 2 mutations
     (checkpointed at 2, empty suffix) *)
  let acked, info = crashpoint_case Crashpoint.Pre_flush ~after:3 ~survives:2 in
  checki "two mutations acked" 2 acked;
  checki "recovered from the checkpoint" 2
    (match info.Daemon.snapshot_epoch with Some _ -> 2 | None -> -1);
  checki "nothing to replay" 0 info.Daemon.replayed

let test_crash_post_flush_pre_ack () =
  (* the 3rd record is durable but unacknowledged: recovery replays it
     — [ok] means durable, and durable-but-unacked may resurface *)
  let acked, info = crashpoint_case Crashpoint.Post_flush_pre_ack ~after:3 ~survives:3 in
  checki "two mutations acked" 2 acked;
  checki "the durable unacked record replays" 1 info.Daemon.replayed

let test_crash_mid_snapshot () =
  (* the checkpoint at record 2 crashes between temp write and rename:
     the snapshot must simply not exist, and the journal alone recovers
     both durable records *)
  let acked, info = crashpoint_case Crashpoint.Mid_snapshot ~after:1 ~survives:2 in
  checki "one mutation acked" 1 acked;
  checkb "no snapshot survived" true (info.Daemon.snapshot_epoch = None);
  checki "journal replayed both records" 2 info.Daemon.replayed

let test_crash_post_rename () =
  (* the checkpoint is renamed into place but the crash lands before the
     directory entry is fsynced: the snapshot we can see must be
     complete and loadable, and recovery uses it with an empty suffix *)
  let acked, info = crashpoint_case Crashpoint.Post_rename ~after:1 ~survives:2 in
  checki "one mutation acked" 1 acked;
  checkb "the renamed checkpoint is complete and loadable" true
    (info.Daemon.snapshot_epoch <> None);
  checki "nothing to replay" 0 info.Daemon.replayed

let test_snapshot_fsyncs_directory () =
  (* Sys.rename makes the checkpoint visible, but only an fsync of the
     containing directory makes the *name* durable — pin that write
     performs it, on the right directory, after the rename *)
  let g = mk_graph ~n:24 73 in
  in_temp_dir (fun dir ->
      let calls = ref [] in
      let old = !Snapshot.fsync_dir_hook in
      Snapshot.fsync_dir_hook :=
        (fun d ->
          calls := d :: !calls;
          old d);
      Fun.protect
        ~finally:(fun () -> Snapshot.fsync_dir_hook := old)
        (fun () ->
          let p =
            Snapshot.write ~dir
              { Gio.epoch = 1; journal_records = 0; journal_offset = 0; graph = g }
          in
          checkb "snapshot file in place when the dir is fsynced" true (Sys.file_exists p);
          checks "fsynced the containing directory exactly once" dir
            (match !calls with [ d ] -> d | _ -> "wrong-call-count")))

let injected_eio = Unix.Unix_error (Unix.EIO, "fsync", "injected")

let test_journal_fsync_failure_policy () =
  (* an fsync that starts failing must not crash the writer or stop
     acks — but it must be counted and surfaced, never swallowed *)
  let g = mk_graph ~n:24 79 in
  let mus = script g 79 3 in
  let old = !Journal.fsync_hook in
  Fun.protect
    ~finally:(fun () -> Journal.fsync_hook := old)
    (fun () ->
      Journal.fsync_hook := (fun _ -> raise injected_eio);
      in_temp_dir (fun dir ->
          let path = Filename.concat dir "j.log" in
          let w = Journal.create ~fsync:Journal.Every path in
          List.iter (Journal.append w) mus;
          checki "every record still appended" (List.length mus) (Journal.records w);
          checki "every failure counted" (List.length mus) (Journal.fsync_failures w);
          Journal.close w;
          (* records were flushed even though fsync failed: in the
             absence of a machine crash the file replays in full *)
          let r = Journal.load path in
          checkb "no truncation" true (r.Journal.truncation = None);
          checki "appends survived" (List.length mus) r.Journal.read_records;
          (* the daemon keeps acking and reports the count in stats *)
          let path2 = Filename.concat dir "j2.log" in
          let d =
            Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~journal:path2
              ~params g
          in
          let resp = feed1 d (Graph.mutation_to_string (List.hd mus)) in
          checkb "mutation still acked" true (contains resp "ok mutate");
          checkb "stats surfaces the failure count" true
            (contains (Daemon.stats_json d) "\"fsync_failures\":1");
          Daemon.close d))

let test_daemon_crash_loses_unflushed_recover_matches () =
  (* end-to-end: with fsync off nothing is buffered past [append]'s
     flush, so an abandoned daemon recovers to exactly its live graph,
     and the recovered daemon answers like a never-crashed one *)
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "journal.log" in
      let g = mk_graph ~n:32 61 in
      let mus = script g 61 6 in
      let d =
        Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~journal:path
          ~snapshot_dir:dir ~snapshot_every:3 ~params g
      in
      List.iter (fun mu -> ignore (Daemon.handle d (Graph.mutation_to_string mu))) mus;
      let live = Gio.to_string (Daemon.live_graph d) in
      Daemon.crash d;
      let r =
        Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~journal:path
          ~snapshot_dir:dir ~recover:true ~params g
      in
      checks "recovered = live at crash" live (Gio.to_string (Daemon.live_graph r));
      let fresh =
        Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~params
          (Daemon.live_graph r)
      in
      let rng = Rng.create 61 in
      let pairs = List.init 24 (fun _ -> (Rng.int rng 32, Rng.int rng 32)) in
      let a = List.map strip_epoch (answers r pairs)
      and b = List.map strip_epoch (answers fresh pairs) in
      Daemon.close r;
      Daemon.close fresh;
      List.iter2 (fun x y -> checks "recovered answers match fresh" y x) a b)

(* ------------------------------------------------------------------ *)
(* Repair-worker supervision *)

let test_repair_restarts_then_succeeds () =
  let g = mk_graph ~n:24 67 in
  let remaining = Atomic.make 2 in
  let hook () =
    if Atomic.fetch_and_add remaining (-1) > 0 then failwith "injected repair fault"
  in
  let backoff = Guard.Backoff.make ~base_s:0.001 ~cap_s:0.01 ~max_restarts:5 () in
  let d =
    Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~repair_hook:hook
      ~restart_backoff:backoff ~params g
  in
  let u, v, _ = List.hd (Graph.edges g) in
  ignore (feed d (Printf.sprintf "linkdown %d %d" u v));
  (match Daemon.sync d with
  | Ok id -> checki "repaired after transient faults" 1 id
  | Error e -> Alcotest.failf "worker was poisoned by a transient fault: %s" e);
  checki "restarts counted" 2 (Cr_obs.Counters.get (Daemon.counters d) "daemon.repair.restarts");
  checki "never poisoned" 0 (Cr_obs.Counters.get (Daemon.counters d) "daemon.repair.poisoned");
  Daemon.close d

let test_repair_poisons_after_cap () =
  let g = mk_graph ~n:24 71 in
  let hook () = failwith "permanent repair fault" in
  let backoff = Guard.Backoff.make ~base_s:0.001 ~cap_s:0.01 ~max_restarts:2 () in
  let d =
    Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~repair_hook:hook
      ~restart_backoff:backoff ~params g
  in
  let u, v, _ = List.hd (Graph.edges g) in
  ignore (feed d (Printf.sprintf "linkdown %d %d" u v));
  (match Daemon.sync d with
  | Ok _ -> Alcotest.fail "expected poisoning"
  | Error msg -> checkb "error names the fault" true (contains msg "permanent repair fault"));
  checki "restarted up to the cap" 2
    (Cr_obs.Counters.get (Daemon.counters d) "daemon.repair.restarts");
  checki "then poisoned" 1 (Cr_obs.Counters.get (Daemon.counters d) "daemon.repair.poisoned");
  (* the daemon survives: queries still answered from the last-good epoch *)
  let r = feed1 d "route 0 5" in
  checkb "still serving" true (contains r "ok route");
  Daemon.close d

let () =
  Alcotest.run "daemon"
    [
      ( "protocol",
        [
          Alcotest.test_case "queries" `Quick test_protocol_queries;
          Alcotest.test_case "mutations" `Quick test_protocol_mutations;
          Alcotest.test_case "blanks and comments" `Quick test_protocol_blanks_and_comments;
          Alcotest.test_case "errors carry line numbers" `Quick
            test_protocol_errors_carry_line_numbers;
          Alcotest.test_case "session line counter" `Quick test_daemon_counts_session_lines;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "lifecycle" `Quick test_epoch_lifecycle;
          Alcotest.test_case "mutation validation" `Quick test_mutation_validation;
          Alcotest.test_case "path command" `Quick test_path_command;
          Alcotest.test_case "stats json strict" `Quick test_stats_json_strict;
          Alcotest.test_case "journal replays" `Quick test_journal_replays;
        ] );
      ( "serving",
        [
          Alcotest.test_case "probe answered mid-repair under flaky chaos" `Quick
            test_probe_answered_mid_repair;
          Alcotest.test_case "shed on backlog" `Quick test_shed_on_backlog;
          Alcotest.test_case "breaker opens under persistent faults" `Quick
            test_breaker_opens_under_persistent_faults;
        ] );
      ( "repair",
        [
          Alcotest.test_case "incremental equals from-scratch" `Slow test_repair_equivalence;
          Alcotest.test_case "cached answers byte-identical" `Quick
            test_cached_answers_byte_identical;
          Alcotest.test_case "dirty assessment" `Quick test_dirty_assessment;
        ] );
      ( "durability",
        [
          Alcotest.test_case "journal round-trips under every fsync policy" `Quick
            test_journal_roundtrip_policies;
          Alcotest.test_case "journal torn at any byte yields the valid prefix" `Quick
            test_journal_torn_at_any_byte;
          Alcotest.test_case "journal rejects sequence gaps and forged checksums" `Quick
            test_journal_rejects_bad_sequence_and_crc;
          Alcotest.test_case "snapshot round-trips and falls back past corruption" `Quick
            test_snapshot_roundtrip_and_fallback;
          Alcotest.test_case "snapshot plus suffix equals full replay" `Slow
            test_recovery_equivalence_snapshot_plus_suffix;
          Alcotest.test_case "crash pre-flush loses only the unacked record" `Quick
            test_crash_pre_flush;
          Alcotest.test_case "crash post-flush replays the durable unacked record" `Quick
            test_crash_post_flush_pre_ack;
          Alcotest.test_case "crash post-rename keeps the loadable checkpoint" `Quick
            test_crash_post_rename;
          Alcotest.test_case "snapshot fsyncs the containing directory" `Quick
            test_snapshot_fsyncs_directory;
          Alcotest.test_case "journal fsync failures are counted, never swallowed" `Quick
            test_journal_fsync_failure_policy;
          Alcotest.test_case "crash mid-snapshot leaves no checkpoint" `Quick
            test_crash_mid_snapshot;
          Alcotest.test_case "crashed daemon recovers to identical answers" `Slow
            test_daemon_crash_loses_unflushed_recover_matches;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "transient repair faults restart the worker" `Quick
            test_repair_restarts_then_succeeds;
          Alcotest.test_case "persistent repair faults poison after the cap" `Quick
            test_repair_poisons_after_cap;
        ] );
    ]
