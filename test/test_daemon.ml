(* Tests for the cr_daemon library: protocol parsing, the daemon's
   epoch lifecycle, repair equivalence (incremental repair converges to
   exactly the state a from-scratch build would produce), mid-repair
   serving under chaos, admission control, and the mutation journal. *)

module Rng = Cr_util.Rng
module Jsonl = Cr_util.Jsonl
module Graph = Cr_graph.Graph
module Gio = Cr_graph.Gio
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module Guard = Cr_guard
module Daemon = Cr_daemon.Daemon
module Protocol = Cr_daemon.Protocol
module Dirty = Cr_daemon.Dirty
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let mk_graph ?(n = 48) seed =
  let rng = Rng.create seed in
  let g = Generators.erdos_renyi rng ~n ~avg_degree:4.0 in
  (* integer weights >= 1: normalized, and mutations stay exact *)
  Graph.reweight g (fun _ _ _ -> 1.0 +. float_of_int (Rng.int rng 7))

let params = Params.scaled ~k:3 ()

(* a random mutation applicable to the current graph; mirrors the
   daemon's churn vocabulary, weights respect the normalization floor *)
let random_mutation rng g =
  let n = Graph.n g in
  let es = Array.of_list (Graph.edges g) in
  let w () = 1.0 +. float_of_int (Rng.int rng 7) in
  match Rng.int rng 5 with
  | 0 when Array.length es > 0 ->
      let u, v, _ = es.(Rng.int rng (Array.length es)) in
      Graph.Set_weight (u, v, w ())
  | 1 when Array.length es > 1 ->
      let u, v, _ = es.(Rng.int rng (Array.length es)) in
      Graph.Link_down (u, v)
  | 2 ->
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v && not (Graph.has_edge g u v) then Graph.Link_up (u, v, w ())
      else Graph.Node_up (Rng.int rng n)
  | 3 -> Graph.Node_down (Rng.int rng n)
  | _ -> Graph.Node_up (Rng.int rng n)

let feed d line =
  let rs = Daemon.handle d line in
  List.iter
    (fun r ->
      checkb
        (Printf.sprintf "response tagged: %s" r)
        true
        ((String.length r >= 3 && String.sub r 0 3 = "ok ")
        || (String.length r >= 4 && String.sub r 0 4 = "err ")))
    rs;
  rs

let feed1 d line = match feed d line with [ r ] -> r | rs -> String.concat "|" rs

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_queries () =
  let ok line cmd =
    match Protocol.parse ~lineno:1 line with
    | Ok (Some c) -> checkb (Printf.sprintf "parse %S" line) true (c = cmd)
    | _ -> Alcotest.failf "parse %S failed" line
  in
  ok "route 3 7" (Protocol.Route (3, 7));
  ok "  dist 0 12  " (Protocol.Dist (0, 12));
  ok "sync" Protocol.Sync;
  ok "stats" Protocol.Stats;
  ok "epoch" Protocol.Epoch;
  ok "help" Protocol.Help;
  ok "quit" Protocol.Quit;
  ok "exit" Protocol.Quit

let test_protocol_mutations () =
  let ok line mu =
    match Protocol.parse ~lineno:1 line with
    | Ok (Some (Protocol.Mutate m)) -> checkb (Printf.sprintf "parse %S" line) true (m = mu)
    | _ -> Alcotest.failf "parse %S: expected mutation" line
  in
  ok "setw 0 1 1.5" (Graph.Set_weight (0, 1, 1.5));
  ok "linkdown 4 2" (Graph.Link_down (4, 2));
  ok "linkup 1 9 2" (Graph.Link_up (1, 9, 2.0));
  ok "nodedown 5" (Graph.Node_down 5);
  ok "nodeup 5" (Graph.Node_up 5)

let test_protocol_blanks_and_comments () =
  List.iter
    (fun line ->
      match Protocol.parse ~lineno:1 line with
      | Ok None -> ()
      | _ -> Alcotest.failf "expected silent skip for %S" line)
    [ ""; "   "; "# comment"; "  # indented comment" ]

let test_protocol_errors_carry_line_numbers () =
  let err ~lineno line =
    match Protocol.parse ~lineno line with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "expected parse error for %S" line
  in
  checkb "unknown command" true (contains (err ~lineno:12 "frobnicate 1") "line 12");
  checkb "mentions token" true (contains (err ~lineno:12 "frobnicate 1") "frobnicate");
  (* mutation records go through the shared Gio grammar *)
  checkb "short setw" true (contains (err ~lineno:7 "setw 0 1") "line 7");
  checkb "bad weight" true (contains (err ~lineno:3 "linkup 0 1 heavy") "line 3");
  checkb "bad endpoint" true (contains (err ~lineno:9 "route 0") "line 9");
  checkb "non-integer" true (contains (err ~lineno:4 "dist a b") "line 4")

let test_daemon_counts_session_lines () =
  let d = Daemon.create ~staleness_every:0 ~params (mk_graph 3) in
  ignore (feed d "epoch");
  ignore (Daemon.handle d "# a comment also advances the line counter");
  let r = feed1 d "bogus" in
  Daemon.close d;
  checkb "err tagged" true (String.sub r 0 4 = "err ");
  checkb "third line" true (contains r "line 3")

(* ------------------------------------------------------------------ *)
(* Epoch lifecycle *)

let test_epoch_lifecycle () =
  let g = mk_graph 5 in
  let d = Daemon.create ~staleness_every:0 ~params g in
  checki "epoch 0" 0 (Daemon.epoch_id d);
  let u, v, _ = List.hd (Graph.edges g) in
  let r = feed1 d (Printf.sprintf "linkdown %d %d" u v) in
  checkb "mutate acked" true (contains r "ok mutate linkdown");
  (match Daemon.sync d with
  | Ok id -> checki "epoch advanced" 1 id
  | Error e -> Alcotest.failf "sync failed: %s" e);
  checki "epoch_id agrees" 1 (Daemon.epoch_id d);
  checki "backlog drained" 0 (Daemon.backlog d);
  checkb "live graph lost the edge" false (Graph.has_edge (Daemon.live_graph d) u v);
  let r = feed1 d "quit" in
  checkb "bye" true (contains r "ok bye");
  checkb "quitting" true (Daemon.quitting d);
  Daemon.close d

let test_mutation_validation () =
  let g = mk_graph 7 in
  let d = Daemon.create ~staleness_every:0 ~params g in
  let r = feed1 d "setw 9999 3 2" in
  checkb "range rejected" true (String.sub r 0 4 = "err ");
  (* weights below the normalization floor are refused: the scheme
     build requires min weight >= 1 *)
  let u, v, _ = List.hd (Graph.edges g) in
  let r = feed1 d (Printf.sprintf "setw %d %d 0.25" u v) in
  checkb "floor rejected" true (String.sub r 0 4 = "err ");
  checki "nothing queued" 0 (Daemon.backlog d);
  checki "epoch unchanged" 0 (Daemon.epoch_id d);
  Daemon.close d

let test_stats_json_strict () =
  let d = Daemon.create ~staleness_every:0 ~params (mk_graph 9) in
  ignore (feed d "route 0 5");
  ignore (feed d "dist 0 5");
  (match Jsonl.validate (Daemon.stats_json d) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "stats json invalid: %s" e);
  let r = feed1 d "stats" in
  checkb "stats over protocol" true (contains r "\"epoch\":");
  Daemon.close d

(* ------------------------------------------------------------------ *)
(* Journal *)

let test_journal_replays () =
  let g = mk_graph 11 in
  let path = Filename.temp_file "crjournal" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let d = Daemon.create ~staleness_every:0 ~journal:path ~params g in
      let u, v, _ = List.hd (Graph.edges g) in
      ignore (feed d (Printf.sprintf "linkdown %d %d" u v));
      ignore (feed d (Printf.sprintf "linkup %d %d 3" u v));
      ignore (feed d "nodedown 0");
      (* rejected mutations must not reach the journal *)
      ignore (Daemon.handle d "setw 9999 0 1");
      (match Daemon.sync d with Ok _ -> () | Error e -> Alcotest.failf "sync: %s" e);
      let live = Daemon.live_graph d in
      Daemon.close d;
      let mus = Gio.load_mutations path in
      checki "three journal lines" 3 (List.length mus);
      let replayed = Graph.apply_all g mus in
      checki "same m" (Graph.m live) (Graph.m replayed);
      Graph.iter_edges live (fun a b w ->
          checkb "same edges" true (Graph.edge_weight replayed a b = Some w)))

(* ------------------------------------------------------------------ *)
(* Mid-repair serving: the acceptance probe.  The repair hook blocks
   the worker domain, so the daemon is provably mid-repair while the
   foreground answers from epoch 0 — under the flaky chaos preset
   (transient query faults absorbed by retry) and a real deadline. *)

let wait_for ?(timeout_s = 5.0) f =
  let rec go n =
    if f () then true
    else if n <= 0 then false
    else begin
      Unix.sleepf 0.002;
      go (n - 1)
    end
  in
  go (int_of_float (timeout_s /. 0.002))

let test_probe_answered_mid_repair () =
  let g = mk_graph 13 ~n:64 in
  let in_repair = Atomic.make false and release = Atomic.make false in
  let hook () =
    Atomic.set in_repair true;
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done
  in
  let policy = { Guard.Policy.serving with Guard.Policy.query_budget_s = Some 2.0 } in
  let chaos = List.assoc "flaky" (Guard.Chaos.presets ~seed:5) in
  let d =
    Daemon.create ~policy ~chaos ~staleness_every:0 ~repair_hook:hook ~params g
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      Daemon.close d)
    (fun () ->
      let u, v, _ = List.hd (Graph.edges g) in
      ignore (feed d (Printf.sprintf "linkdown %d %d" u v));
      checkb "repair started" true (wait_for (fun () -> Atomic.get in_repair));
      checkb "backlog visible" true (Daemon.backlog d >= 1);
      (* several probes: flaky injects transient faults on ~25% of
         queries; retry must absorb them and every answer must come
         from the last-good epoch, well within the deadline *)
      let t0 = Unix.gettimeofday () in
      for q = 0 to 9 do
        let r = feed1 d (Printf.sprintf "route %d %d" (q mod 8) (8 + q)) in
        checkb (Printf.sprintf "probe %d ok: %s" q r) true (contains r "ok route");
        checkb "old epoch" true (contains r "epoch=0")
      done;
      checkb "answered within deadline" true (Unix.gettimeofday () -. t0 < 2.0);
      Atomic.set release true;
      (match Daemon.sync d with
      | Ok id -> checki "repaired" 1 id
      | Error e -> Alcotest.failf "sync: %s" e);
      let r = feed1 d "route 0 9" in
      checkb "new epoch serves" true (contains r "epoch=1"))

(* ------------------------------------------------------------------ *)
(* Admission control *)

let test_shed_on_backlog () =
  let g = mk_graph 17 in
  let in_repair = Atomic.make false and release = Atomic.make false in
  let hook () =
    Atomic.set in_repair true;
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done
  in
  let policy = Guard.Policy.make ~shed:(Guard.Shed.make_config ~max_queue:0 ()) () in
  let d = Daemon.create ~policy ~staleness_every:0 ~repair_hook:hook ~params g in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      Daemon.close d)
    (fun () ->
      let u, v, _ = List.hd (Graph.edges g) in
      ignore (feed d (Printf.sprintf "linkdown %d %d" u v));
      checkb "repair started" true (wait_for (fun () -> Atomic.get in_repair));
      let r = feed1 d "route 0 5" in
      checkb "shed under backlog" true (contains r "rejected=shed");
      Atomic.set release true;
      (match Daemon.sync d with Ok _ -> () | Error e -> Alcotest.failf "sync: %s" e);
      let r = feed1 d "route 0 5" in
      checkb "admitted once drained" true (contains r "ok route");
      checkb "sheds counted" true
        (Cr_obs.Counters.get (Daemon.counters d) "guard.sheds" >= 1))

let test_breaker_opens_under_persistent_faults () =
  let g = mk_graph 19 in
  (* every query fails more attempts than the (absent) retry allows,
     so each admitted query is lost; the breaker must open after
     min_samples and start rejecting up front *)
  let chaos = Guard.Chaos.plan ~label:"dead" ~fail_rate:1.0 ~fail_attempts:9 ~seed:1 () in
  let policy =
    Guard.Policy.make
      ~breaker:(Guard.Breaker.make_config ~window:8 ~min_samples:4 ~cooldown_s:60.0 ())
      ()
  in
  let d = Daemon.create ~policy ~chaos ~staleness_every:0 ~params g in
  let outcomes = List.init 12 (fun q -> feed1 d (Printf.sprintf "route 0 %d" (1 + q))) in
  Daemon.close d;
  checkb "early queries lost" true (contains (List.hd outcomes) "rejected=worker_lost");
  checkb "breaker eventually opens" true
    (List.exists (fun r -> contains r "rejected=breaker_open") outcomes)

(* ------------------------------------------------------------------ *)
(* Repair equivalence: after sync, the daemon's answers are
   bit-identical to a daemon freshly built on the final graph.  This is
   the pin for incremental repair: distances (%.17g round-trips every
   float exactly) and routes (delivered/hops/cost/stretch) cannot be
   told apart from a from-scratch rebuild. *)

let answers d pairs =
  List.concat_map
    (fun (u, v) ->
      [ feed1 d (Printf.sprintf "dist %d %d" u v); feed1 d (Printf.sprintf "route %d %d" u v) ])
    pairs

let strip_epoch r =
  match String.rindex_opt r ' ' with Some i -> String.sub r 0 i | None -> r

let repair_equivalence_case seed =
  let rng = Rng.create seed in
  let n = 16 + Rng.int rng 24 in
  let g = mk_graph ~n seed in
  let d = Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~params g in
  let steps = 1 + Rng.int rng 6 in
  for _ = 1 to steps do
    let mu = random_mutation rng (Daemon.live_graph d) in
    ignore (Daemon.handle d (Graph.mutation_to_string mu))
  done;
  (match Daemon.sync d with Ok _ -> () | Error e -> Alcotest.failf "sync: %s" e);
  let final = Daemon.live_graph d in
  let fresh = Daemon.create ~policy:Guard.Policy.off ~staleness_every:0 ~params final in
  let pairs =
    List.init 40 (fun _ -> (Rng.int rng n, Rng.int rng n))
  in
  (* epoch ids differ by construction (repaired vs 0); everything else
     in the answers must match byte for byte *)
  let a = List.map strip_epoch (answers d pairs)
  and b = List.map strip_epoch (answers fresh pairs) in
  Daemon.close d;
  Daemon.close fresh;
  List.iter2 (fun x y -> checks (Printf.sprintf "seed %d" seed) y x) a b

let test_repair_equivalence () =
  for seed = 1 to 12 do
    repair_equivalence_case seed
  done

(* dirty-set assessment stays consistent with what repair touches *)
let test_dirty_assessment () =
  let g = mk_graph 23 in
  let apsp = Apsp.compute g in
  let agm = Agm06.build ~params apsp in
  let u, v, _ = List.hd (Graph.edges g) in
  let imp = Dirty.assess agm apsp (Graph.Link_down (u, v)) in
  checkb "some sources dirty" true (imp.Dirty.sources > 0);
  checkb "renders" true (String.length (Dirty.to_string imp) > 0);
  let clean = Dirty.assess agm apsp (Graph.Node_up 0) in
  checkb "nodeup touches nothing" true (clean = Dirty.no_impact)

let () =
  Alcotest.run "daemon"
    [
      ( "protocol",
        [
          Alcotest.test_case "queries" `Quick test_protocol_queries;
          Alcotest.test_case "mutations" `Quick test_protocol_mutations;
          Alcotest.test_case "blanks and comments" `Quick test_protocol_blanks_and_comments;
          Alcotest.test_case "errors carry line numbers" `Quick
            test_protocol_errors_carry_line_numbers;
          Alcotest.test_case "session line counter" `Quick test_daemon_counts_session_lines;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "lifecycle" `Quick test_epoch_lifecycle;
          Alcotest.test_case "mutation validation" `Quick test_mutation_validation;
          Alcotest.test_case "stats json strict" `Quick test_stats_json_strict;
          Alcotest.test_case "journal replays" `Quick test_journal_replays;
        ] );
      ( "serving",
        [
          Alcotest.test_case "probe answered mid-repair under flaky chaos" `Quick
            test_probe_answered_mid_repair;
          Alcotest.test_case "shed on backlog" `Quick test_shed_on_backlog;
          Alcotest.test_case "breaker opens under persistent faults" `Quick
            test_breaker_opens_under_persistent_faults;
        ] );
      ( "repair",
        [
          Alcotest.test_case "incremental equals from-scratch" `Slow test_repair_equivalence;
          Alcotest.test_case "dirty assessment" `Quick test_dirty_assessment;
        ] );
    ]
