(* Tests for the observability layer (lib/obs) and its determinism
   contract: a trace sink never changes a routed walk (events are pure
   annotation), the ring buffer stays bounded, the profiler charges
   stages against a swappable clock, and every emitted JSON line is
   strict JSON. *)

module Rng = Cr_util.Rng
module Jsonl = Cr_util.Jsonl
module Trace = Cr_obs.Trace
module Ring = Cr_obs.Ring
module Counters = Cr_obs.Counters
module Profile = Cr_obs.Profile
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module Fault_plan = Cr_resilience.Fault_plan
module Fsim = Cr_resilience.Fsim
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let prepared_graph ?(n = 80) ?(avg = 4.0) seed =
  let rng = Rng.create seed in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n ~avg_degree:avg) in
  Apsp.compute (Graph.normalize g)

let check_valid_json label s =
  match Jsonl.validate s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid JSON %s in %s" label msg s

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_bounds () =
  let r = Ring.create ~capacity:3 in
  checki "empty" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  checkb "partial to_list" true (Ring.to_list r = [ 1; 2 ]);
  Ring.push r 3;
  Ring.push r 4;
  Ring.push r 5;
  checki "stays at capacity" 3 (Ring.length r);
  checki "dropped counts overwrites" 2 (Ring.dropped r);
  checkb "keeps newest, oldest first" true (Ring.to_list r = [ 3; 4; 5 ]);
  let seen = ref [] in
  Ring.iter (fun x -> seen := x :: !seen) r;
  checkb "iter order" true (List.rev !seen = [ 3; 4; 5 ]);
  Ring.clear r;
  checki "clear empties" 0 (Ring.length r);
  checki "clear resets dropped" 0 (Ring.dropped r);
  let one = Ring.create ~capacity:1 in
  Ring.push one 10;
  Ring.push one 11;
  checkb "capacity 1 keeps last" true (Ring.to_list one = [ 11 ]);
  checkb "capacity 0 rejected" true
    (match Ring.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ring_concurrent_writers_wraparound () =
  (* several domains hammer one ring far past wraparound: the invariants
     (bounded length, pushes = retained + dropped, whole items only)
     must hold under any interleaving *)
  let capacity = 64 in
  let writers = 4 in
  let per_writer = 1000 in
  let r = Ring.create ~capacity in
  let spawned =
    Array.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per_writer - 1 do
              Ring.push r ((w * per_writer) + i)
            done))
  in
  Array.iter Domain.join spawned;
  let total = writers * per_writer in
  checki "full after wraparound" capacity (Ring.length r);
  checki "dropped accounts for every push" (total - capacity) (Ring.dropped r);
  let retained = Ring.to_list r in
  checki "to_list returns the retained items" capacity (List.length retained);
  (* every retained item is a whole pushed value, never torn state *)
  List.iter
    (fun x -> checkb "valid item" true (x >= 0 && x < total))
    retained;
  (* each writer's items appear in its own push order *)
  for w = 0 to writers - 1 do
    let mine = List.filter (fun x -> x / per_writer = w) retained in
    checkb
      (Printf.sprintf "writer %d order preserved" w)
      true
      (List.sort compare mine = mine)
  done;
  (* no item appears twice among the retained slots *)
  checki "retained items distinct" capacity
    (List.length (List.sort_uniq compare retained))

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counters () =
  let c = Counters.create () in
  checki "untouched is 0" 0 (Counters.get c "nope");
  Counters.incr c "b";
  Counters.add c "a" 5;
  Counters.incr c "b";
  checki "incr accumulates" 2 (Counters.get c "b");
  checkb "snapshot sorted" true (Counters.snapshot c = [ ("a", 5); ("b", 2) ]);
  check_valid_json "counters json" (Counters.to_json c);
  (* the aggregating sink keys by prefixed event label *)
  let sink = Counters.sink c in
  sink (Trace.Deliver { phase = 1; node = 3 });
  sink (Trace.Deliver { phase = 2; node = 4 });
  checki "sink counts by label" 2 (Counters.get c "trace.deliver")

let test_counters_parallel () =
  let c = Counters.create () in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Counters.incr c "hits"
            done))
  in
  Array.iter Domain.join domains;
  checki "4000 increments survive" 4000 (Counters.get c "hits")

(* ------------------------------------------------------------------ *)
(* Profile *)

let test_profile_fake_clock () =
  let saved = !Profile.clock in
  Fun.protect
    ~finally:(fun () -> Profile.clock := saved)
    (fun () ->
      let now = ref 0.0 in
      Profile.clock := (fun () -> !now);
      let p = Profile.create () in
      let x = Profile.time p "apsp" (fun () -> now := !now +. 2.0; 41 + 1) in
      checki "time returns the result" 42 x;
      Profile.time p "tables" (fun () -> now := !now +. 1.0);
      Profile.time p "apsp" (fun () -> now := !now +. 0.5);
      Profile.add_bits p "tables" 1024;
      checkb "stages in first-touch order with summed seconds" true
        (Profile.stages p = [ ("apsp", 2.5, 0); ("tables", 1.0, 1024) ]);
      checkb "total seconds" true (Profile.total_seconds p = 3.5);
      checki "total bits" 1024 (Profile.total_bits p);
      (* an exception still charges the stage *)
      (try Profile.time p "tables" (fun () -> now := !now +. 4.0; failwith "boom")
       with Failure _ -> ());
      checkb "exception charged" true
        (match Profile.stages p with [ _; ("tables", 5.0, 1024) ] -> true | _ -> false);
      let rendered = Profile.report ~title:"build" p in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      checkb "report mentions stages" true
        (contains rendered "apsp" && contains rendered "tables");
      check_valid_json "profile json" (Profile.to_json p))

(* ------------------------------------------------------------------ *)
(* Trace events *)

let all_events =
  [
    Trace.Phase_start { phase = 1; kind = Trace.Sparse; center = 7; bound = 2 };
    Trace.Phase_start { phase = 2; kind = Trace.Dense; center = 3; bound = 4 };
    Trace.Phase_start { phase = 4; kind = Trace.Global; center = 0; bound = 3 };
    Trace.Phase_start { phase = 1; kind = Trace.Vicinity; center = 5; bound = 0 };
    Trace.Phase_start { phase = 2; kind = Trace.Pivot; center = 9; bound = 1 };
    Trace.Phase_start { phase = 2; kind = Trace.Color; center = 9; bound = 6 };
    Trace.Phase_start { phase = 1; kind = Trace.Direct; center = 2; bound = 0 };
    Trace.Climb { phase = 1; from_node = 4; to_node = 7; hops = 3 };
    Trace.Tree_step { round = 2; from_node = 7; to_node = 12 };
    Trace.Phase_result { phase = 1; found = false; rounds = 2 };
    Trace.Stall { at = 3; toward = 4 };
    Trace.Deflect { at = 3; via = 6 };
    Trace.Replan { at = 6 };
    Trace.Deliver { phase = 2; node = 12 };
    Trace.No_route { phase = 4 };
  ]

let test_event_encodings () =
  List.iter
    (fun ev ->
      check_valid_json (Trace.label ev) (Trace.event_to_json ev);
      checkb "human line is non-empty" true (String.length (Trace.event_to_string ev) > 0);
      (* the JSON carries the label as its "event" field *)
      let j = Trace.event_to_json ev in
      checkb "json starts with event label" true
        (String.length j > 12 && String.sub j 0 10 = "{\"event\":\""))
    all_events;
  checks "label stable" "phase_start" (Trace.label (List.hd all_events));
  checks "kind names" "sparse" (Trace.kind_to_string Trace.Sparse)

let test_tee () =
  let a = ref 0 and b = ref 0 in
  let sink = Trace.tee (fun _ -> incr a) (fun _ -> incr b) in
  List.iter sink all_events;
  checki "left sink sees all" (List.length all_events) !a;
  checki "right sink sees all" (List.length all_events) !b

(* ------------------------------------------------------------------ *)
(* Determinism: traced walk == untraced walk, for every scheme family *)

let schemes_under_test apsp =
  [
    Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ~seed:2 ()) apsp);
    Baseline_tz.build ~k:3 ~seed:5 apsp;
    Baseline_s3.build ~seed:5 apsp;
    Baseline_full.build apsp;
    Baseline_tree.build apsp;
    Baseline_exp.build ~k:3 ~seed:5 apsp;
    Baseline_ap.build ~k:3 apsp;
  ]

let test_trace_does_not_change_walks () =
  let apsp = prepared_graph 11 in
  let n = Graph.n (Apsp.graph apsp) in
  let rng = Rng.create 99 in
  let pairs = Array.init 60 (fun _ -> (Rng.int rng n, Rng.int rng n)) in
  List.iter
    (fun (sch : Scheme.t) ->
      let traced_events = ref 0 in
      Array.iter
        (fun (s, d) ->
          let plain = sch.Scheme.route s d in
          let events = ref [] in
          let traced = sch.Scheme.route ~trace:(fun ev -> events := ev :: !events) s d in
          Alcotest.(check (list int))
            (Printf.sprintf "%s walk %d->%d" sch.Scheme.name s d)
            plain.Scheme.walk traced.Scheme.walk;
          checkb "delivered agrees" true (plain.Scheme.delivered = traced.Scheme.delivered);
          checkb "phases agree" true (plain.Scheme.phases_used = traced.Scheme.phases_used);
          traced_events := !traced_events + List.length !events;
          (* every event serializes to strict JSON *)
          List.iter (fun ev -> check_valid_json sch.Scheme.name (Trace.event_to_json ev)) !events;
          (* a delivered route always narrates its delivery *)
          if plain.Scheme.delivered then
            checkb
              (Printf.sprintf "%s %d->%d emits deliver" sch.Scheme.name s d)
              true
              (List.exists (function Trace.Deliver _ -> true | _ -> false) !events))
        pairs;
      checkb (sch.Scheme.name ^ " emitted events") true (!traced_events > 0))
    (schemes_under_test apsp)

let test_agm06_trace_shape () =
  let apsp = prepared_graph 13 in
  let n = Graph.n (Apsp.graph apsp) in
  let sch = Agm06.scheme (Agm06.build ~params:(Params.scaled ~k:3 ~seed:2 ()) apsp) in
  let checked = ref 0 in
  for s = 0 to min 9 (n - 1) do
    let d = (s + (n / 2)) mod n in
    if s <> d then begin
      let events = ref [] in
      let r = sch.Scheme.route ~trace:(fun ev -> events := ev :: !events) s d in
      let events = List.rev !events in
      if r.Scheme.delivered then begin
        incr checked;
        (* phases narrate in order: each Phase_start's phase is weakly
           increasing, and the delivery phase matches the route *)
        let phases =
          List.filter_map (function Trace.Phase_start { phase; _ } -> Some phase | _ -> None) events
        in
        checkb "at least one phase" true (phases <> []);
        checkb "phases weakly increasing" true
          (fst
             (List.fold_left (fun (ok, prev) p -> (ok && p >= prev, p)) (true, 0) phases));
        match List.rev events with
        | Trace.Deliver { phase; _ } :: _ ->
            checki "deliver phase = phases_used" r.Scheme.phases_used phase
        | _ -> Alcotest.fail "last event of a delivered route must be deliver"
      end
    end
  done;
  checkb "exercised some delivered routes" true (!checked > 0)

let test_fsim_trace_events () =
  let apsp = prepared_graph 17 in
  let g = Apsp.graph apsp in
  let n = Graph.n g in
  let sch = Baseline_full.build apsp in
  let policy = Fsim.default_policy ~max_retries:4 g in
  let plan = Fault_plan.independent_edges ~seed:3 g ~rate:0.15 in
  let stalls = ref 0 and deflects = ref 0 and replans = ref 0 in
  for s = 0 to min 19 (n - 1) do
    let d = (s + (n / 2)) mod n in
    let plain = Fsim.run policy plan apsp sch ~src:s ~dst:d in
    let traced =
      Fsim.run
        ~trace:(fun ev ->
          match ev with
          | Trace.Stall _ -> incr stalls
          | Trace.Deflect _ -> incr deflects
          | Trace.Replan _ -> incr replans
          | _ -> ())
        policy plan apsp sch ~src:s ~dst:d
    in
    Alcotest.(check (list int)) "fsim walk unchanged" plain.Fsim.walk traced.Fsim.walk;
    checkb "fsim outcome unchanged" true (plain.Fsim.outcome = traced.Fsim.outcome);
    checkb "fsim retries unchanged" true (plain.Fsim.retries = traced.Fsim.retries)
  done;
  checkb "faults at 15% produce stalls" true (!stalls > 0);
  checkb "deflections bounded by stalls" true (!deflects <= !stalls);
  checkb "replans bounded by deflections" true (!replans <= !deflects)

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "bounds and eviction" `Quick test_ring_bounds;
          Alcotest.test_case "concurrent writers wraparound" `Quick
            test_ring_concurrent_writers_wraparound;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basic + sink" `Quick test_counters;
          Alcotest.test_case "parallel increments" `Quick test_counters_parallel;
        ] );
      ("profile", [ Alcotest.test_case "fake clock" `Quick test_profile_fake_clock ]);
      ( "trace",
        [
          Alcotest.test_case "event encodings" `Quick test_event_encodings;
          Alcotest.test_case "tee" `Quick test_tee;
          Alcotest.test_case "walks identical traced vs untraced" `Quick
            test_trace_does_not_change_walks;
          Alcotest.test_case "agm06 trace shape" `Quick test_agm06_trace_shape;
          Alcotest.test_case "fsim stall/deflect/replan" `Quick test_fsim_trace_events;
        ] );
    ]
