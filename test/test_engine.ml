(* Tests for the batch query engine and its substrate: the reusable
   domain pool (reuse, exception propagation, nested-call fallback), the
   LRU route-plan cache, deterministic workload generation, and the
   engine's determinism contract — batch results bit-identical across
   pool widths and with the cache on or off, for every scheme family. *)

module Rng = Cr_util.Rng
module Pool = Cr_util.Domain_pool
module Stats = Cr_util.Stats
module Graph = Cr_graph.Graph
module Apsp = Cr_graph.Apsp
module Generators = Cr_graph.Generators
module Lru = Cr_engine.Lru
module Workload = Cr_engine.Workload
module Engine = Cr_engine.Engine
module Serve = Cr_engine.Serve
module Sweep = Cr_resilience.Sweep
module Fsim = Cr_resilience.Fsim
open Compact_routing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let prepared_graph ?(n = 100) ?(avg = 4.0) seed =
  let rng = Rng.create seed in
  let g = Graph.relabel rng (Generators.erdos_renyi rng ~n ~avg_degree:avg) in
  Apsp.compute (Graph.normalize g)

let agm_scheme ?(k = 3) ?(seed = 1) apsp =
  Agm06.scheme (Agm06.build ~params:(Params.scaled ~k ~seed ()) apsp)

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Domain_pool *)

let test_pool_covers_every_index () =
  with_pool ~domains:4 (fun pool ->
      checki "domains" 4 (Pool.domains pool);
      let n = 1000 in
      let hits = Array.make n 0 in
      Pool.parallel_for ~chunk:7 pool ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri (fun i c -> checki (Printf.sprintf "index %d once" i) 1 c) hits)

let test_pool_reuse_across_calls () =
  with_pool ~domains:3 (fun pool ->
      for round = 1 to 5 do
        let n = 64 * round in
        let out = Array.make n (-1) in
        Pool.parallel_for pool ~n (fun i -> out.(i) <- i * i);
        Array.iteri (fun i v -> checki "slot" (i * i) v) out
      done)

let test_pool_exception_propagates () =
  with_pool ~domains:2 (fun pool ->
      let raised =
        try
          Pool.parallel_for pool ~n:100 (fun i -> if i = 57 then failwith "boom");
          false
        with Failure m -> m = "boom"
      in
      checkb "body exception re-raised" true raised;
      (* the pool is still usable after a failed job *)
      let ok = Array.make 32 false in
      Pool.parallel_for pool ~n:32 (fun i -> ok.(i) <- true);
      Array.iter (checkb "usable after failure" true) ok)

let test_pool_nested_call_degrades () =
  with_pool ~domains:2 (fun pool ->
      let inner_total = Atomic.make 0 in
      Pool.parallel_for ~chunk:1 pool ~n:4 (fun _ ->
          (* a nested call on a busy pool must run sequentially, not
             deadlock *)
          Pool.parallel_for pool ~n:8 (fun _ -> Atomic.incr inner_total));
      checki "all nested indexes ran" 32 (Atomic.get inner_total))

let test_pool_size_one_and_clamp () =
  with_pool ~domains:1 (fun pool ->
      checki "size one" 1 (Pool.domains pool);
      let out = Array.make 16 0 in
      Pool.parallel_for pool ~n:16 (fun i -> out.(i) <- 1);
      checki "all ran" 16 (Array.fold_left ( + ) 0 out));
  with_pool ~domains:(-3) (fun pool -> checki "clamped up" 1 (Pool.domains pool))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* after shutdown, parallel_for degrades to a sequential loop *)
  let out = Array.make 8 0 in
  Pool.parallel_for pool ~n:8 (fun i -> out.(i) <- 1);
  checki "sequential after shutdown" 8 (Array.fold_left ( + ) 0 out)

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_basics () =
  let c = Lru.create ~capacity:2 in
  checkb "miss on empty" true (Lru.find c 1 = None);
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  checkb "hit 1" true (Lru.find c 1 = Some "a");
  Lru.add c 3 "c";
  (* 2 was least-recently-used (1 was promoted by the find) *)
  checkb "2 evicted" false (Lru.mem c 2);
  checkb "1 kept" true (Lru.mem c 1);
  checkb "3 kept" true (Lru.mem c 3);
  checki "length" 2 (Lru.length c);
  checki "capacity" 2 (Lru.capacity c);
  checki "hits" 1 (Lru.hits c);
  checki "misses" 1 (Lru.misses c)

let test_lru_update_promotes () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 10;
  Lru.add c 2 20;
  Lru.add c 1 11;
  (* update, promotes 1 *)
  Lru.add c 3 30;
  checkb "2 evicted" false (Lru.mem c 2);
  checkb "updated value" true (Lru.find c 1 = Some 11)

let test_lru_capacity_one_and_validation () =
  let c = Lru.create ~capacity:1 in
  for k = 0 to 9 do
    Lru.add c k k
  done;
  checki "length stays 1" 1 (Lru.length c);
  checkb "only the last key" true (Lru.mem c 9 && not (Lru.mem c 8));
  (* at capacity 1 every add of a fresh key evicts the resident one, and
     a find of the resident key (itself the MRU) must not perturb it *)
  checkb "resident hit" true (Lru.find c 9 = Some 9);
  checkb "evicted miss" true (Lru.find c 0 = None);
  Lru.add c 10 10;
  checkb "fresh add evicts resident" true (Lru.mem c 10 && not (Lru.mem c 9));
  checki "still length 1" 1 (Lru.length c);
  checki "hits counted" 1 (Lru.hits c);
  checki "misses counted" 1 (Lru.misses c);
  checkb "capacity 0 rejected" true
    (try ignore (Lru.create ~capacity:0); false with Invalid_argument _ -> true)

let test_lru_interleaved_at_capacity () =
  (* a full interleaving of hits, misses, updates and evictions while
     the cache sits exactly at its capacity boundary, with exact
     counter accounting at every step *)
  let c = Lru.create ~capacity:3 in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  Lru.add c 3 "c";
  checki "at capacity" 3 (Lru.length c);
  checkb "hit promotes 1" true (Lru.find c 1 = Some "a");
  (* recency now 2 < 3 < 1: a fresh add must evict 2, not 1 *)
  Lru.add c 4 "d";
  checkb "2 evicted" false (Lru.mem c 2);
  checkb "miss on evicted" true (Lru.find c 2 = None);
  checkb "hit promotes 3" true (Lru.find c 3 = Some "c");
  (* recency 1 < 4 < 3: next eviction takes 1 *)
  Lru.add c 5 "e";
  checkb "1 evicted" false (Lru.mem c 1);
  checkb "miss on 1" true (Lru.find c 1 = None);
  (* updating a resident key at capacity evicts nothing *)
  Lru.add c 5 "E";
  checki "update keeps length" 3 (Lru.length c);
  checkb "updated value" true (Lru.find c 5 = Some "E");
  checkb "4 survived the update" true (Lru.mem c 4);
  checkb "3 survived the update" true (Lru.mem c 3);
  checki "exact hits" 3 (Lru.hits c);
  checki "exact misses" 2 (Lru.misses c);
  checki "never over capacity" 3 (Lru.length c)

let test_lru_churn_against_hashtbl () =
  (* random churn: the LRU must agree with a model that never evicts, on
     every key that is still resident *)
  let c = Lru.create ~capacity:16 in
  let model = Hashtbl.create 64 in
  let rng = Rng.create 99 in
  for _ = 1 to 2000 do
    let k = Rng.int rng 48 in
    if Rng.int rng 2 = 0 then begin
      let v = Rng.int rng 1000 in
      Lru.add c k v;
      Hashtbl.replace model k v
    end
    else
      match Lru.find c k with
      | Some v -> checki "resident value matches model" (Hashtbl.find model k) v
      | None -> ()
  done;
  checkb "bounded" true (Lru.length c <= 16)

(* ------------------------------------------------------------------ *)
(* Workload *)

let test_workload_deterministic () =
  let a = Workload.generate Workload.Uniform ~seed:5 ~n:100 ~count:3000 in
  let b = Workload.generate Workload.Uniform ~seed:5 ~n:100 ~count:3000 in
  checkb "same seed, same stream" true (a = b);
  let c = Workload.generate Workload.Uniform ~seed:6 ~n:100 ~count:3000 in
  checkb "different seed differs" true (a <> c)

let test_workload_pool_invariant () =
  let seq = Workload.generate (Workload.Zipf 1.1) ~seed:5 ~n:100 ~count:2500 in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          let par = Workload.generate ~pool (Workload.Zipf 1.1) ~seed:5 ~n:100 ~count:2500 in
          checkb (Printf.sprintf "pool %d identical" domains) true (seq = par)))
    [ 1; 2; 4 ]

let test_workload_pairs_valid () =
  let pairs = Workload.generate (Workload.Zipf 1.4) ~seed:9 ~n:50 ~count:4000 in
  checki "count" 4000 (Array.length pairs);
  Array.iter
    (fun (s, d) ->
      checkb "in range" true (s >= 0 && s < 50 && d >= 0 && d < 50);
      checkb "src <> dst" true (s <> d))
    pairs

let test_workload_zipf_is_skewed () =
  let pairs = Workload.generate (Workload.Zipf 1.2) ~seed:9 ~n:100 ~count:5000 in
  let freq = Array.make 100 0 in
  Array.iter (fun (s, d) -> freq.(s) <- freq.(s) + 1; freq.(d) <- freq.(d) + 1) pairs;
  (* rank 0 must be much hotter than the tail under zipf *)
  checkb "head heavier than tail" true (freq.(0) > 4 * freq.(99))

let test_workload_connected_filter () =
  (* two components: pairs must never cross *)
  let g =
    Graph.create ~n:6 [ (0, 1, 1.0); (1, 2, 1.0); (3, 4, 1.0); (4, 5, 1.0) ]
  in
  let apsp = Apsp.compute g in
  let pairs = Workload.generate ~connected_in:apsp Workload.Uniform ~seed:3 ~n:6 ~count:500 in
  Array.iter
    (fun (s, d) -> checkb "finite distance" true (Apsp.distance apsp s d < infinity))
    pairs

let test_workload_zipf_boundaries () =
  (* rank_of is the inverse CDF behind draw: the boundary draws must pin
     the hottest node at u = 0.0 and the coldest at u = 1.0, with the
     final cdf cell forced to exactly 1.0 so no u can fall off the end *)
  List.iter
    (fun s ->
      let d = Workload.Zipf s in
      checki (Printf.sprintf "zipf:%g u=0 is rank 0" s) 0 (Workload.rank_of d ~n:50 0.0);
      checki (Printf.sprintf "zipf:%g u=1 is rank n-1" s) 49 (Workload.rank_of d ~n:50 1.0);
      checki (Printf.sprintf "zipf:%g u just under 1" s) 49
        (Workload.rank_of d ~n:50 (1.0 -. 1e-12));
      (* monotone in u *)
      let prev = ref (-1) in
      for i = 0 to 100 do
        let r = Workload.rank_of d ~n:50 (float_of_int i /. 100.0) in
        checkb "rank in range" true (r >= 0 && r < 50);
        checkb "monotone" true (r >= !prev);
        prev := r
      done)
    [ 0.5; 1.1; 2.0 ];
  (* n = 1 degenerates to the single node at both ends *)
  checki "n=1 u=0" 0 (Workload.rank_of (Workload.Zipf 1.1) ~n:1 0.0);
  checki "n=1 u=1" 0 (Workload.rank_of (Workload.Zipf 1.1) ~n:1 1.0);
  (* uniform endpoints, and out-of-range u clamps instead of escaping *)
  checki "uniform u=0" 0 (Workload.rank_of Workload.Uniform ~n:10 0.0);
  checki "uniform u=1 capped" 9 (Workload.rank_of Workload.Uniform ~n:10 1.0);
  checki "u clamped below" 0 (Workload.rank_of (Workload.Zipf 1.1) ~n:10 (-0.5));
  checki "u clamped above" 9 (Workload.rank_of (Workload.Zipf 1.1) ~n:10 2.0);
  checkb "n=0 rejected" true
    (try ignore (Workload.rank_of Workload.Uniform ~n:0 0.5); false
     with Invalid_argument _ -> true)

let test_workload_dist_parsing () =
  checkb "uniform" true (Workload.dist_of_string "uniform" = Ok Workload.Uniform);
  checkb "zipf default" true (Workload.dist_of_string "zipf" = Ok (Workload.Zipf 1.1));
  checkb "zipf exponent" true (Workload.dist_of_string "zipf:0.8" = Ok (Workload.Zipf 0.8));
  checkb "garbage rejected" true
    (match Workload.dist_of_string "pareto" with Error _ -> true | Ok _ -> false);
  List.iter
    (fun d ->
      checkb "roundtrip" true
        (Workload.dist_of_string (Workload.dist_to_string d) = Ok d))
    [ Workload.Uniform; Workload.Zipf 1.1; Workload.Zipf 0.75 ]

(* ------------------------------------------------------------------ *)
(* Engine determinism contract *)

let schemes_under_test apsp =
  [ agm_scheme apsp; Baseline_tz.build ~k:3 apsp; Baseline_tree.build apsp ]

let test_engine_matches_sequential_everywhere () =
  let apsp = prepared_graph 11 in
  let pairs = Experiment.default_pairs ~seed:12 apsp ~count:400 in
  List.iter
    (fun (sch : Scheme.t) ->
      let reference = Simulator.measure_all apsp sch pairs in
      List.iter
        (fun domains ->
          List.iter
            (fun cache ->
              with_pool ~domains (fun pool ->
                  let engine = Engine.create ~cache ~pool () in
                  let results, m = Engine.run_batch engine apsp sch pairs in
                  checkb
                    (Printf.sprintf "%s: domains=%d cache=%d identical" sch.Scheme.name
                       domains cache)
                    true (results = reference);
                  checki "metrics.queries" (Array.length pairs) m.Engine.queries;
                  checki "metrics.domains" domains m.Engine.domains))
            [ 0; 64 ])
        [ 1; 2; 4 ])
    (schemes_under_test apsp)

let test_engine_aggregate_matches_evaluate () =
  let apsp = prepared_graph 13 in
  let pairs = Experiment.default_pairs ~seed:14 apsp ~count:300 in
  let sch = agm_scheme apsp in
  let reference = Simulator.evaluate apsp sch pairs in
  with_pool ~domains:3 (fun pool ->
      let engine = Engine.create ~cache:128 ~pool () in
      let agg, _ = Engine.evaluate engine apsp sch pairs in
      checkb "aggregate bit-identical" true (agg = reference))

let test_engine_cache_hits_on_replay () =
  let apsp = prepared_graph 15 in
  let pairs = Experiment.default_pairs ~seed:16 apsp ~count:200 in
  let sch = Baseline_tz.build ~k:3 apsp in
  with_pool ~domains:2 (fun pool ->
      let engine = Engine.create ~cache:4096 ~pool () in
      let r1, m1 = Engine.run_batch engine apsp sch pairs in
      (* capacity exceeds the working set: a replay must hit on every query *)
      let r2, m2 = Engine.run_batch engine apsp sch pairs in
      checkb "replay identical" true (r1 = r2);
      checki "replay all hits" (Array.length pairs) m2.Engine.cache_hits;
      checki "replay no misses" 0 m2.Engine.cache_misses;
      checkb "first batch missed at least once" true (m1.Engine.cache_misses > 0);
      checki "served counts both batches" (2 * Array.length pairs) (Engine.served engine);
      let hits, misses = Engine.cache_stats engine in
      checki "lifetime totals" (2 * Array.length pairs) (hits + misses))

let test_engine_empty_and_validation () =
  let apsp = prepared_graph 17 ~n:30 in
  let sch = Baseline_tree.build apsp in
  with_pool ~domains:2 (fun pool ->
      let engine = Engine.create ~pool () in
      let results, m = Engine.run_batch engine apsp sch [||] in
      checki "empty results" 0 (Array.length results);
      checki "empty queries" 0 m.Engine.queries);
  checkb "negative cache rejected" true
    (try ignore (Engine.create ~cache:(-1) ()); false with Invalid_argument _ -> true)

let test_engine_counters_aggregate () =
  let apsp = prepared_graph 18 ~n:60 in
  let pairs = Experiment.default_pairs ~seed:19 apsp ~count:150 in
  let sch = Baseline_tz.build ~k:3 apsp in
  let counters = Cr_obs.Counters.create () in
  with_pool ~domains:2 (fun pool ->
      let engine = Engine.create ~cache:4096 ~counters ~pool () in
      let results, _ = Engine.run_batch engine apsp sch pairs in
      ignore (Engine.run_batch engine apsp sch pairs);
      let get name = Cr_obs.Counters.get counters name in
      checki "batches" 2 (get "engine.batches");
      checki "queries" (2 * Array.length pairs) (get "engine.queries");
      let delivered =
        Array.fold_left
          (fun acc (r : Simulator.measured) -> if r.delivered then acc + 1 else acc)
          0 results
      in
      checki "delivered" (2 * delivered) (get "engine.delivered");
      checki "cache hits + misses = queries" (2 * Array.length pairs)
        (get "engine.cache_hits" + get "engine.cache_misses");
      (* the replay alone contributes a hit per query; the first batch
         may add more on duplicate pairs *)
      checkb "replay hits on every query" true
        (get "engine.cache_hits" >= Array.length pairs))

(* ------------------------------------------------------------------ *)
(* Rewired call sites: Apsp, Experiment, Sweep, Agm06 counters *)

let test_apsp_parallel_matches_sequential () =
  let rng = Rng.create 19 in
  let g = Graph.normalize (Graph.relabel rng (Generators.erdos_renyi rng ~n:120 ~avg_degree:4.0)) in
  let seq = Apsp.compute g in
  List.iter
    (fun domains ->
      let par = Apsp.compute_parallel ~domains g in
      let same = ref true in
      for s = 0 to Graph.n g - 1 do
        for d = 0 to Graph.n g - 1 do
          if Apsp.distance seq s d <> Apsp.distance par s d then same := false
        done
      done;
      checkb (Printf.sprintf "domains=%d distances identical" domains) true !same)
    [ 1; 2; 4 ]

let test_experiment_row_pool_invariant () =
  let apsp = prepared_graph 21 in
  let pairs = Experiment.default_pairs ~seed:22 apsp ~count:250 in
  let sch = agm_scheme apsp in
  let rows =
    List.map
      (fun domains ->
        with_pool ~domains (fun pool -> Experiment.run_scheme ~pool apsp sch ~pairs))
      [ 1; 2; 4 ]
  in
  match rows with
  | r1 :: rest -> List.iter (fun r -> checkb "row identical" true (r = r1)) rest
  | [] -> assert false

let test_sweep_pool_invariant () =
  let apsp = prepared_graph 23 in
  let g = Apsp.graph apsp in
  let pairs = Experiment.default_pairs ~seed:24 apsp ~count:150 in
  let schemes = [ Baseline_tz.build ~k:3 apsp; Baseline_tree.build apsp ] in
  let policy = Fsim.default_policy ~max_retries:1 g in
  let run domains =
    with_pool ~domains (fun pool ->
        Sweep.sweep ~pool ~policy ~model:Sweep.Edges ~seed:25 ~rates:[ 0.0; 0.1 ] apsp
          schemes pairs)
  in
  let c1 = run 1 and c4 = run 4 in
  checkb "sweep cells identical across pool widths" true (c1 = c4)

let test_agm06_counters_exact_under_parallel () =
  let apsp = prepared_graph 27 in
  let a = Agm06.build ~params:(Params.scaled ~k:3 ~seed:1 ()) apsp in
  let sch = Agm06.scheme a in
  let pairs = Experiment.default_pairs ~seed:28 apsp ~count:100 in
  with_pool ~domains:4 (fun pool ->
      ignore (Simulator.evaluate ~pool apsp sch pairs));
  let st = Agm06.stats a in
  checki "routes counted exactly" 100 st.Agm06.routes;
  checki "delivered + failed = routes" st.Agm06.routes (st.Agm06.delivered + st.Agm06.failed);
  (* every pair has src <> dst, so each delivery lands in exactly one
     phase bucket (fallback deliveries included) *)
  let phase_sum = Array.fold_left ( + ) 0 st.Agm06.phase_found in
  checki "phase histogram sums to deliveries" st.Agm06.delivered phase_sum;
  checkb "fallback within deliveries" true (st.Agm06.fallback_resolved <= st.Agm06.delivered)

(* ------------------------------------------------------------------ *)
(* Serve *)

let test_serve_deterministic_across_domains () =
  let apsp = prepared_graph 31 ~n:80 in
  let sch = agm_scheme apsp in
  let run domains cache =
    Serve.run ~cache ~domains ~seed:32 ~queries:600 ~workload:"test" apsp sch
  in
  let r1 = run 1 0 and r2 = run 2 0 and r4 = run 4 256 in
  checki "delivered invariant (1 vs 2)" r1.Serve.delivered r2.Serve.delivered;
  checki "delivered invariant (1 vs 4+cache)" r1.Serve.delivered r4.Serve.delivered;
  checkb "stretch mean invariant" true
    (r1.Serve.stretch_mean = r2.Serve.stretch_mean
    && r1.Serve.stretch_mean = r4.Serve.stretch_mean);
  checkb "stretch p99 invariant" true (r1.Serve.stretch_p99 = r4.Serve.stretch_p99);
  checki "queries" 600 r1.Serve.queries;
  checki "domains recorded" 2 r2.Serve.domains;
  checkb "cache counters add up" true
    (r4.Serve.cache_hits + r4.Serve.cache_misses = 600);
  checkb "hit rate in [0,1]" true
    (Serve.hit_rate r4 >= 0.0 && Serve.hit_rate r4 <= 1.0);
  checkb "no cache, no counters" true (r1.Serve.cache_hits = 0 && r1.Serve.cache_misses = 0)

let test_engine_shared_cache_mode () =
  let apsp = prepared_graph 41 ~n:64 in
  let sch = agm_scheme apsp in
  let pairs =
    Workload.generate ~connected_in:apsp (Workload.Zipf 1.1) ~seed:42 ~n:64 ~count:400
  in
  with_pool ~domains:2 (fun pool ->
      let engine = Engine.create ~cache:1024 ~cache_mode:Engine.Shared ~pool () in
      checkb "mode recorded" true (Engine.cache_mode engine = Engine.Shared);
      let r1, _ = Engine.run_batch engine apsp sch pairs in
      let r2, _ = Engine.run_batch engine apsp sch pairs in
      checkb "replay identical through the shared table" true (r1 = r2);
      let s = Engine.shared_stats engine in
      checkb "replay hits the shared table" true (s.Cr_util.Ttcache.hits > 0);
      let hits, misses = Engine.cache_stats engine in
      checki "cache_stats reconciles with the table" (s.Cr_util.Ttcache.hits) hits;
      checki "misses reconcile too" (s.Cr_util.Ttcache.misses) misses);
  checkb "shared with no capacity rejected" true
    (try
       ignore (Engine.create ~cache:0 ~cache_mode:Engine.Shared () : unit Engine.t);
       false
     with Invalid_argument _ -> true);
  checkb "mode parsing round-trips" true
    (Engine.cache_mode_of_string "shared" = Ok Engine.Shared
    && Engine.cache_mode_of_string "lane" = Ok Engine.Lane
    && Engine.cache_mode_of_string "off" = Ok Engine.Off
    && Result.is_error (Engine.cache_mode_of_string "bogus"))

let test_serve_json_shape () =
  let apsp = prepared_graph 33 ~n:60 in
  let sch = Baseline_tz.build ~k:3 apsp in
  let r = Serve.run ~cache:64 ~domains:2 ~seed:34 ~queries:200 ~workload:"er60" apsp sch in
  let j = Serve.report_to_json r in
  checkb "single line" true (not (String.contains j '\n'));
  List.iter
    (fun field ->
      let needle = Printf.sprintf "\"%s\":" field in
      let found =
        let nl = String.length needle and jl = String.length j in
        let rec scan i = i + nl <= jl && (String.sub j i nl = needle || scan (i + 1)) in
        scan 0
      in
      checkb (Printf.sprintf "field %s present" field) true found)
    [
      "scheme"; "workload"; "dist"; "queries"; "domains"; "cache"; "cache_mode";
      "routes_per_sec"; "latency_p50_us"; "latency_p95_us"; "latency_p99_us"; "hit_rate";
      "shared_hits"; "shared_misses"; "shared_replaced"; "shared_aged"; "delivered";
      "stretch_mean"; "stretch_p99";
    ]

(* ------------------------------------------------------------------ *)
(* properties *)

let qcheck_tests =
  [
    QCheck.Test.make ~count:8 ~name:"engine batch = sequential for random seeds"
      QCheck.(pair (int_range 1 1000) (int_range 0 1))
      (fun (seed, which) ->
        let apsp = prepared_graph ~n:48 seed in
        let sch =
          if which = 0 then Baseline_tz.build ~k:2 apsp else Baseline_tree.build apsp
        in
        let pairs =
          Workload.generate ~connected_in:apsp Workload.Uniform ~seed:(seed + 1) ~n:48
            ~count:120
        in
        let reference = Simulator.measure_all apsp sch pairs in
        with_pool ~domains:3 (fun pool ->
            let engine = Engine.create ~cache:32 ~pool () in
            let results, _ = Engine.run_batch engine apsp sch pairs in
            results = reference));
    QCheck.Test.make ~count:6 ~name:"results identical across pool widths x cache modes"
      QCheck.(int_range 1 1000)
      (fun seed ->
        let apsp = prepared_graph ~n:48 seed in
        let sch = agm_scheme apsp in
        let pairs =
          Workload.generate ~connected_in:apsp (Workload.Zipf 1.1) ~seed:(seed + 1) ~n:48
            ~count:150
        in
        let reference = Simulator.measure_all apsp sch pairs in
        List.for_all
          (fun domains ->
            with_pool ~domains (fun pool ->
                List.for_all
                  (fun (cache, mode) ->
                    let engine = Engine.create ~cache ~cache_mode:mode ~pool () in
                    let results, _ = Engine.run_batch engine apsp sch pairs in
                    results = reference)
                  [ (0, Engine.Off); (64, Engine.Lane); (64, Engine.Shared) ]))
          [ 1; 2; 4 ]);
    QCheck.Test.make ~count:10 ~name:"workload generation is pool-invariant"
      QCheck.(pair (int_range 1 1000) (int_range 2 200))
      (fun (seed, n) ->
        let seq = Workload.generate (Workload.Zipf 1.1) ~seed ~n ~count:700 in
        with_pool ~domains:4 (fun pool ->
            Workload.generate ~pool (Workload.Zipf 1.1) ~seed ~n ~count:700 = seq));
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "engine"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "covers every index once" `Quick test_pool_covers_every_index;
          Alcotest.test_case "reusable across calls" `Quick test_pool_reuse_across_calls;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "nested call degrades" `Quick test_pool_nested_call_degrades;
          Alcotest.test_case "size one and clamping" `Quick test_pool_size_one_and_clamp;
          Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "update promotes" `Quick test_lru_update_promotes;
          Alcotest.test_case "capacity one + validation" `Quick test_lru_capacity_one_and_validation;
          Alcotest.test_case "interleaved at capacity" `Quick test_lru_interleaved_at_capacity;
          Alcotest.test_case "random churn vs model" `Quick test_lru_churn_against_hashtbl;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "pool-invariant" `Quick test_workload_pool_invariant;
          Alcotest.test_case "pairs valid" `Quick test_workload_pairs_valid;
          Alcotest.test_case "zipf skew" `Quick test_workload_zipf_is_skewed;
          Alcotest.test_case "connected filter" `Quick test_workload_connected_filter;
          Alcotest.test_case "zipf boundaries" `Quick test_workload_zipf_boundaries;
          Alcotest.test_case "dist parsing" `Quick test_workload_dist_parsing;
        ] );
      ( "engine",
        [
          Alcotest.test_case "matches sequential (3 schemes x 3 widths x cache)" `Quick
            test_engine_matches_sequential_everywhere;
          Alcotest.test_case "aggregate = Simulator.evaluate" `Quick
            test_engine_aggregate_matches_evaluate;
          Alcotest.test_case "cache hits on replay" `Quick test_engine_cache_hits_on_replay;
          Alcotest.test_case "empty batch + validation" `Quick test_engine_empty_and_validation;
          Alcotest.test_case "counters aggregate" `Quick test_engine_counters_aggregate;
          Alcotest.test_case "shared cache mode" `Quick test_engine_shared_cache_mode;
        ] );
      ( "rewired_call_sites",
        [
          Alcotest.test_case "apsp parallel = sequential" `Quick
            test_apsp_parallel_matches_sequential;
          Alcotest.test_case "experiment row pool-invariant" `Quick
            test_experiment_row_pool_invariant;
          Alcotest.test_case "sweep pool-invariant" `Quick test_sweep_pool_invariant;
          Alcotest.test_case "agm06 counters exact under parallel" `Quick
            test_agm06_counters_exact_under_parallel;
        ] );
      ( "serve",
        [
          Alcotest.test_case "deterministic across domains" `Quick
            test_serve_deterministic_across_domains;
          Alcotest.test_case "json shape" `Quick test_serve_json_shape;
        ] );
      ("properties", qsuite);
    ]
